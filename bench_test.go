// Package repro benchmarks every experiment of the paper's evaluation —
// one benchmark per table and figure (quick configurations; use
// cmd/esharing-bench for full-size runs) plus the ablation studies from
// DESIGN.md §5 and micro-benchmarks of the core algorithms.
package repro

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/forecast"
	"repro/internal/geo"
	"repro/internal/routing"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
)

// --- One benchmark per paper table/figure ------------------------------

func BenchmarkFig4OfflineVsMeyerson(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig4(experiments.DefaultFig4Config()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5PenaltyCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5(experiments.DefaultFig5Config()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6DeviationPenalty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(experiments.DefaultFig6Config()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7SavingRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(experiments.DefaultFig7Config()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8ActualVsPredicted(b *testing.B) {
	cfg := experiments.Fig8Config{Table2: experiments.QuickTable2Config()}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2PredictionRMSE(b *testing.B) {
	cfg := experiments.QuickTable2Config()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Table3Penalties covers both Fig. 9 and Table III (the
// paper derives the figure from the same runs).
func BenchmarkFig9Table3Penalties(b *testing.B) {
	cfg := experiments.QuickTable3Config()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4KSSimilarity(b *testing.B) {
	cfg := experiments.DefaultTable4Config()
	cfg.SamplePerDay = 120
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Table5Comparison covers Fig. 10 and Table V.
func BenchmarkFig10Table5Comparison(b *testing.B) {
	cfg := experiments.QuickTable5Config()
	cfg.Regions = 2
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Fig12Table6Incentives covers Figs. 11–12 and Table VI.
func BenchmarkFig11Fig12Table6Incentives(b *testing.B) {
	cfg := experiments.DefaultTable6Config()
	cfg.Bikes = 200
	cfg.QValues = []float64{2, 10}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ------------------------------------------

func benchAblation(b *testing.B, runner func(experiments.AblationConfig) (*experiments.AblationResult, error)) {
	b.Helper()
	cfg := experiments.DefaultAblationConfig()
	cfg.Trials = 2
	for i := 0; i < b.N; i++ {
		if _, err := runner(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBeta(b *testing.B) {
	benchAblation(b, experiments.RunAblationBeta)
}

func BenchmarkAblationPenaltySwitch(b *testing.B) {
	benchAblation(b, experiments.RunAblationPenaltySwitch)
}

func BenchmarkAblationGuidance(b *testing.B) {
	benchAblation(b, experiments.RunAblationGuidance)
}

func BenchmarkAblationPolyPenalty(b *testing.B) {
	benchAblation(b, experiments.RunAblationPolyPenalty)
}

func BenchmarkAblationLocalSearch(b *testing.B) {
	benchAblation(b, experiments.RunAblationLocalSearch)
}

func BenchmarkAblationTSP(b *testing.B) {
	benchAblation(b, experiments.RunAblationTSP)
}

func BenchmarkAblationKS(b *testing.B) {
	benchAblation(b, experiments.RunAblationKS)
}

// --- Micro-benchmarks of the core algorithms ---------------------------

func benchPoints(n int) []geo.Point {
	return stats.SamplePoints(stats.NewRNG(7),
		stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 2000)}, n)
}

func BenchmarkOfflineSolver100(b *testing.B) {
	pts := benchPoints(100)
	problem, err := core.UniformProblem(pts, 5000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveOffline(problem); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeyersonStream1000(b *testing.B) {
	pts := benchPoints(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		placer, err := core.NewMeyerson(5000, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := core.RunStream(placer, pts, 5000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkESharingStream1000(b *testing.B) {
	pts := benchPoints(1000)
	landmarks := benchPoints(12)
	hist := benchPoints(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultESharingConfig()
		cfg.Seed = uint64(i) + 1
		placer, err := core.NewESharing(landmarks, 5000, hist, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := core.RunStream(placer, pts, 5000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlace measures the per-request cost of the placement hot path
// (Algorithm 2's nearest-station lookup plus the opening draw) at
// increasing station counts. The opening cost is set prohibitively high
// so the station set stays fixed at k and the numbers isolate the lookup.
func BenchmarkPlace(b *testing.B) {
	for _, k := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			landmarks := benchPoints(k)
			queries := stats.SamplePoints(stats.NewRNG(13),
				stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 2000)}, 4096)
			cfg := core.DefaultESharingConfig()
			cfg.TestEvery = 0
			placer, err := core.NewESharing(landmarks, 1e12, nil, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := placer.Place(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerMixedLoad drives the HTTP layer with a realistic mix —
// placements interleaved with /v1/stats, /v1/stations and /metrics reads
// — from parallel goroutines, measuring aggregate handler throughput.
func BenchmarkServerMixedLoad(b *testing.B) {
	landmarks := benchPoints(1000)
	queries := stats.SamplePoints(stats.NewRNG(13),
		stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 2000)}, 1024)
	cfg := core.DefaultESharingConfig()
	cfg.TestEvery = 0
	placer, err := core.NewESharing(landmarks, 1e12, nil, cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(placer)
	if err != nil {
		b.Fatal(err)
	}
	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		bodies[i] = []byte(fmt.Sprintf(`{"dest":{"x":%g,"y":%g}}`, q.X, q.Y))
	}
	var seq atomic.Int64
	var latMu sync.Mutex
	var latencies []time.Duration
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]time.Duration, 0, 4096)
		for pb.Next() {
			i := int(seq.Add(1))
			var req *http.Request
			switch i % 4 {
			case 0:
				req = httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
			case 1:
				req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
			case 2:
				req = httptest.NewRequest(http.MethodGet, "/v1/stations", nil)
			default:
				req = httptest.NewRequest(http.MethodPost, "/v1/requests",
					bytes.NewReader(bodies[i%len(bodies)]))
			}
			rec := httptest.NewRecorder()
			start := time.Now()
			srv.ServeHTTP(rec, req)
			local = append(local, time.Since(start))
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
		latMu.Lock()
		latencies = append(latencies, local...)
		latMu.Unlock()
	})
	b.StopTimer()
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(latencies)-1))
			return float64(latencies[idx])
		}
		b.ReportMetric(pct(0.50), "p50-ns")
		b.ReportMetric(pct(0.99), "p99-ns")
		b.ReportMetric(pct(0.999), "p999-ns")
	}
}

// spinPlacer burns a fixed slug of deterministic CPU per decision,
// standing in for Algorithm 2 on a large station set. Serialised under
// a shard's decision lock, it makes the lock the bottleneck, so the
// sharded benchmark measures lock scaling rather than handler overhead.
type spinPlacer struct {
	station []geo.Point
	state   uint64
	stall   time.Duration // blocking stage under the lock (0 = pure CPU)
}

func (p *spinPlacer) Place(dest geo.Point) (core.Decision, error) {
	x := p.state
	for i := 0; i < 4096; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	p.state = x
	if p.stall > 0 {
		time.Sleep(p.stall)
	}
	return core.Decision{Station: p.station[0], Walk: dest.Dist(p.station[0])}, nil
}

func (p *spinPlacer) Stations() []geo.Point { return p.station }
func (p *spinPlacer) Name() string          { return "spin" }

// BenchmarkShardedPlacement measures placement throughput against the
// shard count. The "stall" variants hold each decision lock through a
// 50µs blocking stage — the shape of a per-decision WAL fsync or a
// remote feature lookup — which independent shards overlap even on one
// core; the "spin" variants are pure CPU and additionally scale with
// cores on multi-core hosts. Destinations spread across planar cells at
// precision 7 so routing distributes load over every shard.
func BenchmarkShardedPlacement(b *testing.B) {
	queries := stats.SamplePoints(stats.NewRNG(13),
		stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 2000)}, 1024)
	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		bodies[i] = []byte(fmt.Sprintf(`{"dest":{"x":%g,"y":%g}}`, q.X, q.Y))
	}
	for _, mode := range []struct {
		name  string
		stall time.Duration
	}{
		{"stall50us", 50 * time.Microsecond},
		{"spin", 0},
	} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", mode.name, shards), func(b *testing.B) {
				placers := make([]core.OnlinePlacer, shards)
				for i := range placers {
					placers[i] = &spinPlacer{
						station: []geo.Point{geo.Pt(0, 0)},
						state:   uint64(i) + 1,
						stall:   mode.stall,
					}
				}
				srv, err := server.NewSharded(placers,
					server.WithShardPrecision(7), server.WithMaxInFlight(4096))
				if err != nil {
					b.Fatal(err)
				}
				// Enough goroutines to keep every shard's lock busy even
				// when GOMAXPROCS is small.
				b.SetParallelism(16)
				var seq atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						i := int(seq.Add(1))
						req := httptest.NewRequest(http.MethodPost, "/v1/requests",
							bytes.NewReader(bodies[i%len(bodies)]))
						rec := httptest.NewRecorder()
						srv.ServeHTTP(rec, req)
						if rec.Code != http.StatusOK {
							b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
						}
					}
				})
			})
		}
	}
}

func BenchmarkPeacockKSBrute60(b *testing.B) {
	a := benchPoints(60)
	c := stats.SamplePoints(stats.NewRNG(8),
		stats.NormalDist{Center: geo.Pt(1000, 1000), StdDev: 300}, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.Peacock2D(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeacockKSFast60(b *testing.B) {
	a := benchPoints(60)
	c := stats.SamplePoints(stats.NewRNG(8),
		stats.NormalDist{Center: geo.Pt(1000, 1000), StdDev: 300}, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.Peacock2DFast(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTSPHeldKarp12(b *testing.B) {
	pts := benchPoints(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := routing.HeldKarp(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTSPTwoOpt60(b *testing.B) {
	pts := benchPoints(60)
	nn, err := routing.NearestNeighbor(pts, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routing.TwoOpt(pts, nn)
	}
}

func BenchmarkOfflineSolver300(b *testing.B) {
	pts := benchPoints(300)
	problem, err := core.UniformProblem(pts, 5000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveOffline(problem); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalSearchRefinement(b *testing.B) {
	pts := benchPoints(120)
	problem, err := core.UniformProblem(pts, 5000)
	if err != nil {
		b.Fatal(err)
	}
	sol, err := core.SolveOffline(problem)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ImproveLocalSearch(problem, sol, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSTMTrainingEpoch(b *testing.B) {
	series := make([]float64, 24*10)
	for i := range series {
		series[i] = 100 + 50*float64(i%24)/24
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := forecast.NewLSTM(forecast.LSTMConfig{
			Hidden: 16, Layers: 2, Lookback: 12, Epochs: 1,
			LearningRate: 0.01, ClipNorm: 1, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := model.Fit(series); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChargingRound(b *testing.B) {
	stations := make([]geo.Point, 0, 25)
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			stations = append(stations, geo.Pt(float64(c)*600, float64(r)*600))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fleet, err := energy.NewFleet(energy.DefaultModel())
		if err != nil {
			b.Fatal(err)
		}
		rng := stats.NewRNG(uint64(i) + 1)
		for id := 1; id <= 300; id++ {
			st := stations[rng.IntN(len(stations))]
			if err := fleet.Add(energy.Bike{ID: int64(id), Loc: st, Level: 1}); err != nil {
				b.Fatal(err)
			}
		}
		if err := fleet.SeedLevels(stats.NewRNG(uint64(i)+2), 0.2); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.RunChargingRound(stations, fleet, sim.DefaultChargingConfig(0.4)); err != nil {
			b.Fatal(err)
		}
	}
}
