package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geo"
)

func TestRunGeneratesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-days", "2", "-weekday", "100", "-weekend", "80", "-bikes", "30", "-seed", "5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	projector := geo.NewProjector(geo.LatLng{Lat: 39.9042, Lng: 116.4074})
	trips, err := dataset.ReadCSV(&buf, projector)
	if err != nil {
		t.Fatalf("generated CSV unreadable: %v", err)
	}
	if len(trips) < 100 {
		t.Errorf("only %d trips generated", len(trips))
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trips.csv")
	var buf bytes.Buffer
	if err := run([]string{"-days", "1", "-weekday", "50", "-bikes", "10", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("stdout should be empty when -o is set")
	}
}

func TestRunWithSurge(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-days", "3", "-weekday", "50", "-bikes", "10", "-surge", "1:19:100"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "orderid") {
		t.Error("missing header")
	}
}

func TestParseSurge(t *testing.T) {
	tests := []struct {
		spec    string
		wantErr bool
	}{
		{"5:19:300", false},
		{"5:23:300", false}, // hour end clamps
		{"bad", true},
		{"a:1:2", true},
		{"1:b:2", true},
		{"1:2:c", true},
	}
	for _, tt := range tests {
		_, err := parseSurge(tt.spec)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseSurge(%q) err=%v, wantErr=%v", tt.spec, err, tt.wantErr)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-days", "-2"}, &buf); err == nil {
		t.Error("negative days should error")
	}
	if err := run([]string{"-surge", "99:1:10", "-days", "2"}, &buf); err == nil {
		t.Error("out-of-range surge day should error")
	}
}
