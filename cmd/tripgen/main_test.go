package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geo"
)

func TestRunGeneratesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-days", "2", "-weekday", "100", "-weekend", "80", "-bikes", "30", "-seed", "5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	projector := geo.NewProjector(geo.LatLng{Lat: 39.9042, Lng: 116.4074})
	trips, err := dataset.ReadCSV(&buf, projector)
	if err != nil {
		t.Fatalf("generated CSV unreadable: %v", err)
	}
	if len(trips) < 100 {
		t.Errorf("only %d trips generated", len(trips))
	}
}

// TestRunMatchesMaterializedWriter pins the streaming day-by-day output
// against the reference Generate + WriteCSV pipeline byte for byte, so
// switching tripgen to GenerateStream cannot change any existing
// artifact.
func TestRunMatchesMaterializedWriter(t *testing.T) {
	var got bytes.Buffer
	err := run([]string{"-days", "3", "-weekday", "120", "-weekend", "90", "-bikes", "25", "-seed", "7", "-surge", "1:19:60"}, &got)
	if err != nil {
		t.Fatal(err)
	}
	surge, err := parseSurge("1:19:60")
	if err != nil {
		t.Fatal(err)
	}
	trips, err := dataset.Generate(dataset.Config{
		Days: 3, TripsWeekday: 120, TripsWeekend: 90, Bikes: 25, Seed: 7,
		Surges: []dataset.Surge{surge},
	})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := dataset.WriteCSV(&want, trips); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("streaming output differs from materialized output (%d vs %d bytes)", got.Len(), want.Len())
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trips.csv")
	var buf bytes.Buffer
	if err := run([]string{"-days", "1", "-weekday", "50", "-bikes", "10", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("stdout should be empty when -o is set")
	}
}

func TestRunWithSurge(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-days", "3", "-weekday", "50", "-bikes", "10", "-surge", "1:19:100"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "orderid") {
		t.Error("missing header")
	}
}

func TestParseSurge(t *testing.T) {
	tests := []struct {
		spec    string
		wantErr bool
	}{
		{"5:19:300", false},
		{"5:23:300", false}, // hour end clamps
		{"bad", true},
		{"a:1:2", true},
		{"1:b:2", true},
		{"1:2:c", true},
	}
	for _, tt := range tests {
		_, err := parseSurge(tt.spec)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseSurge(%q) err=%v, wantErr=%v", tt.spec, err, tt.wantErr)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-days", "-2"}, &buf); err == nil {
		t.Error("negative days should error")
	}
	if err := run([]string{"-surge", "99:1:10", "-days", "2"}, &buf); err == nil {
		t.Error("out-of-range surge day should error")
	}
}
