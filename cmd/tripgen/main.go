// Command tripgen generates a synthetic Mobike-schema trip CSV, the
// dataset substitution described in DESIGN.md. The output round-trips
// through the same codec that reads the real dataset.
//
// Usage:
//
//	tripgen [-days 14] [-weekday 2000] [-weekend 1400] [-bikes 600]
//	        [-seed 1] [-surge day:hour:trips] [-o trips.csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/geo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tripgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tripgen", flag.ContinueOnError)
	days := fs.Int("days", 14, "days to generate")
	weekday := fs.Int("weekday", 2000, "trips per weekday")
	weekend := fs.Int("weekend", 1400, "trips per weekend day")
	bikes := fs.Int("bikes", 600, "fleet size")
	seed := fs.Uint64("seed", 1, "random seed")
	surgeSpec := fs.String("surge", "", "optional demand surge day:hour:trips (e.g. 5:19:300)")
	out := fs.String("o", "", "output file (stdout when empty)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := dataset.Config{
		Days:         *days,
		TripsWeekday: *weekday,
		TripsWeekend: *weekend,
		Bikes:        *bikes,
		Seed:         *seed,
	}
	if *surgeSpec != "" {
		surge, err := parseSurge(*surgeSpec)
		if err != nil {
			return err
		}
		cfg.Surges = []dataset.Surge{surge}
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	// Stream one day at a time so peak memory is a single day of trips
	// regardless of -days; the emitted bytes are identical to
	// Generate + WriteCSV because days are generated and sorted in order.
	// The header is written on the first emit so a config error still
	// produces no output at all.
	cw := dataset.NewCSVWriter(w)
	var total int
	wroteHeader := false
	err := dataset.GenerateStream(cfg, func(_ int, trips []dataset.Trip) error {
		if !wroteHeader {
			if err := cw.WriteHeader(); err != nil {
				return err
			}
			wroteHeader = true
		}
		total += len(trips)
		return cw.WriteTrips(trips)
	})
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	if !wroteHeader {
		if err := cw.WriteHeader(); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
	}
	if err := cw.Flush(); err != nil {
		return fmt.Errorf("write csv: %w", err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d trips to %s\n", total, *out)
	}
	return nil
}

func parseSurge(spec string) (dataset.Surge, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return dataset.Surge{}, fmt.Errorf("surge spec %q is not day:hour:trips", spec)
	}
	day, err := strconv.Atoi(parts[0])
	if err != nil {
		return dataset.Surge{}, fmt.Errorf("surge day: %w", err)
	}
	hour, err := strconv.Atoi(parts[1])
	if err != nil {
		return dataset.Surge{}, fmt.Errorf("surge hour: %w", err)
	}
	trips, err := strconv.Atoi(parts[2])
	if err != nil {
		return dataset.Surge{}, fmt.Errorf("surge trips: %w", err)
	}
	hourEnd := hour + 2
	if hourEnd > 23 {
		hourEnd = 23
	}
	return dataset.Surge{
		Day: day, HourStart: hour, HourEnd: hourEnd,
		Center: geo.Pt(2600, 2600), Sigma: 120, Trips: trips,
	}, nil
}
