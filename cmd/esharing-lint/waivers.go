package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The waiver budget: every //esharing:allow in production code must
// carry a ` -- justification`, and the total count may not rise above
// the committed baseline (.lint-waivers). Waivers are a ratchet — the
// budget can be lowered when one is removed, but raising it is a
// reviewed decision, not a side effect of silencing a finding.

// baselineFile holds the committed waiver budget, relative to the scan
// root.
const baselineFile = ".lint-waivers"

// waiver is one //esharing:allow directive found in the tree.
type waiver struct {
	pos           token.Position
	names         string
	justification string
}

// runWaivers implements `esharing-lint -waivers [root]`: it scans every
// non-test-data .go file under root, prints the waiver inventory, and
// fails when a waiver lacks a justification or the count exceeds the
// committed baseline.
func runWaivers(args []string) int {
	root := "."
	if len(args) > 0 {
		root = args[0]
	}
	waivers, err := collectWaivers(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "esharing-lint: %v\n", err)
		return 1
	}
	exit := 0
	for _, w := range waivers {
		if w.justification == "" {
			fmt.Printf("%s: waiver %q lacks a justification; write //esharing:allow %s -- <why>\n",
				w.pos, w.names, w.names)
			exit = 2
		} else {
			fmt.Printf("%s: //esharing:allow %s -- %s\n", w.pos, w.names, w.justification)
		}
	}
	budget, err := readBudget(filepath.Join(root, baselineFile))
	if err != nil {
		fmt.Fprintf(os.Stderr, "esharing-lint: %v\n", err)
		return 1
	}
	switch {
	case len(waivers) > budget:
		fmt.Printf("%d waivers exceed the committed budget of %d (%s); remove one or raise the budget in review\n",
			len(waivers), budget, baselineFile)
		exit = 2
	case len(waivers) < budget:
		fmt.Printf("%d waivers under a budget of %d; ratchet %s down to %d\n",
			len(waivers), budget, baselineFile, len(waivers))
	default:
		fmt.Printf("%d waivers, at the committed budget\n", len(waivers))
	}
	return exit
}

// collectWaivers parses every .go file under root (skipping testdata,
// vendored trees and dot-directories) and returns the directives in
// walk order. Matching mirrors lintkit: only comments that begin with
// //esharing:allow count, so prose mentioning the directive does not.
func collectWaivers(root string) ([]waiver, error) {
	var out []waiver
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "vendor" || name == "bin" ||
				(strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//esharing:allow")
				if !ok {
					continue
				}
				names, justification, found := strings.Cut(rest, " -- ")
				w := waiver{pos: fset.Position(c.Pos()), names: strings.TrimSpace(names)}
				if found {
					w.justification = strings.TrimSpace(justification)
				}
				out = append(out, w)
			}
		}
		return nil
	})
	return out, err
}

// readBudget parses the baseline file: comment and blank lines are
// ignored, the first remaining line is the budget.
func readBudget(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("read waiver budget: %w (commit a %s with the current count)", err, baselineFile)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n, err := strconv.Atoi(line)
		if err != nil {
			return 0, fmt.Errorf("parse waiver budget %s: %w", path, err)
		}
		return n, nil
	}
	return 0, fmt.Errorf("waiver budget %s holds no number", path)
}
