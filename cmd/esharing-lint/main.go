// Command esharing-lint runs the project's static-analysis suite: the
// seededrand, nowalltime, guardedby, floateq, hotpathalloc, mapiter,
// detcallback, chanlock and walerr analyzers that machine-check the
// repository's determinism, lock-discipline, durability and hot-path
// invariants (see DESIGN.md, "Static analysis & invariants" and
// "Determinism analysis").
//
// It runs three ways:
//
//	esharing-lint ./...                         # standalone, loads packages itself
//	go vet -vettool=$(which esharing-lint) ./... # as a vet tool
//	esharing-lint -waivers [root]                # audit the //esharing:allow budget
//
// The vettool mode speaks cmd/go's unit-checking protocol (the same one
// golang.org/x/tools/go/analysis/unitchecker implements): it answers
// -flags with a JSON flag description, then receives one *.cfg file per
// package describing sources and pre-built export data for every
// dependency. Both modes exit 0 when the tree is clean and non-zero
// with file:line:col diagnostics otherwise.
package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/load"
	"repro/internal/analysis/registry"
)

const version = "esharing-lint version v1.0.0"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The cmd/go vettool handshake: -V=full identifies the tool for
	// build caching; -flags describes supported analyzer flags (none).
	for _, arg := range args {
		switch arg {
		case "-V=full", "-V":
			fmt.Println(version)
			return 0
		case "-flags":
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) > 0 && args[0] == "-waivers" {
		return runWaivers(args[1:])
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitCheck(args[0])
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return standalone(patterns)
}

// vetConfig mirrors cmd/go's per-package vet configuration (the fields
// this tool consumes; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one package unit handed over by `go vet`.
func unitCheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "esharing-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "esharing-lint: parse %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires a vetx (facts) output file regardless of
	// findings; this suite exchanges no cross-package facts, so the
	// file is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "esharing-lint: write vetx: %v\n", err)
			return 1
		}
	}
	if len(cfg.GoFiles) == 0 {
		return 0
	}

	// Type-check against the export data go vet already built for every
	// dependency, exactly as unitchecker does.
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, cfg.Compiler, func(importPath string) (io.ReadCloser, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			if cfg.Compiler == "gccgo" && cfg.Standard[path] {
				return nil, nil // fall back to the default gccgo lookup
			}
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := load.Files(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The build will report the compile error itself (#18395).
			return 0
		}
		fmt.Fprintf(os.Stderr, "esharing-lint: %v\n", err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}
	return report(analyze(pkg))
}

// standalone enumerates packages with `go list` and type-checks them
// from source, so the tool works without a driving go vet.
func standalone(patterns []string) int {
	listed, err := goList(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "esharing-lint: %v\n", err)
		return 1
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	exit := 0
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		filenames := make([]string, len(lp.GoFiles))
		for i, name := range lp.GoFiles {
			filenames[i] = lp.Dir + string(os.PathSeparator) + name
		}
		pkg, err := load.Files(fset, lp.ImportPath, filenames, imp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "esharing-lint: %v\n", err)
			return 1
		}
		if code := report(analyze(pkg)); code > exit {
			exit = code
		}
	}
	return exit
}

func analyze(pkg *load.Package) ([]lintkit.Diagnostic, *token.FileSet) {
	diags, err := lintkit.Run(pkg.Fset, pkg.Files, pkg.Path, pkg.Types, pkg.Info, registry.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "esharing-lint: %v\n", err)
		os.Exit(1)
	}
	return diags, pkg.Fset
}

func report(diags []lintkit.Diagnostic, fset *token.FileSet) int {
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 2
}

// listedPackage is the subset of `go list -json` output the standalone
// mode needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}
