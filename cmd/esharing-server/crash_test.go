package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCrashRestartRecoversServingState is the end-to-end durability
// check: a real esharing-server process with a decision log is killed
// with SIGKILL — no shutdown, no final sync beyond the per-decision
// fsync — and a fresh process pointed at the same directory must serve
// byte-identical /v1/stations and /v1/stats. The restart rebuilds the
// placer from the same flags (deterministic history and seed), then
// recovery replays the log on top; any divergence in that chain shows
// up as a body diff here.
func TestCrashRestartRecoversServingState(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the real server binary")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "esharing-server")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build server: %v\n%s", err, out)
	}

	walDir := filepath.Join(dir, "wal")
	addr := freeAddr(t)
	args := []string{
		"-addr", addr,
		"-history-days", "1",
		"-seed", "5",
		"-opening", "3000",
		"-wal-dir", walDir,
		"-wal-sync", "1",
		"-wal-snapshot-every", "8",
	}
	base := "http://" + addr

	srv := startServer(t, bin, args)
	waitHealthy(t, base)

	const placed = 25
	for i := 0; i < placed; i++ {
		body := fmt.Sprintf(`{"dest":{"x":%d,"y":%d}}`, 120*i%2400, 170*i%2400)
		resp, err := http.Post(base+"/v1/requests", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("place %d: %v", i, err)
		}
		out, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("place %d: status %d: %s", i, resp.StatusCode, out)
		}
	}
	preStations := get(t, base+"/v1/stations")
	preStats := get(t, base+"/v1/stats")

	// SIGKILL: the process gets no chance to flush or close anything.
	if err := srv.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_ = srv.Wait()

	restarted := startServer(t, bin, args)
	defer func() {
		_ = restarted.Process.Signal(syscall.SIGKILL)
		_ = restarted.Wait()
	}()
	waitHealthy(t, base)

	if got := get(t, base+"/v1/stations"); !bytes.Equal(got, preStations) {
		t.Errorf("stations diverged after crash restart:\n pre: %s\npost: %s", preStations, got)
	}
	if got := get(t, base+"/v1/stats"); !bytes.Equal(got, preStats) {
		t.Errorf("stats diverged after crash restart:\n pre: %s\npost: %s", preStats, got)
	}

	// The recovered instance must keep serving, not just parrot state.
	resp, err := http.Post(base+"/v1/requests", "application/json",
		strings.NewReader(`{"dest":{"x":900,"y":1100}}`))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-recovery placement: status %d", resp.StatusCode)
	}
}

func startServer(t *testing.T, bin string, args []string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("start server: %v", err)
	}
	return cmd
}

// freeAddr reserves a loopback port by binding and releasing it; the
// tiny window before the server rebinds is fine for a test.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
