// Command esharing-server runs the E-Sharing decision backend over HTTP.
//
// It plans offline landmarks from a synthetic (or CSV) trip history, then
// serves live placement decisions:
//
//	POST /v1/requests  {"dest":{"x":..,"y":..}}  -> parking decision
//	GET  /v1/stations                            -> established stations
//	GET  /v1/stats                               -> counters + similarity
//	GET  /healthz                                -> liveness
//
// Usage:
//
//	esharing-server [-addr :8080] [-algorithm e-sharing|meyerson|online-kmeans]
//	                [-opening 10000] [-seed 1] [-trips-csv history.csv]
//	                [-stream-ingest] [-max-inflight 256] [-pprof-addr :6060]
//	                [-shards 4] [-shard-precision 4]
//	                [-read-timeout 10s] [-write-timeout 30s] [-idle-timeout 2m]
//	                [-wal-dir /var/lib/esharing] [-wal-sync 1] [-wal-snapshot-every 4096]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only via -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/server"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatalf("esharing-server: %v", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("esharing-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	algorithm := fs.String("algorithm", "e-sharing", "placement algorithm: e-sharing, meyerson or online-kmeans")
	opening := fs.Float64("opening", 10000, "space-occupation cost per station (metres)")
	seed := fs.Uint64("seed", 1, "random seed")
	tripsCSV := fs.String("trips-csv", "", "optional Mobike-schema CSV with historical trips; synthetic history is generated when empty")
	streamIngest := fs.Bool("stream-ingest", false, "force the bounded-memory streaming CSV ingester; files over the size threshold stream automatically")
	historyDays := fs.Int("history-days", 7, "days of synthetic history when no CSV is given")
	fleetSize := fs.Int("fleet", 0, "register this many bikes at the planned stations and enable the tier-2 endpoints")
	maxInflight := fs.Int("max-inflight", server.DefaultMaxInFlight, "placement requests allowed to hold or queue for the decision locks (divided across shards); beyond this the server sheds with 429 + Retry-After")
	shards := fs.Int("shards", 1, "independent geo-sharded decision loops; requests route by the planar cell of their destination")
	shardPrecision := fs.Int("shard-precision", geo.DefaultShardPrecision, "planar cell precision for shard routing (1-12): 4 is ~one cell per city, 6-7 shards within a city")
	pprofAddr := fs.String("pprof-addr", "", "optional address to serve net/http/pprof on (disabled when empty)")
	readTimeout := fs.Duration("read-timeout", 10*time.Second, "http.Server ReadTimeout")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	walDir := fs.String("wal-dir", "", "directory for the durable decision log; empty disables durability, an existing log is replayed on startup")
	walSync := fs.Int("wal-sync", 1, "fsync the decision log every N appends (1 = every decision, 0 = leave flushing to the OS)")
	walSnapshotEvery := fs.Uint64("wal-snapshot-every", 4096, "checkpoint placer state and truncate the log after this many records (0 disables snapshots)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	history, err := loadHistory(*tripsCSV, *historyDays, *seed, *streamIngest)
	if err != nil {
		return fmt.Errorf("load history: %w", err)
	}
	log.Printf("loaded %d historical trip destinations", len(history))

	placers, err := buildPlacers(*algorithm, history, *opening, *seed, *shards, *shardPrecision)
	if err != nil {
		return err
	}
	stations := 0
	for _, p := range placers {
		stations += len(p.Stations())
	}
	log.Printf("algorithm %s ready with %d initial stations across %d shard(s)",
		placers[0].Name(), stations, len(placers))

	opts := []server.Option{
		server.WithMaxInFlight(*maxInflight),
		server.WithShardPrecision(*shardPrecision),
	}
	if *walDir != "" {
		opts = append(opts, server.WithWAL(*walDir, *walSync, *walSnapshotEvery))
	}
	var handler *server.Server
	if *fleetSize > 0 {
		fleet, err := buildFleet(allStations(placers), *fleetSize, *seed)
		if err != nil {
			return fmt.Errorf("build fleet: %w", err)
		}
		handler, err = server.NewShardedWithFleet(placers, fleet, opts...)
		if err != nil {
			return err
		}
		log.Printf("fleet of %d bikes registered; tier-2 endpoints enabled", *fleetSize)
	} else {
		handler, err = server.NewSharded(placers, opts...)
		if err != nil {
			return err
		}
	}
	if *walDir != "" {
		log.Printf("decision log at %s (%d records recovered)", *walDir, handler.WALRecords())
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	if *pprofAddr != "" {
		// net/http/pprof registers on DefaultServeMux, which the API
		// server never serves, so profiling stays off the public port.
		pprofSrv := &http.Server{
			Addr:              *pprofAddr,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case sig := <-stop:
		log.Printf("received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(ctx)
		// Close after Shutdown: no placement can be in flight, so the
		// final decision-log sync cannot race a request.
		if closeErr := handler.Close(); err == nil {
			err = closeErr
		}
		return err
	}
}

// beijingCenter is the projection origin for synthetic history (the
// paper's dataset is Beijing) and the fallback when a CSV carries no
// decodable geohashes.
var beijingCenter = geo.LatLng{Lat: 39.9042, Lng: 116.4074}

// streamIngestThreshold is the CSV size above which loadHistory switches
// to the streaming ingester even without -stream-ingest: past this the
// materialise-everything path's memory cost dominates the two-pass I/O.
const streamIngestThreshold = 256 << 20

// loadHistory returns the planar end point of every historical trip —
// the only piece of a trip the offline plan and the placers consume.
// Both CSV paths derive the projection centre from the data's own
// geohash bounding box: hard-coding Beijing would project any other
// city's trips hundreds of kilometres from the planar origin, far
// outside the tangent-plane regime.
func loadHistory(csvPath string, days int, seed uint64, streamIngest bool) ([]geo.Point, error) {
	if csvPath == "" {
		trips, err := dataset.Generate(dataset.Config{Days: days, Seed: seed})
		if err != nil {
			return nil, err
		}
		return dataset.EndPoints(trips), nil
	}
	if !streamIngest {
		if info, err := os.Stat(csvPath); err == nil && info.Size() >= streamIngestThreshold {
			log.Printf("trips CSV is %d MiB; switching to streaming ingestion", info.Size()>>20)
			streamIngest = true
		}
	}
	if streamIngest {
		return loadHistoryStreaming(csvPath)
	}
	f, err := os.Open(csvPath)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	trips, err := dataset.ReadCSV(f, nil)
	if err != nil {
		return nil, err
	}
	if len(trips) == 0 {
		return nil, nil
	}
	center, err := dataset.GeohashCenter(trips)
	if err != nil {
		if !errors.Is(err, dataset.ErrNoGeohashes) {
			return nil, err
		}
		center = beijingCenter
	}
	if err := dataset.ProjectTrips(trips, geo.NewProjector(center)); err != nil {
		return nil, err
	}
	return dataset.EndPoints(trips), nil
}

// loadHistoryStreaming is the bounded-memory path: pass 1 reduces the
// CSV to its geohash bounding boxes and row count, pass 2 streams the
// projected end points. It never materialises a []dataset.Trip, so peak
// memory is the scanner's O(chunk × workers) plus the end-point slice —
// bit-identical output to the materialising path by the differential
// tests in internal/dataset and TestLoadHistoryStreamingMatches.
func loadHistoryStreaming(csvPath string) ([]geo.Point, error) {
	f, err := os.Open(csvPath)
	if err != nil {
		return nil, err
	}
	var opts dataset.ScanOptions
	sum, err := dataset.ScanSummarize(f, opts)
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return nil, err
	}
	if sum.Trips == 0 {
		return nil, nil
	}
	center, err := sum.Center()
	if err != nil {
		if !errors.Is(err, dataset.ErrNoGeohashes) {
			return nil, err
		}
		center = beijingCenter
	}
	f, err = os.Open(csvPath)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	ends := make([]geo.Point, 0, sum.Trips)
	if _, err := dataset.ScanEndPoints(f, geo.NewProjector(center), opts, func(pts []geo.Point) error {
		ends = append(ends, pts...)
		return nil
	}); err != nil {
		return nil, err
	}
	return ends, nil
}

// buildPlacers builds one placer per shard. The historical trip
// destinations are partitioned the same way live requests will route —
// by planar cell — so each shard's offline landmarks are planned from
// exactly the demand it will serve. A shard whose partition came up
// empty plans from the full history instead (its engine must still be
// valid; it simply starts with out-of-region landmarks it will never be
// asked about). Seeds are staggered by shard index so the shards'
// online RNG streams are independent.
func buildPlacers(algorithm string, history []geo.Point, opening float64, seed uint64, shards, precision int) ([]core.OnlinePlacer, error) {
	if shards <= 1 {
		p, err := buildPlacer(algorithm, history, opening, seed)
		if err != nil {
			return nil, err
		}
		return []core.OnlinePlacer{p}, nil
	}
	parts := make([][]geo.Point, shards)
	for _, end := range history {
		i := geo.ShardOf(end, precision, shards)
		parts[i] = append(parts[i], end)
	}
	placers := make([]core.OnlinePlacer, shards)
	for i := range placers {
		part := parts[i]
		if len(part) == 0 {
			part = history
		}
		p, err := buildPlacer(algorithm, part, opening, seed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		placers[i] = p
	}
	return placers, nil
}

// allStations concatenates the shards' initial stations in shard-index
// order (the same order /v1/stations serves them).
func allStations(placers []core.OnlinePlacer) []geo.Point {
	var out []geo.Point
	for _, p := range placers {
		out = append(out, p.Stations()...)
	}
	return out
}

func buildPlacer(algorithm string, dests []geo.Point, opening float64, seed uint64) (core.OnlinePlacer, error) {
	switch algorithm {
	case "e-sharing":
		landmarks, err := planLandmarks(dests, opening)
		if err != nil {
			return nil, fmt.Errorf("offline plan: %w", err)
		}
		cfg := core.DefaultESharingConfig()
		cfg.Seed = seed
		return core.NewESharing(landmarks, opening, dests, cfg)
	case "meyerson":
		return core.NewMeyerson(opening, seed)
	case "online-kmeans":
		return core.NewOnlineKMeans(16, seed)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algorithm)
	}
}

// buildFleet scatters bikes across the given stations with the
// Fig. 2(d) low-battery tail.
func buildFleet(stations []geo.Point, size int, seed uint64) (*energy.Fleet, error) {
	if len(stations) == 0 {
		return nil, fmt.Errorf("no stations to park bikes at")
	}
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed + 101)
	for i := 1; i <= size; i++ {
		st := stations[rng.IntN(len(stations))]
		if err := fleet.Add(energy.Bike{ID: int64(i), Loc: st, Level: 1}); err != nil {
			return nil, err
		}
	}
	if err := fleet.SeedLevels(stats.NewRNG(seed+102), 0.2); err != nil {
		return nil, err
	}
	return fleet, nil
}

func planLandmarks(dests []geo.Point, opening float64) ([]geo.Point, error) {
	// core.AggregateDemand pads degenerate bounding boxes, so a one-trip
	// or collinear history plans fine instead of failing grid validation.
	demands, err := core.AggregateDemand(dests, 100)
	if err != nil {
		return nil, err
	}
	openingCosts := make([]float64, len(demands))
	for i := range openingCosts {
		openingCosts[i] = opening
	}
	problem, err := core.NewProblem(demands, openingCosts)
	if err != nil {
		return nil, err
	}
	sol, err := core.SolveOffline(problem)
	if err != nil {
		return nil, err
	}
	return problem.Stations(sol), nil
}
