package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/geo"
)

func testHistory(t *testing.T) []dataset.Trip {
	t.Helper()
	trips, err := dataset.Generate(dataset.Config{
		Days: 2, TripsWeekday: 150, TripsWeekend: 100, Bikes: 30, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return trips
}

// testEnds is testHistory reduced to the destination points buildPlacer
// and buildPlacers now consume.
func testEnds(t *testing.T) []geo.Point {
	t.Helper()
	return dataset.EndPoints(testHistory(t))
}

func TestBuildPlacer(t *testing.T) {
	history := testEnds(t)
	for _, alg := range []string{"e-sharing", "meyerson", "online-kmeans"} {
		placer, err := buildPlacer(alg, history, 10000, 1)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if placer.Name() == "" {
			t.Errorf("%s: empty name", alg)
		}
	}
	if _, err := buildPlacer("nope", history, 10000, 1); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestBuildPlacerESharingHasLandmarks(t *testing.T) {
	history := testEnds(t)
	placer, err := buildPlacer("e-sharing", history, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(placer.Stations()) == 0 {
		t.Error("e-sharing placer should start with offline landmarks")
	}
}

func TestLoadHistorySynthetic(t *testing.T) {
	ends, err := loadHistory("", 2, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ends) == 0 {
		t.Error("no synthetic destinations")
	}
}

func TestLoadHistoryCSV(t *testing.T) {
	trips := testHistory(t)[:40]
	path := filepath.Join(t.TempDir(), "h.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, trips); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := loadHistory(path, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trips) {
		t.Errorf("loaded %d destinations, want %d", len(got), len(trips))
	}
	if _, err := loadHistory(filepath.Join(t.TempDir(), "missing.csv"), 0, 0, false); err == nil {
		t.Error("missing file should error")
	}
	if _, err := loadHistory(filepath.Join(t.TempDir(), "missing.csv"), 0, 0, true); err == nil {
		t.Error("missing file should error on the streaming path too")
	}
}

// TestLoadHistoryStreamingMatches pins the -stream-ingest wiring: the
// two-pass streaming loader must produce bit-identical destination
// points to the materialising loader, since both derive the projection
// centre from the same geohash bounding box and decode the same ends.
func TestLoadHistoryStreamingMatches(t *testing.T) {
	trips := testHistory(t)
	path := filepath.Join(t.TempDir(), "stream.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, trips); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := loadHistory(path, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loadHistory(path, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streaming loaded %d destinations, materialising %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("destination %d: streaming %v, materialising %v", i, got[i], want[i])
		}
	}
}

// TestLoadHistoryNonBeijingCSV is the regression test for the
// hard-coded projection centre: loadHistory used to project every CSV
// around Beijing, so a New York dataset landed ~11,000 km from the
// planar origin where the tangent-plane approximation is meaningless.
// The centre must now come from the data's own geohash bounding box,
// and the planned landmarks must sit inside the dataset's geography.
func TestLoadHistoryNonBeijingCSV(t *testing.T) {
	nyc := geo.LatLng{Lat: 40.7128, Lng: -74.0060}
	var trips []dataset.Trip
	for i := 0; i < 30; i++ {
		d := 0.002 * float64(i%5) // spread trips over a few hundred metres
		start, err := geo.EncodeGeohash(geo.LatLng{Lat: nyc.Lat + d, Lng: nyc.Lng - d}, 7)
		if err != nil {
			t.Fatal(err)
		}
		end, err := geo.EncodeGeohash(geo.LatLng{Lat: nyc.Lat - d, Lng: nyc.Lng + d}, 7)
		if err != nil {
			t.Fatal(err)
		}
		trips = append(trips, dataset.Trip{
			OrderID: int64(i + 1), UserID: 1, BikeID: 1,
			StartTime:    time.Date(2017, 5, 10, 8, 0, i, 0, time.UTC),
			StartGeohash: start, EndGeohash: end,
		})
	}
	path := filepath.Join(t.TempDir(), "nyc.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, trips); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	history, err := loadHistory(path, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != len(trips) {
		t.Fatalf("loaded %d destinations, want %d", len(history), len(trips))
	}
	for i, p := range history {
		if !p.IsFinite() || p.Norm() > 50_000 {
			t.Fatalf("destination %d projects to %v: projection centre not derived from the data", i, p)
		}
	}
	// The offline plan must land inside the dataset's own geography.
	landmarks, err := planLandmarks(history, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(landmarks) == 0 {
		t.Fatal("no landmarks planned")
	}
	for _, lm := range landmarks {
		if lm.Norm() > 50_000 {
			t.Errorf("landmark %v is outside the dataset's geography", lm)
		}
	}
}

func TestPlanLandmarks(t *testing.T) {
	history := testHistory(t)
	landmarks, err := planLandmarks(dataset.EndPoints(history), 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(landmarks) == 0 {
		t.Error("no landmarks planned")
	}
}

// TestStartupFromOneTripCSV is the regression test for the
// degenerate-bounding-box crash: a 1-row trip history has a zero-area
// bounding box, and planLandmarks used to hand it unpadded to
// geo.NewGrid, so the server died at startup. The whole startup path —
// CSV load, landmark planning, placer construction — must now succeed.
func TestStartupFromOneTripCSV(t *testing.T) {
	trips := testHistory(t)[:1]
	path := filepath.Join(t.TempDir(), "one.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, trips); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	history, err := loadHistory(path, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 1 {
		t.Fatalf("loaded %d destinations, want 1", len(history))
	}
	placer, err := buildPlacer("e-sharing", history, 10000, 1)
	if err != nil {
		t.Fatalf("startup from a 1-trip history must not crash: %v", err)
	}
	if len(placer.Stations()) == 0 {
		t.Error("one-trip history should still plan at least one landmark")
	}
}

// TestPlanLandmarksDegenerateHistories covers the single-point and
// collinear histories directly: both have a degenerate bounding box.
func TestPlanLandmarksDegenerateHistories(t *testing.T) {
	single := []geo.Point{geo.Pt(250, 400)}
	if _, err := planLandmarks(single, 10000); err != nil {
		t.Errorf("single destination: %v", err)
	}
	collinear := []geo.Point{geo.Pt(0, 100), geo.Pt(500, 100), geo.Pt(900, 100)}
	landmarks, err := planLandmarks(collinear, 10000)
	if err != nil {
		t.Fatalf("collinear destinations: %v", err)
	}
	if len(landmarks) == 0 {
		t.Error("collinear history should plan landmarks")
	}
}

func TestBuildFleet(t *testing.T) {
	history := testEnds(t)
	placer, err := buildPlacer("e-sharing", history, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := buildFleet(placer.Stations(), 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Len() != 40 {
		t.Errorf("fleet size %d, want 40", fleet.Len())
	}
	if len(fleet.LowBikes()) == 0 {
		t.Error("fleet should have a low-battery tail")
	}
	// No stations -> error.
	if _, err := buildFleet(nil, 5, 1); err == nil {
		t.Error("fleet without stations should error")
	}
}

// TestBuildPlacersSharded covers the shard partitioning of the offline
// plan: one placer per shard, history split by destination cell, the
// single-shard passthrough, and the empty-partition fallback (synthetic
// city-scale history fits inside one precision-4 cell, so most shards
// plan from the full history).
func TestBuildPlacersSharded(t *testing.T) {
	history := testEnds(t)

	one, err := buildPlacers("e-sharing", history, 10000, 1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("1-shard build returned %d placers", len(one))
	}

	// Precision 4 (~49 km cells): the whole synthetic city shares a cell,
	// so at least one partition is empty and must fall back to the full
	// history — every shard still gets a valid placer with landmarks.
	coarse, err := buildPlacers("e-sharing", history, 10000, 1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse) != 4 {
		t.Fatalf("4-shard build returned %d placers", len(coarse))
	}
	for i, p := range coarse {
		if p.Name() != coarse[0].Name() {
			t.Errorf("shard %d runs %q, shard 0 runs %q", i, p.Name(), coarse[0].Name())
		}
		if len(p.Stations()) == 0 {
			t.Errorf("shard %d planned no landmarks", i)
		}
	}

	// Precision 12 splits the city across cells: every trip must land in
	// exactly one shard's partition, mirroring geo.ShardOf.
	fine, err := buildPlacers("meyerson", history, 10000, 1, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(fine) != 2 {
		t.Fatalf("2-shard build returned %d placers", len(fine))
	}
	var want [2]int
	for _, end := range history {
		want[geo.ShardOf(end, 12, 2)]++
	}
	if want[0] == 0 || want[1] == 0 {
		t.Fatalf("precision-12 partition degenerate: %v", want)
	}

	if _, err := buildPlacers("nope", history, 10000, 1, 3, 4); err == nil {
		t.Error("unknown algorithm should error")
	}
}

// TestAllStations: the startup station union concatenates in shard
// order, matching the order /v1/stations serves.
func TestAllStations(t *testing.T) {
	history := testEnds(t)
	placers, err := buildPlacers("e-sharing", history, 10000, 1, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	all := allStations(placers)
	idx := 0
	for s, p := range placers {
		for _, st := range p.Stations() {
			if all[idx] != st {
				t.Fatalf("allStations[%d] = %v, want shard %d station %v", idx, all[idx], s, st)
			}
			idx++
		}
	}
	if idx != len(all) {
		t.Fatalf("allStations has %d points, placers have %d", len(all), idx)
	}
}
