// Command esharing-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	esharing-bench [-quick] [-json] <experiment ...>
//
// Experiments: fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// table2 table3 table4 table5 table6 ablations all
//
// fig9 is an alias of table3 (same study), fig10 of table5, and
// fig11/fig12 of table6 — the paper derives those figures from the same
// runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "esharing-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("esharing-bench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink grids and trial counts for a fast pass")
	asJSON := fs.Bool("json", false, "emit structured JSON instead of rendered tables")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := fs.Args()
	if len(names) == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment named; try: esharing-bench all")
	}
	if len(names) == 1 && names[0] == "all" {
		names = []string{
			"fig4", "fig5", "fig6", "fig7", "fig8",
			"table2", "table3", "table4", "table5", "table6", "ablations",
		}
	}
	for _, name := range names {
		start := time.Now()
		if err := runOne(name, *quick, *asJSON, out); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(out, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

type renderable interface {
	Render(io.Writer)
}

func emit(out io.Writer, asJSON bool, r renderable) error {
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	}
	r.Render(out)
	return nil
}
