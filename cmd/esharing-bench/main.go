// Command esharing-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	esharing-bench [-quick] [-json] [-parallelism N] <experiment ...>
//
// Experiments: fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// table2 table3 table4 table5 table6 ablations all
//
// fig9 is an alias of table3 (same study), fig10 of table5, and
// fig11/fig12 of table6 — the paper derives those figures from the same
// runs.
//
// The benchjson pseudo-experiment emits a machine-readable {section, ns,
// allocs} baseline for the solver, KS and forecasting-grid hot sections
// (committed as BENCH_compute.json and uploaded by CI).
//
// The compare subcommand re-measures those sections and diffs them
// against a committed baseline, failing on regressions:
//
//	esharing-bench compare -baseline BENCH_compute.json [-tolerance 0.25] [-out fresh.json]
//
// CI runs it as a required step of the test job; see README.md for the
// bench-gate workflow.
//
// -parallelism N bounds the deterministic compute fan-out (default: the
// ESHARING_PARALLELISM environment variable, else GOMAXPROCS). Output is
// bit-identical for every value; 1 runs fully sequentially.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/parallel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "esharing-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "compare" {
		return runCompare(args[1:], out)
	}
	fs := flag.NewFlagSet("esharing-bench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink grids and trial counts for a fast pass")
	asJSON := fs.Bool("json", false, "emit structured JSON instead of rendered tables")
	parallelism := fs.Int("parallelism", 0,
		"worker count for the deterministic compute engine; 0 keeps the "+parallel.EnvVar+"/GOMAXPROCS default, 1 is fully sequential")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallelism > 0 {
		parallel.SetDefault(*parallelism)
	}
	names := fs.Args()
	if len(names) == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment named; try: esharing-bench all")
	}
	if len(names) == 1 && names[0] == "benchjson" {
		// Machine-readable output only: no wall-time wrapper lines.
		return runBenchJSON(out)
	}
	if len(names) == 1 && names[0] == "all" {
		names = []string{
			"fig4", "fig5", "fig6", "fig7", "fig8",
			"table2", "table3", "table4", "table5", "table6", "ablations",
		}
	}
	fmt.Fprintf(out, "[parallelism %d]\n\n", parallel.Default())
	total := time.Now()
	for _, name := range names {
		start := time.Now()
		if err := runOne(name, *quick, *asJSON, out); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(out, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintf(out, "[%d section(s) completed in %v]\n", len(names), time.Since(total).Round(time.Millisecond))
	return nil
}

type renderable interface {
	Render(io.Writer)
}

func emit(out io.Writer, asJSON bool, r renderable) error {
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	}
	r.Render(out)
	return nil
}
