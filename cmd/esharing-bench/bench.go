package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/forecast"
	"repro/internal/geo"
	"repro/internal/stats"
)

// benchRecord is one hot section's measured cost. CI uploads the full
// array (BENCH_compute.json) on every run so the repository keeps a
// perf trajectory across PRs. AllocBytes and Extra (custom metrics such
// as rows/s from b.ReportMetric) are informational: the compare gate
// diffs only Ns.
type benchRecord struct {
	Section    string             `json:"section"`
	Ns         int64              `json:"ns"`
	Allocs     int64              `json:"allocs"`
	AllocBytes int64              `json:"allocBytes,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// runBenchJSON measures the compute hot sections — the offline solver,
// the 2-D KS statistic and the forecasting grid — at the current
// parallelism and writes {section, ns, allocs} records as JSON.
func runBenchJSON(out io.Writer) error {
	records := measureBenchSections()
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// measureBenchSections runs every tracked hot section once through
// testing.Benchmark and returns the records; benchjson encodes them,
// compare diffs them against a committed baseline.
func measureBenchSections() []benchRecord {
	var records []benchRecord
	add := func(section string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		rec := benchRecord{
			Section:    section,
			Ns:         r.NsPerOp(),
			Allocs:     r.AllocsPerOp(),
			AllocBytes: r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			rec.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				rec.Extra[k] = v
			}
		}
		records = append(records, rec)
	}

	// N=200/500 predate the incremental engine; N=2000/10000 exist
	// because the engine made them feasible — the committed baseline is
	// the proof the repository stays at city scale.
	for _, n := range []int{200, 500, 2000, 10000} {
		p := benchProblem(uint64(n), n)
		add(fmt.Sprintf("solver/offline/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveOffline(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	for _, n := range []int{100, 500} {
		rng := stats.NewRNG(uint64(n))
		box := geo.Square(geo.Pt(0, 0), 1000)
		pa := stats.SamplePoints(rng, stats.UniformDist{Box: box}, n)
		pb := stats.SamplePoints(rng, stats.UniformDist{Box: geo.Square(geo.Pt(250, 250), 1000)}, n)
		add(fmt.Sprintf("ks/peacock2dfast/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := stats.Peacock2DFast(pa, pb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	train, test := benchSeries()
	specs := benchGridSpecs()
	add("grid/forecast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := forecast.GridSearch(0, specs, train, test, 6); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Ingest sections: the encoding/csv materialising reader against the
	// zero-alloc streaming scanner on the same in-memory Mobike CSV. The
	// scan section is pinned to one worker so the tracked ratio is the
	// single-thread speedup, independent of the runner's core count.
	data, rows := benchCSV()
	perRow := float64(rows)
	add(fmt.Sprintf("ingest/readcsv/rows=%d", rows), func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := dataset.ReadCSV(bytes.NewReader(data), nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(perRow*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	// Workers and geohash handling match the readcsv baseline (ReadCSV
	// with a nil projector validates but does not decode geohashes), so
	// the ns ratio between the two sections is the single-thread speedup.
	add(fmt.Sprintf("ingest/scan/rows=%d", rows), func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		opts := dataset.ScanOptions{Workers: 1}
		for i := 0; i < b.N; i++ {
			var n int64
			err := dataset.IngestCSV(bytes.NewReader(data), opts, func(batch []dataset.RawTrip) error {
				n += int64(len(batch))
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if n != int64(rows) {
				b.Fatalf("scanned %d rows, want %d", n, rows)
			}
		}
		b.ReportMetric(perRow*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	add(fmt.Sprintf("ingest/demand/rows=%d", rows), func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if err := benchIngestDemand(data, rows); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(perRow*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	return records
}

// benchCSV renders the ingest fixture once: a multi-day synthetic
// Mobike CSV held in memory so the ingest sections measure parsing, not
// disk.
func benchCSV() ([]byte, int) {
	var buf bytes.Buffer
	rows := 0
	cw := dataset.NewCSVWriter(&buf)
	if err := cw.WriteHeader(); err != nil {
		panic(err)
	}
	err := dataset.GenerateStream(dataset.Config{
		Days: 5, TripsWeekday: 16000, TripsWeekend: 12000, Bikes: 400, Seed: 11,
	}, func(_ int, trips []dataset.Trip) error {
		rows += len(trips)
		return cw.WriteTrips(trips)
	})
	if err != nil {
		panic(err)
	}
	if err := cw.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes(), rows
}

// benchIngestDemand is the full bounded-memory aggregation pipeline:
// summarize for the projection centre and end bounds, then a second
// streaming pass folding ends into the demand grid. Workers: 0 defers
// to parallel.Default so `compare -parallelism 1` pins it.
func benchIngestDemand(data []byte, rows int) error {
	opts := dataset.ScanOptions{}
	sum, err := dataset.ScanSummarize(bytes.NewReader(data), opts)
	if err != nil {
		return err
	}
	center, err := sum.Center()
	if err != nil {
		return err
	}
	projector := geo.NewProjector(center)
	box, ok := sum.EndBounds(projector)
	if !ok {
		return fmt.Errorf("no end bounds")
	}
	acc, err := core.NewDemandAccumulator(box, 100)
	if err != nil {
		return err
	}
	n, err := dataset.ScanEndPoints(bytes.NewReader(data), projector, opts, func(pts []geo.Point) error {
		acc.AddAll(pts)
		return nil
	})
	if err != nil {
		return err
	}
	if n != int64(rows) {
		return fmt.Errorf("aggregated %d rows, want %d", n, rows)
	}
	demands, err := acc.Demands()
	if err != nil {
		return err
	}
	if len(demands) == 0 {
		return fmt.Errorf("empty demand grid")
	}
	return nil
}

// benchProblem mirrors the solver benchmark instances: clustered plus
// scattered demand with heterogeneous opening costs.
func benchProblem(seed uint64, n int) *core.Problem {
	rng := stats.NewRNG(seed)
	demands := make([]core.Demand, n)
	for i := range demands {
		var pt geo.Point
		if rng.IntN(3) == 0 {
			cx := float64(rng.IntN(4)) * 800
			cy := float64(rng.IntN(4)) * 800
			pt = geo.Pt(cx+rng.Float64()*50, cy+rng.Float64()*50)
		} else {
			pt = geo.Pt(rng.Float64()*3000, rng.Float64()*3000)
		}
		demands[i] = core.Demand{Loc: pt, Arrivals: 1 + float64(rng.IntN(5))}
	}
	opening := make([]float64, n)
	for i := range opening {
		opening[i] = 1000 + rng.Float64()*4000
	}
	p, err := core.NewProblem(demands, opening)
	if err != nil {
		panic(err)
	}
	return p
}

// benchSeries is a small deterministic hourly series with daily
// seasonality for the grid section.
func benchSeries() (train, test []float64) {
	rng := stats.NewRNG(6)
	series := make([]float64, 14*24)
	for i := range series {
		hour := i % 24
		base := 40.0
		if hour >= 7 && hour <= 20 {
			base = 90
		}
		series[i] = base + 10*rng.Float64()
	}
	train, test, err := forecast.SplitTrainTest(series, 0.75)
	if err != nil {
		panic(err)
	}
	return train, test
}

// benchGridSpecs is an MA+ARIMA sweep — the statistical half of the
// Table II grid, heavy enough to exercise the parallel fan-out without
// LSTM training times.
func benchGridSpecs() []forecast.GridSpec {
	var specs []forecast.GridSpec
	for _, wz := range []int{1, 2, 3, 4, 5} {
		wz := wz
		specs = append(specs, forecast.GridSpec{
			Name: fmt.Sprintf("ma wz=%d", wz),
			New:  func() (forecast.Forecaster, error) { return forecast.NewMovingAverage(wz) },
		})
	}
	for _, d := range []int{0, 1, 2} {
		for _, p := range []int{2, 4, 6, 8, 10} {
			d, p := d, p
			specs = append(specs, forecast.GridSpec{
				Name: fmt.Sprintf("arima p=%d d=%d", p, d),
				New:  func() (forecast.Forecaster, error) { return forecast.NewARIMA(p, d, 0) },
			})
		}
	}
	return specs
}
