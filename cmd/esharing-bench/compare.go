package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/parallel"
)

// runCompare implements the `compare` subcommand: re-measure the tracked
// hot sections and diff them against a committed benchjson baseline.
//
//	esharing-bench compare -baseline BENCH_compute.json [-tolerance 0.25] [-out fresh.json]
//
// A section whose fresh ns/op exceeds the baseline by more than the
// tolerance fails the run (exit 1); sections present on only one side —
// a new benchmark, or one deleted without refreshing the baseline — are
// warned about but do not fail, so adding a section and regenerating the
// baseline can land in the same change. Improvements never fail: the
// gate is one-sided by design, catching "the solver got slower" without
// punishing noise in the fast direction.
func runCompare(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("esharing-bench compare", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_compute.json", "committed benchjson baseline to diff against")
	tolerance := fs.Float64("tolerance", 0.25, "allowed fractional ns/op regression per section")
	outPath := fs.String("out", "", "also write the fresh benchjson records to this file")
	parallelism := fs.Int("parallelism", 0,
		"worker count for the deterministic compute engine; 0 keeps the "+parallel.EnvVar+"/GOMAXPROCS default")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("compare: unexpected arguments %v", fs.Args())
	}
	if *tolerance < 0 {
		return fmt.Errorf("compare: tolerance must be non-negative, got %v", *tolerance)
	}
	if *parallelism > 0 {
		parallel.SetDefault(*parallelism)
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fmt.Errorf("compare: read baseline: %w", err)
	}
	var baseline []benchRecord
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("compare: parse baseline %s: %w", *baselinePath, err)
	}

	fmt.Fprintf(out, "compare: measuring %s sections at parallelism %d (tolerance %.0f%%)\n",
		*baselinePath, parallel.Default(), *tolerance*100)
	fresh := measureBenchSections()

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("compare: write fresh records: %w", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fresh); err != nil {
			f.Close()
			return fmt.Errorf("compare: encode fresh records: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("compare: write fresh records: %w", err)
		}
	}

	baseNs := make(map[string]int64, len(baseline))
	for _, r := range baseline {
		baseNs[r.Section] = r.Ns
	}
	freshSeen := make(map[string]bool, len(fresh))
	var regressions []string
	for _, r := range fresh {
		freshSeen[r.Section] = true
		base, tracked := baseNs[r.Section]
		if !tracked {
			fmt.Fprintf(out, "  WARN new section %-28s %12dns (no baseline; refresh %s)\n",
				r.Section, r.Ns, *baselinePath)
			continue
		}
		delta := float64(r.Ns-base) / float64(base)
		status := "ok"
		if float64(r.Ns) > float64(base)*(1+*tolerance) {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %dns -> %dns (%+.1f%%, tolerance %.0f%%)",
					r.Section, base, r.Ns, delta*100, *tolerance*100))
		}
		fmt.Fprintf(out, "  %-10s %-28s %12dns -> %12dns  %+7.1f%%\n",
			status, r.Section, base, r.Ns, delta*100)
	}
	for _, r := range baseline {
		if !freshSeen[r.Section] {
			fmt.Fprintf(out, "  WARN removed section %-24s (baselined at %dns; refresh %s)\n",
				r.Section, r.Ns, *baselinePath)
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(out, "compare: %d section(s) regressed\n", len(regressions))
		for _, line := range regressions {
			fmt.Fprintf(out, "  %s\n", line)
		}
		return fmt.Errorf("compare: %d section(s) regressed beyond %.0f%%", len(regressions), *tolerance*100)
	}
	fmt.Fprintf(out, "compare: all %d tracked section(s) within tolerance\n", len(fresh))
	return nil
}
