package main

import (
	"fmt"
	"io"

	"repro/internal/experiments"
)

// runOne dispatches a single experiment by name.
func runOne(name string, quick, asJSON bool, out io.Writer) error {
	switch name {
	case "fig4":
		res, err := experiments.RunFig4(experiments.DefaultFig4Config())
		if err != nil {
			return err
		}
		return emit(out, asJSON, res)
	case "fig5":
		res, err := experiments.RunFig5(experiments.DefaultFig5Config())
		if err != nil {
			return err
		}
		return emit(out, asJSON, res)
	case "fig6":
		res, err := experiments.RunFig6(experiments.DefaultFig6Config())
		if err != nil {
			return err
		}
		return emit(out, asJSON, res)
	case "fig7":
		res, err := experiments.RunFig7(experiments.DefaultFig7Config())
		if err != nil {
			return err
		}
		return emit(out, asJSON, res)
	case "fig8":
		cfg := experiments.DefaultFig8Config()
		if quick {
			cfg.Table2 = experiments.QuickTable2Config()
		}
		res, err := experiments.RunFig8(cfg)
		if err != nil {
			return err
		}
		return emit(out, asJSON, res)
	case "table2":
		cfg := experiments.DefaultTable2Config()
		if quick {
			cfg = experiments.QuickTable2Config()
		}
		res, err := experiments.RunTable2(cfg)
		if err != nil {
			return err
		}
		return emit(out, asJSON, res)
	case "table3", "fig9":
		cfg := experiments.DefaultTable3Config()
		if quick {
			cfg = experiments.QuickTable3Config()
		}
		res, err := experiments.RunTable3(cfg)
		if err != nil {
			return err
		}
		return emit(out, asJSON, res)
	case "table4":
		res, err := experiments.RunTable4(experiments.DefaultTable4Config())
		if err != nil {
			return err
		}
		return emit(out, asJSON, res)
	case "table5", "fig10":
		cfg := experiments.DefaultTable5Config()
		if quick {
			cfg = experiments.QuickTable5Config()
		}
		res, err := experiments.RunTable5(cfg)
		if err != nil {
			return err
		}
		return emit(out, asJSON, res)
	case "table6", "fig11", "fig12":
		res, err := experiments.RunTable6(experiments.DefaultTable6Config())
		if err != nil {
			return err
		}
		return emit(out, asJSON, res)
	case "ablations":
		cfg := experiments.DefaultAblationConfig()
		if quick {
			cfg.Trials = 2
		}
		runners := []func(experiments.AblationConfig) (*experiments.AblationResult, error){
			experiments.RunAblationBeta,
			experiments.RunAblationPenaltySwitch,
			experiments.RunAblationGuidance,
			experiments.RunAblationPolyPenalty,
			experiments.RunAblationLocalSearch,
			experiments.RunAblationTSP,
			experiments.RunAblationKS,
		}
		for _, runner := range runners {
			res, err := runner(cfg)
			if err != nil {
				return err
			}
			if err := emit(out, asJSON, res); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}
