package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestRunFig4(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"fig4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig. 4") || !strings.Contains(out, "meyerson") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-json", "fig5"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"tolerance"`) {
		t.Errorf("JSON output missing fields:\n%.200s", buf.String())
	}
}

func TestRunAliases(t *testing.T) {
	// fig9 aliases table3; use the quick flag to keep it fast.
	var buf bytes.Buffer
	if err := run([]string{"-quick", "fig9"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table III") {
		t.Error("fig9 should render the Table III study")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Error("no experiment should error")
	}
	if err := run([]string{"nonsense"}, &buf); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunCompareErrors(t *testing.T) {
	var buf bytes.Buffer
	// Every failure here trips before any benchmark is measured, keeping
	// the test cheap: missing baseline, unparseable baseline, negative
	// tolerance, stray positional arguments.
	if err := run([]string{"compare", "-baseline", "/nonexistent/base.json"}, &buf); err == nil {
		t.Error("missing baseline file should error")
	}
	bad := t.TempDir() + "/bad.json"
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"compare", "-baseline", bad}, &buf); err == nil {
		t.Error("unparseable baseline should error")
	}
	if err := run([]string{"compare", "-tolerance", "-0.5", "-baseline", bad}, &buf); err == nil {
		t.Error("negative tolerance should error")
	}
	if err := run([]string{"compare", "stray"}, &buf); err == nil {
		t.Error("positional arguments should error")
	}
}
