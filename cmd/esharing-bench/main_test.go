package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFig4(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"fig4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig. 4") || !strings.Contains(out, "meyerson") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-json", "fig5"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"tolerance"`) {
		t.Errorf("JSON output missing fields:\n%.200s", buf.String())
	}
}

func TestRunAliases(t *testing.T) {
	// fig9 aliases table3; use the quick flag to keep it fast.
	var buf bytes.Buffer
	if err := run([]string{"-quick", "fig9"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table III") {
		t.Error("fig9 should render the Table III study")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Error("no experiment should error")
	}
	if err := run([]string{"nonsense"}, &buf); err == nil {
		t.Error("unknown experiment should error")
	}
}
