// Chargingops: tier two in isolation — compare charging operations with
// and without user incentives across the alpha sweep, mirroring Table VI.
// Shows the low-battery heatmap aggregating toward sinks and the
// operator's TSP tour shrinking.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 4x4 station grid with 200 bikes, 20% of them low.
	var stations []geo.Point
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			stations = append(stations, geo.Pt(float64(c)*700, float64(r)*700))
		}
	}
	buildFleet := func() (*energy.Fleet, error) {
		fleet, err := energy.NewFleet(energy.DefaultModel())
		if err != nil {
			return nil, err
		}
		rng := stats.NewRNG(99)
		for i := 1; i <= 200; i++ {
			st := stations[rng.IntN(len(stations))]
			if err := fleet.Add(energy.Bike{
				ID: int64(i), Loc: geo.Pt(st.X+rng.Float64()*40-20, st.Y+rng.Float64()*40-20), Level: 1,
			}); err != nil {
				return nil, err
			}
		}
		if err := fleet.SeedLevels(stats.NewRNG(100), 0.2); err != nil {
			return nil, err
		}
		return fleet, nil
	}

	fmt.Println("alpha   sites  visited  charged%   tour(km)  service  delay  energy  incentives   total")
	for _, alpha := range []float64{0, 0.4, 0.7, 1.0} {
		fleet, err := buildFleet()
		if err != nil {
			return err
		}
		report, err := sim.RunChargingRound(stations, fleet, sim.DefaultChargingConfig(alpha))
		if err != nil {
			return err
		}
		fmt.Printf("%5.1f   %5d  %7d  %7.1f%%  %9.1f  %7.0f  %5.0f  %6.0f  %10.0f  %6.0f\n",
			alpha, report.StationsNeedingService, report.StationsVisited,
			report.ChargedPct, report.TourLength/1000,
			report.ServiceCost, report.DelayCost, report.EnergyCost,
			report.IncentivesPaid, report.TotalCost())
		if alpha == 0 || alpha == 0.7 {
			printHeat(report, alpha)
		}
	}
	return nil
}

func printHeat(report *sim.ChargingReport, alpha float64) {
	heat := report.LowBefore
	label := "before incentives"
	if alpha > 0 {
		heat = report.LowAfter
		label = "after incentives"
	}
	var idx []int
	for i := range heat {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	fmt.Printf("   low-bike heatmap (%s):", label)
	for _, i := range idx {
		fmt.Printf(" s%d=%d", i, heat[i])
	}
	fmt.Println()
}
