// Prediction: the forecast engine in isolation — train every model on
// two weeks of synthetic hourly demand and compare walk-forward RMSE,
// mirroring Table II plus the extended baselines (seasonal naive and
// Holt-Winters).
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/forecast"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	trips, err := dataset.Generate(dataset.Config{
		Days: 14, TripsWeekday: 2000, TripsWeekend: 1400, Seed: 8,
	})
	if err != nil {
		return err
	}
	series := dataset.HourlySeries(trips, trips[0].StartTime.Truncate(24*3600e9), 14*24)
	train, test, err := forecast.SplitTrainTest(series, 0.75)
	if err != nil {
		return err
	}
	fmt.Printf("hourly demand series: %d train hours, %d test hours\n\n", len(train), len(test))

	models := []forecast.Forecaster{}
	if m, err := forecast.NewMovingAverage(3); err == nil {
		models = append(models, m)
	}
	if m, err := forecast.NewSeasonalNaive(24); err == nil {
		models = append(models, m)
	}
	if m, err := forecast.NewHoltWinters(24); err == nil {
		models = append(models, m)
	}
	if m, err := forecast.NewARIMA(8, 0, 0); err == nil {
		models = append(models, m)
	}
	if m, err := forecast.NewLSTM(forecast.LSTMConfig{
		Hidden: 24, Layers: 2, Lookback: 12, Epochs: 30,
		LearningRate: 0.01, ClipNorm: 1, Seed: 3,
	}); err == nil {
		models = append(models, m)
	}

	fmt.Printf("%-24s %12s\n", "model", "RMSE (1h)")
	best, bestRMSE := "", 1e18
	for _, m := range models {
		if err := m.Fit(train); err != nil {
			return fmt.Errorf("%s fit: %w", m.Name(), err)
		}
		rmse, err := forecast.WalkForwardRMSE(m, train, test, 1)
		if err != nil {
			return fmt.Errorf("%s eval: %w", m.Name(), err)
		}
		fmt.Printf("%-24s %12.1f\n", m.Name(), rmse)
		if rmse < bestRMSE {
			best, bestRMSE = m.Name(), rmse
		}
	}
	fmt.Printf("\nwinner: %s (paper's Table II winner: the 2-layer back-12 LSTM)\n", best)

	// Multi-step forecast for the next 6 hours, Fig. 3 step 1.
	lstm := models[len(models)-1]
	next, err := lstm.Forecast(series, 6)
	if err != nil {
		return err
	}
	fmt.Printf("next 6 hours: ")
	for _, v := range next {
		fmt.Printf("%.0f ", v)
	}
	fmt.Println()
	return nil
}
