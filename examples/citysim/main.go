// Citysim: a two-week city simulation on the synthetic Mobike-like
// workload. Week one trains the offline plan; week two streams live
// through the online algorithm while the fleet drains and nightly
// charging rounds keep it alive. Demonstrates the full system loop the
// paper's introduction motivates.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/esharing"
	"repro/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	trips, err := dataset.Generate(dataset.Config{
		Days:         14,
		TripsWeekday: 1200,
		TripsWeekend: 900,
		Bikes:        300,
		Seed:         7,
	})
	if err != nil {
		return err
	}
	days, byDay := dataset.SplitByDay(trips)

	cfg := esharing.DefaultConfig()
	cfg.Seed = 7
	sys, err := esharing.New(cfg)
	if err != nil {
		return err
	}

	// Week one is history.
	var history []esharing.Point
	for d := 0; d < 7; d++ {
		for _, trip := range byDay[d] {
			history = append(history, esharing.Pt(trip.End.X, trip.End.Y))
		}
	}
	plan, err := sys.PlanOffline(history)
	if err != nil {
		return err
	}
	fmt.Printf("trained on %d trips (7 days): %d landmark stations\n",
		len(history), len(plan.Stations))

	// The fleet starts fully charged at the landmarks.
	id := int64(1)
	for len(sys.Bikes()) < 300 {
		st := plan.Stations[int(id)%len(plan.Stations)]
		if err := sys.AddBike(id, st, 1.0); err != nil {
			return err
		}
		id++
	}

	// Week two streams live, with a charging round each night.
	for d := 7; d < len(days); d++ {
		var opened int
		var walked float64
		stranded := 0
		for _, trip := range byDay[d] {
			decision, err := sys.Request(esharing.Pt(trip.End.X, trip.End.Y))
			if err != nil {
				return err
			}
			if decision.Opened {
				opened++
			}
			walked += decision.WalkMeters
			// Ride a bike to the assigned parking (round-robin pick to
			// keep the example compact).
			bikeID := trip.BikeID%300 + 1
			if err := sys.RideBike(bikeID, decision.Station); err != nil {
				stranded++
			}
		}
		report, err := sys.ChargingRound()
		if err != nil {
			return err
		}
		fmt.Printf("%s (%s): %4d trips, +%d stations, avg walk %3.0f m, sim %5.1f%% | "+
			"low %3d, charged %5.1f%%, cost $%.0f\n",
			days[d].Format("Jan 02"), days[d].Weekday().String()[:3],
			len(byDay[d]), opened, walked/float64(max(len(byDay[d]), 1)),
			sys.Similarity(), report.TotalLowBikes, report.ChargedPct, report.TotalCost())
		_ = stranded
		time.Sleep(0) // keep the loop shape obvious; no pacing needed
	}
	fmt.Printf("final station count: %d\n", len(sys.Stations()))
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
