// Quickstart: plan parking locations from historical demand, stream live
// trip requests, and run one incentivised charging round — the whole
// E-Sharing loop in ~80 lines against the public API.
package main

import (
	"fmt"
	"log"

	"repro/esharing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := esharing.New(esharing.DefaultConfig())
	if err != nil {
		return err
	}

	// Historical destinations: three POI clusters (office, subway,
	// residential).
	rng := esharing.NewRNG(42)
	centers := []esharing.Point{
		esharing.Pt(400, 400), esharing.Pt(1600, 500), esharing.Pt(1000, 1400),
	}
	var history []esharing.Point
	for _, c := range centers {
		for i := 0; i < 80; i++ {
			history = append(history, esharing.Pt(
				c.X+rng.NormFloat64()*90, c.Y+rng.NormFloat64()*90))
		}
	}

	// Tier 1a: offline plan (1.61-factor facility location).
	plan, err := sys.PlanOffline(history)
	if err != nil {
		return err
	}
	fmt.Printf("offline plan: %d stations, walking %.0f m + space %.0f m = %.0f\n",
		len(plan.Stations), plan.WalkingCost, plan.OpeningCost, plan.TotalCost())

	// Park some bikes at the planned stations so tier 2 has a fleet.
	id := int64(1)
	for _, st := range plan.Stations {
		for k := 0; k < 8; k++ {
			level := 0.85
			if k%4 == 0 {
				level = 0.12 // the low-battery tail
			}
			if err := sys.AddBike(id, st, level); err != nil {
				return err
			}
			id++
		}
	}

	// Tier 1b: stream live requests through the online algorithm.
	var opened int
	var walked float64
	for i := 0; i < 200; i++ {
		c := centers[rng.IntN(len(centers))]
		dest := esharing.Pt(c.X+rng.NormFloat64()*90, c.Y+rng.NormFloat64()*90)
		d, err := sys.Request(dest)
		if err != nil {
			return err
		}
		if d.Opened {
			opened++
		}
		walked += d.WalkMeters
	}
	fmt.Printf("live stream: 200 requests, %d new stations, avg walk %.0f m, similarity %.1f%%\n",
		opened, walked/200, sys.Similarity())

	// Tier 2: one charging round with incentives.
	report, err := sys.ChargingRound()
	if err != nil {
		return err
	}
	fmt.Printf("charging round (alpha %.1f): %d low bikes, %d relocated by users,\n",
		report.Alpha, report.TotalLowBikes, report.Relocated)
	fmt.Printf("  %d sites need service, %d visited, %.1f%% charged, tour %.1f km\n",
		report.StationsNeedingService, report.StationsVisited,
		report.ChargedPct, report.TourLengthMeters/1000)
	fmt.Printf("  cost: service $%.0f + delay $%.0f + energy $%.0f + incentives $%.0f = $%.0f\n",
		report.ServiceCost, report.DelayCost, report.EnergyCost,
		report.IncentivesPaid, report.TotalCost())
	return nil
}
