// Eventsurge: the paper's motivating anomaly — a concert causes a demand
// surge at a previously unseen location. The example shows the 2-D KS
// test detecting the distribution shift, the penalty function relaxing,
// and the online algorithm opening pop-up stations near the venue, then
// reverting once traffic normalises.
package main

import (
	"fmt"
	"log"

	"repro/esharing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := esharing.DefaultConfig()
	cfg.TestEvery = 40
	sys, err := esharing.New(cfg)
	if err != nil {
		return err
	}

	rng := esharing.NewRNG(11)
	downtown := func() esharing.Point {
		return esharing.Pt(500+rng.NormFloat64()*150, 500+rng.NormFloat64()*150)
	}
	venue := func() esharing.Point {
		return esharing.Pt(2400+rng.NormFloat64()*100, 2400+rng.NormFloat64()*100)
	}

	var history []esharing.Point
	for i := 0; i < 300; i++ {
		history = append(history, downtown())
	}
	plan, err := sys.PlanOffline(history)
	if err != nil {
		return err
	}
	fmt.Printf("normal operation: %d stations near downtown\n", len(plan.Stations))

	phase := func(name string, n int, gen func() esharing.Point) error {
		var opened int
		for i := 0; i < n; i++ {
			d, err := sys.Request(gen())
			if err != nil {
				return err
			}
			if d.Opened {
				opened++
			}
		}
		fmt.Printf("%-22s %4d requests, %2d new stations, similarity %5.1f%%, total stations %d\n",
			name, n, opened, sys.Similarity(), len(sys.Stations()))
		return nil
	}

	if err := phase("weekday traffic:", 160, downtown); err != nil {
		return err
	}
	if err := phase("concert surge:", 160, venue); err != nil {
		return err
	}
	if err := phase("back to normal:", 160, downtown); err != nil {
		return err
	}
	return nil
}
