package repro

import (
	"bytes"
	"context"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"repro/esharing"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/privacy"
	"repro/internal/rebalance"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TestEndToEndPipeline drives the complete system across package
// boundaries: synthetic dataset -> CSV round trip -> offline planning ->
// HTTP serving of live requests (with location obfuscation) -> charging
// round -> rebalancing.
func TestEndToEndPipeline(t *testing.T) {
	// 1. Generate a week of trips and round-trip them through the CSV
	// codec, as a real deployment ingesting the Mobike dump would.
	raw, err := dataset.Generate(dataset.Config{
		Days: 8, TripsWeekday: 600, TripsWeekend: 450, Bikes: 120, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, raw); err != nil {
		t.Fatal(err)
	}
	projector := geo.NewProjector(geo.LatLng{Lat: 39.9042, Lng: 116.4074})
	trips, err := dataset.ReadCSV(&buf, projector)
	if err != nil {
		t.Fatal(err)
	}
	if len(trips) != len(raw) {
		t.Fatalf("CSV round trip lost trips: %d -> %d", len(raw), len(trips))
	}

	// 2. Split: first 6 days history, rest live.
	cut := raw[0].StartTime.AddDate(0, 0, 6)
	var history, live []dataset.Trip
	for _, tr := range raw { // use raw: exact planar coordinates
		if tr.StartTime.Before(cut) {
			history = append(history, tr)
		} else {
			live = append(live, tr)
		}
	}
	if len(history) == 0 || len(live) == 0 {
		t.Fatal("bad split")
	}

	// 3. Plan offline with the public API.
	sys, err := esharing.New(esharing.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	histPts := make([]esharing.Point, len(history))
	for i, tr := range history {
		histPts[i] = esharing.Pt(tr.End.X, tr.End.Y)
	}
	plan, err := sys.PlanOffline(histPts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stations) < 3 {
		t.Fatalf("only %d landmark stations", len(plan.Stations))
	}

	// 4. Serve the planner over HTTP and stream the live days through the
	// typed client, obfuscating destinations first (the system-model
	// privacy hook).
	obf, err := privacy.NewObfuscator(math.Log(4)/200, 77)
	if err != nil {
		t.Fatal(err)
	}
	pseud, err := privacy.NewPseudonymizer([]byte("integration-key"))
	if err != nil {
		t.Fatal(err)
	}

	coreSys := newCorePlacer(t, history)
	handler, err := server.New(coreSys)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	client, err := server.NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	tokens := map[string]bool{}
	var walkSum float64
	for _, tr := range live[:400] {
		noisy := obf.Obfuscate(tr.End)
		resp, err := client.Place(ctx, noisy)
		if err != nil {
			t.Fatal(err)
		}
		walkSum += resp.WalkMeters
		tokens[pseud.UserToken(tr.UserID)] = true
	}
	statsResp, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if statsResp.Requests != 400 {
		t.Fatalf("server saw %d requests, want 400", statsResp.Requests)
	}
	if avg := walkSum / 400; avg > 800 {
		t.Errorf("average walk %.0f m too high for a planned system", avg)
	}
	if len(tokens) < 2 {
		t.Error("pseudonymisation collapsed distinct users")
	}

	// 5. Tier 2: build a fleet at the server's stations and run a
	// charging round.
	stations := make([]geo.Point, 0)
	srvStations, err := client.Stations(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stations = append(stations, srvStations...)
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	for i := 1; i <= 150; i++ {
		st := stations[rng.IntN(len(stations))]
		if err := fleet.Add(energy.Bike{ID: int64(i), Loc: st, Level: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fleet.SeedLevels(stats.NewRNG(6), 0.2); err != nil {
		t.Fatal(err)
	}
	report, err := sim.RunChargingRound(stations, fleet, sim.DefaultChargingConfig(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if report.ChargedBikes == 0 {
		t.Error("charging round did nothing")
	}

	// 6. Rebalance the fleet inventory toward demand-proportional
	// targets.
	counts := fleet.GroupByStation(stations, math.Inf(1), false)
	rbStations := make([]rebalance.Station, len(stations))
	weights := make([]float64, len(stations))
	for i, loc := range stations {
		rbStations[i] = rebalance.Station{Loc: loc, Bikes: len(counts[i])}
		weights[i] = 1 + float64(i%3) // synthetic demand weights
	}
	targeted, err := rebalance.ProportionalTargets(rbStations, weights)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := rebalance.Solve(targeted, 8)
	if err != nil {
		t.Fatal(err)
	}
	after, err := rebalance.Apply(targeted, plan2)
	if err != nil {
		t.Fatal(err)
	}
	if rebalance.TotalImbalance(after) > rebalance.TotalImbalance(targeted) {
		t.Error("rebalancing increased imbalance")
	}
}

// newCorePlacer builds an e-sharing placer from trip history for the HTTP
// layer (mirrors cmd/esharing-server).
func newCorePlacer(t *testing.T, history []dataset.Trip) *serverPlacer {
	t.Helper()
	sys, err := esharing.New(esharing.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]esharing.Point, len(history))
	for i, tr := range history {
		pts[i] = esharing.Pt(tr.End.X, tr.End.Y)
	}
	if _, err := sys.PlanOffline(pts); err != nil {
		t.Fatal(err)
	}
	return &serverPlacer{sys: sys}
}

// serverPlacer adapts the public esharing.System to core.OnlinePlacer so
// the HTTP server can front it — the same wiring a deployment would use.
type serverPlacer struct {
	sys *esharing.System
}

var _ core.OnlinePlacer = (*serverPlacer)(nil)

func (p *serverPlacer) Place(dest geo.Point) (core.Decision, error) {
	d, err := p.sys.Request(esharing.Pt(dest.X, dest.Y))
	if err != nil {
		return core.Decision{}, err
	}
	station := geo.Pt(d.Station.X, d.Station.Y)
	idx := 0
	for i, s := range p.Stations() {
		if s == station {
			idx = i
			break
		}
	}
	return core.Decision{
		Station:      station,
		StationIndex: idx,
		Opened:       d.Opened,
		Walk:         d.WalkMeters,
	}, nil
}

func (p *serverPlacer) Stations() []geo.Point {
	sts := p.sys.Stations()
	out := make([]geo.Point, len(sts))
	for i, s := range sts {
		out[i] = geo.Pt(s.X, s.Y)
	}
	return out
}

func (p *serverPlacer) Name() string { return "e-sharing (public API)" }
