package esharing

import (
	"fmt"
	"math"

	"repro/internal/forecast"
	"repro/internal/geo"
	"repro/internal/rebalance"
)

// RebalanceReport summarises a fleet rebalancing run.
type RebalanceReport struct {
	// Moves is the number of truck stops with a pickup or drop-off.
	Moves int `json:"moves"`
	// BikesMoved is the total number of bikes lifted onto the truck.
	BikesMoved int `json:"bikesMoved"`
	// DistanceMeters is the truck's travel distance.
	DistanceMeters float64 `json:"distanceMeters"`
	// Unmet is the inventory deficit that could not be satisfied.
	Unmet int `json:"unmet"`
	// ImbalanceBefore/After measure Σ|inventory − target|.
	ImbalanceBefore int `json:"imbalanceBefore"`
	ImbalanceAfter  int `json:"imbalanceAfter"`
}

// Rebalance redistributes the fleet across the established stations so
// that inventories track the historical demand shares (the balancing
// procedure the paper assumes as a prerequisite, refs [9]–[11]). Bikes
// are physically relocated by the truck (no battery drain).
// truckCapacity is the bikes the truck carries at once.
func (s *System) Rebalance(truckCapacity int) (RebalanceReport, error) {
	if s.placer == nil {
		return RebalanceReport{}, ErrNotPlanned
	}
	if truckCapacity < 1 {
		return RebalanceReport{}, fmt.Errorf("esharing: truck capacity %d < 1", truckCapacity)
	}
	stations := s.placer.Stations()
	if len(stations) == 0 {
		return RebalanceReport{}, ErrNotPlanned
	}

	// Inventory: nearest-station assignment of every bike.
	grouped := s.fleet.GroupByStation(stations, math.Inf(1), false)
	rbStations := make([]rebalance.Station, len(stations))
	for i, loc := range stations {
		rbStations[i] = rebalance.Station{Loc: loc, Bikes: len(grouped[i])}
	}

	// Demand weights: historical arrivals near each station.
	weights := make([]float64, len(stations))
	for _, p := range s.histPoints() {
		if idx, _ := geo.Nearest(p, stations); idx >= 0 {
			weights[idx]++
		}
	}
	targeted, err := rebalance.ProportionalTargets(rbStations, weights)
	if err != nil {
		return RebalanceReport{}, err
	}
	before := rebalance.TotalImbalance(targeted)
	plan, err := rebalance.Solve(targeted, truckCapacity)
	if err != nil {
		return RebalanceReport{}, err
	}

	// Execute: physically move bikes according to the plan.
	pools := make([][]int64, len(stations))
	for i := range stations {
		pools[i] = append([]int64(nil), grouped[i]...)
	}
	var aboard []int64
	report := RebalanceReport{Unmet: plan.Unmet, DistanceMeters: plan.Distance, ImbalanceBefore: before}
	for _, mv := range plan.Moves {
		report.Moves++
		switch {
		case mv.Delta < 0: // pickup
			take := -mv.Delta
			for k := 0; k < take && len(pools[mv.Station]) > 0; k++ {
				id := pools[mv.Station][0]
				pools[mv.Station] = pools[mv.Station][1:]
				aboard = append(aboard, id)
				report.BikesMoved++
			}
		case mv.Delta > 0: // drop-off
			for k := 0; k < mv.Delta && len(aboard) > 0; k++ {
				id := aboard[0]
				aboard = aboard[1:]
				if err := s.fleet.Teleport(id, stations[mv.Station]); err != nil {
					return RebalanceReport{}, err
				}
				pools[mv.Station] = append(pools[mv.Station], id)
			}
		}
	}
	applied, err := rebalance.Apply(targeted, plan)
	if err != nil {
		return RebalanceReport{}, err
	}
	report.ImbalanceAfter = rebalance.TotalImbalance(applied)
	return report, nil
}

// histPoints converts the stored historical plan input back to geo space.
func (s *System) histPoints() []geo.Point {
	if s.placer == nil {
		return nil
	}
	// The online placer keeps the historical sample H; reuse it.
	return s.hist
}

// DemandForecast predicts total demand for the next `hours` hours from an
// hourly demand series using the configured LSTM shape (2 layers,
// 12-step lookback — Table II's winner).
func (s *System) DemandForecast(hourlySeries []float64, hours int) ([]float64, error) {
	model, err := forecast.NewLSTM(forecast.LSTMConfig{
		Hidden: 24, Layers: 2, Lookback: 12, Epochs: 30,
		LearningRate: 0.01, ClipNorm: 1, Seed: s.cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if err := model.Fit(hourlySeries); err != nil {
		return nil, fmt.Errorf("esharing: forecast fit: %w", err)
	}
	preds, err := model.Forecast(hourlySeries, hours)
	if err != nil {
		return nil, fmt.Errorf("esharing: forecast: %w", err)
	}
	for i, v := range preds {
		if v < 0 {
			preds[i] = 0
		}
	}
	return preds, nil
}

// FleetStatus aggregates fleet health for dashboards.
type FleetStatus struct {
	Bikes    int     `json:"bikes"`
	Low      int     `json:"low"`
	AvgLevel float64 `json:"avgLevel"`
}

// Fleet returns the aggregate fleet status.
func (s *System) Fleet() FleetStatus {
	bikes := s.fleet.Bikes()
	status := FleetStatus{Bikes: len(bikes)}
	var sum float64
	model := s.fleet.Model()
	for _, b := range bikes {
		sum += b.Level
		if b.Low(model) {
			status.Low++
		}
	}
	if len(bikes) > 0 {
		status.AvgLevel = sum / float64(len(bikes))
	}
	return status
}
