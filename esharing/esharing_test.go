package esharing

import (
	"errors"
	"math"
	"testing"
)

// clusteredHistory builds three POI clusters of historical destinations.
func clusteredHistory(seed uint64, perCluster int) []Point {
	centers := []Point{Pt(300, 300), Pt(1500, 400), Pt(900, 1300)}
	// Tiny deterministic LCG keeps the public test free of internal
	// imports.
	state := seed*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	var out []Point
	for _, c := range centers {
		for i := 0; i < perCluster; i++ {
			out = append(out, Pt(c.X+(next()-0.5)*240, c.Y+(next()-0.5)*240))
		}
	}
	return out
}

func plannedSystem(t *testing.T) (*System, PlanSummary) {
	t.Helper()
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.PlanOffline(clusteredHistory(1, 60))
	if err != nil {
		t.Fatal(err)
	}
	return sys, plan
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.OpeningCost = 0 },
		func(c *Config) { c.GridCellMeters = -1 },
		func(c *Config) { c.Tolerance = 0 },
		func(c *Config) { c.Beta = 0.5 },
		func(c *Config) { c.TestEvery = -1 },
		func(c *Config) { c.Alpha = 1.5 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestRequestBeforePlan(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Request(Pt(0, 0)); !errors.Is(err, ErrNotPlanned) {
		t.Errorf("want ErrNotPlanned, got %v", err)
	}
	if _, err := sys.ChargingRound(); !errors.Is(err, ErrNotPlanned) {
		t.Errorf("charging before plan: %v", err)
	}
	if sys.Stations() != nil || sys.Plan() != nil {
		t.Error("unplanned system should expose no stations/plan")
	}
	if sys.Similarity() != 100 {
		t.Error("unplanned similarity should be 100")
	}
}

func TestPlanOfflineEmpty(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.PlanOffline(nil); !errors.Is(err, ErrNoHistory) {
		t.Errorf("want ErrNoHistory, got %v", err)
	}
}

func TestPlanOfflineFindsClusters(t *testing.T) {
	_, plan := plannedSystem(t)
	if len(plan.Stations) < 2 || len(plan.Stations) > 6 {
		t.Errorf("planned %d stations for 3 clusters, want 2-6", len(plan.Stations))
	}
	if plan.TotalCost() != plan.WalkingCost+plan.OpeningCost {
		t.Error("TotalCost wrong")
	}
	// Each cluster centre should be near some station.
	for _, c := range []Point{Pt(300, 300), Pt(1500, 400), Pt(900, 1300)} {
		best := math.Inf(1)
		for _, s := range plan.Stations {
			if d := c.Dist(s); d < best {
				best = d
			}
		}
		if best > 400 {
			t.Errorf("no station within 400 m of cluster %v (closest %v)", c, best)
		}
	}
}

func TestRequestAssignsNearLandmark(t *testing.T) {
	sys, plan := plannedSystem(t)
	target := plan.Stations[0]
	d, err := sys.Request(target)
	if err != nil {
		t.Fatal(err)
	}
	if d.Opened || d.WalkMeters != 0 {
		t.Errorf("request at a landmark should assign with zero walk: %+v", d)
	}
	if d.Station != target {
		t.Errorf("assigned %v, want %v", d.Station, target)
	}
}

func TestRequestStreamAccumulatesStations(t *testing.T) {
	sys, plan := plannedSystem(t)
	history := clusteredHistory(2, 40)
	for _, p := range history {
		if _, err := sys.Request(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sys.Stations()); got < len(plan.Stations) {
		t.Errorf("stations shrank: %d < %d", got, len(plan.Stations))
	}
	if sys.Similarity() <= 0 || sys.Similarity() > 100 {
		t.Errorf("similarity %v out of range", sys.Similarity())
	}
}

func TestPlanSnapshotIsolation(t *testing.T) {
	sys, _ := plannedSystem(t)
	p1 := sys.Plan()
	p1.Stations[0] = Pt(-1, -1)
	p2 := sys.Plan()
	if p2.Stations[0] == Pt(-1, -1) {
		t.Error("Plan() exposes internal state")
	}
}

func TestFleetLifecycle(t *testing.T) {
	sys, plan := plannedSystem(t)
	if err := sys.AddBike(1, plan.Stations[0], 1.0); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddBike(1, plan.Stations[0], 1.0); err == nil {
		t.Error("duplicate bike should error")
	}
	if err := sys.RideBike(1, Pt(plan.Stations[0].X+3000, plan.Stations[0].Y)); err != nil {
		t.Fatal(err)
	}
	bikes := sys.Bikes()
	if len(bikes) != 1 || bikes[0].Level >= 1 {
		t.Errorf("ride should drain battery: %+v", bikes)
	}
	if err := sys.RideBike(99, Pt(0, 0)); err == nil {
		t.Error("unknown bike should error")
	}
}

func TestChargingRoundEndToEnd(t *testing.T) {
	sys, plan := plannedSystem(t)
	// Scatter bikes at stations, a third of them low.
	id := int64(1)
	for _, st := range plan.Stations {
		for k := 0; k < 9; k++ {
			level := 0.9
			if k%3 == 0 {
				level = 0.1
			}
			if err := sys.AddBike(id, st, level); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	lowBefore := len(sys.LowBikes())
	if lowBefore == 0 {
		t.Fatal("fixture has no low bikes")
	}
	rep, err := sys.ChargingRound()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalLowBikes != lowBefore {
		t.Errorf("report low=%d, fleet low=%d", rep.TotalLowBikes, lowBefore)
	}
	if rep.ChargedBikes == 0 {
		t.Error("no bikes charged")
	}
	if got := len(sys.LowBikes()); got != lowBefore-rep.ChargedBikes {
		t.Errorf("fleet low after: %d, want %d", got, lowBefore-rep.ChargedBikes)
	}
	if rep.TotalCost() <= 0 {
		t.Errorf("total cost %v", rep.TotalCost())
	}
}

func TestPointDist(t *testing.T) {
	if Pt(0, 0).Dist(Pt(3, 4)) != 5 {
		t.Error("Dist wrong")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, float64) {
		sys, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.PlanOffline(clusteredHistory(3, 50)); err != nil {
			t.Fatal(err)
		}
		var walk float64
		for _, p := range clusteredHistory(4, 30) {
			d, err := sys.Request(p)
			if err != nil {
				t.Fatal(err)
			}
			walk += d.WalkMeters
		}
		return len(sys.Stations()), walk
	}
	n1, w1 := run()
	n2, w2 := run()
	if n1 != n2 || w1 != w2 {
		t.Errorf("non-deterministic: (%d, %v) vs (%d, %v)", n1, w1, n2, w2)
	}
}
