package esharing

import (
	"errors"
	"math"
	"testing"
)

func TestRebalanceBeforePlan(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Rebalance(5); !errors.Is(err, ErrNotPlanned) {
		t.Errorf("want ErrNotPlanned, got %v", err)
	}
}

func TestRebalanceValidation(t *testing.T) {
	sys, _ := plannedSystem(t)
	if _, err := sys.Rebalance(0); err == nil {
		t.Error("capacity 0 should error")
	}
}

func TestRebalanceReducesImbalance(t *testing.T) {
	sys, plan := plannedSystem(t)
	// Pile every bike onto the first station: maximal imbalance.
	for i := int64(1); i <= 24; i++ {
		if err := sys.AddBike(i, plan.Stations[0], 1.0); err != nil {
			t.Fatal(err)
		}
	}
	report, err := sys.Rebalance(6)
	if err != nil {
		t.Fatal(err)
	}
	if report.ImbalanceAfter >= report.ImbalanceBefore {
		t.Errorf("imbalance %d -> %d; rebalancing failed", report.ImbalanceBefore, report.ImbalanceAfter)
	}
	if report.BikesMoved == 0 || report.Moves == 0 {
		t.Errorf("no work done: %+v", report)
	}
	// The bikes should now spread across stations.
	spread := map[Point]int{}
	for _, b := range sys.Bikes() {
		spread[b.Loc]++
	}
	if len(spread) < 2 {
		t.Errorf("bikes still piled at %d location(s)", len(spread))
	}
}

func TestRebalanceNoOpWhenBalanced(t *testing.T) {
	sys, plan := plannedSystem(t)
	// Spread bikes roughly evenly — imbalance stays small either way.
	id := int64(1)
	for _, st := range plan.Stations {
		for k := 0; k < 4; k++ {
			if err := sys.AddBike(id, st, 1.0); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	report, err := sys.Rebalance(6)
	if err != nil {
		t.Fatal(err)
	}
	if report.ImbalanceAfter > report.ImbalanceBefore {
		t.Errorf("rebalancing worsened: %+v", report)
	}
}

func TestDemandForecast(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A simple daily cycle.
	series := make([]float64, 24*10)
	for i := range series {
		series[i] = 100 + 50*math.Sin(2*math.Pi*float64(i%24)/24)
	}
	preds, err := sys.DemandForecast(series, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 6 {
		t.Fatalf("got %d predictions", len(preds))
	}
	for _, v := range preds {
		if v < 0 || v > 400 {
			t.Errorf("prediction %v implausible for a series in [50,150]", v)
		}
	}
	if _, err := sys.DemandForecast(series[:4], 2); err == nil {
		t.Error("too-short series should error")
	}
}

func TestFleetStatus(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Fleet(); got.Bikes != 0 || got.AvgLevel != 0 {
		t.Errorf("empty fleet status: %+v", got)
	}
	if err := sys.AddBike(1, Pt(0, 0), 0.1); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddBike(2, Pt(0, 0), 0.9); err != nil {
		t.Fatal(err)
	}
	got := sys.Fleet()
	if got.Bikes != 2 || got.Low != 1 || math.Abs(got.AvgLevel-0.5) > 1e-12 {
		t.Errorf("status: %+v", got)
	}
}
