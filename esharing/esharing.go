// Package esharing is the public API of the E-Sharing reproduction: a
// two-tier optimisation framework for dockless electric bike sharing
// (Zhou, Wang, Yang, Wei — ICDCS 2020).
//
// Tier one plans parking locations: an offline 1.61-factor facility
// location solver digests historical demand into a landmark station set,
// and an online algorithm with deviation penalty assigns live trip
// requests, opening new stations only when the request stream justifies
// it (validated continuously with a 2-D Kolmogorov–Smirnov test). Tier
// two cuts charging cost by paying users small incentives to ride
// low-battery bikes to aggregation sites, shrinking the operator's
// service tour.
//
// Quick start:
//
//	sys, err := esharing.New(esharing.DefaultConfig())
//	// feed historical destinations
//	plan, err := sys.PlanOffline(history)
//	// stream live requests
//	decision, err := sys.Request(esharing.Pt(120, 480))
//	// run a charging round with incentives
//	report, err := sys.ChargingRound()
//
// See the examples/ directory for runnable programs.
package esharing

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Point is a planar location in metres.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// NewRNG returns a deterministic seeded random source — the same
// construction the system uses internally — for generating reproducible
// synthetic demand to feed PlanOffline or Request. Equal seeds yield
// identical streams on every platform.
func NewRNG(seed uint64) *rand.Rand { return stats.NewRNG(seed) }

// Dist returns the Euclidean distance to q in metres.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

func toGeo(p Point) geo.Point   { return geo.Point(p) }
func fromGeo(p geo.Point) Point { return Point(p) }

func toGeoSlice(pts []Point) []geo.Point {
	out := make([]geo.Point, len(pts))
	for i, p := range pts {
		out[i] = toGeo(p)
	}
	return out
}

func fromGeoSlice(pts []geo.Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = fromGeo(p)
	}
	return out
}

// Config tunes the system. Zero values take the documented defaults via
// DefaultConfig; New validates everything.
type Config struct {
	// OpeningCost is the space-occupation cost per station, expressed in
	// walking-distance metres (paper mean: 10 km).
	OpeningCost float64
	// GridCellMeters is the demand-aggregation granularity for offline
	// planning (paper: 100 m).
	GridCellMeters float64
	// Tolerance is the deviation-penalty level L (paper: 200 m).
	Tolerance float64
	// Beta controls opening-cost doubling: the working cost doubles after
	// every Beta·k online openings (Algorithm 2).
	Beta float64
	// TestEvery runs the 2-D KS test after this many live requests;
	// 0 disables penalty switching.
	TestEvery int
	// Alpha is the tier-two incentive level in [0, 1].
	Alpha float64
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed uint64
}

// DefaultConfig returns the paper's evaluation settings.
func DefaultConfig() Config {
	return Config{
		OpeningCost:    10000,
		GridCellMeters: 100,
		Tolerance:      200,
		Beta:           1,
		TestEvery:      100,
		Alpha:          0.4,
		Seed:           1,
	}
}

func (c Config) validate() error {
	switch {
	case c.OpeningCost <= 0:
		return fmt.Errorf("esharing: opening cost %v must be positive", c.OpeningCost)
	case c.GridCellMeters <= 0:
		return fmt.Errorf("esharing: grid cell %v must be positive", c.GridCellMeters)
	case c.Tolerance <= 0:
		return fmt.Errorf("esharing: tolerance %v must be positive", c.Tolerance)
	case c.Beta < 1:
		return fmt.Errorf("esharing: beta %v < 1", c.Beta)
	case c.TestEvery < 0:
		return fmt.Errorf("esharing: test interval %d < 0", c.TestEvery)
	case c.Alpha < 0 || c.Alpha > 1:
		return fmt.Errorf("esharing: alpha %v outside [0,1]", c.Alpha)
	}
	return nil
}

// Errors returned by System methods.
var (
	// ErrNotPlanned is returned by Request before PlanOffline succeeds.
	ErrNotPlanned = errors.New("esharing: offline plan missing; call PlanOffline first")
	// ErrNoHistory is returned by PlanOffline with no destinations.
	ErrNoHistory = errors.New("esharing: empty demand history")
)

// System is the E-Sharing backend: tier-one placement plus tier-two
// charging optimisation over a shared fleet. It is not safe for
// concurrent use; for concurrent access over HTTP, run the shipped
// esharing-server binary (cmd/esharing-server), which serialises
// placement decisions while serving reads lock-free.
type System struct {
	cfg    Config
	placer *core.ESharing
	fleet  *energy.Fleet
	plan   *PlanSummary
	hist   []geo.Point // historical destinations from the last PlanOffline
}

// New validates cfg and returns an unplanned system.
func New(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, fleet: fleet}, nil
}

// PlanSummary reports the offline solution.
type PlanSummary struct {
	// Stations are the landmark parking locations.
	Stations []Point `json:"stations"`
	// WalkingCost and OpeningCost are the Eq. 1 components on the
	// historical demand.
	WalkingCost float64 `json:"walkingCost"`
	OpeningCost float64 `json:"openingCost"`
}

// TotalCost returns the Eq. 1 objective of the plan.
func (p PlanSummary) TotalCost() float64 { return p.WalkingCost + p.OpeningCost }

// PlanOffline aggregates historical destinations into grid-cell demands,
// solves the offline PLP with the 1.61-factor greedy, and initialises the
// online placer with the result as landmarks. Calling it again replans
// from scratch (e.g. on fresh predictions).
func (s *System) PlanOffline(history []Point) (PlanSummary, error) {
	if len(history) == 0 {
		return PlanSummary{}, ErrNoHistory
	}
	pts := toGeoSlice(history)
	demands, err := core.AggregateDemand(pts, s.cfg.GridCellMeters)
	if err != nil {
		return PlanSummary{}, fmt.Errorf("aggregate demand: %w", err)
	}
	opening := make([]float64, len(demands))
	for i := range opening {
		opening[i] = s.cfg.OpeningCost
	}
	problem, err := core.NewProblem(demands, opening)
	if err != nil {
		return PlanSummary{}, fmt.Errorf("build problem: %w", err)
	}
	sol, err := core.SolveOffline(problem)
	if err != nil {
		return PlanSummary{}, fmt.Errorf("offline solve: %w", err)
	}
	cost, err := problem.Evaluate(sol)
	if err != nil {
		return PlanSummary{}, fmt.Errorf("evaluate plan: %w", err)
	}
	landmarks := problem.Stations(sol)

	esCfg := core.ESharingConfig{
		Beta:           s.cfg.Beta,
		Tolerance:      s.cfg.Tolerance,
		TestEvery:      s.cfg.TestEvery,
		InitialPenalty: core.PenaltyTypeII,
		AdaptTolerance: true,
		Seed:           s.cfg.Seed,
	}
	placer, err := core.NewESharing(landmarks, s.cfg.OpeningCost, pts, esCfg)
	if err != nil {
		return PlanSummary{}, fmt.Errorf("online placer: %w", err)
	}
	s.placer = placer
	s.hist = pts
	plan := PlanSummary{
		Stations:    fromGeoSlice(landmarks),
		WalkingCost: cost.Walking,
		OpeningCost: cost.Opening,
	}
	s.plan = &plan
	return plan, nil
}

// Decision is the response to one live trip request.
type Decision struct {
	// Station is the assigned parking location.
	Station Point `json:"station"`
	// Opened reports whether this request established a new station.
	Opened bool `json:"opened"`
	// WalkMeters is the rider's walk from the destination to the station.
	WalkMeters float64 `json:"walkMeters"`
}

// Request assigns a live trip destination to a parking location per
// Algorithm 2.
func (s *System) Request(dest Point) (Decision, error) {
	if s.placer == nil {
		return Decision{}, ErrNotPlanned
	}
	d, err := s.placer.Place(toGeo(dest))
	if err != nil {
		return Decision{}, err
	}
	return Decision{Station: fromGeo(d.Station), Opened: d.Opened, WalkMeters: d.Walk}, nil
}

// Stations returns the currently established parking locations.
func (s *System) Stations() []Point {
	if s.placer == nil {
		return nil
	}
	return fromGeoSlice(s.placer.Stations())
}

// Plan returns the last offline plan, or nil before PlanOffline.
func (s *System) Plan() *PlanSummary {
	if s.plan == nil {
		return nil
	}
	cp := *s.plan
	cp.Stations = append([]Point(nil), s.plan.Stations...)
	return &cp
}

// Similarity returns the live-vs-historical similarity percentage from
// the most recent KS test (100 before any test).
func (s *System) Similarity() float64 {
	if s.placer == nil {
		return 100
	}
	return s.placer.LastSimilarity()
}

// AddBike registers an E-bike with the fleet.
func (s *System) AddBike(id int64, loc Point, level float64) error {
	return s.fleet.Add(energy.Bike{ID: id, Loc: toGeo(loc), Level: level})
}

// RideBike moves a bike to dest, draining its battery.
func (s *System) RideBike(id int64, dest Point) error {
	return s.fleet.Ride(id, toGeo(dest))
}

// BikeStatus reports one bike's position and charge level.
type BikeStatus struct {
	ID    int64   `json:"id"`
	Loc   Point   `json:"loc"`
	Level float64 `json:"level"`
}

// Bikes returns the fleet snapshot.
func (s *System) Bikes() []BikeStatus {
	bikes := s.fleet.Bikes()
	out := make([]BikeStatus, len(bikes))
	for i, b := range bikes {
		out[i] = BikeStatus{ID: b.ID, Loc: fromGeo(b.Loc), Level: b.Level}
	}
	return out
}

// LowBikes returns the IDs of bikes below the charging threshold.
func (s *System) LowBikes() []int64 { return s.fleet.LowBikes() }

// ChargingReport summarises one tier-two service round.
type ChargingReport struct {
	Alpha                  float64 `json:"alpha"`
	TotalLowBikes          int     `json:"totalLowBikes"`
	Relocated              int     `json:"relocated"`
	StationsNeedingService int     `json:"stationsNeedingService"`
	StationsVisited        int     `json:"stationsVisited"`
	ChargedBikes           int     `json:"chargedBikes"`
	ChargedPct             float64 `json:"chargedPct"`
	TourLengthMeters       float64 `json:"tourLengthMeters"`
	ServiceCost            float64 `json:"serviceCost"`
	DelayCost              float64 `json:"delayCost"`
	EnergyCost             float64 `json:"energyCost"`
	IncentivesPaid         float64 `json:"incentivesPaid"`
}

// TotalCost sums the cost components.
func (r ChargingReport) TotalCost() float64 {
	return r.ServiceCost + r.DelayCost + r.EnergyCost + r.IncentivesPaid
}

// ChargingRound runs one tier-two service period with the configured
// incentive level: users aggregate low-battery bikes toward sinks, then
// the operator tours the remaining demand sites and charges batteries.
// The fleet state is updated in place.
func (s *System) ChargingRound() (ChargingReport, error) {
	if s.placer == nil {
		return ChargingReport{}, ErrNotPlanned
	}
	cfg := sim.DefaultChargingConfig(s.cfg.Alpha)
	cfg.Seed = s.cfg.Seed
	rep, err := sim.RunChargingRound(s.placer.Stations(), s.fleet, cfg)
	if err != nil {
		return ChargingReport{}, err
	}
	return ChargingReport{
		Alpha:                  rep.Alpha,
		TotalLowBikes:          rep.TotalLowBikes,
		Relocated:              rep.Relocated,
		StationsNeedingService: rep.StationsNeedingService,
		StationsVisited:        rep.StationsVisited,
		ChargedBikes:           rep.ChargedBikes,
		ChargedPct:             rep.ChargedPct,
		TourLengthMeters:       rep.TourLength,
		ServiceCost:            rep.ServiceCost,
		DelayCost:              rep.DelayCost,
		EnergyCost:             rep.EnergyCost,
		IncentivesPaid:         rep.IncentivesPaid,
	}, nil
}
