package esharing_test

import (
	"fmt"

	"repro/esharing"
)

// The examples below double as executable documentation: `go test`
// verifies their output.

func ExampleSystem_PlanOffline() {
	sys, err := esharing.New(esharing.DefaultConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Two demand clusters, 2 km apart.
	var history []esharing.Point
	for i := 0; i < 40; i++ {
		history = append(history,
			esharing.Pt(200+float64(i%5)*20, 200+float64(i/5)*10),
			esharing.Pt(2200+float64(i%5)*20, 200+float64(i/5)*10),
		)
	}
	plan, err := sys.PlanOffline(history)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("stations: %d\n", len(plan.Stations))
	// Output:
	// stations: 2
}

func ExampleSystem_Request() {
	sys, err := esharing.New(esharing.DefaultConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var history []esharing.Point
	for i := 0; i < 60; i++ {
		history = append(history, esharing.Pt(500+float64(i%8)*12, 500+float64(i/8)*12))
	}
	if _, err := sys.PlanOffline(history); err != nil {
		fmt.Println("error:", err)
		return
	}
	// A request close to the cluster is assigned, not opened.
	d, err := sys.Request(esharing.Pt(520, 520))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("opened: %v, walk under 100 m: %v\n", d.Opened, d.WalkMeters < 100)
	// Output:
	// opened: false, walk under 100 m: true
}

func ExamplePoint_Dist() {
	fmt.Println(esharing.Pt(0, 0).Dist(esharing.Pt(3, 4)))
	// Output:
	// 5
}
