package server

import (
	"errors"
	"net/http"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/sim"
)

// Tier-2 endpoints: when the server is built with a fleet
// (NewWithFleet / NewShardedWithFleet), it additionally exposes bike
// registration, rides and charging rounds.
//
//	GET  /v1/bikes           -> fleet snapshot
//	POST /v1/bikes           -> register a bike
//	POST /v1/rides           -> ride a bike to a destination
//	POST /v1/charging-round  -> run one incentivised charging round

// BikeView is a bike over the wire.
type BikeView struct {
	ID    int64     `json:"id"`
	Loc   geo.Point `json:"loc"`
	Level float64   `json:"level"`
}

// BikesResponse is the body of GET /v1/bikes.
type BikesResponse struct {
	Bikes []BikeView `json:"bikes"`
	Low   int        `json:"low"`
}

// RideRequest is the body of POST /v1/rides.
type RideRequest struct {
	BikeID int64     `json:"bikeId"`
	Dest   geo.Point `json:"dest"`
}

// ChargingRequest is the body of POST /v1/charging-round. Seed is a
// pointer so "no seed given" (use the default cadence seed) and an
// explicit seed 0 are distinguishable — with a plain uint64, a client
// asking for seed 0 silently got the default.
type ChargingRequest struct {
	Alpha float64 `json:"alpha"`
	Seed  *uint64 `json:"seed,omitempty"`
}

// NewWithFleet builds a single-shard Server that also manages a fleet
// for tier-2 operations.
func NewWithFleet(placer core.OnlinePlacer, fleet *energy.Fleet, opts ...Option) (*Server, error) {
	if placer == nil {
		return nil, errors.New("server: nil placer")
	}
	return NewShardedWithFleet([]core.OnlinePlacer{placer}, fleet, opts...)
}

// NewShardedWithFleet builds a geo-sharded Server (see NewSharded) that
// also manages a fleet for tier-2 operations. The fleet is global — one
// lock, independent of every decision loop — since bikes move between
// regions.
func NewShardedWithFleet(placers []core.OnlinePlacer, fleet *energy.Fleet, opts ...Option) (*Server, error) {
	if fleet == nil {
		return nil, errors.New("server: nil fleet")
	}
	s, err := NewSharded(placers, opts...)
	if err != nil {
		return nil, err
	}
	// Construction-time write: no handler can observe s until
	// NewShardedWithFleet returns, so the lock is not needed yet.
	s.fleet = fleet //esharing:allow guardedby -- construction-time write; no handler can run yet
	s.getBike = fleet.Get
	s.mux.HandleFunc("GET /v1/bikes", s.instrument(epBikes, s.handleBikes))
	s.mux.HandleFunc("POST /v1/bikes", s.instrument(epAddBike, s.handleAddBike))
	s.mux.HandleFunc("POST /v1/rides", s.instrument(epRide, s.handleRide))
	s.mux.HandleFunc("POST /v1/charging-round", s.instrument(epCharging, s.handleChargingRound))
	return s, nil
}

func (s *Server) handleBikes(w http.ResponseWriter, _ *http.Request) {
	s.fleetMu.Lock()
	bikes := s.fleet.Bikes()
	low := len(s.fleet.LowBikes())
	s.fleetMu.Unlock()
	resp := BikesResponse{Bikes: make([]BikeView, len(bikes)), Low: low}
	for i, b := range bikes {
		resp.Bikes[i] = BikeView{ID: b.ID, Loc: b.Loc, Level: b.Level}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAddBike(w http.ResponseWriter, r *http.Request) {
	var req BikeView
	if !decodeBody(w, r, &req) {
		return
	}
	s.fleetMu.Lock()
	err := s.fleet.Add(energy.Bike{ID: req.ID, Loc: req.Loc, Level: req.Level})
	s.fleetMu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, req)
}

func (s *Server) handleRide(w http.ResponseWriter, r *http.Request) {
	var req RideRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.fleetMu.Lock()
	err := s.fleet.Ride(req.BikeID, req.Dest)
	var view BikeView
	var gerr error
	if err == nil {
		var b energy.Bike
		if b, gerr = s.getBike(req.BikeID); gerr == nil {
			view = BikeView{ID: b.ID, Loc: b.Loc, Level: b.Level}
		}
	}
	s.fleetMu.Unlock()
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, energy.ErrUnknownBike) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	if gerr != nil {
		// The ride was applied but its result could not be read back. A
		// 200 body must reflect real post-ride state, never a
		// zero-valued placeholder, so this is a server error.
		writeJSON(w, http.StatusInternalServerError,
			errorBody{Error: "ride applied but bike state unavailable: " + gerr.Error()})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleChargingRound(w http.ResponseWriter, r *http.Request) {
	var req ChargingRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// The charging round needs the established stations (read from the
	// merged view — never a decision lock) and exclusive access to the
	// fleet it relocates. The view's slice is shared with other readers,
	// so hand the simulator its own copy.
	stations := append([]geo.Point(nil), s.view().stations...)
	cfg := sim.DefaultChargingConfig(req.Alpha)
	if req.Seed != nil {
		cfg.Seed = *req.Seed
	}
	s.fleetMu.Lock()
	report, err := sim.RunChargingRound(stations, s.fleet, cfg)
	s.fleetMu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, report)
}
