package server

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/wal"
)

// A shard is one independent decision loop: its own placer, admission
// queue, decision channel-lock, counters, read snapshot and (optional)
// decision log. Placement is order-dependent only within a city region,
// so the server runs one shard per region partition and routes every
// request by the planar cell of its destination (geo.ShardOf); shards
// never synchronise with each other, which is what lets placement
// throughput scale with the shard count. A single-shard server is
// exactly the old unsharded one: same lock, same queue, same counters.
type shard struct {
	index int
	name  string // placer.Name(), cached for error messages and replay

	// placer is the shard's serialised decision engine; every call on
	// it must happen under the shard's decision channel-lock.
	// guarded by decision
	placer core.OnlinePlacer

	// decision is a capacity-1 channel used as the placement lock
	// (send = acquire, receive = release): unlike a sync.Mutex, a
	// queued request can abandon the wait when its context is
	// cancelled. queue bounds how many requests may hold or wait for
	// the lock; when it is full, handlePlace sheds with 429.
	decision    chan struct{}
	queue       chan struct{}
	maxInFlight int
	shedMsg     string // 429 body, pre-rendered off the hot path

	// Counters are written only under the shard's decision lock
	// (single writer) and read lock-free by the stats/metrics
	// handlers, which sum them across shards in shard-index order.
	// walkBits holds the math.Float64bits of the cumulative walk
	// distance.
	requests atomic.Int64
	opened   atomic.Int64
	walkBits atomic.Uint64 // guarded by decision
	shed     atomic.Int64  // 429s from this shard's admission gate

	// wal, when non-nil, is the shard's durable decision log (see
	// wal.go): set once during construction, appended to and
	// snapshotted only under the decision lock. Lock-free paths may
	// nil-check the pointer and read its (internally atomic) Metrics.
	// guarded by decision
	wal              *wal.Log
	walDir           string
	walSyncEvery     int
	walSnapshotEvery uint64
	walFailures      atomic.Int64 // append/snapshot failures (degraded)
	walFailed        atomic.Bool  // latched by the first failure
	walReplayNanos   atomic.Int64 // startup replay duration
	walReplayed      atomic.Int64 // records replayed at startup

	snap atomic.Pointer[readSnapshot]
}

// publishSnapshot republishes the shard's read-side state;
// caller holds decision (or the shard is not yet serving).
// Called whenever the station set or the similarity figure may have
// changed; it copies the station slice, so callers should skip it when
// nothing changed.
func (sh *shard) publishSnapshot() {
	snap := &readSnapshot{stations: sh.placer.Stations()}
	if es, ok := sh.placer.(*core.ESharing); ok {
		snap.lastSim = es.LastSimilarity()
		snap.hasSim = true
	}
	sh.snap.Store(snap)
}

// refreshAfterPlace updates the shard's published snapshot after a
// decision; caller holds decision. The station copy is only taken when
// the set actually changed (a station opened); a similarity change
// alone reuses the current slice, which also lets the merged view keep
// its cached /v1/stations encoding (see Server.view).
func (sh *shard) refreshAfterPlace(opened bool) {
	if opened {
		sh.publishSnapshot()
		return
	}
	cur := sh.snap.Load()
	if !cur.hasSim {
		return
	}
	es, ok := sh.placer.(*core.ESharing)
	if !ok {
		return
	}
	if sim := es.LastSimilarity(); sim != cur.lastSim {
		sh.snap.Store(&readSnapshot{stations: cur.stations, lastSim: sim, hasSim: true})
	}
}

// route picks the shard for a destination. With one shard every
// destination routes to it without touching the cell mapper, so the
// single-shard request path stays byte-for-byte the old unsharded one.
//
//esharing:hotpath
func (s *Server) route(dest geo.Point) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	return s.shards[geo.ShardOf(dest, s.shardPrecision, len(s.shards))]
}
