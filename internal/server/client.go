package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/geo"
)

// Client is a typed HTTP client for the E-Sharing API.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client against baseURL (e.g. "http://localhost:8080").
// A nil httpClient uses http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) (*Client, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("server: empty base URL")
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: baseURL, http: httpClient}, nil
}

// Place submits a trip destination and returns the parking decision.
func (c *Client) Place(ctx context.Context, dest geo.Point) (PlaceResponse, error) {
	var out PlaceResponse
	err := c.do(ctx, http.MethodPost, "/v1/requests", PlaceRequest{Dest: dest}, &out)
	return out, err
}

// Stations fetches the established parking locations.
func (c *Client) Stations(ctx context.Context) ([]geo.Point, error) {
	var out StationsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stations", nil, &out); err != nil {
		return nil, err
	}
	return out.Stations, nil
}

// Stats fetches backend counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Health checks the backend liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, &map[string]string{})
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var reader io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("encode %s %s: %w", method, path, err)
		}
		reader = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, reader)
	if err != nil {
		return fmt.Errorf("build %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("%s %s: %w", method, path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		var apiErr errorBody
		if decodeErr := json.NewDecoder(resp.Body).Decode(&apiErr); decodeErr == nil && apiErr.Error != "" {
			return fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, apiErr.Error)
		}
		return fmt.Errorf("%s %s: status %d", method, path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode %s %s response: %w", method, path, err)
	}
	return nil
}
