package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/stats"
)

// RetryPolicy controls Client's retry behaviour. Idempotent GETs are
// retried on transport errors, 5xx and 429; non-idempotent requests are
// retried only on 429, which the server's admission gate emits before
// any state changes, so a retry can never double-apply a placement.
// Backoff is exponential with half-range jitter; a 429's Retry-After
// header, when present, overrides the computed backoff (capped at
// MaxDelay). Retries stop early when the request context expires.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// values <= 1 disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the per-retry backoff.
	MaxDelay time.Duration
	// Jitter draws the random half-range component of each backoff.
	// Nil gets a time-seeded NewSeededJitter from NewClient; tests pass
	// NewSeededJitter(fixedSeed) to make backoff sequences exact.
	Jitter Jitter
}

// Jitter returns a uniform random duration in [0, max]. Implementations
// must be safe for concurrent use: one client may retry on many
// goroutines at once.
type Jitter func(max time.Duration) time.Duration

// NewSeededJitter builds a deterministic Jitter on the repo's seed
// discipline (stats.StreamClientJitter), serialised by a mutex so
// concurrent retries can share it.
func NewSeededJitter(seed uint64) Jitter {
	var mu sync.Mutex
	rng := stats.NewRNGStream(seed, stats.StreamClientJitter)
	return func(max time.Duration) time.Duration {
		if max <= 0 {
			return 0
		}
		mu.Lock()
		defer mu.Unlock()
		return time.Duration(rng.Int64N(int64(max) + 1))
	}
}

// DefaultRetryPolicy is the policy Clients use unless overridden with
// WithRetryPolicy: 4 attempts, 50ms base, 2s cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetryPolicy overrides the client's retry policy. Use
// RetryPolicy{MaxAttempts: 1} to disable retries entirely.
func WithRetryPolicy(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// WithClock injects the time source used to interpret HTTP-date
// Retry-After headers (their delay is the date minus "now").
// Deterministic tests inject a fixed clock so backoff sequences stay
// exact; production clients keep the default time.Now.
func WithClock(now func() time.Time) ClientOption {
	return func(c *Client) {
		if now != nil {
			c.now = now
		}
	}
}

// Client is a typed HTTP client for the E-Sharing API.
type Client struct {
	base  string
	http  *http.Client
	retry RetryPolicy
	now   func() time.Time // injectable for deterministic Retry-After dates
}

// NewClient builds a client against baseURL (e.g. "http://localhost:8080").
// A nil httpClient uses http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client, opts ...ClientOption) (*Client, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("server: empty base URL")
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: baseURL, http: httpClient, retry: DefaultRetryPolicy(), now: time.Now}
	for _, opt := range opts {
		opt(c)
	}
	if c.retry.Jitter == nil {
		// Production default: seed from the wall clock so independent
		// clients desynchronise. Deterministic callers inject their own.
		c.retry.Jitter = NewSeededJitter(uint64(time.Now().UnixNano()))
	}
	return c, nil
}

// Place submits a trip destination and returns the parking decision.
func (c *Client) Place(ctx context.Context, dest geo.Point) (PlaceResponse, error) {
	var out PlaceResponse
	err := c.do(ctx, http.MethodPost, "/v1/requests", PlaceRequest{Dest: dest}, &out)
	return out, err
}

// Stations fetches the established parking locations.
func (c *Client) Stations(ctx context.Context) ([]geo.Point, error) {
	var out StationsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stations", nil, &out); err != nil {
		return nil, err
	}
	return out.Stations, nil
}

// Stats fetches backend counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Health checks the backend liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, &map[string]string{})
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("encode %s %s: %w", method, path, err)
		}
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		done, err := c.attempt(ctx, method, path, payload, out, attempt == attempts-1)
		if done {
			return err
		}
		lastErr = err
		delay := c.backoff(attempt, err)
		if sleepErr := sleepCtx(ctx, delay); sleepErr != nil {
			return fmt.Errorf("%w (retry aborted: %v)", lastErr, sleepErr)
		}
	}
	return lastErr
}

// attempt runs one HTTP round trip. done=false means the error is
// retryable and the caller should back off and try again.
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, out any, last bool) (done bool, _ error) {
	var reader io.Reader
	if payload != nil {
		reader = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, reader)
	if err != nil {
		return true, fmt.Errorf("build %s %s: %w", method, path, err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// A transport error on a non-GET may have reached the server;
		// only idempotent requests are safe to retry blindly.
		wrapped := fmt.Errorf("%s %s: %w", method, path, err)
		if method != http.MethodGet || last || ctx.Err() != nil {
			return true, wrapped
		}
		return false, wrapped
	}
	if resp.StatusCode == http.StatusOK {
		decodeErr := json.NewDecoder(resp.Body).Decode(out)
		drainClose(resp.Body)
		if decodeErr != nil {
			return true, fmt.Errorf("decode %s %s response: %w", method, path, decodeErr)
		}
		return true, nil
	}

	apiErr := c.readAPIError(resp) // drains and closes the body
	wrapped := fmt.Errorf("%s %s: %w", method, path, apiErr)
	retryable := resp.StatusCode == http.StatusTooManyRequests ||
		(method == http.MethodGet && resp.StatusCode >= 500)
	if !retryable || last || ctx.Err() != nil {
		return true, wrapped
	}
	return false, wrapped
}

// StatusError is the typed error Client returns for non-OK responses,
// exposing the status code (and Retry-After, when the server sent one)
// to callers and to the retry loop.
type StatusError struct {
	Status     int
	Message    string // server-provided error body, if any
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("status %d: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("status %d", e.Status)
}

// readAPIError converts a non-OK response into a *StatusError, draining
// the body so the underlying connection stays reusable.
func (c *Client) readAPIError(resp *http.Response) *StatusError {
	se := &StatusError{Status: resp.StatusCode}
	var apiErr errorBody
	if decodeErr := json.NewDecoder(resp.Body).Decode(&apiErr); decodeErr == nil {
		se.Message = apiErr.Error
	}
	drainClose(resp.Body)
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		se.RetryAfter = parseRetryAfter(ra, c.now)
	}
	return se
}

// parseRetryAfter interprets a Retry-After header value per RFC 9110
// §10.2.3: either delta-seconds or an HTTP-date in any of the three
// accepted formats (IMF-fixdate, obsolete RFC 850, ANSI C asctime).
// Negative deltas and past dates clamp to zero, which the backoff
// treats as "no usable hint" and falls back to its computed delay;
// malformed values also yield zero. The clock is only consulted for
// the date forms.
func parseRetryAfter(ra string, now func() time.Time) time.Duration {
	if secs, err := strconv.Atoi(ra); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	date, err := http.ParseTime(ra)
	if err != nil {
		return 0
	}
	d := date.Sub(now())
	if d < 0 {
		return 0
	}
	return d
}

// backoff computes the sleep before retry number attempt+1:
// exponential doubling from BaseDelay, capped at MaxDelay, with
// half-range jitter so synchronised clients spread out. A server
// Retry-After hint overrides the computed delay (still capped).
func (c *Client) backoff(attempt int, err error) time.Duration {
	maxDelay := c.retry.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	d := c.retry.BaseDelay
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	for i := 0; i < attempt && d < maxDelay; i++ {
		d *= 2
	}
	var se *StatusError
	if errors.As(err, &se) && se.RetryAfter > 0 {
		d = se.RetryAfter
	}
	if d > maxDelay {
		d = maxDelay
	}
	// Half-range jitter: uniform in [d/2, d].
	half := d / 2
	if half > 0 {
		d = half + c.retry.Jitter(half)
	}
	return d
}

// sleepCtx sleeps for d unless ctx expires first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// drainClose discards up to 64 KiB of unread body before closing so the
// HTTP transport can reuse the keep-alive connection; without the drain
// every error response would tear down and re-dial the connection,
// which compounds exactly when the server is shedding load.
func drainClose(body io.ReadCloser) {
	_, _ = io.CopyN(io.Discard, body, 64<<10)
	_ = body.Close()
}
