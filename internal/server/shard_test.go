package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

// shardDests returns one destination per shard, dests[i] routing to
// shard i at the given precision, found by scanning a city-scale grid
// (one probe per planar cell).
func shardDests(t *testing.T, precision, shards int) []geo.Point {
	t.Helper()
	dests := make([]geo.Point, shards)
	seen := make([]bool, shards)
	found := 0
	for i := 0; i < 32 && found < shards; i++ {
		for j := 0; j < 32 && found < shards; j++ {
			p := geo.Pt(float64(i)*400, float64(j)*400)
			s := geo.ShardOf(p, precision, shards)
			if !seen[s] {
				seen[s] = true
				dests[s] = p
				found++
			}
		}
	}
	if found < shards {
		t.Fatalf("grid scan reached only %d/%d shards", found, shards)
	}
	return dests
}

// do serves one in-process request and returns status and body.
func do(t *testing.T, srv *Server, method, target, body string) (int, string) {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, target, nil)
	} else {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func placeBody(t *testing.T, dest geo.Point) string {
	t.Helper()
	b, err := json.Marshal(PlaceRequest{Dest: dest})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded(nil); err == nil {
		t.Error("empty placer list accepted")
	}
	meyerson, err := core.NewMeyerson(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSharded([]core.OnlinePlacer{meyerson, nil}); err == nil {
		t.Error("nil shard placer accepted")
	}
	if _, err := NewSharded([]core.OnlinePlacer{meyerson, newBlockingPlacer()}); err == nil {
		t.Error("mixed-algorithm shards accepted")
	}
}

// TestSingleShardDifferentialBitIdentical is the compatibility
// invariant of the sharding refactor: a NewSharded server with one
// placer must be byte-for-byte indistinguishable from the historical
// unsharded New server — every placement response, the stations body
// and the stats body — and both must carry the reference placer's
// decisions verbatim.
func TestSingleShardDifferentialBitIdentical(t *testing.T) {
	unsharded, err := New(newWALPlacer(t))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded([]core.OnlinePlacer{newWALPlacer(t)})
	if err != nil {
		t.Fatal(err)
	}
	ref := newWALPlacer(t)

	for i, dest := range walDests(60) {
		body := placeBody(t, dest)
		codeA, bodyA := do(t, unsharded, http.MethodPost, "/v1/requests", body)
		codeB, bodyB := do(t, sharded, http.MethodPost, "/v1/requests", body)
		if codeA != http.StatusOK {
			t.Fatalf("request %d: unsharded status %d: %s", i, codeA, bodyA)
		}
		if codeA != codeB || bodyA != bodyB {
			t.Fatalf("request %d diverged:\n unsharded %d %s\n sharded   %d %s", i, codeA, bodyA, codeB, bodyB)
		}
		want, err := ref.Place(dest)
		if err != nil {
			t.Fatal(err)
		}
		var got PlaceResponse
		if err := json.Unmarshal([]byte(bodyA), &got); err != nil {
			t.Fatal(err)
		}
		if got.Station != want.Station || got.StationIndex != want.StationIndex ||
			got.Opened != want.Opened ||
			math.Float64bits(got.WalkMeters) != math.Float64bits(want.Walk) {
			t.Fatalf("request %d: server decision %+v, reference %+v", i, got, want)
		}

		if i%10 != 9 {
			continue
		}
		for _, path := range []string{"/v1/stations", "/v1/stats"} {
			codeA, bodyA := do(t, unsharded, http.MethodGet, path, "")
			codeB, bodyB := do(t, sharded, http.MethodGet, path, "")
			if codeA != http.StatusOK || codeA != codeB || bodyA != bodyB {
				t.Fatalf("after %d requests, %s diverged:\n unsharded %d %s\n sharded   %d %s",
					i+1, path, codeA, bodyA, codeB, bodyB)
			}
		}
	}
	// A single-shard stats body must not grow a shards breakdown.
	if _, body := do(t, sharded, http.MethodGet, "/v1/stats", ""); strings.Contains(body, `"shards"`) {
		t.Errorf("single-shard stats body exposes a shards breakdown: %s", body)
	}
}

// TestShardRoutingBoundariesDeterministic: destinations exactly on
// planar cell boundaries must route to one well-defined shard — the
// same one geo.ShardOf names — on every request.
func TestShardRoutingBoundariesDeterministic(t *testing.T) {
	const shards, precision = 4, 7
	placers := make([]core.OnlinePlacer, shards)
	for i := range placers {
		p, err := core.NewMeyerson(5000, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		placers[i] = p
	}
	srv, err := NewSharded(placers, WithShardPrecision(precision))
	if err != nil {
		t.Fatal(err)
	}

	dests := []geo.Point{
		geo.Pt(0, 0), // boundary at every bisection level
		geo.Pt(-0.001, 0),
		geo.Pt(geo.PlanarWorldExtent/4, 1000), // deep longitude boundary
		geo.Pt(400, 800),
		geo.Pt(1234.5, 678.9),
	}
	counts := make([]int64, shards)
	for _, dest := range dests {
		want := geo.ShardOf(dest, precision, shards)
		for rep := 0; rep < 3; rep++ {
			placeOK(t, srv, dest)
			counts[want]++
			for i, sh := range srv.shards {
				if got := sh.requests.Load(); got != counts[i] {
					t.Fatalf("dest %v rep %d: shard %d requests = %d, want %d (expected shard %d)",
						dest, rep, i, got, counts[i], want)
				}
			}
		}
	}
}

// TestMultiShardStormReconciles drives a 4-shard server through
// deterministic saturation, a concurrent mixed storm and unmatched
// routes, then demands exact reconciliation per shard and fleet-wide:
// accepted + shed == sent on every shard, in /v1/stats, and in the
// shard-labelled /metrics families; 404/405 fallbacks still land in
// the epOther counters.
func TestMultiShardStormReconciles(t *testing.T) {
	const shards, precision = 4, 7
	blockers := make([]*blockingPlacer, shards)
	placers := make([]core.OnlinePlacer, shards)
	for i := range placers {
		blockers[i] = newBlockingPlacer()
		placers[i] = blockers[i]
	}
	// MaxInFlight 4 over 4 shards: each shard admits exactly one request.
	srv, err := NewSharded(placers, WithMaxInFlight(shards), WithShardPrecision(precision))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	dests := shardDests(t, precision, shards)
	post := func(dest geo.Point) (*http.Response, error) {
		body, err := json.Marshal(PlaceRequest{Dest: dest})
		if err != nil {
			t.Fatal(err)
		}
		return http.Post(ts.URL+"/v1/requests", "application/json", strings.NewReader(string(body)))
	}

	// Phase 1: park one request inside every shard's placer, so every
	// admission slot is held.
	var holders sync.WaitGroup
	holderStatus := make([]int32, shards)
	for i := 0; i < shards; i++ {
		holders.Add(1)
		go func(i int) {
			defer holders.Done()
			resp, err := post(dests[i])
			if err != nil {
				t.Error(err)
				return
			}
			defer func() { _ = resp.Body.Close() }()
			atomic.StoreInt32(&holderStatus[i], int32(resp.StatusCode))
		}(i)
		<-blockers[i].entered
	}

	// Deterministic shedding: with every slot held, each extra request
	// must shed instantly with the shard's own 429 message.
	const shedEach = 5
	for i := 0; i < shards; i++ {
		for k := 0; k < shedEach; k++ {
			resp, err := post(dests[i])
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("shard %d: saturated request got %d: %s", i, resp.StatusCode, body)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Errorf("shard %d: shed response lacks Retry-After", i)
			}
			if want := fmt.Sprintf("shard %d", i); !strings.Contains(string(body), want) {
				t.Errorf("shard %d: shed body %q does not name the shard", i, body)
			}
		}
	}

	// Reads stay lock-free while every decision lock is held.
	fams := scrape(t, ts.URL)
	if got := famValue(fams, "esharing_shards"); got != shards {
		t.Errorf("esharing_shards = %g, want %d", got, shards)
	}
	if got := famValue(fams, "esharing_place_queue_depth"); got != shards {
		t.Errorf("queue depth = %g, want %d (one held request per shard)", got, shards)
	}

	// Phase 2: release the placers; the held requests must complete.
	for _, b := range blockers {
		close(b.gate)
	}
	holders.Wait()
	for i, st := range holderStatus {
		if st != http.StatusOK {
			t.Fatalf("shard %d: held request finished with %d", i, st)
		}
	}

	// Phase 3: concurrent mixed storm across all shards plus unmatched
	// routes, tallying client-side per expected shard.
	var ok, shed [shards]atomic.Int64
	var sent [shards]atomic.Int64
	var unexpected atomic.Int64
	var wg sync.WaitGroup
	const writers, perWriter = 8, 24
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perWriter; k++ {
				i := (g*perWriter + k) % shards
				sent[i].Add(1)
				resp, err := post(dests[i])
				if err != nil {
					t.Error(err)
					return
				}
				_ = resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok[i].Add(1)
				case http.StatusTooManyRequests:
					shed[i].Add(1)
				default:
					unexpected.Add(1)
				}
			}
		}(g)
	}
	const notFounds, badMethods = 3, 3
	for k := 0; k < notFounds; k++ {
		resp, err := http.Get(ts.URL + "/nope")
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET /nope = %d, want 404", resp.StatusCode)
		}
	}
	for k := 0; k < badMethods; k++ {
		resp, err := http.Post(ts.URL+"/v1/stations", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /v1/stations = %d, want 405", resp.StatusCode)
		}
	}
	wg.Wait()
	if unexpected.Load() != 0 {
		t.Fatalf("%d requests returned neither 200 nor 429", unexpected.Load())
	}

	// Per-shard reconciliation against the shard counters.
	var totalOK, totalShed, totalSent int64
	for i, sh := range srv.shards {
		wantOK := ok[i].Load() + 1            // + the held phase-1 request
		wantShed := shed[i].Load() + shedEach // + the deterministic sheds
		wantSent := sent[i].Load() + 1 + shedEach
		if got := sh.requests.Load(); got != wantOK {
			t.Errorf("shard %d: requests = %d, want %d", i, got, wantOK)
		}
		if got := sh.shed.Load(); got != wantShed {
			t.Errorf("shard %d: shed = %d, want %d", i, got, wantShed)
		}
		if wantOK+wantShed != wantSent {
			t.Errorf("shard %d: accepted %d + shed %d != sent %d", i, wantOK, wantShed, wantSent)
		}
		totalOK += wantOK
		totalShed += wantShed
		totalSent += wantSent
	}

	// Fleet-wide reconciliation in /v1/stats, including the per-shard
	// breakdown.
	_, statsBody := do(t, srv, http.MethodGet, "/v1/stats", "")
	var st StatsResponse
	if err := json.Unmarshal([]byte(statsBody), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != totalOK || st.Shed != totalShed {
		t.Errorf("stats requests=%d shed=%d, want %d/%d", st.Requests, st.Shed, totalOK, totalShed)
	}
	if st.Requests+st.Shed != totalSent {
		t.Errorf("stats accepted %d + shed %d != sent %d", st.Requests, st.Shed, totalSent)
	}
	if len(st.Shards) != shards {
		t.Fatalf("stats shards breakdown has %d entries, want %d", len(st.Shards), shards)
	}
	for i, ss := range st.Shards {
		if ss.Shard != i || ss.Requests != srv.shards[i].requests.Load() || ss.Shed != srv.shards[i].shed.Load() {
			t.Errorf("stats shard %d entry %+v does not match counters", i, ss)
		}
		if ss.LastSimilarity != nil {
			t.Errorf("shard %d: blocking placer reports a similarity figure", i)
		}
	}
	if st.LastSimilarity != nil {
		t.Error("aggregate similarity present without an ESharing placer")
	}

	// The same books in /metrics: aggregates, shard-labelled series and
	// the epOther error kinds.
	fams = scrape(t, ts.URL)
	if got := counterValue(fams["esharing_requests_total"], nil); got != float64(totalOK) {
		t.Errorf("requests_total = %g, want %d", got, totalOK)
	}
	if got := counterValue(fams["esharing_requests_shed_total"], nil); got != float64(totalShed) {
		t.Errorf("shed_total = %g, want %d", got, totalShed)
	}
	for i, sh := range srv.shards {
		label := map[string]string{"shard": fmt.Sprintf("%d", i)}
		if got := counterValue(fams["esharing_shard_requests_total"], label); got != float64(sh.requests.Load()) {
			t.Errorf("shard_requests_total{shard=%d} = %g, want %d", i, got, sh.requests.Load())
		}
		if got := counterValue(fams["esharing_shard_requests_shed_total"], label); got != float64(sh.shed.Load()) {
			t.Errorf("shard_requests_shed_total{shard=%d} = %g, want %d", i, got, sh.shed.Load())
		}
	}
	if got := counterValue(fams["esharing_request_errors_total"],
		map[string]string{"endpoint": "place", "kind": "shed"}); got != float64(totalShed) {
		t.Errorf("place shed errors = %g, want %d", got, totalShed)
	}
	if got := counterValue(fams["esharing_request_errors_total"],
		map[string]string{"endpoint": "other", "kind": "not_found"}); got != notFounds {
		t.Errorf("other not_found errors = %g, want %d", got, notFounds)
	}
	if got := counterValue(fams["esharing_request_errors_total"],
		map[string]string{"endpoint": "other", "kind": "method_not_allowed"}); got != badMethods {
		t.Errorf("other method_not_allowed errors = %g, want %d", got, badMethods)
	}
	if got := counterValue(fams["esharing_request_errors_all_total"], nil); got != float64(totalShed+notFounds+badMethods) {
		t.Errorf("errors_all_total = %g, want %d", got, totalShed+notFounds+badMethods)
	}
}

// TestShardedStationsMergeDeterministic: /v1/stations must be the
// per-shard station sets concatenated in shard-index order, stable
// across repeated reads and equal to a fresh encoding of the placers'
// own station lists.
func TestShardedStationsMergeDeterministic(t *testing.T) {
	const shards, precision = 3, 7
	placers := make([]core.OnlinePlacer, shards)
	for i := range placers {
		// Opening cost 1: every distinct destination opens a station, so
		// each shard grows a recognisable, ordered station list.
		p, err := core.NewMeyerson(1, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < i+2; k++ {
			if _, err := p.Place(geo.Pt(float64(i)*10_000, float64(k)*500)); err != nil {
				t.Fatal(err)
			}
		}
		placers[i] = p
	}
	srv, err := NewSharded(placers, WithShardPrecision(precision))
	if err != nil {
		t.Fatal(err)
	}

	wantBody := func() string {
		var all []geo.Point
		for _, p := range placers {
			all = append(all, p.Stations()...)
		}
		b, err := json.Marshal(StationsResponse{Stations: all})
		if err != nil {
			t.Fatal(err)
		}
		return string(b) + "\n"
	}

	code, first := do(t, srv, http.MethodGet, "/v1/stations", "")
	if code != http.StatusOK {
		t.Fatalf("stations: %d", code)
	}
	if first != wantBody() {
		t.Fatalf("merged stations != shard-order concatenation:\n got %s\nwant %s", first, wantBody())
	}
	if _, again := do(t, srv, http.MethodGet, "/v1/stations", ""); again != first {
		t.Fatal("repeated reads of an unchanged server differ")
	}

	// A placement that opens a station on one shard must appear in that
	// shard's segment of the merge, and the body must track the placers
	// exactly.
	dests := shardDests(t, precision, shards)
	placeOK(t, srv, dests[1])
	_, after := do(t, srv, http.MethodGet, "/v1/stations", "")
	if after != wantBody() {
		t.Fatalf("post-placement merge diverged:\n got %s\nwant %s", after, wantBody())
	}
	if after == first {
		t.Fatal("opening a station did not change the merged body")
	}
}

// TestShardedWALRecovery: a multi-shard server keeps one decision log
// per shard (wal/shard-<index>/), recovers every shard bit-identically,
// and a WAL failure on any single shard degrades /healthz.
func TestShardedWALRecovery(t *testing.T) {
	const shards, precision = 2, 7
	dir := t.TempDir()
	build := func() *Server {
		t.Helper()
		placers := make([]core.OnlinePlacer, shards)
		for i := range placers {
			placers[i] = newWALPlacer(t)
		}
		srv, err := NewSharded(placers, WithShardPrecision(precision), WithWAL(dir, 1, 8))
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	srv := build()
	for _, d := range walDests(40) {
		placeOK(t, srv, d)
	}
	var perShard [shards]int64
	for i, sh := range srv.shards {
		perShard[i] = sh.requests.Load()
		if perShard[i] == 0 {
			t.Fatalf("shard %d served no requests; destinations did not spread", i)
		}
	}
	before := capture(t, srv)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards; i++ {
		log := filepath.Join(dir, fmt.Sprintf("shard-%03d", i), "wal.log")
		if _, err := os.Stat(log); err != nil {
			t.Fatalf("shard %d decision log missing: %v", i, err)
		}
	}

	restored := build()
	defer restored.Close()
	sameServingState(t, capture(t, restored), before)
	for i, sh := range restored.shards {
		if got := sh.requests.Load(); got != perShard[i] {
			t.Errorf("shard %d recovered %d requests, want %d", i, got, perShard[i])
		}
	}

	// Sabotage shard 1's log only: the next decision on that shard fails
	// to append and the whole instance reports degraded.
	if code, _ := do(t, restored, http.MethodGet, "/healthz", ""); code != http.StatusOK {
		t.Fatalf("recovered server unhealthy: %d", code)
	}
	sh := restored.shards[1]
	sh.decision <- struct{}{}
	sh.wal.Close()
	<-sh.decision
	dests := shardDests(t, precision, shards)
	placeOK(t, restored, dests[1])
	if code, body := do(t, restored, http.MethodGet, "/healthz", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("one-shard WAL failure not degraded: %d %s", code, body)
	}
	// The healthy shard keeps serving.
	placeOK(t, restored, dests[0])
	if got := restored.shards[0].walFailures.Load(); got != 0 {
		t.Errorf("healthy shard counted %d WAL failures", got)
	}
	if got := sh.walFailures.Load(); got == 0 {
		t.Error("failed shard counted no WAL failures")
	}
}

// TestStatsZeroSimilarityExplicit pins the wire contract of the
// similarity figure: a shard whose last KS test scored 0% must
// serialise an explicit zero — never an omitted field — while a placer
// without a similarity figure omits the field entirely. (With the old
// plain-float omitempty tag the two cases were indistinguishable.)
func TestStatsZeroSimilarityExplicit(t *testing.T) {
	srv, err := New(newWALPlacer(t))
	if err != nil {
		t.Fatal(err)
	}
	// Publish a genuine 0% figure, the value a fully out-of-distribution
	// window scores.
	sh := srv.shards[0]
	sh.snap.Store(&readSnapshot{stations: sh.snap.Load().stations, lastSim: 0, hasSim: true})
	code, body := do(t, srv, http.MethodGet, "/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if !strings.Contains(body, `"lastSimilarityPct":0`) {
		t.Errorf("zero similarity not serialised explicitly: %s", body)
	}
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.LastSimilarity == nil || *st.LastSimilarity != 0 {
		t.Errorf("LastSimilarity = %v, want explicit 0", st.LastSimilarity)
	}

	meyerson, err := core.NewMeyerson(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(meyerson)
	if err != nil {
		t.Fatal(err)
	}
	if _, body := do(t, plain, http.MethodGet, "/v1/stats", ""); strings.Contains(body, "lastSimilarityPct") {
		t.Errorf("placer without a similarity figure serialised one: %s", body)
	}
}
