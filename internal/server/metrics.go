package server

import (
	"fmt"
	"math"
	"net/http"
	"strings"
)

// handleMetrics renders counters in the Prometheus text exposition
// format so standard scrapers can monitor a deployment without extra
// dependencies. The tier-1 figures come from atomic counters and the
// published station snapshot, so a scrape never contends with the
// placement decision stream; only the tier-2 fleet gauges briefly take
// the fleet's own lock.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	requests := s.requests.Load()
	opened := s.opened.Load()
	walk := math.Float64frombits(s.walkBits.Load())
	stations := len(s.snap.Load().stations)
	var fleetSize, fleetLow int
	hasFleet := s.fleet != nil
	if hasFleet {
		s.fleetMu.Lock()
		fleetSize = s.fleet.Len()
		fleetLow = len(s.fleet.LowBikes())
		s.fleetMu.Unlock()
	}

	var sb strings.Builder
	writeMetric := func(name, help, typ string, value any) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, value)
	}
	writeMetric("esharing_requests_total", "Trip requests served.", "counter", requests)
	writeMetric("esharing_stations_opened_total", "Stations opened online.", "counter", opened)
	writeMetric("esharing_walk_meters_total", "Cumulative rider walking distance.", "counter", walk)
	writeMetric("esharing_stations", "Currently established stations.", "gauge", stations)
	if hasFleet {
		writeMetric("esharing_fleet_bikes", "Registered bikes.", "gauge", fleetSize)
		writeMetric("esharing_fleet_low_bikes", "Bikes below the charging threshold.", "gauge", fleetLow)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(sb.String()))
}
