package server

import (
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// Per-endpoint request instrumentation. Every observation path is
// lock-free — fixed-bucket histograms and counter families backed by
// atomics — so a /metrics scrape (or a latency observation on the hot
// path) never contends with the serialised decision stream.

// Endpoint indices for the instrumented routes. epOther catches
// requests no registered route matches (the mux's 404/405 responses),
// which would otherwise bypass instrumentation and leave client-visible
// errors uncounted. Fleet endpoints are registered only by NewWithFleet
// but always have slots so the arrays stay fixed-size.
const (
	epPlace = iota
	epStations
	epStats
	epHealth
	epMetrics
	epOther
	epBikes
	epAddBike
	epRide
	epCharging
	numEndpoints
)

var endpointNames = [numEndpoints]string{
	"place", "stations", "stats", "healthz", "metrics", "other",
	"bikes", "add_bike", "ride", "charging_round",
}

// Error kinds for esharing_request_errors_total, derived from the
// response status so the counters reconcile exactly with what clients
// observed.
const (
	kindBadRequest = iota
	kindTooLarge
	kindNotFound
	kindMethodNotAllowed
	kindUnprocessable
	kindShed
	kindCanceled
	kindServerError
	kindOther
	numKinds
)

var kindNames = [numKinds]string{
	"bad_request", "too_large", "not_found", "method_not_allowed",
	"unprocessable", "shed", "canceled", "server_error", "other",
}

// statusClientClosedRequest reports a request whose context was
// cancelled while it waited in the admission queue (nginx's 499
// convention; the client is gone, so the code is for the books only).
const statusClientClosedRequest = 499

func kindOfStatus(status int) int {
	switch {
	case status == http.StatusRequestEntityTooLarge:
		return kindTooLarge
	case status == http.StatusNotFound:
		return kindNotFound
	case status == http.StatusMethodNotAllowed:
		return kindMethodNotAllowed
	case status == http.StatusUnprocessableEntity:
		return kindUnprocessable
	case status == http.StatusTooManyRequests:
		return kindShed
	case status == statusClientClosedRequest:
		return kindCanceled
	case status >= 500:
		return kindServerError
	case status == http.StatusBadRequest:
		return kindBadRequest
	default:
		return kindOther
	}
}

// latencyBucketBounds are the histogram upper bounds in seconds
// (exclusive of the implicit +Inf bucket). They span 100µs..5s: the
// decision hot path sits in the first few buckets, queue waits and
// tier-2 charging rounds in the tail.
var latencyBucketBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// numLatencyBuckets counts the finite bounds plus the +Inf bucket.
const numLatencyBuckets = 16

// Pre-rendered static prefixes of every histogram and error-counter
// sample line ("name{labels} " up to the value). A scrape only appends
// integers to these, which keeps /metrics off the fmt slow path — it is
// polled continuously by monitoring while the decision stream runs.
var (
	histBucketPrefixes [numEndpoints][numLatencyBuckets]string
	histSumPrefixes    [numEndpoints]string
	histCountPrefixes  [numEndpoints]string
	errLinePrefixes    [numEndpoints][numKinds]string
)

func init() {
	if len(latencyBucketBounds)+1 != numLatencyBuckets {
		panic("server: numLatencyBuckets out of sync with latencyBucketBounds")
	}
	for ep, name := range endpointNames {
		for i, bound := range latencyBucketBounds {
			histBucketPrefixes[ep][i] = fmt.Sprintf(
				"esharing_request_duration_seconds_bucket{endpoint=%q,le=%q} ", name, formatBound(bound))
		}
		histBucketPrefixes[ep][numLatencyBuckets-1] = fmt.Sprintf(
			"esharing_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} ", name)
		histSumPrefixes[ep] = fmt.Sprintf("esharing_request_duration_seconds_sum{endpoint=%q} ", name)
		histCountPrefixes[ep] = fmt.Sprintf("esharing_request_duration_seconds_count{endpoint=%q} ", name)
		for k, kind := range kindNames {
			errLinePrefixes[ep][k] = fmt.Sprintf(
				"esharing_request_errors_total{endpoint=%q,kind=%q} ", name, kind)
		}
	}
}

// latencyHistogram is a fixed-bucket histogram with atomic counters.
// Buckets store per-bucket (non-cumulative) counts; the renderer
// accumulates them into Prometheus's cumulative le-form at scrape time,
// so observers never touch more than one counter.
type latencyHistogram struct {
	buckets  [numLatencyBuckets]atomic.Int64
	sumNanos atomic.Int64
}

// observe records one request latency; it runs on every served
// request, so it must stay allocation-free.
//
//esharing:hotpath
func (h *latencyHistogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.SearchFloat64s(latencyBucketBounds, d.Seconds())
	h.buckets[i].Add(1) // i == len(bounds) is the +Inf bucket
	h.sumNanos.Add(int64(d))
}

// endpointMetrics aggregates one route's latency histogram and error
// counters.
type endpointMetrics struct {
	latency latencyHistogram
	errs    [numKinds]atomic.Int64
}

// statusRecorder captures the response status for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// maxBodyBytes caps request bodies: a placement or fleet request is a
// small JSON object, so anything bigger is garbage or abuse.
const maxBodyBytes = 1 << 20

// instrument wraps a route handler with the shared serving-path
// armour: body-size cap, in-flight gauge, latency histogram, and
// status-derived error counting. The returned closure inherits the
// hot-path constraint — it brackets every request.
//
//esharing:hotpath
func (s *Server) instrument(ep int, h http.HandlerFunc) http.HandlerFunc {
	m := &s.endpoints[ep]
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if r.Method == http.MethodPost && r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		}
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h(rec, r)
		m.latency.observe(time.Since(start))
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		if status >= 400 {
			s.errors.Add(1)
			m.errs[kindOfStatus(status)].Add(1)
		}
	}
}

// handleMetrics renders counters in the Prometheus text exposition
// format so standard scrapers can monitor a deployment without extra
// dependencies. Everything tier-1 comes from atomic counters and the
// published station snapshot, so a scrape never contends with the
// placement decision stream; only the tier-2 fleet gauges briefly take
// the fleet's own lock.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	v := s.view()
	var requests, opened, shed int64
	var walk float64
	var queueDepth, queueLimit int
	hasWAL := false
	for _, sh := range s.shards {
		requests += sh.requests.Load()
		opened += sh.opened.Load()
		walk += math.Float64frombits(sh.walkBits.Load())
		shed += sh.shed.Load()
		queueDepth += len(sh.queue)
		queueLimit += sh.maxInFlight
		// The wal pointers are written once during construction and
		// never reassigned while serving; their Metrics() reads are
		// atomic.
		if sh.wal != nil { //esharing:allow guardedby -- set-once pointer, nil-check only
			hasWAL = true
		}
	}
	stations := len(v.stations)
	var fleetSize, fleetLow int
	hasFleet := s.fleet != nil
	if hasFleet {
		s.fleetMu.Lock()
		fleetSize = s.fleet.Len()
		fleetLow = len(s.fleet.LowBikes())
		s.fleetMu.Unlock()
	}

	var sb strings.Builder
	sb.Grow(8 << 10)
	writeMetric := func(name, help, typ string, value any) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, value)
	}
	writeMetric("esharing_requests_total", "Trip requests served.", "counter", requests)
	writeMetric("esharing_stations_opened_total", "Stations opened online.", "counter", opened)
	writeMetric("esharing_walk_meters_total", "Cumulative rider walking distance.", "counter", walk)
	writeMetric("esharing_stations", "Currently established stations.", "gauge", stations)
	writeMetric("esharing_requests_shed_total", "Placement requests shed with 429 because the admission queue was full.", "counter", shed)
	writeMetric("esharing_request_errors_all_total", "Error responses across all endpoints.", "counter", s.errors.Load())
	writeMetric("esharing_inflight_requests", "HTTP requests currently being served.", "gauge", s.inflight.Load())
	writeMetric("esharing_place_queue_depth", "Placement requests admitted and queued on the decision locks.", "gauge", queueDepth)
	writeMetric("esharing_place_queue_limit", "Admission queue capacity (-max-inflight, summed over shards).", "gauge", queueLimit)
	writeMetric("esharing_shards", "Independent geo-sharded decision loops.", "gauge", len(s.shards))
	if hasFleet {
		writeMetric("esharing_fleet_bikes", "Registered bikes.", "gauge", fleetSize)
		writeMetric("esharing_fleet_low_bikes", "Bikes below the charging threshold.", "gauge", fleetLow)
	}
	if hasWAL {
		var wm wal.Metrics
		var walFailures, walReplayed, walReplayNanos int64
		for _, sh := range s.shards {
			if sh.wal == nil { //esharing:allow guardedby -- set-once pointer, internally atomic counters
				continue
			}
			m := sh.wal.Metrics() //esharing:allow guardedby -- same
			wm.Appended += m.Appended
			wm.Fsyncs += m.Fsyncs
			wm.Truncations += m.Truncations
			wm.Size += m.Size
			walFailures += sh.walFailures.Load()
			walReplayed += sh.walReplayed.Load()
			walReplayNanos += sh.walReplayNanos.Load()
		}
		writeMetric("esharing_wal_appended_records_total", "Decision log records appended.", "counter", wm.Appended)
		writeMetric("esharing_wal_fsyncs_total", "Explicit fsyncs issued by the decision log.", "counter", wm.Fsyncs)
		writeMetric("esharing_wal_truncations_total", "Snapshot-and-truncate cycles completed.", "counter", wm.Truncations)
		writeMetric("esharing_wal_size_bytes", "Current decision log file size.", "gauge", wm.Size)
		writeMetric("esharing_wal_failures_total", "Decision log writes that failed (server degraded).", "counter", walFailures)
		writeMetric("esharing_wal_replayed_records", "Records replayed from the log at startup.", "gauge", walReplayed)
		writeMetric("esharing_wal_replay_duration_seconds", "Startup recovery replay duration.", "gauge",
			float64(walReplayNanos)/1e9)
	}

	if len(s.shards) > 1 {
		// Per-shard series carry a shard label and exist only on
		// multi-shard servers, so single-shard scrapes stay
		// byte-compatible with the unsharded exposition.
		writeShardMetric := func(name, help, typ string, value func(sh *shard, part *readSnapshot) any) {
			fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
			for i, sh := range s.shards {
				fmt.Fprintf(&sb, "%s{shard=\"%d\"} %v\n", name, i, value(sh, v.parts[i]))
			}
		}
		writeShardMetric("esharing_shard_requests_total", "Trip requests served, by shard.", "counter",
			func(sh *shard, _ *readSnapshot) any { return sh.requests.Load() })
		writeShardMetric("esharing_shard_stations_opened_total", "Stations opened online, by shard.", "counter",
			func(sh *shard, _ *readSnapshot) any { return sh.opened.Load() })
		writeShardMetric("esharing_shard_walk_meters_total", "Cumulative rider walking distance, by shard.", "counter",
			func(sh *shard, _ *readSnapshot) any { return math.Float64frombits(sh.walkBits.Load()) })
		writeShardMetric("esharing_shard_stations", "Currently established stations, by shard.", "gauge",
			func(_ *shard, part *readSnapshot) any { return len(part.stations) })
		writeShardMetric("esharing_shard_requests_shed_total", "Placement requests shed with 429, by shard.", "counter",
			func(sh *shard, _ *readSnapshot) any { return sh.shed.Load() })
		writeShardMetric("esharing_shard_place_queue_depth", "Placement requests admitted and queued, by shard.", "gauge",
			func(sh *shard, _ *readSnapshot) any { return len(sh.queue) })
		if hasWAL {
			writeShardMetric("esharing_shard_wal_failures_total", "Decision log writes that failed, by shard.", "counter",
				func(sh *shard, _ *readSnapshot) any { return sh.walFailures.Load() })
		}
	}

	s.writeErrorCounters(&sb)
	s.writeLatencyHistograms(&sb)

	fmt.Fprintf(&sb, "# HELP esharing_build_info Build metadata; always 1.\n# TYPE esharing_build_info gauge\n")
	fmt.Fprintf(&sb, "esharing_build_info{go_version=%q,algorithm=%q} 1\n", runtime.Version(), s.name)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(sb.String()))
}

// writeErrorCounters renders the esharing_request_errors_total family.
// Only nonzero series are emitted to keep scrapes small; the family
// header is always present so dashboards can reference it.
//
//esharing:hotpath
func (s *Server) writeErrorCounters(sb *strings.Builder) {
	sb.WriteString("# HELP esharing_request_errors_total Error responses by endpoint and kind.\n")
	sb.WriteString("# TYPE esharing_request_errors_total counter\n")
	var num [24]byte
	for ep := range s.endpoints {
		if !s.endpointActive(ep) {
			continue
		}
		for k := 0; k < numKinds; k++ {
			if v := s.endpoints[ep].errs[k].Load(); v > 0 {
				sb.WriteString(errLinePrefixes[ep][k])
				sb.Write(strconv.AppendInt(num[:0], v, 10))
				sb.WriteByte('\n')
			}
		}
	}
}

// writeLatencyHistograms renders esharing_request_duration_seconds, one
// cumulative bucket series per instrumented endpoint.
//
//esharing:hotpath
func (s *Server) writeLatencyHistograms(sb *strings.Builder) {
	sb.WriteString("# HELP esharing_request_duration_seconds Request latency by endpoint.\n")
	sb.WriteString("# TYPE esharing_request_duration_seconds histogram\n")
	var num [32]byte
	for ep := range s.endpoints {
		if !s.endpointActive(ep) {
			continue
		}
		h := &s.endpoints[ep].latency
		var cum int64
		for i := 0; i < numLatencyBuckets; i++ {
			cum += h.buckets[i].Load()
			sb.WriteString(histBucketPrefixes[ep][i])
			sb.Write(strconv.AppendInt(num[:0], cum, 10))
			sb.WriteByte('\n')
		}
		sb.WriteString(histSumPrefixes[ep])
		sb.Write(strconv.AppendFloat(num[:0], float64(h.sumNanos.Load())/1e9, 'g', -1, 64))
		sb.WriteByte('\n')
		sb.WriteString(histCountPrefixes[ep])
		sb.Write(strconv.AppendInt(num[:0], cum, 10))
		sb.WriteByte('\n')
	}
}

// endpointActive reports whether ep's route is registered on this
// server (fleet endpoints only exist when a fleet is attached).
func (s *Server) endpointActive(ep int) bool {
	// Lock-free nil check: the fleet pointer is written once during
	// construction and never reassigned, only its contents mutate.
	return ep < epBikes || s.fleet != nil //esharing:allow guardedby -- set-once pointer, nil-check only
}

// formatBound renders a bucket bound the way Prometheus clients do
// (shortest float form: 0.0001, 0.25, 1, ...).
func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
