package server

import (
	"context"
	"net/http"

	"repro/internal/geo"
	"repro/internal/sim"
)

// Bikes fetches the fleet snapshot.
func (c *Client) Bikes(ctx context.Context) (BikesResponse, error) {
	var out BikesResponse
	err := c.do(ctx, http.MethodGet, "/v1/bikes", nil, &out)
	return out, err
}

// AddBike registers a bike with the backend fleet.
func (c *Client) AddBike(ctx context.Context, id int64, loc geo.Point, level float64) error {
	var out BikeView
	return c.do(ctx, http.MethodPost, "/v1/bikes", BikeView{ID: id, Loc: loc, Level: level}, &out)
}

// Ride moves a bike to dest, returning its updated state.
func (c *Client) Ride(ctx context.Context, bikeID int64, dest geo.Point) (BikeView, error) {
	var out BikeView
	err := c.do(ctx, http.MethodPost, "/v1/rides", RideRequest{BikeID: bikeID, Dest: dest}, &out)
	return out, err
}

// ChargingRound triggers a tier-2 service round at the given incentive
// level. A nil seed leaves the server's default cadence seed in place;
// any non-nil seed — including 0 — is used verbatim.
func (c *Client) ChargingRound(ctx context.Context, alpha float64, seed *uint64) (*sim.ChargingReport, error) {
	var out sim.ChargingReport
	if err := c.do(ctx, http.MethodPost, "/v1/charging-round", ChargingRequest{Alpha: alpha, Seed: seed}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
