package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/stats"
)

func newTestServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	placer, err := core.NewMeyerson(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(placer)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return ts, client
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil placer should error")
	}
	if _, err := NewClient("", nil); err == nil {
		t.Error("empty base URL should error")
	}
}

func TestPlaceAndStations(t *testing.T) {
	_, client := newTestServer(t)
	ctx := context.Background()

	first, err := client.Place(ctx, geo.Pt(100, 100))
	if err != nil {
		t.Fatal(err)
	}
	if !first.Opened || first.WalkMeters != 0 {
		t.Errorf("first placement should open: %+v", first)
	}

	second, err := client.Place(ctx, geo.Pt(101, 100))
	if err != nil {
		t.Fatal(err)
	}
	if second.Opened {
		t.Errorf("1 m from a station should assign, not open: %+v", second)
	}
	if second.WalkMeters != 1 {
		t.Errorf("walk=%v, want 1", second.WalkMeters)
	}

	stations, err := client.Stations(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(stations) != 1 || stations[0] != geo.Pt(100, 100) {
		t.Errorf("stations=%v", stations)
	}
}

func TestStats(t *testing.T) {
	_, client := newTestServer(t)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := client.Place(ctx, geo.Pt(float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Requests != 5 {
		t.Errorf("requests=%d, want 5", got.Requests)
	}
	if got.Algorithm != "meyerson" {
		t.Errorf("algorithm=%q", got.Algorithm)
	}
	if got.Opened < 1 || int(got.Opened) != got.Stations {
		t.Errorf("opened=%d stations=%d", got.Opened, got.Stations)
	}
}

func TestStatsExposesESharingSimilarity(t *testing.T) {
	hist := stats.SamplePoints(stats.NewRNG(1),
		stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 1000)}, 50)
	cfg := core.DefaultESharingConfig()
	cfg.TestEvery = 10
	cfg.WindowSize = 10
	placer, err := core.NewESharing([]geo.Point{geo.Pt(500, 500)}, 5000, hist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(placer)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := client.Place(ctx, geo.Pt(float64(i*40), 500)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSimilarity == nil {
		t.Error("E-sharing stats should expose the last similarity")
	} else if *got.LastSimilarity == 0 {
		t.Error("20 in-distribution requests should score a nonzero similarity")
	}
}

func TestHealth(t *testing.T) {
	_, client := newTestServer(t)
	if err := client.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	tests := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", "{", http.StatusBadRequest},
		{"unknown field", `{"dest":{"x":1,"y":2},"extra":true}`, http.StatusBadRequest},
		{"nan dest", `{"dest":{"x":null,"y":2}}`, http.StatusOK}, // null decodes to 0: valid
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/requests", "application/json", strings.NewReader(tt.body))
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = resp.Body.Close() }()
			if resp.StatusCode != tt.want {
				t.Errorf("status=%d, want %d", resp.StatusCode, tt.want)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST route: status=%d", resp.StatusCode)
	}
}

func TestConcurrentPlacements(t *testing.T) {
	// The server must serialise placer access; hammer it concurrently and
	// verify the counters add up (run with -race in CI).
	ts, client := newTestServer(t)
	_ = ts
	ctx := context.Background()
	const goroutines = 8
	const perG = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := client.Place(ctx, geo.Pt(float64(g*100+i), float64(i))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Requests != goroutines*perG {
		t.Errorf("requests=%d, want %d", got.Requests, goroutines*perG)
	}
}

func TestConcurrentMixedLoadConsistency(t *testing.T) {
	// Storm the write path and every read endpoint at once (run with
	// -race in CI): placements must stay serialised while /v1/stats,
	// /v1/stations and /metrics are served lock-free from the snapshot.
	// Afterwards the counters must reconcile exactly with the responses
	// the writers observed.
	hist := stats.SamplePoints(stats.NewRNG(2),
		stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 2000)}, 60)
	cfg := core.DefaultESharingConfig()
	cfg.TestEvery = 25
	cfg.WindowSize = 25
	landmarks := []geo.Point{geo.Pt(0, 0), geo.Pt(2000, 0), geo.Pt(0, 2000), geo.Pt(2000, 2000)}
	placer, err := core.NewESharing(landmarks, 5000, hist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(placer)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const writers, perWriter, readers = 6, 40, 4
	var openedSeen atomic.Int64
	errs := make(chan error, writers+readers)
	done := make(chan struct{})
	var wg sync.WaitGroup

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(g) + 10)
			dist := stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 2000)}
			for i := 0; i < perWriter; i++ {
				resp, err := client.Place(ctx, dist.Sample(rng))
				if err != nil {
					errs <- err
					return
				}
				if resp.Opened {
					openedSeen.Add(1)
				}
			}
		}(g)
	}
	var readerWg sync.WaitGroup
	for g := 0; g < readers; g++ {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := client.Stats(ctx); err != nil {
					errs <- err
					return
				}
				stations, err := client.Stations(ctx)
				if err != nil {
					errs <- err
					return
				}
				if len(stations) < len(landmarks) {
					errs <- fmt.Errorf("snapshot lost landmarks: %d stations", len(stations))
					return
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					errs <- err
					return
				}
				if _, err := io.ReadAll(resp.Body); err != nil {
					errs <- err
					return
				}
				_ = resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(done)
	readerWg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	got, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Requests != writers*perWriter {
		t.Errorf("requests=%d, want %d", got.Requests, writers*perWriter)
	}
	if got.Opened != openedSeen.Load() {
		t.Errorf("opened counter %d, want %d observed by writers", got.Opened, openedSeen.Load())
	}
	if want := len(landmarks) + int(openedSeen.Load()); got.Stations != want {
		t.Errorf("stations=%d, want %d (landmarks + opened)", got.Stations, want)
	}
	stations, err := client.Stations(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(stations) != got.Stations {
		t.Errorf("/v1/stations has %d entries, stats says %d", len(stations), got.Stations)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("esharing_requests_total %d\n", writers*perWriter)
	if !strings.Contains(string(body), want) {
		t.Errorf("metrics missing %q", want)
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	client, err := NewClient("http://127.0.0.1:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Place(context.Background(), geo.Pt(0, 0)); err == nil {
		t.Error("dead server should error")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, client := newTestServer(t)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := client.Place(ctx, geo.Pt(float64(i*500), 0)); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "esharing_requests_total 3") {
		t.Errorf("missing request counter:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE esharing_stations gauge") {
		t.Errorf("missing stations gauge:\n%s", text)
	}
	if strings.Contains(text, "esharing_fleet_bikes") {
		t.Error("fleet metrics present without a fleet")
	}
}

func TestMetricsWithFleet(t *testing.T) {
	ts, client := newFleetServer(t)
	if err := client.AddBike(context.Background(), 7, geo.Pt(0, 0), 0.1); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "esharing_fleet_low_bikes 1") {
		t.Errorf("missing fleet gauge:\n%s", body)
	}
}
