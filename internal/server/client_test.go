package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geo"
)

// fastRetry is a retry policy with delays small enough for tests.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}
}

func TestClientRetriesIdempotentGET(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintln(w, `{"error":"transient"}`)
			return
		}
		fmt.Fprintln(w, `{"algorithm":"stub","requests":7}`)
	}))
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client(), WithRetryPolicy(fastRetry(4)))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatalf("GET should retry past two 500s: %v", err)
	}
	if stats.Requests != 7 {
		t.Errorf("requests = %d, want 7", stats.Requests)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (two failures + success)", got)
	}
}

func TestClientDoesNotRetryFailedPOST(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintln(w, `{"error":"boom"}`)
	}))
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client(), WithRetryPolicy(fastRetry(4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Place(context.Background(), geo.Pt(1, 2)); err == nil {
		t.Fatal("500 on POST should error")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (a 500 POST may have side effects)", got)
	}
}

func TestClientRetries429WithRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"placement queue full"}`)
			return
		}
		fmt.Fprintln(w, `{"station":{"x":5,"y":6},"stationIndex":0,"opened":true,"walkMeters":0}`)
	}))
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client(), WithRetryPolicy(fastRetry(3)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Place(context.Background(), geo.Pt(5, 6))
	if err != nil {
		t.Fatalf("POST should retry a 429 (shed before any state change): %v", err)
	}
	if resp.Station != geo.Pt(5, 6) {
		t.Errorf("station = %v", resp.Station)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls, want 2", got)
	}
}

func TestClientRetryStopsAtDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintln(w, `{"error":"always down"}`)
	}))
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client(), WithRetryPolicy(RetryPolicy{
		MaxAttempts: 1000, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.Stats(ctx)
	if err == nil {
		t.Fatal("always-500 server should error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retry loop outlived its deadline: %v", elapsed)
	}
	// Depending on where the deadline lands the error is either the last
	// 500 or the transport's deadline error; both must reference the GET.
	if !strings.Contains(err.Error(), "/v1/stats") {
		t.Errorf("error lost its request context: %v", err)
	}
}

func TestClientRetryDisabled(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client(), WithRetryPolicy(RetryPolicy{MaxAttempts: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Stats(context.Background()); err == nil {
		t.Fatal("503 should error")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1", got)
	}
}

// TestClientDrainsErrorBodies verifies the keep-alive fix: error
// responses with unread payloads must be drained before close so the
// transport reuses the connection instead of re-dialing on every error.
func TestClientDrainsErrorBodies(t *testing.T) {
	var conns atomic.Int32
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		// Error envelope followed by padding the JSON decoder won't
		// consume: without a drain, Close tears down the connection.
		fmt.Fprint(w, `{"error":"no capacity"}`)
		fmt.Fprint(w, strings.Repeat(" ", 8<<10))
	}))
	ts.Config.ConnState = func(_ net.Conn, state http.ConnState) {
		if state == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	client, err := NewClient(ts.URL, ts.Client(), WithRetryPolicy(RetryPolicy{MaxAttempts: 1}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := client.Place(ctx, geo.Pt(1, 1)); err == nil {
			t.Fatal("422 should error")
		}
	}
	if got := conns.Load(); got != 1 {
		t.Errorf("%d connections dialed for 5 sequential errors, want 1 (keep-alive broken)", got)
	}
}

func TestStatusErrorMessage(t *testing.T) {
	se := &StatusError{Status: 422, Message: "no capacity", RetryAfter: time.Second}
	if se.Error() != "status 422: no capacity" {
		t.Errorf("Error() = %q", se.Error())
	}
	bare := &StatusError{Status: 500}
	if bare.Error() != "status 500" {
		t.Errorf("Error() = %q", bare.Error())
	}
}

// TestBackoffSequenceDeterministic pins down the exact backoff schedule
// a seeded jitter produces: identical (policy, seed) pairs must emit
// identical delays, every delay must land in the documented [d/2, d]
// half-range band of the capped exponential, and a different seed must
// change the schedule.
func TestBackoffSequenceDeterministic(t *testing.T) {
	policy := func(seed uint64) RetryPolicy {
		return RetryPolicy{
			MaxAttempts: 6,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    time.Second,
			Jitter:      NewSeededJitter(seed),
		}
	}
	mk := func(seed uint64) *Client {
		c, err := NewClient("http://unused", nil, WithRetryPolicy(policy(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	a, b, other := mk(1), mk(1), mk(2)
	// Uncapped exponential: 100ms, 200ms, 400ms, 800ms, then the 1s cap.
	envelope := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	var seqA, seqB, seqOther []time.Duration
	for attempt := range envelope {
		seqA = append(seqA, a.backoff(attempt, nil))
		seqB = append(seqB, b.backoff(attempt, nil))
		seqOther = append(seqOther, other.backoff(attempt, nil))
	}
	diverged := false
	for i, d := range envelope {
		if seqA[i] != seqB[i] {
			t.Errorf("attempt %d: same seed diverged: %v vs %v", i, seqA[i], seqB[i])
		}
		if seqA[i] < d/2 || seqA[i] > d {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", i, seqA[i], d/2, d)
		}
		if seqA[i] != seqOther[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Error("seeds 1 and 2 produced identical 6-delay schedules")
	}
}

// TestBackoffMatchesInjectedJitter verifies the documented contract
// between backoff and RetryPolicy.Jitter: each delay is exactly
// half + Jitter(half) of the capped exponential envelope, so a caller
// who injects a known jitter can predict the schedule to the nanosecond.
func TestBackoffMatchesInjectedJitter(t *testing.T) {
	c, err := NewClient("http://unused", nil, WithRetryPolicy(RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Jitter:      NewSeededJitter(7),
	}))
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewSeededJitter(7) // same stream, drawn in lockstep
	for attempt := 0; attempt < 4; attempt++ {
		d := 50 * time.Millisecond << attempt
		want := d/2 + oracle(d/2)
		if got := c.backoff(attempt, nil); got != want {
			t.Fatalf("attempt %d: backoff = %v, want %v", attempt, got, want)
		}
	}
}

// TestBackoffRetryAfterOverride checks a server Retry-After hint
// replaces the computed envelope (jitter still applies to the hint).
func TestBackoffRetryAfterOverride(t *testing.T) {
	c, err := NewClient("http://unused", nil, WithRetryPolicy(RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Second,
		Jitter:      NewSeededJitter(3),
	}))
	if err != nil {
		t.Fatal(err)
	}
	hint := &StatusError{Status: http.StatusTooManyRequests, RetryAfter: 4 * time.Second}
	d := c.backoff(0, fmt.Errorf("wrapped: %w", hint))
	if d < 2*time.Second || d > 4*time.Second {
		t.Fatalf("backoff with 4s Retry-After = %v, want within [2s, 4s]", d)
	}
}

// TestNewClientDefaultsJitter ensures a policy without an explicit
// Jitter still gets one, so backoff never dereferences nil.
func TestNewClientDefaultsJitter(t *testing.T) {
	c, err := NewClient("http://unused", nil, WithRetryPolicy(fastRetry(3)))
	if err != nil {
		t.Fatal(err)
	}
	if c.retry.Jitter == nil {
		t.Fatal("NewClient left RetryPolicy.Jitter nil")
	}
	if d := c.backoff(0, nil); d <= 0 {
		t.Fatalf("backoff with defaulted jitter = %v, want > 0", d)
	}
}

// TestParseRetryAfter covers RFC 9110 §10.2.3's full grammar:
// delta-seconds plus all three HTTP-date formats, with negative deltas,
// past dates and garbage clamped to zero. The clock is injected, so
// every expectation is exact.
func TestParseRetryAfter(t *testing.T) {
	// A fixed "now" makes the date arithmetic deterministic.
	now := time.Date(2024, time.March, 10, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	future := now.Add(90 * time.Second)
	for _, tc := range []struct {
		name, header string
		want         time.Duration
	}{
		{"delta seconds", "7", 7 * time.Second},
		{"delta zero", "0", 0},
		{"delta negative", "-5", 0},
		{"imf fixdate", future.Format(http.TimeFormat), 90 * time.Second},
		{"rfc850", future.Format("Monday, 02-Jan-06 15:04:05 MST"), 90 * time.Second},
		{"ansi c asctime", future.Format(time.ANSIC), 90 * time.Second},
		{"past date", now.Add(-time.Hour).Format(http.TimeFormat), 0},
		{"exactly now", now.Format(http.TimeFormat), 0},
		{"garbage", "soon", 0},
		{"empty", "", 0},
		{"float seconds", "2.5", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := parseRetryAfter(tc.header, clock); got != tc.want {
				t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.header, got, tc.want)
			}
		})
	}
}

// TestClientRetryAfterDateHeader drives the date form end to end: a
// shedding server answers with an HTTP-date Retry-After, and the
// client (on an injected clock) must surface the exact remaining
// delay in its StatusError.
func TestClientRetryAfterDateHeader(t *testing.T) {
	now := time.Date(2024, time.March, 10, 12, 0, 0, 0, time.UTC)
	retryAt := now.Add(30 * time.Second)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", retryAt.Format(http.TimeFormat))
		w.WriteHeader(http.StatusUnprocessableEntity) // non-retryable: error surfaces immediately
		fmt.Fprintln(w, `{"error":"nope"}`)
	}))
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client(),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 1}),
		WithClock(func() time.Time { return now }))
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Place(context.Background(), geo.Pt(1, 2))
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StatusError", err)
	}
	if se.RetryAfter != 30*time.Second {
		t.Errorf("RetryAfter = %v, want 30s", se.RetryAfter)
	}
}

// TestBackoffRetryAfterDateExact extends the exact-schedule contract
// to date-form hints: with an injected clock and jitter, the backoff
// from an HTTP-date Retry-After is predictable to the nanosecond.
func TestBackoffRetryAfterDateExact(t *testing.T) {
	now := time.Date(2024, time.March, 10, 12, 0, 0, 0, time.UTC)
	c, err := NewClient("http://unused", nil,
		WithRetryPolicy(RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    10 * time.Second,
			Jitter:      NewSeededJitter(11),
		}),
		WithClock(func() time.Time { return now }))
	if err != nil {
		t.Fatal(err)
	}
	resp := &http.Response{
		StatusCode: http.StatusTooManyRequests,
		Header:     http.Header{"Retry-After": []string{now.Add(4 * time.Second).Format(http.TimeFormat)}},
		Body:       io.NopCloser(strings.NewReader(`{"error":"shed"}`)),
	}
	se := c.readAPIError(resp)
	if se.RetryAfter != 4*time.Second {
		t.Fatalf("RetryAfter = %v, want 4s", se.RetryAfter)
	}
	oracle := NewSeededJitter(11)
	want := 2*time.Second + oracle(2*time.Second)
	if got := c.backoff(0, fmt.Errorf("wrapped: %w", se)); got != want {
		t.Fatalf("backoff = %v, want exactly %v", got, want)
	}

	// A past date yields no hint, so the computed envelope applies:
	// attempt 0 uses BaseDelay, again exactly predictable.
	resp = &http.Response{
		StatusCode: http.StatusTooManyRequests,
		Header:     http.Header{"Retry-After": []string{now.Add(-time.Minute).Format(http.TimeFormat)}},
		Body:       io.NopCloser(strings.NewReader(`{"error":"shed"}`)),
	}
	se = c.readAPIError(resp)
	if se.RetryAfter != 0 {
		t.Fatalf("past-date RetryAfter = %v, want 0", se.RetryAfter)
	}
	want = 500*time.Microsecond + oracle(500*time.Microsecond)
	if got := c.backoff(0, fmt.Errorf("wrapped: %w", se)); got != want {
		t.Fatalf("backoff = %v, want exactly %v", got, want)
	}
}
