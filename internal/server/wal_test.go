package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/stats"
	"repro/internal/wal"
)

// newWALPlacer builds the reference ESharing engine used by the
// durability tests; every call returns an identical, freshly seeded
// placer so recovered and reference engines are interchangeable.
func newWALPlacer(t testing.TB) *core.ESharing {
	t.Helper()
	hist := stats.SamplePoints(stats.NewRNG(3),
		stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 2000)}, 60)
	landmarks := []geo.Point{geo.Pt(500, 500), geo.Pt(1500, 1500)}
	cfg := core.DefaultESharingConfig()
	cfg.TestEvery = 10
	cfg.WindowSize = 10
	cfg.Seed = 42
	placer, err := core.NewESharing(landmarks, 3000, hist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return placer
}

func walDests(n int) []geo.Point {
	return stats.SamplePoints(stats.NewRNG(17),
		stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 2000)}, n)
}

// captureState snapshots everything recovery must reproduce: the
// exact stations body and the published counters.
type capturedState struct {
	stationsBody string
	stats        StatsResponse
}

func capture(t *testing.T, srv *Server) capturedState {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stations", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stations: %d", rec.Code)
	}
	body := rec.Body.String()
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return capturedState{stationsBody: body, stats: st}
}

func placeOK(t *testing.T, srv *Server, dest geo.Point) {
	t.Helper()
	body, err := json.Marshal(PlaceRequest{Dest: dest})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/requests", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("place %v: %d %s", dest, rec.Code, rec.Body.String())
	}
}

// sameServingState demands bit-identical recovery: the stations body
// byte for byte, and every counter including the float bit patterns.
func sameServingState(t *testing.T, got, want capturedState) {
	t.Helper()
	if got.stationsBody != want.stationsBody {
		t.Fatalf("stations body diverged:\n got %s\nwant %s", got.stationsBody, want.stationsBody)
	}
	g, w := got.stats, want.stats
	if g.Requests != w.Requests || g.Opened != w.Opened || g.Stations != w.Stations ||
		math.Float64bits(g.WalkTotal) != math.Float64bits(w.WalkTotal) ||
		simPresent(g.LastSimilarity) != simPresent(w.LastSimilarity) ||
		simBits(g.LastSimilarity) != simBits(w.LastSimilarity) {
		t.Fatalf("stats diverged:\n got %+v\nwant %+v", g, w)
	}
}

func simPresent(p *float64) bool { return p != nil }

func simBits(p *float64) uint64 {
	if p == nil {
		return 0
	}
	return math.Float64bits(*p)
}

// TestWALRecoveryBitIdentical is the tentpole invariant end to end:
// place a stream, restart from the log (with snapshots interleaved),
// and the recovered server must republish byte- and bit-identical
// stations and counters.
func TestWALRecoveryBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name          string
		snapshotEvery uint64
	}{
		{"replay only", 0},
		{"snapshot plus tail", 16},
		{"snapshot on final record", 50},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			srv, err := New(newWALPlacer(t), WithWAL(dir, 1, tc.snapshotEvery))
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range walDests(50) {
				placeOK(t, srv, d)
			}
			before := capture(t, srv)
			if before.stats.Requests != 50 {
				t.Fatalf("requests = %d, want 50", before.stats.Requests)
			}
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}

			restored, err := New(newWALPlacer(t), WithWAL(dir, 1, tc.snapshotEvery))
			if err != nil {
				t.Fatal(err)
			}
			defer restored.Close()
			sameServingState(t, capture(t, restored), before)

			// The recovered engine must continue the stream exactly as
			// an uninterrupted one would: drive 20 more through the
			// restored server and through a never-crashed reference.
			ref := newWALPlacer(t)
			for _, d := range walDests(50) {
				if _, err := ref.Place(d); err != nil {
					t.Fatal(err)
				}
			}
			for _, d := range walDests(70)[50:] {
				placeOK(t, restored, d)
				if _, err := ref.Place(d); err != nil {
					t.Fatal(err)
				}
			}
			after := capture(t, restored)
			if got, want := core.StationDigest(restored.view().stations), core.StationDigest(ref.Stations()); got != want {
				t.Fatalf("post-recovery stream diverged from uninterrupted reference")
			}
			if after.stats.Requests != 70 {
				t.Fatalf("requests = %d, want 70", after.stats.Requests)
			}
		})
	}
}

// TestWALKillAtEveryByte truncates the decision log at every byte
// offset — everywhere a crash can land — and requires recovery to
// reconstruct exactly the state of some strict prefix of the request
// stream, verified against reference placers, or refuse; never wrong
// state, never a panic.
func TestWALKillAtEveryByte(t *testing.T) {
	const K = 12
	dests := walDests(K)
	dir := t.TempDir()
	srv, err := New(newWALPlacer(t), WithWAL(dir, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dests {
		placeOK(t, srv, d)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}

	// Reference serving states after each prefix length, captured from
	// never-crashed servers.
	refs := make([]capturedState, K+1)
	for n := 0; n <= K; n++ {
		ref, err := New(newWALPlacer(t))
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range dests[:n] {
			placeOK(t, ref, d)
		}
		refs[n] = capture(t, ref)
	}

	for cut := 0; cut <= len(full); cut++ {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, "wal.log"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		restored, err := New(newWALPlacer(t), WithWAL(cutDir, 1, 0))
		if err != nil {
			// Only a corruption verdict may refuse, and clean
			// truncation must never be judged corrupt.
			t.Fatalf("cut %d: recovery refused: %v", cut, err)
		}
		n := int(restored.shards[0].requests.Load())
		if n > K {
			t.Fatalf("cut %d: recovered %d requests from a %d-request log", cut, n, K)
		}
		sameServingState(t, capture(t, restored), refs[n])
		restored.Close()
	}
}

// TestWALConfigMismatchRefuses: a log written under one engine
// configuration must refuse to replay into another.
func TestWALConfigMismatchRefuses(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(newWALPlacer(t), WithWAL(dir, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	placeOK(t, srv, geo.Pt(100, 100))
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	other, err := core.NewMeyerson(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(other, WithWAL(dir, 1, 0))
	var cm *wal.ConfigMismatchError
	if !errors.As(err, &cm) {
		t.Fatalf("err = %v, want ConfigMismatchError", err)
	}
}

// TestWALReplayDivergenceRefuses: a log whose recorded decisions the
// placer cannot reproduce (here: forged records) must refuse startup
// instead of serving from a diverged engine.
func TestWALReplayDivergenceRefuses(t *testing.T) {
	dir := t.TempDir()
	placer := newWALPlacer(t)
	log, _, err := wal.Open(dir, wal.Options{
		ConfigDigest: placer.ConfigDigest(), Name: placer.Name(), SyncEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A record claiming the very first request opened nothing is a lie:
	// both landmarks are far from this destination, and the forged walk
	// of 0 cannot match.
	if err := log.AppendDecision(wal.DecisionRecord{
		Dest: geo.Pt(0, 2000), Station: geo.Pt(500, 500), StationIndex: 0, Walk: 0,
	}); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(placer, WithWAL(dir, 1, 0)); err == nil {
		t.Fatal("forged log accepted")
	}
}

// TestWALNonDurablePlacerRefused: WithWAL demands a DurablePlacer.
func TestWALNonDurablePlacerRefused(t *testing.T) {
	placer, err := core.NewMeyerson(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nonDurablePlacer{placer}, WithWAL(t.TempDir(), 1, 0)); err == nil {
		t.Fatal("non-durable placer accepted")
	}
}

// nonDurablePlacer hides the durability methods of a real placer by
// narrowing it to the bare OnlinePlacer interface.
type nonDurablePlacer struct{ core.OnlinePlacer }

// TestWALFailureDegradesHealth: when an append fails, the request
// still succeeds (the decision is already applied) but the server
// reports degraded health and counts the failure.
func TestWALFailureDegradesHealth(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(newWALPlacer(t), WithWAL(dir, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	placeOK(t, srv, geo.Pt(100, 100))

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy server reported %d", rec.Code)
	}

	// Sabotage the log file out from under the server; the next append
	// hits a closed descriptor.
	sh := srv.shards[0]
	sh.decision <- struct{}{}
	sh.wal.Close()
	<-sh.decision

	placeOK(t, srv, geo.Pt(200, 200))
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded server reported %d: %s", rec.Code, rec.Body.String())
	}
	if got := sh.walFailures.Load(); got == 0 {
		t.Fatal("failure not counted")
	}
	if fams := scrapeMetrics(t, srv); famValue(fams, "esharing_wal_failures_total") == 0 {
		t.Error("metrics do not expose the failure")
	}
}

// scrapeMetrics parses a /metrics response served in-process.
func scrapeMetrics(t *testing.T, srv *Server) map[string]*family {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	return parseExposition(t, rec.Body.String())
}

// famValue returns the single unlabelled sample of a family (0 when
// the family is absent or empty).
func famValue(fams map[string]*family, name string) float64 {
	f := fams[name]
	if f == nil || len(f.samples) == 0 {
		return 0
	}
	return f.samples[0].value
}

// TestWALMetricsExposed: the esharing_wal_* family appears (only) when
// a log is attached.
func TestWALMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(newWALPlacer(t), WithWAL(dir, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, d := range walDests(8) {
		placeOK(t, srv, d)
	}
	fams := scrapeMetrics(t, srv)
	if got := famValue(fams, "esharing_wal_appended_records_total"); got != 8 {
		t.Errorf("appended = %v, want 8", got)
	}
	if got := famValue(fams, "esharing_wal_truncations_total"); got != 2 {
		t.Errorf("truncations = %v, want 2 (8 records at cadence 4)", got)
	}
	if famValue(fams, "esharing_wal_fsyncs_total") == 0 {
		t.Error("no fsyncs counted")
	}
	if famValue(fams, "esharing_wal_size_bytes") == 0 {
		t.Error("no size reported")
	}
	for _, name := range []string{
		"esharing_wal_failures_total", "esharing_wal_replayed_records",
		"esharing_wal_replay_duration_seconds",
	} {
		if fams[name] == nil {
			t.Errorf("metrics missing family %s", name)
		}
	}

	// A restart replays the tail; the replay gauges must say so.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	restored, err := New(newWALPlacer(t), WithWAL(dir, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := famValue(scrapeMetrics(t, restored), "esharing_wal_replayed_records"); got != 0 {
		// 8 records at cadence 4: the second snapshot covered
		// everything, so the tail is empty.
		t.Errorf("replayed = %v, want 0 after covering snapshot", got)
	}

	bare, err := New(newWALPlacer(t))
	if err != nil {
		t.Fatal(err)
	}
	if scrapeMetrics(t, bare)["esharing_wal_appended_records_total"] != nil {
		t.Error("wal metrics exposed without a wal")
	}
}
