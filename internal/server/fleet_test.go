package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
)

func newFleetServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	placer, err := core.NewMeyerson(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Seed a few stations so charging rounds have somewhere to group.
	for _, p := range []geo.Point{geo.Pt(0, 0), geo.Pt(800, 0), geo.Pt(0, 800)} {
		if _, err := placer.Place(p); err != nil {
			t.Fatal(err)
		}
	}
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithFleet(placer, fleet)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return ts, client
}

func TestNewWithFleetValidation(t *testing.T) {
	placer, err := core.NewMeyerson(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWithFleet(placer, nil); err == nil {
		t.Error("nil fleet should error")
	}
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWithFleet(nil, fleet); err == nil {
		t.Error("nil placer should error")
	}
}

func TestFleetEndpointsLifecycle(t *testing.T) {
	_, client := newFleetServer(t)
	ctx := context.Background()

	if err := client.AddBike(ctx, 1, geo.Pt(0, 0), 0.1); err != nil {
		t.Fatal(err)
	}
	if err := client.AddBike(ctx, 2, geo.Pt(800, 0), 0.95); err != nil {
		t.Fatal(err)
	}
	// Duplicate registration is rejected.
	if err := client.AddBike(ctx, 1, geo.Pt(0, 0), 0.5); err == nil {
		t.Error("duplicate bike should error")
	}

	bikes, err := client.Bikes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(bikes.Bikes) != 2 || bikes.Low != 1 {
		t.Errorf("snapshot: %+v", bikes)
	}

	// Ride the healthy bike; level must drop.
	view, err := client.Ride(ctx, 2, geo.Pt(800, 3500))
	if err != nil {
		t.Fatal(err)
	}
	if view.Level >= 0.95 || view.Loc != geo.Pt(800, 3500) {
		t.Errorf("ride result: %+v", view)
	}
	// Unknown bike -> 404.
	if _, err := client.Ride(ctx, 99, geo.Pt(0, 0)); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("unknown bike: %v", err)
	}
	// Empty battery rejected without state change.
	if _, err := client.Ride(ctx, 1, geo.Pt(50000, 0)); err == nil {
		t.Error("over-range ride should error")
	}

	seed := uint64(3)
	report, err := client.ChargingRound(ctx, 0.4, &seed)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalLowBikes < 1 {
		t.Errorf("charging round saw %d low bikes", report.TotalLowBikes)
	}
	after, err := client.Bikes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Low >= bikes.Low && report.ChargedBikes > 0 {
		t.Errorf("low count did not fall: %d -> %d", bikes.Low, after.Low)
	}
}

func TestChargingRoundBadAlpha(t *testing.T) {
	ts, _ := newFleetServer(t)
	resp, err := http.Post(ts.URL+"/v1/charging-round", "application/json",
		strings.NewReader(`{"alpha": 2.0}`))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status=%d", resp.StatusCode)
	}
}

func TestFleetEndpointsAbsentWithoutFleet(t *testing.T) {
	// A server built with New must not expose tier-2 routes.
	placer, err := core.NewMeyerson(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(placer)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/bikes")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("tier-2 route present without fleet: %d", resp.StatusCode)
	}
}

func TestFleetBadBodies(t *testing.T) {
	ts, _ := newFleetServer(t)
	for _, tc := range []struct{ path, body string }{
		{"/v1/bikes", `{`},
		{"/v1/bikes", `{"unknown": 1}`},
		{"/v1/rides", `{`},
		{"/v1/charging-round", `{`},
	} {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s with %q: status=%d", tc.path, tc.body, resp.StatusCode)
		}
	}
}

// TestRideStateReadFailureIs500 pins handleRide's contract: when the
// ride applies but the post-ride bike state cannot be read back, the
// response is a 500 — never a 200 carrying a zero-valued BikeView that
// clients would mistake for a bike at the origin with an empty battery.
// The failure is injected through the getBike seam because with the
// real fleet a lookup after a successful ride cannot fail.
func TestRideStateReadFailureIs500(t *testing.T) {
	placer, err := core.NewMeyerson(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := placer.Place(geo.Pt(0, 0)); err != nil {
		t.Fatal(err)
	}
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Add(energy.Bike{ID: 7, Loc: geo.Pt(0, 0), Level: 0.9}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithFleet(placer, fleet)
	if err != nil {
		t.Fatal(err)
	}

	// Healthy path first: the 200 body reflects real post-ride state.
	code, body := do(t, srv, http.MethodPost, "/v1/rides", `{"bikeId":7,"dest":{"x":100,"y":0}}`)
	if code != http.StatusOK {
		t.Fatalf("ride: %d %s", code, body)
	}
	var view BikeView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if view.ID != 7 || view.Loc != geo.Pt(100, 0) || view.Level >= 0.9 || view.Level <= 0 {
		t.Fatalf("ride view %+v does not reflect the applied ride", view)
	}

	srv.getBike = func(int64) (energy.Bike, error) {
		return energy.Bike{}, errors.New("bike store read failed")
	}
	code, body = do(t, srv, http.MethodPost, "/v1/rides", `{"bikeId":7,"dest":{"x":200,"y":0}}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("unreadable post-ride state got %d %s, want 500", code, body)
	}
	if !strings.Contains(body, "bike state unavailable") {
		t.Errorf("500 body %q does not explain the failure", body)
	}
	// The ride itself was applied before the read-back failed.
	b, err := fleet.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if b.Loc != geo.Pt(200, 0) {
		t.Errorf("bike at %v, want the applied destination (200,0)", b.Loc)
	}
}

// TestChargingSeedOptionalVsExplicitZero pins the ChargingRequest wire
// contract: an absent seed keeps the simulator's default, while an
// explicit "seed":0 — previously swallowed as "unset" by the plain
// uint64 field — is honoured as seed zero. Both forms must serve.
func TestChargingSeedOptionalVsExplicitZero(t *testing.T) {
	var absent ChargingRequest
	if err := json.Unmarshal([]byte(`{"alpha":1}`), &absent); err != nil {
		t.Fatal(err)
	}
	if absent.Seed != nil {
		t.Errorf("absent seed decoded as %v, want nil", *absent.Seed)
	}
	var explicit ChargingRequest
	if err := json.Unmarshal([]byte(`{"alpha":1,"seed":0}`), &explicit); err != nil {
		t.Fatal(err)
	}
	if explicit.Seed == nil || *explicit.Seed != 0 {
		t.Errorf("explicit zero seed decoded as %v, want *0", explicit.Seed)
	}

	_, client := newFleetServer(t)
	ctx := context.Background()
	for i := int64(1); i <= 4; i++ {
		if err := client.AddBike(ctx, i, geo.Pt(0, 0), 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.ChargingRound(ctx, 0.4, nil); err != nil {
		t.Fatalf("charging round without a seed: %v", err)
	}
	zero := uint64(0)
	report, err := client.ChargingRound(ctx, 0.4, &zero)
	if err != nil {
		t.Fatalf("charging round with explicit seed 0: %v", err)
	}
	if report == nil {
		t.Fatal("nil report")
	}
}
