package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
)

func newFleetServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	placer, err := core.NewMeyerson(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Seed a few stations so charging rounds have somewhere to group.
	for _, p := range []geo.Point{geo.Pt(0, 0), geo.Pt(800, 0), geo.Pt(0, 800)} {
		if _, err := placer.Place(p); err != nil {
			t.Fatal(err)
		}
	}
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithFleet(placer, fleet)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return ts, client
}

func TestNewWithFleetValidation(t *testing.T) {
	placer, err := core.NewMeyerson(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWithFleet(placer, nil); err == nil {
		t.Error("nil fleet should error")
	}
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWithFleet(nil, fleet); err == nil {
		t.Error("nil placer should error")
	}
}

func TestFleetEndpointsLifecycle(t *testing.T) {
	_, client := newFleetServer(t)
	ctx := context.Background()

	if err := client.AddBike(ctx, 1, geo.Pt(0, 0), 0.1); err != nil {
		t.Fatal(err)
	}
	if err := client.AddBike(ctx, 2, geo.Pt(800, 0), 0.95); err != nil {
		t.Fatal(err)
	}
	// Duplicate registration is rejected.
	if err := client.AddBike(ctx, 1, geo.Pt(0, 0), 0.5); err == nil {
		t.Error("duplicate bike should error")
	}

	bikes, err := client.Bikes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(bikes.Bikes) != 2 || bikes.Low != 1 {
		t.Errorf("snapshot: %+v", bikes)
	}

	// Ride the healthy bike; level must drop.
	view, err := client.Ride(ctx, 2, geo.Pt(800, 3500))
	if err != nil {
		t.Fatal(err)
	}
	if view.Level >= 0.95 || view.Loc != geo.Pt(800, 3500) {
		t.Errorf("ride result: %+v", view)
	}
	// Unknown bike -> 404.
	if _, err := client.Ride(ctx, 99, geo.Pt(0, 0)); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("unknown bike: %v", err)
	}
	// Empty battery rejected without state change.
	if _, err := client.Ride(ctx, 1, geo.Pt(50000, 0)); err == nil {
		t.Error("over-range ride should error")
	}

	report, err := client.ChargingRound(ctx, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalLowBikes < 1 {
		t.Errorf("charging round saw %d low bikes", report.TotalLowBikes)
	}
	after, err := client.Bikes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Low >= bikes.Low && report.ChargedBikes > 0 {
		t.Errorf("low count did not fall: %d -> %d", bikes.Low, after.Low)
	}
}

func TestChargingRoundBadAlpha(t *testing.T) {
	ts, _ := newFleetServer(t)
	resp, err := http.Post(ts.URL+"/v1/charging-round", "application/json",
		strings.NewReader(`{"alpha": 2.0}`))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status=%d", resp.StatusCode)
	}
}

func TestFleetEndpointsAbsentWithoutFleet(t *testing.T) {
	// A server built with New must not expose tier-2 routes.
	placer, err := core.NewMeyerson(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(placer)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/bikes")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("tier-2 route present without fleet: %d", resp.StatusCode)
	}
}

func TestFleetBadBodies(t *testing.T) {
	ts, _ := newFleetServer(t)
	for _, tc := range []struct{ path, body string }{
		{"/v1/bikes", `{`},
		{"/v1/bikes", `{"unknown": 1}`},
		{"/v1/rides", `{`},
		{"/v1/charging-round", `{`},
	} {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s with %q: status=%d", tc.path, tc.body, resp.StatusCode)
		}
	}
}
