package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
)

// FuzzPlaceRequestDecode throws arbitrary bodies at POST /v1/requests:
// the decode path must never panic, and every response must be one of
// the statuses the API documents — malformed JSON and non-finite
// destinations are rejected before they can reach the placer.
func FuzzPlaceRequestDecode(f *testing.F) {
	seeds := []string{
		`{"dest":{"x":100,"y":200}}`,
		`{"dest":{"x":1e308,"y":-1e308}}`,
		`{"dest":{"x":null,"y":0}}`,
		`{"dest":"not a point"}`,
		`{"unknown":"field"}`,
		`{"dest":{"x":NaN,"y":0}}`,
		`{`,
		``,
		`[]`,
		"\x00\xff\xfe",
		strings.Repeat(`{"dest":`, 64),
	}
	for _, s := range seeds {
		f.Add(s)
	}

	placer, err := core.NewMeyerson(150, 1)
	if err != nil {
		f.Fatal(err)
	}
	srv, err := New(placer)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/requests", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest,
			http.StatusRequestEntityTooLarge, http.StatusUnprocessableEntity,
			http.StatusTooManyRequests:
		default:
			t.Fatalf("unexpected status %d for body %q (response %q)",
				rec.Code, body, rec.Body.String())
		}
		if rec.Header().Get("Content-Type") != "application/json" {
			t.Fatalf("Content-Type = %q, want application/json", rec.Header().Get("Content-Type"))
		}
	})
}
