package server

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/wal"
)

// Durability wiring: when built with WithWAL, every accepted placement
// is appended to the owning shard's write-ahead log under that shard's
// decision lock before the response is released, and construction
// replays any existing log — through the placer itself, bypassing HTTP
// — to recover the exact pre-crash state. Each shard's log is
// independent (multi-shard servers keep them under walDir/shard-<index>),
// so the recovery invariant holds per shard: every replayed record must
// reproduce the logged decision bit for bit, the restored snapshot must
// reproduce the logged station digest and similarity figure, and any
// mismatch refuses startup rather than serve from a silently diverged
// engine.

// WithWAL attaches a durable decision log rooted at dir. syncEvery
// batches fsyncs (1 = sync every decision, 0 = let the OS decide);
// snapshotEvery checkpoints and truncates the log after that many
// records (0 disables the cadence). The placers must implement
// core.DurablePlacer. A single-shard server keeps its log at dir
// itself (compatible with logs written before sharding existed);
// multi-shard servers give each shard dir/shard-<index>.
func WithWAL(dir string, syncEvery int, snapshotEvery uint64) Option {
	return func(s *Server) {
		s.walDir = dir
		s.walSyncEvery = syncEvery
		s.walSnapshotEvery = snapshotEvery
	}
}

// openWAL opens (or creates) the shard's decision log and replays
// whatever it finds into the freshly built placer. Called from
// NewSharded before the server starts serving; it still takes the
// decision lock for real, so the lock discipline holds even if
// construction ever overlaps serving.
func (sh *shard) openWAL() error {
	sh.decision <- struct{}{}
	defer func() { <-sh.decision }()
	dp, ok := sh.placer.(core.DurablePlacer)
	if !ok {
		return fmt.Errorf("server: placer %q does not support durable logging", sh.name)
	}
	log, rec, err := wal.Open(sh.walDir, wal.Options{
		ConfigDigest:  dp.ConfigDigest(),
		Name:          sh.name,
		SyncEvery:     sh.walSyncEvery,
		SnapshotEvery: sh.walSnapshotEvery,
	})
	if err != nil {
		return err
	}

	start := time.Now()
	if err := sh.replayRecovered(dp, rec); err != nil {
		// The replay failure is what matters; a close failure on the
		// already-rejected log rides along in the join.
		return errors.Join(err, log.Close())
	}
	sh.walReplayNanos.Store(time.Since(start).Nanoseconds())
	sh.walReplayed.Store(int64(len(rec.Tail)))
	sh.wal = log
	return nil
}

// replayRecovered restores the snapshot and re-drives the log tail
// through the placer, verifying bit-identical reproduction of every
// recorded decision; caller holds decision.
//
//esharing:deterministic
func (sh *shard) replayRecovered(dp core.DurablePlacer, rec *wal.Recovered) error {
	if snap := rec.Snapshot; snap != nil {
		if err := dp.UnmarshalState(snap.PlacerState); err != nil {
			return fmt.Errorf("server: restore wal snapshot: %w", err)
		}
		if got := core.StationDigest(dp.Stations()); got != snap.StationsDigest {
			return fmt.Errorf("server: restored station set digest %#x, snapshot recorded %#x", got, snap.StationsDigest)
		}
		if es, ok := sh.placer.(*core.ESharing); ok {
			if got := math.Float64bits(es.LastSimilarity()); got != snap.SimBits {
				return fmt.Errorf("server: restored similarity %v, snapshot recorded %v",
					math.Float64frombits(got), math.Float64frombits(snap.SimBits))
			}
		}
		sh.requests.Store(int64(snap.Requests))
		sh.opened.Store(int64(snap.Opened))
		sh.walkBits.Store(snap.WalkBits)
	}
	for i, r := range rec.Tail {
		switch r := r.(type) {
		case wal.DecisionRecord:
			d, err := dp.Place(r.Dest)
			if err != nil {
				return fmt.Errorf("server: wal replay record %d: %w", i, err)
			}
			if !decisionMatchesRecord(d, r) {
				return fmt.Errorf("server: wal replay diverged at record %d: "+
					"placer produced %+v, log recorded %+v — the engine or its inputs changed since the log was written", i, d, r)
			}
			sh.requests.Add(1)
			if d.Opened {
				sh.opened.Add(1)
			}
			walk := math.Float64frombits(sh.walkBits.Load()) + d.Walk
			sh.walkBits.Store(math.Float64bits(walk))
		case wal.PickupRecord:
			rm, ok := sh.placer.(core.StationRemover)
			if !ok {
				return fmt.Errorf("server: wal replay record %d: placer %q cannot replay pickups", i, sh.name)
			}
			if err := rm.RemoveStation(r.StationIndex); err != nil {
				return fmt.Errorf("server: wal replay record %d: %w", i, err)
			}
		default:
			return fmt.Errorf("server: wal replay record %d: unknown record type %T", i, r)
		}
	}
	return nil
}

// decisionMatchesRecord demands bit-for-bit reproduction: coordinates
// and the walk figure compare as float bit patterns, so even a sign-of
// -zero difference counts as divergence.
func decisionMatchesRecord(d core.Decision, r wal.DecisionRecord) bool {
	return d.StationIndex == r.StationIndex &&
		d.Opened == r.Opened &&
		math.Float64bits(d.Walk) == math.Float64bits(r.Walk) &&
		math.Float64bits(d.Station.X) == math.Float64bits(r.Station.X) &&
		math.Float64bits(d.Station.Y) == math.Float64bits(r.Station.Y)
}

// logDecision appends an accepted placement to the shard's WAL and runs
// the snapshot cadence; caller holds decision. An append or snapshot
// failure does not fail the request — the decision is already applied
// and acknowledged state must match the placer — but it flips the
// server into degraded health (the log is no longer ahead of the
// state) and counts on esharing_wal_failures_total.
func (sh *shard) logDecision(dest geo.Point, d core.Decision) {
	if sh.wal == nil {
		return
	}
	err := sh.wal.AppendDecision(wal.DecisionRecord{
		Dest:         dest,
		Station:      d.Station,
		StationIndex: d.StationIndex,
		Opened:       d.Opened,
		Walk:         d.Walk,
	})
	if err == nil && sh.wal.SnapshotDue() {
		err = sh.writeWALSnapshot()
	}
	if err != nil {
		sh.walFailures.Add(1)
		sh.walFailed.Store(true)
	}
}

// writeWALSnapshot checkpoints the placer and serving counters and
// truncates the shard's log; caller holds decision.
func (sh *shard) writeWALSnapshot() error {
	dp, ok := sh.placer.(core.DurablePlacer)
	if !ok {
		return fmt.Errorf("server: placer %q does not support durable logging", sh.name)
	}
	state, err := dp.MarshalState()
	if err != nil {
		return fmt.Errorf("server: snapshot placer state: %w", err)
	}
	snap := &wal.Snapshot{
		PlacerState:    state,
		Requests:       uint64(sh.requests.Load()),
		Opened:         uint64(sh.opened.Load()),
		WalkBits:       sh.walkBits.Load(),
		StationsDigest: core.StationDigest(dp.Stations()),
	}
	if es, ok := sh.placer.(*core.ESharing); ok {
		snap.SimBits = math.Float64bits(es.LastSimilarity())
	}
	return sh.wal.WriteSnapshot(snap)
}

// closeWAL flushes and closes the shard's decision log (a no-op
// without one). The decision lock is held across the close so no
// placement can race the final sync.
func (sh *shard) closeWAL() error {
	sh.decision <- struct{}{}
	defer func() { <-sh.decision }()
	if sh.wal == nil {
		return nil
	}
	err := sh.wal.Close()
	sh.wal = nil
	return err
}

// WALRecords reports how many records the decision logs hold past their
// snapshot bases — appended this run or recovered at startup, summed
// across shards — or 0 when the server runs without durability.
// Intended for startup logging; it briefly takes each decision lock.
func (s *Server) WALRecords() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.walRecordsLocked()
	}
	return total
}

// walRecordsLocked reads one shard's record count under its decision
// lock, released by defer.
func (sh *shard) walRecordsLocked() uint64 {
	sh.decision <- struct{}{}
	defer func() { <-sh.decision }()
	if sh.wal == nil {
		return 0
	}
	return sh.wal.Records()
}

// Close flushes and closes every shard's decision log (a no-op without
// durability), returning the first error.
func (s *Server) Close() error {
	var first error
	for _, sh := range s.shards {
		if err := sh.closeWAL(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
