package server

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/wal"
)

// Durability wiring: when built with WithWAL, every accepted placement
// is appended to a write-ahead log under the decision lock before the
// response is released, and construction replays any existing log —
// through the placer itself, bypassing HTTP — to recover the exact
// pre-crash state. Recovery is verified, not assumed: every replayed
// record must reproduce the logged decision bit for bit, the restored
// snapshot must reproduce the logged station digest and similarity
// figure, and any mismatch refuses startup rather than serve from a
// silently diverged engine.

// WithWAL attaches a durable decision log rooted at dir. syncEvery
// batches fsyncs (1 = sync every decision, 0 = let the OS decide);
// snapshotEvery checkpoints and truncates the log after that many
// records (0 disables the cadence). The placer must implement
// core.DurablePlacer.
func WithWAL(dir string, syncEvery int, snapshotEvery uint64) Option {
	return func(s *Server) {
		s.walDir = dir
		s.walSyncEvery = syncEvery
		s.walSnapshotEvery = snapshotEvery
	}
}

// openWAL opens (or creates) the decision log and replays whatever it
// finds into the freshly built placer. Called from New before the
// server starts serving; it still takes the decision lock for real, so
// the lock discipline holds even if construction ever overlaps
// serving.
func (s *Server) openWAL() error {
	dp, ok := s.placer.(core.DurablePlacer)
	if !ok {
		return fmt.Errorf("server: placer %q does not support durable logging", s.name)
	}
	log, rec, err := wal.Open(s.walDir, wal.Options{
		ConfigDigest:  dp.ConfigDigest(),
		Name:          s.name,
		SyncEvery:     s.walSyncEvery,
		SnapshotEvery: s.walSnapshotEvery,
	})
	if err != nil {
		return err
	}

	start := time.Now()
	s.decision <- struct{}{}
	err = s.replayRecovered(dp, rec)
	<-s.decision
	if err != nil {
		log.Close()
		return err
	}
	s.walReplayNanos.Store(time.Since(start).Nanoseconds())
	s.walReplayed.Store(int64(len(rec.Tail)))
	s.wal = log
	return nil
}

// replayRecovered restores the snapshot and re-drives the log tail
// through the placer, verifying bit-identical reproduction of every
// recorded decision; caller holds decision.
func (s *Server) replayRecovered(dp core.DurablePlacer, rec *wal.Recovered) error {
	if snap := rec.Snapshot; snap != nil {
		if err := dp.UnmarshalState(snap.PlacerState); err != nil {
			return fmt.Errorf("server: restore wal snapshot: %w", err)
		}
		if got := core.StationDigest(dp.Stations()); got != snap.StationsDigest {
			return fmt.Errorf("server: restored station set digest %#x, snapshot recorded %#x", got, snap.StationsDigest)
		}
		if es, ok := s.placer.(*core.ESharing); ok {
			if got := math.Float64bits(es.LastSimilarity()); got != snap.SimBits {
				return fmt.Errorf("server: restored similarity %v, snapshot recorded %v",
					math.Float64frombits(got), math.Float64frombits(snap.SimBits))
			}
		}
		s.requests.Store(int64(snap.Requests))
		s.opened.Store(int64(snap.Opened))
		s.walkBits.Store(snap.WalkBits)
	}
	for i, r := range rec.Tail {
		switch r := r.(type) {
		case wal.DecisionRecord:
			d, err := dp.Place(r.Dest)
			if err != nil {
				return fmt.Errorf("server: wal replay record %d: %w", i, err)
			}
			if !decisionMatchesRecord(d, r) {
				return fmt.Errorf("server: wal replay diverged at record %d: "+
					"placer produced %+v, log recorded %+v — the engine or its inputs changed since the log was written", i, d, r)
			}
			s.requests.Add(1)
			if d.Opened {
				s.opened.Add(1)
			}
			walk := math.Float64frombits(s.walkBits.Load()) + d.Walk
			s.walkBits.Store(math.Float64bits(walk))
		case wal.PickupRecord:
			rm, ok := s.placer.(core.StationRemover)
			if !ok {
				return fmt.Errorf("server: wal replay record %d: placer %q cannot replay pickups", i, s.name)
			}
			if err := rm.RemoveStation(r.StationIndex); err != nil {
				return fmt.Errorf("server: wal replay record %d: %w", i, err)
			}
		default:
			return fmt.Errorf("server: wal replay record %d: unknown record type %T", i, r)
		}
	}
	return nil
}

// decisionMatchesRecord demands bit-for-bit reproduction: coordinates
// and the walk figure compare as float bit patterns, so even a sign-of
// -zero difference counts as divergence.
func decisionMatchesRecord(d core.Decision, r wal.DecisionRecord) bool {
	return d.StationIndex == r.StationIndex &&
		d.Opened == r.Opened &&
		math.Float64bits(d.Walk) == math.Float64bits(r.Walk) &&
		math.Float64bits(d.Station.X) == math.Float64bits(r.Station.X) &&
		math.Float64bits(d.Station.Y) == math.Float64bits(r.Station.Y)
}

// logDecision appends an accepted placement to the WAL and runs the
// snapshot cadence; caller holds decision. An append or snapshot
// failure does not fail the request — the decision is already applied
// and acknowledged state must match the placer — but it flips the
// server into degraded health (the log is no longer ahead of the
// state) and counts on esharing_wal_failures_total.
func (s *Server) logDecision(dest geo.Point, d core.Decision) {
	if s.wal == nil {
		return
	}
	err := s.wal.AppendDecision(wal.DecisionRecord{
		Dest:         dest,
		Station:      d.Station,
		StationIndex: d.StationIndex,
		Opened:       d.Opened,
		Walk:         d.Walk,
	})
	if err == nil && s.wal.SnapshotDue() {
		err = s.writeWALSnapshot()
	}
	if err != nil {
		s.walFailures.Add(1)
		s.walFailed.Store(true)
	}
}

// writeWALSnapshot checkpoints the placer and serving counters and
// truncates the log; caller holds decision.
func (s *Server) writeWALSnapshot() error {
	dp, ok := s.placer.(core.DurablePlacer)
	if !ok {
		return fmt.Errorf("server: placer %q does not support durable logging", s.name)
	}
	state, err := dp.MarshalState()
	if err != nil {
		return fmt.Errorf("server: snapshot placer state: %w", err)
	}
	snap := &wal.Snapshot{
		PlacerState:    state,
		Requests:       uint64(s.requests.Load()),
		Opened:         uint64(s.opened.Load()),
		WalkBits:       s.walkBits.Load(),
		StationsDigest: core.StationDigest(dp.Stations()),
	}
	if es, ok := s.placer.(*core.ESharing); ok {
		snap.SimBits = math.Float64bits(es.LastSimilarity())
	}
	return s.wal.WriteSnapshot(snap)
}

// WALRecords reports how many records the decision log holds past its
// snapshot base — appended this run or recovered at startup — or 0
// when the server runs without durability. Intended for startup
// logging; it briefly takes the decision lock.
func (s *Server) WALRecords() uint64 {
	s.decision <- struct{}{}
	defer func() { <-s.decision }()
	if s.wal == nil {
		return 0
	}
	return s.wal.Records()
}

// Close flushes and closes the decision log (a no-op without one). The
// decision lock is held across the close so no placement can race the
// final sync.
func (s *Server) Close() error {
	s.decision <- struct{}{}
	defer func() { <-s.decision }()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}
