package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
)

// --- exposition-format parser ------------------------------------------

type sample struct {
	name   string
	labels map[string]string
	value  float64
}

type family struct {
	help, typ string
	samples   []sample
}

var labelRe = regexp.MustCompile(`(\w+)="([^"]*)"`)

// parseExposition parses the Prometheus text format strictly: every
// sample must belong to a family announced by HELP and TYPE lines, in
// that order, and every value must parse as a float.
func parseExposition(t *testing.T, text string) map[string]*family {
	t.Helper()
	families := map[string]*family{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if _, dup := families[name]; dup {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			families[name] = &family{help: help}
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: TYPE without type: %q", ln+1, line)
			}
			f, seen := families[name]
			if !seen {
				t.Fatalf("line %d: TYPE before HELP for %s", ln+1, name)
			}
			if f.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
				f.typ = typ
			default:
				t.Fatalf("line %d: invalid type %q", ln+1, typ)
			}
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unrecognised comment %q", ln+1, line)
		default:
			s, famName := parseSample(t, ln+1, line)
			f, seen := families[famName]
			if !seen || f.typ == "" {
				t.Fatalf("line %d: sample %q before HELP+TYPE of %s", ln+1, line, famName)
			}
			f.samples = append(f.samples, s)
		}
	}
	return families
}

// parseSample splits one sample line, returning the sample and the
// family it belongs to (histogram _bucket/_sum/_count samples belong to
// the base family).
func parseSample(t *testing.T, ln int, line string) (sample, string) {
	t.Helper()
	s := sample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.name = line[:i]
		j := strings.IndexByte(line, '}')
		if j < i {
			t.Fatalf("line %d: unterminated label set: %q", ln, line)
		}
		for _, m := range labelRe.FindAllStringSubmatch(line[i+1:j], -1) {
			s.labels[m[1]] = m[2]
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		var ok bool
		s.name, rest, ok = strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: sample without value: %q", ln, line)
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("line %d: bad value in %q: %v", ln, line, err)
	}
	s.value = v
	famName := s.name
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(s.name, suffix); base != s.name {
			famName = base
		}
	}
	return s, famName
}

func scrape(t *testing.T, url string) map[string]*family {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("scrape content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, string(body))
}

// checkHistogram validates bucket monotonicity and the +Inf/count/sum
// invariants for every labelled series of a histogram family.
func checkHistogram(t *testing.T, f *family) {
	t.Helper()
	if f.typ != "histogram" {
		t.Fatalf("family type %q, want histogram", f.typ)
	}
	type series struct {
		bounds []float64
		counts map[float64]float64
		inf    float64
		sum    float64
		count  float64
		hasInf bool
	}
	byEndpoint := map[string]*series{}
	get := func(ep string) *series {
		if byEndpoint[ep] == nil {
			byEndpoint[ep] = &series{counts: map[float64]float64{}}
		}
		return byEndpoint[ep]
	}
	for _, s := range f.samples {
		ep := s.labels["endpoint"]
		if ep == "" {
			t.Fatalf("histogram sample without endpoint label: %+v", s)
		}
		sr := get(ep)
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le := s.labels["le"]
			if le == "+Inf" {
				sr.inf, sr.hasInf = s.value, true
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("endpoint %s: bad le %q", ep, le)
			}
			sr.bounds = append(sr.bounds, bound)
			sr.counts[bound] = s.value
		case strings.HasSuffix(s.name, "_sum"):
			sr.sum = s.value
		case strings.HasSuffix(s.name, "_count"):
			sr.count = s.value
		}
	}
	for ep, sr := range byEndpoint {
		if !sr.hasInf {
			t.Errorf("endpoint %s: no +Inf bucket", ep)
			continue
		}
		sort.Float64s(sr.bounds)
		prev := 0.0
		for _, b := range sr.bounds {
			if sr.counts[b] < prev {
				t.Errorf("endpoint %s: bucket le=%g count %g < previous %g (not monotone)",
					ep, b, sr.counts[b], prev)
			}
			prev = sr.counts[b]
		}
		if sr.inf < prev {
			t.Errorf("endpoint %s: +Inf bucket %g < last bound %g", ep, sr.inf, prev)
		}
		if sr.inf != sr.count {
			t.Errorf("endpoint %s: +Inf bucket %g != count %g", ep, sr.inf, sr.count)
		}
		if sr.sum < 0 {
			t.Errorf("endpoint %s: negative sum %g", ep, sr.sum)
		}
	}
}

// counterValue sums a family's samples matching the given labels.
func counterValue(f *family, want map[string]string) float64 {
	if f == nil {
		return 0
	}
	total := 0.0
	for _, s := range f.samples {
		match := true
		for k, v := range want {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			total += s.value
		}
	}
	return total
}

// --- exposition test ----------------------------------------------------

func TestMetricsExpositionFormat(t *testing.T) {
	ts, client := newTestServer(t)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := client.Place(ctx, geo.Pt(float64(i*700), 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Produce one decode error so the error family has a sample.
	resp, err := http.Post(ts.URL+"/v1/requests", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()

	families := scrape(t, ts.URL)
	for _, name := range []string{
		"esharing_requests_total", "esharing_stations_opened_total",
		"esharing_walk_meters_total", "esharing_stations",
		"esharing_requests_shed_total", "esharing_request_errors_all_total",
		"esharing_inflight_requests", "esharing_place_queue_depth",
		"esharing_place_queue_limit", "esharing_request_errors_total",
		"esharing_request_duration_seconds", "esharing_build_info",
	} {
		if families[name] == nil {
			t.Errorf("missing family %s", name)
		}
	}
	if f := families["esharing_requests_total"]; f != nil && counterValue(f, nil) != 4 {
		t.Errorf("requests_total = %g, want 4", counterValue(f, nil))
	}
	if got := counterValue(families["esharing_request_errors_total"],
		map[string]string{"endpoint": "place", "kind": "bad_request"}); got != 1 {
		t.Errorf("bad_request errors = %g, want 1", got)
	}
	checkHistogram(t, families["esharing_request_duration_seconds"])
	if f := families["esharing_build_info"]; f != nil {
		if len(f.samples) != 1 || f.samples[0].labels["algorithm"] != "meyerson" ||
			!strings.HasPrefix(f.samples[0].labels["go_version"], "go") {
			t.Errorf("build info samples: %+v", f.samples)
		}
	}
	// The place histogram must have observed the 4 OK + 1 failed request.
	if got := counterValue(families["esharing_request_duration_seconds"],
		map[string]string{"endpoint": "place", "le": "+Inf"}); got != 5 {
		t.Errorf("place +Inf bucket = %g, want 5", got)
	}
}

// --- backpressure -------------------------------------------------------

// blockingPlacer parks every Place call on gate so tests can hold the
// decision lock for as long as they like.
type blockingPlacer struct {
	gate    chan struct{}
	entered chan struct{} // receives one token per Place entry
	station []geo.Point
}

func newBlockingPlacer() *blockingPlacer {
	return &blockingPlacer{
		gate:    make(chan struct{}),
		entered: make(chan struct{}, 1024),
		station: []geo.Point{geo.Pt(0, 0)},
	}
}

func (p *blockingPlacer) Place(dest geo.Point) (core.Decision, error) {
	p.entered <- struct{}{}
	<-p.gate
	return core.Decision{Station: p.station[0], Walk: dest.Dist(p.station[0])}, nil
}

func (p *blockingPlacer) Stations() []geo.Point { return p.station }
func (p *blockingPlacer) Name() string          { return "blocking" }

// TestShedLoadUnderSaturation saturates a MaxInFlight=2 server with a
// blocked placer: exactly 2 requests may be in flight, every other
// request must shed with 429 + Retry-After, scrapes during the storm
// must not block on the held decision lock, and afterwards
// accepted + shed == sent with exact counter reconciliation.
func TestShedLoadUnderSaturation(t *testing.T) {
	placer := newBlockingPlacer()
	srv, err := New(placer, WithMaxInFlight(2))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const sent = 20
	var oks, sheds, others atomic.Int64
	var retryAfterMissing atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < sent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"dest":{"x":%d,"y":1}}`, i)
			resp, err := http.Post(ts.URL+"/v1/requests", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer func() { _ = resp.Body.Close() }()
			switch resp.StatusCode {
			case http.StatusOK:
				oks.Add(1)
			case http.StatusTooManyRequests:
				sheds.Add(1)
				if resp.Header.Get("Retry-After") == "" {
					retryAfterMissing.Add(1)
				}
			default:
				others.Add(1)
			}
		}(i)
	}

	// While the decision lock is held by a blocked Place, scrapes must
	// still complete; poll until all excess requests have been shed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		families := scrape(t, ts.URL)
		if counterValue(families["esharing_requests_shed_total"], nil) >= sent-2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shed counter never reached %d", sent-2)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(placer.gate) // release the two admitted requests
	wg.Wait()

	if oks.Load() != 2 || sheds.Load() != sent-2 || others.Load() != 0 {
		t.Fatalf("oks=%d sheds=%d others=%d, want 2/%d/0", oks.Load(), sheds.Load(), others.Load(), sent-2)
	}
	if retryAfterMissing.Load() != 0 {
		t.Errorf("%d shed responses lacked Retry-After", retryAfterMissing.Load())
	}

	families := scrape(t, ts.URL)
	if got := counterValue(families["esharing_requests_total"], nil); got != 2 {
		t.Errorf("requests_total = %g, want 2", got)
	}
	if got := counterValue(families["esharing_requests_shed_total"], nil); got != sent-2 {
		t.Errorf("shed_total = %g, want %d", got, sent-2)
	}
	if got := counterValue(families["esharing_request_errors_total"],
		map[string]string{"endpoint": "place", "kind": "shed"}); got != sent-2 {
		t.Errorf("shed error counter = %g, want %d", got, sent-2)
	}
	checkHistogram(t, families["esharing_request_duration_seconds"])

	// Exact reconciliation is also visible in /v1/stats.
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests+stats.Shed != sent {
		t.Errorf("accepted %d + shed %d != sent %d", stats.Requests, stats.Shed, sent)
	}
	if stats.Errors != stats.Shed {
		t.Errorf("stats errors = %d, want %d (sheds are the only errors)", stats.Errors, stats.Shed)
	}

	// Reconciliation sweep: drive every remaining error class —
	// including routes the mux itself rejects with 404/405, which used
	// to bypass the instrumentation entirely — then check the books
	// balance exactly: every error response a client saw lands in
	// exactly one kind counter, and the kind counters sum to the
	// aggregate error count in /v1/stats.
	expect := func(method, path, body string, wantStatus int) {
		t.Helper()
		var reader io.Reader
		if body != "" {
			reader = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, reader)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s %s: status %d, want %d", method, path, resp.StatusCode, wantStatus)
		}
	}
	expect(http.MethodPost, "/v1/requests", `{"dest":`, http.StatusBadRequest)
	expect(http.MethodPost, "/v1/requests", `{"dest":{"x":1e999,"y":0}}`, http.StatusBadRequest)
	expect(http.MethodGet, "/no/such/route", "", http.StatusNotFound)
	expect(http.MethodDelete, "/v1/stations", "", http.StatusMethodNotAllowed)

	const extraErrors = 4
	families = scrape(t, ts.URL)
	errFam := families["esharing_request_errors_total"]
	for _, want := range []struct {
		endpoint, kind string
		value          float64
	}{
		{"place", "shed", sent - 2},
		{"place", "bad_request", 2},
		{"other", "not_found", 1},
		{"other", "method_not_allowed", 1},
	} {
		if got := counterValue(errFam, map[string]string{"endpoint": want.endpoint, "kind": want.kind}); got != want.value {
			t.Errorf("errors{endpoint=%q,kind=%q} = %g, want %g", want.endpoint, want.kind, got, want.value)
		}
	}
	stats, err = client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if kindSum := counterValue(errFam, nil); kindSum != float64(stats.Errors) {
		t.Errorf("sum of kind counters = %g, stats errors = %d; the two books must agree", kindSum, stats.Errors)
	}
	if got := counterValue(families["esharing_request_errors_all_total"], nil); got != float64(stats.Errors) {
		t.Errorf("errors_all_total = %g, stats errors = %d", got, stats.Errors)
	}
	if got := counterValue(errFam, map[string]string{"endpoint": "place", "kind": "shed"}); got != float64(stats.Shed) {
		t.Errorf("shed kind counter = %g, stats shed = %d", got, stats.Shed)
	}
	// The place-path identity the admission gate promises: every request
	// sent to POST /v1/requests is accepted, shed, canceled, or errored
	// — no response is dropped or double-counted.
	placeSent := int64(sent + 2) // storm plus the two bad-request probes
	canceled := int64(counterValue(errFam, map[string]string{"endpoint": "place", "kind": "canceled"}))
	placeErrored := int64(counterValue(errFam, map[string]string{"endpoint": "place"})) - stats.Shed - canceled
	if got := stats.Requests + stats.Shed + canceled + placeErrored; got != placeSent {
		t.Errorf("accepted %d + shed %d + canceled %d + errored %d = %d, want %d sent",
			stats.Requests, stats.Shed, canceled, placeErrored, got, placeSent)
	}
}

// TestQueuedRequestHonorsCancellation cancels a request parked in the
// admission queue: it must return promptly, free its queue slot for the
// next request, and be counted under kind="canceled".
func TestQueuedRequestHonorsCancellation(t *testing.T) {
	placer := newBlockingPlacer()
	srv, err := New(placer, WithMaxInFlight(2))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(ctx context.Context, x int) (int, error) {
		body := fmt.Sprintf(`{"dest":{"x":%d,"y":1}}`, x)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/v1/requests", strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := ts.Client().Do(req)
		if err != nil {
			return 0, err
		}
		defer func() { _ = resp.Body.Close() }()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}

	results := make(chan int, 2)
	go func() { // r1: holds the decision lock inside Place
		code, err := post(context.Background(), 1)
		if err != nil {
			t.Error(err)
		}
		results <- code
	}()
	<-placer.entered // r1 is inside Place

	ctx, cancel := context.WithCancel(context.Background())
	r2err := make(chan error, 1)
	go func() { // r2: parked in the admission queue
		_, err := post(ctx, 2)
		r2err <- err
	}()
	// Wait until r2 occupies the second queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		families := scrape(t, ts.URL)
		if counterValue(families["esharing_place_queue_depth"], nil) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the queue")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-r2err; err == nil {
		t.Error("canceled queued request should surface an error to its client")
	}

	// The freed slot must admit a third request instead of shedding it.
	r3 := make(chan int, 1)
	go func() {
		code, err := post(context.Background(), 3)
		if err != nil {
			t.Error(err)
		}
		r3 <- code
	}()
	for {
		families := scrape(t, ts.URL)
		if counterValue(families["esharing_place_queue_depth"], nil) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("third request never reached the queue")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(placer.gate)
	if code := <-results; code != http.StatusOK {
		t.Errorf("first request status %d", code)
	}
	if code := <-r3; code != http.StatusOK {
		t.Errorf("third request status %d (shed after a slot was freed?)", code)
	}

	families := scrape(t, ts.URL)
	if got := counterValue(families["esharing_request_errors_total"],
		map[string]string{"endpoint": "place", "kind": "canceled"}); got != 1 {
		t.Errorf("canceled error counter = %g, want 1", got)
	}
	if got := counterValue(families["esharing_requests_shed_total"], nil); got != 0 {
		t.Errorf("shed_total = %g, want 0", got)
	}
}

// --- failed-placement visibility ---------------------------------------

// failingPlacer rejects every placement.
type failingPlacer struct{}

func (failingPlacer) Place(geo.Point) (core.Decision, error) {
	return core.Decision{}, errors.New("no capacity")
}
func (failingPlacer) Stations() []geo.Point { return nil }
func (failingPlacer) Name() string          { return "failing" }

// TestFailedPlacementsAreCounted is the regression test for silent 422s:
// a failing placer must show up in /v1/stats errors and in the
// esharing_request_errors_total family, not report a healthy system.
func TestFailedPlacementsAreCounted(t *testing.T) {
	srv, err := New(failingPlacer{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := client.Place(ctx, geo.Pt(1, 2)); err == nil {
			t.Fatal("failing placer should error")
		}
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 3 {
		t.Errorf("stats errors = %d, want 3", stats.Errors)
	}
	if stats.Requests != 0 {
		t.Errorf("stats requests = %d, want 0 (placements all failed)", stats.Requests)
	}
	families := scrape(t, ts.URL)
	if got := counterValue(families["esharing_request_errors_total"],
		map[string]string{"endpoint": "place", "kind": "unprocessable"}); got != 3 {
		t.Errorf("unprocessable errors = %g, want 3", got)
	}
}

// TestOversizedBodyRejected covers the http.MaxBytesReader cap.
func TestOversizedBodyRejected(t *testing.T) {
	ts, _ := newTestServer(t)
	big := strings.Repeat(" ", maxBodyBytes+1024) + `{"dest":{"x":1,"y":2}}`
	resp, err := http.Post(ts.URL+"/v1/requests", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413", resp.StatusCode)
	}
	families := scrape(t, ts.URL)
	if got := counterValue(families["esharing_request_errors_total"],
		map[string]string{"endpoint": "place", "kind": "too_large"}); got != 1 {
		t.Errorf("too_large errors = %g, want 1", got)
	}
}
