// Package server exposes the E-Sharing backend over HTTP/JSON: trip
// requests stream in, parking decisions stream back (the paper's system
// architecture, Fig. 3, steps ②–④). Placement decisions are
// order-dependent only within a city region, so the server is
// geo-sharded: each shard owns an independent placer behind its own
// bounded admission gate and decision channel-lock, and
// POST /v1/requests routes to the shard owning the destination's planar
// cell (geo.ShardOf). Up to MaxInFlight requests (divided across
// shards) may hold or queue for a decision lock, and anything beyond
// that is shed immediately with 429 + Retry-After so goroutines never
// pile up unboundedly. Queued requests honour context cancellation.
// The read endpoints (/v1/stations, /v1/stats, /healthz, /metrics) are
// lock-free, served from per-shard atomic counters and immutable
// per-shard station snapshots merged deterministically in shard-index
// order, so monitoring scrapes and dashboard polls never block any
// decision stream. A single-shard server (New) behaves exactly like
// the historical unsharded one.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
)

// DefaultMaxInFlight is the admission-queue capacity used when no
// WithMaxInFlight option is given: enough headroom that a benchmark
// saturating every core never sheds, small enough that a stalled placer
// cannot accumulate unbounded goroutines.
const DefaultMaxInFlight = 256

// PlaceRequest is the body of POST /v1/requests.
type PlaceRequest struct {
	// Dest is the rider's destination in planar metres.
	Dest geo.Point `json:"dest"`
}

// PlaceResponse mirrors core.Decision over the wire.
type PlaceResponse struct {
	Station      geo.Point `json:"station"`
	StationIndex int       `json:"stationIndex"`
	Opened       bool      `json:"opened"`
	WalkMeters   float64   `json:"walkMeters"`
}

// StationsResponse is the body of GET /v1/stations.
type StationsResponse struct {
	Stations []geo.Point `json:"stations"`
}

// ShardStats is one shard's slice of StatsResponse.
type ShardStats struct {
	Shard          int      `json:"shard"`
	Requests       int64    `json:"requests"`
	Opened         int64    `json:"opened"`
	WalkTotal      float64  `json:"walkTotalMeters"`
	Stations       int      `json:"stations"`
	Shed           int64    `json:"shed"`
	LastSimilarity *float64 `json:"lastSimilarityPct,omitempty"`
}

// StatsResponse is the body of GET /v1/stats. LastSimilarity is a
// pointer so that a placer without a similarity figure omits the field
// while a legitimate 0% similarity serialises as an explicit zero —
// with a plain omitempty float the two were indistinguishable. Shards
// is present only on multi-shard servers; the top-level counters are
// always the fleet-wide aggregates (LastSimilarity is the
// request-weighted mean of the shards' figures).
type StatsResponse struct {
	Algorithm      string       `json:"algorithm"`
	Requests       int64        `json:"requests"`
	Opened         int64        `json:"opened"`
	WalkTotal      float64      `json:"walkTotalMeters"`
	Stations       int          `json:"stations"`
	Errors         int64        `json:"errors"`
	Shed           int64        `json:"shed"`
	LastSimilarity *float64     `json:"lastSimilarityPct,omitempty"`
	Shards         []ShardStats `json:"shards,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// readSnapshot is one shard's immutable state served to the lock-free
// read endpoints. The stations slice is never mutated after publication
// — a fresh copy is taken from the placer whenever a decision opens a
// station — so concurrent readers may share it without copying.
type readSnapshot struct {
	stations []geo.Point
	lastSim  float64
	hasSim   bool // placer is a *core.ESharing with a similarity figure
}

// mergedView is the fleet-wide read state: the per-shard snapshots it
// was built from and their station sets concatenated in shard-index
// order (so /v1/stations is deterministic for a fixed per-shard state).
// stationsJSON memoises the marshalled /v1/stations body: the merged
// station set only changes when some shard republishes, so every reader
// in between shares one encoding instead of re-marshalling thousands of
// points per poll.
type mergedView struct {
	parts    []*readSnapshot // shard-index order, len == len(shards)
	stations []geo.Point

	stationsJSON atomic.Pointer[[]byte]
}

// valid reports whether the view still reflects every shard's current
// snapshot, i.e. serving it is indistinguishable from rebuilding it.
func (v *mergedView) valid(shards []*shard) bool {
	for i, sh := range shards {
		if v.parts[i] != sh.snap.Load() {
			return false
		}
	}
	return true
}

// sameStationArrays reports whether two snapshot lists carry the same
// station arrays (by identity, which implies identical content since
// published slices are immutable). True when only similarity figures
// changed between views, letting the cached stations encoding carry
// over.
func sameStationArrays(a, b []*readSnapshot) bool {
	for i := range a {
		sa, sb := a[i].stations, b[i].stations
		if len(sa) != len(sb) {
			return false
		}
		if len(sa) > 0 && &sa[0] != &sb[0] {
			return false
		}
	}
	return true
}

// Server wraps one or more online placers (one per geo-shard) behind an
// HTTP API; NewWithFleet adds tier-2 fleet endpoints.
type Server struct {
	name string // placer.Name(), shared by all shards, cached for reads

	// shards are the independent decision loops; immutable after New.
	// Requests route by the planar cell of their destination at
	// shardPrecision (see geo.ShardOf).
	shards         []*shard
	shardPrecision int
	maxInFlight    int // fleet-wide admission budget (-max-inflight)

	fleetMu sync.Mutex // guards fleet independently of the decision locks
	// fleet is nil unless built with NewWithFleet; the pointer is set
	// once before serving, its state mutates only under the lock.
	// guarded by fleetMu
	fleet *energy.Fleet
	// getBike reads one bike's post-ride state (called under fleetMu).
	// It exists as a seam: with the real fleet a lookup after a
	// successful ride cannot fail, so tests inject failures here to
	// pin handleRide's no-zero-valued-200 contract.
	getBike func(id int64) (energy.Bike, error)

	// WAL configuration distributed to the shards by NewSharded; each
	// shard owns its log (multi-shard servers use walDir/shard-<index>).
	walDir           string
	walSyncEvery     int
	walSnapshotEvery uint64

	// Serving-path instrumentation, all lock-free (see metrics.go).
	errors    atomic.Int64 // all >=400 responses across endpoints
	inflight  atomic.Int64 // HTTP requests currently being served
	endpoints [numEndpoints]endpointMetrics

	merged atomic.Pointer[mergedView]

	mux *http.ServeMux
	// fallback serves requests no registered route matches, wrapping the
	// mux's own 404/405 responses in instrumentation so every
	// client-visible error lands in the counters (see ServeHTTP).
	fallback http.HandlerFunc
}

var _ http.Handler = (*Server)(nil)

// Option configures a Server.
type Option func(*Server)

// WithMaxInFlight bounds how many placement requests may hold or queue
// for the decision locks at once, divided evenly across shards (at
// least 1 per shard); requests beyond a shard's share are shed with 429
// Too Many Requests. Values < 1 keep DefaultMaxInFlight.
func WithMaxInFlight(n int) Option {
	return func(s *Server) {
		if n >= 1 {
			s.maxInFlight = n
		}
	}
}

// WithShardPrecision sets the planar cell precision used to route
// placement requests to shards (see geo.PlanarCellID): lower values
// make larger cells (geo.DefaultShardPrecision ≈ one cell per city),
// higher values shard within a city. Out-of-range values clamp to
// [1, 12]. Irrelevant on a single-shard server.
func WithShardPrecision(p int) Option {
	return func(s *Server) {
		s.shardPrecision = p
	}
}

// New builds a single-shard Server around placer.
func New(placer core.OnlinePlacer, opts ...Option) (*Server, error) {
	if placer == nil {
		return nil, errors.New("server: nil placer")
	}
	return NewSharded([]core.OnlinePlacer{placer}, opts...)
}

// NewSharded builds a geo-sharded Server: one independent decision loop
// per placer, with placement requests routed by destination cell and
// read endpoints merging the per-shard state. All placers must run the
// same algorithm. A one-element slice is exactly New.
func NewSharded(placers []core.OnlinePlacer, opts ...Option) (*Server, error) {
	if len(placers) == 0 {
		return nil, errors.New("server: no placers")
	}
	for i, p := range placers {
		if p == nil {
			return nil, fmt.Errorf("server: nil placer (shard %d)", i)
		}
	}
	name := placers[0].Name()
	for i, p := range placers[1:] {
		if p.Name() != name {
			return nil, fmt.Errorf("server: shard %d runs %q but shard 0 runs %q; all shards must run the same algorithm",
				i+1, p.Name(), name)
		}
	}
	s := &Server{
		name:           name,
		shardPrecision: geo.DefaultShardPrecision,
		maxInFlight:    DefaultMaxInFlight,
		mux:            http.NewServeMux(),
	}
	for _, opt := range opts {
		opt(s)
	}
	perShard := s.maxInFlight / len(placers)
	if perShard < 1 {
		perShard = 1
	}
	s.shards = make([]*shard, len(placers))
	for i, p := range placers {
		sh := &shard{
			index:       i,
			name:        name,
			placer:      p,
			decision:    make(chan struct{}, 1),
			queue:       make(chan struct{}, perShard),
			maxInFlight: perShard,
		}
		if len(placers) == 1 {
			sh.shedMsg = fmt.Sprintf("placement queue full (%d in flight)", perShard)
		} else {
			sh.shedMsg = fmt.Sprintf("placement queue full on shard %d (%d in flight)", i, perShard)
		}
		s.shards[i] = sh
	}
	if s.walDir != "" {
		// Recover every shard before the first snapshot publication so
		// the read endpoints never expose pre-recovery state. A
		// single-shard log lives at walDir itself, byte-compatible with
		// logs written before sharding existed.
		for i, sh := range s.shards {
			sh.walDir = s.walDir
			if len(s.shards) > 1 {
				sh.walDir = filepath.Join(s.walDir, fmt.Sprintf("shard-%03d", i))
			}
			sh.walSyncEvery = s.walSyncEvery
			sh.walSnapshotEvery = s.walSnapshotEvery
			if err := sh.openWAL(); err != nil {
				for _, prev := range s.shards[:i] {
					//esharing:allow walerr -- best-effort cleanup after a failed startup; the open error is what propagates
					_ = prev.closeWAL()
				}
				return nil, err
			}
		}
	}
	for _, sh := range s.shards {
		sh.publishSnapshot()
	}
	s.mux.HandleFunc("POST /v1/requests", s.instrument(epPlace, s.handlePlace))
	s.mux.HandleFunc("GET /v1/stations", s.instrument(epStations, s.handleStations))
	s.mux.HandleFunc("GET /v1/stats", s.instrument(epStats, s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.instrument(epHealth, s.handleHealth))
	s.mux.HandleFunc("GET /metrics", s.instrument(epMetrics, s.handleMetrics))
	s.fallback = s.instrument(epOther, s.mux.ServeHTTP)
	return s, nil
}

// ServeHTTP implements http.Handler. Matched routes carry their own
// instrumentation; unmatched requests — where the mux would answer
// 404/405 itself — are routed through the epOther fallback so those
// errors still reconcile with the counters. ServeMux.Handler returns an
// empty pattern exactly when no route matches (for both the
// not-found and the method-mismatch responses).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if _, pattern := s.mux.Handler(r); pattern == "" {
		s.fallback(w, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// view returns the merged read state, no staler than the moment of the
// call: a cached view is served only while every shard's snapshot is
// still the one it was built from, otherwise a fresh view is built from
// the current snapshots. Rebuilds race benignly — last store wins, and
// a reader that loads an older cached view re-validates it before
// serving, so a decision whose response has been committed is never
// hidden. With a single shard the view aliases the shard's own station
// slice, no copying.
//
//esharing:hotpath
func (s *Server) view() *mergedView {
	cur := s.merged.Load()
	if cur != nil && cur.valid(s.shards) {
		return cur
	}
	parts := make([]*readSnapshot, len(s.shards))
	total := 0
	for i, sh := range s.shards {
		parts[i] = sh.snap.Load()
		total += len(parts[i].stations)
	}
	next := &mergedView{parts: parts}
	if len(s.shards) == 1 {
		next.stations = parts[0].stations
	} else {
		st := make([]geo.Point, 0, total)
		for _, p := range parts {
			st = append(st, p.stations...)
		}
		next.stations = st
	}
	if cur != nil && sameStationArrays(cur.parts, parts) {
		// Only similarity figures changed; the station content is
		// identical, so the cached encoding stays byte-accurate.
		if b := cur.stationsJSON.Load(); b != nil {
			next.stationsJSON.Store(b)
		}
	}
	s.merged.Store(next)
	return next
}

// handlePlace serves POST /v1/requests: shard routing, admission gate,
// decision lock, placement, snapshot refresh.
//
//esharing:hotpath
func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	var req PlaceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !req.Dest.IsFinite() {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "destination must be finite"})
		return
	}
	sh := s.route(req.Dest)

	// Admission gate: claim a queue slot on the destination's shard or
	// shed immediately. Shedding here — before touching the decision
	// lock — keeps the 429 path O(1) no matter how stalled the placer
	// is.
	select {
	case sh.queue <- struct{}{}:
	default:
		sh.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: sh.shedMsg})
		return
	}
	defer func() { <-sh.queue }()

	decision, acquired, err := sh.placeLocked(r.Context(), req.Dest)
	if !acquired {
		writeJSON(w, statusClientClosedRequest,
			errorBody{Error: "request canceled while queued for placement"})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, PlaceResponse{
		Station:      decision.Station,
		StationIndex: decision.StationIndex,
		Opened:       decision.Opened,
		WalkMeters:   decision.Walk,
	})
}

// placeLocked serialises one placement on the shard: it waits for the
// decision lock — abandoning the wait, with acquired=false, if the
// client gives up first — applies the placement, updates the serving
// counters, refreshes the read snapshot, and logs the decision durably.
// The lock is released by defer, so a panicking placer cannot leak it;
// the release still precedes the caller's response write.
//
//esharing:hotpath
//esharing:deterministic
func (sh *shard) placeLocked(ctx context.Context, dest geo.Point) (decision core.Decision, acquired bool, err error) {
	select {
	case sh.decision <- struct{}{}:
	case <-ctx.Done():
		return core.Decision{}, false, nil
	}
	defer func() { <-sh.decision }()
	decision, err = sh.placer.Place(dest)
	if err != nil {
		return core.Decision{}, true, err
	}
	sh.requests.Add(1)
	if decision.Opened {
		sh.opened.Add(1)
	}
	walk := math.Float64frombits(sh.walkBits.Load()) + decision.Walk
	sh.walkBits.Store(math.Float64bits(walk))
	sh.refreshAfterPlace(decision.Opened)
	// The decision is durable (modulo -wal-sync batching) before the
	// lock is released and the response committed.
	sh.logDecision(dest, decision)
	return decision, true, nil
}

// handleStations serves GET /v1/stations from the merged view —
// per-shard station sets concatenated in shard-index order — memoising
// the marshalled body between shard publications.
//
//esharing:hotpath
func (s *Server) handleStations(w http.ResponseWriter, _ *http.Request) {
	v := s.view()
	if b := v.stationsJSON.Load(); b != nil {
		writeJSONBytes(w, *b)
		return
	}
	buf, err := json.Marshal(StationsResponse{Stations: v.stations})
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "encode stations: " + err.Error()})
		return
	}
	buf = append(buf, '\n')
	// Concurrent first readers may both marshal; last store wins and
	// the results are identical, so this race is benign.
	v.stationsJSON.Store(&buf)
	writeJSONBytes(w, buf)
}

// handleStats serves GET /v1/stats from the per-shard atomics and the
// merged view, summed in shard-index order so the aggregate floats are
// deterministic for a fixed per-shard state.
//
//esharing:hotpath
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	v := s.view()
	resp := StatsResponse{
		Algorithm: s.name,
		Stations:  len(v.stations),
		Errors:    s.errors.Load(),
	}
	per := make([]ShardStats, len(s.shards))
	for i, sh := range s.shards {
		part := v.parts[i]
		ss := ShardStats{
			Shard:     i,
			Requests:  sh.requests.Load(),
			Opened:    sh.opened.Load(),
			WalkTotal: math.Float64frombits(sh.walkBits.Load()),
			Stations:  len(part.stations),
			Shed:      sh.shed.Load(),
		}
		if part.hasSim {
			sim := part.lastSim
			ss.LastSimilarity = &sim
		}
		per[i] = ss
		resp.Requests += ss.Requests
		resp.Opened += ss.Opened
		resp.WalkTotal += ss.WalkTotal
		resp.Shed += ss.Shed
	}
	if len(per) == 1 {
		// Single shard: the shard's figure verbatim, bit-identical to
		// the unsharded server (no mean arithmetic in between).
		resp.LastSimilarity = per[0].LastSimilarity
	} else {
		resp.Shards = per
		var wSum, wTot, uSum float64
		simCount := 0
		for _, ss := range per {
			if ss.LastSimilarity == nil {
				continue
			}
			simCount++
			uSum += *ss.LastSimilarity
			wSum += *ss.LastSimilarity * float64(ss.Requests)
			wTot += float64(ss.Requests)
		}
		if simCount > 0 {
			sim := uSum / float64(simCount)
			if wTot > 0 {
				sim = wSum / wTot
			}
			resp.LastSimilarity = &sim
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	for _, sh := range s.shards {
		if sh.walFailed.Load() {
			// A WAL append or snapshot failed on some shard: decisions
			// since then are not durable, so the instance must be
			// drained and replaced even though it still serves
			// correctly from memory.
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"status": "degraded",
				"reason": "decision log write failed; recent decisions are not durable",
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// decodeBody decodes a JSON request body into v, writing the error
// response itself when decoding fails (413 when the body blew through
// the http.MaxBytesReader cap, 400 otherwise).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decode request: %v", err)})
		return false
	}
	return true
}

// writeJSONBytes serves a pre-encoded JSON body.
func writeJSONBytes(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures after the header is committed can only be
	// reported by aborting the connection; ignore them.
	_ = json.NewEncoder(w).Encode(v)
}
