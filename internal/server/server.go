// Package server exposes the E-Sharing backend over HTTP/JSON: trip
// requests stream in, parking decisions stream back (the paper's system
// architecture, Fig. 3, steps ②–④). Placement decisions are
// order-dependent, so POST /v1/requests serialises access to the
// underlying online placer behind a bounded admission gate: up to
// MaxInFlight requests may hold or queue for the decision lock, and
// anything beyond that is shed immediately with 429 + Retry-After so
// goroutines never pile up unboundedly. Queued requests honour context
// cancellation. The read endpoints (/v1/stations, /v1/stats, /healthz,
// /metrics) are lock-free, served from atomic counters and a station
// snapshot republished whenever a decision changes it, so monitoring
// scrapes and dashboard polls never block the decision stream.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/wal"
)

// DefaultMaxInFlight is the admission-queue capacity used when no
// WithMaxInFlight option is given: enough headroom that a benchmark
// saturating every core never sheds, small enough that a stalled placer
// cannot accumulate unbounded goroutines.
const DefaultMaxInFlight = 256

// PlaceRequest is the body of POST /v1/requests.
type PlaceRequest struct {
	// Dest is the rider's destination in planar metres.
	Dest geo.Point `json:"dest"`
}

// PlaceResponse mirrors core.Decision over the wire.
type PlaceResponse struct {
	Station      geo.Point `json:"station"`
	StationIndex int       `json:"stationIndex"`
	Opened       bool      `json:"opened"`
	WalkMeters   float64   `json:"walkMeters"`
}

// StationsResponse is the body of GET /v1/stations.
type StationsResponse struct {
	Stations []geo.Point `json:"stations"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Algorithm      string  `json:"algorithm"`
	Requests       int64   `json:"requests"`
	Opened         int64   `json:"opened"`
	WalkTotal      float64 `json:"walkTotalMeters"`
	Stations       int     `json:"stations"`
	Errors         int64   `json:"errors"`
	Shed           int64   `json:"shed"`
	LastSimilarity float64 `json:"lastSimilarityPct,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// readSnapshot is the immutable state served to the lock-free read
// endpoints. The stations slice is never mutated after publication — a
// fresh copy is taken from the placer whenever a decision opens a
// station — so concurrent readers may share it without copying.
// stationsJSON memoises the marshalled /v1/stations body: the station
// set only changes when a new snapshot is published, so every reader
// between publications shares one encoding instead of re-marshalling
// thousands of points per poll.
type readSnapshot struct {
	stations []geo.Point
	lastSim  float64
	hasSim   bool // placer is a *core.ESharing with a similarity figure

	stationsJSON atomic.Pointer[[]byte]
}

// Server wraps an online placer behind an HTTP API; NewWithFleet adds
// tier-2 fleet endpoints.
type Server struct {
	// placer is the serialised decision engine; every call on it must
	// happen under the decision channel-lock.
	// guarded by decision
	placer core.OnlinePlacer
	name   string // placer.Name(), cached so reads never touch the placer

	// decision is a capacity-1 channel used as the placement lock
	// (send = acquire, receive = release): unlike a sync.Mutex, a
	// queued request can abandon the wait when its context is
	// cancelled. queue bounds how many requests may hold or wait for
	// the lock; when it is full, handlePlace sheds with 429.
	decision    chan struct{}
	queue       chan struct{}
	maxInFlight int
	shedMsg     string // 429 body, pre-rendered off the hot path

	fleetMu sync.Mutex // guards fleet independently of the decision lock
	// fleet is nil unless built with NewWithFleet; the pointer is set
	// once before serving, its state mutates only under the lock.
	// guarded by fleetMu
	fleet *energy.Fleet

	// Counters are written only under the decision lock (single
	// writer) and read lock-free by the stats/metrics handlers.
	// walkBits holds the math.Float64bits of the cumulative walk
	// distance.
	requests atomic.Int64
	opened   atomic.Int64
	walkBits atomic.Uint64 // guarded by decision

	// wal, when non-nil, is the durable decision log (see wal.go): set
	// once during construction, appended to and snapshotted only under
	// the decision lock. Lock-free paths may nil-check the pointer and
	// read its (internally atomic) Metrics.
	// guarded by decision
	wal              *wal.Log
	walDir           string
	walSyncEvery     int
	walSnapshotEvery uint64
	walFailures      atomic.Int64 // append/snapshot failures (degraded)
	walFailed        atomic.Bool  // latched by the first failure
	walReplayNanos   atomic.Int64 // startup replay duration
	walReplayed      atomic.Int64 // records replayed at startup

	// Serving-path instrumentation, all lock-free (see metrics.go).
	shed      atomic.Int64 // 429s from the admission gate
	errors    atomic.Int64 // all >=400 responses across endpoints
	inflight  atomic.Int64 // HTTP requests currently being served
	endpoints [numEndpoints]endpointMetrics

	snap atomic.Pointer[readSnapshot]

	mux *http.ServeMux
	// fallback serves requests no registered route matches, wrapping the
	// mux's own 404/405 responses in instrumentation so every
	// client-visible error lands in the counters (see ServeHTTP).
	fallback http.HandlerFunc
}

var _ http.Handler = (*Server)(nil)

// Option configures a Server.
type Option func(*Server)

// WithMaxInFlight bounds how many placement requests may hold or queue
// for the decision lock at once; requests beyond the bound are shed
// with 429 Too Many Requests. Values < 1 keep DefaultMaxInFlight.
func WithMaxInFlight(n int) Option {
	return func(s *Server) {
		if n >= 1 {
			s.maxInFlight = n
		}
	}
}

// New builds a Server around placer.
func New(placer core.OnlinePlacer, opts ...Option) (*Server, error) {
	if placer == nil {
		return nil, errors.New("server: nil placer")
	}
	s := &Server{
		placer:      placer,
		name:        placer.Name(),
		maxInFlight: DefaultMaxInFlight,
		decision:    make(chan struct{}, 1),
		mux:         http.NewServeMux(),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.queue = make(chan struct{}, s.maxInFlight)
	s.shedMsg = fmt.Sprintf("placement queue full (%d in flight)", s.maxInFlight)
	if s.walDir != "" {
		// Recover before the first snapshot publication so the read
		// endpoints never expose pre-recovery state.
		if err := s.openWAL(); err != nil {
			return nil, err
		}
	}
	s.publishSnapshot()
	s.mux.HandleFunc("POST /v1/requests", s.instrument(epPlace, s.handlePlace))
	s.mux.HandleFunc("GET /v1/stations", s.instrument(epStations, s.handleStations))
	s.mux.HandleFunc("GET /v1/stats", s.instrument(epStats, s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.instrument(epHealth, s.handleHealth))
	s.mux.HandleFunc("GET /metrics", s.instrument(epMetrics, s.handleMetrics))
	s.fallback = s.instrument(epOther, s.mux.ServeHTTP)
	return s, nil
}

// ServeHTTP implements http.Handler. Matched routes carry their own
// instrumentation; unmatched requests — where the mux would answer
// 404/405 itself — are routed through the epOther fallback so those
// errors still reconcile with the counters. ServeMux.Handler returns an
// empty pattern exactly when no route matches (for both the
// not-found and the method-mismatch responses).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if _, pattern := s.mux.Handler(r); pattern == "" {
		s.fallback(w, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// publishSnapshot republishes the read-side state;
// caller holds decision (or the server is not yet serving).
// Called whenever the
// station set or the similarity figure may have changed; it copies the
// station slice, so callers should skip it when nothing changed.
func (s *Server) publishSnapshot() {
	snap := &readSnapshot{stations: s.placer.Stations()}
	if es, ok := s.placer.(*core.ESharing); ok {
		snap.lastSim = es.LastSimilarity()
		snap.hasSim = true
	}
	s.snap.Store(snap)
}

// refreshAfterPlace updates the published snapshot after a decision;
// caller holds decision. The station copy is only taken when the set
// actually changed (a station opened); a similarity change alone reuses
// the current slice.
func (s *Server) refreshAfterPlace(opened bool) {
	if opened {
		s.publishSnapshot()
		return
	}
	cur := s.snap.Load()
	if !cur.hasSim {
		return
	}
	es, ok := s.placer.(*core.ESharing)
	if !ok {
		return
	}
	if sim := es.LastSimilarity(); sim != cur.lastSim {
		next := &readSnapshot{stations: cur.stations, lastSim: sim, hasSim: true}
		// The station set is unchanged, so the cached encoding carries over.
		if b := cur.stationsJSON.Load(); b != nil {
			next.stationsJSON.Store(b)
		}
		s.snap.Store(next)
	}
}

// handlePlace serves POST /v1/requests: admission gate, decision lock,
// placement, snapshot refresh.
//
//esharing:hotpath
func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	var req PlaceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !req.Dest.IsFinite() {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "destination must be finite"})
		return
	}

	// Admission gate: claim a queue slot or shed immediately. Shedding
	// here — before touching the decision lock — keeps the 429 path
	// O(1) no matter how stalled the placer is.
	select {
	case s.queue <- struct{}{}:
	default:
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: s.shedMsg})
		return
	}
	defer func() { <-s.queue }()

	// Wait for the decision lock, abandoning the wait if the client
	// gives up first.
	select {
	case s.decision <- struct{}{}:
	case <-r.Context().Done():
		writeJSON(w, statusClientClosedRequest,
			errorBody{Error: "request canceled while queued for placement"})
		return
	}
	decision, err := s.placer.Place(req.Dest)
	if err == nil {
		s.requests.Add(1)
		if decision.Opened {
			s.opened.Add(1)
		}
		walk := math.Float64frombits(s.walkBits.Load()) + decision.Walk
		s.walkBits.Store(math.Float64bits(walk))
		s.refreshAfterPlace(decision.Opened)
		// The decision is durable (modulo -wal-sync batching) before
		// the lock is released and the response committed.
		s.logDecision(req.Dest, decision)
	}
	<-s.decision

	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, PlaceResponse{
		Station:      decision.Station,
		StationIndex: decision.StationIndex,
		Opened:       decision.Opened,
		WalkMeters:   decision.Walk,
	})
}

// handleStations serves GET /v1/stations from the published snapshot,
// memoising the marshalled body between publications.
//
//esharing:hotpath
func (s *Server) handleStations(w http.ResponseWriter, _ *http.Request) {
	snap := s.snap.Load()
	if b := snap.stationsJSON.Load(); b != nil {
		writeJSONBytes(w, *b)
		return
	}
	buf, err := json.Marshal(StationsResponse{Stations: snap.stations})
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "encode stations: " + err.Error()})
		return
	}
	buf = append(buf, '\n')
	// Concurrent first readers may both marshal; last store wins and
	// the results are identical, so this race is benign.
	snap.stationsJSON.Store(&buf)
	writeJSONBytes(w, buf)
}

// handleStats serves GET /v1/stats from atomics and the snapshot.
//
//esharing:hotpath
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.snap.Load()
	resp := StatsResponse{
		Algorithm: s.name,
		Requests:  s.requests.Load(),
		Opened:    s.opened.Load(),
		WalkTotal: math.Float64frombits(s.walkBits.Load()),
		Stations:  len(snap.stations),
		Errors:    s.errors.Load(),
		Shed:      s.shed.Load(),
	}
	if snap.hasSim {
		resp.LastSimilarity = snap.lastSim
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.walFailed.Load() {
		// A WAL append or snapshot failed: decisions since then are
		// not durable, so the instance must be drained and replaced
		// even though it still serves correctly from memory.
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "degraded",
			"reason": "decision log write failed; recent decisions are not durable",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// decodeBody decodes a JSON request body into v, writing the error
// response itself when decoding fails (413 when the body blew through
// the http.MaxBytesReader cap, 400 otherwise).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decode request: %v", err)})
		return false
	}
	return true
}

// writeJSONBytes serves a pre-encoded JSON body.
func writeJSONBytes(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures after the header is committed can only be
	// reported by aborting the connection; ignore them.
	_ = json.NewEncoder(w).Encode(v)
}
