// Package server exposes the E-Sharing backend over HTTP/JSON: trip
// requests stream in, parking decisions stream back (the paper's system
// architecture, Fig. 3, steps ②–④). The handler serialises access to the
// underlying online placer, which is single-threaded by design (decisions
// are order-dependent).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
)

// PlaceRequest is the body of POST /v1/requests.
type PlaceRequest struct {
	// Dest is the rider's destination in planar metres.
	Dest geo.Point `json:"dest"`
}

// PlaceResponse mirrors core.Decision over the wire.
type PlaceResponse struct {
	Station      geo.Point `json:"station"`
	StationIndex int       `json:"stationIndex"`
	Opened       bool      `json:"opened"`
	WalkMeters   float64   `json:"walkMeters"`
}

// StationsResponse is the body of GET /v1/stations.
type StationsResponse struct {
	Stations []geo.Point `json:"stations"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Algorithm      string  `json:"algorithm"`
	Requests       int64   `json:"requests"`
	Opened         int64   `json:"opened"`
	WalkTotal      float64 `json:"walkTotalMeters"`
	Stations       int     `json:"stations"`
	LastSimilarity float64 `json:"lastSimilarityPct,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// Server wraps an online placer behind an HTTP API; NewWithFleet adds
// tier-2 fleet endpoints.
type Server struct {
	mu     sync.Mutex
	placer core.OnlinePlacer
	fleet  *energy.Fleet // nil unless built with NewWithFleet

	requests  int64
	opened    int64
	walkTotal float64

	mux *http.ServeMux
}

var _ http.Handler = (*Server)(nil)

// New builds a Server around placer.
func New(placer core.OnlinePlacer) (*Server, error) {
	if placer == nil {
		return nil, errors.New("server: nil placer")
	}
	s := &Server{placer: placer, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/requests", s.handlePlace)
	s.mux.HandleFunc("GET /v1/stations", s.handleStations)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	var req PlaceRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decode request: %v", err)})
		return
	}
	if !req.Dest.IsFinite() {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "destination must be finite"})
		return
	}

	s.mu.Lock()
	decision, err := s.placer.Place(req.Dest)
	if err == nil {
		s.requests++
		if decision.Opened {
			s.opened++
		}
		s.walkTotal += decision.Walk
	}
	s.mu.Unlock()

	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, PlaceResponse{
		Station:      decision.Station,
		StationIndex: decision.StationIndex,
		Opened:       decision.Opened,
		WalkMeters:   decision.Walk,
	})
}

func (s *Server) handleStations(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	stations := s.placer.Stations()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, StationsResponse{Stations: stations})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := StatsResponse{
		Algorithm: s.placer.Name(),
		Requests:  s.requests,
		Opened:    s.opened,
		WalkTotal: s.walkTotal,
		Stations:  len(s.placer.Stations()),
	}
	if es, ok := s.placer.(*core.ESharing); ok {
		resp.LastSimilarity = es.LastSimilarity()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures after the header is committed can only be
	// reported by aborting the connection; ignore them.
	_ = json.NewEncoder(w).Encode(v)
}
