// Package server exposes the E-Sharing backend over HTTP/JSON: trip
// requests stream in, parking decisions stream back (the paper's system
// architecture, Fig. 3, steps ②–④). Placement decisions are
// order-dependent, so POST /v1/requests serialises access to the
// underlying online placer; the read endpoints (/v1/stations, /v1/stats,
// /healthz, /metrics) are lock-free, served from atomic counters and a
// station snapshot republished whenever a decision changes it, so
// monitoring scrapes and dashboard polls never block the decision
// stream.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
)

// PlaceRequest is the body of POST /v1/requests.
type PlaceRequest struct {
	// Dest is the rider's destination in planar metres.
	Dest geo.Point `json:"dest"`
}

// PlaceResponse mirrors core.Decision over the wire.
type PlaceResponse struct {
	Station      geo.Point `json:"station"`
	StationIndex int       `json:"stationIndex"`
	Opened       bool      `json:"opened"`
	WalkMeters   float64   `json:"walkMeters"`
}

// StationsResponse is the body of GET /v1/stations.
type StationsResponse struct {
	Stations []geo.Point `json:"stations"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Algorithm      string  `json:"algorithm"`
	Requests       int64   `json:"requests"`
	Opened         int64   `json:"opened"`
	WalkTotal      float64 `json:"walkTotalMeters"`
	Stations       int     `json:"stations"`
	LastSimilarity float64 `json:"lastSimilarityPct,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// readSnapshot is the immutable state served to the lock-free read
// endpoints. The stations slice is never mutated after publication — a
// fresh copy is taken from the placer whenever a decision opens a
// station — so concurrent readers may share it without copying.
type readSnapshot struct {
	stations []geo.Point
	lastSim  float64
	hasSim   bool // placer is a *core.ESharing with a similarity figure
}

// Server wraps an online placer behind an HTTP API; NewWithFleet adds
// tier-2 fleet endpoints.
type Server struct {
	mu     sync.Mutex // serialises placement decisions (order-dependent)
	placer core.OnlinePlacer
	name   string // placer.Name(), cached so reads never touch the placer

	fleetMu sync.Mutex    // guards fleet independently of the decision lock
	fleet   *energy.Fleet // nil unless built with NewWithFleet

	// Counters are written only under mu (single writer) and read
	// lock-free by the stats/metrics handlers. walkBits holds the
	// math.Float64bits of the cumulative walk distance.
	requests atomic.Int64
	opened   atomic.Int64
	walkBits atomic.Uint64

	snap atomic.Pointer[readSnapshot]

	mux *http.ServeMux
}

var _ http.Handler = (*Server)(nil)

// New builds a Server around placer.
func New(placer core.OnlinePlacer) (*Server, error) {
	if placer == nil {
		return nil, errors.New("server: nil placer")
	}
	s := &Server{placer: placer, name: placer.Name(), mux: http.NewServeMux()}
	s.publishSnapshot()
	s.mux.HandleFunc("POST /v1/requests", s.handlePlace)
	s.mux.HandleFunc("GET /v1/stations", s.handleStations)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// publishSnapshot republishes the read-side state. Called under mu
// (or before the server is serving) whenever the station set or the
// similarity figure may have changed; it copies the station slice, so
// callers should skip it when nothing changed.
func (s *Server) publishSnapshot() {
	snap := &readSnapshot{stations: s.placer.Stations()}
	if es, ok := s.placer.(*core.ESharing); ok {
		snap.lastSim = es.LastSimilarity()
		snap.hasSim = true
	}
	s.snap.Store(snap)
}

// refreshAfterPlace updates the published snapshot after a decision.
// The station copy is only taken when the set actually changed (a
// station opened); a similarity change alone reuses the current slice.
func (s *Server) refreshAfterPlace(opened bool) {
	if opened {
		s.publishSnapshot()
		return
	}
	cur := s.snap.Load()
	if !cur.hasSim {
		return
	}
	es, ok := s.placer.(*core.ESharing)
	if !ok {
		return
	}
	if sim := es.LastSimilarity(); sim != cur.lastSim {
		s.snap.Store(&readSnapshot{stations: cur.stations, lastSim: sim, hasSim: true})
	}
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	var req PlaceRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decode request: %v", err)})
		return
	}
	if !req.Dest.IsFinite() {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "destination must be finite"})
		return
	}

	s.mu.Lock()
	decision, err := s.placer.Place(req.Dest)
	if err == nil {
		s.requests.Add(1)
		if decision.Opened {
			s.opened.Add(1)
		}
		walk := math.Float64frombits(s.walkBits.Load()) + decision.Walk
		s.walkBits.Store(math.Float64bits(walk))
		s.refreshAfterPlace(decision.Opened)
	}
	s.mu.Unlock()

	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, PlaceResponse{
		Station:      decision.Station,
		StationIndex: decision.StationIndex,
		Opened:       decision.Opened,
		WalkMeters:   decision.Walk,
	})
}

func (s *Server) handleStations(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StationsResponse{Stations: s.snap.Load().stations})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.snap.Load()
	resp := StatsResponse{
		Algorithm: s.name,
		Requests:  s.requests.Load(),
		Opened:    s.opened.Load(),
		WalkTotal: math.Float64frombits(s.walkBits.Load()),
		Stations:  len(snap.stations),
	}
	if snap.hasSim {
		resp.LastSimilarity = snap.lastSim
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures after the header is committed can only be
	// reported by aborting the connection; ignore them.
	_ = json.NewEncoder(w).Encode(v)
}
