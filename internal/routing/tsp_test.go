package routing

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/stats"
)

func TestTourLength(t *testing.T) {
	square := []geo.Point{geo.Pt(0, 0), geo.Pt(10, 0), geo.Pt(10, 10), geo.Pt(0, 10)}
	tests := []struct {
		name    string
		pts     []geo.Point
		order   []int
		want    float64
		wantErr bool
	}{
		{"empty", nil, nil, 0, false},
		{"square perimeter", square, []int{0, 1, 2, 3}, 40, false},
		{"square crossed", square, []int{0, 2, 1, 3}, 20 + 2*10*math.Sqrt2, false},
		{"wrong length", square, []int{0, 1}, 0, true},
		{"repeat", square, []int{0, 1, 1, 3}, 0, true},
		{"out of range", square, []int{0, 1, 2, 9}, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := TourLength(tt.pts, tt.order)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tt.wantErr)
			}
			if err == nil && math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("length=%v, want %v", got, tt.want)
			}
		})
	}
}

func TestNearestNeighbor(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(100, 0), geo.Pt(10, 0), geo.Pt(50, 0)}
	order, err := NearestNeighbor(pts, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v, want %v", order, want)
		}
	}
	if _, err := NearestNeighbor(pts, 9); err == nil {
		t.Error("bad start should error")
	}
	empty, err := NearestNeighbor(nil, 0)
	if err != nil || empty != nil {
		t.Errorf("empty input: %v, %v", empty, err)
	}
}

func TestTwoOptImproves(t *testing.T) {
	// A deliberately crossed square tour must be uncrossed to perimeter.
	square := []geo.Point{geo.Pt(0, 0), geo.Pt(10, 0), geo.Pt(10, 10), geo.Pt(0, 10)}
	crossed := []int{0, 2, 1, 3}
	improved := TwoOpt(square, crossed)
	got, err := TourLength(square, improved)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-40) > 1e-9 {
		t.Errorf("2-opt length=%v, want 40", got)
	}
	// Input untouched.
	if crossed[1] != 2 {
		t.Error("TwoOpt mutated input")
	}
}

func TestTwoOptSmallInputs(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(2, 0)}
	order := []int{2, 0, 1}
	got := TwoOpt(pts, order)
	if len(got) != 3 {
		t.Errorf("small tour mangled: %v", got)
	}
}

func TestHeldKarpKnownInstance(t *testing.T) {
	// Unit square plus centre point: optimal tour is perimeter + detour
	// through centre... simplest check: 4-point square = 40.
	square := []geo.Point{geo.Pt(0, 0), geo.Pt(10, 0), geo.Pt(10, 10), geo.Pt(0, 10)}
	order, length, err := HeldKarp(square)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(length-40) > 1e-9 {
		t.Errorf("length=%v, want 40", length)
	}
	check, err := TourLength(square, order)
	if err != nil {
		t.Fatalf("returned order invalid: %v", err)
	}
	if math.Abs(check-length) > 1e-9 {
		t.Errorf("reported %v but order gives %v", length, check)
	}
}

func TestHeldKarpTrivial(t *testing.T) {
	if order, l, err := HeldKarp(nil); err != nil || l != 0 || order != nil {
		t.Errorf("empty: %v %v %v", order, l, err)
	}
	if order, l, err := HeldKarp([]geo.Point{geo.Pt(1, 1)}); err != nil || l != 0 || len(order) != 1 {
		t.Errorf("single: %v %v %v", order, l, err)
	}
	two := []geo.Point{geo.Pt(0, 0), geo.Pt(3, 4)}
	if _, l, err := HeldKarp(two); err != nil || math.Abs(l-10) > 1e-9 {
		t.Errorf("pair: %v %v", l, err)
	}
}

func TestHeldKarpTooLarge(t *testing.T) {
	pts := make([]geo.Point, 17)
	if _, _, err := HeldKarp(pts); !errors.Is(err, ErrTooLarge) {
		t.Errorf("want ErrTooLarge, got %v", err)
	}
}

func TestHeuristicNearExactOnRandomInstances(t *testing.T) {
	rng := stats.NewRNG(13)
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.IntN(6)
		pts := stats.SamplePoints(rng, stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 1000)}, n)
		_, exact, err := HeldKarp(pts)
		if err != nil {
			t.Fatal(err)
		}
		nn, err := NearestNeighbor(pts, 0)
		if err != nil {
			t.Fatal(err)
		}
		improved := TwoOpt(pts, nn)
		heur, err := TourLength(pts, improved)
		if err != nil {
			t.Fatal(err)
		}
		if heur < exact-1e-6 {
			t.Fatalf("trial %d: heuristic %v below exact %v", trial, heur, exact)
		}
		if heur > 1.2*exact {
			t.Errorf("trial %d: heuristic %v vs exact %v (> 20%% gap)", trial, heur, exact)
		}
	}
}

func TestSolveDispatch(t *testing.T) {
	// Small: exact path. Large: heuristic path. Both must return valid
	// tours with consistent lengths.
	rng := stats.NewRNG(17)
	for _, n := range []int{0, 1, 5, 12, 30, 60} {
		pts := stats.SamplePoints(rng, stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 2000)}, n)
		order, length, err := Solve(pts)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		check, err := TourLength(pts, order)
		if err != nil {
			t.Fatalf("n=%d: invalid order %v", n, err)
		}
		if math.Abs(check-length) > 1e-6 {
			t.Errorf("n=%d: reported %v but order gives %v", n, length, check)
		}
	}
}

func TestSolveDeterministic(t *testing.T) {
	pts := stats.SamplePoints(stats.NewRNG(23), stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 500)}, 25)
	_, l1, err := Solve(pts)
	if err != nil {
		t.Fatal(err)
	}
	_, l2, err := Solve(pts)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Errorf("non-deterministic: %v vs %v", l1, l2)
	}
}
