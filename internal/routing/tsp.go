// Package routing solves the operator's charging tour as a Travelling
// Salesman Problem (Section V-E): after the incentive mechanism aggregates
// low-energy bikes, the operator traverses the remaining demand sites by
// the shortest route. Small instances are solved exactly with Held–Karp;
// larger ones with nearest-neighbour construction plus 2-opt improvement.
package routing

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geo"
)

// ErrTooLarge is returned by HeldKarp beyond its tractable size.
var ErrTooLarge = errors.New("routing: instance too large for exact solver")

// heldKarpLimit bounds the exact solver (2^n·n² state space).
const heldKarpLimit = 16

// TourLength returns the closed-tour length visiting pts in the given
// order and returning to the start. It errors when order is not a
// permutation of pts' indices.
func TourLength(pts []geo.Point, order []int) (float64, error) {
	if len(order) != len(pts) {
		return 0, fmt.Errorf("routing: order length %d for %d points", len(order), len(pts))
	}
	if len(pts) == 0 {
		return 0, nil
	}
	seen := make([]bool, len(pts))
	for _, i := range order {
		if i < 0 || i >= len(pts) {
			return 0, fmt.Errorf("routing: order index %d out of range", i)
		}
		if seen[i] {
			return 0, fmt.Errorf("routing: order visits %d twice", i)
		}
		seen[i] = true
	}
	var total float64
	for k := 0; k < len(order); k++ {
		next := order[(k+1)%len(order)]
		total += pts[order[k]].Dist(pts[next])
	}
	return total, nil
}

// NearestNeighbor builds a tour starting at index start by repeatedly
// visiting the closest unvisited point.
func NearestNeighbor(pts []geo.Point, start int) ([]int, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	if start < 0 || start >= len(pts) {
		return nil, fmt.Errorf("routing: start %d out of range [0,%d)", start, len(pts))
	}
	order := make([]int, 0, len(pts))
	visited := make([]bool, len(pts))
	cur := start
	order = append(order, cur)
	visited[cur] = true
	for len(order) < len(pts) {
		best, bestD := -1, math.Inf(1)
		for i := range pts {
			if visited[i] {
				continue
			}
			if d := pts[cur].Dist2(pts[i]); d < bestD {
				best, bestD = i, d
			}
		}
		cur = best
		order = append(order, cur)
		visited[cur] = true
	}
	return order, nil
}

// TwoOpt improves a tour by repeated segment reversal until no improving
// move remains. It returns a new slice; the input is untouched.
func TwoOpt(pts []geo.Point, order []int) []int {
	n := len(order)
	tour := append([]int(nil), order...)
	if n < 4 {
		return tour
	}
	improved := true
	for improved {
		improved = false
		for i := 0; i < n-1; i++ {
			for j := i + 2; j < n; j++ {
				// Reversing tour[i+1..j] replaces edges (i,i+1) and
				// (j,j+1) with (i,j) and (i+1,j+1).
				a, b := tour[i], tour[i+1]
				c, d := tour[j], tour[(j+1)%n]
				if a == d { // full wrap, same edge
					continue
				}
				before := pts[a].Dist(pts[b]) + pts[c].Dist(pts[d])
				after := pts[a].Dist(pts[c]) + pts[b].Dist(pts[d])
				if after < before-1e-9 {
					for lo, hi := i+1, j; lo < hi; lo, hi = lo+1, hi-1 {
						tour[lo], tour[hi] = tour[hi], tour[lo]
					}
					improved = true
				}
			}
		}
	}
	return tour
}

// HeldKarp solves the TSP exactly by dynamic programming over subsets.
// It errors for more than heldKarpLimit points.
func HeldKarp(pts []geo.Point) ([]int, float64, error) {
	n := len(pts)
	if n > heldKarpLimit {
		return nil, 0, fmt.Errorf("%w: %d points (limit %d)", ErrTooLarge, n, heldKarpLimit)
	}
	switch n {
	case 0:
		return nil, 0, nil
	case 1:
		return []int{0}, 0, nil
	case 2:
		return []int{0, 1}, 2 * pts[0].Dist(pts[1]), nil
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = pts[i].Dist(pts[j])
		}
	}
	size := 1 << (n - 1) // subsets of {1..n-1}
	dp := make([][]float64, size)
	parent := make([][]int16, size)
	for s := range dp {
		dp[s] = make([]float64, n)
		parent[s] = make([]int16, n)
		for j := range dp[s] {
			dp[s][j] = math.Inf(1)
			parent[s][j] = -1
		}
	}
	for j := 1; j < n; j++ {
		dp[1<<(j-1)][j] = dist[0][j]
		parent[1<<(j-1)][j] = 0
	}
	for s := 1; s < size; s++ {
		for j := 1; j < n; j++ {
			bit := 1 << (j - 1)
			if s&bit == 0 || math.IsInf(dp[s][j], 1) {
				continue
			}
			for k := 1; k < n; k++ {
				kbit := 1 << (k - 1)
				if s&kbit != 0 {
					continue
				}
				ns := s | kbit
				if cand := dp[s][j] + dist[j][k]; cand < dp[ns][k] {
					dp[ns][k] = cand
					parent[ns][k] = int16(j)
				}
			}
		}
	}
	full := size - 1
	best, bestJ := math.Inf(1), -1
	for j := 1; j < n; j++ {
		if cand := dp[full][j] + dist[j][0]; cand < best {
			best, bestJ = cand, j
		}
	}
	order := make([]int, 0, n)
	s, j := full, bestJ
	for j != 0 {
		order = append(order, j)
		pj := int(parent[s][j])
		s &^= 1 << (j - 1)
		j = pj
	}
	order = append(order, 0)
	// Reverse into start-at-0 forward order.
	for lo, hi := 0, len(order)-1; lo < hi; lo, hi = lo+1, hi-1 {
		order[lo], order[hi] = order[hi], order[lo]
	}
	return order, best, nil
}

// Solve returns a good tour: exact for small instances, NN + 2-opt
// otherwise.
func Solve(pts []geo.Point) ([]int, float64, error) {
	if len(pts) <= heldKarpLimit {
		return HeldKarp(pts)
	}
	order, err := NearestNeighbor(pts, 0)
	if err != nil {
		return nil, 0, err
	}
	order = TwoOpt(pts, order)
	length, err := TourLength(pts, order)
	if err != nil {
		return nil, 0, err
	}
	return order, length, nil
}
