package routing

import (
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

func quickPoints(raw []uint32, maxN int) []geo.Point {
	if len(raw) > maxN {
		raw = raw[:maxN]
	}
	pts := make([]geo.Point, 0, len(raw))
	for _, r := range raw {
		pts = append(pts, geo.Pt(float64(r%3000), float64((r>>16)%3000)))
	}
	return pts
}

func isPermutation(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return false
		}
		seen[i] = true
	}
	return true
}

func TestQuickNearestNeighborIsPermutation(t *testing.T) {
	property := func(raw []uint32) bool {
		pts := quickPoints(raw, 40)
		if len(pts) == 0 {
			return true
		}
		order, err := NearestNeighbor(pts, 0)
		if err != nil {
			return false
		}
		return isPermutation(order, len(pts))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickTwoOptNeverWorsens(t *testing.T) {
	property := func(raw []uint32) bool {
		pts := quickPoints(raw, 30)
		if len(pts) < 2 {
			return true
		}
		order, err := NearestNeighbor(pts, 0)
		if err != nil {
			return false
		}
		before, err := TourLength(pts, order)
		if err != nil {
			return false
		}
		improved := TwoOpt(pts, order)
		if !isPermutation(improved, len(pts)) {
			return false
		}
		after, err := TourLength(pts, improved)
		if err != nil {
			return false
		}
		return after <= before+1e-6
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickSolveProducesValidTours(t *testing.T) {
	property := func(raw []uint32) bool {
		pts := quickPoints(raw, 20)
		order, length, err := Solve(pts)
		if err != nil {
			return false
		}
		if !isPermutation(order, len(pts)) {
			return false
		}
		check, err := TourLength(pts, order)
		if err != nil {
			return false
		}
		return length >= 0 && check >= length-1e-6 && check <= length+1e-6
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
