package forecast

import (
	"fmt"
)

// SeasonalNaive forecasts the value observed one season earlier
// (period 24 for hourly demand repeats the same hour yesterday). It is
// the standard sanity baseline for periodic series: a learned model that
// cannot beat it has learned nothing beyond the cycle.
type SeasonalNaive struct {
	Period int
	fitted bool
}

var _ Forecaster = (*SeasonalNaive)(nil)

// NewSeasonalNaive validates the period and returns the model.
func NewSeasonalNaive(period int) (*SeasonalNaive, error) {
	if period < 1 {
		return nil, fmt.Errorf("forecast: seasonal period %d < 1", period)
	}
	return &SeasonalNaive{Period: period}, nil
}

// Fit implements Forecaster.
func (s *SeasonalNaive) Fit(series []float64) error {
	if len(series) < s.Period {
		return fmt.Errorf("%w: %d points for period %d", ErrSeriesTooShort, len(series), s.Period)
	}
	s.fitted = true
	return nil
}

// Forecast implements Forecaster: step k predicts
// history[len-Period+k mod Period] from the final season.
func (s *SeasonalNaive) Forecast(history []float64, steps int) ([]float64, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	if steps < 1 {
		return nil, fmt.Errorf("forecast: steps %d < 1", steps)
	}
	if len(history) < s.Period {
		return nil, fmt.Errorf("%w: history %d for period %d", ErrSeriesTooShort, len(history), s.Period)
	}
	season := history[len(history)-s.Period:]
	out := make([]float64, steps)
	for k := 0; k < steps; k++ {
		out[k] = season[k%s.Period]
	}
	return out, nil
}

// Name implements Forecaster.
func (s *SeasonalNaive) Name() string { return fmt.Sprintf("seasonal-naive-%d", s.Period) }

// EnsembleMean averages the forecasts of several fitted models — a cheap
// variance-reduction combiner.
type EnsembleMean struct {
	Models []Forecaster
}

var _ Forecaster = (*EnsembleMean)(nil)

// NewEnsembleMean requires at least one member.
func NewEnsembleMean(models ...Forecaster) (*EnsembleMean, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("forecast: empty ensemble")
	}
	return &EnsembleMean{Models: models}, nil
}

// Fit implements Forecaster by fitting every member.
func (e *EnsembleMean) Fit(series []float64) error {
	for _, m := range e.Models {
		if err := m.Fit(series); err != nil {
			return fmt.Errorf("ensemble member %s: %w", m.Name(), err)
		}
	}
	return nil
}

// Forecast implements Forecaster.
func (e *EnsembleMean) Forecast(history []float64, steps int) ([]float64, error) {
	sum := make([]float64, steps)
	for _, m := range e.Models {
		preds, err := m.Forecast(history, steps)
		if err != nil {
			return nil, fmt.Errorf("ensemble member %s: %w", m.Name(), err)
		}
		for i, v := range preds {
			sum[i] += v
		}
	}
	for i := range sum {
		sum[i] /= float64(len(e.Models))
	}
	return sum, nil
}

// Name implements Forecaster.
func (e *EnsembleMean) Name() string {
	name := "ensemble("
	for i, m := range e.Models {
		if i > 0 {
			name += "+"
		}
		name += m.Name()
	}
	return name + ")"
}
