package forecast

import (
	"fmt"

	"repro/internal/parallel"
)

// GridSpec is one candidate in a GridSearch sweep: a display name and a
// constructor for a fresh, untrained model. The constructor owns any
// seeding — every candidate must derive its randomness from its own
// fixed seed, never from a generator shared across candidates, so the
// sweep stays deterministic under parallel evaluation.
type GridSpec struct {
	Name string
	New  func() (Forecaster, error)
}

// GridSearch fits and walk-forward-scores every candidate on the same
// train/test split, fanned out over the given worker count (0 or less
// means parallel.Default()). It returns the per-candidate RMSEs in spec
// order and the index of the best candidate — the first strict minimum,
// matching a sequential scan, so the winner is independent of the worker
// count. Construction or scoring failures surface as the error of the
// lowest-index failing candidate.
func GridSearch(workers int, specs []GridSpec, train, test []float64, horizon int) ([]float64, int, error) {
	if len(specs) == 0 {
		return nil, -1, fmt.Errorf("forecast: empty grid")
	}
	if workers <= 0 {
		workers = parallel.Default()
	}
	type outcome struct {
		rmse float64
		err  error
	}
	outs := parallel.Map(workers, len(specs), func(w, i int) outcome {
		model, err := specs[i].New()
		if err != nil {
			return outcome{err: err}
		}
		if err := model.Fit(train); err != nil {
			return outcome{err: err}
		}
		rmse, err := WalkForwardRMSE(model, train, test, horizon)
		return outcome{rmse: rmse, err: err}
	})
	rmses := make([]float64, len(specs))
	best := -1
	for i, o := range outs {
		if o.err != nil {
			return nil, -1, fmt.Errorf("forecast: grid %s: %w", specs[i].Name, o.err)
		}
		rmses[i] = o.rmse
		if best == -1 || o.rmse < rmses[best] {
			best = i
		}
	}
	return rmses, best, nil
}
