package forecast

import (
	"errors"
	"math"
	"testing"
)

func TestNewGridForecasterValidation(t *testing.T) {
	if _, err := NewGridForecaster(nil); err == nil {
		t.Error("nil temporal model should error")
	}
}

func TestGridForecasterFitValidation(t *testing.T) {
	ma, err := NewMovingAverage(2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGridForecaster(ma)
	if err != nil {
		t.Fatal(err)
	}
	series := []float64{10, 12, 11, 13}
	tests := []struct {
		name   string
		totals []float64
		counts []float64
	}{
		{"no cells", series, nil},
		{"negative count", series, []float64{1, -1}},
		{"all zero", series, []float64{0, 0}},
		{"temporal too short", []float64{1}, []float64{1, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.FitGrid(tt.totals, tt.counts); err == nil {
				t.Error("want error")
			}
		})
	}
	if _, err := g.ForecastGrid(series, 2); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted: %v", err)
	}
}

func TestGridForecasterSplitsVolumeByShares(t *testing.T) {
	// A constant series and MA(1): predicted volume over h hours is
	// h x level; cells split it by share.
	ma, err := NewMovingAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGridForecaster(ma)
	if err != nil {
		t.Fatal(err)
	}
	series := []float64{10, 10, 10, 10}
	if err := g.FitGrid(series, []float64{30, 10}); err != nil {
		t.Fatal(err)
	}
	got, err := g.ForecastGrid(series, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Volume = 40; shares 0.75 / 0.25.
	if math.Abs(got[0]-30) > 1e-9 || math.Abs(got[1]-10) > 1e-9 {
		t.Errorf("got %v, want [30 10]", got)
	}
	shares := g.Shares()
	if math.Abs(shares[0]-0.75) > 1e-12 {
		t.Errorf("shares=%v", shares)
	}
	if g.Name() != "grid(ma-wz1)" {
		t.Errorf("Name=%q", g.Name())
	}
	if _, err := g.ForecastGrid(series, 0); err == nil {
		t.Error("hours 0 should error")
	}
}

func TestGridForecasterClampsNegativePredictions(t *testing.T) {
	// A strong downward trend makes ARIMA predict below zero; the grid
	// volume must clamp those hours instead of producing negative demand.
	series := make([]float64, 60)
	for i := range series {
		series[i] = 100 - 2*float64(i)
	}
	ar, err := NewARIMA(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGridForecaster(ar)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.FitGrid(series, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	got, err := g.ForecastGrid(series, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v < 0 {
			t.Errorf("cell %d demand %v < 0", i, v)
		}
	}
}

func TestGridForecasterSharesAreCopied(t *testing.T) {
	ma, _ := NewMovingAverage(1)
	g, _ := NewGridForecaster(ma)
	if err := g.FitGrid([]float64{5, 5}, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	s := g.Shares()
	s[0] = 99
	if g.Shares()[0] == 99 {
		t.Error("Shares exposes internal slice")
	}
}
