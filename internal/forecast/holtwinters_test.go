package forecast

import (
	"errors"
	"math"
	"testing"
)

func TestNewHoltWintersValidation(t *testing.T) {
	if _, err := NewHoltWinters(1); err == nil {
		t.Error("period 1 should error")
	}
}

func TestHoltWintersLifecycle(t *testing.T) {
	h, err := NewHoltWinters(24)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Forecast(make([]float64, 100), 1); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted: %v", err)
	}
	if err := h.Fit(make([]float64, 30)); !errors.Is(err, ErrSeriesTooShort) {
		t.Errorf("short fit: %v", err)
	}
}

func TestHoltWintersTracksSeasonAndTrend(t *testing.T) {
	// series = 10 + 0.5t + 20 sin(2πt/12): the smoother must recover both
	// the trend and the seasonal shape.
	const period = 12
	n := period * 12
	series := make([]float64, n)
	for i := range series {
		series[i] = 10 + 0.5*float64(i) + 20*math.Sin(2*math.Pi*float64(i%period)/period)
	}
	h, err := NewHoltWinters(period)
	if err != nil {
		t.Fatal(err)
	}
	train := series[:n-period]
	if err := h.Fit(train); err != nil {
		t.Fatal(err)
	}
	preds, err := h.Forecast(train, period)
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range preds {
		want := series[n-period+k]
		if math.Abs(p-want) > 4 {
			t.Errorf("step %d: %v, want ~%v", k, p, want)
		}
	}
}

func TestHoltWintersBeatsMAOnCycle(t *testing.T) {
	series := syntheticSeries(24*12, 41, 3)
	train, test, err := SplitTrainTest(series, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := NewHoltWinters(24)
	if err != nil {
		t.Fatal(err)
	}
	if err := hw.Fit(train); err != nil {
		t.Fatal(err)
	}
	hwRMSE, err := WalkForwardRMSE(hw, train, test, 1)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := NewMovingAverage(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ma.Fit(train); err != nil {
		t.Fatal(err)
	}
	maRMSE, err := WalkForwardRMSE(ma, train, test, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hwRMSE >= maRMSE {
		t.Errorf("holt-winters RMSE %.2f should beat MA %.2f on a seasonal series", hwRMSE, maRMSE)
	}
}

func TestHoltWintersParamsInRange(t *testing.T) {
	h, err := NewHoltWinters(6)
	if err != nil {
		t.Fatal(err)
	}
	h.GridSteps = 3
	series := syntheticSeries(6*10, 5, 1)
	if err := h.Fit(series); err != nil {
		t.Fatal(err)
	}
	a, b, g := h.Params()
	for _, v := range []float64{a, b, g} {
		if v < 0.05-1e-9 || v > 0.95+1e-9 {
			t.Errorf("parameter %v outside grid", v)
		}
	}
	if h.Name() != "holt-winters-6" {
		t.Errorf("Name=%q", h.Name())
	}
	if _, err := h.Forecast(series, 0); err == nil {
		t.Error("steps 0 should error")
	}
	if _, err := h.Forecast(series[:5], 2); !errors.Is(err, ErrSeriesTooShort) {
		t.Errorf("short history: %v", err)
	}
}

func TestHoltWintersDeterministic(t *testing.T) {
	series := syntheticSeries(24*8, 13, 2)
	run := func() []float64 {
		h, err := NewHoltWinters(24)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Fit(series); err != nil {
			t.Fatal(err)
		}
		preds, err := h.Forecast(series, 5)
		if err != nil {
			t.Fatal(err)
		}
		return preds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic")
		}
	}
}
