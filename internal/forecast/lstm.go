package forecast

import (
	"fmt"
	"math"

	"repro/internal/matrix"
	"repro/internal/stats"
)

// LSTMConfig configures the LSTM forecaster. The paper stacks 128 cells
// per hidden layer and varies the number of layers and the lookback window
// ("back") in Table II.
type LSTMConfig struct {
	// Hidden is the number of cells per layer.
	Hidden int
	// Layers is the number of stacked LSTM layers.
	Layers int
	// Lookback is the input window length (the paper's "back").
	Lookback int
	// Epochs is the number of passes over the training windows.
	Epochs int
	// LearningRate is Adam's step size.
	LearningRate float64
	// ClipNorm bounds each gradient element during BPTT; 0 disables.
	ClipNorm float64
	// Seed drives weight initialisation and window shuffling.
	Seed uint64
}

// DefaultLSTMConfig mirrors the paper's best model at a size that trains
// in seconds on a laptop: Table II's 2-layer LSTM with 12-step lookback.
func DefaultLSTMConfig() LSTMConfig {
	return LSTMConfig{
		Hidden:       32,
		Layers:       2,
		Lookback:     12,
		Epochs:       60,
		LearningRate: 0.01,
		ClipNorm:     1.0,
		Seed:         1,
	}
}

func (c LSTMConfig) validate() error {
	switch {
	case c.Hidden < 1:
		return fmt.Errorf("forecast: hidden %d < 1", c.Hidden)
	case c.Layers < 1:
		return fmt.Errorf("forecast: layers %d < 1", c.Layers)
	case c.Lookback < 1:
		return fmt.Errorf("forecast: lookback %d < 1", c.Lookback)
	case c.Epochs < 1:
		return fmt.Errorf("forecast: epochs %d < 1", c.Epochs)
	case c.LearningRate <= 0:
		return fmt.Errorf("forecast: learning rate %v <= 0", c.LearningRate)
	case c.ClipNorm < 0:
		return fmt.Errorf("forecast: clip norm %v < 0", c.ClipNorm)
	}
	return nil
}

// lstmLayer holds one layer's parameters. Gate rows are ordered
// [input; forget; candidate; output], each block Hidden rows tall.
type lstmLayer struct {
	wx *matrix.Matrix // 4H x in
	wh *matrix.Matrix // 4H x H
	b  []float64      // 4H
}

// LSTM is a stacked LSTM network with a scalar input and a linear scalar
// head, trained by truncated BPTT over lookback windows with Adam.
type LSTM struct {
	cfg    LSTMConfig
	layers []*lstmLayer
	wy     []float64 // 1 x H output head
	by     float64
	scaler Scaler
	opt    *adam
	fitted bool
}

var _ Forecaster = (*LSTM)(nil)

// NewLSTM validates cfg and builds an initialised network.
func NewLSTM(cfg LSTMConfig) (*LSTM, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNGStream(cfg.Seed, stats.StreamLSTMInit)
	l := &LSTM{cfg: cfg}
	in := 1
	for i := 0; i < cfg.Layers; i++ {
		scaleX := 1 / math.Sqrt(float64(in))
		scaleH := 1 / math.Sqrt(float64(cfg.Hidden))
		layer := &lstmLayer{
			wx: matrix.Randomized(4*cfg.Hidden, in, scaleX, rng),
			wh: matrix.Randomized(4*cfg.Hidden, cfg.Hidden, scaleH, rng),
			b:  make([]float64, 4*cfg.Hidden),
		}
		// Forget-gate bias starts at 1 so early training does not erase
		// the cell state — the standard LSTM initialisation trick.
		for j := cfg.Hidden; j < 2*cfg.Hidden; j++ {
			layer.b[j] = 1
		}
		l.layers = append(l.layers, layer)
		in = cfg.Hidden
	}
	l.wy = make([]float64, cfg.Hidden)
	for i := range l.wy {
		l.wy[i] = (rng.Float64()*2 - 1) / math.Sqrt(float64(cfg.Hidden))
	}
	l.opt = newAdam(cfg.LearningRate)
	return l, nil
}

// Name implements Forecaster.
func (l *LSTM) Name() string {
	return fmt.Sprintf("lstm-%dx%d-back%d", l.cfg.Layers, l.cfg.Hidden, l.cfg.Lookback)
}

// Fit implements Forecaster: scales the series, builds lookback windows
// and trains with per-window BPTT for the configured number of epochs.
func (l *LSTM) Fit(series []float64) error {
	l.scaler = FitScaler(series)
	scaled := l.scaler.TransformAll(series)
	inputs, targets, err := Windows(scaled, l.cfg.Lookback)
	if err != nil {
		return fmt.Errorf("lstm fit: %w", err)
	}
	rng := stats.NewRNGStream(l.cfg.Seed, stats.StreamLSTMShuffle)
	order := make([]int, len(inputs))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < l.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			l.trainWindow(inputs[idx], targets[idx])
		}
	}
	l.fitted = true
	return nil
}

// Forecast implements Forecaster. Multi-step forecasts feed predictions
// back as inputs.
func (l *LSTM) Forecast(history []float64, steps int) ([]float64, error) {
	if !l.fitted {
		return nil, ErrNotFitted
	}
	if steps < 1 {
		return nil, fmt.Errorf("forecast: steps %d < 1", steps)
	}
	if len(history) < l.cfg.Lookback {
		return nil, fmt.Errorf("%w: history %d for lookback %d", ErrSeriesTooShort, len(history), l.cfg.Lookback)
	}
	window := make([]float64, l.cfg.Lookback)
	for i := range window {
		window[i] = l.scaler.Transform(history[len(history)-l.cfg.Lookback+i])
	}
	out := make([]float64, steps)
	for s := 0; s < steps; s++ {
		pred := l.forwardWindow(window, nil)
		out[s] = l.scaler.Invert(pred)
		copy(window, window[1:])
		window[len(window)-1] = pred
	}
	return out, nil
}

// lstmCache stores forward activations for one window, indexed
// [layer][timestep].
type lstmCache struct {
	xs             [][][]float64 // layer inputs
	is, fs, gs, os [][][]float64
	cs, hs, tanhC  [][][]float64
}

func newLSTMCache(layers, T, hidden int) *lstmCache {
	alloc := func() [][][]float64 {
		out := make([][][]float64, layers)
		for l := range out {
			out[l] = make([][]float64, T)
		}
		return out
	}
	return &lstmCache{
		xs: alloc(), is: alloc(), fs: alloc(), gs: alloc(), os: alloc(),
		cs: alloc(), hs: alloc(), tanhC: alloc(),
	}
}

// forwardWindow runs the window through the network and returns the scalar
// prediction (in scaled space). When cache is non-nil all activations are
// recorded for BPTT.
func (l *LSTM) forwardWindow(window []float64, cache *lstmCache) float64 {
	H := l.cfg.Hidden
	T := len(window)
	h := make([][]float64, len(l.layers))
	c := make([][]float64, len(l.layers))
	for i := range h {
		h[i] = make([]float64, H)
		c[i] = make([]float64, H)
	}
	z := make([]float64, 4*H)
	for t := 0; t < T; t++ {
		x := []float64{window[t]}
		for li, layer := range l.layers {
			matrix.Gemv(z, layer.wx, x)
			matrix.GemvAdd(z, layer.wh, h[li])
			matrix.AddVec(z, layer.b)

			iGate := make([]float64, H)
			fGate := make([]float64, H)
			gGate := make([]float64, H)
			oGate := make([]float64, H)
			cNew := make([]float64, H)
			hNew := make([]float64, H)
			tc := make([]float64, H)
			for j := 0; j < H; j++ {
				iGate[j] = sigmoid(z[j])
				fGate[j] = sigmoid(z[H+j])
				gGate[j] = math.Tanh(z[2*H+j])
				oGate[j] = sigmoid(z[3*H+j])
				cNew[j] = fGate[j]*c[li][j] + iGate[j]*gGate[j]
				tc[j] = math.Tanh(cNew[j])
				hNew[j] = oGate[j] * tc[j]
			}
			if cache != nil {
				cache.xs[li][t] = append([]float64(nil), x...)
				cache.is[li][t] = iGate
				cache.fs[li][t] = fGate
				cache.gs[li][t] = gGate
				cache.os[li][t] = oGate
				cache.cs[li][t] = cNew
				cache.hs[li][t] = hNew
				cache.tanhC[li][t] = tc
			}
			h[li] = hNew
			c[li] = cNew
			x = hNew
		}
	}
	// Linear head on the top layer's final hidden state.
	top := h[len(h)-1]
	pred := l.by
	for j, w := range l.wy {
		pred += w * top[j]
	}
	return pred
}

// lstmGrads holds the gradients of one BPTT pass, index-aligned with
// LSTM.layers.
type lstmGrads struct {
	dWx []*matrix.Matrix
	dWh []*matrix.Matrix
	dB  [][]float64
	dWy []float64
	dBy float64
}

// trainWindow performs one BPTT step on a single (window, target) pair.
func (l *LSTM) trainWindow(window []float64, target float64) {
	g := l.computeGradients(window, target)
	l.applyGradients(g)
}

// computeGradients runs the forward pass and full BPTT, returning the
// parameter gradients of the loss 0.5·(pred − target)² without mutating
// the network. Exercised directly by the finite-difference gradient test.
func (l *LSTM) computeGradients(window []float64, target float64) *lstmGrads {
	H := l.cfg.Hidden
	T := len(window)
	L := len(l.layers)
	cache := newLSTMCache(L, T, H)
	pred := l.forwardWindow(window, cache)
	dy := pred - target // dLoss/dpred for 0.5*(pred-target)^2

	// Gradient accumulators.
	dWx := make([]*matrix.Matrix, L)
	dWh := make([]*matrix.Matrix, L)
	dB := make([][]float64, L)
	for li, layer := range l.layers {
		dWx[li] = matrix.New(layer.wx.Rows, layer.wx.Cols)
		dWh[li] = matrix.New(layer.wh.Rows, layer.wh.Cols)
		dB[li] = make([]float64, 4*H)
	}
	dWy := make([]float64, H)
	topFinal := cache.hs[L-1][T-1]
	for j := range dWy {
		dWy[j] = dy * topFinal[j]
	}
	dBy := dy

	// dh[l], dc[l]: gradients flowing into layer l at the current
	// timestep from the future.
	dh := make([][]float64, L)
	dc := make([][]float64, L)
	for li := range dh {
		dh[li] = make([]float64, H)
		dc[li] = make([]float64, H)
	}
	for j := 0; j < H; j++ {
		dh[L-1][j] = dy * l.wy[j]
	}

	dz := make([]float64, 4*H)
	for t := T - 1; t >= 0; t-- {
		// Top-down within a timestep so dx from layer l feeds layer l-1.
		for li := L - 1; li >= 0; li-- {
			iG, fG, gG, oG := cache.is[li][t], cache.fs[li][t], cache.gs[li][t], cache.os[li][t]
			tc := cache.tanhC[li][t]
			var cPrev []float64
			if t > 0 {
				cPrev = cache.cs[li][t-1]
			} else {
				cPrev = make([]float64, H)
			}
			for j := 0; j < H; j++ {
				dhj := dh[li][j]
				doj := dhj * tc[j]
				dct := dc[li][j] + dhj*oG[j]*(1-tc[j]*tc[j])
				dij := dct * gG[j]
				dgj := dct * iG[j]
				dfj := dct * cPrev[j]
				dc[li][j] = dct * fG[j] // becomes dcPrev for t-1
				dz[j] = dij * iG[j] * (1 - iG[j])
				dz[H+j] = dfj * fG[j] * (1 - fG[j])
				dz[2*H+j] = dgj * (1 - gG[j]*gG[j])
				dz[3*H+j] = doj * oG[j] * (1 - oG[j])
			}
			matrix.AddOuter(dWx[li], dz, cache.xs[li][t])
			var hPrev []float64
			if t > 0 {
				hPrev = cache.hs[li][t-1]
			} else {
				hPrev = make([]float64, H)
			}
			matrix.AddOuter(dWh[li], dz, hPrev)
			matrix.AddVec(dB[li], dz)

			// dhPrev for this layer at t-1.
			for j := range dh[li] {
				dh[li][j] = 0
			}
			matrix.GemvTAdd(dh[li], l.layers[li].wh, dz)

			// dx flows into the layer below as extra dh at the same t.
			if li > 0 {
				matrix.GemvTAdd(dh[li-1], l.layers[li].wx, dz)
			}
		}
	}

	return &lstmGrads{dWx: dWx, dWh: dWh, dB: dB, dWy: dWy, dBy: dBy}
}

// applyGradients clips g and takes one Adam step.
func (l *LSTM) applyGradients(g *lstmGrads) {
	if l.cfg.ClipNorm > 0 {
		for li := range l.layers {
			g.dWx[li].ClipInPlace(l.cfg.ClipNorm)
			g.dWh[li].ClipInPlace(l.cfg.ClipNorm)
			clipVec(g.dB[li], l.cfg.ClipNorm)
		}
		clipVec(g.dWy, l.cfg.ClipNorm)
		if g.dBy > l.cfg.ClipNorm {
			g.dBy = l.cfg.ClipNorm
		} else if g.dBy < -l.cfg.ClipNorm {
			g.dBy = -l.cfg.ClipNorm
		}
	}

	l.opt.step()
	for li, layer := range l.layers {
		l.opt.update(fmt.Sprintf("wx%d", li), layer.wx.Data, g.dWx[li].Data)
		l.opt.update(fmt.Sprintf("wh%d", li), layer.wh.Data, g.dWh[li].Data)
		l.opt.update(fmt.Sprintf("b%d", li), layer.b, g.dB[li])
	}
	l.opt.update("wy", l.wy, g.dWy)
	byArr := []float64{l.by}
	l.opt.update("by", byArr, []float64{g.dBy})
	l.by = byArr[0]
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func clipVec(v []float64, limit float64) {
	for i, x := range v {
		if x > limit {
			v[i] = limit
		} else if x < -limit {
			v[i] = -limit
		}
	}
}

// adam is a minimal Adam optimiser keyed by parameter-tensor name.
type adam struct {
	lr      float64
	beta1   float64
	beta2   float64
	eps     float64
	t       int
	moments map[string]*adamMoment
}

type adamMoment struct {
	m, v []float64
}

func newAdam(lr float64) *adam {
	return &adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, moments: map[string]*adamMoment{}}
}

func (a *adam) step() { a.t++ }

func (a *adam) update(name string, param, grad []float64) {
	mom, ok := a.moments[name]
	if !ok {
		mom = &adamMoment{m: make([]float64, len(param)), v: make([]float64, len(param))}
		a.moments[name] = mom
	}
	bc1 := 1 - math.Pow(a.beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i := range param {
		g := grad[i]
		mom.m[i] = a.beta1*mom.m[i] + (1-a.beta1)*g
		mom.v[i] = a.beta2*mom.v[i] + (1-a.beta2)*g*g
		mHat := mom.m[i] / bc1
		vHat := mom.v[i] / bc2
		param[i] -= a.lr * mHat / (math.Sqrt(vHat) + a.eps)
	}
}
