package forecast

import (
	"errors"
	"math"
	"testing"
)

func TestNewSeasonalNaiveValidation(t *testing.T) {
	if _, err := NewSeasonalNaive(0); err == nil {
		t.Error("period 0 should error")
	}
}

func TestSeasonalNaiveExactOnPeriodicSeries(t *testing.T) {
	s, err := NewSeasonalNaive(24)
	if err != nil {
		t.Fatal(err)
	}
	series := syntheticSeries(24*7, 3, 0) // noiseless daily cycle
	if err := s.Fit(series); err != nil {
		t.Fatal(err)
	}
	rmse, err := WalkForwardRMSE(s, series[:24*5], series[24*5:], 1)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 1e-9 {
		t.Errorf("seasonal naive RMSE %v on a perfect cycle, want 0", rmse)
	}
}

func TestSeasonalNaiveLifecycleErrors(t *testing.T) {
	s, err := NewSeasonalNaive(24)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Forecast(make([]float64, 30), 1); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted: %v", err)
	}
	if err := s.Fit(make([]float64, 5)); !errors.Is(err, ErrSeriesTooShort) {
		t.Errorf("short fit: %v", err)
	}
	if err := s.Fit(make([]float64, 48)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Forecast(make([]float64, 5), 1); !errors.Is(err, ErrSeriesTooShort) {
		t.Errorf("short history: %v", err)
	}
	if _, err := s.Forecast(make([]float64, 48), 0); err == nil {
		t.Error("steps 0 should error")
	}
}

func TestSeasonalNaiveWrapsAcrossSeasons(t *testing.T) {
	s, err := NewSeasonalNaive(3)
	if err != nil {
		t.Fatal(err)
	}
	history := []float64{9, 9, 9, 1, 2, 3}
	if err := s.Fit(history); err != nil {
		t.Fatal(err)
	}
	got, err := s.Forecast(history, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 1, 2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: %v, want %v (got %v)", i, got[i], want[i], got)
		}
	}
}

func TestEnsembleMean(t *testing.T) {
	if _, err := NewEnsembleMean(); err == nil {
		t.Error("empty ensemble should error")
	}
	ma1, err := NewMovingAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	ma3, err := NewMovingAverage(3)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := NewEnsembleMean(ma1, ma3)
	if err != nil {
		t.Fatal(err)
	}
	series := []float64{1, 2, 3, 4, 5, 6}
	if err := ens.Fit(series); err != nil {
		t.Fatal(err)
	}
	got, err := ens.Forecast(series, 1)
	if err != nil {
		t.Fatal(err)
	}
	// ma1 predicts 6; ma3 predicts 5; mean = 5.5.
	if math.Abs(got[0]-5.5) > 1e-12 {
		t.Errorf("ensemble mean %v, want 5.5", got[0])
	}
	if ens.Name() != "ensemble(ma-wz1+ma-wz3)" {
		t.Errorf("Name=%q", ens.Name())
	}
}

func TestEnsemblePropagatesMemberErrors(t *testing.T) {
	ma, err := NewMovingAverage(10)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := NewEnsembleMean(ma)
	if err != nil {
		t.Fatal(err)
	}
	if err := ens.Fit(make([]float64, 3)); err == nil {
		t.Error("member fit failure should propagate")
	}
}

func TestLSTMBeatsSeasonalNaiveOnNoisyCycle(t *testing.T) {
	// With noise, seasonal naive copies yesterday's noise; the LSTM
	// should smooth it. This is the strongest baseline comparison in the
	// suite.
	series := syntheticSeries(24*14, 31, 8)
	train, test, err := SplitTrainTest(series, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := NewSeasonalNaive(24)
	if err != nil {
		t.Fatal(err)
	}
	if err := sn.Fit(train); err != nil {
		t.Fatal(err)
	}
	snRMSE, err := WalkForwardRMSE(sn, train, test, 1)
	if err != nil {
		t.Fatal(err)
	}
	lstm, err := NewLSTM(LSTMConfig{
		Hidden: 16, Layers: 1, Lookback: 24, Epochs: 30,
		LearningRate: 0.01, ClipNorm: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := lstm.Fit(train); err != nil {
		t.Fatal(err)
	}
	lstmRMSE, err := WalkForwardRMSE(lstm, train, test, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lstmRMSE >= snRMSE {
		t.Errorf("LSTM RMSE %.2f should beat seasonal naive %.2f", lstmRMSE, snRMSE)
	}
}
