package forecast

import (
	"fmt"
	"math"
)

// HoltWinters is additive triple exponential smoothing: level, trend and
// a seasonal component of the given period. Smoothing parameters are
// selected by grid search over the in-sample one-step squared error — a
// classical statistical competitor between the paper's MA/ARIMA baselines
// and the LSTM.
type HoltWinters struct {
	Period int
	// GridSteps controls the parameter search resolution (default 5 when
	// zero: {0.05, 0.275, 0.5, 0.725, 0.95}).
	GridSteps int

	alpha, beta, gamma float64
	fitted             bool
}

var _ Forecaster = (*HoltWinters)(nil)

// NewHoltWinters validates the seasonal period.
func NewHoltWinters(period int) (*HoltWinters, error) {
	if period < 2 {
		return nil, fmt.Errorf("forecast: holt-winters period %d < 2", period)
	}
	return &HoltWinters{Period: period}, nil
}

// Fit selects (alpha, beta, gamma) by grid search.
func (h *HoltWinters) Fit(series []float64) error {
	if len(series) < 2*h.Period+2 {
		return fmt.Errorf("%w: %d points, need %d for period %d",
			ErrSeriesTooShort, len(series), 2*h.Period+2, h.Period)
	}
	steps := h.GridSteps
	if steps <= 0 {
		steps = 5
	}
	grid := make([]float64, steps)
	for i := range grid {
		grid[i] = 0.05 + 0.9*float64(i)/float64(steps-1)
	}
	best := math.Inf(1)
	for _, a := range grid {
		for _, b := range grid {
			for _, g := range grid {
				sse := h.sse(series, a, b, g)
				if sse < best {
					best = sse
					h.alpha, h.beta, h.gamma = a, b, g
				}
			}
		}
	}
	if math.IsInf(best, 1) {
		return fmt.Errorf("forecast: holt-winters grid search failed")
	}
	h.fitted = true
	return nil
}

// Params returns the selected smoothing parameters.
func (h *HoltWinters) Params() (alpha, beta, gamma float64) {
	return h.alpha, h.beta, h.gamma
}

// sse runs the smoother over series and accumulates one-step squared
// errors after the first two seasons.
func (h *HoltWinters) sse(series []float64, alpha, beta, gamma float64) float64 {
	level, trend, seasonal := h.initState(series)
	var sse float64
	for t := h.Period; t < len(series); t++ {
		pred := level + trend + seasonal[t%h.Period]
		if t >= 2*h.Period {
			d := pred - series[t]
			sse += d * d
		}
		h.update(series[t], &level, &trend, seasonal, t, alpha, beta, gamma)
	}
	if math.IsNaN(sse) {
		return math.Inf(1)
	}
	return sse
}

// initState seeds level/trend from the first two seasons and the
// seasonal profile from season one's deviations.
func (h *HoltWinters) initState(series []float64) (level, trend float64, seasonal []float64) {
	m := h.Period
	var s1, s2 float64
	for i := 0; i < m; i++ {
		s1 += series[i]
		s2 += series[m+i]
	}
	mean1, mean2 := s1/float64(m), s2/float64(m)
	level = mean1
	trend = (mean2 - mean1) / float64(m)
	seasonal = make([]float64, m)
	for i := 0; i < m; i++ {
		seasonal[i] = series[i] - mean1
	}
	return level, trend, seasonal
}

func (h *HoltWinters) update(obs float64, level, trend *float64, seasonal []float64, t int, alpha, beta, gamma float64) {
	si := t % h.Period
	prevLevel := *level
	*level = alpha*(obs-seasonal[si]) + (1-alpha)*(*level+*trend)
	*trend = beta*(*level-prevLevel) + (1-beta)*(*trend)
	seasonal[si] = gamma*(obs-*level) + (1-gamma)*seasonal[si]
}

// Forecast implements Forecaster.
func (h *HoltWinters) Forecast(history []float64, steps int) ([]float64, error) {
	if !h.fitted {
		return nil, ErrNotFitted
	}
	if steps < 1 {
		return nil, fmt.Errorf("forecast: steps %d < 1", steps)
	}
	if len(history) < 2*h.Period {
		return nil, fmt.Errorf("%w: history %d for period %d", ErrSeriesTooShort, len(history), h.Period)
	}
	level, trend, seasonal := h.initState(history)
	for t := h.Period; t < len(history); t++ {
		h.update(history[t], &level, &trend, seasonal, t, h.alpha, h.beta, h.gamma)
	}
	out := make([]float64, steps)
	for k := 1; k <= steps; k++ {
		t := len(history) + k - 1
		out[k-1] = level + float64(k)*trend + seasonal[t%h.Period]
	}
	return out, nil
}

// Name implements Forecaster.
func (h *HoltWinters) Name() string { return fmt.Sprintf("holt-winters-%d", h.Period) }
