// Package forecast implements the prediction engine of E-Sharing
// (Section V-A): an LSTM sequence model trained with truncated BPTT and
// Adam, plus the Moving-Average and ARIMA statistical baselines it is
// compared against in Table II. All models implement the Forecaster
// interface and are evaluated with walk-forward one-step predictions.
package forecast

import (
	"errors"
	"fmt"
	"math"
)

// Forecaster is a univariate time-series model. Fit trains on a historical
// series; Forecast extends a (possibly different) history by the requested
// number of steps.
type Forecaster interface {
	// Fit trains the model on series. It must be called before Forecast.
	Fit(series []float64) error
	// Forecast predicts the next steps values following history.
	Forecast(history []float64, steps int) ([]float64, error)
	// Name identifies the model in reports (e.g. "lstm-2x128").
	Name() string
}

// Errors shared by the forecasters.
var (
	// ErrNotFitted is returned by Forecast before a successful Fit.
	ErrNotFitted = errors.New("forecast: model not fitted")
	// ErrSeriesTooShort is returned when a series cannot support the
	// model's lag structure.
	ErrSeriesTooShort = errors.New("forecast: series too short")
)

// Scaler standardises a series to zero mean and unit variance; neural
// models train on scaled values and invert on output.
type Scaler struct {
	Mean   float64
	StdDev float64
}

// FitScaler computes scaling parameters from series. A constant series
// scales with StdDev 1 to avoid division by zero.
func FitScaler(series []float64) Scaler {
	if len(series) == 0 {
		return Scaler{StdDev: 1}
	}
	var sum float64
	for _, v := range series {
		sum += v
	}
	mean := sum / float64(len(series))
	var ss float64
	for _, v := range series {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(series)))
	if sd == 0 {
		sd = 1
	}
	return Scaler{Mean: mean, StdDev: sd}
}

// Transform scales a single value.
func (s Scaler) Transform(v float64) float64 { return (v - s.Mean) / s.StdDev }

// Invert undoes Transform.
func (s Scaler) Invert(v float64) float64 { return v*s.StdDev + s.Mean }

// TransformAll scales a series into a new slice.
func (s Scaler) TransformAll(series []float64) []float64 {
	out := make([]float64, len(series))
	for i, v := range series {
		out[i] = s.Transform(v)
	}
	return out
}

// WalkForwardRMSE evaluates a fitted model by walk-forward one-step
// prediction over test: for each position i it forecasts test[i] from
// train ++ test[:i] and accumulates squared error, mirroring the paper's
// Table II protocol. horizon > 1 evaluates multi-step forecasts by scoring
// each of the next horizon values (predictions are not refreshed within a
// horizon block).
func WalkForwardRMSE(m Forecaster, train, test []float64, horizon int) (float64, error) {
	if horizon < 1 {
		return 0, fmt.Errorf("forecast: horizon %d < 1", horizon)
	}
	if len(test) == 0 {
		return 0, errors.New("forecast: empty test series")
	}
	history := make([]float64, len(train), len(train)+len(test))
	copy(history, train)
	var sumSq float64
	var count int
	for i := 0; i < len(test); i += horizon {
		steps := horizon
		if i+steps > len(test) {
			steps = len(test) - i
		}
		preds, err := m.Forecast(history, steps)
		if err != nil {
			return 0, fmt.Errorf("walk-forward at %d: %w", i, err)
		}
		for j := 0; j < steps; j++ {
			d := preds[j] - test[i+j]
			sumSq += d * d
			count++
		}
		history = append(history, test[i:i+steps]...)
	}
	return math.Sqrt(sumSq / float64(count)), nil
}
