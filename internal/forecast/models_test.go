package forecast

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

// syntheticSeries builds a noisy daily-cycle demand series resembling the
// hourly trip counts used in Table II.
func syntheticSeries(n int, seed uint64, noise float64) []float64 {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	out := make([]float64, n)
	for i := range out {
		hour := float64(i % 24)
		base := 100 + 60*math.Sin(2*math.Pi*hour/24) + 25*math.Sin(4*math.Pi*hour/24)
		out[i] = base + noise*rng.NormFloat64()
	}
	return out
}

func TestMovingAverageValidation(t *testing.T) {
	if _, err := NewMovingAverage(0); err == nil {
		t.Error("window 0 should error")
	}
	m, err := NewMovingAverage(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast([]float64{1, 2, 3, 4}, 1); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted forecast: %v", err)
	}
	if err := m.Fit([]float64{1, 2}); !errors.Is(err, ErrSeriesTooShort) {
		t.Errorf("short fit: %v", err)
	}
}

func TestMovingAverageForecast(t *testing.T) {
	m, err := NewMovingAverage(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Forecast([]float64{1, 2, 3, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Step 1: mean(3,4)=3.5; step 2: mean(4,3.5)=3.75; step 3: mean(3.5,3.75)=3.625.
	want := []float64{3.5, 3.75, 3.625}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("step %d: %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := m.Forecast([]float64{1}, 1); !errors.Is(err, ErrSeriesTooShort) {
		t.Errorf("short history: %v", err)
	}
	if _, err := m.Forecast([]float64{1, 2}, 0); err == nil {
		t.Error("steps 0 should error")
	}
	if m.Name() != "ma-wz2" {
		t.Errorf("Name=%q", m.Name())
	}
}

func TestMovingAverageConstantSeries(t *testing.T) {
	m, _ := NewMovingAverage(4)
	series := []float64{7, 7, 7, 7, 7, 7}
	if err := m.Fit(series); err != nil {
		t.Fatal(err)
	}
	preds, err := m.Forecast(series, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range preds {
		if p != 7 {
			t.Fatalf("constant series should predict 7, got %v", preds)
		}
	}
}

func TestARIMAValidation(t *testing.T) {
	tests := []struct {
		p, d, q int
		wantErr bool
	}{
		{2, 0, 0, false},
		{0, 1, 1, false},
		{-1, 0, 0, true},
		{0, -1, 1, true},
		{0, 0, -1, true},
		{0, 2, 0, true}, // no ARMA terms
	}
	for _, tt := range tests {
		_, err := NewARIMA(tt.p, tt.d, tt.q)
		if (err != nil) != tt.wantErr {
			t.Errorf("NewARIMA(%d,%d,%d) err=%v, wantErr=%v", tt.p, tt.d, tt.q, err, tt.wantErr)
		}
	}
}

func TestARIMANotFitted(t *testing.T) {
	a, err := NewARIMA(2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Forecast(make([]float64, 50), 1); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted: %v", err)
	}
}

func TestARIMARecoversAR1(t *testing.T) {
	// Generate y_t = 5 + 0.7 y_{t-1} + e with tiny noise; an AR(1) fit
	// must recover the coefficient.
	rng := rand.New(rand.NewPCG(3, 4))
	series := make([]float64, 600)
	series[0] = 15
	for i := 1; i < len(series); i++ {
		series[i] = 5 + 0.7*series[i-1] + 0.05*rng.NormFloat64()
	}
	a, err := NewARIMA(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Fit(series); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.arCoef[0]-0.7) > 0.03 {
		t.Errorf("phi=%v, want ~0.7", a.arCoef[0])
	}
	if math.Abs(a.intercept-5) > 0.6 {
		t.Errorf("intercept=%v, want ~5", a.intercept)
	}
}

func TestARIMAWithDifferencingTracksTrend(t *testing.T) {
	// Linear trend + AR noise: ARIMA(1,1,0) should forecast the trend.
	rng := rand.New(rand.NewPCG(9, 10))
	series := make([]float64, 300)
	for i := range series {
		series[i] = 3*float64(i) + rng.NormFloat64()
	}
	a, err := NewARIMA(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Fit(series); err != nil {
		t.Fatal(err)
	}
	preds, err := a.Forecast(series, 5)
	if err != nil {
		t.Fatal(err)
	}
	for s, p := range preds {
		want := 3 * float64(len(series)+s)
		if math.Abs(p-want) > 10 {
			t.Errorf("step %d: %v, want ~%v", s, p, want)
		}
	}
}

func TestARIMAMATermsFit(t *testing.T) {
	// An MA(1) process: y_t = e_t + 0.6 e_{t-1}. ARIMA(0,0,1) should fit
	// a positive theta and forecast near the mean.
	rng := rand.New(rand.NewPCG(11, 12))
	n := 800
	e := make([]float64, n+1)
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	series := make([]float64, n)
	for i := 0; i < n; i++ {
		series[i] = 10 + e[i+1] + 0.6*e[i]
	}
	a, err := NewARIMA(0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Fit(series); err != nil {
		t.Fatal(err)
	}
	if a.maCoef[0] < 0.3 || a.maCoef[0] > 0.9 {
		t.Errorf("theta=%v, want ~0.6", a.maCoef[0])
	}
	preds, err := a.Forecast(series, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Beyond one step, the MA(1) forecast reverts to the mean.
	if math.Abs(preds[2]-10) > 1.5 {
		t.Errorf("long forecast %v, want ~10", preds[2])
	}
}

func TestARIMAShortSeries(t *testing.T) {
	a, err := NewARIMA(3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Fit(make([]float64, 8)); !errors.Is(err, ErrSeriesTooShort) {
		t.Errorf("short fit: %v", err)
	}
}

func TestLSTMConfigValidation(t *testing.T) {
	base := DefaultLSTMConfig()
	mutations := []func(*LSTMConfig){
		func(c *LSTMConfig) { c.Hidden = 0 },
		func(c *LSTMConfig) { c.Layers = 0 },
		func(c *LSTMConfig) { c.Lookback = 0 },
		func(c *LSTMConfig) { c.Epochs = 0 },
		func(c *LSTMConfig) { c.LearningRate = 0 },
		func(c *LSTMConfig) { c.ClipNorm = -1 },
	}
	for i, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if _, err := NewLSTM(cfg); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
	if _, err := NewLSTM(base); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestLSTMNotFitted(t *testing.T) {
	l, err := NewLSTM(DefaultLSTMConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Forecast(make([]float64, 20), 1); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted: %v", err)
	}
}

func TestLSTMLearnsSine(t *testing.T) {
	series := syntheticSeries(24*14, 7, 1)
	train, test, err := SplitTrainTest(series, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	cfg := LSTMConfig{
		Hidden: 16, Layers: 1, Lookback: 12, Epochs: 25,
		LearningRate: 0.01, ClipNorm: 1, Seed: 42,
	}
	l, err := NewLSTM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Fit(train); err != nil {
		t.Fatal(err)
	}
	rmse, err := WalkForwardRMSE(l, train, test, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The signal swings ±85 around 100; predicting the mean scores
	// RMSE ~60. A trained LSTM must do far better.
	if rmse > 20 {
		t.Errorf("LSTM RMSE=%v, want < 20", rmse)
	}
}

func TestLSTMBeatsMovingAverageOnCycle(t *testing.T) {
	// The ordering LSTM < MA is the core claim of Table II.
	series := syntheticSeries(24*14, 21, 2)
	train, test, err := SplitTrainTest(series, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLSTM(LSTMConfig{
		Hidden: 16, Layers: 1, Lookback: 12, Epochs: 25,
		LearningRate: 0.01, ClipNorm: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Fit(train); err != nil {
		t.Fatal(err)
	}
	ma, err := NewMovingAverage(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ma.Fit(train); err != nil {
		t.Fatal(err)
	}
	lstmRMSE, err := WalkForwardRMSE(l, train, test, 1)
	if err != nil {
		t.Fatal(err)
	}
	maRMSE, err := WalkForwardRMSE(ma, train, test, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lstmRMSE >= maRMSE {
		t.Errorf("LSTM RMSE %v should beat MA RMSE %v", lstmRMSE, maRMSE)
	}
}

func TestLSTMForecastValidation(t *testing.T) {
	l, err := NewLSTM(LSTMConfig{
		Hidden: 4, Layers: 1, Lookback: 6, Epochs: 1,
		LearningRate: 0.01, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Fit(syntheticSeries(60, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Forecast(make([]float64, 3), 1); !errors.Is(err, ErrSeriesTooShort) {
		t.Errorf("short history: %v", err)
	}
	if _, err := l.Forecast(make([]float64, 10), 0); err == nil {
		t.Error("steps 0 should error")
	}
}

func TestLSTMDeterministicAcrossRuns(t *testing.T) {
	series := syntheticSeries(24*7, 5, 1)
	build := func() []float64 {
		l, err := NewLSTM(LSTMConfig{
			Hidden: 8, Layers: 2, Lookback: 8, Epochs: 4,
			LearningRate: 0.01, ClipNorm: 1, Seed: 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Fit(series); err != nil {
			t.Fatal(err)
		}
		preds, err := l.Forecast(series, 5)
		if err != nil {
			t.Fatal(err)
		}
		return preds
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWalkForwardRMSEValidation(t *testing.T) {
	ma, _ := NewMovingAverage(2)
	if err := ma.Fit([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := WalkForwardRMSE(ma, []float64{1, 2, 3}, nil, 1); err == nil {
		t.Error("empty test should error")
	}
	if _, err := WalkForwardRMSE(ma, []float64{1, 2, 3}, []float64{4}, 0); err == nil {
		t.Error("horizon 0 should error")
	}
}

func TestWalkForwardRMSEPerfectModel(t *testing.T) {
	// A model that memorises the next values scores RMSE 0.
	ma, _ := NewMovingAverage(1)
	if err := ma.Fit([]float64{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	rmse, err := WalkForwardRMSE(ma, []float64{5, 5, 5}, []float64{5, 5, 5, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rmse != 0 {
		t.Errorf("RMSE=%v, want 0", rmse)
	}
}
