package forecast

import (
	"math"
	"testing"
	"testing/quick"
)

func cleanSeries(raw []int16, minLen int) []float64 {
	if len(raw) < minLen {
		return nil
	}
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = float64(v) / 8
	}
	return out
}

func TestQuickDifferenceIntegrateRoundTrip(t *testing.T) {
	property := func(raw []int16, dRaw uint8) bool {
		series := cleanSeries(raw, 8)
		if series == nil {
			return true
		}
		d := int(dRaw % 3)
		split := len(series) / 2
		if split <= d {
			return true
		}
		history, future := series[:split], series[split:]
		diffedAll, _, err := Difference(series, d)
		if err != nil {
			return false
		}
		diffedFuture := diffedAll[len(diffedAll)-len(future):]
		last, err := LastAtLevels(history, d)
		if err != nil {
			return false
		}
		got := Integrate(diffedFuture, last)
		for i := range future {
			if math.Abs(got[i]-future[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickScalerRoundTrip(t *testing.T) {
	property := func(raw []int16, v int16) bool {
		series := cleanSeries(raw, 1)
		if series == nil {
			return true
		}
		s := FitScaler(series)
		x := float64(v)
		back := s.Invert(s.Transform(x))
		return math.Abs(back-x) < 1e-6*(1+math.Abs(x))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickWindowsAlignment(t *testing.T) {
	property := func(raw []int16, lbRaw uint8) bool {
		series := cleanSeries(raw, 4)
		if series == nil {
			return true
		}
		lookback := int(lbRaw)%(len(series)-1) + 1
		inputs, targets, err := Windows(series, lookback)
		if err != nil {
			return false
		}
		if len(inputs) != len(series)-lookback {
			return false
		}
		for i := range inputs {
			if len(inputs[i]) != lookback {
				return false
			}
			if targets[i] != series[i+lookback] {
				return false
			}
			if inputs[i][lookback-1] != series[i+lookback-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickSeasonalNaivePeriodicity(t *testing.T) {
	property := func(raw []int16, periodRaw uint8) bool {
		series := cleanSeries(raw, 4)
		if series == nil {
			return true
		}
		period := int(periodRaw)%len(series) + 1
		s, err := NewSeasonalNaive(period)
		if err != nil {
			return false
		}
		if err := s.Fit(series); err != nil {
			return false
		}
		preds, err := s.Forecast(series, 2*period)
		if err != nil {
			return false
		}
		for k := 0; k < period; k++ {
			if preds[k] != preds[k+period] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
