package forecast

import (
	"fmt"

	"repro/internal/matrix"
)

// ARIMA implements an ARIMA(p, d, q) forecaster (Table II's "ARIMA"
// baseline with lag order p and degree of differencing d).
//
// Fitting differences the series d times and then estimates the ARMA(p, q)
// coefficients with the Hannan–Rissanen two-stage procedure:
//
//  1. fit a long autoregression by ordinary least squares to estimate the
//     innovation sequence;
//  2. regress the series on its own p lags and the q lagged innovation
//     estimates, again by OLS (Gaussian elimination on the normal
//     equations).
//
// The procedure is deterministic — no iterative likelihood optimisation —
// which keeps the experiment tables reproducible bit-for-bit.
type ARIMA struct {
	P, D, Q int

	fitted    bool
	intercept float64
	arCoef    []float64 // phi_1..phi_p
	maCoef    []float64 // theta_1..theta_q
}

var _ Forecaster = (*ARIMA)(nil)

// NewARIMA validates the order and returns the model.
func NewARIMA(p, d, q int) (*ARIMA, error) {
	if p < 0 || d < 0 || q < 0 {
		return nil, fmt.Errorf("forecast: ARIMA order (%d,%d,%d) must be non-negative", p, d, q)
	}
	if p == 0 && q == 0 {
		return nil, fmt.Errorf("forecast: ARIMA(%d,%d,%d) has no ARMA terms", p, d, q)
	}
	return &ARIMA{P: p, D: d, Q: q}, nil
}

// Fit implements Forecaster.
func (a *ARIMA) Fit(series []float64) error {
	diffed, _, err := Difference(series, a.D)
	if err != nil {
		return fmt.Errorf("arima fit: %w", err)
	}
	minLen := a.P + a.Q + 10
	if len(diffed) < minLen {
		return fmt.Errorf("%w: %d differenced points, need %d", ErrSeriesTooShort, len(diffed), minLen)
	}

	resid := make([]float64, len(diffed))
	if a.Q > 0 {
		// Stage 1: long AR to estimate innovations.
		longP := a.P + a.Q + 2
		if longP*3 > len(diffed) {
			longP = len(diffed) / 3
		}
		if longP < 1 {
			longP = 1
		}
		inter, phi, err := fitARLeastSquares(diffed, longP)
		if err != nil {
			return fmt.Errorf("arima stage 1: %w", err)
		}
		for t := longP; t < len(diffed); t++ {
			pred := inter
			for k := 0; k < longP; k++ {
				pred += phi[k] * diffed[t-1-k]
			}
			resid[t] = diffed[t] - pred
		}
	}

	// Stage 2: regress on p lags of the series and q lags of residuals.
	start := a.P
	if a.Q > 0 {
		if qs := a.P + a.Q + 2 + a.Q; qs > start {
			start = qs
		}
	}
	rows := len(diffed) - start
	cols := 1 + a.P + a.Q
	if rows < cols {
		return fmt.Errorf("%w: %d regression rows for %d coefficients", ErrSeriesTooShort, rows, cols)
	}
	x := matrix.New(rows, cols)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := start + r
		x.Set(r, 0, 1)
		for k := 0; k < a.P; k++ {
			x.Set(r, 1+k, diffed[t-1-k])
		}
		for k := 0; k < a.Q; k++ {
			x.Set(r, 1+a.P+k, resid[t-1-k])
		}
		y[r] = diffed[t]
	}
	coef, err := olsSolve(x, y)
	if err != nil {
		return fmt.Errorf("arima stage 2: %w", err)
	}
	a.intercept = coef[0]
	a.arCoef = append([]float64(nil), coef[1:1+a.P]...)
	a.maCoef = append([]float64(nil), coef[1+a.P:]...)
	a.fitted = true
	return nil
}

// Forecast implements Forecaster.
func (a *ARIMA) Forecast(history []float64, steps int) ([]float64, error) {
	if !a.fitted {
		return nil, ErrNotFitted
	}
	if steps < 1 {
		return nil, fmt.Errorf("forecast: steps %d < 1", steps)
	}
	diffed, _, err := Difference(history, a.D)
	if err != nil {
		return nil, fmt.Errorf("arima forecast: %w", err)
	}
	if len(diffed) < a.P {
		return nil, fmt.Errorf("%w: %d differenced points for p=%d", ErrSeriesTooShort, len(diffed), a.P)
	}

	// Reconstruct in-sample residuals on the differenced history so the
	// MA terms have fuel for the first forecast steps.
	resid := make([]float64, len(diffed))
	for t := a.P; t < len(diffed); t++ {
		pred := a.intercept
		for k := 0; k < a.P; k++ {
			pred += a.arCoef[k] * diffed[t-1-k]
		}
		for k := 0; k < a.Q; k++ {
			if t-1-k >= 0 {
				pred += a.maCoef[k] * resid[t-1-k]
			}
		}
		resid[t] = diffed[t] - pred
	}

	extended := append([]float64(nil), diffed...)
	futureResid := append([]float64(nil), resid...)
	preds := make([]float64, steps)
	for s := 0; s < steps; s++ {
		t := len(extended)
		pred := a.intercept
		for k := 0; k < a.P; k++ {
			if t-1-k >= 0 {
				pred += a.arCoef[k] * extended[t-1-k]
			}
		}
		for k := 0; k < a.Q; k++ {
			if t-1-k >= 0 && t-1-k < len(futureResid) {
				pred += a.maCoef[k] * futureResid[t-1-k]
			}
		}
		preds[s] = pred
		extended = append(extended, pred)
		futureResid = append(futureResid, 0) // future innovations have mean 0
	}

	last, err := LastAtLevels(history, a.D)
	if err != nil {
		return nil, fmt.Errorf("arima integrate: %w", err)
	}
	return Integrate(preds, last), nil
}

// Name implements Forecaster.
func (a *ARIMA) Name() string { return fmt.Sprintf("arima-p%d-d%d-q%d", a.P, a.D, a.Q) }

// fitARLeastSquares fits y_t = c + sum phi_k y_{t-k} + e_t by OLS.
func fitARLeastSquares(series []float64, p int) (intercept float64, phi []float64, err error) {
	rows := len(series) - p
	cols := p + 1
	if rows < cols {
		return 0, nil, fmt.Errorf("%w: %d rows for AR(%d)", ErrSeriesTooShort, rows, p)
	}
	x := matrix.New(rows, cols)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := p + r
		x.Set(r, 0, 1)
		for k := 0; k < p; k++ {
			x.Set(r, 1+k, series[t-1-k])
		}
		y[r] = series[t]
	}
	coef, err := olsSolve(x, y)
	if err != nil {
		return 0, nil, err
	}
	return coef[0], coef[1:], nil
}

// olsSolve solves min ||X·beta - y||² via the normal equations
// XᵀX·beta = Xᵀy with a small ridge term for numerical stability.
func olsSolve(x *matrix.Matrix, y []float64) ([]float64, error) {
	cols := x.Cols
	xtx := matrix.New(cols, cols)
	matrix.MulATB(xtx, x, x)
	// Ridge regularisation: keeps near-collinear designs (e.g. constant
	// series) solvable without visibly biasing the fit.
	const ridge = 1e-8
	for i := 0; i < cols; i++ {
		xtx.Set(i, i, xtx.At(i, i)+ridge)
	}
	xty := make([]float64, cols)
	for r := 0; r < x.Rows; r++ {
		yr := y[r]
		for c := 0; c < cols; c++ {
			xty[c] += x.At(r, c) * yr
		}
	}
	beta, err := matrix.SolveLinear(xtx, xty)
	if err != nil {
		return nil, fmt.Errorf("ols: %w", err)
	}
	return beta, nil
}
