package forecast

import (
	"fmt"
)

// GridForecaster predicts per-grid-cell demand over a horizon — the
// paper's "for each grid ... it forecasts the future k steps" engine.
// It factorises the problem the way the evaluation does: one temporal
// model on the citywide hourly total (the hard part, handled by any
// Forecaster — typically the LSTM) and a spatial share per cell estimated
// from history. Cell demand over the horizon is
//
//	demand(cell) = share(cell) · Σ predicted hourly totals.
//
// The factorisation assumes the spatial mix shifts slowly relative to the
// total volume, which Table IV's weekday similarity block justifies; the
// deviation-penalty algorithm absorbs the residual spatial error online.
type GridForecaster struct {
	temporal Forecaster
	shares   []float64
	fitted   bool
}

// NewGridForecaster wraps a temporal model.
func NewGridForecaster(temporal Forecaster) (*GridForecaster, error) {
	if temporal == nil {
		return nil, fmt.Errorf("forecast: nil temporal model")
	}
	return &GridForecaster{temporal: temporal}, nil
}

// FitGrid trains on the citywide hourly series and the historical
// per-cell counts (any non-negative weights; they are normalised).
func (g *GridForecaster) FitGrid(hourlyTotals []float64, cellCounts []float64) error {
	if len(cellCounts) == 0 {
		return fmt.Errorf("forecast: no cells")
	}
	var total float64
	for i, c := range cellCounts {
		if c < 0 {
			return fmt.Errorf("forecast: cell %d has negative count %v", i, c)
		}
		total += c
	}
	if total == 0 {
		return fmt.Errorf("forecast: all cell counts are zero")
	}
	if err := g.temporal.Fit(hourlyTotals); err != nil {
		return fmt.Errorf("temporal fit: %w", err)
	}
	g.shares = make([]float64, len(cellCounts))
	for i, c := range cellCounts {
		g.shares[i] = c / total
	}
	g.fitted = true
	return nil
}

// ForecastGrid predicts each cell's demand over the next `hours` hours
// following history (the citywide hourly series). Negative hourly
// predictions are clamped to zero before aggregation.
func (g *GridForecaster) ForecastGrid(history []float64, hours int) ([]float64, error) {
	if !g.fitted {
		return nil, ErrNotFitted
	}
	if hours < 1 {
		return nil, fmt.Errorf("forecast: hours %d < 1", hours)
	}
	preds, err := g.temporal.Forecast(history, hours)
	if err != nil {
		return nil, fmt.Errorf("temporal forecast: %w", err)
	}
	var volume float64
	for _, v := range preds {
		if v > 0 {
			volume += v
		}
	}
	out := make([]float64, len(g.shares))
	for i, s := range g.shares {
		out[i] = s * volume
	}
	return out, nil
}

// Shares returns the fitted spatial distribution (sums to 1).
func (g *GridForecaster) Shares() []float64 {
	return append([]float64(nil), g.shares...)
}

// Name implements a Forecaster-style identity.
func (g *GridForecaster) Name() string {
	return "grid(" + g.temporal.Name() + ")"
}
