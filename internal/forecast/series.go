package forecast

import (
	"fmt"
)

// Difference applies d-th order differencing to series, returning the
// differenced series and the d leading values needed to re-integrate.
// ARIMA's "I" component.
func Difference(series []float64, d int) (diffed []float64, heads [][]float64, err error) {
	if d < 0 {
		return nil, nil, fmt.Errorf("forecast: negative differencing order %d", d)
	}
	if len(series) <= d {
		return nil, nil, fmt.Errorf("%w: length %d with d=%d", ErrSeriesTooShort, len(series), d)
	}
	cur := append([]float64(nil), series...)
	heads = make([][]float64, 0, d)
	for k := 0; k < d; k++ {
		heads = append(heads, []float64{cur[0]})
		next := make([]float64, len(cur)-1)
		for i := 1; i < len(cur); i++ {
			next[i-1] = cur[i] - cur[i-1]
		}
		cur = next
	}
	return cur, heads, nil
}

// Integrate inverts Difference: given a differenced continuation and the
// last value at each differencing level, it reconstructs the original
// scale. lastAtLevel[k] is the final observed value after k differencing
// passes (k=0 is the raw series).
func Integrate(diffedForecast []float64, lastAtLevel []float64) []float64 {
	out := append([]float64(nil), diffedForecast...)
	// Walk back up the differencing levels.
	for level := len(lastAtLevel) - 2; level >= 0; level-- {
		prev := lastAtLevel[level]
		for i := range out {
			prev += out[i]
			out[i] = prev
		}
	}
	return out
}

// LastAtLevels returns the last value of series at each of d+1
// differencing levels: index 0 is the raw last value, index k the last
// value after k differencing passes.
func LastAtLevels(series []float64, d int) ([]float64, error) {
	if len(series) <= d {
		return nil, fmt.Errorf("%w: length %d with d=%d", ErrSeriesTooShort, len(series), d)
	}
	out := make([]float64, d+1)
	cur := append([]float64(nil), series...)
	out[0] = cur[len(cur)-1]
	for k := 1; k <= d; k++ {
		next := make([]float64, len(cur)-1)
		for i := 1; i < len(cur); i++ {
			next[i-1] = cur[i] - cur[i-1]
		}
		cur = next
		out[k] = cur[len(cur)-1]
	}
	return out, nil
}

// Windows converts a series into supervised (input window, next value)
// pairs with the given lookback. Used to build LSTM training batches.
func Windows(series []float64, lookback int) (inputs [][]float64, targets []float64, err error) {
	if lookback < 1 {
		return nil, nil, fmt.Errorf("forecast: lookback %d < 1", lookback)
	}
	if len(series) <= lookback {
		return nil, nil, fmt.Errorf("%w: length %d with lookback %d", ErrSeriesTooShort, len(series), lookback)
	}
	n := len(series) - lookback
	inputs = make([][]float64, n)
	targets = make([]float64, n)
	for i := 0; i < n; i++ {
		inputs[i] = series[i : i+lookback]
		targets[i] = series[i+lookback]
	}
	return inputs, targets, nil
}

// SplitTrainTest splits a series at the given training fraction.
func SplitTrainTest(series []float64, trainFrac float64) (train, test []float64, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("forecast: train fraction %v out of (0,1)", trainFrac)
	}
	cut := int(float64(len(series)) * trainFrac)
	if cut == 0 || cut == len(series) {
		return nil, nil, fmt.Errorf("%w: cannot split %d points at %v", ErrSeriesTooShort, len(series), trainFrac)
	}
	return series[:cut], series[cut:], nil
}
