package forecast

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

func TestDifference(t *testing.T) {
	tests := []struct {
		name    string
		series  []float64
		d       int
		want    []float64
		wantErr bool
	}{
		{"d=0 identity", []float64{1, 2, 4}, 0, []float64{1, 2, 4}, false},
		{"d=1", []float64{1, 3, 6, 10}, 1, []float64{2, 3, 4}, false},
		{"d=2", []float64{1, 3, 6, 10}, 2, []float64{1, 1}, false},
		{"negative d", []float64{1, 2}, -1, nil, true},
		{"too short", []float64{1}, 1, nil, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, _, err := Difference(tt.series, tt.d)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if len(got) != len(tt.want) {
				t.Fatalf("len=%d, want %d", len(got), len(tt.want))
			}
			for i := range tt.want {
				if got[i] != tt.want[i] {
					t.Errorf("got[%d]=%v, want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestDifferenceDoesNotMutate(t *testing.T) {
	series := []float64{5, 4, 3}
	if _, _, err := Difference(series, 1); err != nil {
		t.Fatal(err)
	}
	if series[0] != 5 || series[1] != 4 {
		t.Errorf("input mutated: %v", series)
	}
}

func TestIntegrateInvertsDifference(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for d := 0; d <= 2; d++ {
		series := make([]float64, 30)
		for i := range series {
			series[i] = rng.Float64()*100 - 50
		}
		// Treat the tail as a "forecast" and check reconstruction.
		history := series[:20]
		future := series[20:]
		diffedAll, _, err := Difference(series, d)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		// The differenced future is the last len(future) entries.
		diffedFuture := diffedAll[len(diffedAll)-len(future):]
		last, err := LastAtLevels(history, d)
		if err != nil {
			t.Fatalf("LastAtLevels: %v", err)
		}
		got := Integrate(diffedFuture, last)
		for i := range future {
			if math.Abs(got[i]-future[i]) > 1e-9 {
				t.Fatalf("d=%d: reconstructed[%d]=%v, want %v", d, i, got[i], future[i])
			}
		}
	}
}

func TestLastAtLevels(t *testing.T) {
	series := []float64{1, 3, 6, 10}
	got, err := LastAtLevels(series, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Raw last 10; first diff last 4; second diff last 1.
	want := []float64{10, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("level %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := LastAtLevels([]float64{1}, 1); !errors.Is(err, ErrSeriesTooShort) {
		t.Errorf("short series: %v", err)
	}
}

func TestWindows(t *testing.T) {
	series := []float64{1, 2, 3, 4, 5}
	inputs, targets, err := Windows(series, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(inputs) != 3 || len(targets) != 3 {
		t.Fatalf("got %d windows, want 3", len(inputs))
	}
	if inputs[0][0] != 1 || inputs[0][1] != 2 || targets[0] != 3 {
		t.Errorf("window 0 wrong: %v -> %v", inputs[0], targets[0])
	}
	if inputs[2][0] != 3 || inputs[2][1] != 4 || targets[2] != 5 {
		t.Errorf("window 2 wrong: %v -> %v", inputs[2], targets[2])
	}
	if _, _, err := Windows(series, 0); err == nil {
		t.Error("lookback 0 should error")
	}
	if _, _, err := Windows(series, 5); !errors.Is(err, ErrSeriesTooShort) {
		t.Errorf("too-long lookback: %v", err)
	}
}

func TestSplitTrainTest(t *testing.T) {
	series := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	train, test, err := SplitTrainTest(series, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 7 || len(test) != 3 {
		t.Errorf("split %d/%d, want 7/3", len(train), len(test))
	}
	for _, frac := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := SplitTrainTest(series, frac); err == nil {
			t.Errorf("frac %v should error", frac)
		}
	}
	if _, _, err := SplitTrainTest([]float64{1}, 0.5); err == nil {
		t.Error("degenerate split should error")
	}
}

func TestScaler(t *testing.T) {
	s := FitScaler([]float64{2, 4, 6})
	if math.Abs(s.Mean-4) > 1e-12 {
		t.Errorf("mean=%v", s.Mean)
	}
	if got := s.Transform(4); got != 0 {
		t.Errorf("Transform(mean)=%v, want 0", got)
	}
	for _, v := range []float64{-3, 0, 7.5} {
		if got := s.Invert(s.Transform(v)); math.Abs(got-v) > 1e-12 {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
	// Constant series must not blow up.
	c := FitScaler([]float64{5, 5, 5})
	if c.StdDev != 1 {
		t.Errorf("constant series StdDev=%v, want 1", c.StdDev)
	}
	e := FitScaler(nil)
	if e.StdDev != 1 {
		t.Errorf("empty series StdDev=%v, want 1", e.StdDev)
	}
	all := s.TransformAll([]float64{2, 4, 6})
	if len(all) != 3 || all[1] != 0 {
		t.Errorf("TransformAll wrong: %v", all)
	}
}
