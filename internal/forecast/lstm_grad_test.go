package forecast

import (
	"math"
	"testing"
)

// TestLSTMGradientCheck verifies the analytic BPTT gradients against
// central finite differences on a tiny network. This is the strongest
// guarantee available that the backward pass is correct.
func TestLSTMGradientCheck(t *testing.T) {
	cfg := LSTMConfig{
		Hidden: 3, Layers: 2, Lookback: 4, Epochs: 1,
		LearningRate: 0.01, Seed: 123,
	}
	l, err := NewLSTM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := []float64{0.2, -0.5, 0.9, 0.1}
	target := 0.4

	loss := func() float64 {
		pred := l.forwardWindow(window, nil)
		d := pred - target
		return 0.5 * d * d
	}

	grads := l.computeGradients(window, target)

	const eps = 1e-5
	const tol = 1e-5
	checkTensor := func(name string, params, analytic []float64) {
		t.Helper()
		if len(params) != len(analytic) {
			t.Fatalf("%s: %d params vs %d grads", name, len(params), len(analytic))
		}
		step := len(params)/5 + 1
		for i := 0; i < len(params); i += step {
			orig := params[i]
			params[i] = orig + eps
			up := loss()
			params[i] = orig - eps
			down := loss()
			params[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-analytic[i]) > tol*(1+math.Abs(numeric)) {
				t.Errorf("%s[%d]: analytic %v vs numeric %v", name, i, analytic[i], numeric)
			}
		}
	}

	for li, layer := range l.layers {
		checkTensor("wx", layer.wx.Data, grads.dWx[li].Data)
		checkTensor("wh", layer.wh.Data, grads.dWh[li].Data)
		checkTensor("b", layer.b, grads.dB[li])
	}
	checkTensor("wy", l.wy, grads.dWy)

	orig := l.by
	l.by = orig + eps
	up := loss()
	l.by = orig - eps
	down := loss()
	l.by = orig
	numeric := (up - down) / (2 * eps)
	if math.Abs(numeric-grads.dBy) > tol*(1+math.Abs(numeric)) {
		t.Errorf("by: analytic %v vs numeric %v", grads.dBy, numeric)
	}
}

// TestLSTMComputeGradientsPure ensures the gradient pass does not mutate
// network parameters.
func TestLSTMComputeGradientsPure(t *testing.T) {
	l, err := NewLSTM(LSTMConfig{
		Hidden: 4, Layers: 1, Lookback: 3, Epochs: 1,
		LearningRate: 0.01, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), l.layers[0].wx.Data...)
	l.computeGradients([]float64{0.1, 0.2, 0.3}, 0.5)
	for i, v := range l.layers[0].wx.Data {
		if v != before[i] {
			t.Fatalf("computeGradients mutated wx[%d]", i)
		}
	}
}

// TestLSTMTrainingReducesLoss checks that a handful of BPTT steps on a
// single example strictly reduces its loss.
func TestLSTMTrainingReducesLoss(t *testing.T) {
	l, err := NewLSTM(LSTMConfig{
		Hidden: 8, Layers: 1, Lookback: 5, Epochs: 1,
		LearningRate: 0.02, ClipNorm: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	window := []float64{0.5, -0.1, 0.3, 0.8, -0.4}
	target := 0.7
	loss := func() float64 {
		d := l.forwardWindow(window, nil) - target
		return 0.5 * d * d
	}
	initial := loss()
	for i := 0; i < 50; i++ {
		l.trainWindow(window, target)
	}
	if final := loss(); final >= initial {
		t.Errorf("loss did not decrease: %v -> %v", initial, final)
	}
}
