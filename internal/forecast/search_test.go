package forecast

import (
	"fmt"
	"math"
	"testing"
)

func searchSpecs() []GridSpec {
	var specs []GridSpec
	for _, wz := range []int{1, 2, 3, 4, 5} {
		wz := wz
		specs = append(specs, GridSpec{
			Name: fmt.Sprintf("ma wz=%d", wz),
			New:  func() (Forecaster, error) { return NewMovingAverage(wz) },
		})
	}
	for _, p := range []int{2, 4, 6} {
		p := p
		specs = append(specs, GridSpec{
			Name: fmt.Sprintf("arima p=%d", p),
			New:  func() (Forecaster, error) { return NewARIMA(p, 1, 0) },
		})
	}
	return specs
}

func searchSeries() []float64 {
	series := make([]float64, 240)
	for i := range series {
		series[i] = 50 + 30*math.Sin(2*math.Pi*float64(i)/24) + 5*math.Cos(float64(i))
	}
	return series
}

func TestGridSearchMatchesSequentialScoring(t *testing.T) {
	train, test, err := SplitTrainTest(searchSeries(), 0.75)
	if err != nil {
		t.Fatal(err)
	}
	specs := searchSpecs()
	// Sequential reference: fit and score each spec in order, winner by
	// strict <.
	want := make([]float64, len(specs))
	wantBest := -1
	for i, spec := range specs {
		m, err := spec.New()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(train); err != nil {
			t.Fatal(err)
		}
		want[i], err = WalkForwardRMSE(m, train, test, 3)
		if err != nil {
			t.Fatal(err)
		}
		if wantBest == -1 || want[i] < want[wantBest] {
			wantBest = i
		}
	}
	for _, workers := range []int{1, 2, 4, 7} {
		got, best, err := GridSearch(workers, specs, train, test, 3)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if best != wantBest {
			t.Errorf("workers=%d: best=%d (%s), want %d (%s)", workers, best, specs[best].Name, wantBest, specs[wantBest].Name)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Errorf("workers=%d: rmse[%d]=%v, want %v (bit-exact)", workers, i, got[i], want[i])
			}
		}
	}
}

func TestGridSearchErrors(t *testing.T) {
	train, test, err := SplitTrainTest(searchSeries(), 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := GridSearch(1, nil, train, test, 3); err == nil {
		t.Error("empty grid should error")
	}
	specs := []GridSpec{
		{Name: "ok", New: func() (Forecaster, error) { return NewMovingAverage(2) }},
		{Name: "bad", New: func() (Forecaster, error) { return NewMovingAverage(0) }},
	}
	if _, _, err := GridSearch(4, specs, train, test, 3); err == nil {
		t.Error("failing constructor should surface as an error")
	}
}
