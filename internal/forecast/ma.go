package forecast

import (
	"fmt"
)

// MovingAverage forecasts the mean of the last WindowSize observations
// (Table II's "MA" baseline with window size wz). Multi-step forecasts
// feed predictions back into the window.
type MovingAverage struct {
	WindowSize int
	fitted     bool
}

var _ Forecaster = (*MovingAverage)(nil)

// NewMovingAverage validates the window size and returns the model.
func NewMovingAverage(windowSize int) (*MovingAverage, error) {
	if windowSize < 1 {
		return nil, fmt.Errorf("forecast: MA window %d < 1", windowSize)
	}
	return &MovingAverage{WindowSize: windowSize}, nil
}

// Fit implements Forecaster. MA has no trainable parameters; Fit only
// validates that the series can cover one window.
func (m *MovingAverage) Fit(series []float64) error {
	if len(series) < m.WindowSize {
		return fmt.Errorf("%w: %d points for window %d", ErrSeriesTooShort, len(series), m.WindowSize)
	}
	m.fitted = true
	return nil
}

// Forecast implements Forecaster.
func (m *MovingAverage) Forecast(history []float64, steps int) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if steps < 1 {
		return nil, fmt.Errorf("forecast: steps %d < 1", steps)
	}
	if len(history) < m.WindowSize {
		return nil, fmt.Errorf("%w: history %d for window %d", ErrSeriesTooShort, len(history), m.WindowSize)
	}
	window := append([]float64(nil), history[len(history)-m.WindowSize:]...)
	out := make([]float64, steps)
	for s := 0; s < steps; s++ {
		var sum float64
		for _, v := range window {
			sum += v
		}
		pred := sum / float64(len(window))
		out[s] = pred
		window = append(window[1:], pred)
	}
	return out, nil
}

// Name implements Forecaster.
func (m *MovingAverage) Name() string { return fmt.Sprintf("ma-wz%d", m.WindowSize) }
