package dataset

import (
	"errors"
	"fmt"

	"repro/internal/geo"
)

// ErrNoGeohashes is returned by GeohashCenter when no trip carries a
// decodable geohash to derive a projection centre from.
var ErrNoGeohashes = errors.New("dataset: no geohashes to derive a projection centre from")

// GeohashCenter returns the centre of the geodetic bounding box spanned
// by every start and end geohash in trips. It is the natural projection
// origin for a dataset of unknown geography: projecting a city's trips
// around a far-away origin (e.g. the Beijing default against a European
// dataset) yields planar coordinates hundreds of kilometres from zero,
// where the tangent-plane approximation has visibly broken down.
func GeohashCenter(trips []Trip) (geo.LatLng, error) {
	minLat, minLng := 91.0, 181.0
	maxLat, maxLng := -91.0, -181.0
	seen := false
	for _, t := range trips {
		for _, h := range [2]string{t.StartGeohash, t.EndGeohash} {
			if h == "" {
				continue
			}
			ll, _, _, err := geo.DecodeGeohash(h)
			if err != nil {
				return geo.LatLng{}, fmt.Errorf("trip %d: %w", t.OrderID, err)
			}
			seen = true
			minLat, maxLat = min(minLat, ll.Lat), max(maxLat, ll.Lat)
			minLng, maxLng = min(minLng, ll.Lng), max(maxLng, ll.Lng)
		}
	}
	if !seen {
		return geo.LatLng{}, ErrNoGeohashes
	}
	return geo.LatLng{Lat: (minLat + maxLat) / 2, Lng: (minLng + maxLng) / 2}, nil
}

// ProjectTrips fills the planar Start/End of every trip from its
// geohashes using projector, overwriting any previous projection.
func ProjectTrips(trips []Trip, projector *geo.Projector) error {
	if projector == nil {
		return errors.New("dataset: nil projector")
	}
	for i := range trips {
		start, _, _, err := geo.DecodeGeohash(trips[i].StartGeohash)
		if err != nil {
			return fmt.Errorf("trip %d start geohash: %w", trips[i].OrderID, err)
		}
		end, _, _, err := geo.DecodeGeohash(trips[i].EndGeohash)
		if err != nil {
			return fmt.Errorf("trip %d end geohash: %w", trips[i].OrderID, err)
		}
		trips[i].Start = projector.ToPlane(start)
		trips[i].End = projector.ToPlane(end)
	}
	return nil
}
