package dataset

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/geo"
)

// tripsAround builds n trips whose geohashes cluster within ~1km of
// center.
func tripsAround(t *testing.T, center geo.LatLng, n int) []Trip {
	t.Helper()
	trips := make([]Trip, n)
	for i := range trips {
		// ~100m steps; 0.001 deg lat ~= 111m.
		d := 0.001 * float64(i%7)
		start, err := geo.EncodeGeohash(geo.LatLng{Lat: center.Lat + d, Lng: center.Lng - d}, 7)
		if err != nil {
			t.Fatal(err)
		}
		end, err := geo.EncodeGeohash(geo.LatLng{Lat: center.Lat - d, Lng: center.Lng + d}, 7)
		if err != nil {
			t.Fatal(err)
		}
		trips[i] = Trip{
			OrderID: int64(i + 1), UserID: 1, BikeID: 1,
			StartTime:    time.Date(2017, 5, 10, 8, 0, i, 0, time.UTC),
			StartGeohash: start, EndGeohash: end,
		}
	}
	return trips
}

func TestGeohashCenter(t *testing.T) {
	nyc := geo.LatLng{Lat: 40.7128, Lng: -74.0060}
	trips := tripsAround(t, nyc, 20)
	center, err := GeohashCenter(trips)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(center.Lat-nyc.Lat) > 0.05 || math.Abs(center.Lng-nyc.Lng) > 0.05 {
		t.Errorf("center %+v, want near %+v", center, nyc)
	}
}

func TestGeohashCenterErrors(t *testing.T) {
	if _, err := GeohashCenter(nil); !errors.Is(err, ErrNoGeohashes) {
		t.Errorf("empty trips: err = %v, want ErrNoGeohashes", err)
	}
	if _, err := GeohashCenter([]Trip{{OrderID: 1}}); !errors.Is(err, ErrNoGeohashes) {
		t.Errorf("trips without geohashes: err = %v, want ErrNoGeohashes", err)
	}
	bad := []Trip{{OrderID: 1, StartGeohash: "!!!", EndGeohash: "wx4g0ec"}}
	if _, err := GeohashCenter(bad); err == nil {
		t.Error("invalid geohash should error")
	}
}

func TestProjectTrips(t *testing.T) {
	nyc := geo.LatLng{Lat: 40.7128, Lng: -74.0060}
	trips := tripsAround(t, nyc, 10)
	center, err := GeohashCenter(trips)
	if err != nil {
		t.Fatal(err)
	}
	if err := ProjectTrips(trips, geo.NewProjector(center)); err != nil {
		t.Fatal(err)
	}
	for _, tr := range trips {
		for _, p := range [2]geo.Point{tr.Start, tr.End} {
			if !p.IsFinite() || p.Norm() > 5000 {
				t.Fatalf("trip %d projects to %v, want within 5km of the derived origin", tr.OrderID, p)
			}
		}
	}
	if err := ProjectTrips(trips, nil); err == nil {
		t.Error("nil projector should error")
	}
	bad := []Trip{{OrderID: 9, StartGeohash: "???", EndGeohash: "wx4g0ec"}}
	if err := ProjectTrips(bad, geo.NewProjector(center)); err == nil {
		t.Error("invalid geohash should error")
	}
}
