package dataset

import (
	"bytes"
	"testing"

	"repro/internal/geo"
)

// benchCSVData renders a synthetic multi-day Mobike CSV once per
// process so the benchmarks measure parsing, not generation.
var benchCSVData []byte
var benchCSVRows int

func benchCSV(b *testing.B) ([]byte, int) {
	b.Helper()
	if benchCSVData == nil {
		var buf bytes.Buffer
		cw := NewCSVWriter(&buf)
		if err := cw.WriteHeader(); err != nil {
			b.Fatal(err)
		}
		err := GenerateStream(Config{
			Days: 5, TripsWeekday: 16000, TripsWeekend: 12000, Bikes: 400, Seed: 11,
		}, func(_ int, trips []Trip) error {
			benchCSVRows += len(trips)
			return cw.WriteTrips(trips)
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := cw.Flush(); err != nil {
			b.Fatal(err)
		}
		benchCSVData = buf.Bytes()
	}
	return benchCSVData, benchCSVRows
}

// BenchmarkReadCSV is the encoding/csv materialising baseline the
// streaming scanner is measured against (see ingest/* in
// BENCH_compute.json).
func BenchmarkReadCSV(b *testing.B) {
	data, _ := benchCSV(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCSV(bytes.NewReader(data), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestCSV is the zero-alloc streaming scanner at one worker,
// semantics-matched to BenchmarkReadCSV (geohashes kept as bytes, not
// decoded). The ns ratio between the two is the single-thread speedup.
func BenchmarkIngestCSV(b *testing.B) {
	data, rows := benchCSV(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	opts := ScanOptions{Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		err := IngestCSV(bytes.NewReader(data), opts, func(batch []RawTrip) error {
			n += len(batch)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != rows {
			b.Fatalf("scanned %d rows, want %d", n, rows)
		}
	}
}

// BenchmarkIngestCSVDecode adds geohash decoding, the configuration the
// bounded-memory demand pipeline runs with.
func BenchmarkIngestCSVDecode(b *testing.B) {
	data, rows := benchCSV(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	opts := ScanOptions{Workers: 1, DecodeGeohashes: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		err := IngestCSV(bytes.NewReader(data), opts, func(batch []RawTrip) error {
			n += len(batch)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != rows {
			b.Fatalf("scanned %d rows, want %d", n, rows)
		}
	}
}

// BenchmarkIngestCSVParallel runs the deterministic parallel parse at 4
// workers; output is bit-identical to one worker by construction.
func BenchmarkIngestCSVParallel(b *testing.B) {
	data, rows := benchCSV(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	opts := ScanOptions{Workers: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		err := IngestCSV(bytes.NewReader(data), opts, func(batch []RawTrip) error {
			n += len(batch)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != rows {
			b.Fatalf("scanned %d rows, want %d", n, rows)
		}
	}
}

// BenchmarkScanSummarize is the pass-1 reducer of the streaming
// pipeline: per-trip geohash decode folded straight into the bounding
// boxes, no []Trip.
func BenchmarkScanSummarize(b *testing.B) {
	data, rows := benchCSV(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := ScanSummarize(bytes.NewReader(data), ScanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if sum.Trips != int64(rows) {
			b.Fatalf("summarized %d rows, want %d", sum.Trips, rows)
		}
	}
}

// BenchmarkScanEndPoints is the pass-2 reducer: decode, project and
// visit every destination without materializing trips.
func BenchmarkScanEndPoints(b *testing.B) {
	data, rows := benchCSV(b)
	sum, err := ScanSummarize(bytes.NewReader(data), ScanOptions{})
	if err != nil {
		b.Fatal(err)
	}
	center, err := sum.Center()
	if err != nil {
		b.Fatal(err)
	}
	projector := geo.NewProjector(center)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		total, err := ScanEndPoints(bytes.NewReader(data), projector, ScanOptions{}, func(pts []geo.Point) error {
			n += len(pts)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if total != int64(rows) || n != rows {
			b.Fatalf("visited %d/%d points, want %d", n, total, rows)
		}
	}
}
