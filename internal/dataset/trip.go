// Package dataset models the Mobike trip data the paper evaluates on
// (3.2M trips, Beijing, May 10–24 2017) and provides a deterministic
// synthetic generator with the same schema and the spatial-temporal
// structure the experiments depend on: POI clustering, rush hours and the
// weekday/weekend split validated by Table IV.
package dataset

import (
	"fmt"
	"time"

	"repro/internal/geo"
)

// Trip is one bike trip in the Mobike schema. Locations are carried both
// as geohashes (the raw dataset encoding) and as projected planar points.
type Trip struct {
	OrderID   int64     `json:"orderId"`
	UserID    int64     `json:"userId"`
	BikeID    int64     `json:"bikeId"`
	BikeType  int       `json:"bikeType"`
	StartTime time.Time `json:"startTime"`

	StartGeohash string `json:"startGeohash"`
	EndGeohash   string `json:"endGeohash"`

	Start geo.Point `json:"start"`
	End   geo.Point `json:"end"`
}

// Weekend reports whether the trip starts on a Saturday or Sunday.
func (t Trip) Weekend() bool {
	wd := t.StartTime.Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

// Validate performs basic schema checks.
func (t Trip) Validate() error {
	switch {
	case t.OrderID <= 0:
		return fmt.Errorf("dataset: trip order id %d invalid", t.OrderID)
	case t.StartTime.IsZero():
		return fmt.Errorf("dataset: trip %d has zero start time", t.OrderID)
	case !t.Start.IsFinite() || !t.End.IsFinite():
		return fmt.Errorf("dataset: trip %d has non-finite coordinates", t.OrderID)
	}
	return nil
}

// EndPoints extracts the destination of every trip — the arrival stream
// the PLP algorithms consume.
func EndPoints(trips []Trip) []geo.Point {
	out := make([]geo.Point, len(trips))
	for i, t := range trips {
		out[i] = t.End
	}
	return out
}

// StartPoints extracts trip origins.
func StartPoints(trips []Trip) []geo.Point {
	out := make([]geo.Point, len(trips))
	for i, t := range trips {
		out[i] = t.Start
	}
	return out
}

// HourlySeries bins trips by start hour into a demand series spanning
// [from, from+hours). Index i counts trips with from+i hrs <= start <
// from+i+1 hrs.
func HourlySeries(trips []Trip, from time.Time, hours int) []float64 {
	out := make([]float64, hours)
	for _, t := range trips {
		dt := t.StartTime.Sub(from)
		if dt < 0 {
			continue
		}
		idx := int(dt / time.Hour)
		if idx >= 0 && idx < hours {
			out[idx]++
		}
	}
	return out
}

// SplitByDay groups trips by calendar day (in t.StartTime's location),
// returning days in chronological order alongside their trips.
func SplitByDay(trips []Trip) (days []time.Time, byDay [][]Trip) {
	index := map[time.Time]int{}
	for _, t := range trips {
		day := time.Date(t.StartTime.Year(), t.StartTime.Month(), t.StartTime.Day(),
			0, 0, 0, 0, t.StartTime.Location())
		i, ok := index[day]
		if !ok {
			i = len(days)
			index[day] = i
			days = append(days, day)
			byDay = append(byDay, nil)
		}
		byDay[i] = append(byDay[i], t)
	}
	// Insertion order equals chronological order when trips are sorted;
	// sort defensively for arbitrary input.
	for i := 1; i < len(days); i++ {
		for j := i; j > 0 && days[j].Before(days[j-1]); j-- {
			days[j], days[j-1] = days[j-1], days[j]
			byDay[j], byDay[j-1] = byDay[j-1], byDay[j]
		}
	}
	return days, byDay
}

// FilterHour returns the trips starting within [hour, hour+1) local time.
func FilterHour(trips []Trip, hour int) []Trip {
	var out []Trip
	for _, t := range trips {
		if t.StartTime.Hour() == hour {
			out = append(out, t)
		}
	}
	return out
}
