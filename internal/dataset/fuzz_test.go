package dataset

import (
	"strings"
	"testing"

	"repro/internal/geo"
)

// FuzzReadCSV ensures the trip parser never panics on arbitrary input and
// only returns trips it can fully validate structurally.
func FuzzReadCSV(f *testing.F) {
	header := strings.Join(csvHeader, ",")
	f.Add(header + "\n1,2,3,1,2017-05-10 08:30:00,wx4g0bm,wx4g0bn\n")
	f.Add(header + "\n")
	f.Add("not,a,header\n")
	f.Add(header + "\nx,y,z\n")
	f.Add(header + "\n1,2,3,1,2017-05-10 08:30:00,IIII,wx4\n")
	f.Add("")
	projector := geo.NewProjector(geo.LatLng{Lat: 39.9, Lng: 116.4})
	f.Fuzz(func(t *testing.T, input string) {
		trips, err := ReadCSV(strings.NewReader(input), projector)
		if err != nil {
			return
		}
		for _, tr := range trips {
			if tr.StartTime.IsZero() {
				t.Fatal("accepted trip with zero time")
			}
			if len(tr.StartGeohash) == 0 || len(tr.EndGeohash) == 0 {
				t.Fatal("accepted trip with empty geohash")
			}
		}
	})
}

// FuzzScanCSV is the differential target for the streaming scanner: for
// any input, chunk size and worker count, the streaming codec and
// sequential ReadCSV must either both error or produce bit-identical
// trips, with and without a projector.
func FuzzScanCSV(f *testing.F) {
	header := strings.Join(csvHeader, ",")
	f.Add(header+"\n1,2,3,1,2017-05-10 08:30:00,wx4g0bm,wx4g0bn\n", uint16(7), uint8(2))
	f.Add(header+"\r\n1,2,3,1,2017-05-10 8:30:00,wx4g0bm,wx4g0bn", uint16(3), uint8(4))
	f.Add(header+"\n1,2,3,1,2017-05-10 08:30:00,\"wx\n4\",\"wx\"\"4\"\n", uint16(5), uint8(1))
	f.Add(header+"\n\n1,2,3,1,2017-05-10 08:30:00,\"wx,4\",wx4g0bn\r\n\n", uint16(64), uint8(3))
	f.Add(header+"\n1,2,x,1,2017-05-10 08:30:00,wx4g0bm,wx4g0bn\n", uint16(1), uint8(7))
	f.Add("not,a,header\n", uint16(11), uint8(2))
	f.Add("", uint16(1), uint8(1))
	f.Add("\"\r\n\x00\"", uint16(2), uint8(2))
	projector := geo.NewProjector(geo.LatLng{Lat: 39.9, Lng: 116.4})
	f.Fuzz(func(t *testing.T, input string, chunk uint16, workers uint8) {
		opts := ScanOptions{
			ChunkSize: 1 + int(chunk%512),
			Workers:   1 + int(workers%8),
		}
		for _, proj := range []*geo.Projector{nil, projector} {
			want, wantErr := ReadCSV(strings.NewReader(input), proj)
			got, gotErr := ReadCSVStreaming(strings.NewReader(input), proj, opts)
			if (wantErr != nil) != (gotErr != nil) {
				t.Fatalf("chunk=%d workers=%d: ReadCSV err=%v, streaming err=%v",
					opts.ChunkSize, opts.Workers, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("chunk=%d workers=%d: %d trips, want %d",
					opts.ChunkSize, opts.Workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("chunk=%d workers=%d: trip %d = %+v, want %+v",
						opts.ChunkSize, opts.Workers, i, got[i], want[i])
				}
			}
		}
	})
}
