package dataset

import (
	"strings"
	"testing"

	"repro/internal/geo"
)

// FuzzReadCSV ensures the trip parser never panics on arbitrary input and
// only returns trips it can fully validate structurally.
func FuzzReadCSV(f *testing.F) {
	header := strings.Join(csvHeader, ",")
	f.Add(header + "\n1,2,3,1,2017-05-10 08:30:00,wx4g0bm,wx4g0bn\n")
	f.Add(header + "\n")
	f.Add("not,a,header\n")
	f.Add(header + "\nx,y,z\n")
	f.Add(header + "\n1,2,3,1,2017-05-10 08:30:00,IIII,wx4\n")
	f.Add("")
	projector := geo.NewProjector(geo.LatLng{Lat: 39.9, Lng: 116.4})
	f.Fuzz(func(t *testing.T, input string) {
		trips, err := ReadCSV(strings.NewReader(input), projector)
		if err != nil {
			return
		}
		for _, tr := range trips {
			if tr.StartTime.IsZero() {
				t.Fatal("accepted trip with zero time")
			}
			if len(tr.StartGeohash) == 0 || len(tr.EndGeohash) == 0 {
				t.Fatal("accepted trip with empty geohash")
			}
		}
	})
}
