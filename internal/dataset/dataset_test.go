package dataset

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/stats"
)

func smallConfig(seed uint64) Config {
	return Config{
		Days:         7,
		TripsWeekday: 300,
		TripsWeekend: 200,
		Bikes:        50,
		Seed:         seed,
	}
}

func generateSmall(t *testing.T, seed uint64) []Trip {
	t.Helper()
	trips, err := Generate(smallConfig(seed))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(trips) == 0 {
		t.Fatal("no trips generated")
	}
	return trips
}

func TestGenerateBasics(t *testing.T) {
	trips := generateSmall(t, 1)
	cfg := smallConfig(1)
	cfg.applyDefaults()
	seen := map[int64]bool{}
	for i, tr := range trips {
		if err := tr.Validate(); err != nil {
			t.Fatalf("trip %d invalid: %v", i, err)
		}
		if seen[tr.OrderID] {
			t.Fatalf("duplicate order id %d", tr.OrderID)
		}
		seen[tr.OrderID] = true
		if !cfg.Box.Contains(tr.Start) || !cfg.Box.Contains(tr.End) {
			t.Fatalf("trip %d outside box: %v -> %v", i, tr.Start, tr.End)
		}
		if len(tr.StartGeohash) != 7 || len(tr.EndGeohash) != 7 {
			t.Fatalf("trip %d geohash precision wrong: %q %q", i, tr.StartGeohash, tr.EndGeohash)
		}
		if tr.BikeID < 1 || tr.BikeID > int64(cfg.Bikes) {
			t.Fatalf("trip %d bike id %d outside fleet", i, tr.BikeID)
		}
	}
	// Chronological order.
	for i := 1; i < len(trips); i++ {
		if trips[i].StartTime.Before(trips[i-1].StartTime) {
			t.Fatalf("trips not sorted at %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := generateSmall(t, 9)
	b := generateSmall(t, 9)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trip %d differs", i)
		}
	}
	c := generateSmall(t, 10)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i].End != c[i].End {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical trips")
		}
	}
}

func TestGenerateDemandLevels(t *testing.T) {
	trips := generateSmall(t, 2)
	days, byDay := SplitByDay(trips)
	if len(days) != 7 {
		t.Fatalf("got %d days, want 7", len(days))
	}
	for i, day := range days {
		wd := day.Weekday()
		n := len(byDay[i])
		if wd == time.Saturday || wd == time.Sunday {
			if n < 120 || n > 300 {
				t.Errorf("%v: %d trips, want ~200", wd, n)
			}
		} else {
			if n < 200 || n > 420 {
				t.Errorf("%v: %d trips, want ~300", wd, n)
			}
		}
	}
}

func TestGenerateRushHourShape(t *testing.T) {
	cfg := smallConfig(3)
	cfg.Days = 5 // May 10 2017 is a Wednesday; 5 days = Wed..Sun
	cfg.TripsWeekday = 2000
	trips, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	days, byDay := SplitByDay(trips)
	for i, day := range days {
		if wd := day.Weekday(); wd == time.Saturday || wd == time.Sunday {
			continue
		}
		rush := len(FilterHour(byDay[i], 8)) + len(FilterHour(byDay[i], 18))
		dead := len(FilterHour(byDay[i], 2)) + len(FilterHour(byDay[i], 3))
		if rush <= 5*dead+10 {
			t.Errorf("day %d: rush %d vs dead %d — no rush-hour structure", i, rush, dead)
		}
	}
}

func TestWeekdayWeekendDistributionsDiffer(t *testing.T) {
	// The Table IV premise: weekday destination distributions differ from
	// weekend ones far more than from other weekdays.
	cfg := smallConfig(4)
	cfg.Days = 14
	cfg.TripsWeekday = 700
	cfg.TripsWeekend = 700
	trips, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	days, byDay := SplitByDay(trips)
	var weekdayPts, weekendPts [][]geo.Point
	for i, day := range days {
		pts := EndPoints(byDay[i])
		wd := day.Weekday()
		if wd == time.Saturday || wd == time.Sunday {
			weekendPts = append(weekendPts, pts)
		} else if wd == time.Tuesday || wd == time.Wednesday || wd == time.Thursday {
			weekdayPts = append(weekdayPts, pts)
		}
	}
	if len(weekdayPts) < 2 || len(weekendPts) < 2 {
		t.Fatalf("not enough day groups: %d weekday, %d weekend", len(weekdayPts), len(weekendPts))
	}
	within, err := stats.Peacock2DFast(weekdayPts[0], weekdayPts[1])
	if err != nil {
		t.Fatal(err)
	}
	cross, err := stats.Peacock2DFast(weekdayPts[0], weekendPts[0])
	if err != nil {
		t.Fatal(err)
	}
	if within >= cross {
		t.Errorf("weekday-weekday D=%v should be < weekday-weekend D=%v", within, cross)
	}
}

func TestGenerateSurge(t *testing.T) {
	cfg := smallConfig(5)
	cfg.Surges = []Surge{{
		Day: 2, HourStart: 19, HourEnd: 21,
		Center: geo.Pt(2800, 2800), Sigma: 50, Trips: 150,
	}}
	trips, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count destinations near the surge centre on day 2 evening.
	near := 0
	for _, tr := range trips {
		if tr.StartTime.Day() == 12 && tr.StartTime.Hour() >= 19 && // May 10 + 2
			tr.End.Dist(geo.Pt(2800, 2800)) < 200 {
			near++
		}
	}
	if near < 100 {
		t.Errorf("only %d surge trips near centre, want >= 100", near)
	}
}

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative days", func(c *Config) { c.Days = -1 }},
		{"negative trips", func(c *Config) { c.TripsWeekday = -5 }},
		{"zero bikes", func(c *Config) { c.Bikes = -2 }},
		{"surge day out of range", func(c *Config) {
			c.Surges = []Surge{{Day: 99, HourStart: 1, HourEnd: 2}}
		}},
		{"surge hours inverted", func(c *Config) {
			c.Surges = []Surge{{Day: 0, HourStart: 5, HourEnd: 2}}
		}},
		{"surge negative trips", func(c *Config) {
			c.Surges = []Surge{{Day: 0, HourStart: 1, HourEnd: 2, Trips: -1}}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig(1)
			tt.mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestCSVRoundTrip(t *testing.T) {
	trips := generateSmall(t, 6)[:50]
	var buf bytes.Buffer
	if err := WriteCSV(&buf, trips); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	projector := geo.NewProjector(geo.LatLng{Lat: 39.9042, Lng: 116.4074})
	got, err := ReadCSV(&buf, projector)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got) != len(trips) {
		t.Fatalf("round trip %d trips, want %d", len(got), len(trips))
	}
	for i := range trips {
		if got[i].OrderID != trips[i].OrderID ||
			got[i].BikeID != trips[i].BikeID ||
			got[i].StartGeohash != trips[i].StartGeohash ||
			got[i].EndGeohash != trips[i].EndGeohash ||
			!got[i].StartTime.Equal(trips[i].StartTime) {
			t.Fatalf("trip %d mismatch: %+v vs %+v", i, got[i], trips[i])
		}
		// Planar positions decode to within a precision-7 geohash cell.
		if got[i].End.Dist(trips[i].End) > 200 {
			t.Fatalf("trip %d end drifted %.1f m", i, got[i].End.Dist(trips[i].End))
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name    string
		input   string
		wantHdr bool
	}{
		{"wrong header", "a,b,c,d,e,f,g\n", true},
		{"bad orderid", strings.Join(csvHeader, ",") + "\nxx,1,1,1,2017-05-10 00:00:00,wx4g0bm,wx4g0bm\n", false},
		{"bad time", strings.Join(csvHeader, ",") + "\n1,1,1,1,not-a-time,wx4g0bm,wx4g0bm\n", false},
		{"bad geohash", strings.Join(csvHeader, ",") + "\n1,1,1,1,2017-05-10 00:00:00,IIIIIII,wx4g0bm\n", false},
	}
	projector := geo.NewProjector(geo.LatLng{Lat: 39.9, Lng: 116.4})
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tt.input), projector)
			if err == nil {
				t.Fatal("want error")
			}
			if tt.wantHdr && !errors.Is(err, ErrBadHeader) {
				t.Errorf("want ErrBadHeader, got %v", err)
			}
		})
	}
}

func TestReadCSVNilProjector(t *testing.T) {
	input := strings.Join(csvHeader, ",") + "\n1,2,3,1,2017-05-10 08:30:00,wx4g0bm,wx4g0bn\n"
	got, err := ReadCSV(strings.NewReader(input), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Start != (geo.Point{}) {
		t.Errorf("nil projector should leave planar coords zero: %+v", got)
	}
}

func TestHourlySeries(t *testing.T) {
	base := time.Date(2017, 5, 10, 0, 0, 0, 0, time.UTC)
	trips := []Trip{
		{StartTime: base.Add(30 * time.Minute)},
		{StartTime: base.Add(90 * time.Minute)},
		{StartTime: base.Add(91 * time.Minute)},
		{StartTime: base.Add(-time.Hour)},      // before window
		{StartTime: base.Add(100 * time.Hour)}, // after window
	}
	series := HourlySeries(trips, base, 3)
	want := []float64{1, 2, 0}
	for i := range want {
		if series[i] != want[i] {
			t.Errorf("series[%d]=%v, want %v", i, series[i], want[i])
		}
	}
}

func TestSplitByDayOrdering(t *testing.T) {
	base := time.Date(2017, 5, 10, 12, 0, 0, 0, time.UTC)
	trips := []Trip{
		{OrderID: 3, StartTime: base.AddDate(0, 0, 2)},
		{OrderID: 1, StartTime: base},
		{OrderID: 2, StartTime: base.AddDate(0, 0, 1)},
		{OrderID: 4, StartTime: base.AddDate(0, 0, 2).Add(time.Hour)},
	}
	days, byDay := SplitByDay(trips)
	if len(days) != 3 {
		t.Fatalf("got %d days, want 3", len(days))
	}
	for i := 1; i < len(days); i++ {
		if days[i].Before(days[i-1]) {
			t.Fatal("days not sorted")
		}
	}
	if len(byDay[2]) != 2 {
		t.Errorf("last day has %d trips, want 2", len(byDay[2]))
	}
}

func TestEndStartPoints(t *testing.T) {
	trips := []Trip{
		{Start: geo.Pt(1, 2), End: geo.Pt(3, 4)},
		{Start: geo.Pt(5, 6), End: geo.Pt(7, 8)},
	}
	ends := EndPoints(trips)
	starts := StartPoints(trips)
	if ends[1] != geo.Pt(7, 8) || starts[0] != geo.Pt(1, 2) {
		t.Error("point extraction wrong")
	}
}

func TestTripWeekend(t *testing.T) {
	sat := Trip{StartTime: time.Date(2017, 5, 13, 10, 0, 0, 0, time.UTC)}
	wed := Trip{StartTime: time.Date(2017, 5, 10, 10, 0, 0, 0, time.UTC)}
	if !sat.Weekend() || wed.Weekend() {
		t.Error("Weekend() wrong")
	}
}

func TestPOIKindString(t *testing.T) {
	if Office.String() != "office" || POIKind(0).String() != "unknown" {
		t.Error("POIKind.String wrong")
	}
}

func TestGenerateZeroDays(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Days = -0 // zero => default 14; use explicit negative already covered
	cfg.Days = 1
	trips, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(trips) == 0 {
		t.Error("1 day should still generate trips")
	}
}

func TestGenerateWithCustomPOIs(t *testing.T) {
	cfg := smallConfig(31)
	cfg.POIs = []POI{
		{Name: "only-office", Kind: Office, Loc: geo.Pt(500, 500), Sigma: 30},
		{Name: "only-home", Kind: Residential, Loc: geo.Pt(2500, 2500), Sigma: 30},
	}
	trips, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every destination must cluster near one of the two POIs.
	for _, tr := range trips {
		dOffice := tr.End.Dist(geo.Pt(500, 500))
		dHome := tr.End.Dist(geo.Pt(2500, 2500))
		if dOffice > 250 && dHome > 250 {
			t.Fatalf("destination %v far from both POIs", tr.End)
		}
	}
}

func TestGenerateBikeReuse(t *testing.T) {
	// Bikes must be reused across trips (the tier-2 energy model depends
	// on per-bike trip chains).
	trips := generateSmall(t, 32)
	perBike := map[int64]int{}
	for _, tr := range trips {
		perBike[tr.BikeID]++
	}
	reused := 0
	for _, n := range perBike {
		if n > 1 {
			reused++
		}
	}
	if reused < len(perBike)/2 {
		t.Errorf("only %d of %d bikes reused", reused, len(perBike))
	}
}

func TestGenerateMorningFlowsTowardOffices(t *testing.T) {
	cfg := smallConfig(33)
	cfg.Days = 5
	cfg.TripsWeekday = 2000
	trips, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgD := cfg
	cfgD.applyDefaults()
	var officeLocs, homeLocs []geo.Point
	for _, poi := range cfgD.POIs {
		switch poi.Kind {
		case Office:
			officeLocs = append(officeLocs, poi.Loc)
		case Residential:
			homeLocs = append(homeLocs, poi.Loc)
		}
	}
	nearer := func(p geo.Point, a, b []geo.Point) bool {
		_, da := geo.Nearest(p, a)
		_, db := geo.Nearest(p, b)
		return da < db
	}
	officeBound, homeBound := 0, 0
	for _, tr := range trips {
		if tr.Weekend() || tr.StartTime.Hour() < 7 || tr.StartTime.Hour() > 9 {
			continue
		}
		if nearer(tr.End, officeLocs, homeLocs) {
			officeBound++
		} else {
			homeBound++
		}
	}
	if officeBound <= homeBound {
		t.Errorf("morning rush: %d office-bound vs %d home-bound; commute structure missing",
			officeBound, homeBound)
	}
}
