package dataset

import (
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
)

// The differential matrix: every input is parsed by sequential ReadCSV
// and by the streaming scanner at several worker counts and chunk sizes
// (including sizes small enough to force chunk boundaries mid-record and
// mid-quoted-field), with and without a projector. Both codecs must
// agree: same error-or-not, and bit-identical trips on success.

var diffWorkers = []int{1, 2, 4, 7}
var diffChunks = []int{3, 7, 53, 1 << 12, 1 << 20}

func diffCodecs(t *testing.T, input string) {
	t.Helper()
	projectors := []*geo.Projector{nil, geo.NewProjector(geo.LatLng{Lat: 39.9, Lng: 116.4})}
	for pi, projector := range projectors {
		want, wantErr := ReadCSV(strings.NewReader(input), projector)
		for _, workers := range diffWorkers {
			for _, chunk := range diffChunks {
				opts := ScanOptions{ChunkSize: chunk, Workers: workers}
				got, gotErr := ReadCSVStreaming(strings.NewReader(input), projector, opts)
				if (wantErr != nil) != (gotErr != nil) {
					t.Fatalf("projector=%d workers=%d chunk=%d: ReadCSV err=%v, streaming err=%v\ninput: %q",
						pi, workers, chunk, wantErr, gotErr, input)
				}
				if wantErr != nil {
					continue
				}
				if len(got) != len(want) {
					t.Fatalf("projector=%d workers=%d chunk=%d: %d trips, want %d\ninput: %q",
						pi, workers, chunk, len(got), len(want), input)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("projector=%d workers=%d chunk=%d: trip %d = %+v, want %+v",
							pi, workers, chunk, i, got[i], want[i])
					}
				}
			}
		}
	}
}

const goodRow = "1,2,3,1,2017-05-10 08:30:00,wx4g0bm,wx4g0bn\n"

func TestStreamingMatchesReadCSVEdgeCases(t *testing.T) {
	hdr := strings.Join(csvHeader, ",")
	cases := map[string]string{
		"empty file":              "",
		"header only":             hdr + "\n",
		"header only no newline":  hdr,
		"header crlf only":        hdr + "\r\n",
		"one row":                 hdr + "\n" + goodRow,
		"no trailing newline":     hdr + "\n" + strings.TrimSuffix(goodRow, "\n"),
		"crlf endings":            hdr + "\r\n" + strings.ReplaceAll(goodRow, "\n", "\r\n") + "2,2,3,2,2017-05-11 09:00:00,wx4g0bm,wx4g0bn\r\n",
		"crlf no trailing":        hdr + "\r\n1,2,3,1,2017-05-10 08:30:00,wx4g0bm,wx4g0bn\r",
		"blank lines before hdr":  "\n\r\n" + hdr + "\n" + goodRow,
		"blank lines between":     hdr + "\n\n" + goodRow + "\r\n\n" + goodRow,
		"trailing blank lines":    hdr + "\n" + goodRow + "\n\n",
		"one digit hour":          hdr + "\n1,2,3,1,2017-05-10 8:30:00,wx4g0bm,wx4g0bn\n",
		"quoted geohash":          hdr + "\n1,2,3,1,2017-05-10 08:30:00,\"wx4g0bm\",wx4g0bn\n",
		"quoted comma":            hdr + "\n1,2,3,1,2017-05-10 08:30:00,\"wx,bad\",wx4g0bn\n",
		"quoted newline":          hdr + "\n1,2,3,1,2017-05-10 08:30:00,\"wx\n4\",wx4g0bn\n",
		"quoted crlf":             hdr + "\n1,2,3,1,2017-05-10 08:30:00,\"wx\r\n4\",wx4g0bn\n",
		"quoted escaped quote":    hdr + "\n1,2,3,1,2017-05-10 08:30:00,\"wx\"\"4\",wx4g0bn\n",
		"quoted header":           "\"orderid\"," + strings.Join(csvHeader[1:], ",") + "\n" + goodRow,
		"lone cr in field":        hdr + "\n1,2,3,1,2017-05-10 08:30:00,wx\r4,wx4g0bn\n",
		"trailing cr at eof":      hdr + "\n" + strings.TrimSuffix(goodRow, "\n") + "\r",
		"wrong field count":       hdr + "\n1,2,3\n",
		"too many fields":         hdr + "\n" + strings.TrimSuffix(goodRow, "\n") + ",extra\n",
		"bad int":                 hdr + "\n1,2,x,1,2017-05-10 08:30:00,wx4g0bm,wx4g0bn\n",
		"int overflow":            hdr + "\n99999999999999999999,2,3,1,2017-05-10 08:30:00,wx4g0bm,wx4g0bn\n",
		"negative ids":            hdr + "\n-1,-2,-3,-1,2017-05-10 08:30:00,wx4g0bm,wx4g0bn\n",
		"plus sign ids":           hdr + "\n+1,+2,+3,+1,2017-05-10 08:30:00,wx4g0bm,wx4g0bn\n",
		"bad time feb30":          hdr + "\n1,2,3,1,2017-02-30 08:30:00,wx4g0bm,wx4g0bn\n",
		"bad time month13":        hdr + "\n1,2,3,1,2017-13-10 08:30:00,wx4g0bm,wx4g0bn\n",
		"bad time short":          hdr + "\n1,2,3,1,2017-05-10 08:30,wx4g0bm,wx4g0bn\n",
		"bad time trailing":       hdr + "\n1,2,3,1,2017-05-10 08:30:00x,wx4g0bm,wx4g0bn\n",
		"leap day ok":             hdr + "\n1,2,3,1,2016-02-29 23:59:59,wx4g0bm,wx4g0bn\n",
		"bad geohash":             hdr + "\n1,2,3,1,2017-05-10 08:30:00,IIII,wx4g0bn\n",
		"empty geohash":           hdr + "\n1,2,3,1,2017-05-10 08:30:00,,wx4g0bn\n",
		"bare quote":              hdr + "\n1,2,3,1,2017-05-10 08:30:00,wx\"4,wx4g0bn\n",
		"unterminated quote":      hdr + "\n1,2,3,1,2017-05-10 08:30:00,\"wx4,wx4g0bn\n",
		"quote then junk":         hdr + "\n1,2,3,1,2017-05-10 08:30:00,\"wx4\"j,wx4g0bn\n",
		"bad header":              "orderid,userid\n" + goodRow,
		"wrong header name":       "orderidx," + strings.Join(csvHeader[1:], ",") + "\n" + goodRow,
		"header extra column":     hdr + ",extra\n" + goodRow,
		"garbage":                 "\x00\xff\xfe,,,\"\n\r",
		"many rows tiny chunks":   hdr + "\n" + strings.Repeat(goodRow, 40),
		"error after many rows":   hdr + "\n" + strings.Repeat(goodRow, 17) + "bad,row\n",
		"blank then error":        hdr + "\n\n\nbad,row\n",
		"space padded fields":     hdr + "\n 1,2,3,1,2017-05-10 08:30:00,wx4g0bm,wx4g0bn\n",
		"empty last field":        hdr + "\n1,2,3,1,2017-05-10 08:30:00,wx4g0bm,\n",
		"quoted row then normal":  hdr + "\n1,2,3,1,2017-05-10 08:30:00,\"wx4g0bm\",wx4g0bn\n" + goodRow,
		"min int64":               hdr + "\n-9223372036854775808,2,3,1,2017-05-10 08:30:00,wx4g0bm,wx4g0bn\n",
		"int64 overflow by one":   hdr + "\n9223372036854775808,2,3,1,2017-05-10 08:30:00,wx4g0bm,wx4g0bn\n",
		"underscore int rejected": hdr + "\n1_0,2,3,1,2017-05-10 08:30:00,wx4g0bm,wx4g0bn\n",
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) { diffCodecs(t, input) })
	}
}

func TestStreamingMatchesReadCSVGenerated(t *testing.T) {
	trips, err := Generate(Config{Days: 3, Seed: 11, TripsWeekday: 120, TripsWeekend: 80, Bikes: 40})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, trips); err != nil {
		t.Fatal(err)
	}
	diffCodecs(t, sb.String())
}

// TestReadCSVErrorLineNumbers is the satellite regression test: both
// codecs must report the 1-based file line of a broken record, with the
// header on line 1, even after blank lines and multi-line quoted rows.
func TestReadCSVErrorLineNumbers(t *testing.T) {
	hdr := strings.Join(csvHeader, ",")
	cases := []struct {
		name  string
		input string
		line  int
	}{
		{"first data row", hdr + "\nbad,row\n", 2},
		{"after good row", hdr + "\n" + goodRow + "1,2,x,1,2017-05-10 08:30:00,wx4g0bm,wx4g0bn\n", 3},
		{"after blank lines", hdr + "\n\n\n" + goodRow + "\nbad,row\n", 6},
		{"after multiline quoted", hdr + "\n1,2,3,1,2017-05-10 08:30:00,\"wx\n4\",wx4g0bn\nbad,row\n", 4},
		{"bad time row", hdr + "\n" + goodRow + goodRow + "1,2,3,1,2017-05-99 08:30:00,wx4g0bm,wx4g0bn\n", 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tc.input), nil)
			if err == nil {
				t.Fatalf("ReadCSV accepted %q", tc.input)
			}
			if want := fmt.Sprintf("line %d", tc.line); !strings.Contains(err.Error(), want) {
				t.Fatalf("ReadCSV error %q does not name %q", err, want)
			}
			_, err = ReadCSVStreaming(strings.NewReader(tc.input), nil, ScanOptions{ChunkSize: 16, Workers: 3})
			if err == nil {
				t.Fatalf("streaming accepted %q", tc.input)
			}
			var rowErr *RowError
			if errors.As(err, &rowErr) {
				if rowErr.Line != tc.line {
					t.Fatalf("streaming reported line %d, want %d (err %v)", rowErr.Line, tc.line, err)
				}
			} else if want := fmt.Sprintf("line %d", tc.line); !strings.Contains(err.Error(), want) {
				t.Fatalf("streaming error %q does not name %q", err, want)
			}
		})
	}
}

// TestScanSummaryMatchesMaterialized pins the tentpole reductions to
// their materialised counterparts, bit for bit: Center to GeohashCenter,
// EndBounds to geo.Bound over the projected end points, and the
// ScanEndPoints stream to EndPoints(ProjectTrips(...)).
func TestScanSummaryMatchesMaterialized(t *testing.T) {
	trips, err := Generate(Config{Days: 2, Seed: 5, TripsWeekday: 150, TripsWeekend: 100, Bikes: 30})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, trips); err != nil {
		t.Fatal(err)
	}
	input := sb.String()

	raw, err := ReadCSV(strings.NewReader(input), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantCenter, err := GeohashCenter(raw)
	if err != nil {
		t.Fatal(err)
	}
	projector := geo.NewProjector(wantCenter)
	if err := ProjectTrips(raw, projector); err != nil {
		t.Fatal(err)
	}
	ends := EndPoints(raw)
	wantBox := geo.Bound(ends)

	for _, workers := range diffWorkers {
		opts := ScanOptions{ChunkSize: 97, Workers: workers}
		sum, err := ScanSummarize(strings.NewReader(input), opts)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Trips != int64(len(raw)) {
			t.Fatalf("workers=%d: summary counted %d trips, want %d", workers, sum.Trips, len(raw))
		}
		center, err := sum.Center()
		if err != nil {
			t.Fatal(err)
		}
		if center != wantCenter {
			t.Fatalf("workers=%d: centre %v, want %v", workers, center, wantCenter)
		}
		box, ok := sum.EndBounds(projector)
		if !ok {
			t.Fatal("EndBounds reported no end geohashes")
		}
		if box != wantBox {
			t.Fatalf("workers=%d: end bounds %v, want %v", workers, box, wantBox)
		}
		var got []geo.Point
		n, err := ScanEndPoints(strings.NewReader(input), projector, opts, func(pts []geo.Point) error {
			got = append(got, pts...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(len(ends)) || len(got) != len(ends) {
			t.Fatalf("workers=%d: streamed %d/%d end points, want %d", workers, n, len(got), len(ends))
		}
		for i := range ends {
			if got[i] != ends[i] {
				t.Fatalf("workers=%d: end point %d = %v, want %v", workers, i, got[i], ends[i])
			}
		}
	}
}

// TestStreamingDemandMatchesAggregate builds a demand grid through the
// streaming accumulator — never materialising the point slice — and
// requires bit-identity with core.AggregateDemand over the materialised
// points, at every worker count.
func TestStreamingDemandMatchesAggregate(t *testing.T) {
	trips, err := Generate(Config{Days: 2, Seed: 9, TripsWeekday: 200, TripsWeekend: 140, Bikes: 40})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, trips); err != nil {
		t.Fatal(err)
	}
	input := sb.String()

	raw, err := ReadCSV(strings.NewReader(input), nil)
	if err != nil {
		t.Fatal(err)
	}
	center, err := GeohashCenter(raw)
	if err != nil {
		t.Fatal(err)
	}
	projector := geo.NewProjector(center)
	if err := ProjectTrips(raw, projector); err != nil {
		t.Fatal(err)
	}
	const cell = 100.0
	want, err := core.AggregateDemand(EndPoints(raw), cell)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range diffWorkers {
		opts := ScanOptions{ChunkSize: 211, Workers: workers}
		sum, err := ScanSummarize(strings.NewReader(input), opts)
		if err != nil {
			t.Fatal(err)
		}
		scanCenter, err := sum.Center()
		if err != nil {
			t.Fatal(err)
		}
		if scanCenter != center {
			t.Fatalf("workers=%d: centre %v, want %v", workers, scanCenter, center)
		}
		box, ok := sum.EndBounds(projector)
		if !ok {
			t.Fatal("no end bounds")
		}
		acc, err := core.NewDemandAccumulator(box, cell)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ScanEndPoints(strings.NewReader(input), projector, opts, func(pts []geo.Point) error {
			acc.AddAll(pts)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		got, err := acc.Demands()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d demand cells, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: demand %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestCSVWriterMatchesEncodingCSV pins the scratch-buffer writer to
// encoding/csv byte for byte, including fields that need quoting.
func TestCSVWriterMatchesEncodingCSV(t *testing.T) {
	ts := time.Date(2017, time.May, 10, 8, 30, 0, 0, time.UTC)
	trips := []Trip{
		{OrderID: 1, UserID: 2, BikeID: 3, BikeType: 1, StartTime: ts, StartGeohash: "wx4g0bm", EndGeohash: "wx4g0bn"},
		{OrderID: -4, UserID: 0, BikeID: 9_000_000_000, BikeType: 2, StartTime: ts, StartGeohash: `wx"4`, EndGeohash: "wx,4"},
		{OrderID: 5, UserID: 6, BikeID: 7, BikeType: 1, StartTime: ts, StartGeohash: "a\nb", EndGeohash: "a\rb"},
		{OrderID: 8, UserID: 9, BikeID: 10, BikeType: 1, StartTime: ts, StartGeohash: " lead", EndGeohash: "\ttab"},
		{OrderID: 11, UserID: 12, BikeID: 13, BikeType: 1, StartTime: ts, StartGeohash: `\.`, EndGeohash: ""},
		{OrderID: 14, UserID: 15, BikeID: 16, BikeType: 1, StartTime: ts, StartGeohash: "mid space", EndGeohash: "trail "},
	}
	var got bytes.Buffer
	if err := WriteCSV(&got, trips); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	ref := csv.NewWriter(&want)
	if err := ref.Write(csvHeader); err != nil {
		t.Fatal(err)
	}
	for _, tr := range trips {
		rec := []string{
			fmt.Sprint(tr.OrderID), fmt.Sprint(tr.UserID), fmt.Sprint(tr.BikeID),
			fmt.Sprint(tr.BikeType), tr.StartTime.Format(csvTimeLayout),
			tr.StartGeohash, tr.EndGeohash,
		}
		if err := ref.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	ref.Flush()
	if ref.Error() != nil {
		t.Fatal(ref.Error())
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("writer output diverged:\ngot:  %q\nwant: %q", got.Bytes(), want.Bytes())
	}
	// And the quoted output must round-trip through both readers.
	diffCodecs(t, got.String())
}

// TestCSVWriterAllocBudget is the satellite alloc-budget test: once the
// internal buffer is warm, writing a batch of trips performs no
// per-trip allocations (the old implementation allocated seven strings
// per trip).
func TestCSVWriterAllocBudget(t *testing.T) {
	trips, err := Generate(Config{Days: 1, Seed: 3, TripsWeekday: 500, TripsWeekend: 300, Bikes: 20})
	if err != nil {
		t.Fatal(err)
	}
	cw := NewCSVWriter(io.Discard)
	if err := cw.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteTrips(trips); err != nil { // warm the buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := cw.WriteTrips(trips); err != nil {
			t.Fatal(err)
		}
		if err := cw.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("WriteTrips allocated %.1f times for %d trips, want <= 1", allocs, len(trips))
	}
}

// TestIngestCSVAllocBudget: the scanner's allocation count must be O(1)
// in the row count — buffers, not per-row garbage. 2000 rows through
// encoding/csv cost >4000 allocations; the budget here is 120 total.
func TestIngestCSVAllocBudget(t *testing.T) {
	trips, err := Generate(Config{Days: 1, Seed: 13, TripsWeekday: 2000, TripsWeekend: 1200, Bikes: 50})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, trips); err != nil {
		t.Fatal(err)
	}
	data := []byte(sb.String())
	opts := ScanOptions{Workers: 1, DecodeGeohashes: true}
	rows := 0
	allocs := testing.AllocsPerRun(3, func() {
		rows = 0
		if err := IngestCSV(bytes.NewReader(data), opts, func(batch []RawTrip) error {
			rows += len(batch)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
	if rows != len(trips) {
		t.Fatalf("scanned %d rows, want %d", rows, len(trips))
	}
	if allocs > 120 {
		t.Fatalf("IngestCSV allocated %.0f times for %d rows — not O(1)", allocs, rows)
	}
}

// TestGenerateStreamMatchesGenerate: the per-day streaming generator
// must emit exactly Generate's trips, already globally sorted.
func TestGenerateStreamMatchesGenerate(t *testing.T) {
	cfg := Config{
		Days: 4, Seed: 7, TripsWeekday: 250, TripsWeekend: 150, Bikes: 60,
		Surges: []Surge{{Day: 1, HourStart: 18, HourEnd: 20, Center: geo.Pt(2500, 2500), Trips: 80}},
	}
	want, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []Trip
	days := 0
	err = GenerateStream(cfg, func(day int, trips []Trip) error {
		if day != days {
			t.Fatalf("day %d emitted out of order (want %d)", day, days)
		}
		days++
		got = append(got, trips...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if days != cfg.Days {
		t.Fatalf("emitted %d days, want %d", days, cfg.Days)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d trips, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trip %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// The concatenation must already be globally sorted: re-sorting
	// with the generator's comparator must be a no-op.
	sorted := append([]Trip(nil), got...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if !sorted[i].StartTime.Equal(sorted[j].StartTime) {
			return sorted[i].StartTime.Before(sorted[j].StartTime)
		}
		return sorted[i].OrderID < sorted[j].OrderID
	})
	for i := range sorted {
		if got[i] != sorted[i] {
			t.Fatalf("streamed output not globally sorted at %d", i)
		}
	}
}

// TestGenerateStreamEmitError: an emit error aborts generation.
func TestGenerateStreamEmitError(t *testing.T) {
	sentinel := errors.New("stop")
	calls := 0
	err := GenerateStream(Config{Days: 3, Seed: 1, TripsWeekday: 50, TripsWeekend: 30, Bikes: 10},
		func(int, []Trip) error {
			calls++
			return sentinel
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after error, want 1", calls)
	}
}

// TestIngestCSVEmitError: an emit error aborts the scan and surfaces
// verbatim.
func TestIngestCSVEmitError(t *testing.T) {
	hdr := strings.Join(csvHeader, ",")
	input := hdr + "\n" + strings.Repeat(goodRow, 50)
	sentinel := errors.New("stop ingest")
	err := IngestCSV(strings.NewReader(input), ScanOptions{ChunkSize: 64, Workers: 2},
		func([]RawTrip) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

// TestIngestCSVReaderError: mid-stream I/O failures surface.
func TestIngestCSVReaderError(t *testing.T) {
	hdr := strings.Join(csvHeader, ",")
	input := hdr + "\n" + strings.Repeat(goodRow, 50)
	boom := errors.New("disk on fire")
	r := io.MultiReader(strings.NewReader(input), errReader{boom})
	err := IngestCSV(r, ScanOptions{ChunkSize: 128, Workers: 2}, func([]RawTrip) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped reader error", err)
	}
}

type errReader struct{ err error }

func (r errReader) Read([]byte) (int, error) { return 0, r.err }

// TestScanRecordLargerThanChunk: a record longer than the chunk grows
// the buffer transparently rather than failing or splitting.
func TestScanRecordLargerThanChunk(t *testing.T) {
	hdr := strings.Join(csvHeader, ",")
	long := "1,2,3,1,2017-05-10 08:30:00,wx4g0bm," + strings.Repeat("w", 4096) + "\n"
	input := hdr + "\n" + long + goodRow
	want, err := ReadCSV(strings.NewReader(input), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVStreaming(strings.NewReader(input), nil, ScanOptions{ChunkSize: 32, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d trips, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trip %d diverged", i)
		}
	}
}
