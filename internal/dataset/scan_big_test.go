package dataset

import (
	"bufio"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
)

// TestIngestBoundedMemory is the Mobike-scale acceptance check: a
// multi-million-row CSV is aggregated into a demand grid through the
// two-pass streaming pipeline without ever materializing a []Trip, and
// the heap stays O(chunk x workers) rather than O(rows). The row count
// defaults to 2M so plain `go test ./...` stays fast; set
// ESHARING_INGEST_ROWS=10000000 to reproduce the 10M-row run recorded
// in EXPERIMENTS.md.
func TestIngestBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-row fixture; skipped with -short")
	}
	rows := 2_000_000
	if s := os.Getenv("ESHARING_INGEST_ROWS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad ESHARING_INGEST_ROWS=%q", s)
		}
		rows = n
	}
	path := filepath.Join(t.TempDir(), "big.csv")
	writeBigFixture(t, path, rows)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	opts := ScanOptions{}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := ScanSummarize(f, opts)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trips != int64(rows) {
		t.Fatalf("summarized %d rows, want %d", sum.Trips, rows)
	}
	center, err := sum.Center()
	if err != nil {
		t.Fatal(err)
	}
	projector := geo.NewProjector(center)
	box, ok := sum.EndBounds(projector)
	if !ok {
		t.Fatal("no end bounds")
	}
	acc, err := core.NewDemandAccumulator(box, 100)
	if err != nil {
		t.Fatal(err)
	}
	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ScanEndPoints(f, projector, opts, func(pts []geo.Point) error {
		acc.AddAll(pts)
		return nil
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(rows) {
		t.Fatalf("aggregated %d rows, want %d", n, rows)
	}

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	demands, err := acc.Demands()
	if err != nil {
		t.Fatal(err)
	}
	if len(demands) == 0 {
		t.Fatal("empty demand grid")
	}
	var arrivals float64
	for _, d := range demands {
		arrivals += d.Arrivals
	}
	if arrivals != float64(rows) {
		t.Fatalf("demand grid holds %.0f arrivals, want %d", arrivals, rows)
	}

	// Materializing []Trip for this fixture would allocate >150 bytes per
	// row (plus two geohash strings); the streaming pipeline must stay
	// independent of the row count. TotalAlloc covers everything the two
	// passes allocated, even if it was collected mid-run.
	allocated := after.TotalAlloc - before.TotalAlloc
	const allocBudget = 128 << 20
	if allocated > allocBudget {
		t.Errorf("streaming passes allocated %d MiB total, budget %d MiB",
			allocated>>20, allocBudget>>20)
	}
	if after.HeapAlloc > 256<<20 {
		t.Errorf("heap is %d MiB after streaming aggregation, want < 256 MiB",
			after.HeapAlloc>>20)
	}
	t.Logf("rows=%d demandCells=%d totalAlloc=%dMiB heap=%dMiB",
		rows, len(demands), allocated>>20, after.HeapAlloc>>20)
}

// writeBigFixture streams a synthetic Mobike CSV of the given row count
// to disk, varying trips over a grid of real geohashes around Beijing
// without holding more than one record in memory.
func writeBigFixture(t *testing.T, path string, rows int) {
	t.Helper()
	const side = 40
	hashes := make([]string, 0, side*side)
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			h, err := geo.EncodeGeohash(geo.LatLng{
				Lat: 39.8 + 0.005*float64(i),
				Lng: 116.3 + 0.005*float64(j),
			}, 7)
			if err != nil {
				t.Fatal(err)
			}
			hashes = append(hashes, h)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	cw := NewCSVWriter(bw)
	if err := cw.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2017, 5, 10, 0, 0, 0, 0, time.UTC)
	trip := make([]Trip, 1)
	for i := 0; i < rows; i++ {
		trip[0] = Trip{
			OrderID:      int64(i + 1),
			UserID:       int64(i%100_000 + 1),
			BikeID:       int64(i%50_000 + 1),
			BikeType:     1 + i%2,
			StartTime:    base.Add(time.Duration(i%86_400) * time.Second),
			StartGeohash: hashes[i%len(hashes)],
			EndGeohash:   hashes[(i*7+3)%len(hashes)],
		}
		if err := cw.WriteTrips(trip); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fixture: %d rows, %d MiB", rows, info.Size()>>20)
}
