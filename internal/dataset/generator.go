package dataset

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/stats"
)

// POIKind classifies a point of interest; destination preferences shift
// between kinds by hour and day type, reproducing the weekday/weekend
// structure of Table IV.
type POIKind int

// POI kinds.
const (
	Office POIKind = iota + 1
	Residential
	Subway
	University
	Park
	Recreation
)

// String implements fmt.Stringer.
func (k POIKind) String() string {
	switch k {
	case Office:
		return "office"
	case Residential:
		return "residential"
	case Subway:
		return "subway"
	case University:
		return "university"
	case Park:
		return "park"
	case Recreation:
		return "recreation"
	default:
		return "unknown"
	}
}

// POI is a point of interest with a Gaussian catchment of the given sigma.
type POI struct {
	Name  string
	Kind  POIKind
	Loc   geo.Point
	Sigma float64
}

// Surge injects extra demand at an unexpected location — the paper's
// "concert or sports game" scenario that breaks the historical
// distribution and triggers the KS test.
type Surge struct {
	// Day indexes into the generation window (0-based).
	Day int
	// HourStart..HourEnd (inclusive) bound the surge window.
	HourStart, HourEnd int
	// Center and Sigma shape the surge destination cluster.
	Center geo.Point
	Sigma  float64
	// Trips is the total extra demand.
	Trips int
}

// Config parameterises the synthetic generator.
type Config struct {
	// Origin anchors the planar projection (defaults to Beijing).
	Origin geo.LatLng
	// Box bounds the simulated field (defaults to 3x3 km at the origin,
	// the paper's experimental field).
	Box geo.BBox
	// Start is the first day of generation (defaults to 2017-05-10, the
	// Mobike dataset's first day).
	Start time.Time
	// Days is the number of days (defaults to 14).
	Days int
	// TripsWeekday and TripsWeekend set daily demand (defaults 2000/1400).
	TripsWeekday int
	TripsWeekend int
	// Bikes is the fleet size (defaults to 600).
	Bikes int
	// Seed drives all randomness.
	Seed uint64
	// POIs overrides the default city layout when non-empty.
	POIs []POI
	// Surges lists demand anomalies to inject.
	Surges []Surge
}

func (c *Config) applyDefaults() {
	if c.Origin == (geo.LatLng{}) {
		c.Origin = geo.LatLng{Lat: 39.9042, Lng: 116.4074} // Beijing
	}
	if c.Box == (geo.BBox{}) {
		c.Box = geo.Square(geo.Pt(0, 0), 3000)
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2017, time.May, 10, 0, 0, 0, 0, time.UTC)
	}
	if c.Days == 0 {
		c.Days = 14
	}
	if c.TripsWeekday == 0 {
		c.TripsWeekday = 2000
	}
	if c.TripsWeekend == 0 {
		c.TripsWeekend = 1400
	}
	if c.Bikes == 0 {
		c.Bikes = 600
	}
	if len(c.POIs) == 0 {
		c.POIs = DefaultPOIs(c.Box)
	}
}

func (c *Config) validate() error {
	switch {
	case c.Days < 0:
		return fmt.Errorf("dataset: days %d < 0", c.Days)
	case c.TripsWeekday < 0 || c.TripsWeekend < 0:
		return fmt.Errorf("dataset: negative daily trips")
	case c.Bikes < 1:
		return fmt.Errorf("dataset: bikes %d < 1", c.Bikes)
	}
	for i, s := range c.Surges {
		if s.Day < 0 || s.Day >= c.Days {
			return fmt.Errorf("dataset: surge %d day %d outside [0,%d)", i, s.Day, c.Days)
		}
		if s.HourStart < 0 || s.HourEnd > 23 || s.HourStart > s.HourEnd {
			return fmt.Errorf("dataset: surge %d hours [%d,%d] invalid", i, s.HourStart, s.HourEnd)
		}
		if s.Trips < 0 {
			return fmt.Errorf("dataset: surge %d trips %d < 0", i, s.Trips)
		}
	}
	return nil
}

// DefaultPOIs lays out a compact city inside box: offices and a subway in
// the centre-north, residential blocks south, a university west, and
// park/recreation east — mirroring the POI mix in Fig. 2.
func DefaultPOIs(box geo.BBox) []POI {
	w, h := box.Width(), box.Height()
	at := func(fx, fy float64) geo.Point {
		return geo.Pt(box.MinX+fx*w, box.MinY+fy*h)
	}
	return []POI{
		{Name: "cbd-north", Kind: Office, Loc: at(0.50, 0.72), Sigma: 0.05 * w},
		{Name: "cbd-east", Kind: Office, Loc: at(0.63, 0.60), Sigma: 0.05 * w},
		{Name: "subway-central", Kind: Subway, Loc: at(0.52, 0.55), Sigma: 0.03 * w},
		{Name: "subway-south", Kind: Subway, Loc: at(0.45, 0.25), Sigma: 0.03 * w},
		{Name: "residential-sw", Kind: Residential, Loc: at(0.25, 0.22), Sigma: 0.07 * w},
		{Name: "residential-se", Kind: Residential, Loc: at(0.68, 0.20), Sigma: 0.07 * w},
		{Name: "university-west", Kind: University, Loc: at(0.15, 0.60), Sigma: 0.05 * w},
		{Name: "park-east", Kind: Park, Loc: at(0.85, 0.70), Sigma: 0.06 * w},
		{Name: "recreation-ne", Kind: Recreation, Loc: at(0.80, 0.88), Sigma: 0.05 * w},
	}
}

// hourlyWeightWeekday peaks at the 8:00 and 18:00 rush hours.
var hourlyWeightWeekday = [24]float64{
	0.2, 0.1, 0.1, 0.1, 0.2, 0.5, 1.5, 3.5, 4.5, 2.5, 1.5, 1.8,
	2.2, 1.8, 1.5, 1.8, 2.5, 4.0, 4.8, 3.0, 2.0, 1.5, 0.8, 0.4,
}

// hourlyWeightWeekend is flatter with a midday bulge.
var hourlyWeightWeekend = [24]float64{
	0.3, 0.2, 0.1, 0.1, 0.1, 0.2, 0.5, 1.0, 1.8, 2.5, 3.2, 3.6,
	3.5, 3.4, 3.2, 3.0, 2.8, 2.6, 2.4, 2.2, 1.8, 1.2, 0.8, 0.5,
}

// destKindWeight returns the preference for arriving at a POI kind given
// day type and hour. Monday and Friday blend in a touch of weekend
// behaviour, reproducing Table IV's observation that they resemble each
// other more than the mid-week days.
func destKindWeight(kind POIKind, weekend bool, transition bool, hour int) float64 {
	var w float64
	if weekend {
		switch kind {
		case Park:
			w = 3.0
		case Recreation:
			w = 3.0
		case Residential:
			w = 1.6
		case Subway:
			w = 0.8
		case Office:
			w = 0.2
		case University:
			w = 0.4
		}
		return w
	}
	morning := hour >= 6 && hour <= 10
	evening := hour >= 16 && hour <= 21
	switch kind {
	case Office:
		w = 1.0
		if morning {
			w = 4.0
		}
		if evening {
			w = 0.4
		}
	case Subway:
		w = 1.5
		if evening {
			w = 3.0
		}
	case Residential:
		w = 1.0
		if evening {
			w = 4.0
		}
		if morning {
			w = 0.4
		}
	case University:
		w = 1.2
	case Park:
		w = 0.3
	case Recreation:
		w = 0.4
	}
	if transition {
		// Blend 20% of the weekend preference into Mon/Fri.
		var wk float64
		switch kind {
		case Park, Recreation:
			wk = 3.0
		case Residential:
			wk = 1.6
		case Subway:
			wk = 0.8
		case Office:
			wk = 0.2
		case University:
			wk = 0.4
		}
		w = 0.8*w + 0.2*wk
	}
	return w
}

// originKindWeight mirrors destKindWeight for trip origins (people leave
// home in the morning, leave work in the evening).
func originKindWeight(kind POIKind, weekend bool, hour int) float64 {
	if weekend {
		switch kind {
		case Residential:
			return 2.5
		case Subway:
			return 1.2
		case Park, Recreation:
			return 1.5
		default:
			return 0.6
		}
	}
	morning := hour >= 6 && hour <= 10
	evening := hour >= 16 && hour <= 21
	switch kind {
	case Residential:
		if morning {
			return 4.0
		}
		if evening {
			return 0.6
		}
		return 1.2
	case Office:
		if evening {
			return 4.0
		}
		if morning {
			return 0.3
		}
		return 1.0
	case Subway:
		return 2.0
	case University:
		return 1.0
	case Park, Recreation:
		return 0.4
	}
	return 0.5
}

// Generate produces a sorted, schema-complete synthetic trip log.
func Generate(cfg Config) ([]Trip, error) {
	var trips []Trip
	err := GenerateStream(cfg, func(_ int, day []Trip) error {
		trips = append(trips, day...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return trips, nil
}

// GenerateStream produces exactly the trips Generate would, one day at a
// time in order, so multi-GB fixtures can be written without holding the
// whole log: peak memory is one day of trips. The emitted slice is
// reused between days; copy to retain. Byte-identity with Generate holds
// because days are time-disjoint and (StartTime, OrderID) is a total
// order, so sorting each day independently and concatenating equals the
// global sort.
func GenerateStream(cfg Config, emit func(day int, trips []Trip) error) error {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return err
	}
	rng := stats.NewRNGStream(cfg.Seed, stats.StreamDataset)
	projector := geo.NewProjector(cfg.Origin)

	// Fleet state: bikes start scattered uniformly.
	bikePos := make([]geo.Point, cfg.Bikes)
	uniform := stats.UniformDist{Box: cfg.Box}
	for i := range bikePos {
		bikePos[i] = uniform.Sample(rng)
	}

	surgesByDay := map[int][]Surge{}
	for _, s := range cfg.Surges {
		surgesByDay[s.Day] = append(surgesByDay[s.Day], s)
	}

	var trips []Trip
	orderID := int64(1)
	for day := 0; day < cfg.Days; day++ {
		trips = trips[:0]
		date := cfg.Start.AddDate(0, 0, day)
		wd := date.Weekday()
		weekend := wd == time.Saturday || wd == time.Sunday
		transition := wd == time.Monday || wd == time.Friday
		dailyTrips := cfg.TripsWeekday
		profile := hourlyWeightWeekday
		if weekend {
			dailyTrips = cfg.TripsWeekend
			profile = hourlyWeightWeekend
		}
		var profileSum float64
		for _, w := range profile {
			profileSum += w
		}
		for hour := 0; hour < 24; hour++ {
			expected := float64(dailyTrips) * profile[hour] / profileSum
			n := stats.Poisson(rng, expected)
			for i := 0; i < n; i++ {
				t := genTrip(rng, cfg, projector, bikePos, date, hour, weekend, transition, orderID)
				trips = append(trips, t)
				orderID++
			}
		}
		for _, s := range surgesByDay[day] {
			surgeDist := clampedNormal{
				inner: stats.NormalDist{Center: s.Center, StdDev: nonZero(s.Sigma, 80)},
				box:   cfg.Box,
			}
			for i := 0; i < s.Trips; i++ {
				hour := s.HourStart + rng.IntN(s.HourEnd-s.HourStart+1)
				t := genTrip(rng, cfg, projector, bikePos, date, hour, weekend, transition, orderID)
				// Override the destination with the surge cluster.
				t.End = surgeDist.Sample(rng)
				t.EndGeohash = mustGeohash(projector, t.End)
				trips = append(trips, t)
				orderID++
			}
		}
		sort.Slice(trips, func(i, j int) bool {
			if !trips[i].StartTime.Equal(trips[j].StartTime) {
				return trips[i].StartTime.Before(trips[j].StartTime)
			}
			return trips[i].OrderID < trips[j].OrderID
		})
		if err := emit(day, trips); err != nil {
			return err
		}
	}
	return nil
}

func genTrip(
	rng *rand.Rand,
	cfg Config,
	projector *geo.Projector,
	bikePos []geo.Point,
	date time.Time,
	hour int,
	weekend, transition bool,
	orderID int64,
) Trip {
	start := samplePOIPoint(rng, cfg, true, weekend, transition, hour)
	end := samplePOIPoint(rng, cfg, false, weekend, transition, hour)

	// Assign a bike: pick the best of a small random sample near the
	// start (a cheap nearest-available approximation) and move it.
	bikeID := pickBike(rng, bikePos, start)
	bikePos[bikeID] = end

	ts := date.Add(time.Duration(hour)*time.Hour +
		time.Duration(rng.IntN(3600))*time.Second)
	return Trip{
		OrderID:      orderID,
		UserID:       int64(1 + rng.IntN(100000)),
		BikeID:       int64(bikeID + 1),
		BikeType:     1 + rng.IntN(2),
		StartTime:    ts,
		Start:        start,
		End:          end,
		StartGeohash: mustGeohash(projector, start),
		EndGeohash:   mustGeohash(projector, end),
	}
}

func samplePOIPoint(rng *rand.Rand, cfg Config, origin, weekend, transition bool, hour int) geo.Point {
	weights := make([]float64, len(cfg.POIs))
	for i, poi := range cfg.POIs {
		if origin {
			weights[i] = originKindWeight(poi.Kind, weekend, hour)
		} else {
			weights[i] = destKindWeight(poi.Kind, weekend, transition, hour)
		}
	}
	idx := stats.WeightedIndex(rng, weights)
	if idx < 0 {
		idx = rng.IntN(len(cfg.POIs))
	}
	poi := cfg.POIs[idx]
	p := geo.Pt(
		poi.Loc.X+poi.Sigma*rng.NormFloat64(),
		poi.Loc.Y+poi.Sigma*rng.NormFloat64(),
	)
	return cfg.Box.Clamp(p)
}

// pickBike samples up to 8 random bikes and returns the index of the one
// closest to start.
func pickBike(rng *rand.Rand, bikePos []geo.Point, start geo.Point) int {
	best := rng.IntN(len(bikePos))
	bestD := start.Dist2(bikePos[best])
	for i := 0; i < 7; i++ {
		cand := rng.IntN(len(bikePos))
		if d := start.Dist2(bikePos[cand]); d < bestD {
			best, bestD = cand, d
		}
	}
	return best
}

func mustGeohash(projector *geo.Projector, p geo.Point) string {
	h, err := geo.EncodeGeohash(projector.ToLatLng(p), 7)
	if err != nil {
		// Precision 7 is always valid; projection of in-box points cannot
		// leave the geohash domain.
		panic(fmt.Sprintf("dataset: geohash: %v", err))
	}
	return h
}

func nonZero(v, fallback float64) float64 {
	if v <= 0 {
		return fallback
	}
	return v
}

// clampedNormal wraps a NormalDist with box clamping for surges.
type clampedNormal struct {
	inner stats.NormalDist
	box   geo.BBox
}

func (c clampedNormal) Sample(rng *rand.Rand) geo.Point {
	return c.box.Clamp(c.inner.Sample(rng))
}
