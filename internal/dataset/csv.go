package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
	"unicode"
	"unicode/utf8"

	"repro/internal/geo"
)

// The Mobike Big Data Challenge CSV schema:
//
//	orderid,userid,bikeid,biketype,starttime,geohashed_start_loc,geohashed_end_loc
//
// starttime is formatted "2017-05-10 13:14:15". This codec round-trips
// that schema exactly so the real dataset can be dropped in when
// available.

// csvHeader is the canonical column list.
var csvHeader = []string{
	"orderid", "userid", "bikeid", "biketype", "starttime",
	"geohashed_start_loc", "geohashed_end_loc",
}

const csvTimeLayout = "2006-01-02 15:04:05"

// ErrBadHeader is returned when a CSV stream does not begin with the
// Mobike schema header.
var ErrBadHeader = errors.New("dataset: unexpected CSV header")

// WriteCSV writes trips in the Mobike schema. Output is byte-identical
// to encoding/csv's (the CSVWriter it delegates to replicates its
// quoting rules), without the seven per-trip strconv.Format* strings the
// previous implementation allocated.
func WriteCSV(w io.Writer, trips []Trip) error {
	cw := NewCSVWriter(w)
	if err := cw.WriteHeader(); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	if err := cw.WriteTrips(trips); err != nil {
		return err
	}
	return cw.Flush()
}

// CSVWriter streams trips in the Mobike schema through a reused append
// buffer: integers via strconv.AppendInt, the timestamp via
// Time.AppendFormat, geohashes quoted exactly as encoding/csv would
// (byte-identical output). Zero allocations per trip once the buffer is
// warm, so tripgen can generate multi-GB fixtures at disk speed.
type CSVWriter struct {
	w   io.Writer
	buf []byte
}

// csvFlushAt bounds the internal buffer: WriteTrips flushes whenever the
// buffer exceeds it, keeping memory O(1) in the trip count.
const csvFlushAt = 64 << 10

// NewCSVWriter returns a streaming writer. Call WriteHeader, then any
// number of WriteTrips, then Flush.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{w: w}
}

// WriteHeader writes the canonical Mobike column header.
func (cw *CSVWriter) WriteHeader() error {
	for i, col := range csvHeader {
		if i > 0 {
			cw.buf = append(cw.buf, ',')
		}
		cw.buf = appendCSVField(cw.buf, col)
	}
	cw.buf = append(cw.buf, '\n')
	return cw.maybeFlush()
}

// WriteTrips appends trips, flushing the internal buffer as it fills.
func (cw *CSVWriter) WriteTrips(trips []Trip) error {
	for i := range trips {
		t := &trips[i]
		cw.buf = strconv.AppendInt(cw.buf, t.OrderID, 10)
		cw.buf = append(cw.buf, ',')
		cw.buf = strconv.AppendInt(cw.buf, t.UserID, 10)
		cw.buf = append(cw.buf, ',')
		cw.buf = strconv.AppendInt(cw.buf, t.BikeID, 10)
		cw.buf = append(cw.buf, ',')
		cw.buf = strconv.AppendInt(cw.buf, int64(t.BikeType), 10)
		cw.buf = append(cw.buf, ',')
		cw.buf = t.StartTime.AppendFormat(cw.buf, csvTimeLayout)
		cw.buf = append(cw.buf, ',')
		cw.buf = appendCSVField(cw.buf, t.StartGeohash)
		cw.buf = append(cw.buf, ',')
		cw.buf = appendCSVField(cw.buf, t.EndGeohash)
		cw.buf = append(cw.buf, '\n')
		if len(cw.buf) > csvFlushAt {
			if err := cw.flush(); err != nil {
				return fmt.Errorf("write trip %d: %w", t.OrderID, err)
			}
		}
	}
	return nil
}

// Flush writes any buffered bytes through.
func (cw *CSVWriter) Flush() error { return cw.flush() }

func (cw *CSVWriter) maybeFlush() error {
	if len(cw.buf) > csvFlushAt {
		return cw.flush()
	}
	return nil
}

func (cw *CSVWriter) flush() error {
	if len(cw.buf) == 0 {
		return nil
	}
	_, err := cw.w.Write(cw.buf)
	cw.buf = cw.buf[:0]
	return err
}

// appendCSVField appends s, quoting exactly when encoding/csv's
// fieldNeedsQuotes would: on a comma, quote, CR or LF anywhere, a
// leading space rune, or the literal `\.`.
func appendCSVField(buf []byte, s string) []byte {
	if !csvFieldNeedsQuotes(s) {
		return append(buf, s...)
	}
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			buf = append(buf, '"', '"')
		} else {
			buf = append(buf, s[i])
		}
	}
	return append(buf, '"')
}

func csvFieldNeedsQuotes(s string) bool {
	if s == "" {
		return false
	}
	if s == `\.` {
		return true // encoding/csv guards Postgres's end-of-data marker
	}
	if strings.ContainsAny(s, ",\"\r\n") {
		return true
	}
	r, _ := utf8.DecodeRuneInString(s)
	return unicode.IsSpace(r)
}

// ReadCSV parses trips in the Mobike schema, projecting geohash centres
// into the plane of projector. A nil projector leaves planar coordinates
// zero.
func ReadCSV(r io.Reader, projector *geo.Projector) ([]Trip, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("%w: column %d is %q, want %q", ErrBadHeader, i, header[i], want)
		}
	}
	var trips []Trip
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			// csv.ParseError already carries the 1-based file line.
			return nil, fmt.Errorf("read: %w", err)
		}
		t, err := parseTrip(rec, projector)
		if err != nil {
			// FieldPos reports the 1-based file line the record started
			// on (the header is line 1), consistent with csv's own
			// ParseError positions — blank and multi-line rows no
			// longer skew the count.
			line, _ := cr.FieldPos(0)
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		trips = append(trips, t)
	}
	return trips, nil
}

func parseTrip(rec []string, projector *geo.Projector) (Trip, error) {
	var t Trip
	var err error
	if t.OrderID, err = strconv.ParseInt(rec[0], 10, 64); err != nil {
		return Trip{}, fmt.Errorf("orderid: %w", err)
	}
	if t.UserID, err = strconv.ParseInt(rec[1], 10, 64); err != nil {
		return Trip{}, fmt.Errorf("userid: %w", err)
	}
	if t.BikeID, err = strconv.ParseInt(rec[2], 10, 64); err != nil {
		return Trip{}, fmt.Errorf("bikeid: %w", err)
	}
	if t.BikeType, err = strconv.Atoi(rec[3]); err != nil {
		return Trip{}, fmt.Errorf("biketype: %w", err)
	}
	if t.StartTime, err = time.Parse(csvTimeLayout, rec[4]); err != nil {
		return Trip{}, fmt.Errorf("starttime: %w", err)
	}
	t.StartGeohash = rec[5]
	t.EndGeohash = rec[6]
	if projector != nil {
		start, _, _, err := geo.DecodeGeohash(t.StartGeohash)
		if err != nil {
			return Trip{}, fmt.Errorf("start geohash: %w", err)
		}
		end, _, _, err := geo.DecodeGeohash(t.EndGeohash)
		if err != nil {
			return Trip{}, fmt.Errorf("end geohash: %w", err)
		}
		t.Start = projector.ToPlane(start)
		t.End = projector.ToPlane(end)
	}
	return t, nil
}
