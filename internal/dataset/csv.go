package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/geo"
)

// The Mobike Big Data Challenge CSV schema:
//
//	orderid,userid,bikeid,biketype,starttime,geohashed_start_loc,geohashed_end_loc
//
// starttime is formatted "2017-05-10 13:14:15". This codec round-trips
// that schema exactly so the real dataset can be dropped in when
// available.

// csvHeader is the canonical column list.
var csvHeader = []string{
	"orderid", "userid", "bikeid", "biketype", "starttime",
	"geohashed_start_loc", "geohashed_end_loc",
}

const csvTimeLayout = "2006-01-02 15:04:05"

// ErrBadHeader is returned when a CSV stream does not begin with the
// Mobike schema header.
var ErrBadHeader = errors.New("dataset: unexpected CSV header")

// WriteCSV writes trips in the Mobike schema.
func WriteCSV(w io.Writer, trips []Trip) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	rec := make([]string, len(csvHeader))
	for _, t := range trips {
		rec[0] = strconv.FormatInt(t.OrderID, 10)
		rec[1] = strconv.FormatInt(t.UserID, 10)
		rec[2] = strconv.FormatInt(t.BikeID, 10)
		rec[3] = strconv.Itoa(t.BikeType)
		rec[4] = t.StartTime.Format(csvTimeLayout)
		rec[5] = t.StartGeohash
		rec[6] = t.EndGeohash
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("write trip %d: %w", t.OrderID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses trips in the Mobike schema, projecting geohash centres
// into the plane of projector. A nil projector leaves planar coordinates
// zero.
func ReadCSV(r io.Reader, projector *geo.Projector) ([]Trip, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("%w: column %d is %q, want %q", ErrBadHeader, i, header[i], want)
		}
	}
	var trips []Trip
	line := 1
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("read line %d: %w", line, err)
		}
		line++
		t, err := parseTrip(rec, projector)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		trips = append(trips, t)
	}
	return trips, nil
}

func parseTrip(rec []string, projector *geo.Projector) (Trip, error) {
	var t Trip
	var err error
	if t.OrderID, err = strconv.ParseInt(rec[0], 10, 64); err != nil {
		return Trip{}, fmt.Errorf("orderid: %w", err)
	}
	if t.UserID, err = strconv.ParseInt(rec[1], 10, 64); err != nil {
		return Trip{}, fmt.Errorf("userid: %w", err)
	}
	if t.BikeID, err = strconv.ParseInt(rec[2], 10, 64); err != nil {
		return Trip{}, fmt.Errorf("bikeid: %w", err)
	}
	if t.BikeType, err = strconv.Atoi(rec[3]); err != nil {
		return Trip{}, fmt.Errorf("biketype: %w", err)
	}
	if t.StartTime, err = time.Parse(csvTimeLayout, rec[4]); err != nil {
		return Trip{}, fmt.Errorf("starttime: %w", err)
	}
	t.StartGeohash = rec[5]
	t.EndGeohash = rec[6]
	if projector != nil {
		start, _, _, err := geo.DecodeGeohash(t.StartGeohash)
		if err != nil {
			return Trip{}, fmt.Errorf("start geohash: %w", err)
		}
		end, _, _, err := geo.DecodeGeohash(t.EndGeohash)
		if err != nil {
			return Trip{}, fmt.Errorf("end geohash: %w", err)
		}
		t.Start = projector.ToPlane(start)
		t.End = projector.ToPlane(end)
	}
	return t, nil
}
