package dataset

import (
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"repro/internal/geo"
	"repro/internal/parallel"
)

// Streaming Mobike-scale ingestion (DESIGN.md §14).
//
// ReadCSV materialises every trip through encoding/csv — two string
// allocations and a reflective time.Parse per row, and the whole []Trip
// in memory. At the reference workload's scale (the Wuhan Mobike study
// ingests 100,342,626 GPS points) that is two orders of magnitude past
// feasible. This file is the streaming path:
//
//   - IngestCSV reads fixed-size chunks, aligns each chunk on a record
//     boundary (the last '\n' outside a quoted field), and parses chunks
//     in parallel through internal/parallel. Records without quotes — the
//     entire Mobike schema in practice — are parsed in place from byte
//     slices with no per-field allocations; records containing quotes
//     fall back to a per-record encoding/csv parse, so quoting semantics
//     are inherited rather than re-implemented.
//   - Chunk index = task index and the fold over parsed batches runs in
//     chunk order, so output is bit-identical to sequential ReadCSV at
//     any worker count (FuzzScanCSV and the differential tests enforce
//     this).
//   - Peak memory is O(ChunkSize × Workers) regardless of file size: the
//     coordinator owns one buffer per worker and batches are only valid
//     for the duration of the emit callback.
//
// The chunk/newline-alignment invariant: a chunk may only end at a byte
// position where the CSV reader's quote state is "outside quotes". We
// track quote parity (toggling on every '"'); on RFC 4180-clean input
// parity equals the reader's quote state, and on malformed input every
// record that would make them disagree contains a quote and therefore
// takes the encoding/csv fallback, which reports the same error the
// sequential reader would.

// ScanOptions configures the streaming scanner. The zero value selects a
// 1 MiB chunk and the process-default worker count.
type ScanOptions struct {
	// ChunkSize is the read-buffer size in bytes (default 1 MiB). A
	// record longer than the chunk grows the buffer transparently. Tiny
	// values are legal and exercised by tests to force chunk boundaries
	// mid-record and mid-quoted-field.
	ChunkSize int
	// Workers bounds the parallel parse fan-out (default
	// parallel.Default()). Output is bit-identical for every value.
	Workers int
	// DecodeGeohashes decodes the start/end geohash fields into LatLng
	// centres during the parallel parse. Consumers (ReadCSVStreaming,
	// ScanSummarize, ScanEndPoints) set this themselves.
	DecodeGeohashes bool
	// AllowEmptyGeohash, with DecodeGeohashes, skips empty geohash
	// fields (Has*LL stays false) instead of failing — GeohashCenter
	// semantics rather than ProjectTrips semantics.
	AllowEmptyGeohash bool
}

func (o ScanOptions) withDefaults() ScanOptions {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 1 << 20
	}
	if o.Workers <= 0 {
		o.Workers = parallel.Default()
	}
	return o
}

// RawTrip is one parsed Mobike record. The geohash byte slices point into
// the scanner's chunk buffer and are only valid during the emit callback;
// copy (or string()) them to retain.
type RawTrip struct {
	OrderID   int64
	UserID    int64
	BikeID    int64
	BikeType  int
	StartTime time.Time

	StartGeohash []byte
	EndGeohash   []byte

	// Decoded geohash cell centres, when ScanOptions.DecodeGeohashes is
	// set. Has*LL is false only under AllowEmptyGeohash for an empty
	// field.
	StartLL    geo.LatLng
	EndLL      geo.LatLng
	HasStartLL bool
	HasEndLL   bool
}

// RowError reports a malformed CSV record with its 1-based file line
// number (the header is line 1), matching the convention of
// encoding/csv's ParseError.
type RowError struct {
	Line int
	Err  error
}

func (e *RowError) Error() string { return fmt.Sprintf("line %d: %v", e.Line, e.Err) }

func (e *RowError) Unwrap() error { return e.Err }

var (
	errBadInt     = errors.New("invalid integer")
	errIntRange   = errors.New("integer out of range")
	errFieldCount = errors.New("wrong number of fields")
)

// IngestCSV streams the Mobike schema through emit in batches, in file
// order, after validating the header. Batches (and the geohash slices
// inside them) are only valid for the duration of the callback. An emit
// error aborts the scan and is returned verbatim.
func IngestCSV(r io.Reader, opts ScanOptions, emit func(batch []RawTrip) error) error {
	opts = opts.withDefaults()
	s := &scanState{r: r, chunkSize: opts.ChunkSize}
	if err := s.readHeader(); err != nil {
		return err
	}
	workers := opts.Workers
	bufs := make([][]byte, workers)
	chunks := make([][]byte, workers)
	bases := make([]int, workers)
	parses := make([]chunkParse, workers)
	po := &opts
	for {
		// Fill up to `workers` record-aligned chunks, tracking the
		// newline count preceding each so errors carry file lines.
		n := 0
		for w := 0; w < workers; w++ {
			chunk, err := s.nextChunk(&bufs[w])
			if err != nil {
				return err
			}
			if chunk == nil {
				break
			}
			chunks[n] = chunk
			bases[n] = s.lines
			s.lines += bytes.Count(chunk, nlBytes)
			n++
		}
		if n == 0 {
			return nil
		}
		// Deterministic parallel parse: chunk index = task index.
		parallel.For(workers, n, func(_, i int) {
			parseChunk(chunks[i], po, &parses[i])
		})
		// In-order fold.
		for i := 0; i < n; i++ {
			p := &parses[i]
			if p.err != nil {
				p.err.Line += 1 + bases[i]
				return p.err
			}
			if len(p.trips) > 0 {
				if err := emit(p.trips); err != nil {
					return err
				}
			}
		}
	}
}

var nlBytes = []byte{'\n'}

// scanState is the serial chunking coordinator.
type scanState struct {
	r         io.Reader
	chunkSize int
	leftover  []byte // partial record past the last chunk's boundary
	done      bool   // underlying reader returned io.EOF
	lines     int    // newlines consumed from the stream so far
}

// readHeader consumes leading blank lines and the header record,
// validating it against csvHeader exactly as ReadCSV does.
func (s *scanState) readHeader() error {
	buf := make([]byte, 0, s.chunkSize)
	for {
		for !s.done && len(buf) < cap(buf) {
			n, err := s.r.Read(buf[len(buf):cap(buf)])
			buf = buf[:len(buf)+n]
			if err == io.EOF {
				s.done = true
				break
			}
			if err != nil {
				return err
			}
		}
		for {
			rec, n, ok := cutRecord(buf, s.done)
			if !ok {
				break
			}
			s.lines += bytes.Count(buf[:n], nlBytes)
			buf = buf[n:]
			if len(rec) > 0 && rec[len(rec)-1] == '\r' {
				rec = rec[:len(rec)-1]
			}
			if len(rec) == 0 {
				continue // blank line before the header, as csv skips
			}
			if err := validateHeader(rec); err != nil {
				return err
			}
			s.leftover = buf
			return nil
		}
		if s.done {
			return fmt.Errorf("read header: %w", io.EOF)
		}
		// Consuming blank lines above may have shrunk the slice's spare
		// capacity to zero, so grow relative to the chunk size too.
		grown := make([]byte, len(buf), max(s.chunkSize, cap(buf)*2))
		copy(grown, buf)
		buf = grown
	}
}

func validateHeader(rec []byte) error {
	if bytes.IndexByte(rec, '"') >= 0 {
		// Quoted header fields are legal CSV; let encoding/csv unquote.
		cr := csv.NewReader(bytes.NewReader(rec))
		cr.FieldsPerRecord = len(csvHeader)
		fields, err := cr.Read()
		if err != nil {
			return fmt.Errorf("read header: %w", err)
		}
		for i, want := range csvHeader {
			if fields[i] != want {
				return fmt.Errorf("%w: column %d is %q, want %q", ErrBadHeader, i, fields[i], want)
			}
		}
		return nil
	}
	for i, want := range csvHeader {
		var field []byte
		if c := bytes.IndexByte(rec, ','); c >= 0 {
			field, rec = rec[:c], rec[c+1:]
		} else {
			field, rec = rec, nil
		}
		if string(field) != want {
			return fmt.Errorf("%w: column %d is %q, want %q", ErrBadHeader, i, field, want)
		}
	}
	if rec != nil {
		return fmt.Errorf("read header: %w", errFieldCount)
	}
	return nil
}

// nextChunk returns the next record-aligned chunk, or nil at end of
// input. The chunk lives in *bufp, which is reused (and grown when a
// single record exceeds it) across calls.
func (s *scanState) nextChunk(bufp *[]byte) ([]byte, error) {
	if s.done && len(s.leftover) == 0 {
		return nil, nil
	}
	buf := (*bufp)[:0]
	if cap(buf) < s.chunkSize {
		buf = make([]byte, 0, s.chunkSize)
	}
	// The leftover may alive in another worker's buffer (or, at one
	// worker, later in this very buffer — append copies front-ward,
	// which is overlap-safe).
	buf = append(buf, s.leftover...)
	s.leftover = nil
	for {
		for !s.done && len(buf) < cap(buf) {
			n, err := s.r.Read(buf[len(buf):cap(buf)])
			buf = buf[:len(buf)+n]
			if err == io.EOF {
				s.done = true
				break
			}
			if err != nil {
				*bufp = buf
				return nil, err
			}
		}
		if len(buf) == 0 {
			*bufp = buf
			return nil, nil
		}
		if b := lastRecordEnd(buf); b >= 0 {
			s.leftover = buf[b+1:]
			*bufp = buf
			return buf[:b+1], nil
		}
		if s.done {
			// Final record with no trailing newline.
			*bufp = buf
			return buf, nil
		}
		// No record boundary in a full buffer: the record is longer
		// than the chunk; grow and keep reading.
		grown := make([]byte, len(buf), cap(buf)*2)
		copy(grown, buf)
		buf = grown
	}
}

// lastRecordEnd returns the index of the last '\n' outside a quoted
// field, or -1.
func lastRecordEnd(b []byte) int {
	if bytes.IndexByte(b, '"') < 0 {
		return bytes.LastIndexByte(b, '\n')
	}
	last := -1
	inQuote := false
	for i := 0; i < len(b); i++ {
		switch b[i] {
		case '"':
			inQuote = !inQuote
		case '\n':
			if !inQuote {
				last = i
			}
		}
	}
	return last
}

// cutRecord splits the first record (terminated by a '\n' outside
// quotes) off the front of b. n counts the consumed bytes including the
// terminator. With final set, a non-empty remainder without a terminator
// is the last record of the input.
func cutRecord(b []byte, final bool) (rec []byte, n int, ok bool) {
	nl := bytes.IndexByte(b, '\n')
	if nl >= 0 && bytes.IndexByte(b[:nl], '"') < 0 {
		return b[:nl], nl + 1, true
	}
	if nl < 0 && bytes.IndexByte(b, '"') < 0 {
		if final && len(b) > 0 {
			return b, len(b), true
		}
		return nil, 0, false
	}
	inQuote := false
	for i := 0; i < len(b); i++ {
		switch b[i] {
		case '"':
			inQuote = !inQuote
		case '\n':
			if !inQuote {
				return b[:i], i + 1, true
			}
		}
	}
	if final && len(b) > 0 {
		return b, len(b), true
	}
	return nil, 0, false
}

// chunkParse is one worker's reusable parse output.
type chunkParse struct {
	trips []RawTrip
	err   *RowError // Line is chunk-relative until the fold rebases it
}

// parseChunk parses every record in a record-aligned chunk. It runs
// inside parallel.For: it only touches its own chunk and output slot.
// Records parse directly into their output slot (every RawTrip field is
// written on success) so the hot loop never zeroes or copies a struct.
func parseChunk(chunk []byte, opts *ScanOptions, out *chunkParse) {
	if cap(out.trips) == 0 && len(chunk) > 0 {
		// Reserve for the shortest plausible Mobike record up front:
		// growing by doubling would repeatedly allocate and zero
		// multi-megabyte pointer-ful slices on the first chunks.
		out.trips = make([]RawTrip, 0, len(chunk)/32+1)
	}
	out.trips = out.trips[:0]
	out.err = nil
	lines := 0
	pos := 0
	for pos < len(chunk) {
		rest := chunk[pos:]
		// Fast cut: a record with no quote before its first newline ends
		// there; only a quoted prefix needs the parity scan, and only
		// the parity-cut record can contain quotes at all.
		var rec []byte
		var n int
		quoted := false
		if nl := bytes.IndexByte(rest, '\n'); nl >= 0 {
			rec, n = rest[:nl], nl+1
			quoted = bytes.IndexByte(rec, '"') >= 0
		} else {
			rec, n = rest, len(rest) // final record, no terminator
			quoted = bytes.IndexByte(rec, '"') >= 0
		}
		if quoted {
			rec, n, _ = cutRecord(rest, true)
		}
		recLine := lines
		if chunk[pos+n-1] == '\n' {
			lines++
		}
		pos += n
		if len(rec) > 0 && rec[len(rec)-1] == '\r' {
			rec = rec[:len(rec)-1]
		}
		if len(rec) == 0 {
			continue // blank line, as csv skips
		}
		if len(out.trips) < cap(out.trips) {
			out.trips = out.trips[:len(out.trips)+1]
		} else {
			out.trips = append(out.trips, RawTrip{})
		}
		rt := &out.trips[len(out.trips)-1]
		var err error
		if quoted {
			// Only quoted records can span lines.
			lines += bytes.Count(rec, nlBytes)
			err = parseRecordSlow(rec, opts, rt)
		} else {
			err = parseRecordFast(rec, opts, rt)
		}
		if err != nil {
			out.trips = out.trips[:len(out.trips)-1]
			out.err = &RowError{Line: recLine, Err: err}
			return
		}
	}
}

// parseRecordFast parses a record containing no quotes: seven fields
// split in one pass, integers and the timestamp decoded from bytes. No
// allocations on success. Every RawTrip field is assigned, so a dirty
// reused slot is fully overwritten.
func parseRecordFast(rec []byte, opts *ScanOptions, rt *RawTrip) error {
	var f [7][]byte
	nf, start := 0, 0
	for i := 0; i < len(rec); i++ {
		if rec[i] == ',' {
			if nf == 6 {
				return errFieldCount
			}
			f[nf] = rec[start:i]
			nf++
			start = i + 1
		}
	}
	if nf != 6 {
		return errFieldCount
	}
	f[6] = rec[start:]
	var err error
	if rt.OrderID, err = parseInt64(f[0]); err != nil {
		return fmt.Errorf("orderid: %w", err)
	}
	if rt.UserID, err = parseInt64(f[1]); err != nil {
		return fmt.Errorf("userid: %w", err)
	}
	if rt.BikeID, err = parseInt64(f[2]); err != nil {
		return fmt.Errorf("bikeid: %w", err)
	}
	bikeType, err := parseInt64(f[3])
	if err != nil {
		return fmt.Errorf("biketype: %w", err)
	}
	rt.BikeType = int(bikeType)
	if rt.StartTime, err = parseMobikeTime(f[4]); err != nil {
		return fmt.Errorf("starttime: %w", err)
	}
	rt.StartGeohash, rt.EndGeohash = f[5], f[6]
	return decodeGeohashFields(opts, rt)
}

// parseRecordSlow parses a record containing quotes through encoding/csv,
// inheriting its exact quoting semantics and errors.
func parseRecordSlow(rec []byte, opts *ScanOptions, rt *RawTrip) error {
	cr := csv.NewReader(bytes.NewReader(rec))
	cr.FieldsPerRecord = len(csvHeader)
	fields, err := cr.Read()
	if err != nil {
		return err
	}
	if rt.OrderID, err = strconv.ParseInt(fields[0], 10, 64); err != nil {
		return fmt.Errorf("orderid: %w", err)
	}
	if rt.UserID, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return fmt.Errorf("userid: %w", err)
	}
	if rt.BikeID, err = strconv.ParseInt(fields[2], 10, 64); err != nil {
		return fmt.Errorf("bikeid: %w", err)
	}
	if rt.BikeType, err = strconv.Atoi(fields[3]); err != nil {
		return fmt.Errorf("biketype: %w", err)
	}
	if rt.StartTime, err = time.Parse(csvTimeLayout, fields[4]); err != nil {
		return fmt.Errorf("starttime: %w", err)
	}
	rt.StartGeohash = []byte(fields[5])
	rt.EndGeohash = []byte(fields[6])
	return decodeGeohashFields(opts, rt)
}

func decodeGeohashFields(opts *ScanOptions, rt *RawTrip) error {
	// Reset first: the RawTrip may be a dirty reused slot, and the
	// skip-decode paths below must not leak a previous record's values.
	rt.StartLL, rt.EndLL = geo.LatLng{}, geo.LatLng{}
	rt.HasStartLL, rt.HasEndLL = false, false
	if !opts.DecodeGeohashes {
		return nil
	}
	if len(rt.StartGeohash) > 0 || !opts.AllowEmptyGeohash {
		ll, _, _, err := geo.DecodeGeohashBytes(rt.StartGeohash)
		if err != nil {
			return fmt.Errorf("start geohash: %w", err)
		}
		rt.StartLL, rt.HasStartLL = ll, true
	}
	if len(rt.EndGeohash) > 0 || !opts.AllowEmptyGeohash {
		ll, _, _, err := geo.DecodeGeohashBytes(rt.EndGeohash)
		if err != nil {
			return fmt.Errorf("end geohash: %w", err)
		}
		rt.EndLL, rt.HasEndLL = ll, true
	}
	return nil
}

// parseInt64 is strconv.ParseInt(string(b), 10, 64) without the string.
func parseInt64(b []byte) (int64, error) {
	i := 0
	neg := false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		i = 1
	}
	if i == len(b) {
		return 0, errBadInt
	}
	var n uint64
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, errBadInt
		}
		if n > (math.MaxUint64-uint64(d))/10 {
			return 0, errIntRange
		}
		n = n*10 + uint64(d)
	}
	if neg {
		if n > 1<<63 {
			return 0, errIntRange
		}
		if n == 1<<63 {
			return math.MinInt64, nil
		}
		return -int64(n), nil
	}
	if n > math.MaxInt64 {
		return 0, errIntRange
	}
	return int64(n), nil
}

var errBadTime = errors.New("invalid timestamp")

// parseMobikeTime parses csvTimeLayout ("2006-01-02 15:04:05") from
// bytes, accepting the same inputs time.Parse does for that layout: the
// hour may be one or two digits ("15" is a non-padded verb), everything
// else is fixed-width, and month/day/hour/minute/second are
// range-checked. The result is bit-identical to time.Parse's (both are
// wall-clock UTC).
func parseMobikeTime(b []byte) (time.Time, error) {
	if len(b) < 18 || len(b) > 19 {
		return time.Time{}, errBadTime
	}
	if b[4] != '-' || b[7] != '-' || b[10] != ' ' {
		return time.Time{}, errBadTime
	}
	year, ok := atoiFixed(b[0:4])
	month, ok2 := atoiFixed(b[5:7])
	day, ok3 := atoiFixed(b[8:10])
	if !ok || !ok2 || !ok3 {
		return time.Time{}, errBadTime
	}
	var hour, rest int
	switch {
	case isDigit(b[11]) && isDigit(b[12]):
		hour = int(b[11]-'0')*10 + int(b[12]-'0')
		rest = 13
	case isDigit(b[11]):
		hour = int(b[11] - '0')
		rest = 12
	default:
		return time.Time{}, errBadTime
	}
	if rest+6 != len(b) || b[rest] != ':' || b[rest+3] != ':' {
		return time.Time{}, errBadTime
	}
	minute, ok := atoiFixed(b[rest+1 : rest+3])
	sec, ok2 := atoiFixed(b[rest+4 : rest+6])
	if !ok || !ok2 {
		return time.Time{}, errBadTime
	}
	if month < 1 || month > 12 || day < 1 || day > daysIn(month, year) ||
		hour > 23 || minute > 59 || sec > 59 {
		return time.Time{}, errBadTime
	}
	return time.Date(year, time.Month(month), day, hour, minute, sec, 0, time.UTC), nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func atoiFixed(b []byte) (int, bool) {
	n := 0
	for _, c := range b {
		if !isDigit(c) {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

func daysIn(month, year int) int {
	switch month {
	case 4, 6, 9, 11:
		return 30
	case 2:
		if year%4 == 0 && (year%100 != 0 || year%400 == 0) {
			return 29
		}
		return 28
	default:
		return 31
	}
}

// ReadCSVStreaming is ReadCSV through the streaming scanner: identical
// trips (bit-for-bit, including projected coordinates) for any chunk
// size and worker count, enforced by differential tests and FuzzScanCSV.
func ReadCSVStreaming(r io.Reader, projector *geo.Projector, opts ScanOptions) ([]Trip, error) {
	opts.DecodeGeohashes = projector != nil
	opts.AllowEmptyGeohash = false
	var trips []Trip
	err := IngestCSV(r, opts, func(batch []RawTrip) error {
		for i := range batch {
			rt := &batch[i]
			t := Trip{
				OrderID:      rt.OrderID,
				UserID:       rt.UserID,
				BikeID:       rt.BikeID,
				BikeType:     rt.BikeType,
				StartTime:    rt.StartTime,
				StartGeohash: string(rt.StartGeohash),
				EndGeohash:   string(rt.EndGeohash),
			}
			if projector != nil {
				t.Start = projector.ToPlane(rt.StartLL)
				t.End = projector.ToPlane(rt.EndLL)
			}
			trips = append(trips, t)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return trips, nil
}

// ScanSummary is the single-pass reduction over a trip CSV: the row
// count and the geodetic extrema of the geohash cell centres — combined
// start+end (the projection-centre bounding box GeohashCenter computes
// from materialised trips) and end-only (the demand-grid bounding box).
type ScanSummary struct {
	Trips int64

	Seen                           bool
	MinLat, MinLng, MaxLat, MaxLng float64

	EndSeen                                    bool
	EndMinLat, EndMinLng, EndMaxLat, EndMaxLng float64
}

// Center returns the centre of the combined bounding box, bit-identical
// to GeohashCenter over the materialised trips, or ErrNoGeohashes when
// every geohash field was empty.
func (s ScanSummary) Center() (geo.LatLng, error) {
	if !s.Seen {
		return geo.LatLng{}, ErrNoGeohashes
	}
	return geo.LatLng{Lat: (s.MinLat + s.MaxLat) / 2, Lng: (s.MinLng + s.MaxLng) / 2}, nil
}

// EndBounds returns the planar bounding box of the projected end points,
// or false when no trip had an end geohash. It is bit-identical to
// geo.Bound over the projected points because the equirectangular
// projection is separable and monotone: X depends only on longitude and
// Y only on latitude, each through the same float operations min/max
// would see.
func (s ScanSummary) EndBounds(projector *geo.Projector) (geo.BBox, bool) {
	if !s.EndSeen {
		return geo.BBox{}, false
	}
	lo := projector.ToPlane(geo.LatLng{Lat: s.EndMinLat, Lng: s.EndMinLng})
	hi := projector.ToPlane(geo.LatLng{Lat: s.EndMaxLat, Lng: s.EndMaxLng})
	return geo.NewBBox(lo, hi), true
}

// ScanSummarize streams the CSV once and reduces it to a ScanSummary.
// Empty geohash fields are skipped (GeohashCenter semantics); invalid
// ones fail the scan.
func ScanSummarize(r io.Reader, opts ScanOptions) (ScanSummary, error) {
	opts.DecodeGeohashes = true
	opts.AllowEmptyGeohash = true
	sum := ScanSummary{
		MinLat: 91, MinLng: 181, MaxLat: -91, MaxLng: -181,
		EndMinLat: 91, EndMinLng: 181, EndMaxLat: -91, EndMaxLng: -181,
	}
	err := IngestCSV(r, opts, func(batch []RawTrip) error {
		for i := range batch {
			rt := &batch[i]
			sum.Trips++
			if rt.HasStartLL {
				sum.Seen = true
				sum.MinLat, sum.MaxLat = min(sum.MinLat, rt.StartLL.Lat), max(sum.MaxLat, rt.StartLL.Lat)
				sum.MinLng, sum.MaxLng = min(sum.MinLng, rt.StartLL.Lng), max(sum.MaxLng, rt.StartLL.Lng)
			}
			if rt.HasEndLL {
				sum.Seen = true
				sum.MinLat, sum.MaxLat = min(sum.MinLat, rt.EndLL.Lat), max(sum.MaxLat, rt.EndLL.Lat)
				sum.MinLng, sum.MaxLng = min(sum.MinLng, rt.EndLL.Lng), max(sum.MaxLng, rt.EndLL.Lng)
				sum.EndSeen = true
				sum.EndMinLat, sum.EndMaxLat = min(sum.EndMinLat, rt.EndLL.Lat), max(sum.EndMaxLat, rt.EndLL.Lat)
				sum.EndMinLng, sum.EndMaxLng = min(sum.EndMinLng, rt.EndLL.Lng), max(sum.EndMaxLng, rt.EndLL.Lng)
			}
		}
		return nil
	})
	if err != nil {
		return ScanSummary{}, err
	}
	return sum, nil
}

// ScanEndPoints streams the projected end point of every trip through
// visit in file order — the demand-aggregation feed. Like ProjectTrips
// it requires every geohash (start and end) to decode; the visited
// slice is reused between calls. It returns the number of trips.
func ScanEndPoints(r io.Reader, projector *geo.Projector, opts ScanOptions, visit func(pts []geo.Point) error) (int64, error) {
	if projector == nil {
		return 0, errors.New("dataset: nil projector")
	}
	opts.DecodeGeohashes = true
	opts.AllowEmptyGeohash = false
	var pts []geo.Point
	var total int64
	err := IngestCSV(r, opts, func(batch []RawTrip) error {
		pts = pts[:0]
		for i := range batch {
			pts = append(pts, projector.ToPlane(batch[i].EndLL))
		}
		total += int64(len(batch))
		return visit(pts)
	})
	return total, err
}
