// External test package: stats imports parallel (the KS statistic fans
// out through it), so an in-package test importing stats would cycle.
package parallel_test

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
	"repro/internal/stats"
)

// workerCounts are the parallelism levels every differential assertion
// in this repository runs at: sequential, even splits, and a prime that
// never divides the input sizes evenly.
var workerCounts = []int{1, 2, 4, 7}

// seqMinIndex is the reference semantics MinIndex must reproduce bit for
// bit: first strict minimum, NaN never wins.
func seqMinIndex(keys []float64) (int, float64) {
	best, bestVal := -1, math.Inf(1)
	for i, v := range keys {
		if v < bestVal {
			best, bestVal = i, v
		}
	}
	return best, bestVal
}

func TestMinIndexMatchesSequentialScan(t *testing.T) {
	// quick.Check-style property: on random inputs laced with NaNs, +Inf
	// and deliberate ties, MinIndex at every worker count returns exactly
	// the sequential scan's (index, value).
	cfg := &quick.Config{MaxCount: 300}
	seedCounter := uint64(0)
	property := func(n uint8, rawSeed uint64) bool {
		seedCounter++
		rng := stats.NewWorkerRNG(rawSeed, stats.StreamDefault, seedCounter)
		keys := make([]float64, int(n))
		for i := range keys {
			switch rng.IntN(6) {
			case 0:
				keys[i] = math.NaN()
			case 1:
				keys[i] = math.Inf(1)
			case 2:
				keys[i] = 0 // mass ties at zero
			case 3:
				keys[i] = float64(rng.IntN(4)) // small tied integers
			default:
				keys[i] = rng.Float64()*200 - 100
			}
		}
		wantIdx, wantVal := seqMinIndex(keys)
		for _, workers := range workerCounts {
			gotIdx, gotVal := parallel.MinIndex(workers, len(keys), func(i int) float64 { return keys[i] })
			if gotIdx != wantIdx {
				t.Logf("workers=%d: index %d, want %d (keys=%v)", workers, gotIdx, wantIdx, keys)
				return false
			}
			if gotVal != wantVal && !(math.IsNaN(gotVal) && math.IsNaN(wantVal)) {
				t.Logf("workers=%d: value %v, want %v", workers, gotVal, wantVal)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

func TestMinIndexEdgeCases(t *testing.T) {
	tests := []struct {
		name    string
		keys    []float64
		wantIdx int
	}{
		{"empty", nil, -1},
		{"all NaN", []float64{math.NaN(), math.NaN(), math.NaN()}, -1},
		{"all +Inf", []float64{math.Inf(1), math.Inf(1)}, -1},
		{"tie keeps lowest index", []float64{3, 1, 1, 1, 2}, 1},
		{"NaN before min", []float64{math.NaN(), 5, 2}, 2},
		{"-Inf wins", []float64{1, math.Inf(-1), math.Inf(-1)}, 1},
		{"single", []float64{4}, 0},
	}
	for _, tc := range tests {
		for _, workers := range append(workerCounts, 16) {
			gotIdx, _ := parallel.MinIndex(workers, len(tc.keys), func(i int) float64 { return tc.keys[i] })
			if gotIdx != tc.wantIdx {
				t.Errorf("%s workers=%d: index %d, want %d", tc.name, workers, gotIdx, tc.wantIdx)
			}
		}
	}
}

func TestMaxFloatMatchesSequentialScan(t *testing.T) {
	rng := stats.NewRNG(31)
	for trial := 0; trial < 50; trial++ {
		n := rng.IntN(200)
		vals := make([]float64, n)
		for i := range vals {
			if rng.IntN(8) == 0 {
				vals[i] = math.NaN()
			} else {
				vals[i] = rng.Float64()*100 - 50
			}
		}
		want := math.Inf(-1)
		for _, v := range vals {
			if v > want {
				want = v
			}
		}
		for _, workers := range workerCounts {
			got := parallel.MaxFloat(workers, n, func(i int) float64 { return vals[i] })
			if got != want {
				t.Fatalf("trial %d workers=%d: max %v, want %v", trial, workers, got, want)
			}
		}
	}
}

func TestForChunksCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 16, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 101} {
			visited := make([]int32, n)
			parallel.ForChunks(workers, n, func(w, lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad chunk [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visited[i], 1)
				}
			})
			for i, c := range visited {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForWorkerIdentityIsChunkStable(t *testing.T) {
	// The worker id passed to the body must be a function of the index
	// alone (given workers and n) so per-worker scratch state maps to a
	// deterministic slice of the work.
	const workers, n = 4, 103
	owner := make([]int32, n)
	parallel.For(workers, n, func(w, i int) {
		atomic.StoreInt32(&owner[i], int32(w))
	})
	for i := 0; i < n; i++ {
		// Chunk bounds are part of the public contract: worker w owns
		// [w*n/workers, (w+1)*n/workers).
		w := int(owner[i])
		lo, hi := w*n/workers, (w+1)*n/workers
		if i < lo || i >= hi {
			t.Fatalf("index %d owned by worker %d with chunk [%d,%d)", i, owner[i], lo, hi)
		}
	}
	for i := 1; i < n; i++ {
		if owner[i] < owner[i-1] {
			t.Fatalf("owners not monotone: owner[%d]=%d < owner[%d]=%d", i, owner[i], i-1, owner[i-1])
		}
	}
}

func TestMapPreservesIndexOrder(t *testing.T) {
	for _, workers := range workerCounts {
		got := parallel.Map(workers, 57, func(w, i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d", workers, i, v)
			}
		}
	}
	if out := parallel.Map(4, 0, func(w, i int) int { return i }); out != nil {
		t.Errorf("n=0 should map to nil, got %v", out)
	}
}

func TestMapReduceFoldsInIndexOrder(t *testing.T) {
	// A non-commutative reduction (string concatenation) exposes any
	// fold-order drift immediately.
	want := ""
	for i := 0; i < 26; i++ {
		want += string(rune('a' + i))
	}
	for _, workers := range workerCounts {
		got := parallel.MapReduce(workers, 26,
			func(w, i int) string { return string(rune('a' + i)) },
			func(acc, v string) string { return acc + v },
			"")
		if got != want {
			t.Fatalf("workers=%d: %q, want %q", workers, got, want)
		}
	}
}

func TestMapReduceFloatSumBitIdentical(t *testing.T) {
	// Floating-point summation is order-sensitive; the index-order fold
	// must make the sum bit-identical across worker counts.
	rng := stats.NewRNG(99)
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.IntN(12)))
	}
	ref := parallel.MapReduce(1, len(vals),
		func(w, i int) float64 { return vals[i] },
		func(acc, v float64) float64 { return acc + v }, 0.0)
	for _, workers := range workerCounts[1:] {
		got := parallel.MapReduce(workers, len(vals),
			func(w, i int) float64 { return vals[i] },
			func(acc, v float64) float64 { return acc + v }, 0.0)
		if math.Float64bits(got) != math.Float64bits(ref) {
			t.Fatalf("workers=%d: sum %x, want %x", workers, math.Float64bits(got), math.Float64bits(ref))
		}
	}
}

func TestSetDefaultClampsAndRestores(t *testing.T) {
	orig := parallel.Default()
	defer parallel.SetDefault(orig)
	parallel.SetDefault(7)
	if got := parallel.Default(); got != 7 {
		t.Fatalf("parallel.Default()=%d after parallel.SetDefault(7)", got)
	}
	parallel.SetDefault(0) // resets to the environment/GOMAXPROCS default
	if got := parallel.Default(); got < 1 {
		t.Fatalf("parallel.Default()=%d after reset, want >= 1", got)
	}
}

func TestWorkerRNGStreamsIndependentOfChunking(t *testing.T) {
	// The approved pattern for randomness inside a parallel body: derive
	// the stream from the task index, never from the worker id. The
	// draws must then be independent of the worker count.
	draw := func(workers int) []float64 {
		return parallel.Map(workers, 40, func(w, i int) float64 {
			rng := stats.NewWorkerRNG(123, stats.StreamDefault, uint64(i))
			return rng.Float64()
		})
	}
	ref := draw(1)
	for _, workers := range workerCounts[1:] {
		got := draw(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: draw %d differs", workers, i)
			}
		}
	}
}
