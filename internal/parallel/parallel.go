// Package parallel is the repository's deterministic fork–join engine.
//
// Every compute path in this codebase — the offline facility-location
// greedy, the Peacock 2-D KS statistic, the forecasting grids and the
// experiment sweeps — must produce bit-identical output for a given seed
// regardless of how many cores it runs on. This package makes that
// tractable by construction:
//
//   - Work is split over index ranges into at most `workers` contiguous
//     chunks; each chunk is processed by one goroutine in ascending index
//     order, exactly like the sequential loop it replaces.
//   - Every task keeps its deterministic identity: its index. Callbacks
//     that need randomness derive a stream from that identity (e.g.
//     stats.NewWorkerRNG(seed, stream, index)) instead of sharing a
//     sequentially-consumed generator.
//   - Reductions fold per-chunk results in index order with stable
//     tie-breaks (strict comparisons, lowest index wins), so the fold is
//     equivalent to the sequential left-to-right scan.
//
// With those three rules, workers=1 and workers=N run the same
// floating-point operations in the same order per item and combine them
// identically, so output bits cannot depend on the worker count. The
// differential tests in this package and in core/stats/experiments
// enforce that at parallelism 1, 2, 4 and 7.
//
// The process-wide default worker count comes from the
// ESHARING_PARALLELISM environment variable when set (a positive
// integer), otherwise GOMAXPROCS; binaries expose it as a -parallelism
// flag via SetDefault.
package parallel

import (
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvVar names the environment variable consulted for the default
// worker count.
const EnvVar = "ESHARING_PARALLELISM"

// defaultWorkers holds the process-wide default parallelism. It is only
// read through Default and written through SetDefault (both atomic), so
// flag wiring in main and concurrent compute paths never race.
var defaultWorkers atomic.Int64

func init() {
	defaultWorkers.Store(int64(initialWorkers()))
}

func initialWorkers() int {
	if s := os.Getenv(EnvVar); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Default returns the process-wide default worker count (≥ 1).
func Default() int {
	return int(defaultWorkers.Load())
}

// SetDefault sets the process-wide default worker count. Values below 1
// reset to the environment/GOMAXPROCS-derived initial value; SetDefault(1)
// forces every default-parallelism compute path to run sequentially.
func SetDefault(n int) {
	if n < 1 {
		n = initialWorkers()
	}
	defaultWorkers.Store(int64(n))
}

// clamp bounds workers to [1, n] so no goroutine ever owns an empty
// chunk and a non-positive request degrades to sequential execution.
func clamp(workers, n int) int {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// chunk returns the half-open index range owned by worker w: contiguous,
// ascending, covering [0, n) exactly once across the w's.
func chunk(w, workers, n int) (lo, hi int) {
	return w * n / workers, (w + 1) * n / workers
}

// ForChunks splits [0, n) into at most `workers` contiguous chunks and
// calls body(worker, lo, hi) once per non-empty chunk, concurrently.
// Chunk boundaries depend only on (workers, n), never on scheduling, and
// body must process its range in ascending order when item order matters.
// With workers ≤ 1 (or n ≤ 1) the body runs inline on the caller's
// goroutine — the zero-overhead sequential path.
func ForChunks(workers, n int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clamp(workers, n)
	if workers == 1 {
		body(0, 0, n)
		return
	}
	forkJoin(workers, n, body)
}

// forkJoin is ForChunks' multi-worker path, kept out of ForChunks
// itself: the WaitGroup is captured by the worker goroutines and
// therefore heap-allocated in its function's prologue, and callers that
// take the sequential fast path — like the incremental solver's
// per-pop re-scoring at workers == 1 — must not pay that allocation on
// every call.
func forkJoin(workers, n int, body func(worker, lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := chunk(w, workers, n)
			if lo < hi {
				body(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// For calls body(worker, i) for every i in [0, n), fanned out in
// contiguous chunks. Each worker visits its indices in ascending order.
func For(workers, n int, body func(worker, i int)) {
	ForChunks(workers, n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(w, i)
		}
	})
}

// Map evaluates f for every index in [0, n) across `workers` goroutines
// and returns the results in index order. Because each result lands in
// its own slot, the output is independent of scheduling by construction.
func Map[T any](workers, n int, f func(worker, i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	For(workers, n, func(w, i int) {
		out[i] = f(w, i)
	})
	return out
}

// MapReduce maps every index through mapf and folds the results in
// index order: reduce(...reduce(reduce(init, m(0)), m(1))..., m(n-1)).
// The fold order is fixed, so non-commutative reductions (floating-point
// sums, first-wins tie-breaks) behave exactly like the sequential loop.
func MapReduce[T, R any](workers, n int, mapf func(worker, i int) T, reduce func(acc R, v T) R, init R) R {
	vals := Map(workers, n, mapf)
	acc := init
	for _, v := range vals {
		acc = reduce(acc, v)
	}
	return acc
}

// MinIndex returns the index and value of the minimum of key(0..n-1),
// with the exact semantics of the sequential scan
//
//	best, bestVal := -1, +Inf
//	for i := 0; i < n; i++ { if key(i) < bestVal { best, bestVal = i, key(i) } }
//
// Ties keep the lowest index (strict <), and NaN keys never win (any
// comparison with NaN is false) — so (-1, +Inf) comes back when n == 0
// or every key is NaN. Each chunk scans ascending and chunk winners fold
// in chunk order with the same strict comparison, which makes the result
// independent of the worker count.
func MinIndex(workers, n int, key func(i int) float64) (int, float64) {
	type minAt struct {
		idx int
		val float64
	}
	scan := func(lo, hi int) minAt {
		best := minAt{idx: -1, val: math.Inf(1)}
		for i := lo; i < hi; i++ {
			if v := key(i); v < best.val {
				best = minAt{idx: i, val: v}
			}
		}
		return best
	}
	if n <= 0 {
		return -1, math.Inf(1)
	}
	workers = clamp(workers, n)
	if workers == 1 {
		b := scan(0, n)
		return b.idx, b.val
	}
	chunks := make([]minAt, workers)
	ForChunks(workers, n, func(w, lo, hi int) {
		chunks[w] = scan(lo, hi)
	})
	best := minAt{idx: -1, val: math.Inf(1)}
	for _, c := range chunks {
		// Strict < in chunk order keeps the lowest winning index: an
		// equal value in a later chunk never displaces an earlier one.
		if c.idx >= 0 && c.val < best.val {
			best = c
		}
	}
	return best.idx, best.val
}

// MaxFloat returns the maximum of f(0..n-1) under strict > with NaN
// values ignored, folding chunk maxima in chunk order; -Inf when n == 0
// or every value is NaN. The maximum of a set is permutation-invariant,
// but the fixed fold order keeps the implementation auditable against
// the sequential loop it replaces.
func MaxFloat(workers, n int, f func(i int) float64) float64 {
	scan := func(lo, hi int) float64 {
		best := math.Inf(-1)
		for i := lo; i < hi; i++ {
			if v := f(i); v > best {
				best = v
			}
		}
		return best
	}
	if n <= 0 {
		return math.Inf(-1)
	}
	workers = clamp(workers, n)
	if workers == 1 {
		return scan(0, n)
	}
	chunks := make([]float64, workers)
	ForChunks(workers, n, func(w, lo, hi int) {
		chunks[w] = scan(lo, hi)
	})
	best := math.Inf(-1)
	for _, v := range chunks {
		if v > best {
			best = v
		}
	}
	return best
}
