package energy

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/stats"
)

func newTestFleet(t *testing.T, n int) *Fleet {
	t.Helper()
	f, err := NewFleet(DefaultModel())
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	for i := 1; i <= n; i++ {
		if err := f.Add(Bike{ID: int64(i), Loc: geo.Pt(float64(i*10), 0), Level: 1}); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return f
}

func TestNewFleetValidation(t *testing.T) {
	tests := []struct {
		name  string
		model Model
	}{
		{"zero range", Model{RangeMeters: 0, LowThreshold: 0.2}},
		{"negative range", Model{RangeMeters: -1, LowThreshold: 0.2}},
		{"threshold zero", Model{RangeMeters: 100, LowThreshold: 0}},
		{"threshold one", Model{RangeMeters: 100, LowThreshold: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewFleet(tt.model); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestAddValidation(t *testing.T) {
	f := newTestFleet(t, 1)
	tests := []struct {
		name string
		bike Bike
	}{
		{"zero id", Bike{ID: 0, Level: 1}},
		{"negative id", Bike{ID: -1, Level: 1}},
		{"duplicate", Bike{ID: 1, Level: 1}},
		{"level above 1", Bike{ID: 5, Level: 1.5}},
		{"level below 0", Bike{ID: 6, Level: -0.1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := f.Add(tt.bike); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestRideDrainsBattery(t *testing.T) {
	f := newTestFleet(t, 1)
	// Default range 35 km; a 3.5 km leg drains 10%.
	if err := f.Ride(1, geo.Pt(10, 3500)); err != nil {
		t.Fatal(err)
	}
	b, err := f.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Level-0.9) > 1e-9 {
		t.Errorf("level=%v, want 0.9", b.Level)
	}
	if b.Loc != geo.Pt(10, 3500) {
		t.Errorf("loc=%v", b.Loc)
	}
}

func TestRideEmptyBattery(t *testing.T) {
	f, err := NewFleet(DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Add(Bike{ID: 1, Loc: geo.Pt(0, 0), Level: 0.01}); err != nil {
		t.Fatal(err)
	}
	// 0.01 * 35000 = 350 m range; a 1 km leg must fail without change.
	err = f.Ride(1, geo.Pt(1000, 0))
	if !errors.Is(err, ErrBatteryEmpty) {
		t.Fatalf("want ErrBatteryEmpty, got %v", err)
	}
	b, _ := f.Get(1)
	if b.Loc != geo.Pt(0, 0) || b.Level != 0.01 {
		t.Error("failed ride mutated state")
	}
	if f.CanRide(1, geo.Pt(1000, 0)) {
		t.Error("CanRide should be false")
	}
	if !f.CanRide(1, geo.Pt(300, 0)) {
		t.Error("CanRide should be true for short leg")
	}
}

func TestUnknownBike(t *testing.T) {
	f := newTestFleet(t, 1)
	if _, err := f.Get(99); !errors.Is(err, ErrUnknownBike) {
		t.Errorf("Get: %v", err)
	}
	if err := f.Ride(99, geo.Pt(0, 0)); !errors.Is(err, ErrUnknownBike) {
		t.Errorf("Ride: %v", err)
	}
	if err := f.Charge(99); !errors.Is(err, ErrUnknownBike) {
		t.Errorf("Charge: %v", err)
	}
	if err := f.Teleport(99, geo.Pt(0, 0)); !errors.Is(err, ErrUnknownBike) {
		t.Errorf("Teleport: %v", err)
	}
	if f.CanRide(99, geo.Pt(0, 0)) {
		t.Error("CanRide unknown bike should be false")
	}
}

func TestChargeAndTeleport(t *testing.T) {
	f, err := NewFleet(DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Add(Bike{ID: 1, Loc: geo.Pt(0, 0), Level: 0.05}); err != nil {
		t.Fatal(err)
	}
	if err := f.Charge(1); err != nil {
		t.Fatal(err)
	}
	b, _ := f.Get(1)
	if b.Level != 1 {
		t.Errorf("level=%v after charge", b.Level)
	}
	if err := f.Teleport(1, geo.Pt(500, 500)); err != nil {
		t.Fatal(err)
	}
	b, _ = f.Get(1)
	if b.Loc != geo.Pt(500, 500) || b.Level != 1 {
		t.Error("teleport should move without draining")
	}
}

func TestLowBikes(t *testing.T) {
	f, err := NewFleet(DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	levels := []float64{0.1, 0.5, 0.19, 0.2, 0.9}
	for i, lv := range levels {
		if err := f.Add(Bike{ID: int64(i + 1), Level: lv}); err != nil {
			t.Fatal(err)
		}
	}
	low := f.LowBikes()
	if len(low) != 2 || low[0] != 1 || low[1] != 3 {
		t.Errorf("LowBikes=%v, want [1 3] (0.2 is not low)", low)
	}
}

func TestGroupByStation(t *testing.T) {
	f, err := NewFleet(DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	stations := []geo.Point{geo.Pt(0, 0), geo.Pt(1000, 0)}
	bikes := []Bike{
		{ID: 1, Loc: geo.Pt(10, 0), Level: 0.1},   // low, station 0
		{ID: 2, Loc: geo.Pt(990, 0), Level: 0.1},  // low, station 1
		{ID: 3, Loc: geo.Pt(20, 0), Level: 0.9},   // healthy, station 0
		{ID: 4, Loc: geo.Pt(5000, 0), Level: 0.1}, // low, too far with radius
	}
	for _, b := range bikes {
		if err := f.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	low := f.GroupByStation(stations, 500, true)
	if len(low[0]) != 1 || low[0][0] != 1 {
		t.Errorf("station 0 low=%v, want [1]", low[0])
	}
	if len(low[1]) != 1 || low[1][0] != 2 {
		t.Errorf("station 1 low=%v, want [2]", low[1])
	}
	all := f.GroupByStation(stations, math.Inf(1), false)
	if len(all[0]) != 2 { // bikes 1 and 3
		t.Errorf("station 0 all=%v", all[0])
	}
	if len(all[1]) != 2 { // bikes 2 and 4 (radius unlimited)
		t.Errorf("station 1 all=%v", all[1])
	}
	if got := f.GroupByStation(nil, 100, false); len(got) != 0 {
		t.Error("no stations should give empty grouping")
	}
}

func TestLevelHistogram(t *testing.T) {
	f, err := NewFleet(DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	for i, lv := range []float64{0.05, 0.5, 0.55, 1.0} {
		if err := f.Add(Bike{ID: int64(i + 1), Level: lv}); err != nil {
			t.Fatal(err)
		}
	}
	h := f.LevelHistogram(2)
	if h[0] != 1 || h[1] != 3 { // 1.0 lands in the last bin
		t.Errorf("histogram=%v, want [1 3]", h)
	}
	if got := f.LevelHistogram(0); len(got) != 1 {
		t.Error("bins<1 should clamp to 1")
	}
}

func TestSeedLevels(t *testing.T) {
	f := newTestFleet(t, 1000)
	rng := stats.NewRNG(11)
	if err := f.SeedLevels(rng, 0.15); err != nil {
		t.Fatal(err)
	}
	low := len(f.LowBikes())
	if low < 120 || low > 180 {
		t.Errorf("low bikes=%d, want ~150", low)
	}
	for _, b := range f.Bikes() {
		if b.Level < 0 || b.Level > 1 {
			t.Fatalf("bike %d level %v out of range", b.ID, b.Level)
		}
	}
	if err := f.SeedLevels(rng, 1.5); err == nil {
		t.Error("fraction > 1 should error")
	}
}

func TestSeedLevelsDeterministic(t *testing.T) {
	run := func() []float64 {
		f := newTestFleet(t, 50)
		if err := f.SeedLevels(stats.NewRNG(3), 0.2); err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, b := range f.Bikes() {
			out = append(out, b.Level)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SeedLevels not deterministic")
		}
	}
}

func TestBikesSnapshotIsCopy(t *testing.T) {
	f := newTestFleet(t, 2)
	snap := f.Bikes()
	snap[0].Level = 0
	b, _ := f.Get(snap[0].ID)
	if b.Level != 1 {
		t.Error("Bikes snapshot aliases fleet state")
	}
}

func TestBikeHelpers(t *testing.T) {
	m := DefaultModel()
	b := Bike{ID: 1, Level: 0.1}
	if !b.Low(m) {
		t.Error("0.1 should be low")
	}
	if got := b.RangeLeft(m); math.Abs(got-3500) > 1e-9 {
		t.Errorf("RangeLeft=%v, want 3500", got)
	}
}
