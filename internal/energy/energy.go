// Package energy models E-bike batteries and fleet energy state. The
// paper's tier-2 optimisation (Section IV) needs per-bike residual energy,
// a low-battery threshold policy (operators refill bikes below ~20%), and
// the characteristic distribution of Fig. 2(d): most bikes healthy with a
// tail of low-energy stragglers.
package energy

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/geo"
)

// Errors returned by Fleet operations.
var (
	// ErrUnknownBike is returned for operations on bike IDs not in the
	// fleet.
	ErrUnknownBike = errors.New("energy: unknown bike")
	// ErrBatteryEmpty is returned when a ride would drain a battery below
	// zero.
	ErrBatteryEmpty = errors.New("energy: battery empty")
)

// Model captures the consumption characteristics of an E-bike.
type Model struct {
	// RangeMeters is the distance a full battery covers (default 35 km,
	// typical for shared E-bikes).
	RangeMeters float64
	// LowThreshold is the charge fraction below which a bike needs
	// service (paper: 20%).
	LowThreshold float64
}

// DefaultModel returns the evaluation settings.
func DefaultModel() Model {
	return Model{RangeMeters: 35000, LowThreshold: 0.2}
}

func (m Model) validate() error {
	if m.RangeMeters <= 0 {
		return fmt.Errorf("energy: range %v must be positive", m.RangeMeters)
	}
	if m.LowThreshold <= 0 || m.LowThreshold >= 1 {
		return fmt.Errorf("energy: low threshold %v outside (0,1)", m.LowThreshold)
	}
	return nil
}

// Bike is one E-bike's live state.
type Bike struct {
	ID    int64     `json:"id"`
	Loc   geo.Point `json:"loc"`
	Level float64   `json:"level"` // charge fraction in [0,1]
}

// Low reports whether the bike needs charging under m.
func (b Bike) Low(m Model) bool { return b.Level < m.LowThreshold }

// RangeLeft returns the remaining ride distance under m.
func (b Bike) RangeLeft(m Model) float64 { return b.Level * m.RangeMeters }

// Fleet tracks every bike's position and charge.
type Fleet struct {
	model Model
	bikes map[int64]*Bike
	order []int64 // stable iteration order
}

// NewFleet validates the model and returns an empty fleet.
func NewFleet(model Model) (*Fleet, error) {
	if err := model.validate(); err != nil {
		return nil, err
	}
	return &Fleet{model: model, bikes: map[int64]*Bike{}}, nil
}

// Model returns the fleet's energy model.
func (f *Fleet) Model() Model { return f.model }

// Add registers a bike; duplicate IDs are rejected.
func (f *Fleet) Add(b Bike) error {
	if b.ID <= 0 {
		return fmt.Errorf("energy: bike id %d must be positive", b.ID)
	}
	if b.Level < 0 || b.Level > 1 {
		return fmt.Errorf("energy: bike %d level %v outside [0,1]", b.ID, b.Level)
	}
	if _, ok := f.bikes[b.ID]; ok {
		return fmt.Errorf("energy: bike %d already in fleet", b.ID)
	}
	copyB := b
	f.bikes[b.ID] = &copyB
	f.order = append(f.order, b.ID)
	return nil
}

// Len returns the fleet size.
func (f *Fleet) Len() int { return len(f.order) }

// Get returns a snapshot of one bike.
func (f *Fleet) Get(id int64) (Bike, error) {
	b, ok := f.bikes[id]
	if !ok {
		return Bike{}, fmt.Errorf("%w: %d", ErrUnknownBike, id)
	}
	return *b, nil
}

// Ride moves bike id to dest, draining charge proportionally to the
// Euclidean distance. It fails without state change when the battery
// cannot cover the leg.
func (f *Fleet) Ride(id int64, dest geo.Point) error {
	b, ok := f.bikes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBike, id)
	}
	dist := b.Loc.Dist(dest)
	drain := dist / f.model.RangeMeters
	if b.Level < drain {
		return fmt.Errorf("%w: bike %d has %.0f m range, leg needs %.0f m",
			ErrBatteryEmpty, id, b.RangeLeft(f.model), dist)
	}
	b.Level -= drain
	b.Loc = dest
	return nil
}

// CanRide reports whether bike id can cover a leg to dest.
func (f *Fleet) CanRide(id int64, dest geo.Point) bool {
	b, ok := f.bikes[id]
	if !ok {
		return false
	}
	return b.Level >= b.Loc.Dist(dest)/f.model.RangeMeters
}

// Charge restores bike id to full.
func (f *Fleet) Charge(id int64) error {
	b, ok := f.bikes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBike, id)
	}
	b.Level = 1
	return nil
}

// Teleport relocates a bike without energy cost (operator truck moves).
func (f *Fleet) Teleport(id int64, dest geo.Point) error {
	b, ok := f.bikes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBike, id)
	}
	b.Loc = dest
	return nil
}

// Bikes returns a stable-order snapshot of the fleet.
func (f *Fleet) Bikes() []Bike {
	out := make([]Bike, 0, len(f.order))
	for _, id := range f.order {
		out = append(out, *f.bikes[id])
	}
	return out
}

// LowBikes returns the IDs of bikes below the threshold, in stable order.
func (f *Fleet) LowBikes() []int64 {
	var out []int64
	for _, id := range f.order {
		if f.bikes[id].Low(f.model) {
			out = append(out, id)
		}
	}
	return out
}

// GroupByStation assigns every bike to its nearest station (within radius;
// +Inf accepts all) and returns station index → bike IDs. This builds the
// paper's per-station low-energy sets L_i when filtered with lowOnly.
func (f *Fleet) GroupByStation(stations []geo.Point, radius float64, lowOnly bool) map[int][]int64 {
	out := map[int][]int64{}
	if len(stations) == 0 {
		return out
	}
	for _, id := range f.order {
		b := f.bikes[id]
		if lowOnly && !b.Low(f.model) {
			continue
		}
		idx, d := geo.Nearest(b.Loc, stations)
		if idx < 0 || d > radius {
			continue
		}
		out[idx] = append(out[idx], id)
	}
	return out
}

// LevelHistogram buckets fleet charge levels into the given number of
// equal-width bins over [0,1] — the Fig. 2(d) energy-status view.
func (f *Fleet) LevelHistogram(bins int) []int {
	if bins < 1 {
		bins = 1
	}
	out := make([]int, bins)
	for _, id := range f.order {
		idx := int(f.bikes[id].Level * float64(bins))
		if idx >= bins {
			idx = bins - 1
		}
		out[idx]++
	}
	return out
}

// SeedLevels assigns initial charge levels with the Fig. 2(d) shape:
// lowTailFrac of the fleet is uniform in (0, threshold), the rest uniform
// in (threshold+0.1, 1). Assignment order is shuffled deterministically by
// rng so low bikes scatter across locations.
func (f *Fleet) SeedLevels(rng *rand.Rand, lowTailFrac float64) error {
	if lowTailFrac < 0 || lowTailFrac > 1 {
		return fmt.Errorf("energy: low tail fraction %v outside [0,1]", lowTailFrac)
	}
	ids := append([]int64(nil), f.order...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	nLow := int(float64(len(ids)) * lowTailFrac)
	for i, id := range ids {
		b := f.bikes[id]
		if i < nLow {
			b.Level = rng.Float64() * f.model.LowThreshold * 0.95
		} else {
			lo := f.model.LowThreshold + 0.1
			b.Level = lo + rng.Float64()*(1-lo)
		}
	}
	return nil
}
