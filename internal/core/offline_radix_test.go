package core

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"testing"

	"repro/internal/stats"
)

// Differential tests for the float64 radix sorts: on every input class
// the solver can produce — and on the abnormal classes it cannot, which
// must route to the comparison-sort fallback — sortAsc and sortPairsAsc
// must produce exactly the arrays slices.Sort and sort.Sort produce.

// radixInput builds one named test vector. Sizes straddle radixSortMin
// so both the fallback and the radix path run.
func radixInputs() map[string][]float64 {
	rng := stats.NewRNG(77)
	inputs := map[string][]float64{
		"empty":     {},
		"single":    {42.5},
		"tiny":      {3, 1, 2, 1, 0},
		"zeros":     make([]float64, radixSortMin+9),
		"negatives": {5, -1, 3, -2.5, 0},
	}
	uniform := make([]float64, 4*radixSortMin)
	for i := range uniform {
		uniform[i] = rng.Float64() * 1e4
	}
	inputs["uniform"] = uniform

	// Heavy exact ties from a small value alphabet: most radix passes
	// see constant bytes and are skipped.
	tied := make([]float64, 3*radixSortMin)
	for i := range tied {
		tied[i] = float64(rng.IntN(7)) * 12.25
	}
	inputs["tied"] = tied

	// Wildly mixed magnitudes exercise every exponent byte.
	mixed := make([]float64, 2*radixSortMin)
	for i := range mixed {
		mixed[i] = rng.Float64() * math.Pow(10, float64(rng.IntN(16)-4))
	}
	inputs["mixed-magnitude"] = mixed

	// Abnormal inputs (impossible for walk costs) must hit the bit-screen
	// fallback and still sort correctly.
	abnormal := make([]float64, radixSortMin+33)
	for i := range abnormal {
		abnormal[i] = rng.Float64()*100 - 50
	}
	abnormal[7] = math.Inf(1)
	abnormal[11] = math.Copysign(0, -1)
	inputs["abnormal"] = abnormal
	return inputs
}

func TestRadixSortAscMatchesSlicesSort(t *testing.T) {
	var rs radixScratch
	for name, in := range radixInputs() {
		got := append([]float64(nil), in...)
		want := append([]float64(nil), in...)
		rs.sortAsc(got)
		slices.Sort(want)
		if len(got) != len(want) {
			t.Fatalf("%s: length changed: %d != %d", name, len(got), len(want))
		}
		for k := range want {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Fatalf("%s: position %d: got bits %x, want bits %x",
					name, k, math.Float64bits(got[k]), math.Float64bits(want[k]))
			}
		}
	}
}

func TestRadixSortPairsAscMatchesSortSort(t *testing.T) {
	for name, in := range radixInputs() {
		got := &offlineScratch{cost: append([]float64(nil), in...), idx: make([]int, len(in))}
		want := &offlineScratch{cost: append([]float64(nil), in...), idx: make([]int, len(in))}
		for k := range in {
			got.idx[k] = k
			want.idx[k] = k
		}
		var rs radixScratch
		rs.sortPairsAsc(got)
		sort.Sort(want)
		for k := range in {
			if math.Float64bits(got.cost[k]) != math.Float64bits(want.cost[k]) {
				t.Fatalf("%s: cost[%d]: got bits %x, want bits %x",
					name, k, math.Float64bits(got.cost[k]), math.Float64bits(want.cost[k]))
			}
			if got.idx[k] != want.idx[k] {
				t.Fatalf("%s: idx[%d]: got %d, want %d — tie order diverged",
					name, k, got.idx[k], want.idx[k])
			}
		}
	}
}

// TestRadixScratchReuse re-sorts through one shared scratch, as the
// solver does across thousands of iterations: leftover histograms or
// ping-pong buffers from a previous call must not leak into the next.
func TestRadixScratchReuse(t *testing.T) {
	rng := stats.NewRNG(123)
	var rs radixScratch
	sc := &offlineScratch{}
	for round := 0; round < 25; round++ {
		n := 1 + rng.IntN(3*radixSortMin)
		in := make([]float64, n)
		for i := range in {
			in[i] = float64(rng.IntN(40)) * 3.5
		}
		got := append([]float64(nil), in...)
		want := append([]float64(nil), in...)
		rs.sortAsc(got)
		slices.Sort(want)
		for k := range want {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Fatalf("round %d (n=%d): sortAsc diverged at %d", round, n, k)
			}
		}
		sc.idx = sc.idx[:0]
		sc.cost = sc.cost[:0]
		for k, c := range in {
			sc.idx = append(sc.idx, k)
			sc.cost = append(sc.cost, c)
		}
		wantSc := &offlineScratch{
			idx:  append([]int(nil), sc.idx...),
			cost: append([]float64(nil), sc.cost...),
		}
		rs.sortPairsAsc(sc)
		sort.Sort(wantSc)
		for k := range wantSc.idx {
			if sc.idx[k] != wantSc.idx[k] {
				t.Fatalf("round %d (n=%d): sortPairsAsc idx diverged at %d: %s",
					round, n, k, fmt.Sprint(sc.idx[:min(n, 20)]))
			}
		}
	}
}
