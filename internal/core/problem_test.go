package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geo"
)

func TestNewProblemValidation(t *testing.T) {
	valid := []Demand{{Loc: geo.Pt(0, 0), Arrivals: 1}}
	tests := []struct {
		name    string
		demands []Demand
		opening []float64
		wantErr bool
	}{
		{"valid", valid, []float64{5}, false},
		{"empty", nil, nil, true},
		{"length mismatch", valid, []float64{1, 2}, true},
		{"zero arrivals", []Demand{{Loc: geo.Pt(0, 0)}}, []float64{1}, true},
		{"negative arrivals", []Demand{{Loc: geo.Pt(0, 0), Arrivals: -2}}, []float64{1}, true},
		{"non-finite loc", []Demand{{Loc: geo.Pt(math.NaN(), 0), Arrivals: 1}}, []float64{1}, true},
		{"negative opening", valid, []float64{-1}, true},
		{"nan opening", valid, []float64{math.NaN()}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewProblem(tt.demands, tt.opening)
			if (err != nil) != tt.wantErr {
				t.Errorf("err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestNewProblemCopiesInputs(t *testing.T) {
	demands := []Demand{{Loc: geo.Pt(0, 0), Arrivals: 1}}
	opening := []float64{5}
	p, err := NewProblem(demands, opening)
	if err != nil {
		t.Fatal(err)
	}
	demands[0].Arrivals = 99
	opening[0] = 99
	if p.Demands[0].Arrivals != 1 || p.Opening[0] != 5 {
		t.Error("NewProblem shares caller slices")
	}
}

func TestUniformProblem(t *testing.T) {
	p, err := UniformProblem([]geo.Point{geo.Pt(0, 0), geo.Pt(3, 4)}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Demands[1].Arrivals != 1 || p.Opening[0] != 7 {
		t.Error("UniformProblem fields wrong")
	}
	if got := p.Walk(0, 1); got != 5 {
		t.Errorf("Walk=%v, want 5", got)
	}
	if _, err := UniformProblem(nil, 1); !errors.Is(err, ErrEmptyProblem) {
		t.Errorf("empty: %v", err)
	}
}

func TestWalkScalesWithArrivals(t *testing.T) {
	p, err := NewProblem(
		[]Demand{{Loc: geo.Pt(0, 0), Arrivals: 1}, {Loc: geo.Pt(10, 0), Arrivals: 3}},
		[]float64{1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Walk(0, 1); got != 30 {
		t.Errorf("Walk=%v, want 30 (3 arrivals x 10 m)", got)
	}
	if got := p.Walk(1, 0); got != 10 {
		t.Errorf("Walk=%v, want 10 (1 arrival x 10 m)", got)
	}
}

func TestEvaluate(t *testing.T) {
	p, err := UniformProblem([]geo.Point{geo.Pt(0, 0), geo.Pt(10, 0), geo.Pt(20, 0)}, 100)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name    string
		sol     Solution
		want    Cost
		wantErr bool
	}{
		{
			name: "single station",
			sol:  Solution{Open: []int{0}, Assign: []int{0, 0, 0}},
			want: Cost{Walking: 30, Opening: 100},
		},
		{
			name: "two stations",
			sol:  Solution{Open: []int{0, 2}, Assign: []int{0, 2, 2}},
			want: Cost{Walking: 10, Opening: 200},
		},
		{
			name:    "assignment length mismatch",
			sol:     Solution{Open: []int{0}, Assign: []int{0}},
			wantErr: true,
		},
		{
			name:    "unopened assignment",
			sol:     Solution{Open: []int{0}, Assign: []int{0, 1, 0}},
			wantErr: true,
		},
		{
			name:    "open out of range",
			sol:     Solution{Open: []int{9}, Assign: []int{9, 9, 9}},
			wantErr: true,
		},
		{
			name:    "double open",
			sol:     Solution{Open: []int{0, 0}, Assign: []int{0, 0, 0}},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := p.Evaluate(&tt.sol)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if math.Abs(got.Walking-tt.want.Walking) > 1e-9 || math.Abs(got.Opening-tt.want.Opening) > 1e-9 {
				t.Errorf("cost %v, want %v", got, tt.want)
			}
			if math.Abs(got.Total()-(tt.want.Walking+tt.want.Opening)) > 1e-9 {
				t.Errorf("Total=%v", got.Total())
			}
		})
	}
}

func TestReassignNearest(t *testing.T) {
	p, err := UniformProblem([]geo.Point{geo.Pt(0, 0), geo.Pt(10, 0), geo.Pt(100, 0)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sol := &Solution{Open: []int{0, 2}, Assign: []int{2, 2, 2}} // deliberately bad
	if err := p.ReassignNearest(sol); err != nil {
		t.Fatal(err)
	}
	if sol.Assign[0] != 0 || sol.Assign[1] != 0 || sol.Assign[2] != 2 {
		t.Errorf("Assign=%v, want [0 0 2]", sol.Assign)
	}
	empty := &Solution{Assign: make([]int, 3)}
	if err := p.ReassignNearest(empty); !errors.Is(err, ErrNoStations) {
		t.Errorf("no stations: %v", err)
	}
}

func TestStations(t *testing.T) {
	p, err := UniformProblem([]geo.Point{geo.Pt(0, 0), geo.Pt(10, 20)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Stations(&Solution{Open: []int{1}})
	if len(got) != 1 || got[0] != geo.Pt(10, 20) {
		t.Errorf("Stations=%v", got)
	}
}

func TestCostString(t *testing.T) {
	c := Cost{Walking: 1, Opening: 2}
	if c.String() == "" {
		t.Error("empty string")
	}
}
