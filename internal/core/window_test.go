package core

import (
	"testing"

	"repro/internal/geo"
)

func TestPushWindowKeepsLastWPoints(t *testing.T) {
	const w = 16
	e := &ESharing{cfg: ESharingConfig{WindowSize: w}}
	var pushed []geo.Point
	for i := 0; i < 100; i++ {
		pt := geo.Pt(float64(i), float64(-i))
		pushed = append(pushed, pt)
		e.pushWindow(pt)
		wantLen := i + 1
		if wantLen > w {
			wantLen = w
		}
		if len(e.window) != wantLen {
			t.Fatalf("after %d pushes: window len %d, want %d", i+1, len(e.window), wantLen)
		}
		for k, got := range e.window {
			want := pushed[len(pushed)-len(e.window)+k]
			if got != want {
				t.Fatalf("after %d pushes: window[%d]=%v, want %v", i+1, k, got, want)
			}
		}
	}
}

func TestPushWindowMemoryBounded(t *testing.T) {
	// The old implementation resliced the tail of an append-grown array
	// (`window = window[len-W:]`), so the backing array — and every point
	// ever pushed — was retained forever. The fix copies in place: after
	// warm-up the capacity must never grow again, no matter how many
	// points stream through.
	const w = 32
	e := &ESharing{cfg: ESharingConfig{WindowSize: w}}
	for i := 0; i < 2*w; i++ {
		e.pushWindow(geo.Pt(float64(i), 0))
	}
	warm := cap(e.window)
	if warm > 2*w {
		t.Fatalf("warm-up capacity %d exceeds 2x window size %d", warm, 2*w)
	}
	for i := 0; i < 100000; i++ {
		e.pushWindow(geo.Pt(float64(i), 1))
	}
	if got := cap(e.window); got != warm {
		t.Errorf("capacity grew from %d to %d after steady-state pushes; window memory is not O(WindowSize)", warm, got)
	}
	if len(e.window) != w {
		t.Errorf("window len %d, want %d", len(e.window), w)
	}
}
