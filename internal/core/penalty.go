package core

import (
	"fmt"
	"math"
)

// PenaltyType selects one of the paper's deviation-penalty functions
// (Eqs. 6–8) or no penalty (pure Meyerson behaviour).
type PenaltyType int

// Penalty types.
const (
	// NoPenalty disables the deviation penalty: g ≡ 1.
	NoPenalty PenaltyType = iota + 1
	// PenaltyTypeI is the hyperbolic decay 1/(c/L + 1): modest decline,
	// keeps probability > 0.2 beyond 3L. Best for less-similar (below
	// 80%) live distributions.
	PenaltyTypeI
	// PenaltyTypeII is the linear cutoff 1 − c/L, zero beyond L: the
	// hardest penalty. Best for very-similar (above 95%) distributions.
	PenaltyTypeII
	// PenaltyTypeIII is the Gaussian exp(−c²/L²): between I and II. Best
	// for similar (80–95%) distributions.
	PenaltyTypeIII
)

// String implements fmt.Stringer.
func (t PenaltyType) String() string {
	switch t {
	case NoPenalty:
		return "none"
	case PenaltyTypeI:
		return "type-I"
	case PenaltyTypeII:
		return "type-II"
	case PenaltyTypeIII:
		return "type-III"
	default:
		return "unknown"
	}
}

// Penalty is a deviation-penalty function g(c) with tolerance L, mapping
// the distance c between a requested destination and its nearest landmark
// parking to an opening-probability multiplier in [0, 1].
type Penalty struct {
	Type      PenaltyType
	Tolerance float64 // the paper's L, in metres
}

// NewPenalty validates the tolerance and returns the function.
func NewPenalty(t PenaltyType, tolerance float64) (Penalty, error) {
	switch t {
	case NoPenalty, PenaltyTypeI, PenaltyTypeII, PenaltyTypeIII:
	default:
		return Penalty{}, fmt.Errorf("core: unknown penalty type %d", int(t))
	}
	if tolerance <= 0 {
		return Penalty{}, fmt.Errorf("core: tolerance %v must be positive", tolerance)
	}
	return Penalty{Type: t, Tolerance: tolerance}, nil
}

// Eval returns g(c) for walking cost c ≥ 0 (negative c is clamped to 0).
func (p Penalty) Eval(c float64) float64 {
	if c < 0 {
		c = 0
	}
	switch p.Type {
	case PenaltyTypeI:
		return 1 / (c/p.Tolerance + 1)
	case PenaltyTypeII:
		if c > p.Tolerance {
			return 0
		}
		return 1 - c/p.Tolerance
	case PenaltyTypeIII:
		r := c / p.Tolerance
		return math.Exp(-r * r)
	default:
		return 1
	}
}

// Derivative returns dg/dc at c, the changing rate plotted in Fig. 5(b).
func (p Penalty) Derivative(c float64) float64 {
	if c < 0 {
		c = 0
	}
	L := p.Tolerance
	switch p.Type {
	case PenaltyTypeI:
		d := c/L + 1
		return -1 / (L * d * d)
	case PenaltyTypeII:
		if c > L {
			return 0
		}
		return -1 / L
	case PenaltyTypeIII:
		r := c / L
		return -2 * c / (L * L) * math.Exp(-r*r)
	default:
		return 0
	}
}

// PenaltyForBand maps a KS-test similarity band to the paper's
// recommended penalty type (Section V-C): very similar → II, similar →
// III, less similar → I.
func PenaltyForBand(similarityPct float64) PenaltyType {
	switch {
	case similarityPct > 95:
		return PenaltyTypeII
	case similarityPct >= 80:
		return PenaltyTypeIII
	default:
		return PenaltyTypeI
	}
}
