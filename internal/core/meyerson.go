package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/stats"
)

// Decision records one streaming placement decision.
type Decision struct {
	// Station is the assigned parking location.
	Station geo.Point
	// StationIndex identifies the station within the placer's set.
	StationIndex int
	// Opened reports whether the request caused a new parking.
	Opened bool
	// Walk is the distance from the request to the assigned station.
	Walk float64
}

// OnlinePlacer is a streaming PLP algorithm: each destination request
// receives an irrevocable station assignment.
type OnlinePlacer interface {
	// Place handles one destination request.
	Place(dest geo.Point) (Decision, error)
	// Stations returns the currently established parking locations.
	Stations() []geo.Point
	// Name identifies the algorithm in reports.
	Name() string
}

// Meyerson implements Meyerson's randomized online facility location
// (FOCS 2001), the paper's first online baseline: a request at distance d
// from the nearest open facility opens a new one with probability
// min(d/f, 1), otherwise it is assigned to that facility.
type Meyerson struct {
	OpeningCost  float64
	rng          *stats.SnapshotRNG
	index        *geo.DynamicIndex
	configDigest uint64
}

var _ OnlinePlacer = (*Meyerson)(nil)

// NewMeyerson validates the opening cost and builds the placer.
func NewMeyerson(openingCost float64, seed uint64) (*Meyerson, error) {
	if openingCost <= 0 {
		return nil, fmt.Errorf("core: meyerson opening cost %v must be positive", openingCost)
	}
	return &Meyerson{
		OpeningCost:  openingCost,
		rng:          stats.NewSnapshotRNGStream(seed, stats.StreamMeyerson),
		index:        geo.NewDynamicIndex(nil),
		configDigest: meyersonConfigDigest(openingCost, seed),
	}, nil
}

// Place implements OnlinePlacer.
//
//esharing:hotpath
func (m *Meyerson) Place(dest geo.Point) (Decision, error) {
	if !dest.IsFinite() {
		return Decision{}, &NonFiniteError{Dest: dest}
	}
	nearest, d := m.index.Nearest(dest)
	prob := 1.0
	if nearest >= 0 {
		prob = d / m.OpeningCost
	}
	if prob > 1 {
		prob = 1
	}
	if m.rng.Float64() < prob {
		idx := m.index.Insert(dest)
		return Decision{Station: dest, StationIndex: idx, Opened: true}, nil
	}
	return Decision{Station: m.index.At(nearest), StationIndex: nearest, Walk: d}, nil
}

// Stations implements OnlinePlacer.
func (m *Meyerson) Stations() []geo.Point {
	return m.index.Points()
}

// Name implements OnlinePlacer.
func (m *Meyerson) Name() string { return "meyerson" }

// OnlineKMeans implements the online k-means of Liberty, Sriharsha and
// Sviridenko (ALENEX 2016), the paper's second online baseline. A point at
// squared distance d² from the nearest centre becomes a new centre with
// probability min(d²/f_r, 1); after q_r = O(k) new centres the phase
// advances and the facility cost doubles.
type OnlineKMeans struct {
	TargetK int

	rng          *stats.SnapshotRNG
	index        *geo.DynamicIndex
	buffer       []geo.Point // first k+1 points used to estimate w*
	facility     float64
	phaseNew     int
	configDigest uint64
}

var _ OnlinePlacer = (*OnlineKMeans)(nil)

// NewOnlineKMeans builds the placer with the given target cluster count.
func NewOnlineKMeans(targetK int, seed uint64) (*OnlineKMeans, error) {
	if targetK < 1 {
		return nil, fmt.Errorf("core: online k-means target %d < 1", targetK)
	}
	return &OnlineKMeans{
		TargetK:      targetK,
		rng:          stats.NewSnapshotRNGStream(seed, stats.StreamOnlineKMeans),
		index:        geo.NewDynamicIndex(nil),
		configDigest: kmeansConfigDigest(targetK, seed),
	}, nil
}

// Place implements OnlinePlacer.
//
//esharing:hotpath
func (o *OnlineKMeans) Place(dest geo.Point) (Decision, error) {
	if !dest.IsFinite() {
		return Decision{}, &NonFiniteError{Dest: dest}
	}
	// Bootstrap: the first k+1 points all become centres and seed f_1
	// from their pairwise distance scale. The median pairwise distance is
	// used instead of the paper's minimum: request streams contain
	// near-coincident destinations (same grid cell), and a near-zero
	// minimum would start f so low that the doubling phases never catch
	// up, opening a centre for almost every request.
	if len(o.buffer) <= o.TargetK {
		o.buffer = append(o.buffer, dest)
		idx := o.index.Insert(dest)
		if len(o.buffer) == o.TargetK+1 {
			w := medianPairwiseDist(o.buffer)
			if w <= 0 || math.IsInf(w, 1) {
				w = 1
			}
			o.facility = w * w / 2 / float64(o.TargetK)
		}
		return Decision{Station: dest, StationIndex: idx, Opened: true}, nil
	}
	nearest, d := o.index.Nearest(dest)
	prob := d * d / o.facility
	if prob > 1 {
		prob = 1
	}
	if o.rng.Float64() < prob {
		idx := o.index.Insert(dest)
		o.phaseNew++
		if o.phaseNew >= 3*o.TargetK {
			o.phaseNew = 0
			o.facility *= 2
		}
		return Decision{Station: dest, StationIndex: idx, Opened: true}, nil
	}
	return Decision{Station: o.index.At(nearest), StationIndex: nearest, Walk: d}, nil
}

// medianPairwiseDist returns the median over all unordered pairwise
// distances in pts (+Inf for fewer than two points).
func medianPairwiseDist(pts []geo.Point) float64 {
	if len(pts) < 2 {
		return math.Inf(1)
	}
	dists := make([]float64, 0, len(pts)*(len(pts)-1)/2)
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			dists = append(dists, pts[i].Dist(pts[j]))
		}
	}
	sort.Float64s(dists)
	return dists[len(dists)/2]
}

// Stations implements OnlinePlacer.
func (o *OnlineKMeans) Stations() []geo.Point {
	return o.index.Points()
}

// Name implements OnlinePlacer.
func (o *OnlineKMeans) Name() string { return "online-kmeans" }

// RunStream drives any OnlinePlacer over a destination stream and
// accumulates the Eq. 1 cost using openingCost for every opened station —
// the evaluation convention of Figs. 4/6 and Table V (the true
// space-occupation cost is charged per station regardless of the
// algorithm's internal working costs).
func RunStream(p OnlinePlacer, dests []geo.Point, openingCost float64) (Cost, []Decision, error) {
	var cost Cost
	decisions := make([]Decision, 0, len(dests))
	for i, dest := range dests {
		d, err := p.Place(dest)
		if err != nil {
			return Cost{}, nil, fmt.Errorf("request %d: %w", i, err)
		}
		if d.Opened {
			cost.Opening += openingCost
		}
		cost.Walking += d.Walk
		decisions = append(decisions, d)
	}
	return cost, decisions, nil
}
