package core

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/stats"
)

// solveOfflineReference is a verbatim copy of the sequential seed
// implementation of SolveOffline (pre-parallelisation). It is the oracle
// the parallel solver must match bit for bit: differential tests compare
// stations, assignments and evaluated costs against it at every worker
// count. Do not "fix" or modernise this copy — its value is that it is
// the original algorithm, allocations and all.
func solveOfflineReference(p *Problem) (*Solution, error) {
	n := len(p.Demands)
	if n == 0 {
		return nil, ErrEmptyProblem
	}

	const unassigned = -1
	assign := make([]int, n)
	curCost := make([]float64, n)
	for j := range assign {
		assign[j] = unassigned
		curCost[j] = math.Inf(1)
	}
	opened := make([]bool, n)
	openCost := append([]float64(nil), p.Opening...)
	var openOrder []int
	remaining := n

	type bestChoice struct {
		cand   int
		prefix int // number of unconnected clients to connect
		ratio  float64
		sorted []int // unconnected clients sorted by walk cost
	}

	for remaining > 0 {
		best := bestChoice{cand: -1, ratio: math.Inf(1)}
		for i := 0; i < n; i++ {
			// Savings from already-connected clients that prefer i.
			var savings float64
			for j := 0; j < n; j++ {
				if assign[j] == unassigned {
					continue
				}
				if c := p.Walk(i, j); c < curCost[j] {
					savings += curCost[j] - c
				}
			}
			// Unconnected clients sorted by connection cost to i.
			unconn := make([]int, 0, remaining)
			for j := 0; j < n; j++ {
				if assign[j] == unassigned {
					unconn = append(unconn, j)
				}
			}
			sort.Slice(unconn, func(a, b int) bool {
				return p.Walk(i, unconn[a]) < p.Walk(i, unconn[b])
			})
			base := openCost[i] - savings
			var acc float64
			for k, j := range unconn {
				acc += p.Walk(i, j)
				ratio := (base + acc) / float64(k+1)
				if ratio < best.ratio {
					best = bestChoice{cand: i, prefix: k + 1, ratio: ratio, sorted: unconn}
				}
			}
		}
		if best.cand == -1 {
			return nil, ErrEmptyProblem
		}
		i := best.cand
		if !opened[i] {
			opened[i] = true
			openOrder = append(openOrder, i)
		}
		openCost[i] = 0
		for _, j := range best.sorted[:best.prefix] {
			assign[j] = i
			curCost[j] = p.Walk(i, j)
			remaining--
		}
		for j := 0; j < n; j++ {
			if assign[j] == unassigned || assign[j] == i {
				continue
			}
			if c := p.Walk(i, j); c < curCost[j] {
				assign[j] = i
				curCost[j] = c
			}
		}
	}

	sol := &Solution{Open: openOrder, Assign: assign}
	if err := p.ReassignNearest(sol); err != nil {
		return nil, err
	}
	dropUnusedStations(p, sol)
	return sol, nil
}

// randomOfflineProblem builds a reproducible instance with clustered and
// scattered demand, varied arrival weights and heterogeneous opening
// costs — deliberately messy so cost ties and near-ties occur.
func randomOfflineProblem(seed uint64, n int) *Problem {
	rng := stats.NewRNG(seed)
	demands := make([]Demand, n)
	for i := range demands {
		var pt geo.Point
		if rng.IntN(3) == 0 {
			// Clustered: tight groups produce heavily tied distances.
			cx := float64(rng.IntN(4)) * 800
			cy := float64(rng.IntN(4)) * 800
			pt = geo.Pt(cx+rng.Float64()*50, cy+rng.Float64()*50)
		} else {
			pt = geo.Pt(rng.Float64()*3000, rng.Float64()*3000)
		}
		demands[i] = Demand{Loc: pt, Arrivals: 1 + float64(rng.IntN(5))}
	}
	opening := make([]float64, n)
	for i := range opening {
		opening[i] = 1000 + rng.Float64()*4000
	}
	p, err := NewProblem(demands, opening)
	if err != nil {
		panic(err)
	}
	return p
}

func sameSolution(t *testing.T, label string, p *Problem, got, want *Solution) {
	t.Helper()
	if len(got.Open) != len(want.Open) {
		t.Fatalf("%s: opened %d stations, want %d", label, len(got.Open), len(want.Open))
	}
	for k := range want.Open {
		if got.Open[k] != want.Open[k] {
			t.Fatalf("%s: Open[%d]=%d, want %d", label, k, got.Open[k], want.Open[k])
		}
	}
	for j := range want.Assign {
		if got.Assign[j] != want.Assign[j] {
			t.Fatalf("%s: Assign[%d]=%d, want %d", label, j, got.Assign[j], want.Assign[j])
		}
	}
	gc, err := p.Evaluate(got)
	if err != nil {
		t.Fatalf("%s: evaluate got: %v", label, err)
	}
	wc, err := p.Evaluate(want)
	if err != nil {
		t.Fatalf("%s: evaluate want: %v", label, err)
	}
	if math.Float64bits(gc.Walking) != math.Float64bits(wc.Walking) ||
		math.Float64bits(gc.Opening) != math.Float64bits(wc.Opening) {
		t.Fatalf("%s: cost %v not bit-identical to %v", label, gc, wc)
	}
}

func TestSolveOfflineWorkersMatchesReference(t *testing.T) {
	// The tentpole differential: at every worker count, including the
	// prime that never divides n, the parallel solver reproduces the seed
	// implementation exactly — same stations in the same order, same
	// assignment, bit-identical costs.
	for _, n := range []int{1, 2, 17, 60, 140} {
		p := randomOfflineProblem(uint64(1000+n), n)
		want, err := solveOfflineReference(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			got, err := SolveOfflineWorkers(p, workers)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			sameSolution(t, fmt.Sprintf("n=%d workers=%d", n, workers), p, got, want)
		}
	}
}

func TestSolveOfflineDefaultMatchesReference(t *testing.T) {
	// SolveOffline (the parallel.Default() path, whatever the ambient
	// GOMAXPROCS/ESHARING_PARALLELISM) must agree with the seed too.
	p := randomOfflineProblem(7, 90)
	want, err := solveOfflineReference(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveOffline(p)
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, "default", p, got, want)
}

func TestSolveOfflineAllocBudget(t *testing.T) {
	// The reworked solver reuses per-worker scratch across iterations, so
	// its allocation count is O(n + iterations), not O(n²). The seed
	// implementation allocates ~23k times on this instance; the budget
	// below (with generous slack) catches any return to per-candidate
	// allocation.
	p := randomOfflineProblem(42, 150)
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := SolveOfflineWorkers(p, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 600 {
		t.Errorf("SolveOfflineWorkers(n=150, workers=1) allocates %.0f times per run, want <= 600", allocs)
	}
}

// BenchmarkSolveOfflineReference times the seed implementation on the
// same instances as BenchmarkSolveOffline, so before/after speedups in
// EXPERIMENTS.md compare identical work.
func BenchmarkSolveOfflineReference(b *testing.B) {
	for _, n := range []int{200, 500, 1000} {
		p := randomOfflineProblem(uint64(n), n)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := solveOfflineReference(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSolveOffline(b *testing.B) {
	for _, n := range []int{200, 500, 1000} {
		p := randomOfflineProblem(uint64(n), n)
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("N=%d/workers=%d", n, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := SolveOfflineWorkers(p, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
