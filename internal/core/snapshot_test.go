package core

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/stats"
)

// snapshotTestPlacers builds each durable placer twice from identical
// construction inputs, returning (original, restoreTarget) pairs.
func snapshotTestPlacers(t *testing.T) map[string][2]DurablePlacer {
	t.Helper()
	hist := stats.SamplePoints(stats.NewRNG(3),
		stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 2000)}, 80)
	landmarks := []geo.Point{geo.Pt(0, 0), geo.Pt(2000, 0), geo.Pt(0, 2000), geo.Pt(2000, 2000)}
	cfg := DefaultESharingConfig()
	cfg.TestEvery = 25
	cfg.WindowSize = 25
	cfg.Seed = 7

	mk := func() map[string]DurablePlacer {
		es, err := NewESharing(landmarks, 4000, hist, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mey, err := NewMeyerson(1500, 7)
		if err != nil {
			t.Fatal(err)
		}
		km, err := NewOnlineKMeans(8, 7)
		if err != nil {
			t.Fatal(err)
		}
		return map[string]DurablePlacer{"e-sharing": es, "meyerson": mey, "online-kmeans": km}
	}
	a, b := mk(), mk()
	out := map[string][2]DurablePlacer{}
	for name := range a {
		out[name] = [2]DurablePlacer{a[name], b[name]}
	}
	return out
}

func sameDecision(a, b Decision) bool {
	return a.StationIndex == b.StationIndex &&
		a.Opened == b.Opened &&
		math.Float64bits(a.Walk) == math.Float64bits(b.Walk) &&
		math.Float64bits(a.Station.X) == math.Float64bits(b.Station.X) &&
		math.Float64bits(a.Station.Y) == math.Float64bits(b.Station.Y)
}

// TestStateRoundTripContinuesBitIdentically is the core durability
// contract: capture a placer's state mid-stream, restore it into a
// fresh placer built from the same inputs, and both must make
// bit-identical decisions on the remainder of the stream.
func TestStateRoundTripContinuesBitIdentically(t *testing.T) {
	dests := stats.SamplePoints(stats.NewRNG(11),
		stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 2000)}, 400)
	for name, pair := range snapshotTestPlacers(t) {
		t.Run(name, func(t *testing.T) {
			orig, fresh := pair[0], pair[1]
			if orig.ConfigDigest() != fresh.ConfigDigest() {
				t.Fatalf("identical construction inputs produced different digests")
			}
			// Drive the first half through the original only.
			for i, d := range dests[:200] {
				if _, err := orig.Place(d); err != nil {
					t.Fatalf("request %d: %v", i, err)
				}
			}
			state, err := orig.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.UnmarshalState(state); err != nil {
				t.Fatal(err)
			}
			if got, want := StationDigest(fresh.Stations()), StationDigest(orig.Stations()); got != want {
				t.Fatalf("restored station digest %#x, want %#x", got, want)
			}
			// The second half must produce identical decisions from both.
			for i, d := range dests[200:] {
				da, errA := orig.Place(d)
				db, errB := fresh.Place(d)
				if errA != nil || errB != nil {
					t.Fatalf("request %d: errs %v / %v", i, errA, errB)
				}
				if !sameDecision(da, db) {
					t.Fatalf("request %d diverged: %+v vs %+v", i, da, db)
				}
			}
		})
	}
}

// TestStateRoundTripPreservesESharingFigures pins the ESharing-specific
// state (similarity figure, working cost, counters) across a roundtrip.
func TestStateRoundTripPreservesESharingFigures(t *testing.T) {
	pair := snapshotTestPlacers(t)["e-sharing"]
	orig := pair[0].(*ESharing)
	fresh := pair[1].(*ESharing)
	dests := stats.SamplePoints(stats.NewRNG(13),
		stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 2000)}, 150)
	for _, d := range dests {
		if _, err := orig.Place(d); err != nil {
			t.Fatal(err)
		}
	}
	state, err := orig.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.UnmarshalState(state); err != nil {
		t.Fatal(err)
	}
	if got, want := fresh.LastSimilarity(), orig.LastSimilarity(); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("similarity %v, want %v", got, want)
	}
	if got, want := fresh.WorkingOpeningCost(), orig.WorkingOpeningCost(); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("working cost %v, want %v", got, want)
	}
	if got, want := fresh.OnlineOpens(), orig.OnlineOpens(); got != want {
		t.Errorf("online opens %d, want %d", got, want)
	}
	if got, want := fresh.LandmarkCount(), orig.LandmarkCount(); got != want {
		t.Errorf("landmarks %d, want %d", got, want)
	}
	if got, want := fresh.Penalty(), orig.Penalty(); got != want {
		t.Errorf("penalty %+v, want %+v", got, want)
	}
}

// TestConfigDigestSensitivity: any change to a construction input must
// change the digest, or recovery would replay into the wrong engine.
func TestConfigDigestSensitivity(t *testing.T) {
	hist := stats.SamplePoints(stats.NewRNG(3),
		stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 2000)}, 40)
	landmarks := []geo.Point{geo.Pt(0, 0), geo.Pt(2000, 2000)}
	base := DefaultESharingConfig()
	mk := func(lm []geo.Point, opening float64, h []geo.Point, cfg ESharingConfig) uint64 {
		es, err := NewESharing(lm, opening, h, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return es.ConfigDigest()
	}
	ref := mk(landmarks, 4000, hist, base)
	seeded := base
	seeded.Seed = 99
	tol := base
	tol.Tolerance = 300
	variants := map[string]uint64{
		"seed":      mk(landmarks, 4000, hist, seeded),
		"tolerance": mk(landmarks, 4000, hist, tol),
		"opening":   mk(landmarks, 5000, hist, base),
		"landmarks": mk(landmarks[:1], 4000, hist, base),
		"history":   mk(landmarks, 4000, hist[:39], base),
	}
	for name, got := range variants {
		if got == ref {
			t.Errorf("digest insensitive to %s change", name)
		}
	}

	m1, _ := NewMeyerson(1500, 7)
	m2, _ := NewMeyerson(1500, 8)
	m3, _ := NewMeyerson(1501, 7)
	if m1.ConfigDigest() == m2.ConfigDigest() || m1.ConfigDigest() == m3.ConfigDigest() {
		t.Error("meyerson digest insensitive to seed or opening cost")
	}
	k1, _ := NewOnlineKMeans(8, 7)
	k2, _ := NewOnlineKMeans(9, 7)
	if k1.ConfigDigest() == k2.ConfigDigest() {
		t.Error("kmeans digest insensitive to target k")
	}
	if m1.ConfigDigest() == k1.ConfigDigest() {
		t.Error("different algorithms share a digest")
	}
}

// TestUnmarshalStateRejectsGarbage: truncated or trailing bytes must
// error, never panic or half-apply.
func TestUnmarshalStateRejectsGarbage(t *testing.T) {
	for name, pair := range snapshotTestPlacers(t) {
		t.Run(name, func(t *testing.T) {
			orig, fresh := pair[0], pair[1]
			dests := stats.SamplePoints(stats.NewRNG(5),
				stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 2000)}, 50)
			for _, d := range dests {
				if _, err := orig.Place(d); err != nil {
					t.Fatal(err)
				}
			}
			state, err := orig.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			for cut := 0; cut < len(state); cut += 7 {
				if err := fresh.UnmarshalState(state[:cut]); err == nil {
					t.Fatalf("truncation at %d accepted", cut)
				}
			}
			if err := fresh.UnmarshalState(append(append([]byte(nil), state...), 0xAB)); err == nil {
				t.Fatal("trailing byte accepted")
			}
			// A clean state must still restore after the rejections.
			if err := fresh.UnmarshalState(state); err != nil {
				t.Fatalf("clean restore after rejections: %v", err)
			}
		})
	}
}

// TestMarshalStateRefusesCustomPenalty: an installed custom penalty is
// not serializable, so snapshotting must fail loudly.
func TestMarshalStateRefusesCustomPenalty(t *testing.T) {
	pair := snapshotTestPlacers(t)["e-sharing"]
	es := pair[0].(*ESharing)
	es.SetCustomPenalty(func(c float64) float64 { return 1 })
	if _, err := es.MarshalState(); err == nil {
		t.Fatal("MarshalState accepted a custom penalty")
	}
}
