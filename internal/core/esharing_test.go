package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/stats"
)

func offlineLandmarks(t *testing.T, stream []geo.Point, openingCost float64) []geo.Point {
	t.Helper()
	p, err := UniformProblem(stream, openingCost)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveOffline(p)
	if err != nil {
		t.Fatal(err)
	}
	return p.Stations(sol)
}

func newTestESharing(t *testing.T, landmarks, hist []geo.Point, cfg ESharingConfig) *ESharing {
	t.Helper()
	e, err := NewESharing(landmarks, 5000, hist, cfg)
	if err != nil {
		t.Fatalf("NewESharing: %v", err)
	}
	return e
}

func TestNewESharingValidation(t *testing.T) {
	landmark := []geo.Point{geo.Pt(0, 0)}
	hist := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 1)}
	base := DefaultESharingConfig()
	tests := []struct {
		name      string
		landmarks []geo.Point
		opening   float64
		hist      []geo.Point
		mutate    func(*ESharingConfig)
	}{
		{"no landmarks", nil, 5000, hist, nil},
		{"zero opening", landmark, 0, hist, nil},
		{"test enabled without history", landmark, 5000, nil, nil},
		{"beta below one", landmark, 5000, hist, func(c *ESharingConfig) { c.Beta = 0.5 }},
		{"bad tolerance", landmark, 5000, hist, func(c *ESharingConfig) { c.Tolerance = 0 }},
		{"negative interval", landmark, 5000, hist, func(c *ESharingConfig) { c.TestEvery = -1 }},
		{"negative window", landmark, 5000, hist, func(c *ESharingConfig) { c.WindowSize = -1 }},
		{"bad penalty", landmark, 5000, hist, func(c *ESharingConfig) { c.InitialPenalty = PenaltyType(42) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			if tt.mutate != nil {
				tt.mutate(&cfg)
			}
			if _, err := NewESharing(tt.landmarks, tt.opening, tt.hist, cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestESharingRequestAtLandmarkNeverOpens(t *testing.T) {
	// c = 0 at a landmark, so the opening probability g(0)·0/f is 0.
	cfg := DefaultESharingConfig()
	cfg.TestEvery = 0
	e := newTestESharing(t, []geo.Point{geo.Pt(100, 100)}, nil, cfg)
	for i := 0; i < 50; i++ {
		d, err := e.Place(geo.Pt(100, 100))
		if err != nil {
			t.Fatal(err)
		}
		if d.Opened {
			t.Fatal("request exactly at a landmark must not open")
		}
		if d.Walk != 0 {
			t.Fatalf("walk=%v, want 0", d.Walk)
		}
	}
	if e.OnlineOpens() != 0 {
		t.Errorf("OnlineOpens=%d, want 0", e.OnlineOpens())
	}
}

func TestESharingTypeIIBlocksFarOpenings(t *testing.T) {
	// Beyond the tolerance L, Type II zeroes the opening probability: a
	// far request must be assigned to the landmark, never opened.
	cfg := DefaultESharingConfig()
	cfg.TestEvery = 0
	cfg.InitialPenalty = PenaltyTypeII
	cfg.Tolerance = 200
	e := newTestESharing(t, []geo.Point{geo.Pt(0, 0)}, nil, cfg)
	for i := 0; i < 100; i++ {
		d, err := e.Place(geo.Pt(1000, 1000))
		if err != nil {
			t.Fatal(err)
		}
		if d.Opened {
			t.Fatal("type II must block openings beyond L")
		}
	}
}

func TestESharingNoPenaltyOpensEagerly(t *testing.T) {
	// With no penalty and a tiny scaled f, a distant request opens with
	// probability min(c/f, 1) = 1.
	cfg := DefaultESharingConfig()
	cfg.TestEvery = 0
	cfg.InitialPenalty = NoPenalty
	cfg.Beta = 1e12 // suppress f-doubling so the base probability is visible
	// The working cost starts at the base opening cost (5000 here).
	e := newTestESharing(t, []geo.Point{geo.Pt(0, 0), geo.Pt(100, 0)}, nil, cfg)
	if math.Abs(e.WorkingOpeningCost()-5000) > 1e-9 {
		t.Fatalf("working f=%v, want 5000", e.WorkingOpeningCost())
	}
	opened := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		d, err := e.Place(geo.Pt(0, 500)) // c = 500, prob = 500/5000 = 0.1
		if err != nil {
			t.Fatal(err)
		}
		if d.Opened {
			opened++
			// Remove it again so the next trial sees the same geometry.
			if err := e.RemoveStation(d.StationIndex); err != nil {
				t.Fatal(err)
			}
		}
	}
	frac := float64(opened) / trials
	if math.Abs(frac-0.1) > 0.03 {
		t.Errorf("opening frequency %v, want ~0.1", frac)
	}
}

func TestESharingDoubling(t *testing.T) {
	cfg := DefaultESharingConfig()
	cfg.TestEvery = 0
	cfg.InitialPenalty = NoPenalty
	cfg.Beta = 1
	landmarks := []geo.Point{geo.Pt(0, 0), geo.Pt(10, 0)} // w*=5, k=2, f=12500
	e := newTestESharing(t, landmarks, nil, cfg)
	f0 := e.WorkingOpeningCost()
	rng := stats.NewRNG(5)
	dist := stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 50000)}
	opens := 0
	for opens < 2 { // β·k = 2 openings trigger one doubling
		d, err := e.Place(dist.Sample(rng))
		if err != nil {
			t.Fatal(err)
		}
		if d.Opened {
			opens++
		}
	}
	if got := e.WorkingOpeningCost(); math.Abs(got-2*f0) > 1e-9 {
		t.Errorf("after β·k opens f=%v, want %v", got, 2*f0)
	}
}

func TestESharingKSTestSwitchesPenalty(t *testing.T) {
	// History is a tight cluster at the origin; live traffic is uniform
	// across the field. After a KS test the penalty must leave Type II.
	rng := stats.NewRNG(6)
	hist := stats.SamplePoints(rng, stats.NormalDist{Center: geo.Pt(0, 0), StdDev: 30}, 150)
	cfg := DefaultESharingConfig()
	cfg.TestEvery = 50
	cfg.WindowSize = 50
	cfg.InitialPenalty = PenaltyTypeII
	e := newTestESharing(t, []geo.Point{geo.Pt(0, 0)}, hist, cfg)
	live := stats.SamplePoints(rng, stats.UniformDist{Box: geo.Square(geo.Pt(-2000, -2000), 4000)}, 120)
	for _, p := range live {
		if _, err := e.Place(p); err != nil {
			t.Fatal(err)
		}
	}
	if e.Penalty().Type == PenaltyTypeII {
		t.Errorf("penalty stayed %v despite divergent traffic (similarity %.1f%%)",
			e.Penalty().Type, e.LastSimilarity())
	}
	if e.LastSimilarity() > 80 {
		t.Errorf("similarity %.1f%%, want < 80%% for disjoint distributions", e.LastSimilarity())
	}
}

func TestESharingKSTestKeepsPenaltyWhenSimilar(t *testing.T) {
	// Live traffic drawn from the same distribution as history keeps the
	// strict Type II regime.
	rng := stats.NewRNG(7)
	dist := stats.NormalDist{Center: geo.Pt(500, 500), StdDev: 100}
	hist := stats.SamplePoints(rng, dist, 200)
	cfg := DefaultESharingConfig()
	cfg.TestEvery = 60
	cfg.WindowSize = 60
	e := newTestESharing(t, []geo.Point{geo.Pt(500, 500)}, hist, cfg)
	for i := 0; i < 130; i++ {
		if _, err := e.Place(dist.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Penalty().Type; got == PenaltyTypeI {
		t.Errorf("penalty fell to %v for same-distribution traffic (similarity %.1f%%)",
			got, e.LastSimilarity())
	}
}

func TestESharingBeatsMeyersonOnClusteredWorkload(t *testing.T) {
	// The Fig. 6 claim: guided by the offline solution, E-sharing beats
	// pure Meyerson in total cost on in-distribution workloads.
	const opening = 5000.0
	rng := stats.NewRNG(8)
	mix, err := stats.NewMixture("city",
		[]stats.PointDist{
			stats.NormalDist{Center: geo.Pt(200, 200), StdDev: 60},
			stats.NormalDist{Center: geo.Pt(800, 700), StdDev: 60},
			stats.NormalDist{Center: geo.Pt(500, 300), StdDev: 60},
		},
		[]float64{1, 1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	hist := stats.SamplePoints(rng, mix, 120)
	landmarks := offlineLandmarks(t, hist, opening)
	if len(landmarks) == 0 {
		t.Fatal("no landmarks")
	}
	stream := stats.SamplePoints(rng, mix, 200)

	var esTotal, meyTotal float64
	const reps = 5
	for rep := uint64(0); rep < reps; rep++ {
		cfg := DefaultESharingConfig()
		cfg.Seed = rep + 1
		cfg.TestEvery = 0
		es := newTestESharing(t, landmarks, nil, cfg)
		esCost, _, err := RunStream(es, stream, opening)
		if err != nil {
			t.Fatal(err)
		}
		// Charge the landmark stations' space cost too (Fig. 6 counts
		// offline stations in the total).
		esTotal += esCost.Total() + float64(len(landmarks))*opening

		mey, err := NewMeyerson(opening, rep+1)
		if err != nil {
			t.Fatal(err)
		}
		meyCost, _, err := RunStream(mey, stream, opening)
		if err != nil {
			t.Fatal(err)
		}
		meyTotal += meyCost.Total()
	}
	if esTotal >= meyTotal {
		t.Errorf("E-sharing avg total %.0f should beat Meyerson %.0f", esTotal/reps, meyTotal/reps)
	}
}

func TestESharingRemoveStation(t *testing.T) {
	cfg := DefaultESharingConfig()
	cfg.TestEvery = 0
	e := newTestESharing(t, []geo.Point{geo.Pt(0, 0), geo.Pt(100, 0)}, nil, cfg)
	if err := e.RemoveStation(5); err == nil {
		t.Error("out-of-range removal should error")
	}
	if err := e.RemoveStation(0); err != nil {
		t.Fatal(err)
	}
	if len(e.Stations()) != 1 || e.LandmarkCount() != 1 {
		t.Errorf("after removal: %d stations, %d landmarks", len(e.Stations()), e.LandmarkCount())
	}
	// Removing the last station forces the next request to re-establish.
	if err := e.RemoveStation(0); err != nil {
		t.Fatal(err)
	}
	d, err := e.Place(geo.Pt(50, 50))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Opened {
		t.Error("request after total removal must open a station")
	}
}

func TestESharingRejectsNonFinite(t *testing.T) {
	cfg := DefaultESharingConfig()
	cfg.TestEvery = 0
	e := newTestESharing(t, []geo.Point{geo.Pt(0, 0)}, nil, cfg)
	if _, err := e.Place(geo.Pt(0, math.NaN())); err == nil {
		t.Error("NaN destination should error")
	}
}

func TestESharingName(t *testing.T) {
	cfg := DefaultESharingConfig()
	cfg.TestEvery = 0
	e := newTestESharing(t, []geo.Point{geo.Pt(0, 0)}, nil, cfg)
	if e.Name() != "e-sharing" {
		t.Errorf("Name=%q", e.Name())
	}
}

func TestESharingSingleLandmarkFallback(t *testing.T) {
	// A single landmark is a valid guide (the Fig. 9 / Table III setup);
	// the working cost starts at the base opening cost.
	cfg := DefaultESharingConfig()
	cfg.TestEvery = 0
	e := newTestESharing(t, []geo.Point{geo.Pt(0, 0)}, nil, cfg)
	if math.Abs(e.WorkingOpeningCost()-e.BaseOpeningCost()) > 1e-9 {
		t.Errorf("working f=%v, want base %v", e.WorkingOpeningCost(), e.BaseOpeningCost())
	}
}

func TestESharingErrNoStationsSentinel(t *testing.T) {
	_, err := NewESharing(nil, 100, nil, ESharingConfig{
		Beta: 1, Tolerance: 100, InitialPenalty: PenaltyTypeII,
	})
	if !errors.Is(err, ErrNoStations) {
		t.Errorf("want ErrNoStations, got %v", err)
	}
}
