package core

import (
	"math"
	"sort"
)

// SolveOffline runs the paper's Algorithm 1: the Jain–Mahdian–Markakis–
// Saberi–Vazirani greedy (JACM 2003), a 1.61-approximation for metric
// uncapacitated facility location, near the 1.46 inapproximability bound.
//
// Each iteration picks the candidate i and client set B minimising
//
//	( f_i + Σ_{j∈B} c_ij − Σ_{j∈B'_i} (c_{i'j} − c_ij) ) / |B|   (Eq. 5)
//
// where B ranges over prefixes of unconnected clients sorted by c_ij and
// B'_i is the set of already-connected clients that would save by
// switching to i. Opened facilities have their opening cost zeroed so
// later iterations may continue to attract switchers for free. The loop
// ends when every client is connected; complexity O(N³).
func SolveOffline(p *Problem) (*Solution, error) {
	n := len(p.Demands)
	if n == 0 {
		return nil, ErrEmptyProblem
	}

	const unassigned = -1
	assign := make([]int, n)
	curCost := make([]float64, n)
	for j := range assign {
		assign[j] = unassigned
		curCost[j] = math.Inf(1)
	}
	opened := make([]bool, n)
	openCost := append([]float64(nil), p.Opening...)
	var openOrder []int
	remaining := n

	type bestChoice struct {
		cand   int
		prefix int // number of unconnected clients to connect
		ratio  float64
		sorted []int // unconnected clients sorted by walk cost
	}

	for remaining > 0 {
		best := bestChoice{cand: -1, ratio: math.Inf(1)}
		for i := 0; i < n; i++ {
			// Savings from already-connected clients that prefer i.
			var savings float64
			for j := 0; j < n; j++ {
				if assign[j] == unassigned {
					continue
				}
				if c := p.Walk(i, j); c < curCost[j] {
					savings += curCost[j] - c
				}
			}
			// Unconnected clients sorted by connection cost to i.
			unconn := make([]int, 0, remaining)
			for j := 0; j < n; j++ {
				if assign[j] == unassigned {
					unconn = append(unconn, j)
				}
			}
			sort.Slice(unconn, func(a, b int) bool {
				return p.Walk(i, unconn[a]) < p.Walk(i, unconn[b])
			})
			base := openCost[i] - savings
			var acc float64
			for k, j := range unconn {
				acc += p.Walk(i, j)
				ratio := (base + acc) / float64(k+1)
				if ratio < best.ratio {
					best = bestChoice{cand: i, prefix: k + 1, ratio: ratio, sorted: unconn}
				}
			}
		}
		if best.cand == -1 {
			// Unreachable for valid instances: every candidate can always
			// connect at least one client.
			return nil, ErrEmptyProblem
		}
		i := best.cand
		if !opened[i] {
			opened[i] = true
			openOrder = append(openOrder, i)
		}
		openCost[i] = 0
		// Connect the chosen unconnected prefix.
		for _, j := range best.sorted[:best.prefix] {
			assign[j] = i
			curCost[j] = p.Walk(i, j)
			remaining--
		}
		// Switch connected clients that save.
		for j := 0; j < n; j++ {
			if assign[j] == unassigned || assign[j] == i {
				continue
			}
			if c := p.Walk(i, j); c < curCost[j] {
				assign[j] = i
				curCost[j] = c
			}
		}
	}

	sol := &Solution{Open: openOrder, Assign: assign}
	// Final clean-up: nearest reassignment can only help.
	if err := p.ReassignNearest(sol); err != nil {
		return nil, err
	}
	dropUnusedStations(p, sol)
	return sol, nil
}

// dropUnusedStations removes opened candidates that serve no demand after
// reassignment (possible when a late station absorbs all of an earlier
// one's clients).
func dropUnusedStations(p *Problem, sol *Solution) {
	used := map[int]bool{}
	for _, i := range sol.Assign {
		used[i] = true
	}
	kept := sol.Open[:0]
	for _, i := range sol.Open {
		if used[i] {
			kept = append(kept, i)
		}
	}
	sol.Open = kept
}
