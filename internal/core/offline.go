package core

import (
	"math"
	"sort"

	"repro/internal/parallel"
)

// SolveOffline runs the paper's Algorithm 1: the Jain–Mahdian–Markakis–
// Saberi–Vazirani greedy (JACM 2003), a 1.61-approximation for metric
// uncapacitated facility location, near the 1.46 inapproximability bound.
//
// Each iteration picks the candidate i and client set B minimising
//
//	( f_i + Σ_{j∈B} c_ij − Σ_{j∈B'_i} (c_{i'j} − c_ij) ) / |B|   (Eq. 5)
//
// where B ranges over prefixes of unconnected clients sorted by c_ij and
// B'_i is the set of already-connected clients that would save by
// switching to i. Opened facilities have their opening cost zeroed so
// later iterations may continue to attract switchers for free. The loop
// ends when every client is connected.
//
// SolveOffline runs the geometry-aware incremental engine (DESIGN.md
// §13): candidate selection goes through a lazy priority queue keyed by
// admissible lower bounds, and a candidate is only re-scored when a
// client inside its kd-tree neighbourhood connects. The result is
// bit-identical to SolveOfflineExact — same stations in the same order,
// same assignment, bit-identical costs — at a fraction of the work;
// differential tests enforce the identity at every worker count.
func SolveOffline(p *Problem) (*Solution, error) {
	return SolveOfflineWorkers(p, parallel.Default())
}

// SolveOfflineExact is the exact reference sweep: every iteration
// re-scores every candidate against the full unconnected set. It is the
// oracle the incremental SolveOffline must match bit for bit, and the
// baseline the EXPERIMENTS.md speedup table measures against.
func SolveOfflineExact(p *Problem) (*Solution, error) {
	return SolveOfflineExactWorkers(p, parallel.Default())
}

// unassigned marks a demand not yet connected to any candidate.
const unassigned = -1

// candEval is one candidate's best Eq. 5 outcome within an iteration:
// the minimum prefix ratio and the prefix length attaining it first.
type candEval struct {
	ratio  float64
	prefix int
}

// offlineScratch is one worker's reusable buffer for the candidate
// sweep: the unconnected clients reordered by connection cost, with the
// costs cached so the sort comparator and the prefix accumulation never
// recompute a distance. It implements sort.Interface over the pair.
type offlineScratch struct {
	idx  []int
	cost []float64
}

func (s *offlineScratch) Len() int { return len(s.idx) }

// Less orders by cost with exact ties broken by ascending client index.
// The tie-break makes the permutation a total order determined by the
// data alone: which clients a tie-straddling prefix connects no longer
// depends on the sort algorithm's internal tie handling, so any correct
// sort — sort.Sort here, the stable radix sort on the incremental hot
// path — produces the identical array.
func (s *offlineScratch) Less(a, b int) bool {
	if s.cost[a] < s.cost[b] {
		return true
	}
	if s.cost[b] < s.cost[a] {
		return false
	}
	return s.idx[a] < s.idx[b]
}

func (s *offlineScratch) Swap(a, b int) {
	s.idx[a], s.idx[b] = s.idx[b], s.idx[a]
	s.cost[a], s.cost[b] = s.cost[b], s.cost[a]
}

// sortUnconnByCost loads the unconnected clients into s (ascending
// client index) and sorts them by connection cost to candidate i, exact
// cost ties by client index — the documented total order every solver
// path shares.
func sortUnconnByCost(p *Problem, i int, unconn []int, s *offlineScratch) {
	s.idx = s.idx[:0]
	s.cost = s.cost[:0]
	for _, j := range unconn {
		s.idx = append(s.idx, j)
		s.cost = append(s.cost, p.Walk(i, j))
	}
	sort.Sort(s)
}

// evalCandidate scores candidate i for the current iteration: switch
// savings over connected clients (ascending j, fixed summation order),
// then the minimum prefix ratio over unconnected clients sorted by
// cost. Reads shared state only; all writes happen between sweeps.
func evalCandidate(p *Problem, i int, assign []int, curCost []float64, openCost float64, unconn []int, s *offlineScratch) candEval {
	n := len(p.Demands)
	var savings float64
	for j := 0; j < n; j++ {
		if assign[j] == unassigned {
			continue
		}
		if c := p.Walk(i, j); c < curCost[j] {
			savings += curCost[j] - c
		}
	}
	sortUnconnByCost(p, i, unconn, s)
	base := openCost - savings
	best := candEval{ratio: math.Inf(1)}
	var acc float64
	for k, c := range s.cost {
		acc += c
		ratio := (base + acc) / float64(k+1)
		if ratio < best.ratio {
			best = candEval{ratio: ratio, prefix: k + 1}
		}
	}
	return best
}

// SolveOfflineExactWorkers is SolveOfflineExact with an explicit worker
// count: the per-iteration candidate sweep — the O(N²) inner double
// loop — fans out across the workers.
//
// Determinism contract: the solution is bit-identical for every workers
// value, and workers == 1 reproduces the sequential algorithm exactly —
// same stations in the same order, same assignment, bit-identical
// costs. This holds because each candidate's evaluation is self-
// contained (per-worker scratch, fixed summation and sort order) and
// the winner is reduced over the evals slice in ascending candidate
// index with a strict comparison — exactly the sequential scan's
// first-minimum tie-break. Differential tests pin this at parallelism
// 1, 2, 4 and 7 against a copy of the seed implementation.
func SolveOfflineExactWorkers(p *Problem, workers int) (*Solution, error) {
	n := len(p.Demands)
	if n == 0 {
		return nil, ErrEmptyProblem
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	assign := make([]int, n)
	curCost := make([]float64, n)
	for j := range assign {
		assign[j] = unassigned
		curCost[j] = math.Inf(1)
	}
	opened := make([]bool, n)
	openCost := append([]float64(nil), p.Opening...)
	var openOrder []int
	remaining := n

	unconn := make([]int, 0, n)
	evals := make([]candEval, n)
	scratch := make([]offlineScratch, workers)
	for w := range scratch {
		scratch[w].idx = make([]int, 0, n)
		scratch[w].cost = make([]float64, 0, n)
	}

	for remaining > 0 {
		// The unconnected set is shared by every candidate this
		// iteration; build it once, ascending.
		unconn = unconn[:0]
		for j := 0; j < n; j++ {
			if assign[j] == unassigned {
				unconn = append(unconn, j)
			}
		}
		// Phase 1: score every candidate, fanned out over contiguous
		// chunks with per-worker scratch.
		parallel.ForChunks(workers, n, func(w, lo, hi int) {
			s := &scratch[w]
			for i := lo; i < hi; i++ {
				evals[i] = evalCandidate(p, i, assign, curCost, openCost[i], unconn, s)
			}
		})
		// Reduce in candidate order with strict <: the first (i, prefix)
		// attaining the global minimum, as in the sequential scan.
		best, bestRatio := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if evals[i].ratio < bestRatio {
				best, bestRatio = i, evals[i].ratio
			}
		}
		if best == -1 {
			// Unreachable for valid instances: every candidate can always
			// connect at least one client.
			return nil, ErrEmptyProblem
		}
		i := best
		if !opened[i] {
			opened[i] = true
			openOrder = append(openOrder, i)
		}
		openCost[i] = 0
		// Phase 2: re-derive the winner's sorted order (deterministic,
		// O(n log n)) and connect the chosen prefix.
		s := &scratch[0]
		sortUnconnByCost(p, i, unconn, s)
		for k := 0; k < evals[i].prefix; k++ {
			j := s.idx[k]
			assign[j] = i
			curCost[j] = s.cost[k]
			remaining--
		}
		// Switch connected clients that save.
		for j := 0; j < n; j++ {
			if assign[j] == unassigned || assign[j] == i {
				continue
			}
			if c := p.Walk(i, j); c < curCost[j] {
				assign[j] = i
				curCost[j] = c
			}
		}
	}

	sol := &Solution{Open: openOrder, Assign: assign}
	// Final clean-up: nearest reassignment can only help.
	if err := p.ReassignNearest(sol); err != nil {
		return nil, err
	}
	dropUnusedStations(p, sol)
	return sol, nil
}

// dropUnusedStations removes opened candidates that serve no demand after
// reassignment (possible when a late station absorbs all of an earlier
// one's clients).
func dropUnusedStations(p *Problem, sol *Solution) {
	used := map[int]bool{}
	for _, i := range sol.Assign {
		used[i] = true
	}
	kept := sol.Open[:0]
	for _, i := range sol.Open {
		if used[i] {
			kept = append(kept, i)
		}
	}
	sol.Open = kept
}
