package core

import (
	"repro/internal/geo"
)

// AggregateDemand bins destination points into square grid cells of the
// given side length (metres), returning one Demand per non-empty cell,
// located at the cell centroid with arrivals equal to the point count —
// the paper's offline demand aggregation (Section IV-A).
//
// Degenerate inputs are handled: when the points' bounding box has zero
// width or height (a single destination, or collinear destinations along
// an axis), the box is padded by one cell on every side so the grid is
// always valid. Callers planning landmarks from arbitrary trip histories
// must use this rather than building the grid themselves.
func AggregateDemand(pts []geo.Point, cell float64) ([]Demand, error) {
	acc, err := NewDemandAccumulator(geo.Bound(pts), cell)
	if err != nil {
		return nil, err
	}
	acc.AddAll(pts)
	return acc.Demands()
}

// DemandAccumulator builds the same demand grid as AggregateDemand one
// point at a time, so streaming ingestion can aggregate city-scale trip
// histories without ever materialising the point slice. The bounding box
// must be known up front (the streaming scanner derives it from geohash
// extrema in its summary pass); the box is padded exactly as
// AggregateDemand pads degenerate inputs, so for equal boxes and points
// Demands() is bit-identical to AggregateDemand.
type DemandAccumulator struct {
	grid   *geo.Grid
	counts []int
}

// NewDemandAccumulator builds an accumulator over box with square cells of
// the given side length (metres). Degenerate boxes — zero width or height,
// including the zero box of an empty point set — are padded by one cell on
// every side, mirroring AggregateDemand.
func NewDemandAccumulator(box geo.BBox, cell float64) (*DemandAccumulator, error) {
	if box.Width() <= 0 || box.Height() <= 0 {
		box = geo.NewBBox(
			geo.Pt(box.MinX-cell, box.MinY-cell),
			geo.Pt(box.MaxX+cell, box.MaxY+cell),
		)
	}
	grid, err := geo.NewGrid(box, cell)
	if err != nil {
		return nil, err
	}
	return &DemandAccumulator{grid: grid, counts: make([]int, grid.NumCells())}, nil
}

// Grid returns the accumulator's grid.
func (a *DemandAccumulator) Grid() *geo.Grid { return a.grid }

// Counts returns the per-cell counts in row-major order. The slice is the
// accumulator's own backing store; callers must not retain it across Add
// calls.
func (a *DemandAccumulator) Counts() []int { return a.counts }

// Add bins one point, clamping strays onto the grid boundary exactly as
// Grid.Histogram does.
func (a *DemandAccumulator) Add(p geo.Point) {
	a.counts[a.grid.Index(a.grid.ClampedCellOf(p))]++
}

// AddAll bins a batch of points.
func (a *DemandAccumulator) AddAll(pts []geo.Point) {
	for _, p := range pts {
		a.Add(p)
	}
}

// Demands emits one Demand per non-empty cell in row-major order, located
// at the cell centroid with arrivals equal to the point count.
func (a *DemandAccumulator) Demands() ([]Demand, error) {
	var demands []Demand
	for idx, n := range a.counts {
		if n == 0 {
			continue
		}
		c, err := a.grid.CellAt(idx)
		if err != nil {
			return nil, err
		}
		demands = append(demands, Demand{Loc: a.grid.Centroid(c), Arrivals: float64(n)})
	}
	return demands, nil
}
