package core

import (
	"repro/internal/geo"
)

// AggregateDemand bins destination points into square grid cells of the
// given side length (metres), returning one Demand per non-empty cell,
// located at the cell centroid with arrivals equal to the point count —
// the paper's offline demand aggregation (Section IV-A).
//
// Degenerate inputs are handled: when the points' bounding box has zero
// width or height (a single destination, or collinear destinations along
// an axis), the box is padded by one cell on every side so the grid is
// always valid. Callers planning landmarks from arbitrary trip histories
// must use this rather than building the grid themselves.
func AggregateDemand(pts []geo.Point, cell float64) ([]Demand, error) {
	box := geo.Bound(pts)
	// Pad degenerate boxes so the grid is valid.
	if box.Width() <= 0 || box.Height() <= 0 {
		box = geo.NewBBox(
			geo.Pt(box.MinX-cell, box.MinY-cell),
			geo.Pt(box.MaxX+cell, box.MaxY+cell),
		)
	}
	grid, err := geo.NewGrid(box, cell)
	if err != nil {
		return nil, err
	}
	counts := grid.Histogram(pts)
	var demands []Demand
	for idx, n := range counts {
		if n == 0 {
			continue
		}
		c, err := grid.CellAt(idx)
		if err != nil {
			return nil, err
		}
		demands = append(demands, Demand{Loc: grid.Centroid(c), Arrivals: float64(n)})
	}
	return demands, nil
}
