package core

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/stats"
)

func TestAssignCapacitatedValidation(t *testing.T) {
	p, err := UniformProblem([]geo.Point{geo.Pt(0, 0), geo.Pt(100, 0)}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := AssignCapacitated(p, nil, nil); err == nil {
		t.Error("no stations should error")
	}
	if _, _, err := AssignCapacitated(p, []int{0}, []float64{1, 2}); err == nil {
		t.Error("capacity length mismatch should error")
	}
	if _, _, err := AssignCapacitated(p, []int{0}, []float64{-1}); err == nil {
		t.Error("negative capacity should error")
	}
	if _, _, err := AssignCapacitated(p, []int{0}, []float64{1}); err == nil {
		t.Error("insufficient total capacity should error")
	}
}

func TestAssignCapacitatedMatchesNearestWhenAmple(t *testing.T) {
	rng := stats.NewRNG(71)
	pts := stats.SamplePoints(rng, stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 1000)}, 25)
	p, err := UniformProblem(pts, 100)
	if err != nil {
		t.Fatal(err)
	}
	open := []int{0, 7, 14, 21}
	capacity := []float64{100, 100, 100, 100}
	sol, cost, err := AssignCapacitated(p, open, capacity)
	if err != nil {
		t.Fatal(err)
	}
	// With infinite-ish capacity, assignment must be nearest-station.
	nearest := &Solution{Open: open, Assign: make([]int, len(pts))}
	if err := p.ReassignNearest(nearest); err != nil {
		t.Fatal(err)
	}
	nearestCost, err := p.Evaluate(nearest)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost.Walking-nearestCost.Walking) > 1e-9 {
		t.Errorf("ample capacity walking %v != nearest %v", cost.Walking, nearestCost.Walking)
	}
	for j := range pts {
		if sol.Assign[j] != nearest.Assign[j] {
			t.Fatalf("demand %d assigned to %d, nearest is %d", j, sol.Assign[j], nearest.Assign[j])
		}
	}
}

func TestAssignCapacitatedRespectsCapacity(t *testing.T) {
	// Three demands want the near station; capacity forces one away.
	pts := []geo.Point{
		geo.Pt(0, 0),   // candidate/near station
		geo.Pt(500, 0), // candidate/far station
		geo.Pt(10, 0), geo.Pt(20, 0), geo.Pt(30, 0),
	}
	demands := make([]Demand, len(pts))
	for i, pt := range pts {
		demands[i] = Demand{Loc: pt, Arrivals: 1}
	}
	p, err := NewProblem(demands, []float64{10, 10, 10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	open := []int{0, 1}
	sol, _, err := AssignCapacitated(p, open, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	loads := StationLoads(p, sol)
	if loads[0] > 3 {
		t.Errorf("station 0 load %v exceeds capacity 3", loads[0])
	}
	// Demands 0,2,3 (closest three) should hold the near station; the
	// rest spill to the far one.
	if loads[0]+loads[1] != 5 {
		t.Errorf("loads %v do not cover all demands", loads)
	}
}

func TestAssignCapacitatedSpilloverMinimisesDamage(t *testing.T) {
	// Near station capacity 1: exactly one local demand stays; the regret
	// heuristic must keep the one that would suffer most elsewhere.
	pts := []geo.Point{
		geo.Pt(0, 0),    // near station
		geo.Pt(1000, 0), // far station
		geo.Pt(5, 0),    // local demand A (far cost ~995)
		geo.Pt(400, 0),  // mid demand B (far cost 600)
	}
	demands := make([]Demand, len(pts))
	for i, pt := range pts {
		demands[i] = Demand{Loc: pt, Arrivals: 1}
	}
	p, err := NewProblem(demands, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 2 at near: the stations themselves are also demands and
	// sit on their own spot; give near capacity for station-demand + A.
	sol, _, err := AssignCapacitated(p, []int{0, 1}, []float64{2, 10})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assign[2] != 0 {
		t.Errorf("demand A assigned to %d, want the near station", sol.Assign[2])
	}
	if sol.Assign[3] != 1 {
		t.Errorf("demand B assigned to %d, want spillover to far", sol.Assign[3])
	}
}

func TestAssignCapacitatedAtomicDemandTooBig(t *testing.T) {
	demands := []Demand{
		{Loc: geo.Pt(0, 0), Arrivals: 5},
		{Loc: geo.Pt(10, 0), Arrivals: 1},
	}
	p, err := NewProblem(demands, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Total capacity 6 covers the sum, but no single station fits the
	// 5-arrival atom.
	if _, _, err := AssignCapacitated(p, []int{0, 1}, []float64{4, 2}); err == nil {
		t.Error("oversized atomic demand should error")
	}
}

func TestStationLoadsTotalsArrivals(t *testing.T) {
	rng := stats.NewRNG(73)
	pts := stats.SamplePoints(rng, stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 800)}, 15)
	demands := make([]Demand, len(pts))
	var total float64
	for i, pt := range pts {
		demands[i] = Demand{Loc: pt, Arrivals: 1 + rng.Float64()*3}
		total += demands[i].Arrivals
	}
	opening := make([]float64, len(pts))
	for i := range opening {
		opening[i] = 10
	}
	p, err := NewProblem(demands, opening)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := AssignCapacitated(p, []int{0, 5, 10}, []float64{total, total, total})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, load := range StationLoads(p, sol) {
		sum += load
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Errorf("loads sum %v, want %v", sum, total)
	}
}
