package core

import (
	"math"
	"testing"
)

func mustPenalty(t *testing.T, typ PenaltyType, tol float64) Penalty {
	t.Helper()
	p, err := NewPenalty(typ, tol)
	if err != nil {
		t.Fatalf("NewPenalty: %v", err)
	}
	return p
}

func TestNewPenaltyValidation(t *testing.T) {
	if _, err := NewPenalty(PenaltyType(99), 100); err == nil {
		t.Error("unknown type should error")
	}
	if _, err := NewPenalty(PenaltyTypeI, 0); err == nil {
		t.Error("zero tolerance should error")
	}
	if _, err := NewPenalty(PenaltyTypeI, -5); err == nil {
		t.Error("negative tolerance should error")
	}
}

func TestPenaltyAtZero(t *testing.T) {
	// g(0) = 1 for every type: a destination inside the grid of an
	// established parking carries no penalty.
	for _, typ := range []PenaltyType{NoPenalty, PenaltyTypeI, PenaltyTypeII, PenaltyTypeIII} {
		p := mustPenalty(t, typ, 200)
		if got := p.Eval(0); got != 1 {
			t.Errorf("%v: g(0)=%v, want 1", typ, got)
		}
		if got := p.Eval(-10); got != 1 {
			t.Errorf("%v: negative c should clamp to g(0), got %v", typ, got)
		}
	}
}

func TestPenaltyKnownValues(t *testing.T) {
	const L = 200.0
	tests := []struct {
		typ  PenaltyType
		c    float64
		want float64
	}{
		{PenaltyTypeI, L, 0.5},
		{PenaltyTypeI, 3 * L, 0.25}, // still > 0.2, the paper's tail claim
		{PenaltyTypeII, L / 2, 0.5},
		{PenaltyTypeII, L, 0},
		{PenaltyTypeII, L + 1, 0},
		{PenaltyTypeII, 3 * L, 0},
		{PenaltyTypeIII, L, math.Exp(-1)},
		{PenaltyTypeIII, 2 * L, math.Exp(-4)},
		{NoPenalty, 1e9, 1},
	}
	for _, tt := range tests {
		p := mustPenalty(t, tt.typ, L)
		if got := p.Eval(tt.c); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%v g(%v)=%v, want %v", tt.typ, tt.c, got, tt.want)
		}
	}
}

func TestPenaltyMonotoneDecreasing(t *testing.T) {
	for _, typ := range []PenaltyType{PenaltyTypeI, PenaltyTypeII, PenaltyTypeIII} {
		p := mustPenalty(t, typ, 200)
		prev := p.Eval(0)
		for c := 10.0; c <= 1000; c += 10 {
			cur := p.Eval(c)
			if cur > prev+1e-12 {
				t.Errorf("%v not monotone at c=%v: %v > %v", typ, c, cur, prev)
			}
			if cur < 0 || cur > 1 {
				t.Errorf("%v out of [0,1] at c=%v: %v", typ, c, cur)
			}
			prev = cur
		}
	}
}

func TestPenaltyOrderingBeyondTolerance(t *testing.T) {
	// Fig. 5: beyond L, Type II < Type III < Type I (II plunges fastest,
	// I keeps the fattest tail).
	i := mustPenalty(t, PenaltyTypeI, 200)
	ii := mustPenalty(t, PenaltyTypeII, 200)
	iii := mustPenalty(t, PenaltyTypeIII, 200)
	for _, c := range []float64{250, 400, 600} {
		if !(ii.Eval(c) < iii.Eval(c) && iii.Eval(c) < i.Eval(c)) {
			t.Errorf("at c=%v: II=%v III=%v I=%v — ordering broken",
				c, ii.Eval(c), iii.Eval(c), i.Eval(c))
		}
	}
}

func TestPenaltyDerivativeMatchesNumeric(t *testing.T) {
	const eps = 1e-6
	for _, typ := range []PenaltyType{NoPenalty, PenaltyTypeI, PenaltyTypeIII} {
		p := mustPenalty(t, typ, 200)
		for _, c := range []float64{10, 100, 200, 350, 700} {
			numeric := (p.Eval(c+eps) - p.Eval(c-eps)) / (2 * eps)
			analytic := p.Derivative(c)
			if math.Abs(numeric-analytic) > 1e-6*(1+math.Abs(numeric)) {
				t.Errorf("%v at c=%v: analytic %v vs numeric %v", typ, c, analytic, numeric)
			}
		}
	}
	// Type II is non-smooth at L; check away from the kink.
	p := mustPenalty(t, PenaltyTypeII, 200)
	for _, c := range []float64{50, 150, 300} {
		numeric := (p.Eval(c+eps) - p.Eval(c-eps)) / (2 * eps)
		if math.Abs(numeric-p.Derivative(c)) > 1e-6 {
			t.Errorf("type II at c=%v: analytic %v vs numeric %v", c, p.Derivative(c), numeric)
		}
	}
}

func TestPenaltyForBand(t *testing.T) {
	tests := []struct {
		sim  float64
		want PenaltyType
	}{
		{99, PenaltyTypeII},
		{95.5, PenaltyTypeII},
		{95, PenaltyTypeIII},
		{85, PenaltyTypeIII},
		{80, PenaltyTypeIII},
		{79, PenaltyTypeI},
		{30, PenaltyTypeI},
	}
	for _, tt := range tests {
		if got := PenaltyForBand(tt.sim); got != tt.want {
			t.Errorf("PenaltyForBand(%v)=%v, want %v", tt.sim, got, tt.want)
		}
	}
}

func TestPenaltyTypeString(t *testing.T) {
	if PenaltyTypeI.String() != "type-I" || PenaltyType(0).String() != "unknown" {
		t.Error("PenaltyType.String wrong")
	}
}
