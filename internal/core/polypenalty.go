package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/matrix"
)

// PolyPenalty is the paper's future-work extension ("we can design the
// penalty function as high-order polynomials to approximate an incoming
// distribution in any reasonable shape"): a polynomial g(c) fitted by
// least squares to the empirical survival function of observed
// request-to-landmark distances. Where requests actually occur, the
// penalty stays permissive; beyond the observed range it vanishes.
type PolyPenalty struct {
	coeffs []float64 // ascending powers of (c/scale)
	scale  float64   // the largest fitted distance
}

// FitPolyPenalty fits a degree-`degree` polynomial to the survival
// function of the distances sample (the fraction of requests farther than
// c from their landmark). At least degree+2 distinct distances are
// required.
func FitPolyPenalty(distances []float64, degree int) (*PolyPenalty, error) {
	if degree < 1 || degree > 12 {
		return nil, fmt.Errorf("core: polynomial degree %d outside [1,12]", degree)
	}
	clean := make([]float64, 0, len(distances))
	for _, d := range distances {
		if d >= 0 && !math.IsNaN(d) && !math.IsInf(d, 0) {
			clean = append(clean, d)
		}
	}
	if len(clean) < degree+2 {
		return nil, fmt.Errorf("core: %d usable distances for degree %d", len(clean), degree)
	}
	sort.Float64s(clean)
	scale := clean[len(clean)-1]
	if scale <= 0 {
		return nil, fmt.Errorf("core: all distances are zero")
	}

	// Survival samples: S(d_i) = 1 - i/(n-1) at the sorted distances,
	// plus the anchor S(0) = 1.
	n := len(clean)
	xs := make([]float64, 0, n+1)
	ys := make([]float64, 0, n+1)
	xs = append(xs, 0)
	ys = append(ys, 1)
	for i, d := range clean {
		xs = append(xs, d/scale)
		ys = append(ys, 1-float64(i)/float64(n-1))
	}

	// Least squares on the Vandermonde system (normal equations with a
	// small ridge, solved by Gaussian elimination).
	cols := degree + 1
	design := matrix.New(len(xs), cols)
	for r, x := range xs {
		v := 1.0
		for c := 0; c < cols; c++ {
			design.Set(r, c, v)
			v *= x
		}
	}
	xtx := matrix.New(cols, cols)
	matrix.MulATB(xtx, design, design)
	for i := 0; i < cols; i++ {
		xtx.Set(i, i, xtx.At(i, i)+1e-9)
	}
	xty := make([]float64, cols)
	for r := range xs {
		for c := 0; c < cols; c++ {
			xty[c] += design.At(r, c) * ys[r]
		}
	}
	coeffs, err := matrix.SolveLinear(xtx, xty)
	if err != nil {
		return nil, fmt.Errorf("core: poly fit: %w", err)
	}
	return &PolyPenalty{coeffs: coeffs, scale: scale}, nil
}

// Eval returns the fitted penalty at walking cost c, clamped to [0, 1];
// beyond the fitted range it is 0 (no requests were ever observed there).
func (p *PolyPenalty) Eval(c float64) float64 {
	if c < 0 {
		c = 0
	}
	if c >= p.scale {
		return 0
	}
	x := c / p.scale
	// Horner from the highest power.
	v := 0.0
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		v = v*x + p.coeffs[i]
	}
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Degree returns the fitted polynomial degree.
func (p *PolyPenalty) Degree() int { return len(p.coeffs) - 1 }

// Scale returns the largest fitted distance (Eval is 0 beyond it).
func (p *PolyPenalty) Scale() float64 { return p.scale }

// SetCustomPenalty pins an arbitrary penalty function g(c) on the placer
// — the hook for PolyPenalty and other experimental shapes. While a
// custom penalty is set, KS-driven switching is suspended; pass nil to
// restore the built-in penalty (and switching).
func (e *ESharing) SetCustomPenalty(g func(c float64) float64) {
	e.customPenalty = g
}
