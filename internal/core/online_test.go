package core

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/stats"
)

func uniformStream(seed uint64, n int, side float64) []geo.Point {
	return stats.SamplePoints(stats.NewRNG(seed), stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), side)}, n)
}

func TestNewMeyersonValidation(t *testing.T) {
	if _, err := NewMeyerson(0, 1); err == nil {
		t.Error("zero opening cost should error")
	}
	if _, err := NewMeyerson(-5, 1); err == nil {
		t.Error("negative opening cost should error")
	}
}

func TestMeyersonFirstRequestOpens(t *testing.T) {
	m, err := NewMeyerson(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Place(geo.Pt(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Opened || d.Walk != 0 {
		t.Errorf("first request should open: %+v", d)
	}
	if len(m.Stations()) != 1 {
		t.Errorf("stations=%d, want 1", len(m.Stations()))
	}
}

func TestMeyersonRejectsNonFinite(t *testing.T) {
	m, _ := NewMeyerson(1000, 1)
	if _, err := m.Place(geo.Pt(math.NaN(), 0)); err == nil {
		t.Error("NaN destination should error")
	}
}

func TestMeyersonClusteredRequestsShareStations(t *testing.T) {
	// Requests in one tight cluster with a high opening cost must mostly
	// share the first station.
	m, err := NewMeyerson(100000, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	dist := stats.NormalDist{Center: geo.Pt(500, 500), StdDev: 20}
	for i := 0; i < 200; i++ {
		if _, err := m.Place(dist.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(m.Stations()); n > 5 {
		t.Errorf("%d stations for one tight cluster, want <= 5", n)
	}
}

func TestMeyersonDeterministicBySeed(t *testing.T) {
	stream := uniformStream(5, 100, 1000)
	run := func() int {
		m, err := NewMeyerson(5000, 42)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range stream {
			if _, err := m.Place(p); err != nil {
				t.Fatal(err)
			}
		}
		return len(m.Stations())
	}
	if run() != run() {
		t.Error("same seed produced different station counts")
	}
}

func TestNewOnlineKMeansValidation(t *testing.T) {
	if _, err := NewOnlineKMeans(0, 1); err == nil {
		t.Error("target 0 should error")
	}
}

func TestOnlineKMeansBootstrap(t *testing.T) {
	o, err := NewOnlineKMeans(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// First k+1 = 4 points all open.
	for i := 0; i < 4; i++ {
		d, err := o.Place(geo.Pt(float64(i*100), 0))
		if err != nil {
			t.Fatal(err)
		}
		if !d.Opened {
			t.Errorf("bootstrap point %d should open", i)
		}
	}
	if len(o.Stations()) != 4 {
		t.Errorf("stations=%d, want 4", len(o.Stations()))
	}
	if _, err := o.Place(geo.Pt(math.Inf(1), 0)); err == nil {
		t.Error("non-finite destination should error")
	}
}

func TestOnlineKMeansOpensMoreThanMeyerson(t *testing.T) {
	// Table V ordering: online k-means opens the most stations.
	stream := uniformStream(7, 400, 3000)
	m, err := NewMeyerson(10000, 11)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOnlineKMeans(16, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range stream {
		if _, err := m.Place(p); err != nil {
			t.Fatal(err)
		}
		if _, err := o.Place(p); err != nil {
			t.Fatal(err)
		}
	}
	if len(o.Stations()) <= len(m.Stations()) {
		t.Errorf("online k-means %d stations <= meyerson %d; expected more",
			len(o.Stations()), len(m.Stations()))
	}
}

func TestRunStreamAccounting(t *testing.T) {
	stream := uniformStream(9, 150, 1000)
	m, err := NewMeyerson(5000, 13)
	if err != nil {
		t.Fatal(err)
	}
	cost, decisions, err := RunStream(m, stream, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != len(stream) {
		t.Fatalf("%d decisions for %d requests", len(decisions), len(stream))
	}
	opened := 0
	var walk float64
	for _, d := range decisions {
		if d.Opened {
			opened++
			if d.Walk != 0 {
				t.Error("opened decision should have zero walk")
			}
		}
		walk += d.Walk
	}
	if opened != len(m.Stations()) {
		t.Errorf("opened %d but placer has %d stations", opened, len(m.Stations()))
	}
	if math.Abs(cost.Opening-float64(opened)*5000) > 1e-9 {
		t.Errorf("opening cost %v, want %v", cost.Opening, float64(opened)*5000)
	}
	if math.Abs(cost.Walking-walk) > 1e-9 {
		t.Errorf("walking cost %v, want %v", cost.Walking, walk)
	}
}

func TestNamesAreStable(t *testing.T) {
	m, _ := NewMeyerson(1, 1)
	o, _ := NewOnlineKMeans(1, 1)
	if m.Name() != "meyerson" || o.Name() != "online-kmeans" {
		t.Error("names changed; reports depend on them")
	}
}
