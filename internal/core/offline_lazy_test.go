package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/stats"
)

// Differential and property tests for the incremental offline engine
// (offline_lazy.go): SolveOfflineWorkers must be bit-identical to the
// exact sweep at every worker count, on random and adversarially tied
// instances, and its lazy-queue bounds must be admissible at every
// accepted winner.

// tiedGridProblem puts all demands on a coarse integer lattice with a
// single arrival weight and a single opening cost: almost every pair of
// candidates sees identical sorted cost multisets, so winner selection
// and prefix choice are decided entirely by the documented index
// tie-breaks.
func tiedGridProblem(n int) *Problem {
	side := 1
	for side*side < n {
		side++
	}
	demands := make([]Demand, n)
	for i := range demands {
		demands[i] = Demand{
			Loc:      geo.Pt(float64(i%side)*250, float64(i/side)*250),
			Arrivals: 2,
		}
	}
	opening := make([]float64, n)
	for i := range opening {
		opening[i] = 1800
	}
	p, err := NewProblem(demands, opening)
	if err != nil {
		panic(err)
	}
	return p
}

// colinearProblem places every demand on a line at equal spacing, with a
// small repeating arrival pattern: distances between index pairs at the
// same offset are exactly equal, kd-tree splits degenerate along one
// axis, and many prefix sums tie bit for bit.
func colinearProblem(n int) *Problem {
	demands := make([]Demand, n)
	for i := range demands {
		demands[i] = Demand{
			Loc:      geo.Pt(float64(i)*75, 120),
			Arrivals: float64(1 + i%3),
		}
	}
	opening := make([]float64, n)
	for i := range opening {
		opening[i] = 900 + float64(i%2)*600
	}
	p, err := NewProblem(demands, opening)
	if err != nil {
		panic(err)
	}
	return p
}

// duplicatePointsProblem collapses the demand set onto a handful of
// distinct locations, each hosting a pile of exact duplicates: zero
// distances, identical candidate columns and heavy tie-breaking through
// both the heap and the pair sort.
func duplicatePointsProblem(n int) *Problem {
	rng := stats.NewRNG(uint64(n) + 11)
	distinct := n/5 + 1
	sites := make([]geo.Point, distinct)
	for i := range sites {
		sites[i] = geo.Pt(rng.Float64()*2500, rng.Float64()*2500)
	}
	demands := make([]Demand, n)
	for i := range demands {
		demands[i] = Demand{
			Loc:      sites[i%distinct],
			Arrivals: float64(1 + rng.IntN(4)),
		}
	}
	opening := make([]float64, n)
	for i := range opening {
		opening[i] = 1200 + float64(rng.IntN(3))*800
	}
	p, err := NewProblem(demands, opening)
	if err != nil {
		panic(err)
	}
	return p
}

// diffCase is one named instance for the incremental-vs-exact matrix.
type diffCase struct {
	name string
	p    *Problem
}

func differentialCases() []diffCase {
	cases := []diffCase{
		{"ties/grid-49", tiedGridProblem(49)},
		{"ties/grid-130", tiedGridProblem(130)},
		{"colinear-90", colinearProblem(90)},
		{"duplicates-120", duplicatePointsProblem(120)},
	}
	for _, n := range []int{1, 2, 17, 60, 140, 400} {
		cases = append(cases, diffCase{
			fmt.Sprintf("random-%d", n),
			randomOfflineProblem(uint64(2000+n), n),
		})
	}
	return cases
}

// TestSolveOfflineIncrementalMatchesExact pins the tentpole identity:
// the incremental engine reproduces the exact sweep bit for bit — same
// stations in the same order, same assignment, bit-identical evaluated
// cost — at parallelism 1, 2, 4 and 7, across random and adversarial
// (tied, colinear, duplicate-point) instances.
func TestSolveOfflineIncrementalMatchesExact(t *testing.T) {
	for _, tc := range differentialCases() {
		want, err := SolveOfflineExactWorkers(tc.p, 1)
		if err != nil {
			t.Fatalf("%s: exact: %v", tc.name, err)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			got, err := SolveOfflineWorkers(tc.p, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: incremental: %v", tc.name, workers, err)
			}
			sameSolution(t, fmt.Sprintf("%s workers=%d", tc.name, workers), tc.p, got, want)
		}
	}
}

// TestSolveOfflineIncrementalMatchesExactLarge runs the same identity at
// N=2000 — large enough that the lazy queue, curve bounds, radix paths
// and seed bounds are all fully exercised. The exact oracle is quadratic
// per iteration, so the test is skipped under -short (CI runs the
// differential suite with -short; the full run covers this locally).
func TestSolveOfflineIncrementalMatchesExactLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("exact oracle at N=2000 is expensive; skipped under -short")
	}
	p := randomOfflineProblem(9001, 2000)
	want, err := SolveOfflineExactWorkers(p, 1)
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	for _, workers := range []int{1, 4} {
		got, err := SolveOfflineWorkers(p, workers)
		if err != nil {
			t.Fatalf("workers=%d: incremental: %v", workers, err)
		}
		sameSolution(t, fmt.Sprintf("n=2000 workers=%d", workers), p, got, want)
	}
}

// auditAccept checks, at one accepted winner, the two facts the lazy
// engine's correctness argument rests on, against freshly computed exact
// ratios for every candidate:
//
//  1. Admissibility — no stored key exceeds its candidate's true current
//     ratio, i.e. a pop can never select past a candidate whose bound
//     should have kept it ahead in the queue.
//  2. Winner optimality — the accepted winner is the lexicographic
//     minimum of (ratio, candidate index), the exact sweep's
//     first-strict-minimum tie-break.
//
// Returning an error (rather than t.Fatal) keeps it usable from
// quick.Check properties.
func auditAccept(s *lazySolver, winner int32) error {
	p := s.p
	n := len(p.Demands)
	sc := &offlineScratch{idx: make([]int, 0, n), cost: make([]float64, 0, n)}
	wEval := evalCandidate(p, int(winner), s.assign, s.curCost, s.openCost[winner], s.unconn, sc)
	for i := 0; i < n; i++ {
		ev := evalCandidate(p, i, s.assign, s.curCost, s.openCost[i], s.unconn, sc)
		if ev.ratio < s.key[i] {
			return fmt.Errorf("candidate %d: stored key %v exceeds true ratio %v", i, s.key[i], ev.ratio)
		}
		if ev.ratio < wEval.ratio {
			return fmt.Errorf("winner %d (ratio %v) beaten by candidate %d (ratio %v)",
				winner, wEval.ratio, i, ev.ratio)
		}
		if i < int(winner) && !(wEval.ratio < ev.ratio) {
			return fmt.Errorf("winner %d ties candidate %d (ratio %v) but has the higher index",
				winner, i, ev.ratio)
		}
	}
	return nil
}

// TestQuickLazyBoundsAdmissible drives solveOfflineLazy over random
// instances with the accept hook auditing every single accepted winner:
// across the whole run, no lazy-queue bound ever excludes a candidate it
// should not, and every pop sequence ends at the exact sweep's winner.
func TestQuickLazyBoundsAdmissible(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	property := func(seed uint64, rawN uint16, rawW uint8) bool {
		n := 12 + int(rawN%70)
		workers := 1 + int(rawW%4)
		p := randomOfflineProblem(seed, n)
		var auditErr error
		hook := func(s *lazySolver, iter, winner int32) {
			if auditErr != nil {
				return
			}
			if err := auditAccept(s, winner); err != nil {
				auditErr = fmt.Errorf("seed=%d n=%d workers=%d iter=%d: %w",
					seed, n, workers, iter, err)
			}
		}
		if _, err := solveOfflineLazy(p, workers, hook); err != nil {
			t.Logf("solve failed: %v", err)
			return false
		}
		if auditErr != nil {
			t.Log(auditErr)
			return false
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLazyBoundsAdmissibleAdversarial repeats the full accept audit on
// the deterministic adversarial instances, where exact ties make the
// lexicographic winner argument do real work.
func TestLazyBoundsAdmissibleAdversarial(t *testing.T) {
	for _, tc := range []diffCase{
		{"ties/grid-64", tiedGridProblem(64)},
		{"colinear-60", colinearProblem(60)},
		{"duplicates-75", duplicatePointsProblem(75)},
	} {
		var auditErr error
		hook := func(s *lazySolver, iter, winner int32) {
			if auditErr != nil {
				return
			}
			if err := auditAccept(s, winner); err != nil {
				auditErr = fmt.Errorf("%s iter=%d: %w", tc.name, iter, err)
			}
		}
		if _, err := solveOfflineLazy(tc.p, 3, hook); err != nil {
			t.Fatalf("%s: solve: %v", tc.name, err)
		}
		if auditErr != nil {
			t.Fatal(auditErr)
		}
	}
}
