package core

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/stats"
)

func solveAndEvaluate(t *testing.T, p *Problem) (*Solution, Cost) {
	t.Helper()
	sol, err := SolveOffline(p)
	if err != nil {
		t.Fatalf("SolveOffline: %v", err)
	}
	cost, err := p.Evaluate(sol)
	if err != nil {
		t.Fatalf("offline solution infeasible: %v", err)
	}
	return sol, cost
}

func TestSolveOfflineEmpty(t *testing.T) {
	if _, err := SolveOffline(&Problem{}); err == nil {
		t.Error("empty problem should error")
	}
}

func TestSolveOfflineSinglePoint(t *testing.T) {
	p, err := UniformProblem([]geo.Point{geo.Pt(5, 5)}, 10)
	if err != nil {
		t.Fatal(err)
	}
	sol, cost := solveAndEvaluate(t, p)
	if len(sol.Open) != 1 || cost.Total() != 10 {
		t.Errorf("single point: open=%v cost=%v", sol.Open, cost)
	}
}

func TestSolveOfflineTwoClusters(t *testing.T) {
	// Two tight clusters 10 km apart. With cheap opening the solver must
	// open one station per cluster; with prohibitive opening, exactly one
	// station total.
	pts := []geo.Point{
		geo.Pt(0, 0), geo.Pt(10, 0), geo.Pt(0, 10),
		geo.Pt(10000, 0), geo.Pt(10010, 0), geo.Pt(10000, 10),
	}
	t.Run("cheap opening", func(t *testing.T) {
		p, err := UniformProblem(pts, 100)
		if err != nil {
			t.Fatal(err)
		}
		sol, cost := solveAndEvaluate(t, p)
		if len(sol.Open) != 2 {
			t.Errorf("opened %d stations, want 2 (cost %v)", len(sol.Open), cost)
		}
		// No assignment should cross clusters.
		if cost.Walking > 100 {
			t.Errorf("walking %v suggests cross-cluster assignment", cost.Walking)
		}
	})
	t.Run("prohibitive opening", func(t *testing.T) {
		p, err := UniformProblem(pts, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		sol, _ := solveAndEvaluate(t, p)
		if len(sol.Open) != 1 {
			t.Errorf("opened %d stations, want 1", len(sol.Open))
		}
	})
}

// bruteForceOptimum enumerates all non-empty station subsets; only usable
// for tiny n.
func bruteForceOptimum(p *Problem) float64 {
	n := len(p.Demands)
	best := math.Inf(1)
	for mask := 1; mask < 1<<n; mask++ {
		var opening float64
		var open []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				opening += p.Opening[i]
				open = append(open, i)
			}
		}
		var walking float64
		for j := 0; j < n; j++ {
			minC := math.Inf(1)
			for _, i := range open {
				if c := p.Walk(i, j); c < minC {
					minC = c
				}
			}
			walking += minC
		}
		if total := opening + walking; total < best {
			best = total
		}
	}
	return best
}

func TestSolveOfflineApproximationFactor(t *testing.T) {
	// The greedy is a 1.61-approximation; verify against brute force on
	// random 8-point instances with varied opening costs.
	rng := stats.NewRNG(77)
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.IntN(4)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		opening := make([]float64, n)
		for i := range opening {
			opening[i] = 100 + rng.Float64()*900
		}
		demands := make([]Demand, n)
		for i, pt := range pts {
			demands[i] = Demand{Loc: pt, Arrivals: 1 + rng.Float64()*4}
		}
		p, err := NewProblem(demands, opening)
		if err != nil {
			t.Fatal(err)
		}
		_, cost := solveAndEvaluate(t, p)
		opt := bruteForceOptimum(p)
		if cost.Total() > 1.61*opt+1e-6 {
			t.Errorf("trial %d: greedy %v exceeds 1.61x optimum %v", trial, cost.Total(), opt)
		}
		if cost.Total() < opt-1e-6 {
			t.Errorf("trial %d: greedy %v below optimum %v (infeasible?)", trial, cost.Total(), opt)
		}
	}
}

func TestSolveOfflineNoUnusedStations(t *testing.T) {
	rng := stats.NewRNG(31)
	pts := stats.SamplePoints(rng, stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 1000)}, 60)
	p, err := UniformProblem(pts, 2000)
	if err != nil {
		t.Fatal(err)
	}
	sol, _ := solveAndEvaluate(t, p)
	used := map[int]bool{}
	for _, i := range sol.Assign {
		used[i] = true
	}
	for _, i := range sol.Open {
		if !used[i] {
			t.Errorf("station %d opened but unused", i)
		}
	}
}

func TestSolveOfflineAssignsNearest(t *testing.T) {
	rng := stats.NewRNG(32)
	pts := stats.SamplePoints(rng, stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 1000)}, 40)
	p, err := UniformProblem(pts, 3000)
	if err != nil {
		t.Fatal(err)
	}
	sol, _ := solveAndEvaluate(t, p)
	for j, i := range sol.Assign {
		cur := p.Walk(i, j)
		for _, alt := range sol.Open {
			if p.Walk(alt, j) < cur-1e-9 {
				t.Fatalf("demand %d assigned to %d but %d is closer", j, i, alt)
			}
		}
	}
}

func TestSolveOfflineFig4Shape(t *testing.T) {
	// Fig. 4(a): 100 uniform arrivals in a 1000x1000 field with f=5000
	// yield a handful of stations (paper: 5) with walking cost well below
	// opening cost x stations.
	rng := stats.NewRNG(4)
	pts := stats.SamplePoints(rng, stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 1000)}, 100)
	p, err := UniformProblem(pts, 5000)
	if err != nil {
		t.Fatal(err)
	}
	sol, cost := solveAndEvaluate(t, p)
	if len(sol.Open) < 3 || len(sol.Open) > 9 {
		t.Errorf("opened %d stations, want 3-9 (paper: 5)", len(sol.Open))
	}
	if cost.Total() > 70000 {
		t.Errorf("total cost %v unreasonably high (paper: ~41795)", cost.Total())
	}
	// Average walk should be a small fraction of the field.
	if avg := cost.Walking / 100; avg > 300 {
		t.Errorf("average walk %v m too high", avg)
	}
}

func TestSolveOfflineDeterministic(t *testing.T) {
	rng := stats.NewRNG(8)
	pts := stats.SamplePoints(rng, stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 500)}, 30)
	p, err := UniformProblem(pts, 1000)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := solveAndEvaluate(t, p)
	b, _ := solveAndEvaluate(t, p)
	if len(a.Open) != len(b.Open) {
		t.Fatal("non-deterministic station count")
	}
	for i := range a.Open {
		if a.Open[i] != b.Open[i] {
			t.Fatal("non-deterministic station order")
		}
	}
}
