package core

import (
	"fmt"
	"sort"

	"repro/internal/geo"
)

// CoverageStats quantifies the rider experience of a station layout — the
// operational view behind the paper's "average walking distance (about
// 180 m of 2-min walk), acceptable to most users".
type CoverageStats struct {
	// AvgWalkM and P95WalkM summarise the walk from each destination to
	// its nearest station.
	AvgWalkM float64 `json:"avgWalkM"`
	P95WalkM float64 `json:"p95WalkM"`
	MaxWalkM float64 `json:"maxWalkM"`
	// CoveredFrac is the fraction of destinations within the radius.
	CoveredFrac float64 `json:"coveredFrac"`
}

// CoverageOf measures stations against a destination sample with the
// given coverage radius (e.g. the tolerance L).
func CoverageOf(stations, dests []geo.Point, radius float64) (CoverageStats, error) {
	if len(stations) == 0 {
		return CoverageStats{}, ErrNoStations
	}
	if len(dests) == 0 {
		return CoverageStats{}, fmt.Errorf("core: no destinations to measure coverage on")
	}
	if radius <= 0 {
		return CoverageStats{}, fmt.Errorf("core: coverage radius %v must be positive", radius)
	}
	walks := make([]float64, len(dests))
	var sum float64
	covered := 0
	tree := geo.BuildKDTree(stations)
	for i, d := range dests {
		_, dist := tree.Nearest(d)
		walks[i] = dist
		sum += dist
		if dist <= radius {
			covered++
		}
	}
	sort.Float64s(walks)
	// Nearest-rank percentile: the smallest walk with at least 95% of
	// the sample at or below it.
	idx := (len(walks)*95 + 99) / 100 // ceil(0.95 n)
	if idx < 1 {
		idx = 1
	}
	p95 := walks[idx-1]
	return CoverageStats{
		AvgWalkM:    sum / float64(len(dests)),
		P95WalkM:    p95,
		MaxWalkM:    walks[len(walks)-1],
		CoveredFrac: float64(covered) / float64(len(dests)),
	}, nil
}
