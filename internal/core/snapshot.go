package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/geo"
)

// This file is the durability seam of the online placers: every mutable
// field that influences a future Place decision can be serialized and
// restored bit-identically, so a write-ahead log of decisions replayed
// through a restored placer reproduces the exact pre-crash state. The
// immutable construction inputs (config, seed, landmark set, historical
// sample) are NOT part of the state — the operator must rebuild the
// placer from identical inputs, and ConfigDigest fingerprints them so a
// mismatched restore is refused instead of silently diverging.

// DurablePlacer is an OnlinePlacer whose complete mutable decision
// state can be captured and restored for write-ahead-log recovery.
//
// The contract: for a placer p and a fresh placer q built from
// identical construction inputs (ConfigDigest()s equal), after
// q.UnmarshalState(state) where state came from p.MarshalState(), every
// subsequent identical request stream produces bit-identical decisions
// from p and q — station coordinates, indices, opened flags and walk
// distances all equal.
type DurablePlacer interface {
	OnlinePlacer
	// ConfigDigest fingerprints the immutable construction inputs
	// (algorithm, config, seed, landmark set, historical sample). Two
	// placers with equal digests are interchangeable replay targets.
	ConfigDigest() uint64
	// MarshalState serializes the mutable decision state.
	MarshalState() ([]byte, error)
	// UnmarshalState restores state captured by MarshalState on a
	// placer built from the same construction inputs.
	UnmarshalState(data []byte) error
}

var (
	_ DurablePlacer = (*ESharing)(nil)
	_ DurablePlacer = (*Meyerson)(nil)
	_ DurablePlacer = (*OnlineKMeans)(nil)
)

// StationRemover is the optional station-removal capability (the
// paper's footnote-2 pickup path) used when replaying pickup records.
type StationRemover interface {
	RemoveStation(index int) error
}

// State-format version bytes, one per placer, bumped whenever the
// corresponding layout changes.
const (
	esharingStateVersion uint16 = 1
	meyersonStateVersion uint16 = 1
	kmeansStateVersion   uint16 = 1
)

// ---- binary state codec ------------------------------------------------

// stateEncoder appends little-endian primitives to a growing buffer.
type stateEncoder struct{ buf []byte }

func (e *stateEncoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *stateEncoder) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *stateEncoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *stateEncoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *stateEncoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *stateEncoder) f64(v float64) {
	// Bit-pattern encoding: NaN payloads and signed zeros survive the
	// round trip, which float formatting would lose.
	e.u64(math.Float64bits(v))
}

func (e *stateEncoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *stateEncoder) points(pts []geo.Point) {
	e.u32(uint32(len(pts)))
	for _, p := range pts {
		e.f64(p.X)
		e.f64(p.Y)
	}
}

// stateDecoder reads the encoder's layout back, latching the first
// error so call sites stay linear.
type stateDecoder struct {
	buf []byte
	err error
}

func (d *stateDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("core: truncated placer state")
	}
}

func (d *stateDecoder) take(n int) []byte {
	if d.err != nil || len(d.buf) < n {
		d.fail()
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *stateDecoder) u8() uint8 {
	if b := d.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (d *stateDecoder) u16() uint16 {
	if b := d.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (d *stateDecoder) u32() uint32 {
	if b := d.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (d *stateDecoder) u64() uint64 {
	if b := d.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (d *stateDecoder) i64() int64   { return int64(d.u64()) }
func (d *stateDecoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *stateDecoder) int() int     { return int(d.i64()) }

func (d *stateDecoder) bytes() []byte {
	n := d.u32()
	if d.err != nil || uint64(n) > uint64(len(d.buf)) {
		d.fail()
		return nil
	}
	return append([]byte(nil), d.take(int(n))...)
}

func (d *stateDecoder) points() []geo.Point {
	n := d.u32()
	// 16 bytes per point: reject counts the remaining buffer cannot
	// hold before allocating.
	if d.err != nil || uint64(n)*16 > uint64(len(d.buf)) {
		d.fail()
		return nil
	}
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: d.f64(), Y: d.f64()}
	}
	return pts
}

func (d *stateDecoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("core: %d trailing bytes after placer state", len(d.buf))
	}
	return nil
}

// ---- config digests ----------------------------------------------------

// digestWriter accumulates an FNV-1a fingerprint of construction inputs.
type digestWriter struct{ h uint64 }

func newDigestWriter() *digestWriter { return &digestWriter{h: fnvOffset} }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (w *digestWriter) u64(v uint64) {
	for i := 0; i < 8; i++ {
		w.h ^= uint64(byte(v >> (8 * i)))
		w.h *= fnvPrime
	}
}

func (w *digestWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *digestWriter) i64(v int64)   { w.u64(uint64(v)) }
func (w *digestWriter) bool(v bool)   { w.u64(map[bool]uint64{false: 0, true: 1}[v]) }
func (w *digestWriter) str(s string) {
	w.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		w.h ^= uint64(s[i])
		w.h *= fnvPrime
	}
}

func (w *digestWriter) points(pts []geo.Point) {
	w.u64(uint64(len(pts)))
	for _, p := range pts {
		w.f64(p.X)
		w.f64(p.Y)
	}
}

func esharingConfigDigest(offline []geo.Point, baseOpening float64, hist []geo.Point, cfg ESharingConfig) uint64 {
	w := newDigestWriter()
	w.str("e-sharing")
	w.f64(cfg.Beta)
	w.f64(cfg.Tolerance)
	w.i64(int64(cfg.TestEvery))
	w.i64(int64(cfg.WindowSize))
	w.i64(int64(cfg.InitialPenalty))
	w.bool(cfg.AdaptTolerance)
	w.u64(cfg.Seed)
	w.f64(baseOpening)
	w.points(offline)
	w.points(hist)
	return w.h
}

func meyersonConfigDigest(openingCost float64, seed uint64) uint64 {
	w := newDigestWriter()
	w.str("meyerson")
	w.f64(openingCost)
	w.u64(seed)
	return w.h
}

func kmeansConfigDigest(targetK int, seed uint64) uint64 {
	w := newDigestWriter()
	w.str("online-kmeans")
	w.i64(int64(targetK))
	w.u64(seed)
	return w.h
}

// StationDigest fingerprints an ordered station set (FNV-1a over the
// coordinate bit patterns); recovery uses it to cross-check that a
// restored placer republishes exactly the pre-crash station list.
func StationDigest(pts []geo.Point) uint64 {
	h := fnv.New64a()
	var b [16]byte
	for _, p := range pts {
		binary.LittleEndian.PutUint64(b[:8], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(b[8:], math.Float64bits(p.Y))
		_, _ = h.Write(b[:])
	}
	return h.Sum64()
}

// ---- ESharing ----------------------------------------------------------

// ConfigDigest implements DurablePlacer.
func (e *ESharing) ConfigDigest() uint64 { return e.configDigest }

// MarshalState implements DurablePlacer. A placer with a custom penalty
// installed cannot be snapshotted: the override is an arbitrary
// function the codec cannot capture.
func (e *ESharing) MarshalState() ([]byte, error) {
	if e.customPenalty != nil {
		return nil, fmt.Errorf("core: cannot snapshot an ESharing with a custom penalty installed")
	}
	rngState, err := e.rng.MarshalState()
	if err != nil {
		return nil, fmt.Errorf("core: marshal rng state: %w", err)
	}
	var enc stateEncoder
	enc.u16(esharingStateVersion)
	enc.points(e.index.Points())
	enc.i64(int64(e.landmarks))
	enc.f64(e.f)
	enc.i64(int64(e.opensSince))
	enc.i64(int64(e.onlineOpens))
	enc.i64(int64(e.requests))
	enc.points(e.window)
	enc.f64(e.lastSim)
	enc.u8(uint8(e.penalty.Type))
	enc.f64(e.penalty.Tolerance)
	enc.bytes(rngState)
	return enc.buf, nil
}

// UnmarshalState implements DurablePlacer; the receiver must have been
// built from the construction inputs the state was captured under
// (verify via ConfigDigest before calling).
func (e *ESharing) UnmarshalState(data []byte) error {
	if e.customPenalty != nil {
		return fmt.Errorf("core: cannot restore state over a custom penalty")
	}
	dec := stateDecoder{buf: data}
	if v := dec.u16(); dec.err == nil && v != esharingStateVersion {
		return fmt.Errorf("core: e-sharing state version %d, want %d", v, esharingStateVersion)
	}
	stations := dec.points()
	landmarks := dec.int()
	f := dec.f64()
	opensSince := dec.int()
	onlineOpens := dec.int()
	requests := dec.int()
	window := dec.points()
	lastSim := dec.f64()
	penType := PenaltyType(dec.u8())
	penTol := dec.f64()
	rngState := dec.bytes()
	if err := dec.finish(); err != nil {
		return err
	}
	if landmarks < 0 || landmarks > len(stations) {
		return fmt.Errorf("core: restored landmark count %d outside [0,%d]", landmarks, len(stations))
	}
	pen, err := NewPenalty(penType, penTol)
	if err != nil {
		return fmt.Errorf("core: restore penalty: %w", err)
	}
	if err := e.rng.UnmarshalState(rngState); err != nil {
		return fmt.Errorf("core: restore rng state: %w", err)
	}
	// geo.DynamicIndex guarantees Nearest results bit-identical to a
	// linear scan over the same insertion-ordered points, so rebuilding
	// the index from the flat station list is query-identical to the
	// incrementally grown pre-crash index.
	e.index = geo.NewDynamicIndex(stations)
	e.landmarks = landmarks
	e.f = f
	e.opensSince = opensSince
	e.onlineOpens = onlineOpens
	e.requests = requests
	e.window = window
	e.lastSim = lastSim
	e.penalty = pen
	return nil
}

// ---- Meyerson ----------------------------------------------------------

// ConfigDigest implements DurablePlacer.
func (m *Meyerson) ConfigDigest() uint64 { return m.configDigest }

// MarshalState implements DurablePlacer.
func (m *Meyerson) MarshalState() ([]byte, error) {
	rngState, err := m.rng.MarshalState()
	if err != nil {
		return nil, fmt.Errorf("core: marshal rng state: %w", err)
	}
	var enc stateEncoder
	enc.u16(meyersonStateVersion)
	enc.points(m.index.Points())
	enc.bytes(rngState)
	return enc.buf, nil
}

// UnmarshalState implements DurablePlacer.
func (m *Meyerson) UnmarshalState(data []byte) error {
	dec := stateDecoder{buf: data}
	if v := dec.u16(); dec.err == nil && v != meyersonStateVersion {
		return fmt.Errorf("core: meyerson state version %d, want %d", v, meyersonStateVersion)
	}
	stations := dec.points()
	rngState := dec.bytes()
	if err := dec.finish(); err != nil {
		return err
	}
	if err := m.rng.UnmarshalState(rngState); err != nil {
		return fmt.Errorf("core: restore rng state: %w", err)
	}
	m.index = geo.NewDynamicIndex(stations)
	return nil
}

// ---- OnlineKMeans ------------------------------------------------------

// ConfigDigest implements DurablePlacer.
func (o *OnlineKMeans) ConfigDigest() uint64 { return o.configDigest }

// MarshalState implements DurablePlacer.
func (o *OnlineKMeans) MarshalState() ([]byte, error) {
	rngState, err := o.rng.MarshalState()
	if err != nil {
		return nil, fmt.Errorf("core: marshal rng state: %w", err)
	}
	var enc stateEncoder
	enc.u16(kmeansStateVersion)
	enc.points(o.index.Points())
	enc.points(o.buffer)
	enc.f64(o.facility)
	enc.i64(int64(o.phaseNew))
	enc.bytes(rngState)
	return enc.buf, nil
}

// UnmarshalState implements DurablePlacer.
func (o *OnlineKMeans) UnmarshalState(data []byte) error {
	dec := stateDecoder{buf: data}
	if v := dec.u16(); dec.err == nil && v != kmeansStateVersion {
		return fmt.Errorf("core: online-kmeans state version %d, want %d", v, kmeansStateVersion)
	}
	stations := dec.points()
	buffer := dec.points()
	facility := dec.f64()
	phaseNew := dec.int()
	rngState := dec.bytes()
	if err := dec.finish(); err != nil {
		return err
	}
	if err := o.rng.UnmarshalState(rngState); err != nil {
		return fmt.Errorf("core: restore rng state: %w", err)
	}
	o.index = geo.NewDynamicIndex(stations)
	o.buffer = buffer
	o.facility = facility
	o.phaseNew = phaseNew
	return nil
}
