package core

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/stats"
)

// Determinism regression for the seed discipline: two placers built from
// the same seed must walk through an identical request stream making
// identical decisions and ending with identical station sets. This is
// the property the seededrand analyzer and stats.NewRNGStream exist to
// protect — if RNG construction drifts (different stream constants, a
// sneaky global rand call), these tests catch it before any experiment
// result silently changes.

func determinismStream(n int) []geo.Point {
	rng := stats.NewRNG(77)
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*3000, rng.Float64()*3000)
	}
	return pts
}

func assertIdenticalRuns(t *testing.T, a, b OnlinePlacer, stream []geo.Point) {
	t.Helper()
	for i, dest := range stream {
		da, errA := a.Place(dest)
		db, errB := b.Place(dest)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("request %d: error mismatch: %v vs %v", i, errA, errB)
		}
		if da != db {
			t.Fatalf("request %d: decisions diverge: %+v vs %+v", i, da, db)
		}
	}
	sa, sb := a.Stations(), b.Stations()
	if len(sa) != len(sb) {
		t.Fatalf("station counts diverge: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("station %d diverges: %v vs %v", i, sa[i], sb[i])
		}
	}
}

func TestMeyersonSameSeedIdenticalPlacements(t *testing.T) {
	stream := determinismStream(400)
	a, err := NewMeyerson(150, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMeyerson(150, 9)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalRuns(t, a, b, stream)
}

func TestOnlineKMeansSameSeedIdenticalPlacements(t *testing.T) {
	stream := determinismStream(400)
	a, err := NewOnlineKMeans(12, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewOnlineKMeans(12, 9)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalRuns(t, a, b, stream)
}

func TestESharingSameSeedIdenticalPlacements(t *testing.T) {
	stream := determinismStream(400)
	offline := []geo.Point{geo.Pt(500, 500), geo.Pt(2500, 500), geo.Pt(1500, 2500)}
	hist := determinismStream(200)
	build := func() *ESharing {
		cfg := DefaultESharingConfig()
		cfg.Seed = 9
		es, err := NewESharing(offline, 150, hist, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return es
	}
	assertIdenticalRuns(t, build(), build(), stream)
}

// A different seed must actually change behaviour somewhere in the
// stream — otherwise the "same seed" assertions above are vacuous.
func TestMeyersonDifferentSeedDiverges(t *testing.T) {
	stream := determinismStream(400)
	a, err := NewMeyerson(150, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMeyerson(150, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, dest := range stream {
		da, _ := a.Place(dest)
		db, _ := b.Place(dest)
		if da != db {
			return // diverged, as expected
		}
	}
	t.Fatal("seeds 9 and 10 produced identical decision streams")
}
