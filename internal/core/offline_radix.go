package core

import (
	"math"
	"slices"
	"sort"
)

// radixSortMin is the length below which sortAsc defers to slices.Sort:
// under it the eight histogram/offset tables cost more than the
// comparison sort they would replace.
const radixSortMin = 128

// radixScratch is one worker's reusable state for sortAsc and
// sortPairsAsc: the ping-pong buffers and the per-byte histograms of all
// eight LSD passes, counted in a single sweep.
type radixScratch struct {
	tmp    []float64
	tmpIdx []int
	cnt    [8][256]uint32
}

// sortAsc sorts cost ascending with an LSD radix sort on the float64 bit
// patterns. For non-negative, finite inputs — which walk costs always
// are: a non-negative arrival weight times a non-negative distance — the
// IEEE-754 ordering coincides with the unsigned ordering of the bits, so
// the result is the ascending value sequence bit for bit, exactly what
// slices.Sort produces (equal values have equal bits, making the sorted
// array unique). A single OR over the bit patterns detects any sign bit,
// infinity or NaN up front and falls back to slices.Sort, keeping the
// fast path honest rather than subtly misordered.
//
// Passes whose byte is constant across the whole slice — the common case
// for the high exponent bytes of same-magnitude costs — are skipped, so
// a typical sort runs the counting sweep plus two to four scatter
// passes: O(n) with a small constant, against the comparison sort's
// O(n log n) with interface-free but still branchy comparisons.
func (r *radixScratch) sortAsc(cost []float64) {
	n := len(cost)
	if n < radixSortMin {
		slices.Sort(cost)
		return
	}
	r.cnt = [8][256]uint32{}
	var all uint64
	for _, c := range cost {
		b := math.Float64bits(c)
		all |= b
		r.cnt[0][b&0xff]++
		r.cnt[1][(b>>8)&0xff]++
		r.cnt[2][(b>>16)&0xff]++
		r.cnt[3][(b>>24)&0xff]++
		r.cnt[4][(b>>32)&0xff]++
		r.cnt[5][(b>>40)&0xff]++
		r.cnt[6][(b>>48)&0xff]++
		r.cnt[7][b>>56]++
	}
	// 0x7FF0... is the smallest exponent-all-ones pattern: the OR of the
	// inputs reaches it only if some input is negative (sign bit),
	// infinite or NaN — or as a harmless false positive when distinct
	// finite exponents OR together, which merely costs the fallback.
	if all >= 0x7FF0000000000000 {
		slices.Sort(cost)
		return
	}
	if cap(r.tmp) < n {
		r.tmp = make([]float64, n)
	}
	src, dst := cost, r.tmp[:n]
	for p := 0; p < 8; p++ {
		shift := uint(8 * p)
		digit0 := byte(math.Float64bits(src[0]) >> shift)
		if r.cnt[p][digit0] == uint32(n) {
			// Every element shares this byte (the multiset of bytes is
			// permutation-invariant, so testing any one element decides):
			// the pass is the identity.
			continue
		}
		var off [256]uint32
		var sum uint32
		for v := 0; v < 256; v++ {
			off[v] = sum
			sum += r.cnt[p][v]
		}
		for _, c := range src {
			d := byte(math.Float64bits(c) >> shift)
			dst[off[d]] = c
			off[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &cost[0] {
		copy(cost, src)
	}
}

// sortPairsAsc sorts sc's (idx, cost) pairs by cost ascending, exact
// cost ties by ascending idx — offlineScratch.Less's total order. LSD
// radix passes are stable and sortUnconnByCost loads clients in
// ascending index order, so ties fall out in index order with no
// comparisons at all; the same bit-pattern screen as sortAsc routes
// negative, infinite or NaN costs (impossible for walk costs) to the
// comparison sort instead.
func (r *radixScratch) sortPairsAsc(sc *offlineScratch) {
	n := len(sc.cost)
	if n < radixSortMin {
		sort.Sort(sc)
		return
	}
	r.cnt = [8][256]uint32{}
	var all uint64
	for _, c := range sc.cost {
		b := math.Float64bits(c)
		all |= b
		r.cnt[0][b&0xff]++
		r.cnt[1][(b>>8)&0xff]++
		r.cnt[2][(b>>16)&0xff]++
		r.cnt[3][(b>>24)&0xff]++
		r.cnt[4][(b>>32)&0xff]++
		r.cnt[5][(b>>40)&0xff]++
		r.cnt[6][(b>>48)&0xff]++
		r.cnt[7][b>>56]++
	}
	if all >= 0x7FF0000000000000 {
		sort.Sort(sc)
		return
	}
	if cap(r.tmp) < n {
		r.tmp = make([]float64, n)
	}
	if cap(r.tmpIdx) < n {
		r.tmpIdx = make([]int, n)
	}
	src, dst := sc.cost, r.tmp[:n]
	srcIdx, dstIdx := sc.idx, r.tmpIdx[:n]
	for p := 0; p < 8; p++ {
		shift := uint(8 * p)
		digit0 := byte(math.Float64bits(src[0]) >> shift)
		if r.cnt[p][digit0] == uint32(n) {
			continue
		}
		var off [256]uint32
		var sum uint32
		for v := 0; v < 256; v++ {
			off[v] = sum
			sum += r.cnt[p][v]
		}
		for k, c := range src {
			d := byte(math.Float64bits(c) >> shift)
			o := off[d]
			dst[o] = c
			dstIdx[o] = srcIdx[k]
			off[d] = o + 1
		}
		src, dst = dst, src
		srcIdx, dstIdx = dstIdx, srcIdx
	}
	if &src[0] != &sc.cost[0] {
		copy(sc.cost, src)
		copy(sc.idx, srcIdx)
	}
}
