package core

// Differential tests proving the indexed nearest-station lookup is
// decision-identical to the linear geo.Nearest scan the placers
// originally used: same station indices, same walk distances (bit
// equal), and same RNG draws — so a fixed seed reproduces exactly the
// station set the pre-index implementation produced.

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/stats"
)

func TestESharingReestablishDoesNotAdvanceDoubling(t *testing.T) {
	// With k=1 and β=1 a single counted opening doubles f. Removing the
	// last station and re-establishing from the next request is forced
	// recovery, not an Algorithm 2 opening decision: f must stay at the
	// base cost and the doubling counter must not advance.
	cfg := DefaultESharingConfig()
	cfg.TestEvery = 0
	cfg.Beta = 1
	e := newTestESharing(t, []geo.Point{geo.Pt(0, 0)}, nil, cfg)
	f0 := e.WorkingOpeningCost()
	if err := e.RemoveStation(0); err != nil {
		t.Fatal(err)
	}
	d, err := e.Place(geo.Pt(50, 50))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Opened || d.StationIndex != 0 {
		t.Fatalf("re-establishment decision %+v, want opened at index 0", d)
	}
	if got := e.WorkingOpeningCost(); got != f0 {
		t.Errorf("re-establishment doubled f: got %v, want %v", got, f0)
	}
	if e.OnlineOpens() != 1 {
		t.Errorf("OnlineOpens=%d, want 1 (re-establishment still counts as an online station)", e.OnlineOpens())
	}

	// A later genuine opening must still start the doubling schedule from
	// zero: the first counted opening after recovery doubles f (β·k = 1).
	cfg2 := DefaultESharingConfig()
	cfg2.TestEvery = 0
	cfg2.Beta = 1
	cfg2.InitialPenalty = NoPenalty
	e2 := newTestESharing(t, []geo.Point{geo.Pt(0, 0)}, nil, cfg2)
	if err := e2.RemoveStation(0); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Place(geo.Pt(10, 10)); err != nil { // forced recovery
		t.Fatal(err)
	}
	f1 := e2.WorkingOpeningCost()
	rng := stats.NewRNG(3)
	dist := stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 100000)}
	for {
		d, err := e2.Place(dist.Sample(rng))
		if err != nil {
			t.Fatal(err)
		}
		if d.Opened {
			break
		}
	}
	if got := e2.WorkingOpeningCost(); math.Abs(got-2*f1) > 1e-9 {
		t.Errorf("after first counted opening f=%v, want %v", got, 2*f1)
	}
}

// assertSameDecision compares a placer decision with the reference
// linear-scan decision field by field, requiring exact float equality.
func assertSameDecision(t *testing.T, step int, got, want Decision) {
	t.Helper()
	if got.StationIndex != want.StationIndex || got.Opened != want.Opened ||
		got.Station != want.Station || got.Walk != want.Walk {
		t.Fatalf("step %d: indexed decision %+v differs from linear-scan reference %+v", step, got, want)
	}
}

// TestESharingDecisionIdenticalToLinearScan replays Algorithm 2 with a
// literal linear-scan reference (the seed implementation) next to the
// indexed placer, sharing the RNG construction, and demands identical
// decisions and station sets — including across RemoveStation calls.
func TestESharingDecisionIdenticalToLinearScan(t *testing.T) {
	const seed = 99
	cfg := DefaultESharingConfig()
	cfg.TestEvery = 0
	cfg.Seed = seed
	cfg.InitialPenalty = PenaltyTypeIII // nonzero opening probability at range
	cfg.Tolerance = 500
	landmarks := stats.SamplePoints(stats.NewRNG(1),
		stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 3000)}, 40)
	e, err := NewESharing(landmarks, 800, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}

	pen, err := NewPenalty(cfg.InitialPenalty, cfg.Tolerance)
	if err != nil {
		t.Fatal(err)
	}
	refRNG := stats.NewRNGStream(seed, stats.StreamESharing)
	refStations := append([]geo.Point(nil), landmarks...)
	refF := 800.0
	refOpensSince := 0
	refPlace := func(dest geo.Point) Decision {
		nearest, c := geo.Nearest(dest, refStations)
		prob := pen.Eval(c) * c / refF
		if prob > 1 {
			prob = 1
		}
		if refRNG.Float64() < prob {
			refStations = append(refStations, dest)
			refOpensSince++
			if float64(refOpensSince) >= cfg.Beta*float64(len(landmarks)) {
				refOpensSince = 0
				refF *= 2
			}
			return Decision{Station: dest, StationIndex: len(refStations) - 1, Opened: true}
		}
		return Decision{Station: refStations[nearest], StationIndex: nearest, Walk: c}
	}

	queryRNG := stats.NewRNG(2)
	dist := stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 3000)}
	for i := 0; i < 3000; i++ {
		dest := dist.Sample(queryRNG)
		got, err := e.Place(dest)
		if err != nil {
			t.Fatal(err)
		}
		assertSameDecision(t, i, got, refPlace(dest))
		// Periodically remove a station from both so the differential
		// also covers post-removal (rebuilt-tree) states.
		if i%701 == 700 {
			idx := int(queryRNG.IntN(len(refStations)))
			if err := e.RemoveStation(idx); err != nil {
				t.Fatal(err)
			}
			refStations = append(refStations[:idx], refStations[idx+1:]...)
		}
	}
	gotStations := e.Stations()
	if len(gotStations) != len(refStations) {
		t.Fatalf("station count %d, want %d", len(gotStations), len(refStations))
	}
	for i := range refStations {
		if gotStations[i] != refStations[i] {
			t.Fatalf("station %d: %v vs reference %v", i, gotStations[i], refStations[i])
		}
	}
}

// TestMeyersonDecisionIdenticalToLinearScan does the same for the
// Meyerson baseline.
func TestMeyersonDecisionIdenticalToLinearScan(t *testing.T) {
	const seed, opening = 5, 900.0
	m, err := NewMeyerson(opening, seed)
	if err != nil {
		t.Fatal(err)
	}
	refRNG := stats.NewRNGStream(seed, stats.StreamMeyerson)
	var refStations []geo.Point
	refPlace := func(dest geo.Point) Decision {
		nearest, d := geo.Nearest(dest, refStations)
		prob := 1.0
		if nearest >= 0 {
			prob = d / opening
		}
		if prob > 1 {
			prob = 1
		}
		if refRNG.Float64() < prob {
			refStations = append(refStations, dest)
			return Decision{Station: dest, StationIndex: len(refStations) - 1, Opened: true}
		}
		return Decision{Station: refStations[nearest], StationIndex: nearest, Walk: d}
	}
	queryRNG := stats.NewRNG(6)
	dist := stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 4000)}
	for i := 0; i < 3000; i++ {
		dest := dist.Sample(queryRNG)
		got, err := m.Place(dest)
		if err != nil {
			t.Fatal(err)
		}
		assertSameDecision(t, i, got, refPlace(dest))
	}
}

// TestOnlineKMeansDecisionIdenticalToLinearScan does the same for the
// online k-means baseline, covering the bootstrap and doubling phases.
func TestOnlineKMeansDecisionIdenticalToLinearScan(t *testing.T) {
	const seed, targetK = 11, 8
	o, err := NewOnlineKMeans(targetK, seed)
	if err != nil {
		t.Fatal(err)
	}
	refRNG := stats.NewRNGStream(seed, stats.StreamOnlineKMeans)
	var refStations, refBuffer []geo.Point
	refFacility := 0.0
	refPhaseNew := 0
	refPlace := func(dest geo.Point) Decision {
		if len(refBuffer) <= targetK {
			refBuffer = append(refBuffer, dest)
			refStations = append(refStations, dest)
			if len(refBuffer) == targetK+1 {
				w := medianPairwiseDist(refBuffer)
				if w <= 0 || math.IsInf(w, 1) {
					w = 1
				}
				refFacility = w * w / 2 / float64(targetK)
			}
			return Decision{Station: dest, StationIndex: len(refStations) - 1, Opened: true}
		}
		nearest, d := geo.Nearest(dest, refStations)
		prob := d * d / refFacility
		if prob > 1 {
			prob = 1
		}
		if refRNG.Float64() < prob {
			refStations = append(refStations, dest)
			refPhaseNew++
			if refPhaseNew >= 3*targetK {
				refPhaseNew = 0
				refFacility *= 2
			}
			return Decision{Station: dest, StationIndex: len(refStations) - 1, Opened: true}
		}
		return Decision{Station: refStations[nearest], StationIndex: nearest, Walk: d}
	}
	queryRNG := stats.NewRNG(12)
	dist := stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 4000)}
	for i := 0; i < 3000; i++ {
		dest := dist.Sample(queryRNG)
		got, err := o.Place(dest)
		if err != nil {
			t.Fatal(err)
		}
		assertSameDecision(t, i, got, refPlace(dest))
	}
}
