package core

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/stats"
)

func TestLocalSearchNeverWorsens(t *testing.T) {
	rng := stats.NewRNG(61)
	for trial := 0; trial < 15; trial++ {
		pts := stats.SamplePoints(rng, stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 1500)}, 30+rng.IntN(20))
		p, err := UniformProblem(pts, 1000+rng.Float64()*6000)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := SolveOffline(p)
		if err != nil {
			t.Fatal(err)
		}
		before, err := p.Evaluate(sol)
		if err != nil {
			t.Fatal(err)
		}
		improved, moves, err := ImproveLocalSearch(p, sol, 30)
		if err != nil {
			t.Fatal(err)
		}
		after, err := p.Evaluate(improved)
		if err != nil {
			t.Fatalf("trial %d: improved solution infeasible: %v", trial, err)
		}
		if after.Total() > before.Total()+1e-6 {
			t.Errorf("trial %d: local search worsened %v -> %v (%d moves)",
				trial, before.Total(), after.Total(), moves)
		}
	}
}

func TestLocalSearchFixesBadSolution(t *testing.T) {
	// A deliberately wasteful solution (every candidate open) must be
	// slashed toward the optimum.
	pts := []geo.Point{
		geo.Pt(0, 0), geo.Pt(10, 0), geo.Pt(0, 10),
		geo.Pt(2000, 2000), geo.Pt(2010, 2000), geo.Pt(2000, 2010),
	}
	p, err := UniformProblem(pts, 3000)
	if err != nil {
		t.Fatal(err)
	}
	all := &Solution{Open: []int{0, 1, 2, 3, 4, 5}, Assign: []int{0, 1, 2, 3, 4, 5}}
	improved, moves, err := ImproveLocalSearch(p, all, 50)
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Fatal("no moves applied to a wasteful solution")
	}
	if len(improved.Open) != 2 {
		t.Errorf("kept %d stations, want 2 (one per cluster)", len(improved.Open))
	}
	cost, err := p.Evaluate(improved)
	if err != nil {
		t.Fatal(err)
	}
	opt := bruteForceOptimum(p)
	if cost.Total() > opt+1e-6 {
		t.Errorf("local search total %v, optimum %v", cost.Total(), opt)
	}
}

func TestLocalSearchReachesOptimumOnTiny(t *testing.T) {
	// greedy + local search should hit the brute-force optimum on most
	// tiny instances.
	rng := stats.NewRNG(62)
	hits := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		n := 5 + rng.IntN(4)
		pts := stats.SamplePoints(rng, stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 1000)}, n)
		p, err := UniformProblem(pts, 300+rng.Float64()*2000)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := SolveOffline(p)
		if err != nil {
			t.Fatal(err)
		}
		improved, _, err := ImproveLocalSearch(p, sol, 50)
		if err != nil {
			t.Fatal(err)
		}
		cost, err := p.Evaluate(improved)
		if err != nil {
			t.Fatal(err)
		}
		opt := bruteForceOptimum(p)
		if cost.Total() <= opt+1e-6 {
			hits++
		}
	}
	if hits < trials*8/10 {
		t.Errorf("optimum reached on %d/%d tiny instances, want >= 80%%", hits, trials)
	}
}

func TestLocalSearchZeroIters(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(100, 0)}
	p, err := UniformProblem(pts, 50)
	if err != nil {
		t.Fatal(err)
	}
	sol := &Solution{Open: []int{0}, Assign: []int{0, 0}}
	improved, moves, err := ImproveLocalSearch(p, sol, 0)
	if err != nil {
		t.Fatal(err)
	}
	if moves != 0 {
		t.Errorf("moves=%d with 0 iters", moves)
	}
	// Input must not be mutated.
	if len(sol.Open) != 1 || sol.Open[0] != 0 {
		t.Error("input solution mutated")
	}
	if _, err := p.Evaluate(improved); err != nil {
		t.Errorf("returned solution infeasible: %v", err)
	}
}
