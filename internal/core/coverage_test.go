package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/stats"
)

func TestCoverageOfValidation(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0)}
	if _, err := CoverageOf(nil, pts, 100); !errors.Is(err, ErrNoStations) {
		t.Errorf("no stations: %v", err)
	}
	if _, err := CoverageOf(pts, nil, 100); err == nil {
		t.Error("no destinations should error")
	}
	if _, err := CoverageOf(pts, pts, 0); err == nil {
		t.Error("zero radius should error")
	}
}

func TestCoverageOfKnownLayout(t *testing.T) {
	stations := []geo.Point{geo.Pt(0, 0), geo.Pt(1000, 0)}
	dests := []geo.Point{
		geo.Pt(0, 100),    // walk 100, covered at 200
		geo.Pt(1000, 150), // walk 150, covered
		geo.Pt(500, 0),    // walk 500, uncovered
		geo.Pt(0, 50),     // walk 50, covered
	}
	stats, err := CoverageOf(stations, dests, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.AvgWalkM-200) > 1e-9 {
		t.Errorf("avg=%v, want 200", stats.AvgWalkM)
	}
	if stats.MaxWalkM != 500 {
		t.Errorf("max=%v, want 500", stats.MaxWalkM)
	}
	if math.Abs(stats.CoveredFrac-0.75) > 1e-12 {
		t.Errorf("covered=%v, want 0.75", stats.CoveredFrac)
	}
	if stats.P95WalkM > stats.MaxWalkM || stats.P95WalkM < stats.AvgWalkM {
		t.Errorf("p95=%v inconsistent", stats.P95WalkM)
	}
}

func TestCoverageImprovesWithOfflinePlan(t *testing.T) {
	// The planned layout must dominate a single arbitrary station.
	rng := stats.NewRNG(81)
	dests := stats.SamplePoints(rng, stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 2000)}, 150)
	p, err := UniformProblem(dests, 3000)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveOffline(p)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := CoverageOf(p.Stations(sol), dests, 200)
	if err != nil {
		t.Fatal(err)
	}
	single, err := CoverageOf(dests[:1], dests, 200)
	if err != nil {
		t.Fatal(err)
	}
	if planned.AvgWalkM >= single.AvgWalkM {
		t.Errorf("planned avg %v >= single-station %v", planned.AvgWalkM, single.AvgWalkM)
	}
	if planned.CoveredFrac <= single.CoveredFrac {
		t.Errorf("planned coverage %v <= single-station %v", planned.CoveredFrac, single.CoveredFrac)
	}
}
