package core

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/stats"
)

// ESharingConfig parameterises Algorithm 2 (online parking placement with
// deviation penalty).
type ESharingConfig struct {
	// Beta is the doubling ratio β ≥ 1: the working opening cost doubles
	// after every Beta·k stations opened online.
	Beta float64
	// Tolerance is the penalty level L in metres (paper: 200 m).
	Tolerance float64
	// TestEvery is the number of requests between Peacock KS tests
	// against the historical sample; 0 disables testing (the penalty
	// type then stays fixed).
	TestEvery int
	// WindowSize bounds the recent-request window G used by the test
	// (default: TestEvery, minimum 8).
	WindowSize int
	// InitialPenalty is the penalty type before the first test
	// (Algorithm 2 line 4 starts with Type II).
	InitialPenalty PenaltyType
	// AdaptTolerance scales L with the similarity band: ×1 when very
	// similar, ×1.5 when similar, ×2.5 when less similar — the paper's
	// "increase L and fit such shift".
	AdaptTolerance bool
	// Seed drives the stochastic opening decisions.
	Seed uint64
}

// DefaultESharingConfig returns the paper's evaluation settings.
func DefaultESharingConfig() ESharingConfig {
	return ESharingConfig{
		Beta:           1,
		Tolerance:      200,
		TestEvery:      100,
		InitialPenalty: PenaltyTypeII,
		AdaptTolerance: true,
		Seed:           1,
	}
}

func (c ESharingConfig) validate() error {
	switch {
	case c.Beta < 1:
		return fmt.Errorf("core: beta %v < 1", c.Beta)
	case c.Tolerance <= 0:
		return fmt.Errorf("core: tolerance %v must be positive", c.Tolerance)
	case c.TestEvery < 0:
		return fmt.Errorf("core: test interval %d < 0", c.TestEvery)
	case c.WindowSize < 0:
		return fmt.Errorf("core: window size %d < 0", c.WindowSize)
	}
	switch c.InitialPenalty {
	case NoPenalty, PenaltyTypeI, PenaltyTypeII, PenaltyTypeIII:
	default:
		return fmt.Errorf("core: unknown initial penalty %d", int(c.InitialPenalty))
	}
	return nil
}

// ESharing implements the paper's Algorithm 2. It is seeded with the
// offline solution (k stations used as landmarks and already established)
// and a historical destination sample H. Each request is assigned to its
// nearest station or opens a new one with probability
// min(g(c)·c/f, 1), where g is the active deviation penalty, c the
// distance to the nearest station, and f the working opening cost, which
// starts at the base space cost and doubles after every β·k online
// openings (see the calibration note in NewESharing and DESIGN.md §4b).
// Every TestEvery requests a Peacock 2-D KS test between H and the recent
// window selects the penalty type for the current regime.
type ESharing struct {
	cfg         ESharingConfig
	baseOpening float64
	f           float64           // working opening cost
	k           int               // offline station count
	landmarks   int               // stations[:landmarks] came from the offline solution
	index       *geo.DynamicIndex // established stations, in insertion order
	penalty     Penalty
	hist        []geo.Point
	window      []geo.Point
	requests    int
	opensSince  int // online openings since last doubling
	onlineOpens int
	lastSim     float64
	rng         *stats.SnapshotRNG

	// configDigest fingerprints the immutable construction inputs
	// (config, base cost, landmarks, history); see ConfigDigest.
	configDigest uint64

	// customPenalty, when non-nil, overrides penalty.Eval and suspends
	// KS-driven switching (see SetCustomPenalty).
	customPenalty func(c float64) float64
}

var _ OnlinePlacer = (*ESharing)(nil)

// NewESharing builds the placer.
//
// offline is the landmark station set P from Algorithm 1 (at least one);
// baseOpening is the real space-occupation cost f charged per station;
// hist is the historical destination sample H backing the KS test (may be
// empty when cfg.TestEvery is 0).
func NewESharing(offline []geo.Point, baseOpening float64, hist []geo.Point, cfg ESharingConfig) (*ESharing, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(offline) == 0 {
		return nil, fmt.Errorf("%w: algorithm 2 needs the offline landmark set", ErrNoStations)
	}
	if baseOpening <= 0 {
		return nil, fmt.Errorf("core: base opening cost %v must be positive", baseOpening)
	}
	if cfg.TestEvery > 0 && len(hist) == 0 {
		return nil, fmt.Errorf("core: KS testing enabled but historical sample is empty")
	}
	if cfg.WindowSize == 0 {
		cfg.WindowSize = cfg.TestEvery
	}
	if cfg.WindowSize < 8 {
		cfg.WindowSize = 8
	}

	k := len(offline)
	pen, err := NewPenalty(cfg.InitialPenalty, cfg.Tolerance)
	if err != nil {
		return nil, err
	}
	return &ESharing{
		cfg:         cfg,
		baseOpening: baseOpening,
		// The working opening cost starts at the true space cost and
		// doubles after every β·k online openings until opening is
		// prohibitive. Algorithm 2's literal "f_i ← f_i·w*/k" rescaling is
		// dimensionally ambiguous; starting at f and doubling reproduces
		// the paper's reported behaviour (Fig. 6: 2 online openings over
		// 100 in-distribution requests, ~3 for the surge) — see DESIGN.md.
		f:            baseOpening,
		k:            k,
		landmarks:    k,
		index:        geo.NewDynamicIndex(offline),
		penalty:      pen,
		hist:         append([]geo.Point(nil), hist...),
		lastSim:      100,
		rng:          stats.NewSnapshotRNGStream(cfg.Seed, stats.StreamESharing),
		configDigest: esharingConfigDigest(offline, baseOpening, hist, cfg),
	}, nil
}

// Place implements OnlinePlacer.
//
//esharing:hotpath
func (e *ESharing) Place(dest geo.Point) (Decision, error) {
	if !dest.IsFinite() {
		return Decision{}, &NonFiniteError{Dest: dest}
	}
	e.requests++
	e.pushWindow(dest)
	if e.customPenalty == nil && e.cfg.TestEvery > 0 &&
		e.requests%e.cfg.TestEvery == 0 && len(e.window) >= 8 {
		e.runTest()
	}

	nearest, c := e.index.Nearest(dest)
	if nearest < 0 {
		// All stations were removed; re-establish at the request. This is
		// forced recovery, not an Algorithm 2 opening decision, so it must
		// not advance the β·k doubling schedule — it would spuriously
		// double the working cost f for a degenerate (empty) station set.
		idx := e.index.Insert(dest)
		e.onlineOpens++
		return Decision{Station: dest, StationIndex: idx, Opened: true}, nil
	}
	g := e.penalty.Eval
	if e.customPenalty != nil {
		g = e.customPenalty
	}
	prob := g(c) * c / e.f
	if prob > 1 {
		prob = 1
	}
	if e.rng.Float64() < prob {
		idx := e.openAt(dest)
		return Decision{Station: dest, StationIndex: idx, Opened: true}, nil
	}
	return Decision{Station: e.index.At(nearest), StationIndex: nearest, Walk: c}, nil
}

func (e *ESharing) openAt(dest geo.Point) int {
	idx := e.index.Insert(dest)
	e.onlineOpens++
	e.opensSince++
	// Line 7–8: after β·k openings the opening cost doubles, making new
	// stations progressively prohibitive.
	if float64(e.opensSince) >= e.cfg.Beta*float64(e.k) {
		e.opensSince = 0
		e.f *= 2
	}
	return idx
}

func (e *ESharing) pushWindow(dest geo.Point) {
	w := e.cfg.WindowSize
	if w <= 0 {
		e.window = e.window[:0]
		return
	}
	// Shift in place rather than reslice: `window = window[len-w:]` keeps
	// the slice pointing into an ever-growing backing array, pinning every
	// point ever pushed. Copying down reuses one O(WindowSize) array for
	// the life of the engine.
	if len(e.window) >= w {
		copy(e.window, e.window[len(e.window)-(w-1):])
		e.window = e.window[:w-1]
	}
	e.window = append(e.window, dest)
}

// runTest performs the Peacock 2-D KS test (Eq. 9) between the historical
// sample and the recent window and switches the penalty function per the
// Section V-C bands.
func (e *ESharing) runTest() {
	d, err := stats.Peacock2DFast(e.hist, e.window)
	if err != nil {
		return // window too small; keep the current regime
	}
	sim := stats.Similarity(d)
	e.lastSim = sim
	tol := e.cfg.Tolerance
	if e.cfg.AdaptTolerance {
		switch stats.ClassifySimilarity(sim) {
		case stats.SimilarBand:
			tol *= 1.5
		case stats.LessSimilar:
			tol *= 2.5
		}
	}
	pen, err := NewPenalty(PenaltyForBand(sim), tol)
	if err != nil {
		return
	}
	e.penalty = pen
}

// Stations implements OnlinePlacer.
func (e *ESharing) Stations() []geo.Point {
	return e.index.Points()
}

// Name implements OnlinePlacer.
func (e *ESharing) Name() string { return "e-sharing" }

// Penalty returns the active penalty function.
func (e *ESharing) Penalty() Penalty { return e.penalty }

// SetPenalty pins the penalty function, bypassing KS-driven switching;
// used by the Fig. 9 / Table III experiments that evaluate each type in
// isolation.
func (e *ESharing) SetPenalty(p Penalty) { e.penalty = p }

// LastSimilarity returns the similarity percentage from the most recent
// KS test (100 before any test has run).
func (e *ESharing) LastSimilarity() float64 { return e.lastSim }

// OnlineOpens returns how many stations were opened online (beyond the
// offline landmarks).
func (e *ESharing) OnlineOpens() int { return e.onlineOpens }

// LandmarkCount returns the number of seeded offline stations.
func (e *ESharing) LandmarkCount() int { return e.landmarks }

// WorkingOpeningCost exposes the current internal f for ablation studies.
func (e *ESharing) WorkingOpeningCost() float64 { return e.f }

// BaseOpeningCost returns the real space-occupation cost charged per
// station in evaluation (the f_i of Definition 2).
func (e *ESharing) BaseOpeningCost() float64 { return e.baseOpening }

// RemoveStation implements the paper's footnote 2: when all E-bikes are
// picked up from a station it is removed from P; the algorithm may later
// re-establish a station there from fresh requests. Indices shift down
// after removal.
func (e *ESharing) RemoveStation(index int) error {
	if !e.index.Remove(index) {
		return fmt.Errorf("core: station index %d out of range [0,%d)", index, e.index.Len())
	}
	if index < e.landmarks {
		e.landmarks--
	}
	return nil
}
