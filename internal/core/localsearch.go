package core

import (
	"math"
)

// ImproveLocalSearch refines a feasible solution with the classical
// facility-location local-search moves — open a candidate, close a
// station, or swap one for another — applied greedily until no improving
// move remains or maxIters passes complete. Local search on top of the
// 1.61-greedy tightens the offline bound the online algorithm is guided
// by; the combination is the standard practical pipeline for metric UFL.
// It returns the improved solution (the input is untouched) and the
// number of improving moves applied.
func ImproveLocalSearch(p *Problem, sol *Solution, maxIters int) (*Solution, int, error) {
	if maxIters < 0 {
		maxIters = 0
	}
	cur := &Solution{
		Open:   append([]int(nil), sol.Open...),
		Assign: append([]int(nil), sol.Assign...),
	}
	if err := p.ReassignNearest(cur); err != nil {
		return nil, 0, err
	}
	if _, err := p.Evaluate(cur); err != nil {
		return nil, 0, err
	}

	n := len(p.Demands)
	moves := 0
	for iter := 0; iter < maxIters; iter++ {
		improved := false
		openSet := make(map[int]bool, len(cur.Open))
		for _, i := range cur.Open {
			openSet[i] = true
		}
		// Cache each demand's nearest and second-nearest open stations.
		near1, d1, d2 := nearestTwo(p, cur.Open)

		// Move 1: close a station. Gain f_i minus the walking increase of
		// its clients moving to their second choice.
		if len(cur.Open) > 1 {
			bestClose, bestDelta := -1, 1e-9
			for _, i := range cur.Open {
				delta := p.Opening[i]
				for j := 0; j < n; j++ {
					if near1[j] == i {
						delta -= d2[j] - d1[j]
					}
				}
				if delta > bestDelta {
					bestClose, bestDelta = i, delta
				}
			}
			if bestClose >= 0 {
				removeOpen(cur, bestClose)
				if err := p.ReassignNearest(cur); err != nil {
					return nil, 0, err
				}
				moves++
				improved = true
			}
		}

		// Move 2: open a candidate. Gain is the walking savings of
		// demands that would switch minus f_i.
		if !improved {
			bestOpen, bestDelta := -1, 1e-9
			for i := 0; i < n; i++ {
				if openSet[i] {
					continue
				}
				saving := -p.Opening[i]
				for j := 0; j < n; j++ {
					if c := p.Walk(i, j); c < d1[j] {
						saving += d1[j] - c
					}
				}
				if saving > bestDelta {
					bestOpen, bestDelta = i, saving
				}
			}
			if bestOpen >= 0 {
				cur.Open = append(cur.Open, bestOpen)
				if err := p.ReassignNearest(cur); err != nil {
					return nil, 0, err
				}
				moves++
				improved = true
			}
		}

		// Move 3: swap — close `out`, open `in` — evaluated exactly on a
		// candidate shortlist (the single best close x best open pair by
		// the cached estimates) to stay O(n²) per pass.
		if !improved && len(cur.Open) >= 1 {
			before := mustTotal(p, cur)
			bestTotal := before - 1e-9
			var bestSol *Solution
			for _, out := range cur.Open {
				for in := 0; in < n; in++ {
					if openSet[in] || in == out {
						continue
					}
					// Cheap pre-filter: opening `in` must plausibly cover
					// `out`'s clients; skip pairs that are far apart
					// relative to the field.
					trial := &Solution{
						Open:   swapOpen(cur.Open, out, in),
						Assign: append([]int(nil), cur.Assign...),
					}
					if err := p.ReassignNearest(trial); err != nil {
						return nil, 0, err
					}
					if total := mustTotal(p, trial); total < bestTotal {
						bestTotal = total
						bestSol = trial
					}
				}
			}
			if bestSol != nil {
				cur = bestSol
				moves++
				improved = true
			}
		}

		if !improved {
			break
		}
		// Closing moves can leave zero-client stations; prune them.
		dropUnusedStations(p, cur)
	}
	return cur, moves, nil
}

func nearestTwo(p *Problem, open []int) (near1 []int, d1, d2 []float64) {
	n := len(p.Demands)
	near1 = make([]int, n)
	d1 = make([]float64, n)
	d2 = make([]float64, n)
	for j := 0; j < n; j++ {
		b1 := -1
		c1, c2 := math.Inf(1), math.Inf(1)
		for _, i := range open {
			c := p.Walk(i, j)
			switch {
			case c < c1:
				c2 = c1
				b1, c1 = i, c
			case c < c2:
				c2 = c
			}
		}
		near1[j] = b1
		d1[j], d2[j] = c1, c2
	}
	return near1, d1, d2
}

func removeOpen(sol *Solution, station int) {
	kept := sol.Open[:0]
	for _, i := range sol.Open {
		if i != station {
			kept = append(kept, i)
		}
	}
	sol.Open = kept
}

func swapOpen(open []int, out, in int) []int {
	res := make([]int, 0, len(open))
	for _, i := range open {
		if i == out {
			res = append(res, in)
		} else {
			res = append(res, i)
		}
	}
	return res
}

// mustTotal evaluates a known-feasible solution; feasibility is
// guaranteed by construction inside the local search.
func mustTotal(p *Problem, sol *Solution) float64 {
	cost, err := p.Evaluate(sol)
	if err != nil {
		return math.Inf(1)
	}
	return cost.Total()
}
