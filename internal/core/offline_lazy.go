package core

import (
	"math"
	"slices"

	"repro/internal/geo"
	"repro/internal/parallel"
)

// This file is the geometry-aware incremental JMS engine behind
// SolveOffline (DESIGN.md §13). The exact sweep (offline.go) re-scores
// every candidate against every unconnected client on every iteration;
// at city scale that quadratic-per-iteration cost is hopeless. The
// incremental engine keeps the same winners — bit for bit — while doing
// a fraction of the scoring, by combining two ideas:
//
//  1. Neighbourhood invalidation. Between two evaluations of a fixed
//     candidate i, its Eq. 5 ratio can only DECREASE through two events:
//     its own opening cost being zeroed (i was picked), or a client j
//     connecting at cost curCost[j] with walk(i,j) < curCost[j] — i.e.
//     j lies strictly inside the circle around itself of radius
//     d(winner, j), which is a kd-tree range query over the candidate
//     sites. Everything else (clients leaving the unconnected set,
//     connected clients switching closer) can only INCREASE the ratio:
//     removing the element at sorted position p from the prefix
//     minimisation leaves prefixes k < p untouched and turns each later
//     prefix sum S_{k+1} into S_{k+1} - c_p >= S_k, so no prefix ratio
//     drops below the old minimum.
//
//  2. A lazy priority queue. Each candidate carries an admissible lower
//     bound on its current ratio, derived from the truncated ratio curve
//     of its last exact evaluation (or, before any evaluation, from the
//     kd-tree seed bounds) decremented per prefix length by the
//     slack-loosened base decrease — savings gains and zeroed opening
//     costs — accrued in its neighbourhood since (see boundKey).
//     Selection pops the queue; stale entries (not evaluated this
//     iteration) are re-scored exactly — in deterministic worker-fanned
//     batches — and pushed back; the first popped entry that was scored
//     this iteration is the winner.
//
// Why the winner is exact: keys never exceed true ratios, and the heap
// orders by (key, index). When an entry scored this iteration reaches
// the top, any candidate with a strictly better (ratio, index) pair
// would have an entry with key <= its ratio sitting below the top —
// contradiction. So the accepted winner is the lexicographic minimum of
// (ratio, index), exactly the exact sweep's first-strict-minimum
// tie-break, and that holds for ANY admissible keys — the solution is
// invariant to how many stale entries get re-scored, which is what
// makes it bit-identical at every worker count despite worker-dependent
// re-evaluation batches.

// lazyBoundSlack is the relative slack subtracted whenever a key is
// decremented. The invalidation inequality (new ratio >= old ratio −
// savings gain) is exact in real arithmetic; the slack keeps the
// float64-computed key below the float64-computed ratio despite
// rounding in either chain. 1e-9 dwarfs the ~1e-12 relative error that
// tens of thousands of accumulations can introduce, while costing at
// most a handful of spurious re-evaluations near exact ties.
const lazyBoundSlack = 1e-9

// lazyRadiusSlack inflates the squared invalidation radius. Membership
// "walk(i,j) < curCost[j]" is proven from the squared-distance
// comparison Dist2(i,j) < Dist2(winner,j); Dist is sqrt(Dist2) with a
// correctly rounded, monotone sqrt, so the two comparisons can disagree
// only at exact rounding ties. The query over-covers by a relative
// 1e-12 to keep those ties inside the hit set, and the per-hit gain
// test (strictly positive) makes the final call.
const lazyRadiusSlack = 1e-12

// lazyCurveK truncates the cached per-candidate ratio curve: an exact
// evaluation stores the prefix ratios r_1..r_{K-1} individually plus the
// minimum over every longer prefix. A base decrease of g (savings gained
// or the opening cost zeroed) lowers the prefix-k ratio by exactly g/k,
// so the curve supports the bound
//
//	new ratio >= min( min_{k<K}(r_k − g/k), rTail − g/K )
//
// instead of the scalar r_min − g, which assumes the k = 1 worst case.
// Early iterations — where the unconnected set is largest and re-scoring
// costs the most — win prefixes dozens of clients long, so the truncated
// curve keeps keys up to K times tighter exactly where it matters.
// 16 costs 15 floats per candidate and makes each key refresh an O(K)
// scan; past it the tail bound's K-fold tightening hits diminishing
// returns.
const lazyCurveK = 16

// lazyParallelEvalMin is the instance size below which stale-batch
// re-scoring stays inline: under it a single re-score is cheaper than
// the fork-join it would ride on.
const lazyParallelEvalMin = 2048

// lazyHeapEntry is one priority-queue entry: the candidate's admissible
// key at push time and the candidate generation it belongs to. Entries
// whose gen no longer matches the candidate's current generation are
// dead and discarded on pop — the standard lazy-deletion scheme, which
// avoids any float equality test on keys.
type lazyHeapEntry struct {
	key float64
	idx int32
	gen uint32
}

// connectEvent records one client connecting this iteration: the
// invalidation source for every candidate strictly closer to j than the
// winner is.
type connectEvent struct {
	j    int32   // newly connected client
	cost float64 // curCost[j] at connection time (weighted walk cost)
	r2   float64 // squared distance from j to the winner, slack-inflated
}

// lazyEventScratch is one worker's output for the invalidation fan-out:
// flattened (candidate, gain) hits for the worker's contiguous chunk of
// events, gains already filtered to strictly positive.
type lazyEventScratch struct {
	hits  []int32
	gains []float64
}

// lazySolver carries the incremental engine's state across iterations.
type lazySolver struct {
	p       *Problem
	workers int
	tree    *geo.KDTree

	// Connection state, identical in meaning and evolution to the
	// exact sweep's locals.
	assign    []int
	curCost   []float64
	opened    []bool
	openCost  []float64
	openOrder []int
	remaining int
	unconn    []int
	conn      []int // connected clients, ascending — unconn's complement

	// Per-candidate lazy state.
	key   []float64  // admissible lower bound on the current ratio
	gen   []uint32   // current generation; older heap entries are dead
	epoch []int32    // iteration of the last exact evaluation
	eval  []candEval // that evaluation's (ratio, prefix)

	// Truncated ratio curve from the last exact evaluation (lazyCurveK):
	// curveHead[i*(K-1) : (i+1)*(K-1)] holds r_1..r_{K-1}, curveTail[i]
	// the minimum ratio over prefixes >= K, and gainSince[i] the total
	// base decrease credited since — the inputs to boundKey.
	curveHead []float64
	curveTail []float64
	gainSince []float64

	heap    []lazyHeapEntry
	batch   []int32
	scratch []offlineScratch
	radix   []radixScratch

	// Invalidation fan-out buffers.
	events   []connectEvent
	evOut    []lazyEventScratch
	seenIter []int32   // last iteration a candidate accrued event gains
	gainAcc  []float64 // per-iteration accumulated gains
	dirty    []int32   // candidates invalidated this iteration, first-hit order

	// batchBody and eventBody are the ForChunks callbacks for stale-
	// batch re-scoring and event fan-out, allocated once: the selection
	// loop calls them every pop round, and a fresh closure per call
	// would put the engine back on an alloc-per-iteration budget.
	batchBody func(w, lo, hi int)
	eventBody func(w, lo, hi int)

	// acceptHook, when non-nil, observes every accepted winner before it
	// is applied, with full read access to the solver state; tests use it
	// to audit bound admissibility and winner optimality.
	acceptHook func(s *lazySolver, iter, winner int32)
}

// SolveOfflineWorkers is SolveOffline with an explicit worker count: the
// incremental engine with initial scoring, stale-batch re-evaluation and
// neighbourhood invalidation fanned out across the workers.
//
// Determinism contract: the solution is bit-identical for every workers
// value and bit-identical to SolveOfflineExactWorkers — the accepted
// winner of every iteration is the lexicographic minimum of
// (ratio, candidate index) regardless of which stale entries a given
// worker count happens to re-score (see the file comment for the
// argument). Differential tests pin both identities at parallelism 1,
// 2, 4 and 7, on random and adversarially tied instances.
//
//esharing:deterministic
func SolveOfflineWorkers(p *Problem, workers int) (*Solution, error) {
	return solveOfflineLazy(p, workers, nil)
}

//esharing:deterministic
func solveOfflineLazy(p *Problem, workers int, acceptHook func(s *lazySolver, iter, winner int32)) (*Solution, error) {
	n := len(p.Demands)
	if n == 0 {
		return nil, ErrEmptyProblem
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	locs := make([]geo.Point, n)
	for i, d := range p.Demands {
		locs[i] = d.Loc
	}
	s := &lazySolver{
		p:          p,
		workers:    workers,
		tree:       geo.BuildKDTree(locs),
		assign:     make([]int, n),
		curCost:    make([]float64, n),
		opened:     make([]bool, n),
		openCost:   append([]float64(nil), p.Opening...),
		remaining:  n,
		unconn:     make([]int, 0, n),
		conn:       make([]int, 0, n),
		key:        make([]float64, n),
		gen:        make([]uint32, n),
		epoch:      make([]int32, n),
		eval:       make([]candEval, n),
		curveHead:  make([]float64, n*(lazyCurveK-1)),
		curveTail:  make([]float64, n),
		gainSince:  make([]float64, n),
		heap:       make([]lazyHeapEntry, 0, n),
		scratch:    make([]offlineScratch, workers),
		radix:      make([]radixScratch, workers),
		evOut:      make([]lazyEventScratch, workers),
		seenIter:   make([]int32, n),
		gainAcc:    make([]float64, n),
		acceptHook: acceptHook,
	}
	for j := range s.assign {
		s.assign[j] = unassigned
		s.curCost[j] = math.Inf(1)
		s.epoch[j] = -1
		s.seenIter[j] = -1
	}
	for w := range s.scratch {
		s.scratch[w].idx = make([]int, 0, n)
		s.scratch[w].cost = make([]float64, 0, n)
	}
	s.batchBody = func(w, lo, hi int) {
		sc := &s.scratch[w]
		for k := lo; k < hi; k++ {
			i := s.batch[k]
			s.eval[i], s.curveTail[i] = evalRatioCurve(
				s.p, int(i), s.curCost, s.openCost[i], s.conn, s.unconn, sc, &s.radix[w], s.curveHeadOf(i))
		}
	}
	s.eventBody = func(w, lo, hi int) {
		out := &s.evOut[w]
		mark := 0
		for e := lo; e < hi; e++ {
			ev := s.events[e]
			jLoc := s.p.Demands[ev.j].Loc
			out.hits = s.tree.WithinDist2(jLoc, ev.r2, out.hits)
			for _, i := range out.hits[mark:] {
				out.gains = append(out.gains, ev.cost-s.p.Walk(int(i), int(ev.j)))
			}
			mark = len(out.hits)
		}
	}

	s.seedBounds()
	for iter := int32(0); s.remaining > 0; iter++ {
		if iter > 0 {
			s.rebuildUnconn()
		}
		w := s.selectWinner(iter)
		if w < 0 {
			// Unreachable for valid instances: every candidate always
			// keeps a live heap entry and can connect at least one
			// client.
			return nil, ErrEmptyProblem
		}
		if s.acceptHook != nil {
			s.acceptHook(s, iter, w)
		}
		s.applyWinner(iter, w)
	}

	sol := &Solution{Open: s.openOrder, Assign: s.assign}
	// Final clean-up: nearest reassignment can only help.
	if err := p.ReassignNearest(sol); err != nil {
		return nil, err
	}
	dropUnusedStations(p, sol)
	return sol, nil
}

// rebuildUnconn refreshes the shared unconnected-client list and its
// complement, both ascending by client index — the exact sweep's order.
//
//esharing:deterministic
func (s *lazySolver) rebuildUnconn() {
	s.unconn = s.unconn[:0]
	s.conn = s.conn[:0]
	for j := 0; j < len(s.assign); j++ {
		if s.assign[j] == unassigned {
			s.unconn = append(s.unconn, j)
		} else {
			s.conn = append(s.conn, j)
		}
	}
}

// curveHeadOf returns candidate i's slice of the flattened head-ratio
// array: r_1..r_{lazyCurveK-1} from its last exact evaluation.
func (s *lazySolver) curveHeadOf(i int32) []float64 {
	lo := int(i) * (lazyCurveK - 1)
	return s.curveHead[lo : lo+lazyCurveK-1 : lo+lazyCurveK-1]
}

// evalRatioCurve scores candidate i exactly like evalCandidate — same
// switch savings in the same ascending-client order, same minimum prefix
// ratio over the unconnected clients in ascending cost order — while
// touching only what the ratio needs. The client permutation that
// evalCandidate's paired sort also fixes is irrelevant here: exact cost
// ties contribute bitwise-equal values to every prefix sum in either
// order, so the sorted value sequence, and with it every computed
// (ratio, prefix), is bit-identical. That frees the hot path to sort a
// bare float64 slice (no interface dispatch, no paired swaps) and to
// walk the connected list instead of scanning all clients — the two
// costs the profile put at >90% of solve time. Alongside the best
// (ratio, prefix) it records the truncated ratio curve into head
// (prefixes 1..K-1, +Inf-padded) and returns the minimum tail ratio
// (prefixes >= K, +Inf when none).
func evalRatioCurve(p *Problem, i int, curCost []float64, openCost float64, conn, unconn []int, sc *offlineScratch, rs *radixScratch, head []float64) (candEval, float64) {
	var savings float64
	for _, j := range conn {
		if c := p.Walk(i, j); c < curCost[j] {
			savings += curCost[j] - c
		}
	}
	cost := sc.cost[:0]
	for _, j := range unconn {
		cost = append(cost, p.Walk(i, j))
	}
	sc.cost = cost
	rs.sortAsc(cost)
	for k := range head {
		head[k] = math.Inf(1)
	}
	base := openCost - savings
	best := candEval{ratio: math.Inf(1)}
	tail := math.Inf(1)
	var acc float64
	for k, c := range cost {
		acc += c
		ratio := (base + acc) / float64(k+1)
		if k+1 < lazyCurveK {
			head[k] = ratio
		} else if ratio < tail {
			tail = ratio
		}
		if ratio < best.ratio {
			best = candEval{ratio: ratio, prefix: k + 1}
		}
	}
	return best, tail
}

// boundKey turns candidate i's cached ratio curve and accrued base
// decrease into an admissible lower bound on its current ratio. Per-k
// monotonicity makes every cached r_k a lower bound on today's r_k
// before base decreases (clients leaving the unconnected set only raise
// each fixed-length prefix ratio; shrinking savings only raise the
// base), and a total base decrease of g lowers the prefix-k ratio by
// exactly g/k — so the minimum of r_k − g/k over k < K and
// rTail − g/K over the tail bounds the true minimum from below. The
// final slack subtraction absorbs float rounding in the curve, the gain
// accumulation and this scan, keeping the bound admissible against the
// bit-exact ratios a re-evaluation will compute.
func (s *lazySolver) boundKey(i int32) float64 {
	g := s.gainSince[i]
	b := s.curveTail[i] - g/lazyCurveK
	for k, r := range s.curveHeadOf(i) {
		if v := r - g/float64(k+1); v < b {
			b = v
		}
	}
	return b - lazyBoundSlack*(math.Abs(b)+g+1)
}

// seedNN is the neighbourhood size the seed bounds are built from: each
// candidate fetches its seedNN nearest demand points and lower-bounds
// every prefix-cost sum with true per-neighbour costs inside that ball
// and the floor w_min * d_seedNN outside it. Larger values tighten the
// tail bound (the average of the seedNN nearest costs) at a linear cost
// in the one-time seeding sweep; 64 keeps seeding thousands of times
// cheaper than the full initial evaluation it replaces while bounding
// tightly enough that only candidates genuinely near the action are
// ever exactly evaluated.
const seedNN = 64

// seedBounds replaces the exact initial scoring sweep — n sorts of n
// costs, the dominant cost at city scale — with admissible per-candidate
// seed bounds: every candidate enters the queue at a cheap lower bound
// on its initial Eq. 5 ratio, its curve slots pre-loaded with per-prefix
// bounds so later invalidation gains decrement them exactly like an
// evaluated curve. Candidates stay at epoch -1, so whichever of them
// surface at the queue top are exactly evaluated on demand — the lazy
// machinery's normal stale path — and the winner-invariance argument
// applies unchanged: seeds are just another admissible key assignment,
// so the solution bits cannot depend on them.
//
// The bound: let d_1 <= ... <= d_seedNN be the distances of candidate
// i's seedNN nearest demand points (self included, d = 0). Any k
// clients cost at least the k smallest values of the multiset holding
// w_j*d_j for the ball members and w_min*d_seedNN for everyone outside
// the ball (each outside client walks at least d_seedNN). Prefix sums
// S_k of that merged ascending multiset give
//
//	r_k >= (openCost_i + S_k)/k            (k < lazyCurveK)
//	r_k >= S_K/K for every k >= K          (average monotonicity)
//
// and the usual boundKey slack absorbs the sqrt-vs-hypot rounding skew.
//
//esharing:deterministic
func (s *lazySolver) seedBounds() {
	s.rebuildUnconn()
	p := s.p
	n := len(p.Demands)
	wMin := math.Inf(1)
	for _, d := range p.Demands {
		if d.Arrivals < wMin {
			wMin = d.Arrivals
		}
	}
	parallel.ForChunks(s.workers, n, func(w, lo, hi int) {
		knnIdx := make([]int32, 0, seedNN)
		knnD2 := make([]float64, 0, seedNN)
		costs := make([]float64, 0, seedNN)
		for i := lo; i < hi; i++ {
			knnIdx, knnD2 = s.tree.KNearest(p.Demands[i].Loc, seedNN, knnIdx, knnD2)
			costs = costs[:0]
			maxD2 := 0.0
			for k, jj := range knnIdx {
				d2 := knnD2[k]
				if d2 > maxD2 {
					maxD2 = d2
				}
				costs = append(costs, p.Demands[jj].Arrivals*math.Sqrt(d2))
			}
			slices.Sort(costs)
			// Clients outside the ball are at least the ball radius away.
			floor := math.Inf(1)
			if len(costs) == seedNN && seedNN < n {
				floor = wMin * math.Sqrt(maxD2)
			}
			head := s.curveHeadOf(int32(i))
			var acc float64
			ptr := 0
			for k := 1; k <= lazyCurveK; k++ {
				next := floor
				if ptr < len(costs) && costs[ptr] < floor {
					next = costs[ptr]
					ptr++
				}
				acc += next
				if k < lazyCurveK {
					head[k-1] = (s.openCost[i] + acc) / float64(k)
				} else {
					s.curveTail[i] = acc / float64(k)
				}
			}
		}
	})
	for i := range s.key {
		s.key[i] = s.boundKey(int32(i))
		s.heap = append(s.heap, lazyHeapEntry{key: s.key[i], idx: int32(i), gen: 0})
	}
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

// selectWinner pops the queue until the top entry was scored this
// iteration. Stale live entries are re-scored exactly in batches of up
// to `workers` — the deterministic per-bucket fan-out of invalidated
// candidates — and pushed back with fresh keys. Returns -1 only on a
// broken invariant (empty queue).
//
//esharing:deterministic
func (s *lazySolver) selectWinner(iter int32) int32 {
	for {
		e, ok := s.popLive()
		if !ok {
			return -1
		}
		if s.epoch[e.idx] == iter {
			return e.idx
		}
		// Gather up to `workers` stale candidates: the current queue
		// minima, which are exactly the candidates the one-at-a-time
		// lazy scheme would re-score next (modulo re-scored keys
		// rising, which only spares work later).
		s.batch = append(s.batch[:0], e.idx)
		for len(s.batch) < s.workers {
			e2, ok := s.popLive()
			if !ok {
				break
			}
			if s.epoch[e2.idx] == iter {
				// Already exact this iteration: park it back; it may
				// well be the winner once the batch re-scores.
				s.push(e2)
				break
			}
			s.batch = append(s.batch, e2.idx)
		}
		// Fan the batch out only when each evaluation is heavy enough
		// to amortise the fork-join: a re-score costs O(n + U log U),
		// so small instances run the batch inline regardless of the
		// worker count. Either path produces the same bits — the
		// evaluations are independent and exact.
		if len(s.batch) > 1 && len(s.assign) >= lazyParallelEvalMin {
			parallel.ForChunks(s.workers, len(s.batch), s.batchBody)
		} else {
			s.batchBody(0, 0, len(s.batch))
		}
		for _, i := range s.batch {
			s.epoch[i] = iter
			s.key[i] = s.eval[i].ratio
			s.gainSince[i] = 0
			s.gen[i]++
			s.push(lazyHeapEntry{key: s.key[i], idx: i, gen: s.gen[i]})
		}
	}
}

// applyWinner opens w (if new), connects its chosen prefix and switches
// connected clients that save — the exact sweep's phase 2, instruction
// for instruction — then feeds the resulting invalidation events to the
// neighbourhood fan-out and re-arms w's heap entry.
//
//esharing:deterministic
func (s *lazySolver) applyWinner(iter int32, w int32) {
	p := s.p
	i := int(w)
	if !s.opened[i] {
		s.opened[i] = true
		s.openOrder = append(s.openOrder, i)
	}
	openCostPre := s.openCost[i]
	s.openCost[i] = 0

	// Re-derive the winner's sorted order — ascending cost, ties by
	// client index, via the stable pair radix sort — and connect the
	// chosen prefix, recording one invalidation event per connected
	// client.
	sc := &s.scratch[0]
	sc.idx = sc.idx[:0]
	sc.cost = sc.cost[:0]
	for _, j := range s.unconn {
		sc.idx = append(sc.idx, j)
		sc.cost = append(sc.cost, p.Walk(i, j))
	}
	s.radix[0].sortPairsAsc(sc)
	wLoc := p.Demands[i].Loc
	s.events = s.events[:0]
	for k := 0; k < s.eval[i].prefix; k++ {
		j := sc.idx[k]
		s.assign[j] = i
		s.curCost[j] = sc.cost[k]
		s.remaining--
		r2 := wLoc.Dist2(p.Demands[j].Loc)
		if r2 > 0 {
			s.events = append(s.events, connectEvent{
				j:    int32(j),
				cost: sc.cost[k],
				r2:   r2 + r2*lazyRadiusSlack,
			})
		}
	}
	// Switch connected clients that save. curCost only decreases here,
	// which can only shrink other candidates' savings — a ratio
	// increase, needing no invalidation.
	for j := 0; j < len(s.assign); j++ {
		if s.assign[j] == unassigned || s.assign[j] == i {
			continue
		}
		if c := p.Walk(i, j); c < s.curCost[j] {
			s.assign[j] = i
			s.curCost[j] = c
		}
	}

	s.invalidateNeighbourhoods(iter)

	// Re-arm the winner's queue entry. The zeroed opening cost is a base
	// decrease like any savings gain — credit it and re-derive the bound
	// from the winner's cached curve. (Its own new clients contribute
	// zero savings and only ever raise the ratio otherwise.)
	if openCostPre > 0 {
		s.gainSince[w] += openCostPre
		s.key[w] = s.boundKey(w)
		s.gen[w]++
	}
	s.push(lazyHeapEntry{key: s.key[w], idx: w, gen: s.gen[w]})
}

// invalidateNeighbourhoods turns this iteration's connection events into
// key decrements. Phase 1 fans the kd-tree range queries and gain
// computations out over contiguous event chunks (each event is
// self-contained, so chunking cannot change any gain); phase 2 folds the
// per-worker hit lists in ascending event order, accumulating one total
// gain per candidate; phase 3 lowers each invalidated candidate's key
// once and pushes its fresh generation.
//
//esharing:deterministic
func (s *lazySolver) invalidateNeighbourhoods(iter int32) {
	if len(s.events) == 0 {
		return
	}
	// Reset every worker buffer up front: ForChunks clamps the worker
	// count to the event count, and a worker that owns no chunk this
	// iteration must not contribute last iteration's hits to the fold.
	for w := range s.evOut {
		s.evOut[w].hits = s.evOut[w].hits[:0]
		s.evOut[w].gains = s.evOut[w].gains[:0]
	}
	parallel.ForChunks(s.workers, len(s.events), s.eventBody)
	// Fold in ascending event order (= ascending worker chunk order):
	// every candidate's total gain is a fixed-order sum, independent of
	// the worker count only in value distribution, and in any case the
	// solution is invariant to key bits by admissibility.
	s.dirty = s.dirty[:0]
	for w := 0; w < s.workers; w++ {
		out := &s.evOut[w]
		for k, i := range out.hits {
			gain := out.gains[k]
			if !(gain > 0) {
				// Radius slack over-covers; only strictly positive
				// savings invalidate.
				continue
			}
			if s.seenIter[i] != iter {
				s.seenIter[i] = iter
				s.gainAcc[i] = 0
				s.dirty = append(s.dirty, i)
			}
			s.gainAcc[i] += gain
		}
	}
	for _, i := range s.dirty {
		s.gainSince[i] += s.gainAcc[i]
		s.key[i] = s.boundKey(i)
		s.gen[i]++
		s.push(lazyHeapEntry{key: s.key[i], idx: i, gen: s.gen[i]})
	}
}

// popLive pops entries until one matches its candidate's current
// generation, discarding the dead.
//
//esharing:deterministic
func (s *lazySolver) popLive() (lazyHeapEntry, bool) {
	for len(s.heap) > 0 {
		e := s.pop()
		if e.gen == s.gen[e.idx] {
			return e, true
		}
	}
	return lazyHeapEntry{}, false
}

// entryLess orders the queue by (key, candidate index), strict
// comparisons only: the heap minimum is the lexicographic minimum, so
// equal keys resolve to the lowest candidate index — the exact sweep's
// first-strict-minimum tie-break.
func entryLess(a, b lazyHeapEntry) bool {
	if a.key < b.key {
		return true
	}
	if b.key < a.key {
		return false
	}
	return a.idx < b.idx
}

//esharing:deterministic
func (s *lazySolver) push(e lazyHeapEntry) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

//esharing:deterministic
func (s *lazySolver) pop() lazyHeapEntry {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	if last > 0 {
		s.siftDown(0)
	}
	return top
}

//esharing:deterministic
func (s *lazySolver) siftDown(i int) {
	n := len(s.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		m := left
		if right := left + 1; right < n && entryLess(s.heap[right], s.heap[left]) {
			m = right
		}
		if !entryLess(s.heap[m], s.heap[i]) {
			return
		}
		s.heap[i], s.heap[m] = s.heap[m], s.heap[i]
		i = m
	}
}
