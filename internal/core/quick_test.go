package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/stats"
)

// Property-based tests (testing/quick) on the core invariants.

// boundedPoints maps arbitrary uint16 pairs into a 2 km field, giving
// quick a well-conditioned point generator.
func boundedPoints(raw []uint32) []geo.Point {
	pts := make([]geo.Point, 0, len(raw))
	for _, r := range raw {
		pts = append(pts, geo.Pt(float64(r%2000), float64((r>>16)%2000)))
	}
	return pts
}

func TestQuickPenaltyInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	property := func(rawType uint8, rawTol uint16, rawC uint32) bool {
		typ := PenaltyType(int(rawType)%4 + 1)
		tol := float64(rawTol%2000) + 1
		c := float64(rawC % 10000)
		p, err := NewPenalty(typ, tol)
		if err != nil {
			return false
		}
		v := p.Eval(c)
		if v < 0 || v > 1 || math.IsNaN(v) {
			return false
		}
		// Monotone non-increasing: g(c) >= g(c + delta).
		return v >= p.Eval(c+137)-1e-12
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickOfflineFeasibleAndBounded(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	property := func(raw []uint32, rawOpen uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 25 {
			raw = raw[:25]
		}
		pts := boundedPoints(raw)
		opening := float64(rawOpen%5000) + 100
		problem, err := UniformProblem(pts, opening)
		if err != nil {
			return false
		}
		sol, err := SolveOffline(problem)
		if err != nil {
			return false
		}
		cost, err := problem.Evaluate(sol)
		if err != nil {
			return false // infeasible solution
		}
		// Two trivial feasible solutions upper-bound OPT: a single
		// station at point 0, and a station everywhere. The greedy is a
		// 1.61-approximation of OPT, hence bounded by 1.61x either.
		single := opening
		for j := range pts {
			single += pts[0].Dist(pts[j])
		}
		everywhere := opening * float64(len(pts))
		bound := math.Min(single, everywhere)
		return cost.Total() <= 1.61*bound+1e-6
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMeyersonDecisionsConsistent(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	property := func(raw []uint32, seed uint64) bool {
		pts := boundedPoints(raw)
		if len(pts) == 0 {
			return true
		}
		m, err := NewMeyerson(3000, seed)
		if err != nil {
			return false
		}
		for _, p := range pts {
			d, err := m.Place(p)
			if err != nil {
				return false
			}
			if d.Opened && d.Walk != 0 {
				return false
			}
			if !d.Opened && d.Walk < 0 {
				return false
			}
			// The reported station must exist in the placer's set.
			stations := m.Stations()
			if d.StationIndex < 0 || d.StationIndex >= len(stations) {
				return false
			}
			if stations[d.StationIndex] != d.Station {
				return false
			}
		}
		return len(m.Stations()) <= len(pts)
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickESharingWalkNeverExceedsNearestAtDecision(t *testing.T) {
	// For assigned (non-opened) requests, the reported walk must equal
	// the distance to the reported station.
	cfg := &quick.Config{MaxCount: 50}
	property := func(raw []uint32, seed uint64) bool {
		pts := boundedPoints(raw)
		if len(pts) == 0 {
			return true
		}
		esCfg := DefaultESharingConfig()
		esCfg.TestEvery = 0
		esCfg.Seed = seed
		es, err := NewESharing([]geo.Point{geo.Pt(1000, 1000)}, 5000, nil, esCfg)
		if err != nil {
			return false
		}
		for _, p := range pts {
			d, err := es.Place(p)
			if err != nil {
				return false
			}
			if !d.Opened && math.Abs(d.Walk-p.Dist(d.Station)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRunStreamCostMatchesDecisions(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	property := func(raw []uint32, seed uint64) bool {
		pts := boundedPoints(raw)
		if len(pts) == 0 {
			return true
		}
		m, err := NewOnlineKMeans(3, seed)
		if err != nil {
			return false
		}
		cost, decisions, err := RunStream(m, pts, 4000)
		if err != nil {
			return false
		}
		var walk float64
		opened := 0
		for _, d := range decisions {
			walk += d.Walk
			if d.Opened {
				opened++
			}
		}
		return math.Abs(cost.Walking-walk) < 1e-9 &&
			math.Abs(cost.Opening-float64(opened)*4000) < 1e-9
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickPolyPenaltyRange(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	property := func(raw []uint32, degRaw uint8) bool {
		if len(raw) < 15 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		distances := make([]float64, len(raw))
		for i, r := range raw {
			distances[i] = float64(r % 100000)
		}
		degree := int(degRaw)%6 + 1
		p, err := FitPolyPenalty(distances, degree)
		if err != nil {
			// Degenerate samples (e.g. all zero) are allowed to fail.
			return true
		}
		for c := 0.0; c <= p.Scale()*1.2; c += p.Scale() / 23 {
			v := p.Eval(c)
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickOfflineNeverBeatsBruteForceOnTiny(t *testing.T) {
	// Re-checked with quick-generated instances (complements the seeded
	// approximation-factor test).
	cfg := &quick.Config{MaxCount: 25}
	property := func(raw []uint32, rawOpen uint16) bool {
		if len(raw) < 3 {
			return true
		}
		if len(raw) > 7 {
			raw = raw[:7]
		}
		pts := boundedPoints(raw)
		opening := float64(rawOpen%3000) + 50
		problem, err := UniformProblem(pts, opening)
		if err != nil {
			return false
		}
		sol, err := SolveOffline(problem)
		if err != nil {
			return false
		}
		cost, err := problem.Evaluate(sol)
		if err != nil {
			return false
		}
		opt := bruteForceOptimum(problem)
		return cost.Total() >= opt-1e-6 && cost.Total() <= 1.61*opt+1e-6
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// Exercise stats integration: similarity of identical uniform batches is
// high for any seed.
func TestQuickSelfSimilarity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	property := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		dist := stats.UniformDist{Box: geo.Square(geo.Pt(0, 0), 800)}
		a := stats.SamplePoints(rng, dist, 80)
		b := stats.SamplePoints(rng, dist, 80)
		d, err := stats.Peacock2DFast(a, b)
		if err != nil {
			return false
		}
		return stats.Similarity(d) > 55 // same distribution: well above disjoint
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
