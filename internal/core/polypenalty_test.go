package core

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/stats"
)

func TestFitPolyPenaltyValidation(t *testing.T) {
	good := []float64{10, 20, 30, 40, 50, 60}
	tests := []struct {
		name      string
		distances []float64
		degree    int
	}{
		{"degree too low", good, 0},
		{"degree too high", good, 13},
		{"too few points", []float64{1, 2}, 3},
		{"all invalid", []float64{-1, math.NaN(), math.Inf(1)}, 1},
		{"all zero", []float64{0, 0, 0, 0}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FitPolyPenalty(tt.distances, tt.degree); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestPolyPenaltyBasicShape(t *testing.T) {
	rng := stats.NewRNG(3)
	distances := make([]float64, 400)
	for i := range distances {
		distances[i] = math.Abs(rng.NormFloat64()) * 150
	}
	p, err := FitPolyPenalty(distances, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degree() != 4 {
		t.Errorf("degree=%d", p.Degree())
	}
	if got := p.Eval(0); got < 0.9 {
		t.Errorf("g(0)=%v, want ~1", got)
	}
	if got := p.Eval(-5); got != p.Eval(0) {
		t.Errorf("negative c should clamp to 0")
	}
	if got := p.Eval(p.Scale() + 1); got != 0 {
		t.Errorf("beyond scale g=%v, want 0", got)
	}
	for c := 0.0; c < p.Scale(); c += p.Scale() / 50 {
		v := p.Eval(c)
		if v < 0 || v > 1 {
			t.Fatalf("g(%v)=%v outside [0,1]", c, v)
		}
	}
}

func TestPolyPenaltyApproximatesSurvival(t *testing.T) {
	// For exponential distances the survival function is exp(-c/mean);
	// the fitted polynomial must track it closely over the bulk.
	rng := stats.NewRNG(7)
	const mean = 100.0
	distances := make([]float64, 2000)
	for i := range distances {
		distances[i] = stats.Exponential(rng, 1/mean)
	}
	p, err := FitPolyPenalty(distances, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{20, 50, 100, 200, 300} {
		want := math.Exp(-c / mean)
		got := p.Eval(c)
		if math.Abs(got-want) > 0.08 {
			t.Errorf("g(%v)=%v, survival=%v", c, got, want)
		}
	}
}

func TestPolyPenaltyAdaptsToDistribution(t *testing.T) {
	// A tight distribution must produce a faster-decaying penalty than a
	// spread one — the whole point of the extension.
	rng := stats.NewRNG(9)
	tight := make([]float64, 500)
	wide := make([]float64, 500)
	for i := range tight {
		tight[i] = math.Abs(rng.NormFloat64()) * 50
		wide[i] = math.Abs(rng.NormFloat64()) * 400
	}
	pTight, err := FitPolyPenalty(tight, 5)
	if err != nil {
		t.Fatal(err)
	}
	pWide, err := FitPolyPenalty(wide, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{100, 200, 300} {
		if pTight.Eval(c) >= pWide.Eval(c)+0.05 {
			t.Errorf("at c=%v tight penalty %v should decay faster than wide %v",
				c, pTight.Eval(c), pWide.Eval(c))
		}
	}
}

func TestESharingCustomPenalty(t *testing.T) {
	cfg := DefaultESharingConfig()
	cfg.TestEvery = 0
	cfg.Beta = 1e12
	e := newTestESharing(t, []geo.Point{geo.Pt(0, 0)}, nil, cfg)
	// A custom penalty that forbids all openings.
	e.SetCustomPenalty(func(float64) float64 { return 0 })
	for i := 0; i < 100; i++ {
		d, err := e.Place(geo.Pt(4000, 4000))
		if err != nil {
			t.Fatal(err)
		}
		if d.Opened {
			t.Fatal("zero custom penalty must block all openings")
		}
	}
	// Restoring nil returns to the built-in penalty.
	e.SetCustomPenalty(nil)
	if e.Penalty().Type != PenaltyTypeII {
		t.Error("built-in penalty lost")
	}
}

func TestESharingCustomPenaltySuspendsKSSwitch(t *testing.T) {
	rng := stats.NewRNG(11)
	hist := stats.SamplePoints(rng, stats.NormalDist{Center: geo.Pt(0, 0), StdDev: 30}, 100)
	cfg := DefaultESharingConfig()
	cfg.TestEvery = 20
	cfg.WindowSize = 20
	e := newTestESharing(t, []geo.Point{geo.Pt(0, 0)}, hist, cfg)
	e.SetCustomPenalty(func(float64) float64 { return 0.5 })
	// Divergent traffic that would normally trigger a switch.
	for i := 0; i < 60; i++ {
		if _, err := e.Place(geo.Pt(float64(i)*100, 5000)); err != nil {
			t.Fatal(err)
		}
	}
	if e.Penalty().Type != PenaltyTypeII {
		t.Errorf("KS switching ran despite custom penalty: %v", e.Penalty().Type)
	}
}

func TestPolyPenaltyDrivesPlacement(t *testing.T) {
	// End to end: fit a polynomial on historical distances and run the
	// placer with it; openings must stay inside the observed range.
	rng := stats.NewRNG(13)
	landmark := geo.Pt(0, 0)
	histDist := make([]float64, 300)
	for i := range histDist {
		histDist[i] = math.Abs(rng.NormFloat64()) * 120
	}
	poly, err := FitPolyPenalty(histDist, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultESharingConfig()
	cfg.TestEvery = 0
	e := newTestESharing(t, []geo.Point{landmark}, nil, cfg)
	e.SetCustomPenalty(poly.Eval)
	// Far requests (beyond the fitted scale) must never open.
	far := poly.Scale() * 2
	for i := 0; i < 50; i++ {
		d, err := e.Place(geo.Pt(far, 0))
		if err != nil {
			t.Fatal(err)
		}
		if d.Opened {
			t.Fatal("opening beyond the fitted distribution")
		}
	}
}
