// Package core implements the Parking Location Placement (PLP) problem of
// E-Sharing Section III: the cost model of Eq. 1, the offline 1.61-factor
// greedy (Algorithm 1), Meyerson's online facility location and the online
// k-means baselines, the deviation-penalty functions (Eqs. 6–8), and the
// paper's online placement algorithm with deviation penalty (Algorithm 2).
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geo"
)

// Demand is an aggregated arrival point: Arrivals users end their trips at
// Loc (the centroid of a grid). User dissatisfaction for assigning it to a
// parking p is Arrivals · dist(Loc, p) (Definition 1).
type Demand struct {
	Loc      geo.Point `json:"loc"`
	Arrivals float64   `json:"arrivals"`
}

// Problem is an offline PLP instance: demands double as the candidate
// parking set (the paper selects parking among the grid centroids), and
// Opening[i] is the space-occupation cost f_i of establishing a parking at
// candidate i (Definition 2).
type Problem struct {
	Demands []Demand
	Opening []float64
}

// Errors shared by the solvers.
var (
	// ErrEmptyProblem is returned for instances with no demands.
	ErrEmptyProblem = errors.New("core: empty problem")
	// ErrNoStations is returned when an operation requires at least one
	// established parking location.
	ErrNoStations = errors.New("core: no stations")
)

// NewProblem validates and builds an instance. Arrivals must be positive
// and opening costs non-negative.
func NewProblem(demands []Demand, opening []float64) (*Problem, error) {
	if len(demands) == 0 {
		return nil, ErrEmptyProblem
	}
	if len(demands) != len(opening) {
		return nil, fmt.Errorf("core: %d demands but %d opening costs", len(demands), len(opening))
	}
	for i, d := range demands {
		if d.Arrivals <= 0 {
			return nil, fmt.Errorf("core: demand %d has non-positive arrivals %v", i, d.Arrivals)
		}
		if !d.Loc.IsFinite() {
			return nil, fmt.Errorf("core: demand %d has non-finite location", i)
		}
	}
	for i, f := range opening {
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("core: opening cost %d is %v", i, f)
		}
	}
	return &Problem{
		Demands: append([]Demand(nil), demands...),
		Opening: append([]float64(nil), opening...),
	}, nil
}

// UniformProblem builds an instance where every point has one arrival and
// the same opening cost — the setting of the Fig. 4/6 examples.
func UniformProblem(points []geo.Point, openingCost float64) (*Problem, error) {
	demands := make([]Demand, len(points))
	opening := make([]float64, len(points))
	for i, p := range points {
		demands[i] = Demand{Loc: p, Arrivals: 1}
		opening[i] = openingCost
	}
	return NewProblem(demands, opening)
}

// Walk returns the dissatisfaction cost c_ij of assigning demand j to
// candidate i.
func (p *Problem) Walk(i, j int) float64 {
	return p.Demands[j].Arrivals * p.Demands[i].Loc.Dist(p.Demands[j].Loc)
}

// Solution is an offline assignment: Open lists the chosen candidate
// indices and Assign maps every demand to one of them (by index into
// p.Demands, which must be an opened candidate).
type Solution struct {
	Open   []int
	Assign []int
}

// Cost breaks a solution's objective into the Eq. 1 components.
type Cost struct {
	Walking float64 `json:"walking"`
	Opening float64 `json:"opening"`
}

// Total returns the Eq. 1 objective.
func (c Cost) Total() float64 { return c.Walking + c.Opening }

// String implements fmt.Stringer.
func (c Cost) String() string {
	return fmt.Sprintf("walking=%.1f opening=%.1f total=%.1f", c.Walking, c.Opening, c.Total())
}

// Evaluate computes the Eq. 1 cost of sol on p, validating feasibility:
// every demand must be assigned to an opened candidate.
func (p *Problem) Evaluate(sol *Solution) (Cost, error) {
	if len(sol.Assign) != len(p.Demands) {
		return Cost{}, fmt.Errorf("core: %d assignments for %d demands", len(sol.Assign), len(p.Demands))
	}
	openSet := make(map[int]bool, len(sol.Open))
	var cost Cost
	for _, i := range sol.Open {
		if i < 0 || i >= len(p.Demands) {
			return Cost{}, fmt.Errorf("core: opened candidate %d out of range", i)
		}
		if openSet[i] {
			return Cost{}, fmt.Errorf("core: candidate %d opened twice", i)
		}
		openSet[i] = true
		cost.Opening += p.Opening[i]
	}
	for j, i := range sol.Assign {
		if !openSet[i] {
			return Cost{}, fmt.Errorf("core: demand %d assigned to unopened candidate %d", j, i)
		}
		cost.Walking += p.Walk(i, j)
	}
	return cost, nil
}

// Stations returns the planar locations of the opened candidates.
func (p *Problem) Stations(sol *Solution) []geo.Point {
	out := make([]geo.Point, len(sol.Open))
	for k, i := range sol.Open {
		out[k] = p.Demands[i].Loc
	}
	return out
}

// ReassignNearest rewrites sol.Assign so every demand uses its nearest
// opened candidate; it never increases the objective.
func (p *Problem) ReassignNearest(sol *Solution) error {
	if len(sol.Open) == 0 {
		return ErrNoStations
	}
	for j := range p.Demands {
		best, bestCost := -1, math.Inf(1)
		for _, i := range sol.Open {
			if c := p.Walk(i, j); c < bestCost {
				best, bestCost = i, c
			}
		}
		sol.Assign[j] = best
	}
	return nil
}
