package core

import (
	"fmt"

	"repro/internal/geo"
)

// NonFiniteError reports a placement request whose destination carries
// a NaN or infinite coordinate. It is a typed error (rather than an
// inline fmt.Errorf) because the Place implementations are hot-path
// code: constructing it is a single small allocation, and the message
// is only formatted if something actually reads Error().
type NonFiniteError struct {
	Dest geo.Point
}

func (e *NonFiniteError) Error() string {
	return fmt.Sprintf("core: non-finite destination %v", e.Dest)
}
