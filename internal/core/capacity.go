package core

import (
	"fmt"
	"math"
)

// AssignCapacitated assigns every demand to one of the open stations
// subject to per-station capacity (maximum arrivals a station's racks can
// absorb per period) — the capacitated extension of the PLP assignment.
// The paper assumes balanced reserves keep stations uncongested; this
// models the constraint explicitly for deployments that cannot.
//
// Demands are atomic (a grid cell's arrivals all park together, matching
// the x_ij ∈ {0,1} constraint of Eq. 4), so the problem is a generalised
// assignment; the solver uses the max-regret greedy: repeatedly commit
// the unassigned demand whose gap between its best and second-best
// feasible station is largest.
//
// capacity[k] bounds the arrivals assigned to open[k]. It errors when the
// total capacity cannot cover the demands or an atomic demand exceeds
// every station's capacity.
func AssignCapacitated(p *Problem, open []int, capacity []float64) (*Solution, Cost, error) {
	if len(open) == 0 {
		return nil, Cost{}, ErrNoStations
	}
	if len(capacity) != len(open) {
		return nil, Cost{}, fmt.Errorf("core: %d capacities for %d stations", len(capacity), len(open))
	}
	var totalCap, totalDemand float64
	for k, c := range capacity {
		if c < 0 || math.IsNaN(c) {
			return nil, Cost{}, fmt.Errorf("core: capacity %d is %v", k, c)
		}
		totalCap += c
	}
	for _, d := range p.Demands {
		totalDemand += d.Arrivals
	}
	if totalCap < totalDemand {
		return nil, Cost{}, fmt.Errorf("core: total capacity %.1f < demand %.1f", totalCap, totalDemand)
	}

	n := len(p.Demands)
	remaining := append([]float64(nil), capacity...)
	assign := make([]int, n)
	done := make([]bool, n)
	for i := range assign {
		assign[i] = -1
	}

	for assigned := 0; assigned < n; assigned++ {
		// Pick the unassigned demand with maximum regret.
		bestJ := -1
		var bestRegret, bestCost float64
		bestK := -1
		for j := 0; j < n; j++ {
			if done[j] {
				continue
			}
			k1, c1, c2 := bestTwoFeasible(p, open, remaining, j)
			if k1 < 0 {
				return nil, Cost{}, fmt.Errorf(
					"core: demand %d (%.1f arrivals) fits no remaining capacity", j, p.Demands[j].Arrivals)
			}
			regret := c2 - c1 // +Inf when only one feasible station remains
			// Exact tie on the regret deliberately falls through to the
			// cheaper assignment, keeping the heuristic deterministic.
			if bestJ < 0 || regret > bestRegret || (regret == bestRegret && c1 < bestCost) { //esharing:allow floateq -- exact tie falls to the cheaper assignment
				bestJ, bestRegret, bestCost, bestK = j, regret, c1, k1
			}
		}
		assign[bestJ] = open[bestK]
		remaining[bestK] -= p.Demands[bestJ].Arrivals
		done[bestJ] = true
	}

	sol := &Solution{Open: append([]int(nil), open...), Assign: assign}
	cost, err := p.Evaluate(sol)
	if err != nil {
		return nil, Cost{}, err
	}
	return sol, cost, nil
}

// bestTwoFeasible returns the index (into open) and walking cost of the
// cheapest feasible station for demand j, plus the second-cheapest cost
// (+Inf when only one station is feasible). k1 is -1 when none fits.
func bestTwoFeasible(p *Problem, open []int, remaining []float64, j int) (k1 int, c1, c2 float64) {
	k1 = -1
	c1, c2 = math.Inf(1), math.Inf(1)
	need := p.Demands[j].Arrivals
	for k, i := range open {
		if remaining[k] < need {
			continue
		}
		c := p.Walk(i, j)
		switch {
		case c < c1:
			c2 = c1
			k1, c1 = k, c
		case c < c2:
			c2 = c
		}
	}
	return k1, c1, c2
}

// StationLoads sums assigned arrivals per open station, keyed by
// candidate index.
func StationLoads(p *Problem, sol *Solution) map[int]float64 {
	out := make(map[int]float64, len(sol.Open))
	for j, i := range sol.Assign {
		out[i] += p.Demands[j].Arrivals
	}
	return out
}
