// Package incentive implements E-Sharing's tier two (Section IV): the
// charging cost model (Eq. 10), the aggregation saving estimate (Eq. 11),
// the per-station saving bound (Eq. 12), the user acceptance model
// (Eq. 13), and the online incentive mechanism (Algorithm 3) that pays
// users to ride low-energy bikes to aggregation sites.
package incentive

import (
	"fmt"
)

// CostParams are the operator's unit costs, in dollars.
type CostParams struct {
	// ServicePerStop is q: fixed cost per station visit (parking tickets,
	// time).
	ServicePerStop float64 `json:"servicePerStop"`
	// DelayUnit is d: the monetised delay added to each later stop in the
	// service sequence.
	DelayUnit float64 `json:"delayUnit"`
	// ChargePerBike is b: cost to refill or replace one battery.
	ChargePerBike float64 `json:"chargePerBike"`
}

// DefaultCostParams mirrors the evaluation: unit delay cost $5 and unit
// energy cost $2 per charge.
func DefaultCostParams() CostParams {
	return CostParams{ServicePerStop: 5, DelayUnit: 5, ChargePerBike: 2}
}

// Validate rejects negative unit costs.
func (p CostParams) Validate() error {
	if p.ServicePerStop < 0 || p.DelayUnit < 0 || p.ChargePerBike < 0 {
		return fmt.Errorf("incentive: negative cost params %+v", p)
	}
	return nil
}

// TotalChargingCost computes Eq. 10 for n stations holding l total bikes:
//
//	C = n·q + l·b + (n²−n)/2·d
//
// stationBikes[i] is the number of low-energy bikes serviced at stop i.
func TotalChargingCost(p CostParams, stationBikes []int) float64 {
	n := float64(len(stationBikes))
	var l float64
	for _, c := range stationBikes {
		l += float64(c)
	}
	return n*p.ServicePerStop + l*p.ChargePerBike + (n*n-n)/2*p.DelayUnit
}

// SavingRatio computes Eq. 11: the fraction of service+delay cost saved by
// reducing the visited stations from n to m (charging cost l·b is paid
// either way):
//
//	(C−C*)/C = 1 − (m·q + (m²−m)·d/2) / (n·q + (n²−n)·d/2)
//
// It errors when m or n is non-positive or m > n.
func SavingRatio(p CostParams, m, n int) (float64, error) {
	if n <= 0 || m <= 0 {
		return 0, fmt.Errorf("incentive: m=%d, n=%d must be positive", m, n)
	}
	if m > n {
		return 0, fmt.Errorf("incentive: m=%d exceeds n=%d", m, n)
	}
	fm, fn := float64(m), float64(n)
	den := fn*p.ServicePerStop + (fn*fn-fn)/2*p.DelayUnit
	// Division guard: only an exactly-zero denominator (both cost
	// parameters zero) is undefined; near-zero values divide fine.
	if den == 0 { //esharing:allow floateq -- exact-zero sentinel; near-zero divides fine
		return 0, nil
	}
	num := fm*p.ServicePerStop + (fm*fm-fm)/2*p.DelayUnit
	return 1 - num/den, nil
}

// StationSavingBound computes Eq. 12: the cost saved when station i (the
// t-th stop, 1-based) is emptied by relocation so the operator skips it:
//
//	Δ_i = (b·|L_i| + q + t·d) − b·|L_i| = q + t·d
func StationSavingBound(p CostParams, stopPosition int) float64 {
	if stopPosition < 1 {
		stopPosition = 1
	}
	return p.ServicePerStop + float64(stopPosition)*p.DelayUnit
}

// OfferValue computes the uniform incentive of Section IV-C:
//
//	v = α·(q + t·d)/|L_i|
//
// splitting an α fraction of the station's saving bound across its
// low-energy bikes. It errors for alpha outside [0,1] or an empty L_i.
func OfferValue(p CostParams, alpha float64, stopPosition, lowBikes int) (float64, error) {
	if alpha < 0 || alpha > 1 {
		return 0, fmt.Errorf("incentive: alpha %v outside [0,1]", alpha)
	}
	if lowBikes < 1 {
		return 0, fmt.Errorf("incentive: station has %d low bikes", lowBikes)
	}
	return alpha * StationSavingBound(p, stopPosition) / float64(lowBikes), nil
}

// User is the acceptance model of Eq. 13: an offer is taken iff the extra
// walking distance stays under MaxExtraWalk (c_u) and the reward reaches
// MinReward (v_u*).
type User struct {
	// MaxExtraWalk is c_u in metres.
	MaxExtraWalk float64 `json:"maxExtraWalk"`
	// MinReward is v_u* in dollars.
	MinReward float64 `json:"minReward"`
}

// Accepts implements Eq. 13.
func (u User) Accepts(extraWalk, offer float64) bool {
	return extraWalk < u.MaxExtraWalk && offer >= u.MinReward
}
