package incentive

import (
	"math"
	"testing"
)

func TestTotalChargingCost(t *testing.T) {
	p := CostParams{ServicePerStop: 5, DelayUnit: 2, ChargePerBike: 3}
	tests := []struct {
		name  string
		bikes []int
		want  float64
	}{
		{"empty", nil, 0},
		{"one station", []int{4}, 5 + 12 + 0},
		// n=3, l=6: 3*5 + 6*3 + (9-3)/2*2 = 15+18+6 = 39
		{"three stations", []int{1, 2, 3}, 39},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TotalChargingCost(p, tt.bikes); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSavingRatio(t *testing.T) {
	p := DefaultCostParams() // q=5, d=5
	tests := []struct {
		name    string
		m, n    int
		want    float64
		wantErr bool
	}{
		{"no reduction", 10, 10, 0, false},
		{"m zero", 0, 10, 0, true},
		{"n zero", 1, 0, 0, true},
		{"m exceeds n", 5, 3, 0, true},
		// m=1,n=2: 1 - (5+0)/(10+5) = 1 - 1/3 = 2/3
		{"halve stations", 1, 2, 2.0 / 3.0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := SavingRatio(p, tt.m, tt.n)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tt.wantErr)
			}
			if err == nil && math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSavingRatioQuadraticGrowth(t *testing.T) {
	// Fig. 7(a): for fixed n, saving grows (super-linearly) as m shrinks;
	// m/n = 0.65 yields roughly 50% when delay dominates.
	p := CostParams{ServicePerStop: 1, DelayUnit: 10, ChargePerBike: 2}
	n := 40
	prev := -1.0
	for m := n; m >= 1; m-- {
		s, err := SavingRatio(p, m, n)
		if err != nil {
			t.Fatal(err)
		}
		if s < prev {
			t.Fatalf("saving not monotone as m falls: m=%d s=%v prev=%v", m, s, prev)
		}
		prev = s
	}
	mid, err := SavingRatio(p, 26, 40) // m/n = 0.65
	if err != nil {
		t.Fatal(err)
	}
	if mid < 0.4 || mid > 0.7 {
		t.Errorf("m/n=0.65 saving %v, paper reports ~50%%", mid)
	}
}

func TestSavingRatioZeroCosts(t *testing.T) {
	got, err := SavingRatio(CostParams{}, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("zero costs should save 0, got %v", got)
	}
}

func TestStationSavingBound(t *testing.T) {
	p := CostParams{ServicePerStop: 5, DelayUnit: 2}
	if got := StationSavingBound(p, 3); got != 11 {
		t.Errorf("got %v, want 11 (q + 3d)", got)
	}
	if got := StationSavingBound(p, 0); got != 7 {
		t.Errorf("stop < 1 should clamp to 1, got %v", got)
	}
}

func TestOfferValue(t *testing.T) {
	p := CostParams{ServicePerStop: 5, DelayUnit: 5}
	got, err := OfferValue(p, 0.4, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.4 * 10 / 4; math.Abs(got-want) > 1e-12 {
		t.Errorf("got %v, want %v", got, want)
	}
	if _, err := OfferValue(p, -0.1, 1, 1); err == nil {
		t.Error("negative alpha should error")
	}
	if _, err := OfferValue(p, 1.1, 1, 1); err == nil {
		t.Error("alpha > 1 should error")
	}
	if _, err := OfferValue(p, 0.5, 1, 0); err == nil {
		t.Error("zero low bikes should error")
	}
}

func TestOfferBudgetBalance(t *testing.T) {
	// The total paid to empty a station (|L_i| acceptances at v each)
	// never exceeds the saving bound Δ_i for alpha <= 1.
	p := DefaultCostParams()
	for _, alpha := range []float64{0.2, 0.4, 0.7, 1.0} {
		for _, l := range []int{1, 3, 10} {
			for _, stop := range []int{1, 4, 9} {
				v, err := OfferValue(p, alpha, stop, l)
				if err != nil {
					t.Fatal(err)
				}
				total := v * float64(l)
				bound := StationSavingBound(p, stop)
				if total > bound+1e-9 {
					t.Errorf("alpha=%v l=%d stop=%d: payout %v exceeds bound %v",
						alpha, l, stop, total, bound)
				}
			}
		}
	}
}

func TestUserAccepts(t *testing.T) {
	u := User{MaxExtraWalk: 300, MinReward: 1.5}
	tests := []struct {
		name  string
		walk  float64
		offer float64
		want  bool
	}{
		{"both satisfied", 200, 2, true},
		{"walk too far", 300, 2, false}, // strict inequality on walk
		{"reward too small", 100, 1.49, false},
		{"reward exactly met", 100, 1.5, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := u.Accepts(tt.walk, tt.offer); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCostParamsValidate(t *testing.T) {
	if err := (CostParams{ServicePerStop: -1}).Validate(); err == nil {
		t.Error("negative q should error")
	}
	if err := DefaultCostParams().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
}
