package incentive

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/geo"
)

// mechFixture builds a 3-station line: station 0 (source, two low bikes),
// station 1 (sink, one low bike), station 2 (far, empty).
func mechFixture(t *testing.T, cfg MechanismConfig) (*Mechanism, *energy.Fleet) {
	t.Helper()
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	stations := []geo.Point{geo.Pt(0, 0), geo.Pt(400, 0), geo.Pt(5000, 0)}
	bikes := []energy.Bike{
		{ID: 1, Loc: geo.Pt(0, 0), Level: 0.15},
		{ID: 2, Loc: geo.Pt(0, 0), Level: 0.12},
		{ID: 3, Loc: geo.Pt(400, 0), Level: 0.1},
	}
	for _, b := range bikes {
		if err := fleet.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	low := map[int][]int64{0: {1, 2}, 1: {3}}
	m, err := NewMechanism(cfg, stations, fleet, low, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	return m, fleet
}

func eagerUser() User { return User{MaxExtraWalk: 1e9, MinReward: 0} }

func TestNewMechanismValidation(t *testing.T) {
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	stations := []geo.Point{geo.Pt(0, 0), geo.Pt(100, 0)}
	valid := DefaultMechanismConfig(0.4)
	tests := []struct {
		name     string
		cfg      MechanismConfig
		stations []geo.Point
		fleet    *energy.Fleet
		low      map[int][]int64
		sinks    []int
	}{
		{"bad alpha", MechanismConfig{Alpha: 2, Params: DefaultCostParams()}, stations, fleet, nil, []int{0}},
		{"negative slack", MechanismConfig{Alpha: 0.4, Params: DefaultCostParams(), MileageSlack: -1}, stations, fleet, nil, []int{0}},
		{"negative skip", MechanismConfig{Alpha: 0.4, Params: DefaultCostParams(), SkipThreshold: -1}, stations, fleet, nil, []int{0}},
		{"bad params", MechanismConfig{Alpha: 0.4, Params: CostParams{ServicePerStop: -1}}, stations, fleet, nil, []int{0}},
		{"no stations", valid, nil, fleet, nil, []int{0}},
		{"nil fleet", valid, stations, nil, nil, []int{0}},
		{"low out of range", valid, stations, fleet, map[int][]int64{7: {1}}, []int{0}},
		{"sink out of range", valid, stations, fleet, nil, []int{9}},
		{"no sinks", valid, stations, fleet, nil, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewMechanism(tt.cfg, tt.stations, tt.fleet, tt.low, tt.sinks); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestHandlePickupRelocates(t *testing.T) {
	m, fleet := mechFixture(t, DefaultMechanismConfig(1.0))
	// User departs station 0 toward a destination near the sink.
	offer, made, err := m.HandlePickup(Pickup{From: 0, Dest: geo.Pt(450, 0), Profile: eagerUser()})
	if err != nil {
		t.Fatal(err)
	}
	if !made || !offer.Accepted {
		t.Fatalf("offer should be made and accepted: %+v", offer)
	}
	if offer.Sink != 1 || offer.BikeID != 1 {
		t.Errorf("offer=%+v, want sink 1 bike 1", offer)
	}
	b, err := fleet.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Loc != geo.Pt(400, 0) {
		t.Errorf("bike 1 at %v, want sink location", b.Loc)
	}
	if m.LowRemaining(0) != 1 || m.LowRemaining(1) != 2 {
		t.Errorf("low counts: station0=%d station1=%d", m.LowRemaining(0), m.LowRemaining(1))
	}
	res := m.Result()
	if res.Relocated != 1 || res.OffersMade != 1 || res.IncentivesPaid <= 0 {
		t.Errorf("result %+v", res)
	}
}

func TestHandlePickupDeclined(t *testing.T) {
	m, _ := mechFixture(t, DefaultMechanismConfig(0.4))
	picky := User{MaxExtraWalk: 10, MinReward: 100}
	offer, made, err := m.HandlePickup(Pickup{From: 0, Dest: geo.Pt(450, 0), Profile: picky})
	if err != nil {
		t.Fatal(err)
	}
	// MaxExtraWalk=10 means no sink is within walking range; the search
	// yields nothing, so no offer is extended at all.
	if made || offer.Accepted {
		t.Errorf("offer should not be extended: made=%v %+v", made, offer)
	}
	// A user who can walk but demands a huge reward gets an offer and
	// declines it.
	greedy := User{MaxExtraWalk: 1e9, MinReward: 1e9}
	offer, made, err = m.HandlePickup(Pickup{From: 0, Dest: geo.Pt(450, 0), Profile: greedy})
	if err != nil {
		t.Fatal(err)
	}
	if !made || offer.Accepted {
		t.Errorf("offer should be made and declined: made=%v %+v", made, offer)
	}
	if m.LowRemaining(0) != 2 {
		t.Error("declined offer must not move bikes")
	}
}

func TestHandlePickupNoOfferCases(t *testing.T) {
	m, _ := mechFixture(t, DefaultMechanismConfig(0.4))
	// Pickup at the sink itself: no offer.
	if _, made, err := m.HandlePickup(Pickup{From: 1, Dest: geo.Pt(0, 0), Profile: eagerUser()}); err != nil || made {
		t.Errorf("sink pickup: made=%v err=%v", made, err)
	}
	// Pickup at a station with no low bikes: no offer.
	if _, made, err := m.HandlePickup(Pickup{From: 2, Dest: geo.Pt(0, 0), Profile: eagerUser()}); err != nil || made {
		t.Errorf("empty station: made=%v err=%v", made, err)
	}
	// Out of range station errors.
	if _, _, err := m.HandlePickup(Pickup{From: 9, Dest: geo.Pt(0, 0), Profile: eagerUser()}); err == nil {
		t.Error("out-of-range pickup should error")
	}
}

func TestHandlePickupMileageConstraint(t *testing.T) {
	// Destination much closer than the sink: the detour would exceed the
	// mileage band, so no offer.
	cfg := DefaultMechanismConfig(1.0)
	cfg.MileageSlack = 0
	m, _ := mechFixture(t, cfg)
	_, made, err := m.HandlePickup(Pickup{From: 0, Dest: geo.Pt(50, 0), Profile: eagerUser()})
	if err != nil {
		t.Fatal(err)
	}
	if made {
		t.Error("sink at 400 m with a 50 m trip violates equal mileage; no offer expected")
	}
}

func TestHandlePickupBatteryConstraint(t *testing.T) {
	// A bike with nearly no charge cannot reach the sink.
	fleet, err := energy.NewFleet(energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	stations := []geo.Point{geo.Pt(0, 0), geo.Pt(3000, 0)}
	if err := fleet.Add(energy.Bike{ID: 1, Loc: geo.Pt(0, 0), Level: 0.01}); err != nil {
		t.Fatal(err) // 350 m range < 3000 m leg
	}
	m, err := NewMechanism(DefaultMechanismConfig(1.0), stations, fleet,
		map[int][]int64{0: {1}}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	_, made, err := m.HandlePickup(Pickup{From: 0, Dest: geo.Pt(3100, 0), Profile: eagerUser()})
	if err != nil {
		t.Fatal(err)
	}
	if made {
		t.Error("dead battery cannot cover the relocation leg; no offer expected")
	}
}

func TestMechanismEmptiesSourceStation(t *testing.T) {
	// Repeated willing users drain all low bikes from station 0
	// (Algorithm 3's loop until L_i -> empty).
	m, _ := mechFixture(t, DefaultMechanismConfig(1.0))
	for i := 0; i < 2; i++ {
		offer, made, err := m.HandlePickup(Pickup{From: 0, Dest: geo.Pt(420, 0), Profile: eagerUser()})
		if err != nil {
			t.Fatal(err)
		}
		if !made || !offer.Accepted {
			t.Fatalf("pickup %d not accepted", i)
		}
	}
	if m.LowRemaining(0) != 0 {
		t.Errorf("station 0 still has %d low bikes", m.LowRemaining(0))
	}
	res := m.Result()
	// Operator now only visits the sink (station 1).
	if len(res.ServiceStations) != 1 || res.ServiceStations[0] != 1 {
		t.Errorf("service stations %v, want [1]", res.ServiceStations)
	}
}

func TestSkipThreshold(t *testing.T) {
	cfg := DefaultMechanismConfig(0.4)
	cfg.SkipThreshold = 2
	m, _ := mechFixture(t, cfg)
	res := m.Result()
	// Station 0 has 2 low bikes (== threshold, skipped), station 1 has 1.
	if len(res.ServiceStations) != 0 {
		t.Errorf("service stations %v, want none at threshold 2", res.ServiceStations)
	}
}

func TestPickSinks(t *testing.T) {
	low := map[int][]int64{
		0: {1, 2, 3},
		1: {4},
		2: {5, 6, 7},
		3: {8, 9},
	}
	got := PickSinks(low, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("PickSinks=%v, want [0 2] (ties by index)", got)
	}
	if got := PickSinks(low, 99); len(got) != 4 {
		t.Errorf("over-count should clamp: %v", got)
	}
	if got := PickSinks(nil, 3); len(got) != 0 {
		t.Errorf("empty low: %v", got)
	}
}

func TestOffersLogCopies(t *testing.T) {
	m, _ := mechFixture(t, DefaultMechanismConfig(1.0))
	if _, _, err := m.HandlePickup(Pickup{From: 0, Dest: geo.Pt(450, 0), Profile: eagerUser()}); err != nil {
		t.Fatal(err)
	}
	log := m.Offers()
	if len(log) != 1 {
		t.Fatalf("offers=%d", len(log))
	}
	log[0].Value = -1
	if m.Offers()[0].Value == -1 {
		t.Error("Offers exposes internal slice")
	}
}
