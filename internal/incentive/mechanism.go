package incentive

import (
	"fmt"
	"sort"

	"repro/internal/energy"
	"repro/internal/geo"
)

// MechanismConfig parameterises Algorithm 3.
type MechanismConfig struct {
	// Alpha splits the saving bound between the operator and the users;
	// 0 disables incentives, 1 pays out the entire bound.
	Alpha float64
	// Params are the operator's unit costs.
	Params CostParams
	// MileageSlack relaxes the "identical mileage" constraint: the detour
	// leg i→k may be up to (1+MileageSlack)·dist(i→j). The paper requires
	// equality; a small slack (default 0.15) models the app rounding
	// charges to the same fare band.
	MileageSlack float64
	// SkipThreshold is the remark's clean-up rule: stations left with at
	// most this many low bikes are skipped in the current round and
	// deferred to the next service period (default 0, meaning only empty
	// stations are skipped).
	SkipThreshold int
}

// DefaultMechanismConfig returns the evaluation defaults with the given
// alpha.
func DefaultMechanismConfig(alpha float64) MechanismConfig {
	return MechanismConfig{
		Alpha:        alpha,
		Params:       DefaultCostParams(),
		MileageSlack: 0.15,
	}
}

func (c MechanismConfig) validate() error {
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("incentive: alpha %v outside [0,1]", c.Alpha)
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.MileageSlack < 0 {
		return fmt.Errorf("incentive: mileage slack %v < 0", c.MileageSlack)
	}
	if c.SkipThreshold < 0 {
		return fmt.Errorf("incentive: skip threshold %d < 0", c.SkipThreshold)
	}
	return nil
}

// Pickup is one arriving user who wants to ride from station From to
// destination Dest; Profile models their Eq. 13 acceptance parameters.
type Pickup struct {
	From    int
	Dest    geo.Point
	Profile User
}

// Offer records one incentive transaction.
type Offer struct {
	Station   int     `json:"station"`
	Sink      int     `json:"sink"`
	BikeID    int64   `json:"bikeId"`
	Value     float64 `json:"value"`
	ExtraWalk float64 `json:"extraWalk"`
	Accepted  bool    `json:"accepted"`
}

// Mechanism runs Algorithm 3 over a stream of pickups against live fleet
// state.
type Mechanism struct {
	cfg      MechanismConfig
	stations []geo.Point
	fleet    *energy.Fleet
	low      map[int][]int64 // station index -> low-bike IDs still there
	sinks    map[int]bool    // aggregation sites
	sinkList []int           // sorted sink indices: deterministic scan order
	paid     float64
	offers   []Offer
}

// NewMechanism builds the mechanism.
//
// stations are the established parking locations; low maps station index
// to the IDs of its low-energy bikes (L_i); sinks designates aggregation
// stations (the k locations the paper relocates bikes toward) — typically
// the stations with the largest L_i, which the operator must visit anyway.
func NewMechanism(cfg MechanismConfig, stations []geo.Point, fleet *energy.Fleet, low map[int][]int64, sinks []int) (*Mechanism, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(stations) == 0 {
		return nil, fmt.Errorf("incentive: no stations")
	}
	if fleet == nil {
		return nil, fmt.Errorf("incentive: nil fleet")
	}
	// Validate in sorted key order so the reported station is the lowest
	// offender, not whichever entry map iteration served first.
	lowKeys := make([]int, 0, len(low))
	for i := range low {
		lowKeys = append(lowKeys, i)
	}
	sort.Ints(lowKeys)
	lowCopy := make(map[int][]int64, len(low))
	for _, i := range lowKeys {
		if i < 0 || i >= len(stations) {
			return nil, fmt.Errorf("incentive: low-bike station %d out of range", i)
		}
		lowCopy[i] = append([]int64(nil), low[i]...)
	}
	sinkSet := make(map[int]bool, len(sinks))
	for _, s := range sinks {
		if s < 0 || s >= len(stations) {
			return nil, fmt.Errorf("incentive: sink %d out of range", s)
		}
		sinkSet[s] = true
	}
	if len(sinkSet) == 0 {
		return nil, fmt.Errorf("incentive: no aggregation sinks")
	}
	sinkList := make([]int, 0, len(sinkSet))
	for s := range sinkSet {
		sinkList = append(sinkList, s)
	}
	sort.Ints(sinkList)
	return &Mechanism{
		cfg:      cfg,
		stations: append([]geo.Point(nil), stations...),
		fleet:    fleet,
		low:      lowCopy,
		sinks:    sinkSet,
		sinkList: sinkList,
	}, nil
}

// PickSinks returns the indices of the `count` stations with the most
// low-energy bikes (ties broken by lower index) — the natural aggregation
// sites, since the operator must stop there regardless.
func PickSinks(low map[int][]int64, count int) []int {
	type entry struct {
		idx, n int
	}
	entries := make([]entry, 0, len(low))
	for i, ids := range low {
		entries = append(entries, entry{idx: i, n: len(ids)})
	}
	// Descending count, ties broken by ascending index — a total order,
	// so the collect-then-sort pair erases map iteration order.
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].n != entries[b].n {
			return entries[a].n > entries[b].n
		}
		return entries[a].idx < entries[b].idx
	})
	if count > len(entries) {
		count = len(entries)
	}
	out := make([]int, 0, count)
	for _, e := range entries[:count] {
		out = append(out, e.idx)
	}
	return out
}

// HandlePickup processes one arriving user per Algorithm 3. When the
// user's origin station still holds low-energy bikes, the system offers
// v = α(q+td)/|L_i| to ride one of them to the best aggregation sink whose
// detour respects the mileage constraint; on acceptance the bike moves and
// the reward is paid. The second return reports whether an offer was even
// extended.
func (m *Mechanism) HandlePickup(p Pickup) (Offer, bool, error) {
	if p.From < 0 || p.From >= len(m.stations) {
		return Offer{}, false, fmt.Errorf("incentive: pickup station %d out of range", p.From)
	}
	if m.sinks[p.From] {
		return Offer{}, false, nil // bikes here are already aggregated
	}
	ids := m.low[p.From]
	if len(ids) == 0 {
		return Offer{}, false, nil
	}
	origin := m.stations[p.From]
	tripLen := origin.Dist(p.Dest)

	// Find the sink whose detour minimises the user's extra walk while
	// respecting the mileage constraint and the bike's residual range.
	// Scan in ascending station order: on a symmetric station layout two
	// sinks can tie exactly on walk distance, and iterating the sink map
	// would break the tie by map order — the lowest index must win every
	// run.
	bikeID := ids[0]
	sink, extraWalk := -1, 0.0
	bestWalk := p.Profile.MaxExtraWalk
	for _, s := range m.sinkList {
		if s == p.From {
			continue
		}
		loc := m.stations[s]
		if origin.Dist(loc) > tripLen*(1+m.cfg.MileageSlack) {
			continue // would incur extra mileage charge
		}
		if !m.fleet.CanRide(bikeID, loc) {
			continue // low battery cannot cover the leg
		}
		if walk := loc.Dist(p.Dest); walk < bestWalk {
			sink, extraWalk = s, walk
			bestWalk = walk
		}
	}
	if sink < 0 {
		return Offer{}, false, nil
	}

	// Stop position t: pessimistically assume the station lands mid-tour.
	stop := (len(m.low) + 1) / 2
	if stop < 1 {
		stop = 1
	}
	value, err := OfferValue(m.cfg.Params, m.cfg.Alpha, stop, len(ids))
	if err != nil {
		return Offer{}, false, err
	}
	offer := Offer{
		Station: p.From, Sink: sink, BikeID: bikeID,
		Value: value, ExtraWalk: extraWalk,
	}
	if !p.Profile.Accepts(extraWalk, value) {
		m.offers = append(m.offers, offer)
		return offer, true, nil
	}
	if err := m.fleet.Ride(bikeID, m.stations[sink]); err != nil {
		// CanRide raced with nothing here (single-threaded), so this is a
		// genuine model inconsistency worth surfacing.
		return Offer{}, false, fmt.Errorf("incentive: relocate bike %d: %w", bikeID, err)
	}
	m.low[p.From] = ids[1:]
	m.low[sink] = append(m.low[sink], bikeID)
	m.paid += value
	offer.Accepted = true
	m.offers = append(m.offers, offer)
	return offer, true, nil
}

// Result summarises a finished mechanism round.
type Result struct {
	// Relocated counts accepted offers.
	Relocated int `json:"relocated"`
	// OffersMade counts extended offers (accepted or not).
	OffersMade int `json:"offersMade"`
	// IncentivesPaid is the total reward outlay in dollars.
	IncentivesPaid float64 `json:"incentivesPaid"`
	// LowByStation is the final L_i distribution.
	LowByStation map[int]int `json:"lowByStation"`
	// ServiceStations lists stations the operator must still visit
	// (low count above the skip threshold).
	ServiceStations []int `json:"serviceStations"`
}

// Result returns the current summary.
func (m *Mechanism) Result() Result {
	res := Result{
		IncentivesPaid: m.paid,
		LowByStation:   make(map[int]int, len(m.low)),
	}
	for _, o := range m.offers {
		res.OffersMade++
		if o.Accepted {
			res.Relocated++
		}
	}
	for i, ids := range m.low {
		if len(ids) > 0 {
			res.LowByStation[i] = len(ids)
		}
		if len(ids) > m.cfg.SkipThreshold {
			res.ServiceStations = append(res.ServiceStations, i)
		}
	}
	// Deterministic order for reports.
	sort.Ints(res.ServiceStations)
	return res
}

// Offers returns the transaction log.
func (m *Mechanism) Offers() []Offer {
	return append([]Offer(nil), m.offers...)
}

// LowRemaining returns the station's outstanding low-bike count.
func (m *Mechanism) LowRemaining(station int) int { return len(m.low[station]) }

// LowBikesByStation returns the final L_i sets after the incentive round —
// the distribution the operator's charging tour serves.
func (m *Mechanism) LowBikesByStation() map[int][]int64 {
	out := make(map[int][]int64, len(m.low))
	for i, ids := range m.low {
		if len(ids) > 0 {
			out[i] = append([]int64(nil), ids...)
		}
	}
	return out
}
