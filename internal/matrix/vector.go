package matrix

// Vector helpers used by the LSTM: weights are matrices, activations are
// plain []float64 vectors. All functions panic on shape mismatch, matching
// the package convention (shapes are static in the forecaster).

// Gemv computes dst = w·x (+0). dst must have length w.Rows and x length
// w.Cols; dst must not alias x.
func Gemv(dst []float64, w *Matrix, x []float64) {
	shapeCheck(len(dst) == w.Rows && len(x) == w.Cols,
		"gemv dst=%d x=%d for %dx%d", len(dst), len(x), w.Rows, w.Cols)
	for i := 0; i < w.Rows; i++ {
		row := w.Data[i*w.Cols : (i+1)*w.Cols]
		var sum float64
		for j, v := range row {
			sum += v * x[j]
		}
		dst[i] = sum
	}
}

// GemvAdd computes dst += w·x.
func GemvAdd(dst []float64, w *Matrix, x []float64) {
	shapeCheck(len(dst) == w.Rows && len(x) == w.Cols,
		"gemv-add dst=%d x=%d for %dx%d", len(dst), len(x), w.Rows, w.Cols)
	for i := 0; i < w.Rows; i++ {
		row := w.Data[i*w.Cols : (i+1)*w.Cols]
		var sum float64
		for j, v := range row {
			sum += v * x[j]
		}
		dst[i] += sum
	}
}

// GemvTAdd computes dst += wᵀ·x, i.e. backpropagation of x through w.
func GemvTAdd(dst []float64, w *Matrix, x []float64) {
	shapeCheck(len(dst) == w.Cols && len(x) == w.Rows,
		"gemvT dst=%d x=%d for %dx%d", len(dst), len(x), w.Rows, w.Cols)
	for i := 0; i < w.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := w.Data[i*w.Cols : (i+1)*w.Cols]
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// AddOuter accumulates w += u·vᵀ (the gradient of a linear layer).
func AddOuter(w *Matrix, u, v []float64) {
	shapeCheck(len(u) == w.Rows && len(v) == w.Cols,
		"outer u=%d v=%d for %dx%d", len(u), len(v), w.Rows, w.Cols)
	for i, ui := range u {
		if ui == 0 {
			continue
		}
		row := w.Data[i*w.Cols : (i+1)*w.Cols]
		for j, vj := range v {
			row[j] += ui * vj
		}
	}
}

// AddVec computes dst += src for plain vectors.
func AddVec(dst, src []float64) {
	shapeCheck(len(dst) == len(src), "addvec %d += %d", len(dst), len(src))
	for i, v := range src {
		dst[i] += v
	}
}
