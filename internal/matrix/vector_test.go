package matrix

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestGemv(t *testing.T) {
	w := mustFromSlice(t, 2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	dst := make([]float64, 2)
	Gemv(dst, w, x)
	if dst[0] != -2 || dst[1] != -2 {
		t.Errorf("Gemv wrong: %v", dst)
	}
	GemvAdd(dst, w, x)
	if dst[0] != -4 || dst[1] != -4 {
		t.Errorf("GemvAdd wrong: %v", dst)
	}
}

func TestGemvTAddMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	w := Randomized(4, 3, 1, rng)
	x := []float64{0.5, -1, 2, 0}
	got := make([]float64, 3)
	GemvTAdd(got, w, x)
	want := make([]float64, 3)
	Gemv(want, w.Transpose(), x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("GemvTAdd[%d]=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestAddOuter(t *testing.T) {
	w := New(2, 3)
	AddOuter(w, []float64{1, 2}, []float64{3, 4, 5})
	want := []float64{3, 4, 5, 6, 8, 10}
	for i, v := range want {
		if w.Data[i] != v {
			t.Errorf("AddOuter data[%d]=%v, want %v", i, w.Data[i], v)
		}
	}
}

func TestAddVec(t *testing.T) {
	dst := []float64{1, 2}
	AddVec(dst, []float64{10, 20})
	if dst[0] != 11 || dst[1] != 22 {
		t.Errorf("AddVec wrong: %v", dst)
	}
}

func TestVectorShapePanics(t *testing.T) {
	w := New(2, 3)
	cases := []struct {
		name string
		f    func()
	}{
		{"gemv dst", func() { Gemv(make([]float64, 3), w, make([]float64, 3)) }},
		{"gemv x", func() { Gemv(make([]float64, 2), w, make([]float64, 2)) }},
		{"gemvT", func() { GemvTAdd(make([]float64, 2), w, make([]float64, 2)) }},
		{"outer", func() { AddOuter(w, make([]float64, 3), make([]float64, 3)) }},
		{"addvec", func() { AddVec(make([]float64, 1), make([]float64, 2)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			tc.f()
		})
	}
}
