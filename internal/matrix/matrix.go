// Package matrix implements the small dense linear algebra kernel used by
// the forecasting engine (LSTM and ARIMA). It favours clarity and
// allocation-free in-place variants over peak throughput; the models this
// repository trains are tiny by deep-learning standards.
package matrix

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice builds a rows×cols matrix from data (copied).
func FromSlice(rows, cols int, data []float64) (*Matrix, error) {
	if rows*cols != len(data) {
		return nil, fmt.Errorf("matrix: %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data))
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m, nil
}

// Randomized fills a new matrix with uniform values in [-scale, scale],
// the Xavier-style initialisation used for LSTM weights.
func Randomized(rows, cols int, scale float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets all elements to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// SameShape reports whether m and n have identical dimensions.
func (m *Matrix) SameShape(n *Matrix) bool {
	return m.Rows == n.Rows && m.Cols == n.Cols
}

// shapeCheck panics on mismatched shapes; the forecaster constructs all
// shapes statically so a mismatch is a programming error, not runtime
// input.
func shapeCheck(cond bool, format string, args ...any) {
	if !cond {
		panic("matrix: " + fmt.Sprintf(format, args...))
	}
}

// MulTo computes dst = m × n. dst must be m.Rows×n.Cols and distinct from
// both operands.
func MulTo(dst, m, n *Matrix) {
	shapeCheck(m.Cols == n.Rows, "mul %dx%d by %dx%d", m.Rows, m.Cols, n.Rows, n.Cols)
	shapeCheck(dst.Rows == m.Rows && dst.Cols == n.Cols, "mul dst %dx%d want %dx%d",
		dst.Rows, dst.Cols, m.Rows, n.Cols)
	shapeCheck(dst != m && dst != n, "mul dst aliases operand")
	for i := 0; i < m.Rows; i++ {
		dstRow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k := range dstRow {
			dstRow[k] = 0
		}
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			nRow := n.Data[k*n.Cols : (k+1)*n.Cols]
			for j, b := range nRow {
				dstRow[j] += a * b
			}
		}
	}
}

// Mul returns m × n as a fresh matrix.
func Mul(m, n *Matrix) *Matrix {
	dst := New(m.Rows, n.Cols)
	MulTo(dst, m, n)
	return dst
}

// AddTo computes dst = a + b elementwise; all three must share a shape
// (dst may alias a or b).
func AddTo(dst, a, b *Matrix) {
	shapeCheck(a.SameShape(b) && dst.SameShape(a), "add shapes %dx%d %dx%d %dx%d",
		dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// AddInPlace computes m += n.
func (m *Matrix) AddInPlace(n *Matrix) {
	shapeCheck(m.SameShape(n), "add-in-place %dx%d += %dx%d", m.Rows, m.Cols, n.Rows, n.Cols)
	for i := range m.Data {
		m.Data[i] += n.Data[i]
	}
}

// AddScaled computes m += s·n.
func (m *Matrix) AddScaled(n *Matrix, s float64) {
	shapeCheck(m.SameShape(n), "add-scaled %dx%d += %dx%d", m.Rows, m.Cols, n.Rows, n.Cols)
	for i := range m.Data {
		m.Data[i] += s * n.Data[i]
	}
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// HadamardTo computes dst = a ⊙ b (elementwise product); dst may alias.
func HadamardTo(dst, a, b *Matrix) {
	shapeCheck(a.SameShape(b) && dst.SameShape(a), "hadamard shape mismatch")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// Apply sets dst = f(a) elementwise; dst may alias a.
func Apply(dst, a *Matrix, f func(float64) float64) {
	shapeCheck(dst.SameShape(a), "apply shape mismatch")
	for i := range dst.Data {
		dst.Data[i] = f(a.Data[i])
	}
}

// Transpose returns mᵀ as a fresh matrix.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// MulATB computes dst = aᵀ × b without materialising the transpose.
func MulATB(dst, a, b *Matrix) {
	shapeCheck(a.Rows == b.Rows, "atb %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	shapeCheck(dst.Rows == a.Cols && dst.Cols == b.Cols, "atb dst shape")
	dst.Zero()
	for k := 0; k < a.Rows; k++ {
		aRow := a.Data[k*a.Cols : (k+1)*a.Cols]
		bRow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range aRow {
			if av == 0 {
				continue
			}
			dstRow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for j, bv := range bRow {
				dstRow[j] += av * bv
			}
		}
	}
}

// MulABT computes dst = a × bᵀ without materialising the transpose.
func MulABT(dst, a, b *Matrix) {
	shapeCheck(a.Cols == b.Cols, "abt %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	shapeCheck(dst.Rows == a.Rows && dst.Cols == b.Rows, "abt dst shape")
	for i := 0; i < a.Rows; i++ {
		aRow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < b.Rows; j++ {
			bRow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var sum float64
			for k, av := range aRow {
				sum += av * bRow[k]
			}
			dst.Data[i*dst.Cols+j] = sum
		}
	}
}

// Norm2 returns the Frobenius norm.
func (m *Matrix) Norm2() float64 {
	var sum float64
	for _, v := range m.Data {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// ClipInPlace clamps every element into [-limit, limit]; used for gradient
// clipping during BPTT.
func (m *Matrix) ClipInPlace(limit float64) {
	for i, v := range m.Data {
		if v > limit {
			m.Data[i] = limit
		} else if v < -limit {
			m.Data[i] = -limit
		}
	}
}

// Equal reports elementwise equality within tol.
func Equal(a, b *Matrix, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// SolveLinear solves A·x = b by Gaussian elimination with partial
// pivoting, destroying neither input. It returns an error when A is not
// square, dimensions mismatch, or A is (numerically) singular. The ARIMA
// fitter uses this to solve the normal equations of its AR regression.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("matrix: solve needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("matrix: solve rhs length %d, want %d", len(b), n)
	}
	// Augmented working copy.
	aug := make([][]float64, n)
	for i := 0; i < n; i++ {
		aug[i] = make([]float64, n+1)
		copy(aug[i], a.Data[i*n:(i+1)*n])
		aug[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aug[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("matrix: singular system at column %d", col)
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		inv := 1 / aug[col][col]
		for r := col + 1; r < n; r++ {
			factor := aug[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				aug[r][c] -= factor * aug[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := aug[i][n]
		for j := i + 1; j < n; j++ {
			sum -= aug[i][j] * x[j]
		}
		x[i] = sum / aug[i][i]
	}
	return x, nil
}
