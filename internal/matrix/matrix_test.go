package matrix

import (
	"math"
	"math/rand/v2"
	"testing"
)

func mustFromSlice(t *testing.T, rows, cols int, data []float64) *Matrix {
	t.Helper()
	m, err := FromSlice(rows, cols, data)
	if err != nil {
		t.Fatalf("FromSlice: %v", err)
	}
	return m
}

func TestFromSliceValidation(t *testing.T) {
	if _, err := FromSlice(2, 2, []float64{1, 2, 3}); err == nil {
		t.Error("length mismatch should error")
	}
	m := mustFromSlice(t, 2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(0, 2) != 3 || m.At(1, 0) != 4 {
		t.Errorf("indexing wrong: %v", m.Data)
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, 3) should panic")
		}
	}()
	New(0, 3)
}

func TestSetAtClone(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 1, 7)
	c := m.Clone()
	m.Set(1, 1, 0)
	if c.At(1, 1) != 7 {
		t.Error("Clone shares storage")
	}
	c.Zero()
	if c.At(1, 1) != 0 {
		t.Error("Zero did not reset")
	}
}

func TestMul(t *testing.T) {
	a := mustFromSlice(t, 2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := mustFromSlice(t, 3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := mustFromSlice(t, 2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 1e-12) {
		t.Errorf("Mul wrong: %v", got.Data)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := Randomized(4, 4, 1, rng)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	if !Equal(Mul(a, id), a, 1e-12) || !Equal(Mul(id, a), a, 1e-12) {
		t.Error("identity multiplication changed matrix")
	}
}

func TestMulToPanics(t *testing.T) {
	a, b := New(2, 3), New(3, 2)
	t.Run("aliased dst", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("aliased dst should panic")
			}
		}()
		sq := New(3, 3)
		MulTo(sq, sq, sq)
	})
	t.Run("bad inner dims", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("bad dims should panic")
			}
		}()
		MulTo(New(2, 2), a, a)
	})
	t.Run("bad dst dims", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("bad dst should panic")
			}
		}()
		MulTo(New(3, 3), a, b)
	})
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	m := Randomized(3, 5, 2, rng)
	if !Equal(m.Transpose().Transpose(), m, 0) {
		t.Error("double transpose is not identity")
	}
	tr := m.Transpose()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if tr.At(j, i) != m.At(i, j) {
				t.Fatalf("transpose wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulATBAndABT(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := Randomized(4, 3, 1, rng)
	b := Randomized(4, 2, 1, rng)
	atb := New(3, 2)
	MulATB(atb, a, b)
	if !Equal(atb, Mul(a.Transpose(), b), 1e-12) {
		t.Error("MulATB != Aᵀ×B")
	}
	c := Randomized(3, 5, 1, rng)
	d := Randomized(2, 5, 1, rng)
	abt := New(3, 2)
	MulABT(abt, c, d)
	if !Equal(abt, Mul(c, d.Transpose()), 1e-12) {
		t.Error("MulABT != A×Bᵀ")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := mustFromSlice(t, 2, 2, []float64{1, 2, 3, 4})
	b := mustFromSlice(t, 2, 2, []float64{10, 20, 30, 40})

	sum := New(2, 2)
	AddTo(sum, a, b)
	if !Equal(sum, mustFromSlice(t, 2, 2, []float64{11, 22, 33, 44}), 0) {
		t.Error("AddTo wrong")
	}

	c := a.Clone()
	c.AddInPlace(b)
	if !Equal(c, sum, 0) {
		t.Error("AddInPlace wrong")
	}

	d := a.Clone()
	d.AddScaled(b, 0.5)
	if !Equal(d, mustFromSlice(t, 2, 2, []float64{6, 12, 18, 24}), 1e-12) {
		t.Error("AddScaled wrong")
	}

	e := a.Clone()
	e.Scale(3)
	if !Equal(e, mustFromSlice(t, 2, 2, []float64{3, 6, 9, 12}), 0) {
		t.Error("Scale wrong")
	}

	h := New(2, 2)
	HadamardTo(h, a, b)
	if !Equal(h, mustFromSlice(t, 2, 2, []float64{10, 40, 90, 160}), 0) {
		t.Error("Hadamard wrong")
	}

	sq := New(2, 2)
	Apply(sq, a, func(v float64) float64 { return v * v })
	if !Equal(sq, mustFromSlice(t, 2, 2, []float64{1, 4, 9, 16}), 0) {
		t.Error("Apply wrong")
	}
}

func TestNorm2AndClip(t *testing.T) {
	m := mustFromSlice(t, 1, 2, []float64{3, 4})
	if m.Norm2() != 5 {
		t.Errorf("Norm2=%v, want 5", m.Norm2())
	}
	c := mustFromSlice(t, 1, 3, []float64{-10, 0.5, 10})
	c.ClipInPlace(1)
	if c.Data[0] != -1 || c.Data[1] != 0.5 || c.Data[2] != 1 {
		t.Errorf("ClipInPlace wrong: %v", c.Data)
	}
}

func TestEqualShapes(t *testing.T) {
	if Equal(New(2, 2), New(2, 3), 1) {
		t.Error("different shapes should not be Equal")
	}
}

func TestSolveLinear(t *testing.T) {
	tests := []struct {
		name    string
		a       []float64
		n       int
		b       []float64
		want    []float64
		wantErr bool
	}{
		{
			name: "2x2",
			a:    []float64{2, 1, 1, 3}, n: 2,
			b:    []float64{5, 10},
			want: []float64{1, 3},
		},
		{
			name: "3x3 with pivoting",
			a:    []float64{0, 2, 1, 1, -2, -3, -1, 1, 2}, n: 3,
			b:    []float64{-8, 0, 3},
			want: []float64{-4, -5, 2},
		},
		{
			name: "singular",
			a:    []float64{1, 2, 2, 4}, n: 2,
			b:       []float64{1, 2},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := mustFromSlice(t, tt.n, tt.n, tt.a)
			got, err := SolveLinear(a, tt.b)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			for i := range tt.want {
				if math.Abs(got[i]-tt.want[i]) > 1e-9 {
					t.Errorf("x[%d]=%v, want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestSolveLinearValidation(t *testing.T) {
	if _, err := SolveLinear(New(2, 3), []float64{1, 2}); err == nil {
		t.Error("non-square should error")
	}
	if _, err := SolveLinear(New(2, 2), []float64{1}); err == nil {
		t.Error("rhs length mismatch should error")
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.IntN(8)
		a := Randomized(n, n, 1, rng)
		// Diagonal dominance guarantees non-singularity.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.Float64()*10 - 5
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a.At(i, j) * want[j]
			}
		}
		got, err := SolveLinear(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d]=%v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSolveLinearDoesNotMutate(t *testing.T) {
	a := mustFromSlice(t, 2, 2, []float64{2, 1, 1, 3})
	b := []float64{5, 10}
	if _, err := SolveLinear(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 2 || a.At(1, 1) != 3 || b[0] != 5 {
		t.Error("SolveLinear mutated inputs")
	}
}
