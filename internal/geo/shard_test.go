package geo

import (
	"math"
	"testing"
)

// pseudoLatLng mirrors PlanarCellID's scaling of the planar frame onto
// the geohash domain, so the key can be cross-checked against the
// canonical geohash codec.
func pseudoLatLng(p Point) LatLng {
	clamp := func(v, lim float64) float64 {
		if v > lim {
			return lim
		}
		if v < -lim {
			return -lim
		}
		return v
	}
	return LatLng{
		Lat: clamp(p.Y/PlanarWorldExtent*90, 90),
		Lng: clamp(p.X/PlanarWorldExtent*180, 180),
	}
}

// TestPlanarShardKeyMatchesGeohash pins the cell subdivision to the
// geohash codec exactly: the planar key of any point must equal the
// geohash of its pseudo-coordinates at every precision.
func TestPlanarShardKeyMatchesGeohash(t *testing.T) {
	points := []Point{
		Pt(0, 0), Pt(1, 1), Pt(-1, -1),
		Pt(1000, 2000), Pt(-123456.78, 987654.32),
		Pt(PlanarWorldExtent, PlanarWorldExtent),
		Pt(-PlanarWorldExtent, -PlanarWorldExtent),
		Pt(3e7, -3e7), // beyond the world box: clamps to the border
		Pt(17, -0.25), Pt(2.5e6, -9.9e6),
	}
	for _, p := range points {
		for precision := 1; precision <= 12; precision++ {
			want, err := EncodeGeohash(pseudoLatLng(p), precision)
			if err != nil {
				t.Fatalf("EncodeGeohash(%v, %d): %v", p, precision, err)
			}
			if got := PlanarShardKey(p, precision); got != want {
				t.Errorf("PlanarShardKey(%v, %d) = %q, want geohash %q", p, precision, got, want)
			}
		}
	}
}

// TestPlanarCellIDBoundaryDeterministic: a destination exactly on a
// cell boundary must land in one well-defined cell (the upper half,
// like the geohash codec), identically on every evaluation, and
// distinctly from a point just below the boundary.
func TestPlanarCellIDBoundaryDeterministic(t *testing.T) {
	boundaries := []Point{
		Pt(0, 0),                        // world centre: boundary at every bisection level
		Pt(PlanarWorldExtent/2, 0),      // lng three-quarter line
		Pt(0, -PlanarWorldExtent/2),     // lat quarter line
		Pt(PlanarWorldExtent/4, 1234.5), // deeper lng boundary
	}
	for _, p := range boundaries {
		for precision := 1; precision <= 12; precision++ {
			a := PlanarCellID(p, precision)
			for i := 0; i < 8; i++ {
				if b := PlanarCellID(p, precision); b != a {
					t.Fatalf("PlanarCellID(%v, %d) unstable: %#x then %#x", p, precision, a, b)
				}
			}
		}
	}
	// The exact boundary belongs to the upper cell: x = 0 sits with the
	// eastern half (first longitude bit 1), and the tiniest step west
	// flips that bit.
	if id := PlanarCellID(Pt(0, 0), 1); id&(1<<4) == 0 {
		t.Errorf("boundary point should take the upper cell, got %#05b", id)
	}
	east, west := PlanarCellID(Pt(0, 0), 1), PlanarCellID(Pt(-0.001, 0), 1)
	if east == west {
		t.Errorf("points astride the boundary share cell %#x", east)
	}
}

// TestPlanarCellIDClampsAndNaN: precision clamps to [1, 12], points
// beyond the world box clamp to the border cells, and NaN coordinates
// map deterministically (to the all-zero cell) rather than poisoning
// the route.
func TestPlanarCellIDClampsAndNaN(t *testing.T) {
	p := Pt(123456, -654321)
	if got, want := PlanarCellID(p, 0), PlanarCellID(p, 1); got != want {
		t.Errorf("precision 0 = %#x, want precision-1 value %#x", got, want)
	}
	if got, want := PlanarCellID(p, 99), PlanarCellID(p, 12); got != want {
		t.Errorf("precision 99 = %#x, want precision-12 value %#x", got, want)
	}
	if got, want := PlanarCellID(Pt(1e18, -1e18), 6), PlanarCellID(Pt(PlanarWorldExtent, -PlanarWorldExtent), 6); got != want {
		t.Errorf("far point cell %#x, want border cell %#x", got, want)
	}
	nan := math.NaN()
	if got := PlanarCellID(Pt(nan, nan), 6); got != 0 {
		t.Errorf("NaN cell = %#x, want 0", got)
	}
	if got := ShardOf(Pt(nan, 5), 6, 7); got < 0 || got >= 7 {
		t.Errorf("NaN shard = %d, out of range", got)
	}
}

// TestShardOf: indices stay in range for any shard count, shards <= 1
// is always 0, the mapping is stable, and every point of one cell
// routes to the same shard.
func TestShardOf(t *testing.T) {
	points := []Point{Pt(0, 0), Pt(1500, 900), Pt(-2e6, 3e5), Pt(42, -42)}
	for _, p := range points {
		if got := ShardOf(p, 4, 0); got != 0 {
			t.Errorf("ShardOf(%v, shards=0) = %d, want 0", p, got)
		}
		if got := ShardOf(p, 4, 1); got != 0 {
			t.Errorf("ShardOf(%v, shards=1) = %d, want 0", p, got)
		}
		for _, shards := range []int{2, 3, 4, 8, 13} {
			got := ShardOf(p, 4, shards)
			if got < 0 || got >= shards {
				t.Errorf("ShardOf(%v, %d) = %d, out of range", p, shards, got)
			}
			if again := ShardOf(p, 4, shards); again != got {
				t.Errorf("ShardOf(%v, %d) unstable: %d then %d", p, shards, got, again)
			}
		}
	}
	// Two points in the same precision-4 cell (cells are ~49 km wide)
	// must route together; at precision 12 they are distinct cells.
	a, b := Pt(1000, 1000), Pt(1200, 800)
	if PlanarCellID(a, 4) != PlanarCellID(b, 4) {
		t.Fatal("test points unexpectedly straddle a precision-4 cell")
	}
	for _, shards := range []int{2, 4, 8} {
		if ShardOf(a, 4, shards) != ShardOf(b, 4, shards) {
			t.Errorf("same-cell points routed apart at %d shards", shards)
		}
	}
	if PlanarCellID(a, 12) == PlanarCellID(b, 12) {
		t.Error("distinct points share a precision-12 cell 200 m apart")
	}
}

// TestShardOfSpreads: with many distinct cells, the hash must not
// collapse everything onto one shard.
func TestShardOfSpreads(t *testing.T) {
	const shards = 4
	var hit [shards]int
	for i := 0; i < 32; i++ {
		// One point per ~49 km cell stride so each lands in its own cell.
		p := Pt(float64(i)*60_000, float64(i%7)*60_000)
		hit[ShardOf(p, 4, shards)]++
	}
	for i, n := range hit {
		if n == 0 {
			t.Errorf("shard %d never hit across 32 distinct cells", i)
		}
	}
}
