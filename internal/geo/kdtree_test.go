package geo

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func randomPts(seed uint64, n int) []Point {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*5000, rng.Float64()*5000)
	}
	return pts
}

func TestKDTreeEmpty(t *testing.T) {
	tr := BuildKDTree(nil)
	if tr.Len() != 0 {
		t.Errorf("Len=%d", tr.Len())
	}
	idx, d := tr.Nearest(Pt(1, 1))
	if idx != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty nearest: %d, %v", idx, d)
	}
}

func TestKDTreeMatchesLinearNearest(t *testing.T) {
	pts := randomPts(3, 300)
	tr := BuildKDTree(pts)
	queries := randomPts(4, 500)
	for _, q := range queries {
		gi, gd := Nearest(q, pts)
		ti, td := tr.Nearest(q)
		if gi != ti || math.Abs(gd-td) > 1e-9 {
			t.Fatalf("query %v: linear (%d, %v) vs tree (%d, %v)", q, gi, gd, ti, td)
		}
	}
}

func TestKDTreeDuplicatePointsTieToLowestIndex(t *testing.T) {
	pts := []Point{Pt(10, 10), Pt(5, 5), Pt(10, 10), Pt(5, 5)}
	tr := BuildKDTree(pts)
	idx, d := tr.Nearest(Pt(10, 10))
	if idx != 0 || d != 0 {
		t.Errorf("got (%d, %v), want (0, 0)", idx, d)
	}
	idx, _ = tr.Nearest(Pt(5.4, 5))
	if idx != 1 {
		t.Errorf("got %d, want 1", idx)
	}
}

func TestKDTreeDoesNotAliasInput(t *testing.T) {
	pts := []Point{Pt(1, 1), Pt(2, 2)}
	tr := BuildKDTree(pts)
	pts[0] = Pt(999, 999)
	if tr.At(0) == Pt(999, 999) {
		t.Error("tree aliases caller slice")
	}
}

func TestDynamicIndexInsertAndQuery(t *testing.T) {
	d := NewDynamicIndex(nil)
	if idx, dist := d.Nearest(Pt(0, 0)); idx != -1 || !math.IsInf(dist, 1) {
		t.Error("empty index should report no neighbour")
	}
	pts := randomPts(7, 400)
	for i, p := range pts {
		if got := d.Insert(p); got != i {
			t.Fatalf("insert %d returned index %d", i, got)
		}
	}
	if d.Len() != len(pts) {
		t.Fatalf("Len=%d", d.Len())
	}
	for i, p := range pts {
		if d.At(i) != p {
			t.Fatalf("At(%d) mismatch", i)
		}
	}
	for _, q := range randomPts(8, 300) {
		gi, gd := Nearest(q, pts)
		ti, td := d.Nearest(q)
		if gi != ti || math.Abs(gd-td) > 1e-9 {
			t.Fatalf("query %v: linear (%d, %v) vs index (%d, %v)", q, gi, gd, ti, td)
		}
	}
}

func TestDynamicIndexRemove(t *testing.T) {
	pts := randomPts(9, 100)
	d := NewDynamicIndex(pts)
	if d.Remove(-1) || d.Remove(100) {
		t.Error("out-of-range removal should fail")
	}
	if !d.Remove(40) {
		t.Fatal("removal failed")
	}
	want := append(append([]Point(nil), pts[:40]...), pts[41:]...)
	if d.Len() != 99 {
		t.Fatalf("Len=%d", d.Len())
	}
	for _, q := range randomPts(10, 200) {
		gi, gd := Nearest(q, want)
		ti, td := d.Nearest(q)
		if gi != ti || math.Abs(gd-td) > 1e-9 {
			t.Fatalf("after removal: linear (%d, %v) vs index (%d, %v)", gi, gd, ti, td)
		}
	}
}

func TestDynamicIndexPointsSnapshot(t *testing.T) {
	d := NewDynamicIndex([]Point{Pt(1, 2)})
	d.Insert(Pt(3, 4))
	snap := d.Points()
	if len(snap) != 2 || snap[0] != Pt(1, 2) || snap[1] != Pt(3, 4) {
		t.Errorf("snapshot=%v", snap)
	}
	snap[0] = Pt(9, 9)
	if d.At(0) == Pt(9, 9) {
		t.Error("Points exposes internal state")
	}
}

func TestQuickDynamicIndexAgreesWithLinear(t *testing.T) {
	property := func(raw []uint32, qx, qy uint32) bool {
		if len(raw) > 80 {
			raw = raw[:80]
		}
		pts := make([]Point, 0, len(raw))
		d := NewDynamicIndex(nil)
		for _, r := range raw {
			p := Pt(float64(r%4000), float64((r>>16)%4000))
			pts = append(pts, p)
			d.Insert(p)
		}
		q := Pt(float64(qx%4000), float64(qy%4000))
		gi, gd := Nearest(q, pts)
		ti, td := d.Nearest(q)
		if gi < 0 {
			return ti < 0
		}
		return gi == ti && math.Abs(gd-td) < 1e-9
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestDynamicIndexDifferential10k is the decision-identity proof for the
// placement hot path: over a 10k point set — built incrementally, salted
// with exact duplicates, and thinned by removals — the index must return
// the same winning index and the bit-identical distance as the linear
// geo.Nearest scan for every query.
func TestDynamicIndexDifferential10k(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	d := NewDynamicIndex(nil)
	pts := make([]Point, 0, 10000)
	for len(pts) < 10000 {
		var p Point
		if len(pts) > 0 && rng.Float64() < 0.1 {
			p = pts[rng.IntN(len(pts))] // exact duplicate: tie on distance
		} else {
			p = Pt(rng.Float64()*5000, rng.Float64()*5000)
		}
		pts = append(pts, p)
		d.Insert(p)
	}

	check := func(stage string) {
		t.Helper()
		queries := make([]Point, 0, 2000)
		for i := 0; i < 1500; i++ {
			queries = append(queries, Pt(rng.Float64()*5000, rng.Float64()*5000))
		}
		for i := 0; i < 500; i++ {
			// Queries exactly on indexed points force zero-distance ties.
			queries = append(queries, pts[rng.IntN(len(pts))])
		}
		for _, q := range queries {
			gi, gd := Nearest(q, pts)
			ti, td := d.Nearest(q)
			if gi != ti || gd != td {
				t.Fatalf("%s: query %v: linear (%d, %v) vs index (%d, %v)", stage, q, gi, gd, ti, td)
			}
		}
	}
	check("after inserts")

	for i := 0; i < 300; i++ {
		idx := rng.IntN(len(pts))
		if !d.Remove(idx) {
			t.Fatalf("removal %d at %d failed", i, idx)
		}
		pts = append(pts[:idx], pts[idx+1:]...)
	}
	check("after removals")

	// Interleave fresh inserts with the post-removal state.
	for i := 0; i < 200; i++ {
		p := Pt(rng.Float64()*5000, rng.Float64()*5000)
		pts = append(pts, p)
		if got := d.Insert(p); got != len(pts)-1 {
			t.Fatalf("insert returned %d, want %d", got, len(pts)-1)
		}
	}
	check("after reinserts")
}

func BenchmarkLinearNearest10k(b *testing.B) {
	pts := randomPts(11, 10000)
	q := randomPts(12, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Nearest(q, pts)
	}
}

func BenchmarkKDTreeNearest10k(b *testing.B) {
	tr := BuildKDTree(randomPts(11, 10000))
	q := randomPts(12, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Nearest(q)
	}
}
