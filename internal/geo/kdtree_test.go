package geo

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func randomPts(seed uint64, n int) []Point {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*5000, rng.Float64()*5000)
	}
	return pts
}

func TestKDTreeEmpty(t *testing.T) {
	tr := BuildKDTree(nil)
	if tr.Len() != 0 {
		t.Errorf("Len=%d", tr.Len())
	}
	idx, d := tr.Nearest(Pt(1, 1))
	if idx != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty nearest: %d, %v", idx, d)
	}
}

func TestKDTreeMatchesLinearNearest(t *testing.T) {
	pts := randomPts(3, 300)
	tr := BuildKDTree(pts)
	queries := randomPts(4, 500)
	for _, q := range queries {
		gi, gd := Nearest(q, pts)
		ti, td := tr.Nearest(q)
		if gi != ti || math.Abs(gd-td) > 1e-9 {
			t.Fatalf("query %v: linear (%d, %v) vs tree (%d, %v)", q, gi, gd, ti, td)
		}
	}
}

func TestKDTreeDuplicatePointsTieToLowestIndex(t *testing.T) {
	pts := []Point{Pt(10, 10), Pt(5, 5), Pt(10, 10), Pt(5, 5)}
	tr := BuildKDTree(pts)
	idx, d := tr.Nearest(Pt(10, 10))
	if idx != 0 || d != 0 {
		t.Errorf("got (%d, %v), want (0, 0)", idx, d)
	}
	idx, _ = tr.Nearest(Pt(5.4, 5))
	if idx != 1 {
		t.Errorf("got %d, want 1", idx)
	}
}

func TestKDTreeDoesNotAliasInput(t *testing.T) {
	pts := []Point{Pt(1, 1), Pt(2, 2)}
	tr := BuildKDTree(pts)
	pts[0] = Pt(999, 999)
	if tr.At(0) == Pt(999, 999) {
		t.Error("tree aliases caller slice")
	}
}

func TestDynamicIndexInsertAndQuery(t *testing.T) {
	d := NewDynamicIndex(nil)
	if idx, dist := d.Nearest(Pt(0, 0)); idx != -1 || !math.IsInf(dist, 1) {
		t.Error("empty index should report no neighbour")
	}
	pts := randomPts(7, 400)
	for i, p := range pts {
		if got := d.Insert(p); got != i {
			t.Fatalf("insert %d returned index %d", i, got)
		}
	}
	if d.Len() != len(pts) {
		t.Fatalf("Len=%d", d.Len())
	}
	for i, p := range pts {
		if d.At(i) != p {
			t.Fatalf("At(%d) mismatch", i)
		}
	}
	for _, q := range randomPts(8, 300) {
		gi, gd := Nearest(q, pts)
		ti, td := d.Nearest(q)
		if gi != ti || math.Abs(gd-td) > 1e-9 {
			t.Fatalf("query %v: linear (%d, %v) vs index (%d, %v)", q, gi, gd, ti, td)
		}
	}
}

func TestDynamicIndexRemove(t *testing.T) {
	pts := randomPts(9, 100)
	d := NewDynamicIndex(pts)
	if d.Remove(-1) || d.Remove(100) {
		t.Error("out-of-range removal should fail")
	}
	if !d.Remove(40) {
		t.Fatal("removal failed")
	}
	want := append(append([]Point(nil), pts[:40]...), pts[41:]...)
	if d.Len() != 99 {
		t.Fatalf("Len=%d", d.Len())
	}
	for _, q := range randomPts(10, 200) {
		gi, gd := Nearest(q, want)
		ti, td := d.Nearest(q)
		if gi != ti || math.Abs(gd-td) > 1e-9 {
			t.Fatalf("after removal: linear (%d, %v) vs index (%d, %v)", gi, gd, ti, td)
		}
	}
}

func TestDynamicIndexPointsSnapshot(t *testing.T) {
	d := NewDynamicIndex([]Point{Pt(1, 2)})
	d.Insert(Pt(3, 4))
	snap := d.Points()
	if len(snap) != 2 || snap[0] != Pt(1, 2) || snap[1] != Pt(3, 4) {
		t.Errorf("snapshot=%v", snap)
	}
	snap[0] = Pt(9, 9)
	if d.At(0) == Pt(9, 9) {
		t.Error("Points exposes internal state")
	}
}

func TestQuickDynamicIndexAgreesWithLinear(t *testing.T) {
	property := func(raw []uint32, qx, qy uint32) bool {
		if len(raw) > 80 {
			raw = raw[:80]
		}
		pts := make([]Point, 0, len(raw))
		d := NewDynamicIndex(nil)
		for _, r := range raw {
			p := Pt(float64(r%4000), float64((r>>16)%4000))
			pts = append(pts, p)
			d.Insert(p)
		}
		q := Pt(float64(qx%4000), float64(qy%4000))
		gi, gd := Nearest(q, pts)
		ti, td := d.Nearest(q)
		if gi < 0 {
			return ti < 0
		}
		return gi == ti && math.Abs(gd-td) < 1e-9
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestDynamicIndexDifferential10k is the decision-identity proof for the
// placement hot path: over a 10k point set — built incrementally, salted
// with exact duplicates, and thinned by removals — the index must return
// the same winning index and the bit-identical distance as the linear
// geo.Nearest scan for every query.
func TestDynamicIndexDifferential10k(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	d := NewDynamicIndex(nil)
	pts := make([]Point, 0, 10000)
	for len(pts) < 10000 {
		var p Point
		if len(pts) > 0 && rng.Float64() < 0.1 {
			p = pts[rng.IntN(len(pts))] // exact duplicate: tie on distance
		} else {
			p = Pt(rng.Float64()*5000, rng.Float64()*5000)
		}
		pts = append(pts, p)
		d.Insert(p)
	}

	check := func(stage string) {
		t.Helper()
		queries := make([]Point, 0, 2000)
		for i := 0; i < 1500; i++ {
			queries = append(queries, Pt(rng.Float64()*5000, rng.Float64()*5000))
		}
		for i := 0; i < 500; i++ {
			// Queries exactly on indexed points force zero-distance ties.
			queries = append(queries, pts[rng.IntN(len(pts))])
		}
		for _, q := range queries {
			gi, gd := Nearest(q, pts)
			ti, td := d.Nearest(q)
			if gi != ti || gd != td {
				t.Fatalf("%s: query %v: linear (%d, %v) vs index (%d, %v)", stage, q, gi, gd, ti, td)
			}
		}
	}
	check("after inserts")

	for i := 0; i < 300; i++ {
		idx := rng.IntN(len(pts))
		if !d.Remove(idx) {
			t.Fatalf("removal %d at %d failed", i, idx)
		}
		pts = append(pts[:idx], pts[idx+1:]...)
	}
	check("after removals")

	// Interleave fresh inserts with the post-removal state.
	for i := 0; i < 200; i++ {
		p := Pt(rng.Float64()*5000, rng.Float64()*5000)
		pts = append(pts, p)
		if got := d.Insert(p); got != len(pts)-1 {
			t.Fatalf("insert returned %d, want %d", got, len(pts)-1)
		}
	}
	check("after reinserts")
}

// linearWithin is the oracle for KDTree.Within: ascending-index scan
// with the same strict squared-distance membership test.
func linearWithin(q Point, r float64, pts []Point) []int32 {
	var out []int32
	if !(r > 0) {
		return out
	}
	r2 := r * r
	for i, p := range pts {
		if q.Dist2(p) < r2 {
			out = append(out, int32(i))
		}
	}
	return out
}

func sameIndexSet(t *testing.T, label string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d members, want %d (got %v want %v)", label, len(got), len(want), got, want)
	}
	seen := make(map[int32]bool, len(got))
	for _, i := range got {
		if seen[i] {
			t.Fatalf("%s: index %d returned twice", label, i)
		}
		seen[i] = true
	}
	for _, i := range want {
		if !seen[i] {
			t.Fatalf("%s: missing index %d", label, i)
		}
	}
}

func TestKDTreeWithinMatchesLinear(t *testing.T) {
	pts := randomPts(21, 400)
	// Salt with exact duplicates so boundary membership sees ties.
	pts = append(pts, pts[0], pts[17], pts[250])
	tr := BuildKDTree(pts)
	for qi, q := range randomPts(22, 200) {
		for _, r := range []float64{0, 1, 50, 400, 2500, 10000} {
			got := tr.Within(q, r, nil)
			want := linearWithin(q, r, pts)
			sameIndexSet(t, "query", got, want)
			_ = qi
		}
	}
}

func TestKDTreeWithinEdgeCases(t *testing.T) {
	if got := BuildKDTree(nil).Within(Pt(0, 0), 100, nil); len(got) != 0 {
		t.Errorf("empty tree: %v", got)
	}
	pts := []Point{Pt(0, 0), Pt(3, 4), Pt(0, 0)}
	tr := BuildKDTree(pts)
	// r <= 0 and NaN radii are empty by definition (strict inequality).
	for _, r := range []float64{0, -1, math.NaN()} {
		if got := tr.Within(Pt(0, 0), r, nil); len(got) != 0 {
			t.Errorf("r=%v: %v", r, got)
		}
	}
	// Strictness: a point at exactly distance r is not a member.
	sameIndexSet(t, "r=5 exact boundary", tr.Within(Pt(0, 0), 5, nil), []int32{0, 2})
	sameIndexSet(t, "r just above", tr.Within(Pt(0, 0), math.Nextafter(5, 6), nil), []int32{0, 1, 2})
	// dst is appended to, preserving existing contents.
	dst := []int32{99}
	dst = tr.Within(Pt(3, 4), 1, dst)
	sameIndexSet(t, "append to dst", dst, []int32{99, 1})
}

func TestKDTreeWithinDeterministicOrder(t *testing.T) {
	pts := randomPts(23, 300)
	tr := BuildKDTree(pts)
	q := Pt(2500, 2500)
	first := tr.Within(q, 1500, nil)
	for run := 0; run < 5; run++ {
		again := tr.Within(q, 1500, nil)
		if len(again) != len(first) {
			t.Fatalf("run %d: %d members, want %d", run, len(again), len(first))
		}
		for k := range first {
			if again[k] != first[k] {
				t.Fatalf("run %d: order diverged at %d: %d vs %d", run, k, again[k], first[k])
			}
		}
	}
}

func TestQuickKDTreeWithinAgreesWithLinear(t *testing.T) {
	property := func(raw []uint32, qx, qy, rr uint32) bool {
		if len(raw) > 60 {
			raw = raw[:60]
		}
		pts := make([]Point, 0, len(raw))
		for _, r := range raw {
			// Quantised coordinates force frequent exact boundary ties.
			pts = append(pts, Pt(float64(r%50), float64((r>>16)%50)))
		}
		tr := BuildKDTree(pts)
		q := Pt(float64(qx%50), float64(qy%50))
		radius := float64(rr % 80)
		got := tr.Within(q, radius, nil)
		want := linearWithin(q, radius, pts)
		if len(got) != len(want) {
			return false
		}
		seen := make(map[int32]bool, len(got))
		for _, i := range got {
			seen[i] = true
		}
		for _, i := range want {
			if !seen[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKDTreeWithin10k(b *testing.B) {
	tr := BuildKDTree(randomPts(11, 10000))
	q := randomPts(12, 1)[0]
	var dst []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = tr.Within(q, 250, dst[:0])
	}
}

func BenchmarkLinearNearest10k(b *testing.B) {
	pts := randomPts(11, 10000)
	q := randomPts(12, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Nearest(q, pts)
	}
}

func BenchmarkKDTreeNearest10k(b *testing.B) {
	tr := BuildKDTree(randomPts(11, 10000))
	q := randomPts(12, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Nearest(q)
	}
}

// linearKNearestD2 is the oracle for KNearest's distance multiset: the
// min(k, n) smallest squared distances from q, ascending.
func linearKNearestD2(q Point, k int, pts []Point) []float64 {
	d2s := make([]float64, len(pts))
	for i, p := range pts {
		d2s[i] = q.Dist2(p)
	}
	sort.Float64s(d2s)
	if k > len(d2s) {
		k = len(d2s)
	}
	return d2s[:k]
}

func TestKDTreeKNearestMatchesLinear(t *testing.T) {
	pts := randomPts(31, 350)
	// Exact duplicates force ties at the k-th distance.
	pts = append(pts, pts[3], pts[40], pts[40], pts[99])
	tr := BuildKDTree(pts)
	var idx []int32
	var d2s []float64
	for _, k := range []int{1, 2, 7, 64, len(pts), len(pts) + 10} {
		for _, q := range []Point{Pt(0, 0), Pt(2500, 2500), pts[40], Pt(-100, 6000)} {
			idx, d2s = tr.KNearest(q, k, idx, d2s)
			want := linearKNearestD2(q, k, pts)
			if len(idx) != len(want) || len(d2s) != len(want) {
				t.Fatalf("k=%d q=%v: got %d results, want %d", k, q, len(idx), len(want))
			}
			seen := make(map[int32]bool, len(idx))
			got := make([]float64, len(d2s))
			for i, ix := range idx {
				if seen[ix] {
					t.Fatalf("k=%d q=%v: index %d returned twice", k, q, ix)
				}
				seen[ix] = true
				if d := q.Dist2(pts[ix]); math.Float64bits(d) != math.Float64bits(d2s[i]) {
					t.Fatalf("k=%d q=%v: stored d2 %v != recomputed %v for index %d", k, q, d2s[i], d, ix)
				}
				got[i] = d2s[i]
			}
			sort.Float64s(got)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("k=%d q=%v: distance multiset diverges at %d: got %v want %v", k, q, i, got[i], want[i])
				}
			}
		}
	}
}

func TestKDTreeKNearestDeterministicAndReusable(t *testing.T) {
	pts := randomPts(57, 600)
	tr := BuildKDTree(pts)
	q := Pt(1234, 4321)
	firstIdx, firstD2 := tr.KNearest(q, 48, nil, nil)
	wantIdx := append([]int32(nil), firstIdx...)
	wantD2 := append([]float64(nil), firstD2...)
	idx, d2s := firstIdx, firstD2
	for round := 0; round < 5; round++ {
		// Reused buffers must come back identical, entry for entry.
		idx, d2s = tr.KNearest(q, 48, idx, d2s)
		for i := range wantIdx {
			if idx[i] != wantIdx[i] || math.Float64bits(d2s[i]) != math.Float64bits(wantD2[i]) {
				t.Fatalf("round %d: result diverged at %d: (%d, %v) vs (%d, %v)",
					round, i, idx[i], d2s[i], wantIdx[i], wantD2[i])
			}
		}
	}
	if gotIdx, gotD2 := tr.KNearest(q, 0, nil, nil); len(gotIdx) != 0 || len(gotD2) != 0 {
		t.Fatalf("k=0: expected empty result, got %d/%d entries", len(gotIdx), len(gotD2))
	}
	if gotIdx, _ := BuildKDTree(nil).KNearest(q, 5, nil, nil); len(gotIdx) != 0 {
		t.Fatalf("empty tree: expected no results, got %d", len(gotIdx))
	}
}
