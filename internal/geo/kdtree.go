package geo

import (
	"math"
	"sort"
)

// KDTree is a static 2-d tree over a point set, answering nearest-
// neighbour queries in O(log n) expected time. The linear geo.Nearest is
// fine for the station counts of the paper's experiments; the tree is the
// scale path for city-sized deployments (tens of thousands of candidate
// cells), and the dynamic wrapper below supports the placers' append-
// heavy workloads.
type KDTree struct {
	pts   []Point
	nodes []kdNode
	root  int32
}

type kdNode struct {
	idx         int32 // index into pts
	left, right int32 // -1 when absent
	axis        uint8 // 0 = X, 1 = Y
}

// BuildKDTree constructs a balanced tree over pts (copied). An empty
// input yields an empty tree.
func BuildKDTree(pts []Point) *KDTree {
	t := &KDTree{
		pts:   append([]Point(nil), pts...),
		nodes: make([]kdNode, 0, len(pts)),
		root:  -1,
	}
	if len(pts) == 0 {
		return t
	}
	order := make([]int32, len(pts))
	for i := range order {
		order[i] = int32(i)
	}
	t.root = t.build(&kdSorter{pts: t.pts, order: order}, order, 0)
	return t
}

// kdSorter sorts a subrange of the build order along one axis. A single
// instance is threaded through the whole recursive build so constructing
// a tree does not allocate a comparator closure per node — the solver
// builds a tree per solve, and the placers per rebuild.
type kdSorter struct {
	pts   []Point
	order []int32 // current subrange being sorted
	axis  uint8
}

func (s *kdSorter) Len() int { return len(s.order) }

func (s *kdSorter) Less(a, b int) bool {
	pa, pb := s.pts[s.order[a]], s.pts[s.order[b]]
	// Exact comparison is required here: a sort key must induce a
	// total order over the stored coordinates, and epsilon
	// tie-breaking would make it intransitive.
	if s.axis == 0 {
		if pa.X != pb.X { //esharing:allow floateq -- sort key needs an exact total order
			return pa.X < pb.X
		}
	} else if pa.Y != pb.Y { //esharing:allow floateq -- sort key needs an exact total order
		return pa.Y < pb.Y
	}
	return s.order[a] < s.order[b]
}

func (s *kdSorter) Swap(a, b int) {
	s.order[a], s.order[b] = s.order[b], s.order[a]
}

func (t *KDTree) build(sorter *kdSorter, order []int32, depth uint8) int32 {
	if len(order) == 0 {
		return -1
	}
	axis := depth % 2
	sorter.order, sorter.axis = order, axis
	sort.Sort(sorter)
	mid := len(order) / 2
	node := kdNode{idx: order[mid], axis: axis}
	nodeIdx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node)
	left := t.build(sorter, order[:mid], depth+1)
	right := t.build(sorter, order[mid+1:], depth+1)
	t.nodes[nodeIdx].left = left
	t.nodes[nodeIdx].right = right
	return nodeIdx
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

// At returns the i-th indexed point.
func (t *KDTree) At(i int) Point { return t.pts[i] }

// Nearest returns the index and distance of the point closest to q, or
// (-1, +Inf) for an empty tree. Ties resolve to the lowest index,
// matching geo.Nearest.
func (t *KDTree) Nearest(q Point) (int, float64) {
	best, bestD2 := t.nearest2(q)
	if best < 0 {
		return -1, math.Inf(1)
	}
	return best, math.Sqrt(bestD2)
}

// nearest2 is Nearest in squared-distance form, letting callers combine
// tree results with linear candidates without losing exactness to an
// intermediate square root.
func (t *KDTree) nearest2(q Point) (int, float64) {
	best := int32(-1)
	bestD2 := math.Inf(1)
	t.search(t.root, q, &best, &bestD2)
	return int(best), bestD2
}

func (t *KDTree) search(node int32, q Point, best *int32, bestD2 *float64) {
	if node < 0 {
		return
	}
	n := t.nodes[node]
	p := t.pts[n.idx]
	d2 := q.Dist2(p)
	// Exact tie on the squared distance intentionally falls through to
	// the lowest-index rule so the tree matches geo.Nearest bit-for-bit.
	if d2 < *bestD2 || (d2 == *bestD2 && (*best < 0 || n.idx < *best)) { //esharing:allow floateq -- exact tie falls to the lowest index, matching geo.Nearest
		*best = n.idx
		*bestD2 = d2
	}
	var diff float64
	if n.axis == 0 {
		diff = q.X - p.X
	} else {
		diff = q.Y - p.Y
	}
	near, far := n.left, n.right
	if diff > 0 {
		near, far = far, near
	}
	t.search(near, q, best, bestD2)
	if diff*diff <= *bestD2 {
		t.search(far, q, best, bestD2)
	}
}

// Within appends to dst the indices of every indexed point strictly
// closer to q than r (Euclidean distance < r) and returns the extended
// slice. Passing a reused dst[:0] makes repeated queries allocation-free
// once the slice has grown to its working size.
//
// The comparison is performed on squared distances (Dist2(q, p) < r*r);
// callers whose membership condition is natively a squared-distance
// comparison — like the offline solver's neighbourhood invalidation —
// should use WithinDist2 directly and avoid the square-root/re-square
// rounding round-trip. Results come back in the tree's deterministic
// traversal order (node, left, right), which depends only on the
// indexed points; r <= 0, NaN radii and empty trees yield no results.
func (t *KDTree) Within(q Point, r float64, dst []int32) []int32 {
	if !(r > 0) {
		return dst
	}
	return t.WithinDist2(q, r*r, dst)
}

// WithinDist2 is Within with the radius given in squared form: it
// appends the indices of every indexed point p with Dist2(q, p) < r2,
// exactly as the caller's own squared-distance comparisons would
// classify them.
func (t *KDTree) WithinDist2(q Point, r2 float64, dst []int32) []int32 {
	if !(r2 > 0) {
		return dst
	}
	return t.within(t.root, q, r2, dst)
}

func (t *KDTree) within(node int32, q Point, r2 float64, dst []int32) []int32 {
	if node < 0 {
		return dst
	}
	n := t.nodes[node]
	p := t.pts[n.idx]
	if q.Dist2(p) < r2 {
		dst = append(dst, n.idx)
	}
	var diff float64
	if n.axis == 0 {
		diff = q.X - p.X
	} else {
		diff = q.Y - p.Y
	}
	// Any point in the far subtree is at least |diff| from q along the
	// splitting axis, so diff*diff >= r2 proves its distance is >= r and
	// the subtree cannot contain a strict member.
	if diff <= 0 {
		dst = t.within(n.left, q, r2, dst)
		if diff*diff < r2 {
			dst = t.within(n.right, q, r2, dst)
		}
		return dst
	}
	if diff*diff < r2 {
		dst = t.within(n.left, q, r2, dst)
	}
	return t.within(n.right, q, r2, dst)
}

// KNearest collects the k points nearest to q: indices into the tree's
// point set and their squared distances, appended to the reusable dst
// buffers (pass them re-sliced to [:0] for allocation-free queries) and
// returned UNORDERED — callers needing ascending distances sort the
// small result themselves. When the tree holds fewer than k points,
// every point is returned. The traversal maintains a bounded max-heap on
// squared distance and prunes a subtree once the splitting-plane
// distance alone proves it cannot beat the current k-th best; ties at
// the k-th distance resolve by the deterministic traversal order (node,
// left, right), so repeated queries return the same set.
func (t *KDTree) KNearest(q Point, k int, dstIdx []int32, dstD2 []float64) ([]int32, []float64) {
	dstIdx, dstD2 = dstIdx[:0], dstD2[:0]
	if k <= 0 {
		return dstIdx, dstD2
	}
	t.knearest(t.root, q, k, &dstIdx, &dstD2)
	return dstIdx, dstD2
}

func (t *KDTree) knearest(node int32, q Point, k int, idx *[]int32, d2s *[]float64) {
	if node < 0 {
		return
	}
	n := t.nodes[node]
	p := t.pts[n.idx]
	d2 := q.Dist2(p)
	if len(*d2s) < k {
		*idx = append(*idx, n.idx)
		*d2s = append(*d2s, d2)
		siftUpMaxPair(*idx, *d2s)
	} else if d2 < (*d2s)[0] {
		(*idx)[0], (*d2s)[0] = n.idx, d2
		siftDownMaxPair(*idx, *d2s)
	}
	var diff float64
	if n.axis == 0 {
		diff = q.X - p.X
	} else {
		diff = q.Y - p.Y
	}
	near, far := n.left, n.right
	if diff > 0 {
		near, far = far, near
	}
	t.knearest(near, q, k, idx, d2s)
	// The far subtree lies at least |diff| away along the splitting
	// axis; with k results in hand it only matters while it could still
	// beat the current k-th best.
	if len(*d2s) < k || diff*diff < (*d2s)[0] {
		t.knearest(far, q, k, idx, d2s)
	}
}

// siftUpMaxPair restores the max-heap (ordered by d2) after appending.
func siftUpMaxPair(idx []int32, d2s []float64) {
	i := len(d2s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(d2s[parent] < d2s[i]) {
			return
		}
		idx[i], idx[parent] = idx[parent], idx[i]
		d2s[i], d2s[parent] = d2s[parent], d2s[i]
		i = parent
	}
}

// siftDownMaxPair restores the max-heap after replacing the root.
func siftDownMaxPair(idx []int32, d2s []float64) {
	n := len(d2s)
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		m := left
		if right := left + 1; right < n && d2s[left] < d2s[right] {
			m = right
		}
		if !(d2s[i] < d2s[m]) {
			return
		}
		idx[i], idx[m] = idx[m], idx[i]
		d2s[i], d2s[m] = d2s[m], d2s[i]
		i = m
	}
}

// dynamicRebuildSlack bounds the unindexed tail before a rebuild.
const dynamicRebuildSlack = 64

// DynamicIndex maintains nearest-neighbour queries over a growing point
// set: appends go to a linear tail that is folded into the tree once it
// exceeds max(dynamicRebuildSlack, n/4), giving amortised O(log n)
// queries under the placers' append-mostly workload. Indices are stable
// insertion positions.
type DynamicIndex struct {
	tree  *KDTree
	extra []Point // points appended since the last rebuild
}

// NewDynamicIndex starts from an initial point set.
func NewDynamicIndex(pts []Point) *DynamicIndex {
	return &DynamicIndex{tree: BuildKDTree(pts)}
}

// Len returns the total number of indexed points.
func (d *DynamicIndex) Len() int { return d.tree.Len() + len(d.extra) }

// At returns the i-th point in insertion order.
func (d *DynamicIndex) At(i int) Point {
	if i < d.tree.Len() {
		return d.tree.At(i)
	}
	return d.extra[i-d.tree.Len()]
}

// Insert appends p, returning its stable index.
func (d *DynamicIndex) Insert(p Point) int {
	d.extra = append(d.extra, p)
	idx := d.Len() - 1
	threshold := d.tree.Len() / 4
	if threshold < dynamicRebuildSlack {
		threshold = dynamicRebuildSlack
	}
	if len(d.extra) > threshold {
		d.rebuild()
	}
	return idx
}

// Remove deletes the i-th point; later indices shift down by one
// (matching slice deletion semantics in the placers). It rebuilds the
// tree, so it should stay rare relative to queries.
func (d *DynamicIndex) Remove(i int) bool {
	n := d.Len()
	if i < 0 || i >= n {
		return false
	}
	all := d.snapshot()
	all = append(all[:i], all[i+1:]...)
	d.tree = BuildKDTree(all)
	d.extra = nil
	return true
}

// Nearest returns the index and distance of the closest point, or
// (-1, +Inf) when empty. Ties resolve to the lowest insertion index, and
// both the winning index and the returned distance are bit-identical to
// geo.Nearest over the same points: all comparisons use squared
// distances and the square root is taken once at the end, exactly as the
// linear scan does.
func (d *DynamicIndex) Nearest(q Point) (int, float64) {
	bestIdx, bestD2 := d.tree.nearest2(q)
	for k, p := range d.extra {
		if d2 := q.Dist2(p); d2 < bestD2 {
			bestIdx, bestD2 = d.tree.Len()+k, d2
		}
	}
	if bestIdx < 0 {
		return -1, math.Inf(1)
	}
	return bestIdx, math.Sqrt(bestD2)
}

// Points returns the indexed points in insertion order.
func (d *DynamicIndex) Points() []Point { return d.snapshot() }

func (d *DynamicIndex) snapshot() []Point {
	out := make([]Point, 0, d.Len())
	out = append(out, d.tree.pts...)
	out = append(out, d.extra...)
	return out
}

func (d *DynamicIndex) rebuild() {
	d.tree = BuildKDTree(d.snapshot())
	d.extra = nil
}
