package geo

import (
	"errors"
	"math/rand/v2"
	"testing"
)

func testGrid(t *testing.T) *Grid {
	t.Helper()
	g, err := NewGrid(Square(Pt(0, 0), 3000), 100)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	tests := []struct {
		name     string
		box      BBox
		cellSize float64
		wantErr  bool
	}{
		{"valid", Square(Pt(0, 0), 1000), 100, false},
		{"zero cell", Square(Pt(0, 0), 1000), 0, true},
		{"negative cell", Square(Pt(0, 0), 1000), -5, true},
		{"degenerate box", BBox{}, 100, true},
		{"inverted box", BBox{MinX: 10, MaxX: 0, MinY: 0, MaxY: 10}, 1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewGrid(tt.box, tt.cellSize)
			if (err != nil) != tt.wantErr {
				t.Errorf("err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestGridDimensions(t *testing.T) {
	g := testGrid(t)
	if g.Cols() != 30 || g.Rows() != 30 {
		t.Errorf("got %dx%d, want 30x30", g.Cols(), g.Rows())
	}
	if g.NumCells() != 900 {
		t.Errorf("NumCells=%d, want 900", g.NumCells())
	}
	// A 3x3 km field with 100 m cells is exactly the paper's setup
	// (23.9K bins come from the full city; the experiment field is 3x3 km).
	if g.CellSize() != 100 {
		t.Errorf("CellSize=%v, want 100", g.CellSize())
	}
}

func TestGridPartialCells(t *testing.T) {
	g, err := NewGrid(NewBBox(Pt(0, 0), Pt(250, 199)), 100)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	if g.Cols() != 3 || g.Rows() != 2 {
		t.Errorf("got %dx%d, want 3x2", g.Cols(), g.Rows())
	}
}

func TestCellOf(t *testing.T) {
	g := testGrid(t)
	tests := []struct {
		name    string
		p       Point
		want    Cell
		wantErr bool
	}{
		{"origin corner", Pt(0, 0), Cell{0, 0}, false},
		{"inside first", Pt(99.9, 99.9), Cell{0, 0}, false},
		{"second col", Pt(100, 0), Cell{1, 0}, false},
		{"center", Pt(1550, 1550), Cell{15, 15}, false},
		{"outer edge clamps in", Pt(3000, 3000), Cell{29, 29}, false},
		{"outside", Pt(-1, 0), Cell{}, true},
		{"far outside", Pt(5000, 5000), Cell{}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := g.CellOf(tt.p)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err=%v, wantErr=%v", err, tt.wantErr)
			}
			if err != nil {
				if !errors.Is(err, ErrOutsideGrid) {
					t.Errorf("error should wrap ErrOutsideGrid, got %v", err)
				}
				return
			}
			if got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestClampedCellOf(t *testing.T) {
	g := testGrid(t)
	tests := []struct {
		name string
		p    Point
		want Cell
	}{
		{"inside unchanged", Pt(150, 250), Cell{1, 2}},
		{"left of box", Pt(-500, 150), Cell{0, 1}},
		{"above box", Pt(150, 9999), Cell{1, 29}},
		{"corner overflow", Pt(1e9, -1e9), Cell{29, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := g.ClampedCellOf(tt.p); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCentroidInsideOwnCell(t *testing.T) {
	g := testGrid(t)
	for r := 0; r < g.Rows(); r += 7 {
		for c := 0; c < g.Cols(); c += 7 {
			cell := Cell{Col: c, Row: r}
			got, err := g.CellOf(g.Centroid(cell))
			if err != nil {
				t.Fatalf("centroid of %v outside grid: %v", cell, err)
			}
			if got != cell {
				t.Errorf("centroid of %v maps to %v", cell, got)
			}
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	g := testGrid(t)
	for idx := 0; idx < g.NumCells(); idx += 13 {
		cell, err := g.CellAt(idx)
		if err != nil {
			t.Fatalf("CellAt(%d): %v", idx, err)
		}
		if back := g.Index(cell); back != idx {
			t.Errorf("Index(CellAt(%d)) = %d", idx, back)
		}
	}
	if g.Index(Cell{Col: -1, Row: 0}) != -1 || g.Index(Cell{Col: 0, Row: 99}) != -1 {
		t.Error("out-of-range cells should index to -1")
	}
	if _, err := g.CellAt(-1); err == nil {
		t.Error("CellAt(-1) should error")
	}
	if _, err := g.CellAt(g.NumCells()); err == nil {
		t.Error("CellAt(NumCells) should error")
	}
}

func TestCentroids(t *testing.T) {
	g, err := NewGrid(Square(Pt(0, 0), 200), 100)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	got := g.Centroids()
	want := []Point{Pt(50, 50), Pt(150, 50), Pt(50, 150), Pt(150, 150)}
	if len(got) != len(want) {
		t.Fatalf("len=%d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("centroid[%d]=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestHistogram(t *testing.T) {
	g, err := NewGrid(Square(Pt(0, 0), 200), 100)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	pts := []Point{Pt(10, 10), Pt(20, 20), Pt(150, 50), Pt(-5, 300)}
	counts := g.Histogram(pts)
	want := []int{2, 1, 1, 0} // stray point clamps to cell (0,1) = index 2
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts[%d]=%d, want %d", i, counts[i], want[i])
		}
	}
}

func TestHistogramTotalPreserved(t *testing.T) {
	g := testGrid(t)
	rng := rand.New(rand.NewPCG(21, 22))
	pts := make([]Point, 1000)
	for i := range pts {
		// Half inside, half potentially outside.
		pts[i] = Pt(rng.Float64()*6000-1500, rng.Float64()*6000-1500)
	}
	total := 0
	for _, c := range g.Histogram(pts) {
		total += c
	}
	if total != len(pts) {
		t.Errorf("histogram total %d, want %d", total, len(pts))
	}
}

func TestBBox(t *testing.T) {
	b := NewBBox(Pt(10, 20), Pt(-5, 3))
	if b.MinX != -5 || b.MaxX != 10 || b.MinY != 3 || b.MaxY != 20 {
		t.Errorf("NewBBox normalization wrong: %v", b)
	}
	if b.Width() != 15 || b.Height() != 17 {
		t.Errorf("dims: w=%v h=%v", b.Width(), b.Height())
	}
	if !almostEqual(b.Area(), 255, 1e-12) {
		t.Errorf("Area=%v", b.Area())
	}
	if c := b.Center(); c != Pt(2.5, 11.5) {
		t.Errorf("Center=%v", c)
	}
	if !b.Contains(Pt(0, 10)) || b.Contains(Pt(11, 10)) {
		t.Error("Contains wrong")
	}
	if got := b.Clamp(Pt(100, -100)); got != Pt(10, 3) {
		t.Errorf("Clamp=%v", got)
	}
}

func TestBound(t *testing.T) {
	if got := Bound(nil); got != (BBox{}) {
		t.Errorf("Bound(nil)=%v", got)
	}
	pts := []Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)}
	got := Bound(pts)
	want := BBox{MinX: -2, MinY: -1, MaxX: 4, MaxY: 5}
	if got != want {
		t.Errorf("Bound=%v, want %v", got, want)
	}
	for _, p := range pts {
		if !got.Contains(p) {
			t.Errorf("Bound does not contain %v", p)
		}
	}
}

func TestBoundContainsAllProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 41))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(30)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*2000-1000, rng.Float64()*2000-1000)
		}
		b := Bound(pts)
		for _, p := range pts {
			if !b.Contains(p) {
				t.Fatalf("Bound %v misses %v", b, p)
			}
		}
	}
}
