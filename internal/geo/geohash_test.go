package geo

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

func TestEncodeGeohashKnownValues(t *testing.T) {
	// Reference values cross-checked against the canonical geohash
	// implementation.
	tests := []struct {
		name      string
		ll        LatLng
		precision int
		want      string
	}{
		{"ezs42 classic", LatLng{Lat: 42.605, Lng: -5.603}, 5, "ezs42"},
		{"beijing 7", LatLng{Lat: 39.9042, Lng: 116.4074}, 7, "wx4g0bm"},
		{"null island", LatLng{Lat: 0, Lng: 0}, 6, "s00000"},
		{"single char", LatLng{Lat: 48.6, Lng: -4.2}, 1, "g"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := EncodeGeohash(tt.ll, tt.precision)
			if err != nil {
				t.Fatalf("EncodeGeohash: %v", err)
			}
			if got != tt.want {
				t.Errorf("got %q, want %q", got, tt.want)
			}
		})
	}
}

func TestEncodeGeohashPrecisionValidation(t *testing.T) {
	for _, p := range []int{0, -1, 13} {
		if _, err := EncodeGeohash(LatLng{}, p); err == nil {
			t.Errorf("precision %d should error", p)
		}
	}
}

func TestDecodeGeohashErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"letter a excluded", "wx4a"},
		{"letter i excluded", "wi4"},
		{"letter l excluded", "wl4"},
		{"letter o excluded", "wo4"},
		{"uppercase", "WX4"},
		{"non ascii", "wx4\xc3\xa9"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, _, err := DecodeGeohash(tt.in); !errors.Is(err, ErrInvalidGeohash) {
				t.Errorf("want ErrInvalidGeohash, got %v", err)
			}
		})
	}
}

func TestGeohashRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	for i := 0; i < 300; i++ {
		ll := LatLng{Lat: rng.Float64()*170 - 85, Lng: rng.Float64()*360 - 180}
		precision := 1 + rng.IntN(12)
		h, err := EncodeGeohash(ll, precision)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if len(h) != precision {
			t.Fatalf("len(%q)=%d, want %d", h, len(h), precision)
		}
		center, latErr, lngErr, err := DecodeGeohash(h)
		if err != nil {
			t.Fatalf("decode %q: %v", h, err)
		}
		if math.Abs(center.Lat-ll.Lat) > latErr+1e-12 {
			t.Fatalf("lat error: %v vs center %v (±%v)", ll.Lat, center.Lat, latErr)
		}
		if math.Abs(center.Lng-ll.Lng) > lngErr+1e-12 {
			t.Fatalf("lng error: %v vs center %v (±%v)", ll.Lng, center.Lng, lngErr)
		}
	}
}

func TestGeohashPrefixNesting(t *testing.T) {
	// A longer geohash must lie inside the cell of every prefix.
	ll := LatLng{Lat: 39.985, Lng: 116.318}
	full, err := EncodeGeohash(ll, 9)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for p := 1; p < 9; p++ {
		prefix, err := EncodeGeohash(ll, p)
		if err != nil {
			t.Fatalf("encode precision %d: %v", p, err)
		}
		if full[:p] != prefix {
			t.Errorf("precision %d: %q is not a prefix of %q", p, prefix, full)
		}
	}
}

func TestGeohash7CellSize(t *testing.T) {
	// Precision 7 cells are ~153 m x 153 m at the equator, in line with the
	// dataset's 100x100 m binning claim.
	_, latErr, lngErr, err := DecodeGeohash("wx4g0bm")
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	latM := latErr * 2 * 111_000
	lngM := lngErr * 2 * 111_000 * math.Cos(39.9*math.Pi/180)
	if latM < 100 || latM > 200 {
		t.Errorf("precision-7 lat cell = %.1f m, want 100-200", latM)
	}
	if lngM < 80 || lngM > 200 {
		t.Errorf("precision-7 lng cell = %.1f m, want 80-200", lngM)
	}
}
