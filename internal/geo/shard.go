package geo

// Planar shard keys for geo-sharded serving. The server partitions its
// placement state by city region: every destination maps to a quadtree
// cell of a fixed planar world box, and cells map to shards. The cell
// subdivision is exactly the geohash bisection (longitude-first
// interleaved bits, ties to the upper half), run over pseudo-coordinates
// scaled from the planar frame, so the key has the same
// prefix-containment property as a geohash: two points share a
// precision-p key iff they share the same p-character cell.
//
// The mapping is pure arithmetic on the input point — no state, no
// wall-clock, no randomness — so routing is deterministic, including
// for destinations exactly on a cell boundary (the >= comparison always
// sends the boundary to the upper half, like EncodeGeohash).

// PlanarWorldExtent is the half-width in metres of the fixed world box
// the planar quadtree subdivides. Half the Earth's circumference plus
// slack: any tangent-plane projection of real coordinates lands inside
// it, and points beyond clamp to the border cells.
const PlanarWorldExtent = 25_000_000.0

// DefaultShardPrecision gives ~49 km cells in the planar frame: a cell
// per city for multi-city fleets. Use 6–7 (~3 km / ~760 m) to shard
// within a single city.
const DefaultShardPrecision = 4

// clampShardPrecision bounds precision to the geohash range [1, 12].
func clampShardPrecision(precision int) int {
	if precision < 1 {
		return 1
	}
	if precision > 12 {
		return 12
	}
	return precision
}

// PlanarCellID returns p's quadtree cell at the given precision (1..12;
// out-of-range values clamp) as a 5·precision-bit integer. The bits are
// exactly the geohash bits of the pseudo-coordinates — see
// PlanarShardKey for the base32 rendering. Allocation-free: this runs
// on the placement hot path for every routed request.
//
//esharing:hotpath
func PlanarCellID(p Point, precision int) uint64 {
	precision = clampShardPrecision(precision)
	// Scale the planar frame onto the geohash lat/lng domain. Values
	// beyond the world box clamp to the border; NaN fails every >=
	// comparison below and lands deterministically in the all-zero cell.
	lng := p.X / PlanarWorldExtent * 180
	lat := p.Y / PlanarWorldExtent * 90
	if lng > 180 {
		lng = 180
	} else if lng < -180 {
		lng = -180
	}
	if lat > 90 {
		lat = 90
	} else if lat < -90 {
		lat = -90
	}
	latLo, latHi := -90.0, 90.0
	lngLo, lngHi := -180.0, 180.0
	var id uint64
	even := true // longitude first, as in EncodeGeohash
	for bit := 0; bit < precision*5; bit++ {
		id <<= 1
		if even {
			mid := (lngLo + lngHi) / 2
			if lng >= mid {
				id |= 1
				lngLo = mid
			} else {
				lngHi = mid
			}
		} else {
			mid := (latLo + latHi) / 2
			if lat >= mid {
				id |= 1
				latLo = mid
			} else {
				latHi = mid
			}
		}
		even = !even
	}
	return id
}

// PlanarShardKey renders PlanarCellID in the geohash base32 alphabet: a
// stable, human-readable spatial key (shard diagnostics, per-shard
// directory names). It equals EncodeGeohash of the pseudo-coordinates.
func PlanarShardKey(p Point, precision int) string {
	precision = clampShardPrecision(precision)
	id := PlanarCellID(p, precision)
	buf := make([]byte, precision)
	for i := precision - 1; i >= 0; i-- {
		buf[i] = geohashAlphabet[id&31]
		id >>= 5
	}
	return string(buf)
}

// FNV-1a 64-bit parameters (hash/fnv's constants, inlined so the hot
// path hashes eight bytes without an allocation or interface call).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// ShardOf maps p to a shard index in [0, shards): the FNV-1a hash of
// its planar cell, mod shards. Every point in a cell routes to the same
// shard, and distinct cells (distinct cities, or distinct neighbourhoods
// at higher precisions) spread across shards by hash. shards <= 1
// always returns 0.
//
//esharing:hotpath
func ShardOf(p Point, precision, shards int) int {
	if shards <= 1 {
		return 0
	}
	id := PlanarCellID(p, precision)
	h := uint64(fnvOffset64)
	for i := 56; i >= 0; i -= 8 {
		h ^= (id >> uint(i)) & 0xff
		h *= fnvPrime64
	}
	return int(h % uint64(shards))
}
