package geo

import (
	"errors"
	"fmt"
	"strings"
)

// The Mobike dataset geohashes trip start and end locations. This file
// implements standard geohash (base32, interleaved bit) encoding and
// decoding so the dataset codec can round-trip the original schema.

const geohashAlphabet = "0123456789bcdefghjkmnpqrstuvwxyz"

// ErrInvalidGeohash is returned for strings containing characters outside
// the geohash base32 alphabet or with zero length.
var ErrInvalidGeohash = errors.New("geo: invalid geohash")

var geohashIndex = buildGeohashIndex()

func buildGeohashIndex() [256]int8 {
	var idx [256]int8
	for i := range idx {
		idx[i] = -1
	}
	for i := 0; i < len(geohashAlphabet); i++ {
		idx[geohashAlphabet[i]] = int8(i)
	}
	return idx
}

// EncodeGeohash encodes ll into a geohash of the given precision
// (1..12 characters). Precision 7 gives roughly 150x150 m cells, matching
// the dataset's granularity.
func EncodeGeohash(ll LatLng, precision int) (string, error) {
	if precision < 1 || precision > 12 {
		return "", fmt.Errorf("geo: geohash precision %d out of range [1,12]", precision)
	}
	latLo, latHi := -90.0, 90.0
	lngLo, lngHi := -180.0, 180.0
	var sb strings.Builder
	sb.Grow(precision)
	even := true // longitude first
	bit, ch := 0, 0
	for sb.Len() < precision {
		if even {
			mid := (lngLo + lngHi) / 2
			if ll.Lng >= mid {
				ch = ch<<1 | 1
				lngLo = mid
			} else {
				ch <<= 1
				lngHi = mid
			}
		} else {
			mid := (latLo + latHi) / 2
			if ll.Lat >= mid {
				ch = ch<<1 | 1
				latLo = mid
			} else {
				ch <<= 1
				latHi = mid
			}
		}
		even = !even
		bit++
		if bit == 5 {
			sb.WriteByte(geohashAlphabet[ch])
			bit, ch = 0, 0
		}
	}
	return sb.String(), nil
}

// DecodeGeohash decodes h into the centre of its cell along with the cell's
// half-extents in degrees.
func DecodeGeohash(h string) (center LatLng, latErr, lngErr float64, err error) {
	return decodeGeohash(h)
}

// DecodeGeohashBytes is DecodeGeohash over a byte slice. The streaming CSV
// scanner decodes geohash fields in place without materialising a string;
// both entry points share one generic implementation so the float
// bisection is bit-identical between them.
func DecodeGeohashBytes(h []byte) (center LatLng, latErr, lngErr float64, err error) {
	return decodeGeohash(h)
}

func decodeGeohash[T ~string | ~[]byte](h T) (center LatLng, latErr, lngErr float64, err error) {
	if len(h) == 0 {
		return LatLng{}, 0, 0, ErrInvalidGeohash
	}
	latLo, latHi := -90.0, 90.0
	lngLo, lngHi := -180.0, 180.0
	even := true
	for i := 0; i < len(h); i++ {
		c := h[i]
		v := int8(-1)
		if c < 128 {
			v = geohashIndex[c]
		}
		if v < 0 {
			return LatLng{}, 0, 0, fmt.Errorf("%w: byte %q at %d", ErrInvalidGeohash, c, i)
		}
		for b := 4; b >= 0; b-- {
			bit := (v >> uint(b)) & 1
			if even {
				mid := (lngLo + lngHi) / 2
				if bit == 1 {
					lngLo = mid
				} else {
					lngHi = mid
				}
			} else {
				mid := (latLo + latHi) / 2
				if bit == 1 {
					latLo = mid
				} else {
					latHi = mid
				}
			}
			even = !even
		}
	}
	center = LatLng{Lat: (latLo + latHi) / 2, Lng: (lngLo + lngHi) / 2}
	return center, (latHi - latLo) / 2, (lngHi - lngLo) / 2, nil
}
