package geo

import (
	"fmt"
	"math"
)

// BBox is an axis-aligned rectangle [MinX, MaxX] x [MinY, MaxY] in metres.
type BBox struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewBBox returns the box spanning the two corner points in either order.
func NewBBox(a, b Point) BBox {
	return BBox{
		MinX: math.Min(a.X, b.X),
		MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X),
		MaxY: math.Max(a.Y, b.Y),
	}
}

// Square returns the square box with the given lower-left corner and side.
func Square(origin Point, side float64) BBox {
	return BBox{MinX: origin.X, MinY: origin.Y, MaxX: origin.X + side, MaxY: origin.Y + side}
}

// Width returns the X extent of the box.
func (b BBox) Width() float64 { return b.MaxX - b.MinX }

// Height returns the Y extent of the box.
func (b BBox) Height() float64 { return b.MaxY - b.MinY }

// Area returns the box area in square metres.
func (b BBox) Area() float64 { return b.Width() * b.Height() }

// Center returns the box centroid.
func (b BBox) Center() Point {
	return Point{X: (b.MinX + b.MaxX) / 2, Y: (b.MinY + b.MaxY) / 2}
}

// Contains reports whether p lies inside the box (inclusive of edges).
func (b BBox) Contains(p Point) bool {
	return p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// Clamp returns the point in the box closest to p.
func (b BBox) Clamp(p Point) Point {
	return Point{
		X: math.Max(b.MinX, math.Min(b.MaxX, p.X)),
		Y: math.Max(b.MinY, math.Min(b.MaxY, p.Y)),
	}
}

// Extend returns the smallest box containing both b and p. A zero-valued
// BBox is treated as empty only by ExtendAll; Extend assumes b is valid.
func (b BBox) Extend(p Point) BBox {
	return BBox{
		MinX: math.Min(b.MinX, p.X),
		MinY: math.Min(b.MinY, p.Y),
		MaxX: math.Max(b.MaxX, p.X),
		MaxY: math.Max(b.MaxY, p.Y),
	}
}

// Bound returns the tightest box containing all pts, or a zero box when pts
// is empty.
func Bound(pts []Point) BBox {
	if len(pts) == 0 {
		return BBox{}
	}
	b := BBox{MinX: pts[0].X, MinY: pts[0].Y, MaxX: pts[0].X, MaxY: pts[0].Y}
	for _, p := range pts[1:] {
		b = b.Extend(p)
	}
	return b
}

// String implements fmt.Stringer.
func (b BBox) String() string {
	return fmt.Sprintf("[%.1f,%.1f]x[%.1f,%.1f]", b.MinX, b.MaxX, b.MinY, b.MaxY)
}
