package geo

import (
	"errors"
	"fmt"
)

// ErrOutsideGrid is returned when a point falls outside a Grid's bounding
// box and clamping was not requested.
var ErrOutsideGrid = errors.New("geo: point outside grid")

// Cell identifies a grid cell by column (X direction) and row (Y direction).
type Cell struct {
	Col int `json:"col"`
	Row int `json:"row"`
}

// String implements fmt.Stringer.
func (c Cell) String() string { return fmt.Sprintf("cell(%d,%d)", c.Col, c.Row) }

// Grid divides a bounding box into uniform square cells. The paper divides
// the metropolitan area into 100x100 m grids whose centroids are the
// candidate parking locations (Section III-A).
type Grid struct {
	box      BBox
	cellSize float64
	cols     int
	rows     int
}

// NewGrid builds a grid over box with the given cell side in metres. The
// rightmost column and topmost row may be partial; points on the outer edge
// map into the last full index.
func NewGrid(box BBox, cellSize float64) (*Grid, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("geo: cell size must be positive, got %v", cellSize)
	}
	if box.Width() <= 0 || box.Height() <= 0 {
		return nil, fmt.Errorf("geo: degenerate grid box %v", box)
	}
	cols := int(box.Width()/cellSize + 0.999999)
	rows := int(box.Height()/cellSize + 0.999999)
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{box: box, cellSize: cellSize, cols: cols, rows: rows}, nil
}

// MustGrid is NewGrid that panics on invalid input; intended for tests and
// package-level configuration of constants.
func MustGrid(box BBox, cellSize float64) *Grid {
	g, err := NewGrid(box, cellSize)
	if err != nil {
		panic(err)
	}
	return g
}

// Box returns the grid's bounding box.
func (g *Grid) Box() BBox { return g.box }

// CellSize returns the cell side length in metres.
func (g *Grid) CellSize() float64 { return g.cellSize }

// Cols returns the number of columns.
func (g *Grid) Cols() int { return g.cols }

// Rows returns the number of rows.
func (g *Grid) Rows() int { return g.rows }

// NumCells returns Cols*Rows.
func (g *Grid) NumCells() int { return g.cols * g.rows }

// CellOf maps p to its containing cell. It returns ErrOutsideGrid when p is
// outside the bounding box.
func (g *Grid) CellOf(p Point) (Cell, error) {
	if !g.box.Contains(p) {
		return Cell{}, fmt.Errorf("%w: %v not in %v", ErrOutsideGrid, p, g.box)
	}
	return g.clampedCellOf(p), nil
}

// ClampedCellOf maps p to the nearest cell, clamping points outside the box
// onto the boundary.
func (g *Grid) ClampedCellOf(p Point) Cell {
	return g.clampedCellOf(g.box.Clamp(p))
}

func (g *Grid) clampedCellOf(p Point) Cell {
	col := int((p.X - g.box.MinX) / g.cellSize)
	row := int((p.Y - g.box.MinY) / g.cellSize)
	if col >= g.cols {
		col = g.cols - 1
	}
	if row >= g.rows {
		row = g.rows - 1
	}
	if col < 0 {
		col = 0
	}
	if row < 0 {
		row = 0
	}
	return Cell{Col: col, Row: row}
}

// Centroid returns the centre point of cell c. Out-of-range cells are
// clamped to the grid.
func (g *Grid) Centroid(c Cell) Point {
	if c.Col < 0 {
		c.Col = 0
	}
	if c.Row < 0 {
		c.Row = 0
	}
	if c.Col >= g.cols {
		c.Col = g.cols - 1
	}
	if c.Row >= g.rows {
		c.Row = g.rows - 1
	}
	return Point{
		X: g.box.MinX + (float64(c.Col)+0.5)*g.cellSize,
		Y: g.box.MinY + (float64(c.Row)+0.5)*g.cellSize,
	}
}

// Index linearises c in row-major order. It returns -1 for out-of-range
// cells.
func (g *Grid) Index(c Cell) int {
	if c.Col < 0 || c.Row < 0 || c.Col >= g.cols || c.Row >= g.rows {
		return -1
	}
	return c.Row*g.cols + c.Col
}

// CellAt inverts Index. It returns an error for out-of-range indices.
func (g *Grid) CellAt(idx int) (Cell, error) {
	if idx < 0 || idx >= g.NumCells() {
		return Cell{}, fmt.Errorf("geo: cell index %d out of range [0,%d)", idx, g.NumCells())
	}
	return Cell{Col: idx % g.cols, Row: idx / g.cols}, nil
}

// Centroids returns the centroid of every cell in row-major order.
func (g *Grid) Centroids() []Point {
	pts := make([]Point, 0, g.NumCells())
	for r := 0; r < g.rows; r++ {
		for c := 0; c < g.cols; c++ {
			pts = append(pts, g.Centroid(Cell{Col: c, Row: r}))
		}
	}
	return pts
}

// Histogram counts points per cell (clamping strays onto the boundary) and
// returns counts in row-major order.
func (g *Grid) Histogram(pts []Point) []int {
	counts := make([]int, g.NumCells())
	for _, p := range pts {
		counts[g.Index(g.ClampedCellOf(p))]++
	}
	return counts
}
