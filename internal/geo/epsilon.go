package geo

import "math"

// Eps is the default tolerance for AlmostEqual: generous enough to
// absorb accumulated rounding across a few chained operations on
// city-scale metre coordinates, far below any physically meaningful
// distance.
const Eps = 1e-9

// AlmostEqual reports whether a and b differ by at most eps in absolute
// terms or relative to the larger magnitude, whichever is looser. Pass
// eps <= 0 to use Eps. This is the comparison the floateq analyzer
// points to: float == / != in non-test code is almost always a rounding
// bug; the few sites that genuinely need exact comparison (sort keys,
// sentinel guards) carry an //esharing:allow floateq waiver instead.
func AlmostEqual(a, b, eps float64) bool {
	if eps <= 0 {
		eps = Eps
	}
	if a == b { //esharing:allow floateq -- fast path; handles equal infinities
		return true // fast path, also handles equal infinities
	}
	diff := math.Abs(a - b)
	if math.IsInf(diff, 0) || math.IsNaN(diff) {
		// Opposite infinities or a NaN operand: never almost equal
		// (equal infinities already returned via the fast path, and
		// eps*Inf = Inf would otherwise satisfy the relative test).
		return false
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= eps || diff <= eps*scale
}
