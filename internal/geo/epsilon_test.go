package geo

import (
	"math"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		name string
		a, b float64
		eps  float64
		want bool
	}{
		{"identical", 1.5, 1.5, 0, true},
		{"within default eps", 1, 1 + 1e-12, 0, true},
		{"relative tolerance at scale", 1e12, 1e12 * (1 + 1e-10), 0, true},
		{"clearly different", 1, 2, 0, false},
		{"explicit eps accepts", 100, 100.5, 1, true},
		{"explicit eps rejects", 100, 102, 1e-3, false},
		{"zero vs tiny", 0, 1e-12, 0, true},
		{"equal infinities", math.Inf(1), math.Inf(1), 0, true},
		{"opposite infinities", math.Inf(1), math.Inf(-1), 0, false},
		{"nan never equal", math.NaN(), math.NaN(), 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := AlmostEqual(tc.a, tc.b, tc.eps); got != tc.want {
				t.Fatalf("AlmostEqual(%v, %v, %v) = %v, want %v", tc.a, tc.b, tc.eps, got, tc.want)
			}
			if got := AlmostEqual(tc.b, tc.a, tc.eps); got != tc.want {
				t.Fatalf("AlmostEqual is asymmetric for (%v, %v)", tc.a, tc.b)
			}
		})
	}
}
