package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuickGeohashRoundTrip(t *testing.T) {
	property := func(latRaw, lngRaw uint32, precRaw uint8) bool {
		ll := LatLng{
			Lat: float64(latRaw%170_000)/1000 - 85,
			Lng: float64(lngRaw%360_000)/1000 - 180,
		}
		precision := int(precRaw)%12 + 1
		h, err := EncodeGeohash(ll, precision)
		if err != nil || len(h) != precision {
			return false
		}
		center, latErr, lngErr, err := DecodeGeohash(h)
		if err != nil {
			return false
		}
		return math.Abs(center.Lat-ll.Lat) <= latErr+1e-9 &&
			math.Abs(center.Lng-ll.Lng) <= lngErr+1e-9
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickGridCellContainsPoint(t *testing.T) {
	grid := MustGrid(Square(Pt(0, 0), 5000), 100)
	property := func(xRaw, yRaw uint32) bool {
		p := Pt(float64(xRaw%5000), float64(yRaw%5000))
		cell, err := grid.CellOf(p)
		if err != nil {
			return false
		}
		// The centroid of the cell must be within half a diagonal.
		c := grid.Centroid(cell)
		if p.Dist(c) > 100*math.Sqrt2/2+1e-9 {
			return false
		}
		// Index round trip.
		idx := grid.Index(cell)
		back, err := grid.CellAt(idx)
		return err == nil && back == cell
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickClampInsideBox(t *testing.T) {
	box := NewBBox(Pt(-100, -50), Pt(300, 250))
	property := func(xRaw, yRaw int32) bool {
		p := Pt(float64(xRaw%10000), float64(yRaw%10000))
		c := box.Clamp(p)
		if !box.Contains(c) {
			return false
		}
		// Clamp is idempotent and identity for inside points.
		if box.Contains(p) && c != p {
			return false
		}
		return box.Clamp(c) == c
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickProjectorRoundTrip(t *testing.T) {
	pr := NewProjector(LatLng{Lat: 39.9, Lng: 116.4})
	property := func(xRaw, yRaw int32) bool {
		p := Pt(float64(xRaw%100000)/10, float64(yRaw%100000)/10)
		back := pr.ToPlane(pr.ToLatLng(p))
		return math.Abs(back.X-p.X) < 1e-5 && math.Abs(back.Y-p.Y) < 1e-5
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
