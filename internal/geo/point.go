// Package geo provides the planar geometry primitives used throughout
// E-Sharing: points, Euclidean distances, bounding boxes, uniform grids and
// geohash encoding compatible with the Mobike dataset.
//
// The paper works in a projected Euclidean plane measured in metres; all
// tier-1 costs are expressed as walking distances in that plane. Latitude /
// longitude coordinates from trip records are projected with an
// equirectangular approximation, which is accurate to well under 0.1% over
// the few-kilometre fields the experiments use.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the projected plane, in metres.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{X: p.X + q.X, Y: p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{X: p.X - q.X, Y: p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{X: p.X * s, Y: p.Y * s} }

// Dist returns the Euclidean distance between p and q in metres. This is the
// paper's walking-distance metric d_ij (Definition 1).
//
// It is sqrt(Dist2(p, q)) — one hardware square root over the same
// squared form every nearest-neighbour comparison uses — rather than
// math.Hypot: coordinates are metres across a city, so the overflow
// protection Hypot buys costs an order of magnitude in the solvers' hot
// loops for no reachable input. Because sqrt is correctly rounded and
// monotone, Dist comparisons agree with Dist2 comparisons up to exact
// rounding ties, which is exactly the property the offline solver's
// radius queries reason from.
func (p Point) Dist(q Point) float64 {
	return math.Sqrt(p.Dist2(q))
}

// Dist2 returns the squared Euclidean distance, useful for nearest-neighbour
// comparisons where the square root is unnecessary.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the distance of p from the origin.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Centroid returns the arithmetic mean of pts. It returns the zero Point for
// an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	return c.Scale(1 / float64(len(pts)))
}

// Nearest returns the index of the point in pts closest to p and its
// distance. It returns (-1, +Inf) for an empty slice.
func Nearest(p Point, pts []Point) (int, float64) {
	best, bestD2 := -1, math.Inf(1)
	for i, q := range pts {
		if d2 := p.Dist2(q); d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	if best < 0 {
		return -1, math.Inf(1)
	}
	return best, math.Sqrt(bestD2)
}

// MinPairwiseDist returns the minimum distance over all unordered pairs in
// pts. It returns +Inf when fewer than two points are given. Algorithm 2
// uses w* = MinPairwiseDist(P)/2 to rescale opening costs.
func MinPairwiseDist(pts []Point) float64 {
	best := math.Inf(1)
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d < best {
				best = d
			}
		}
	}
	return best
}

// LatLng is a geodetic coordinate in degrees.
type LatLng struct {
	Lat float64 `json:"lat"`
	Lng float64 `json:"lng"`
}

// earthRadiusM is the mean Earth radius used by the equirectangular
// projection.
const earthRadiusM = 6_371_000.0

// Projector converts between geodetic coordinates and the local planar frame
// centred at Origin, using an equirectangular approximation.
type Projector struct {
	Origin LatLng
	cosLat float64
}

// NewProjector returns a Projector whose plane is tangent at origin.
func NewProjector(origin LatLng) *Projector {
	return &Projector{
		Origin: origin,
		cosLat: math.Cos(origin.Lat * math.Pi / 180),
	}
}

// ToPlane projects ll into the local frame, in metres east (X) and north (Y)
// of the origin.
func (pr *Projector) ToPlane(ll LatLng) Point {
	const degToRad = math.Pi / 180
	return Point{
		X: (ll.Lng - pr.Origin.Lng) * degToRad * earthRadiusM * pr.cosLat,
		Y: (ll.Lat - pr.Origin.Lat) * degToRad * earthRadiusM,
	}
}

// ToLatLng inverts ToPlane.
func (pr *Projector) ToLatLng(p Point) LatLng {
	const radToDeg = 180 / math.Pi
	return LatLng{
		Lat: pr.Origin.Lat + p.Y/earthRadiusM*radToDeg,
		Lng: pr.Origin.Lng + p.X/(earthRadiusM*pr.cosLat)*radToDeg,
	}
}
