package geo

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Point
		want Point
	}{
		{"add", Pt(1, 2).Add(Pt(3, 4)), Pt(4, 6)},
		{"sub", Pt(1, 2).Sub(Pt(3, 4)), Pt(-2, -2)},
		{"scale", Pt(1, 2).Scale(2.5), Pt(2.5, 5)},
		{"scale zero", Pt(1, 2).Scale(0), Pt(0, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got != tt.want {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(5, 5), Pt(5, 5), 0},
		{"unit x", Pt(0, 0), Pt(1, 0), 1},
		{"unit y", Pt(0, 0), Pt(0, 1), 1},
		{"345 triangle", Pt(0, 0), Pt(3, 4), 5},
		{"negative coords", Pt(-3, -4), Pt(0, 0), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dist=%v, want %v", got, tt.want)
			}
			if got := tt.p.Dist2(tt.q); !almostEqual(got, tt.want*tt.want, 1e-9) {
				t.Errorf("Dist2=%v, want %v", got, tt.want*tt.want)
			}
		})
	}
}

func TestDistProperties(t *testing.T) {
	// Symmetry, non-negativity and the triangle inequality over random
	// points: the core metric axioms every cost computation relies on.
	cfg := &quick.Config{MaxCount: 500}
	sym := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		d1, d2 := a.Dist(b), b.Dist(a)
		// Exact symmetry holds because Hypot(-dx,-dy) == Hypot(dx,dy);
		// extreme inputs may both be +Inf or NaN, which also counts.
		return d1 == d2 || (math.IsNaN(d1) && math.IsNaN(d2))
	}
	if err := quick.Check(sym, cfg); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	nonNeg := func(ax, ay, bx, by float64) bool {
		return Pt(ax, ay).Dist(Pt(bx, by)) >= 0
	}
	if err := quick.Check(nonNeg, cfg); err != nil {
		t.Errorf("non-negativity: %v", err)
	}
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 500; i++ {
		a := Pt(rng.Float64()*1e4, rng.Float64()*1e4)
		b := Pt(rng.Float64()*1e4, rng.Float64()*1e4)
		c := Pt(rng.Float64()*1e4, rng.Float64()*1e4)
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func TestCentroid(t *testing.T) {
	tests := []struct {
		name string
		pts  []Point
		want Point
	}{
		{"empty", nil, Pt(0, 0)},
		{"single", []Point{Pt(3, 7)}, Pt(3, 7)},
		{"square corners", []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}, Pt(1, 1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Centroid(tt.pts)
			if !almostEqual(got.X, tt.want.X, 1e-12) || !almostEqual(got.Y, tt.want.Y, 1e-12) {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestNearest(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(10, 0), Pt(0, 10)}
	tests := []struct {
		name     string
		p        Point
		pts      []Point
		wantIdx  int
		wantDist float64
	}{
		{"empty", Pt(1, 1), nil, -1, math.Inf(1)},
		{"closest origin", Pt(1, 1), pts, 0, math.Sqrt(2)},
		{"closest right", Pt(9, 1), pts, 1, math.Sqrt(2)},
		{"exact hit", Pt(0, 10), pts, 2, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			idx, d := Nearest(tt.p, tt.pts)
			if idx != tt.wantIdx {
				t.Errorf("idx=%d, want %d", idx, tt.wantIdx)
			}
			if !almostEqual(d, tt.wantDist, 1e-12) && !(math.IsInf(d, 1) && math.IsInf(tt.wantDist, 1)) {
				t.Errorf("dist=%v, want %v", d, tt.wantDist)
			}
		})
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		p := Pt(rng.Float64()*1000, rng.Float64()*1000)
		idx, d := Nearest(p, pts)
		for i, q := range pts {
			if p.Dist(q) < d-1e-9 {
				t.Fatalf("point %d at dist %v beats reported nearest %d at %v", i, p.Dist(q), idx, d)
			}
		}
	}
}

func TestMinPairwiseDist(t *testing.T) {
	tests := []struct {
		name string
		pts  []Point
		want float64
	}{
		{"empty", nil, math.Inf(1)},
		{"single", []Point{Pt(0, 0)}, math.Inf(1)},
		{"pair", []Point{Pt(0, 0), Pt(3, 4)}, 5},
		{"triple", []Point{Pt(0, 0), Pt(10, 0), Pt(10, 1)}, 1},
		{"duplicates", []Point{Pt(2, 2), Pt(2, 2), Pt(9, 9)}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := MinPairwiseDist(tt.pts)
			if got != tt.want && !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIsFinite(t *testing.T) {
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	if Pt(math.NaN(), 0).IsFinite() || Pt(0, math.Inf(1)).IsFinite() {
		t.Error("non-finite point reported finite")
	}
}

func TestProjectorRoundTrip(t *testing.T) {
	// Beijing-ish origin, matching the dataset field.
	pr := NewProjector(LatLng{Lat: 39.9, Lng: 116.4})
	rng := rand.New(rand.NewPCG(3, 5))
	for i := 0; i < 200; i++ {
		p := Pt(rng.Float64()*6000-3000, rng.Float64()*6000-3000)
		back := pr.ToPlane(pr.ToLatLng(p))
		if !almostEqual(back.X, p.X, 1e-6) || !almostEqual(back.Y, p.Y, 1e-6) {
			t.Fatalf("round trip %v -> %v", p, back)
		}
	}
}

func TestProjectorScale(t *testing.T) {
	// One degree of latitude should be ~111.19 km in the plane.
	pr := NewProjector(LatLng{Lat: 39.9, Lng: 116.4})
	p := pr.ToPlane(LatLng{Lat: 40.9, Lng: 116.4})
	if !almostEqual(p.Y, 111_194.9, 10) {
		t.Errorf("1 degree latitude = %.1f m, want ~111195", p.Y)
	}
	if !almostEqual(p.X, 0, 1e-9) {
		t.Errorf("longitude displacement should be 0, got %v", p.X)
	}
}
