package geo

import (
	"testing"
)

// FuzzDecodeGeohash checks that arbitrary input never panics and that
// valid decodes re-encode into a prefix-compatible hash.
func FuzzDecodeGeohash(f *testing.F) {
	for _, seed := range []string{"", "wx4g0bm", "ezs42", "0", "zzzzzzzzzzzz", "wx4\xff", "WX4"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, h string) {
		center, latErr, lngErr, err := DecodeGeohash(h)
		if err != nil {
			return
		}
		if latErr < 0 || lngErr < 0 {
			t.Fatalf("negative error bounds for %q", h)
		}
		if center.Lat < -90 || center.Lat > 90 || center.Lng < -180 || center.Lng > 180 {
			t.Fatalf("decode %q out of range: %+v", h, center)
		}
		if len(h) <= 12 {
			back, err := EncodeGeohash(center, len(h))
			if err != nil {
				t.Fatalf("re-encode %q: %v", h, err)
			}
			if back != h {
				t.Fatalf("round trip %q -> %q", h, back)
			}
		}
	})
}

// FuzzGridCellOf checks grid mapping never panics and stays in range.
func FuzzGridCellOf(f *testing.F) {
	grid := MustGrid(Square(Pt(0, 0), 3000), 100)
	f.Add(0.0, 0.0)
	f.Add(2999.9, 2999.9)
	f.Add(-1.0, 5000.0)
	f.Fuzz(func(t *testing.T, x, y float64) {
		cell := grid.ClampedCellOf(Pt(x, y))
		if cell.Col < 0 || cell.Col >= grid.Cols() || cell.Row < 0 || cell.Row >= grid.Rows() {
			t.Fatalf("clamped cell out of range: %+v", cell)
		}
		idx := grid.Index(cell)
		if idx < 0 || idx >= grid.NumCells() {
			t.Fatalf("index %d out of range", idx)
		}
	})
}
