// Package rebalance implements the static bike-rebalancing substrate the
// paper assumes ("we assume that the reserves of E-bikes are balanced ...
// by executing the procedures in [9]-[11]"): a truck with finite capacity
// moves bikes from surplus stations to deficit stations, visiting them in
// a travel-efficient order. The solver follows the greedy transport
// construction used for the static rebalancing problem (Chemla, Meunier,
// Wolfler Calvo 2013), with a 2-opt-improved tour.
package rebalance

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/routing"
)

// Station is one parking location's inventory state.
type Station struct {
	Loc geo.Point `json:"loc"`
	// Bikes currently parked.
	Bikes int `json:"bikes"`
	// Target is the desired inventory after rebalancing.
	Target int `json:"target"`
}

// Surplus returns bikes - target (positive: pickup site, negative:
// drop-off site).
func (s Station) Surplus() int { return s.Bikes - s.Target }

// Move is one truck action at a station.
type Move struct {
	Station int `json:"station"`
	// Delta is the change to the station's inventory: negative when the
	// truck picks up bikes, positive when it drops off.
	Delta int `json:"delta"`
}

// Plan is a rebalancing route.
type Plan struct {
	// Moves in visiting order.
	Moves []Move `json:"moves"`
	// Distance is the truck's travel distance in metres (open route from
	// the first stop to the last).
	Distance float64 `json:"distance"`
	// Unmet counts target deficit that could not be satisfied (fleet
	// shortage).
	Unmet int `json:"unmet"`
}

// Errors returned by the solver.
var (
	// ErrNoStations is returned for an empty instance.
	ErrNoStations = errors.New("rebalance: no stations")
	// ErrCapacity is returned for a non-positive truck capacity.
	ErrCapacity = errors.New("rebalance: truck capacity must be positive")
)

// Solve computes a rebalancing plan: a visiting order over all imbalanced
// stations plus pickup/drop-off quantities that respect the truck
// capacity and never drive a station negative. Targets in aggregate may
// exceed supply; the shortfall is reported in Plan.Unmet.
func Solve(stations []Station, truckCapacity int) (*Plan, error) {
	if len(stations) == 0 {
		return nil, ErrNoStations
	}
	if truckCapacity <= 0 {
		return nil, fmt.Errorf("%w, got %d", ErrCapacity, truckCapacity)
	}
	for i, s := range stations {
		if s.Bikes < 0 || s.Target < 0 {
			return nil, fmt.Errorf("rebalance: station %d has negative inventory/target", i)
		}
	}

	// Imbalanced stations only.
	var idx []int
	for i, s := range stations {
		if s.Surplus() != 0 {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return &Plan{}, nil
	}

	// Tour the imbalanced stations efficiently (closed tour as produced
	// by the TSP, opened at its longest edge).
	pts := make([]geo.Point, len(idx))
	for k, i := range idx {
		pts[k] = stations[i].Loc
	}
	order, _, err := routing.Solve(pts)
	if err != nil {
		return nil, fmt.Errorf("rebalance: route: %w", err)
	}
	order = openTour(pts, order)

	// Greedy sweep with inventory-aware passes: drive the route forward
	// repeatedly until no useful transfer remains (a single pass cannot
	// always satisfy deficits that precede surpluses).
	surplus := make([]int, len(idx))
	totalDeficit := 0
	for k, i := range idx {
		surplus[k] = stations[i].Surplus()
		if surplus[k] < 0 {
			totalDeficit += -surplus[k]
		}
	}
	var plan Plan
	load := 0
	// Pickups beyond the aggregate deficit would strand bikes on the
	// truck; neededPickups caps them so the truck always ends empty.
	neededPickups := totalDeficit
	for pass := 0; pass < len(idx)+1; pass++ {
		changed := false
		for _, k := range order {
			switch {
			case surplus[k] > 0 && load < truckCapacity && neededPickups > 0:
				take := surplus[k]
				if take > truckCapacity-load {
					take = truckCapacity - load
				}
				if take > neededPickups {
					take = neededPickups
				}
				load += take
				neededPickups -= take
				surplus[k] -= take
				plan.Moves = append(plan.Moves, Move{Station: idx[k], Delta: -take})
				changed = true
			case surplus[k] < 0 && load > 0:
				give := -surplus[k]
				if give > load {
					give = load
				}
				load -= give
				surplus[k] += give
				plan.Moves = append(plan.Moves, Move{Station: idx[k], Delta: give})
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Whatever deficit remains is unmet demand.
	for _, s := range surplus {
		if s < 0 {
			plan.Unmet += -s
		}
	}
	plan.Distance = routeDistance(stations, plan.Moves)
	plan.Moves = coalesce(plan.Moves)
	return &plan, nil
}

// Apply executes a plan against a copy of stations and returns the
// resulting inventories. It errors if a move would drive a station
// negative.
func Apply(stations []Station, plan *Plan) ([]Station, error) {
	out := append([]Station(nil), stations...)
	for i, m := range plan.Moves {
		if m.Station < 0 || m.Station >= len(out) {
			return nil, fmt.Errorf("rebalance: move %d targets station %d out of range", i, m.Station)
		}
		out[m.Station].Bikes += m.Delta
		if out[m.Station].Bikes < 0 {
			return nil, fmt.Errorf("rebalance: move %d drives station %d negative", i, m.Station)
		}
	}
	return out, nil
}

// TotalImbalance sums |surplus| across stations — the quantity a perfect
// rebalancing run drives to the unmet residual.
func TotalImbalance(stations []Station) int {
	var total int
	for _, s := range stations {
		total += abs(s.Surplus())
	}
	return total
}

// openTour removes the longest edge from a closed tour, producing the
// cheapest open traversal of the same cycle.
func openTour(pts []geo.Point, order []int) []int {
	n := len(order)
	if n < 3 {
		return append([]int(nil), order...)
	}
	worst, worstLen := 0, -1.0
	for k := 0; k < n; k++ {
		a, b := pts[order[k]], pts[order[(k+1)%n]]
		if d := a.Dist(b); d > worstLen {
			worst, worstLen = k, d
		}
	}
	out := make([]int, 0, n)
	for k := 1; k <= n; k++ {
		out = append(out, order[(worst+k)%n])
	}
	return out
}

// routeDistance sums the travel between consecutive distinct stations in
// the move sequence.
func routeDistance(stations []Station, moves []Move) float64 {
	var dist float64
	prev := -1
	for _, m := range moves {
		if prev >= 0 && m.Station != prev {
			dist += stations[prev].Loc.Dist(stations[m.Station].Loc)
		}
		prev = m.Station
	}
	return dist
}

// coalesce merges consecutive moves at the same station.
func coalesce(moves []Move) []Move {
	var out []Move
	for _, m := range moves {
		if n := len(out); n > 0 && out[n-1].Station == m.Station {
			out[n-1].Delta += m.Delta
			if out[n-1].Delta == 0 {
				out = out[:n-1]
			}
			continue
		}
		out = append(out, m)
	}
	return out
}

// ProportionalTargets assigns inventory targets proportional to demand
// weights, preserving the current fleet total. Stations with zero weight
// get zero target; rounding remainders go to the heaviest stations.
func ProportionalTargets(stations []Station, weights []float64) ([]Station, error) {
	if len(stations) != len(weights) {
		return nil, fmt.Errorf("rebalance: %d stations but %d weights", len(stations), len(weights))
	}
	var fleet int
	var totalW float64
	for i, s := range stations {
		fleet += s.Bikes
		if weights[i] < 0 || math.IsNaN(weights[i]) {
			return nil, fmt.Errorf("rebalance: weight %d is %v", i, weights[i])
		}
		totalW += weights[i]
	}
	out := append([]Station(nil), stations...)
	if totalW == 0 {
		for i := range out {
			out[i].Target = out[i].Bikes
		}
		return out, nil
	}
	type frac struct {
		idx  int
		frac float64
	}
	assigned := 0
	fracs := make([]frac, len(out))
	for i := range out {
		exact := float64(fleet) * weights[i] / totalW
		out[i].Target = int(exact)
		assigned += out[i].Target
		fracs[i] = frac{idx: i, frac: exact - float64(out[i].Target)}
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].frac != fracs[b].frac {
			return fracs[a].frac > fracs[b].frac
		}
		return fracs[a].idx < fracs[b].idx
	})
	for k := 0; assigned < fleet; k++ {
		out[fracs[k%len(fracs)].idx].Target++
		assigned++
	}
	return out, nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
