package rebalance

import (
	"errors"
	"testing"

	"repro/internal/geo"
	"repro/internal/stats"
)

func line(bikes, targets []int) []Station {
	out := make([]Station, len(bikes))
	for i := range bikes {
		out[i] = Station{Loc: geo.Pt(float64(i)*500, 0), Bikes: bikes[i], Target: targets[i]}
	}
	return out
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(nil, 5); !errors.Is(err, ErrNoStations) {
		t.Errorf("empty: %v", err)
	}
	st := line([]int{1}, []int{1})
	if _, err := Solve(st, 0); !errors.Is(err, ErrCapacity) {
		t.Errorf("capacity: %v", err)
	}
	if _, err := Solve(line([]int{-1}, []int{0}), 5); err == nil {
		t.Error("negative inventory should error")
	}
}

func TestSolveBalancedNoOp(t *testing.T) {
	plan, err := Solve(line([]int{3, 3}, []int{3, 3}), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 || plan.Unmet != 0 || plan.Distance != 0 {
		t.Errorf("balanced instance should be a no-op: %+v", plan)
	}
}

func TestSolveSimpleTransfer(t *testing.T) {
	stations := line([]int{10, 0}, []int{5, 5})
	plan, err := Solve(stations, 10)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Apply(stations, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range after {
		if s.Bikes != s.Target {
			t.Errorf("station %d: %d bikes, target %d", i, s.Bikes, s.Target)
		}
	}
	if plan.Unmet != 0 {
		t.Errorf("unmet=%d", plan.Unmet)
	}
}

func TestSolveCapacityForcesMultiplePasses(t *testing.T) {
	// Truck capacity 2 with a surplus of 6 to move.
	stations := line([]int{6, 0}, []int{0, 6})
	plan, err := Solve(stations, 2)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Apply(stations, plan)
	if err != nil {
		t.Fatal(err)
	}
	if after[1].Bikes != 6 || after[0].Bikes != 0 {
		t.Errorf("after: %+v", after)
	}
}

func TestSolveDeficitBeforeSurplus(t *testing.T) {
	// The deficit station precedes the surplus in space; the multi-pass
	// sweep must still satisfy it.
	stations := line([]int{0, 8}, []int{4, 4})
	plan, err := Solve(stations, 4)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Apply(stations, plan)
	if err != nil {
		t.Fatal(err)
	}
	if after[0].Bikes != 4 || after[1].Bikes != 4 {
		t.Errorf("after: %+v", after)
	}
}

func TestSolveFleetShortage(t *testing.T) {
	stations := line([]int{1, 0}, []int{0, 5})
	plan, err := Solve(stations, 10)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Unmet != 4 {
		t.Errorf("unmet=%d, want 4", plan.Unmet)
	}
}

func TestSolveConservesBikes(t *testing.T) {
	rng := stats.NewRNG(5)
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.IntN(10)
		stations := make([]Station, n)
		total := 0
		for i := range stations {
			b := rng.IntN(10)
			stations[i] = Station{
				Loc:    geo.Pt(rng.Float64()*3000, rng.Float64()*3000),
				Bikes:  b,
				Target: rng.IntN(10),
			}
			total += b
		}
		plan, err := Solve(stations, 1+rng.IntN(8))
		if err != nil {
			t.Fatal(err)
		}
		// The truck must end empty: sum of deltas is zero.
		var sum int
		for _, m := range plan.Moves {
			sum += m.Delta
		}
		if sum != 0 {
			t.Fatalf("trial %d: truck ends with %d bikes aboard", trial, -sum)
		}
		after, err := Apply(stations, plan)
		if err != nil {
			t.Fatal(err)
		}
		afterTotal := 0
		for _, s := range after {
			afterTotal += s.Bikes
		}
		if afterTotal != total {
			t.Fatalf("trial %d: fleet %d -> %d", trial, total, afterTotal)
		}
		// Residual imbalance equals reported unmet on the deficit side.
		var deficit int
		for _, s := range after {
			if d := s.Target - s.Bikes; d > 0 {
				deficit += d
			}
		}
		if deficit != plan.Unmet {
			t.Fatalf("trial %d: residual deficit %d != unmet %d", trial, deficit, plan.Unmet)
		}
	}
}

func TestApplyValidation(t *testing.T) {
	stations := line([]int{1, 1}, []int{1, 1})
	if _, err := Apply(stations, &Plan{Moves: []Move{{Station: 9, Delta: 1}}}); err == nil {
		t.Error("out-of-range move should error")
	}
	if _, err := Apply(stations, &Plan{Moves: []Move{{Station: 0, Delta: -5}}}); err == nil {
		t.Error("negative-driving move should error")
	}
}

func TestTotalImbalance(t *testing.T) {
	if got := TotalImbalance(line([]int{5, 0}, []int{2, 3})); got != 6 {
		t.Errorf("imbalance=%d, want 6", got)
	}
}

func TestProportionalTargets(t *testing.T) {
	stations := line([]int{4, 4, 2}, []int{0, 0, 0})
	out, err := ProportionalTargets(stations, []float64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range out {
		total += s.Target
	}
	if total != 10 {
		t.Errorf("targets sum to %d, want fleet size 10", total)
	}
	if out[2].Target <= out[0].Target {
		t.Errorf("heavier station should get more: %+v", out)
	}
	if _, err := ProportionalTargets(stations, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := ProportionalTargets(stations, []float64{1, -1, 1}); err == nil {
		t.Error("negative weight should error")
	}
	zero, err := ProportionalTargets(stations, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range zero {
		if s.Target != stations[i].Bikes {
			t.Error("zero weights should keep current inventory")
		}
	}
}

func TestProportionalThenSolveRoundTrip(t *testing.T) {
	rng := stats.NewRNG(9)
	stations := make([]Station, 8)
	weights := make([]float64, 8)
	for i := range stations {
		stations[i] = Station{
			Loc:   geo.Pt(rng.Float64()*2000, rng.Float64()*2000),
			Bikes: rng.IntN(12),
		}
		weights[i] = rng.Float64() * 5
	}
	targeted, err := ProportionalTargets(stations, weights)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Solve(targeted, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Targets preserve the fleet, so everything is satisfiable.
	if plan.Unmet != 0 {
		t.Errorf("unmet=%d with fleet-preserving targets", plan.Unmet)
	}
	after, err := Apply(targeted, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range after {
		if s.Bikes != s.Target {
			t.Errorf("station %d: %d != target %d", i, s.Bikes, s.Target)
		}
	}
}
