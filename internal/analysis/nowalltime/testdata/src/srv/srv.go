// Package srv is loaded under repro/internal/server, where wall time
// is the serving layer's business; nothing here is flagged.
package srv

import "time"

func observeLatency(h func(time.Duration)) func() {
	start := time.Now()
	return func() { h(time.Since(start)) }
}
