// Package det exercises nowalltime under a deterministic package path:
// clock reads are flagged, pure time arithmetic is not.
package det

import "time"

func stamp() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time\.Until reads the wall clock`
}

// double is pure duration arithmetic — no clock involved.
func double(d time.Duration) time.Duration {
	return 2 * d
}

// parse consumes a timestamp from data, which is deterministic.
func parse(s string) (time.Time, error) {
	return time.Parse(time.RFC3339, s)
}
