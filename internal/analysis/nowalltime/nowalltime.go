// Package nowalltime forbids wall-clock reads (time.Now, time.Since,
// time.Tick) in the deterministic packages: core, sim, forecast, stats
// and energy must produce identical outputs for identical seeds and
// inputs, so simulated time is threaded through explicitly (periods,
// trip timestamps) and wall time belongs to the serving layer
// (internal/server, cmd/). Using the time package for durations,
// timestamps parsed from data, or time arithmetic is fine — only
// sampling the actual clock is flagged.
package nowalltime

import (
	"go/ast"

	"repro/internal/analysis/lintkit"
)

// deterministicPkgs are the packages whose outputs must be a pure
// function of (seed, inputs).
var deterministicPkgs = []string{
	"repro/internal/core",
	"repro/internal/sim",
	"repro/internal/forecast",
	"repro/internal/stats",
	"repro/internal/energy",
}

// clockFuncs are the time functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true, "Tick": true}

// Analyzer is the nowalltime check.
var Analyzer = &lintkit.Analyzer{
	Name: "nowalltime",
	Doc: "forbid wall-clock reads (time.Now/Since/Until/Tick) in the deterministic packages " +
		"(core, sim, forecast, stats, energy); wall time belongs to internal/server and cmd/",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if !lintkit.PathWithinAny(pass.Path, deterministicPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintkit.FuncOf(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !clockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in deterministic package %s; thread simulated time through explicitly",
				fn.Name(), pass.Path)
			return true
		})
	}
	return nil
}
