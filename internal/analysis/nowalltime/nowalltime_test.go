package nowalltime_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nowalltime"
)

func TestDeterministicPackageFlagged(t *testing.T) {
	analysistest.Run(t, "det", "repro/internal/sim", nowalltime.Analyzer)
}

func TestServerPackageExempt(t *testing.T) {
	analysistest.Run(t, "srv", "repro/internal/server", nowalltime.Analyzer)
}
