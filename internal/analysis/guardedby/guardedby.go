// Package guardedby enforces the documented lock discipline that PRs 1
// and 2 split the server's single mutex into. Struct fields annotated
//
//	// guarded by <lock>
//
// (in the field's doc or trailing comment) may only be accessed inside
// functions that demonstrably hold that lock: either the function body
// acquires it — a sync.Mutex/RWMutex Lock()/RLock() call, or a send on
// a capacity-1 channel used as a lock (the server's decision channel) —
// or the function's doc comment declares "caller holds <lock>". The
// check is name-based and intra-procedural: it cannot prove a lock is
// held at the exact access, but it catches the regression that matters
// in practice — a new code path touching guarded state with no lock in
// sight. Constructor-time accesses before the value is shared can be
// waived with //esharing:allow guardedby and a justification.
//
// One access shape is exempt without a waiver: calling Load on a
// guarded sync/atomic field. Annotating an atomic field expresses the
// single-writer discipline — mutation (Store, Add, swap) happens only
// under the lock — while the whole point of making it atomic is that
// readers may Load it lock-free; flagging those reads would force a
// waiver onto every legitimate lock-free reader.
package guardedby

import (
	"go/ast"
	"go/types"
	"regexp"

	"repro/internal/analysis/lintkit"
)

// Analyzer is the guardedby check.
var Analyzer = &lintkit.Analyzer{
	Name: "guardedby",
	Doc: "fields annotated '// guarded by <lock>' may only be accessed in functions that " +
		"acquire that lock (Lock/RLock or a channel-lock send) or are annotated 'caller holds <lock>'; " +
		"Load calls on guarded sync/atomic fields are exempt (single-writer discipline)",
	Run: run,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

func run(pass *lintkit.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			held := heldLocks(fn)
			exempt := map[*ast.SelectorExpr]bool{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				// A CallExpr is visited before its operands, so marking
				// the receiver selection of an atomic Load here exempts
				// it by the time the traversal reaches it below.
				if call, ok := n.(*ast.CallExpr); ok {
					if recv := atomicLoadReceiver(pass.Info, call); recv != nil {
						exempt[recv] = true
					}
					return true
				}
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				field := fieldOf(pass.Info, sel)
				if field == nil {
					return true
				}
				lock, guarded := guards[field]
				if !guarded || held[lock] || exempt[sel] {
					return true
				}
				pass.Reportf(sel.Sel.Pos(),
					"%s is guarded by %s, but %s neither acquires %s nor is annotated 'caller holds %s'",
					field.Name(), lock, fn.Name.Name, lock, lock)
				return true
			})
		}
	}
	return nil
}

// collectGuards maps annotated field objects to the lock name guarding
// them, scanning every struct type in the package.
func collectGuards(pass *lintkit.Pass) map[*types.Var]string {
	guards := map[*types.Var]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				lock := guardAnnotation(field)
				if lock == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guards[v] = lock
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// atomicLoadReceiver returns the field selection serving as the
// receiver of a sync/atomic Load call (the s.counter in
// s.counter.Load()), or nil when call is anything else. Only methods
// named Load on fields whose type lives in sync/atomic qualify — a
// Load on some other type with a guarded field as receiver still
// needs the lock.
func atomicLoadReceiver(info *types.Info, call *ast.CallExpr) *ast.SelectorExpr {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || fun.Sel.Name != "Load" {
		return nil
	}
	recv, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	field := fieldOf(info, recv)
	if field == nil || !isAtomicType(field.Type()) {
		return nil
	}
	return recv
}

// isAtomicType reports whether t is one of sync/atomic's value types
// (Int64, Uint64, Bool, Pointer[T], ...).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// fieldOf resolves sel to the struct field object it selects, or nil
// when sel is not a field selection.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	return selection.Obj().(*types.Var)
}

// heldLocks computes the set of lock names fn holds anywhere in its
// body, by acquisition or by doc-comment contract. Function literals
// nested in fn inherit its set — the closures the server registers as
// handlers acquire locks in their own bodies, which this scan sees.
func heldLocks(fn *ast.FuncDecl) map[string]bool {
	held := map[string]bool{}
	for _, name := range lintkit.CallerHolds(fn.Doc) {
		held[name] = true
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// s.mu.Lock() / s.mu.RLock(): the receiver's selector names
			// the lock field.
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
				return true
			}
			if name := innerName(sel.X); name != "" {
				held[name] = true
			}
		case *ast.SendStmt:
			// s.decision <- struct{}{}: capacity-1 channel used as a
			// lock; send acquires, receive releases.
			if name := innerName(n.Chan); name != "" {
				held[name] = true
			}
		}
		return true
	})
	return held
}

// innerName extracts the terminal identifier of x: the field name for
// s.mu, the identifier itself for a plain mu.
func innerName(x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.Ident:
		return x.Name
	}
	return ""
}
