// Package locks exercises guardedby: annotated fields accessed without
// the lock are flagged; Lock/RLock acquisition, channel-lock sends and
// "caller holds" contracts are all recognised, and Load calls on
// guarded sync/atomic fields are exempt (single-writer discipline:
// mutation needs the lock, lock-free reads are the point).
package locks

import (
	"sync"
	"sync/atomic"
)

type store struct {
	mu sync.Mutex
	// count is the running total.
	// guarded by mu
	count int

	rw    sync.RWMutex
	table map[string]int // guarded by rw

	// decision is a capacity-1 channel used as the placement lock
	// (send = acquire, receive = release).
	decision chan struct{}
	placer   string // guarded by decision

	// walkBits is written only under decision (single writer) but read
	// lock-free via Load by the stats handlers.
	walkBits atomic.Uint64 // guarded by decision

	// loadable is NOT atomic: its Load method gets no exemption.
	loadable loader // guarded by mu
}

// loader has a Load method but is an ordinary struct, so selecting it
// still requires the lock.
type loader struct{ v int }

func (l loader) Load() int { return l.v }

func (s *store) locked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// contract relies on the documented discipline: caller holds mu.
func (s *store) contract() int {
	return s.count
}

func (s *store) unlocked() int {
	return s.count // want `count is guarded by mu, but unlocked neither acquires mu`
}

func (s *store) readLocked(key string) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.table[key]
}

func (s *store) readUnlocked(key string) int {
	return s.table[key] // want `table is guarded by rw, but readUnlocked neither acquires rw`
}

func (s *store) channelLocked() string {
	s.decision <- struct{}{}
	defer func() { <-s.decision }()
	return s.placer
}

func (s *store) channelUnlocked() string {
	return s.placer // want `placer is guarded by decision, but channelUnlocked neither acquires decision`
}

// atomicRead exercises the Load exemption: a lock-free read of a
// guarded atomic is the sanctioned single-writer pattern.
func (s *store) atomicRead() uint64 {
	return s.walkBits.Load()
}

// atomicWrite mutates the guarded atomic without the lock: Store gets
// no exemption — only Load does.
func (s *store) atomicWrite(v uint64) {
	s.walkBits.Store(v) // want `walkBits is guarded by decision, but atomicWrite neither acquires decision`
}

// atomicWriteLocked is the legitimate single writer.
func (s *store) atomicWriteLocked(v uint64) {
	s.decision <- struct{}{}
	defer func() { <-s.decision }()
	s.walkBits.Store(v)
}

// nonAtomicLoad calls a Load method on a non-atomic guarded field; the
// exemption must not fire on method name alone.
func (s *store) nonAtomicLoad() int {
	return s.loadable.Load() // want `loadable is guarded by mu, but nonAtomicLoad neither acquires mu`
}

// newStore builds an unshared value; the constructor-time write is
// waived explicitly.
func newStore() *store {
	s := &store{decision: make(chan struct{}, 1)}
	s.count = 1 //esharing:allow guardedby
	return s
}
