// Package locks exercises guardedby: annotated fields accessed without
// the lock are flagged; Lock/RLock acquisition, channel-lock sends and
// "caller holds" contracts are all recognised.
package locks

import "sync"

type store struct {
	mu sync.Mutex
	// count is the running total.
	// guarded by mu
	count int

	rw    sync.RWMutex
	table map[string]int // guarded by rw

	// decision is a capacity-1 channel used as the placement lock
	// (send = acquire, receive = release).
	decision chan struct{}
	placer   string // guarded by decision
}

func (s *store) locked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// contract relies on the documented discipline: caller holds mu.
func (s *store) contract() int {
	return s.count
}

func (s *store) unlocked() int {
	return s.count // want `count is guarded by mu, but unlocked neither acquires mu`
}

func (s *store) readLocked(key string) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.table[key]
}

func (s *store) readUnlocked(key string) int {
	return s.table[key] // want `table is guarded by rw, but readUnlocked neither acquires rw`
}

func (s *store) channelLocked() string {
	s.decision <- struct{}{}
	defer func() { <-s.decision }()
	return s.placer
}

func (s *store) channelUnlocked() string {
	return s.placer // want `placer is guarded by decision, but channelUnlocked neither acquires decision`
}

// newStore builds an unshared value; the constructor-time write is
// waived explicitly.
func newStore() *store {
	s := &store{decision: make(chan struct{}, 1)}
	s.count = 1 //esharing:allow guardedby
	return s
}
