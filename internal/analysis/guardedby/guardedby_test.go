package guardedby_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/guardedby"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "locks", "repro/internal/server", guardedby.Analyzer)
}
