// Package cmp exercises floateq: exact float comparisons are flagged,
// integer comparisons and waived sentinel checks are not.
package cmp

func equal(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func notEqual(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

func nearLiteral(d float64) bool {
	return d == 0 // want `floating-point == comparison`
}

// ints are exact; no finding.
func intsEqual(a, b int) bool {
	return a == b
}

// epsilonish is the approved shape.
func epsilonish(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// sentinel compares against an exact-by-construction zero and is
// waived on the record.
func sentinel(weight float64) bool {
	return weight == 0 //esharing:allow floateq
}
