// Package outofscope holds float comparisons under a path floateq does
// not cover; nothing is flagged.
package outofscope

func equal(a, b float64) bool {
	return a == b
}
