// Package floateq flags == and != between floating-point operands in
// the geometry and cost arithmetic packages (geo, core, incentive).
// Distances, costs and regrets there are sums of projected coordinates
// and square roots; exact equality on such values is almost always a
// latent bug that epsilon helpers (geo.AlmostEqual and friends) should
// replace. The rare comparisons that are exact by construction —
// sentinel zeros, tie-breaks on values copied from the same source —
// are waived explicitly with //esharing:allow floateq so the intent is
// on the record.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// scopedPkgs are the packages whose float arithmetic the check covers.
var scopedPkgs = []string{
	"repro/internal/geo",
	"repro/internal/core",
	"repro/internal/incentive",
}

// Analyzer is the floateq check.
var Analyzer = &lintkit.Analyzer{
	Name: "floateq",
	Doc: "forbid ==/!= on floating-point operands in geo, core and incentive; " +
		"use epsilon helpers, or waive exact-by-construction comparisons with //esharing:allow floateq",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if !lintkit.PathWithinAny(pass.Path, scopedPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Info, bin.X) || !isFloat(pass.Info, bin.Y) {
				return true
			}
			pass.Reportf(bin.OpPos,
				"floating-point %s comparison; use an epsilon helper (geo.AlmostEqual) or waive with //esharing:allow floateq",
				bin.Op)
			return true
		})
	}
	return nil
}

func isFloat(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
