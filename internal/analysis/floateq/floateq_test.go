package floateq_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/floateq"
)

func TestGeoPackageFlagged(t *testing.T) {
	analysistest.Run(t, "cmp", "repro/internal/geo", floateq.Analyzer)
}

// TestOutOfScopePackage loads the same sources under a path outside the
// float-arithmetic packages; the analyzer must stay silent, so the run
// is inverted: every want expectation failing to match would be an
// error, hence a want-free clean copy is used.
func TestOutOfScopePackage(t *testing.T) {
	analysistest.Run(t, "outofscope", "repro/internal/server", floateq.Analyzer)
}
