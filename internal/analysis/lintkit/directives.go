package lintkit

import (
	"go/ast"
	"regexp"
	"strings"
)

// HasDirective reports whether the function's doc comment carries the
// given //esharing:<name> directive (e.g. "esharing:hotpath").
// Directives are machine-readable markers, so only exact comment lines
// count — prose mentioning the directive does not.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

var callerHoldsRe = regexp.MustCompile(`caller holds ([A-Za-z_][A-Za-z0-9_]*)`)

// CallerHolds extracts the lock names a function's doc comment declares
// as held by the caller ("// caller holds mu"). The guardedby analyzer
// treats such functions as holding those locks without acquiring them.
func CallerHolds(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var names []string
	for _, m := range callerHoldsRe.FindAllStringSubmatch(doc.Text(), -1) {
		names = append(names, m[1])
	}
	return names
}
