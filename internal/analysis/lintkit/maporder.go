package lintkit

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file classifies the ways a map iteration's runtime-random order
// can escape into observable state. It is shared by mapiter (which
// reports escapes anywhere in the deterministic packages) and
// detcallback (which treats an escape inside a parallel callback as an
// impurity fact).
//
// An escape is any of:
//
//   - returning or breaking out of the loop mid-iteration: whichever
//     element the runtime served first wins (the firstKey pattern),
//   - a floating-point or string accumulation into a variable declared
//     outside the loop: (a+b)+c ≠ a+(b+c) in binary floating point, so
//     the sum's bits depend on visit order,
//   - a plain assignment to an outer variable whose right-hand side
//     mentions the iteration variables: last writer wins, and the last
//     iteration is random (covers argmin/argmax selections),
//   - appending iteration-derived values to an outer slice that is not
//     subsequently passed to a standard-library sort in the enclosing
//     function (the collect-then-sort idiom stays quiet),
//   - writing iteration-derived values to output (fmt print family,
//     io Write/WriteString methods, or an intra-package helper that
//     transitively writes output) or sending them on a channel.
//
// Deliberately quiet: integer/boolean accumulations (order-free),
// writes indexed by the iteration key (m2[k] = v, xs[k] = v — the
// destination is keyed, not ordered), delete, and variables declared
// inside the loop body.

// MapEscape is one order-escape site within a map range statement.
type MapEscape struct {
	Pos  token.Pos
	What string
}

// MapRangeEscapes classifies rs. enclBody is the body of the function
// owning the statement (used to look for sorts after the loop).
// outputWriter, when non-nil, reports whether a same-package function
// transitively writes formatted output; nil disables the transitive
// check. Returns nil when rs does not range over a map.
func MapRangeEscapes(info *types.Info, rs *ast.RangeStmt, enclBody *ast.BlockStmt, outputWriter func(*types.Func) bool) []MapEscape {
	tv, ok := info.Types[rs.X]
	if !ok {
		return nil
	}
	if _, ok := tv.Type.Underlying().(*types.Map); !ok {
		return nil
	}
	s := &mapEscapeScan{
		info:         info,
		rs:           rs,
		rangeObjs:    map[types.Object]bool{},
		bodyLabels:   map[string]bool{},
		outputWriter: outputWriter,
	}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				s.rangeObjs[obj] = true
			}
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if l, ok := n.(*ast.LabeledStmt); ok {
			s.bodyLabels[l.Label.Name] = true
		}
		return true
	})
	s.scanStmts(rs.Body.List, 0, false)
	s.resolveAppends(enclBody)
	return s.escapes
}

type mapEscapeScan struct {
	info         *types.Info
	rs           *ast.RangeStmt
	rangeObjs    map[types.Object]bool
	bodyLabels   map[string]bool
	outputWriter func(*types.Func) bool
	escapes      []MapEscape
	appends      []appendSite
}

// appendSite is an `outer = append(outer, ...)` with iteration-derived
// arguments, pending the after-loop sort check.
type appendSite struct {
	pos token.Pos
	obj types.Object // root object of the appended-to expression
	key string       // rendered target for the diagnostic
}

func (s *mapEscapeScan) escape(pos token.Pos, what string) {
	s.escapes = append(s.escapes, MapEscape{Pos: pos, What: what})
}

// usesRangeVars reports whether any iteration variable appears in e.
func (s *mapEscapeScan) usesRangeVars(e ast.Node) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := s.info.Uses[id]; obj != nil && s.rangeObjs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// outerObj returns the object behind an identifier declared outside the
// range statement, nil for loop-locals, blanks and non-identifiers.
func (s *mapEscapeScan) outerObj(id *ast.Ident) types.Object {
	obj := s.info.Uses[id]
	if obj == nil {
		obj = s.info.Defs[id]
	}
	if obj == nil || obj.Pos() == token.NoPos {
		return nil
	}
	if obj.Pos() >= s.rs.Pos() && obj.Pos() < s.rs.End() {
		return nil
	}
	return obj
}

// lhsTarget decomposes an assignment target: the root identifier's
// object if the target is an identifier or selector chain rooted at
// one, plus whether the target involves indexing (keyed writes are
// order-free destinations).
func (s *mapEscapeScan) lhsTarget(e ast.Expr) (obj types.Object, key string, indexed bool) {
	key = types.ExprString(e)
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return s.outerObj(t), key, indexed
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			indexed = true
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil, key, indexed
		}
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// scanStmts walks a statement list. brk counts breakable constructs
// between the map range body and the statement (0 = a bare break exits
// the map range). inLit marks statements inside a nested function
// literal, where return no longer exits the iteration.
func (s *mapEscapeScan) scanStmts(stmts []ast.Stmt, brk int, inLit bool) {
	for _, st := range stmts {
		s.scanStmt(st, brk, inLit)
	}
}

func (s *mapEscapeScan) scanStmt(st ast.Stmt, brk int, inLit bool) {
	switch st := st.(type) {
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.scanExpr(r)
		}
		if !inLit {
			s.escape(st.Pos(), "returns mid-iteration, so whichever entry the runtime served first wins")
		}
	case *ast.BranchStmt:
		if st.Tok != token.BREAK || inLit {
			return
		}
		if st.Label == nil {
			if brk == 0 {
				s.escape(st.Pos(), "breaks mid-iteration, so whichever entry the runtime served first wins")
			}
			return
		}
		if !s.bodyLabels[st.Label.Name] {
			s.escape(st.Pos(), "breaks mid-iteration, so whichever entry the runtime served first wins")
		}
	case *ast.AssignStmt:
		s.scanAssign(st)
	case *ast.SendStmt:
		s.scanExpr(st.Chan)
		s.scanExpr(st.Value)
		if s.usesRangeVars(st.Value) || s.usesRangeVars(st.Chan) {
			s.escape(st.Pos(), "sends iteration-derived values on a channel in map order")
		}
	case *ast.ExprStmt:
		s.scanExpr(st.X)
	case *ast.IfStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, brk, inLit)
		}
		s.scanExpr(st.Cond)
		s.scanStmts(st.Body.List, brk, inLit)
		if st.Else != nil {
			s.scanStmt(st.Else, brk, inLit)
		}
	case *ast.BlockStmt:
		s.scanStmts(st.List, brk, inLit)
	case *ast.ForStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, brk, inLit)
		}
		if st.Cond != nil {
			s.scanExpr(st.Cond)
		}
		if st.Post != nil {
			s.scanStmt(st.Post, brk, inLit)
		}
		s.scanStmts(st.Body.List, brk+1, inLit)
	case *ast.RangeStmt:
		s.scanExpr(st.X)
		s.scanStmts(st.Body.List, brk+1, inLit)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, brk, inLit)
		}
		if st.Tag != nil {
			s.scanExpr(st.Tag)
		}
		s.scanStmts(st.Body.List, brk+1, inLit)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, brk, inLit)
		}
		s.scanStmt(st.Assign, brk, inLit)
		s.scanStmts(st.Body.List, brk+1, inLit)
	case *ast.SelectStmt:
		s.scanStmts(st.Body.List, brk+1, inLit)
	case *ast.CaseClause:
		for _, e := range st.List {
			s.scanExpr(e)
		}
		s.scanStmts(st.Body, brk, inLit)
	case *ast.CommClause:
		if st.Comm != nil {
			s.scanStmt(st.Comm, brk, inLit)
		}
		s.scanStmts(st.Body, brk, inLit)
	case *ast.LabeledStmt:
		s.scanStmt(st.Stmt, brk, inLit)
	case *ast.DeferStmt:
		s.scanExpr(st.Call)
	case *ast.GoStmt:
		s.scanExpr(st.Call)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.scanExpr(v)
					}
				}
			}
		}
	}
}

// scanAssign applies the accumulation / last-wins / append rules.
func (s *mapEscapeScan) scanAssign(st *ast.AssignStmt) {
	for _, r := range st.Rhs {
		s.scanExpr(r)
	}
	if st.Tok == token.DEFINE {
		// New loop-locals; nothing escapes at the declaration itself.
		// (A := that re-assigns an outer variable in the same block is
		// impossible: short declarations only redeclare within their
		// own block.)
		return
	}
	for i, lhs := range st.Lhs {
		obj, key, indexed := s.lhsTarget(lhs)
		if obj == nil || indexed {
			continue // loop-local, blank, or keyed write
		}
		var rhs ast.Expr
		if len(st.Lhs) == len(st.Rhs) {
			rhs = st.Rhs[i]
		} else if len(st.Rhs) == 1 {
			rhs = st.Rhs[0]
		}
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			t := s.info.TypeOf(lhs)
			if t == nil {
				continue
			}
			if isFloat(t) {
				s.escape(st.Pos(), "accumulates floating point into "+key+" in map order (float addition is not associative)")
			} else if isString(t) && st.Tok == token.ADD_ASSIGN && rhs != nil && s.usesRangeVars(rhs) {
				s.escape(st.Pos(), "concatenates onto "+key+" in map order")
			}
		case token.ASSIGN:
			if rhs == nil || !s.usesRangeVars(rhs) {
				continue // e.g. found = true — order-free
			}
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isAppendTo(call, lhs) {
				s.appends = append(s.appends, appendSite{pos: st.Pos(), obj: obj, key: key})
				continue
			}
			t := s.info.TypeOf(lhs)
			if t != nil && isFloat(t) && mentionsTarget(rhs, key) {
				s.escape(st.Pos(), "accumulates floating point into "+key+" in map order (float addition is not associative)")
				continue
			}
			s.escape(st.Pos(), "assigns an iteration-derived value to "+key+", so the last (random) iteration wins")
		}
	}
}

// isAppendTo reports whether call is append(target, ...).
func isAppendTo(call *ast.CallExpr, target ast.Expr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	return types.ExprString(call.Args[0]) == types.ExprString(target)
}

// mentionsTarget reports whether expr's rendering mentions the target —
// the x = x + v accumulation shape.
func mentionsTarget(e ast.Expr, key string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if x, ok := n.(ast.Expr); ok && types.ExprString(x) == key {
			found = true
		}
		return !found
	})
	return found
}

// scanExpr looks inside an expression for output calls and nested
// literals. Literals are scanned with return/break rules disabled but
// everything else live — a closure built per-iteration still sees the
// iteration variables.
func (s *mapEscapeScan) scanExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.scanStmts(n.Body.List, 0, true)
			return false
		case *ast.CallExpr:
			s.scanCall(n)
		}
		return true
	})
}

// scanCall flags calls that push iteration-derived values into output.
func (s *mapEscapeScan) scanCall(call *ast.CallExpr) {
	argsUseRange := false
	for _, a := range call.Args {
		if s.usesRangeVars(a) {
			argsUseRange = true
			break
		}
	}
	if !argsUseRange {
		return
	}
	if fn := FuncOf(s.info, call); fn != nil {
		if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" && isPrintName(fn.Name()) {
			s.escape(call.Pos(), "writes iteration-derived values to output in map order")
			return
		}
		if s.outputWriter != nil && s.outputWriter(fn) {
			s.escape(call.Pos(), "passes iteration-derived values to "+fn.Name()+", which writes output, in map order")
			return
		}
		if fn.Pkg() != nil && isWriteName(fn.Name()) && fn.Type().(*types.Signature).Recv() != nil {
			s.escape(call.Pos(), "writes iteration-derived values via "+fn.Name()+" in map order")
		}
	}
}

// isPrintName matches the fmt functions that write to a stream; the
// Sprint family returns a string and is covered by the assignment rules
// on whatever the result lands in.
func isPrintName(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// isWriteName matches byte-sink methods (strings.Builder, bytes.Buffer,
// io.Writer implementations).
func isWriteName(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}

// resolveAppends checks each pending append target for a recognized
// standard-library sort after the loop, anywhere later in the enclosing
// body, and reports the ones never sorted.
func (s *mapEscapeScan) resolveAppends(enclBody *ast.BlockStmt) {
	for _, site := range s.appends {
		if enclBody != nil && sortedAfter(s.info, enclBody, s.rs.End(), site.obj) {
			continue
		}
		s.escape(site.pos, "collects iteration-derived values into "+site.key+" but never passes it to a standard-library sort afterwards")
	}
}

// sortedAfter reports whether obj is passed to a sort.*/slices.Sort*
// call positioned after pos within body. Matching is by root object, so
// wrappers like sort.Sort(sort.Reverse(sort.IntSlice(xs))) count.
func sortedAfter(info *types.Info, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := FuncOf(info, call)
		if fn == nil || fn.Pkg() == nil || !isSortFunc(fn.Pkg().Path(), fn.Name()) {
			return true
		}
		for _, a := range call.Args {
			ast.Inspect(a, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// isSortFunc recognizes the standard-library sorting entry points the
// collect-then-sort idiom may use.
func isSortFunc(pkgPath, name string) bool {
	switch pkgPath {
	case "sort":
		switch name {
		case "Ints", "Strings", "Float64s", "Sort", "Stable", "Slice", "SliceStable":
			return true
		}
	case "slices":
		switch name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}
