// Package lintkit is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface that the esharing-lint suite
// needs. The real x/tools module is deliberately not a dependency: the
// repository builds with the standard library alone, and the nine
// project analyzers (seededrand, nowalltime, guardedby, floateq,
// hotpathalloc, mapiter, detcallback, chanlock, walerr) only require
// parsed files, type information, an intra-package call graph and a
// diagnostic sink — all of which the standard library provides.
//
// The shapes mirror x/tools on purpose (Analyzer with a Run(*Pass)
// hook, Pass.Reportf, analysistest-style golden packages) so the suite
// could be ported to the real framework by swapping imports if the
// dependency ever becomes available.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //esharing:allow suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects a package via pass and reports findings with
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, positioned inside pass.Fset.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed compilation units, with comments.
	Files []*ast.File
	// Path is the package's import path (e.g. "repro/internal/core").
	// Analyzers scope themselves with it; testdata packages are loaded
	// under the production path they exercise.
	Path string
	// Pkg and Info hold the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info

	diags   *[]Diagnostic
	allowed map[allowKey]bool
}

type allowKey struct {
	file string
	line int
	name string
}

// Reportf records a diagnostic unless an //esharing:allow directive on
// the same line (or the line directly above, for full-line directive
// comments) suppresses this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowed[allowKey{position.Filename, position.Line, p.Analyzer.Name}] {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// IsTestFile reports whether pos sits in a _test.go file. The project
// invariants (determinism, lock discipline, allocation budgets) bind
// production code; tests may use ad-hoc randomness and wall clocks.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PathWithin reports whether path is root or a package under root.
func PathWithin(path, root string) bool {
	return path == root || strings.HasPrefix(path, root+"/")
}

// PathWithinAny reports whether path sits in any of the given roots.
func PathWithinAny(path string, roots ...string) bool {
	for _, root := range roots {
		if PathWithin(path, root) {
			return true
		}
	}
	return false
}

// FuncOf resolves a call's callee to a package-level *types.Func (or a
// method), returning nil for calls through variables, conversions and
// builtins.
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := FuncOf(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// Run executes each analyzer over one type-checked package and returns
// the combined findings sorted by position. //esharing:allow directives
// are honoured across all analyzers.
func Run(fset *token.FileSet, files []*ast.File, path string, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	allowed := collectAllows(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Path:     path,
			Pkg:      pkg,
			Info:     info,
			diags:    &diags,
			allowed:  allowed,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// collectAllows scans //esharing:allow directives. An allow names one
// or more analyzers followed by a mandatory justification after a "--"
// separator ("//esharing:allow floateq seededrand -- why it is safe")
// and covers the directive's own line plus the following line, so it
// works both as an end-of-line comment and as a standalone comment
// above the offending statement. The justification is not optional in
// practice: `esharing-lint -waivers` fails CI on any allow without one.
func collectAllows(fset *token.FileSet, files []*ast.File) map[allowKey]bool {
	allowed := map[allowKey]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//esharing:allow")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Fields(rest) {
					if name == "--" {
						break // everything after is the justification
					}
					allowed[allowKey{pos.Filename, pos.Line, name}] = true
					allowed[allowKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return allowed
}
