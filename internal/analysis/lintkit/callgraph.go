package lintkit

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file adds the intra-package call graph the determinism analyzers
// (mapiter, detcallback) are built on. The graph tracks three kinds of
// flow the single-function analyzers of PR 3 cannot see:
//
//   - direct calls to package-level functions and methods,
//   - function literals: a closure is a node of its own, and a node that
//     lexically contains a literal is conservatively assumed to run it
//     (covers immediately-invoked literals, deferred literals, and
//     literals handed to library code such as sort.Slice),
//   - closure variables and method values: `f := func() {...}; f()` and
//     `h := sh.helper; h()` produce edges to the bound function(s).
//
// The graph is intra-package by construction — the same boundary the
// vettool's unit-checking protocol imposes — so facts about functions in
// other packages never propagate; the deterministic packages are each
// analyzed under their own invariants instead. Flow through struct
// fields, slices, maps and channels of functions is not tracked
// (documented limitation); the repository does not use those shapes on
// its deterministic paths.

// FuncNode is one function in a package's call graph: a declared
// function or method, or a function literal.
type FuncNode struct {
	// Name is a display identifier: the declared name for functions and
	// methods, "function literal" for anonymous functions.
	Name string
	// Fn is the declared function's type object; nil for literals.
	Fn *types.Func
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Body is the function body; nil for bodyless declarations.
	Body *ast.BlockStmt
	// Pos locates the declaration or literal.
	Pos token.Pos
	// Calls are the outgoing edges, in source order, deduplicated by
	// callee.
	Calls []Edge
}

// Edge is one call (or conservative contains-relation) in the graph.
type Edge struct {
	Callee *FuncNode
	Pos    token.Pos
}

// Graph is an intra-package call graph with closure-flow tracking.
type Graph struct {
	info  *types.Info
	Nodes []*FuncNode // declaration order across files
	byFn  map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	// bindings maps local variables to the function nodes that may be
	// stored in them (from assignments and var declarations).
	bindings map[types.Object][]*FuncNode
}

// NewGraph builds the call graph for the pass's package. Test files are
// excluded, mirroring every analyzer's production-code scope.
func NewGraph(pass *Pass) *Graph {
	g := &Graph{
		info:     pass.Info,
		byFn:     map[*types.Func]*FuncNode{},
		byLit:    map[*ast.FuncLit]*FuncNode{},
		bindings: map[types.Object][]*FuncNode{},
	}
	var files []*ast.File
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		files = append(files, f)
	}
	// Pass 1: one node per declared function and per function literal.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fn, _ := pass.Info.Defs[n.Name].(*types.Func)
				if fn == nil {
					return true
				}
				node := &FuncNode{Name: declName(n), Fn: fn, Body: n.Body, Pos: n.Pos()}
				g.byFn[fn] = node
				g.Nodes = append(g.Nodes, node)
			case *ast.FuncLit:
				node := &FuncNode{Name: "function literal", Lit: n, Body: n.Body, Pos: n.Pos()}
				g.byLit[n] = node
				g.Nodes = append(g.Nodes, node)
			}
			return true
		})
	}
	// Pass 2: closure-variable bindings, iterated to a fixpoint so
	// chains (g := f; h := g) resolve. The loop is bounded by the
	// longest chain; real code bottoms out in one or two rounds.
	for changed := true; changed; {
		changed = false
		for _, f := range files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i, lhs := range n.Lhs {
						changed = g.bind(lhs, n.Rhs[i]) || changed
					}
				case *ast.ValueSpec:
					if len(n.Names) != len(n.Values) {
						return true
					}
					for i, name := range n.Names {
						changed = g.bind(name, n.Values[i]) || changed
					}
				}
				return true
			})
		}
	}
	// Pass 3: edges. Each node walks its own body only; a nested
	// literal belongs to its own node but leaves a conservative
	// contains-edge in the enclosing function.
	for _, node := range g.Nodes {
		g.addEdges(node)
	}
	return g
}

// declName renders a function or method declaration's display name.
func declName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// bind records that lhs (an identifier) may hold the function value rhs
// evaluates to, reporting whether anything new was learned.
func (g *Graph) bind(lhs ast.Expr, rhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := g.info.Defs[id]
	if obj == nil {
		obj = g.info.Uses[id]
	}
	if obj == nil {
		return false
	}
	added := false
	for _, n := range g.NodesFor(rhs) {
		if !containsNode(g.bindings[obj], n) {
			g.bindings[obj] = append(g.bindings[obj], n)
			added = true
		}
	}
	return added
}

func containsNode(list []*FuncNode, n *FuncNode) bool {
	for _, have := range list {
		if have == n {
			return true
		}
	}
	return false
}

// NodesFor resolves a function-valued expression to the graph nodes it
// may denote: a literal, a declared function or method (including
// method values), or a closure variable's bound set. nil when the
// expression cannot be resolved (parameters, interface methods,
// cross-package functions).
func (g *Graph) NodesFor(e ast.Expr) []*FuncNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if n := g.byLit[e]; n != nil {
			return []*FuncNode{n}
		}
	case *ast.Ident:
		if obj := g.info.Uses[e]; obj != nil {
			if fn, ok := obj.(*types.Func); ok {
				if n := g.byFn[fn]; n != nil {
					return []*FuncNode{n}
				}
				return nil
			}
			return g.bindings[obj]
		}
	case *ast.SelectorExpr:
		if fn, ok := g.info.Uses[e.Sel].(*types.Func); ok {
			if n := g.byFn[fn]; n != nil {
				return []*FuncNode{n}
			}
		}
	}
	return nil
}

// NodeFor returns the node of a declared function, nil if unknown.
func (g *Graph) NodeFor(fn *types.Func) *FuncNode {
	return g.byFn[fn]
}

// addEdges walks node's body, collecting call edges and contains-edges
// for nested literals. Nested literal bodies are not descended into —
// they are their own nodes.
func (g *Graph) addEdges(node *FuncNode) {
	if node.Body == nil {
		return
	}
	ast.Inspect(node.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			g.edge(node, g.byLit[n], n.Pos())
			return false
		case *ast.CallExpr:
			for _, callee := range g.NodesFor(n.Fun) {
				g.edge(node, callee, n.Pos())
			}
		}
		return true
	})
}

func (g *Graph) edge(from, to *FuncNode, pos token.Pos) {
	if to == nil || to == from {
		return
	}
	for _, e := range from.Calls {
		if e.Callee == to {
			return
		}
	}
	from.Calls = append(from.Calls, Edge{Callee: to, Pos: pos})
}

// Fact is a primitive property detected at one site inside one function
// — "reads the wall clock here", "map order escapes here".
type Fact struct {
	Pos     token.Pos
	Message string
}

// ReachedFact is a Fact visible from a node through zero or more
// intra-package calls.
type ReachedFact struct {
	Fact
	// Via is the call chain from the queried node to the function
	// containing the fact; empty when the fact sits in the node itself.
	Via []*FuncNode
}

// Reach returns a memoised query closure: for any node, the facts it
// can reach transitively through its call edges, deduplicated by site
// (the first chain discovered is kept; traversal order is source
// order, so results are deterministic). Recursion is handled
// conservatively: a cycle's back edge contributes no additional facts.
func (g *Graph) Reach(local func(*FuncNode) []Fact) func(*FuncNode) []ReachedFact {
	memo := map[*FuncNode][]ReachedFact{}
	onStack := map[*FuncNode]bool{}
	var visit func(n *FuncNode) []ReachedFact
	visit = func(n *FuncNode) []ReachedFact {
		if r, ok := memo[n]; ok {
			return r
		}
		if onStack[n] {
			return nil
		}
		onStack[n] = true
		seen := map[token.Pos]bool{}
		var out []ReachedFact
		for _, f := range local(n) {
			if !seen[f.Pos] {
				seen[f.Pos] = true
				out = append(out, ReachedFact{Fact: f})
			}
		}
		for _, e := range n.Calls {
			for _, rf := range visit(e.Callee) {
				if seen[rf.Pos] {
					continue
				}
				seen[rf.Pos] = true
				via := make([]*FuncNode, 0, len(rf.Via)+1)
				via = append(via, e.Callee)
				via = append(via, rf.Via...)
				out = append(out, ReachedFact{Fact: rf.Fact, Via: via})
			}
		}
		onStack[n] = false
		memo[n] = out
		return out
	}
	return visit
}

// ViaString renders a reached fact's call chain for diagnostics:
// " via helper → inner", empty for a direct fact.
func ViaString(via []*FuncNode) string {
	if len(via) == 0 {
		return ""
	}
	names := make([]string, len(via))
	for i, n := range via {
		names[i] = n.Name
	}
	return " via " + strings.Join(names, " → ")
}

// RangeStmtsOf returns the map/slice range statements directly owned by
// node — excluding those inside nested function literals, which belong
// to their own nodes.
func RangeStmtsOf(node *FuncNode) []*ast.RangeStmt {
	if node.Body == nil {
		return nil
	}
	var out []*ast.RangeStmt
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != node.Lit {
			return false
		}
		if rs, ok := n.(*ast.RangeStmt); ok {
			out = append(out, rs)
		}
		return true
	})
	return out
}

// Describe renders a node for error messages, e.g. "Table2Result.Render".
func (n *FuncNode) Describe() string {
	return n.Name
}
