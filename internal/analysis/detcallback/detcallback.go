// Package detcallback enforces purity of the closures handed to the
// deterministic fork-join engine. A callback passed to
// parallel.For/ForChunks/Map/MapReduce/MinIndex/MaxFloat executes on an
// arbitrary worker in an arbitrary interleaving; the engine's
// bit-identical-at-any-worker-count guarantee (DESIGN.md §9) holds only
// if the callback is a pure function of its index and captured inputs.
// This analyzer therefore requires callbacks to be transitively free of
//
//   - wall-clock reads (time.Now/Since/Until),
//   - draws from the shared global math/rand source (worker-seeded
//     streams via *rand.Rand methods are fine), and
//   - map iterations whose order escapes (lintkit.MapRangeEscapes),
//
// where "transitively" follows the intra-package call graph: helpers,
// helpers-of-helpers, closure variables and method values are all
// traversed, and the diagnostic names the call chain that reaches the
// impurity.
//
// Functions marked with a //esharing:deterministic directive in their
// doc comment are held to the same contract — the server's shard
// decision path uses this to get engine-grade checking outside the
// parallel package.
package detcallback

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/lintkit"
)

// parallelPkg is the deterministic fork-join engine's import path.
const parallelPkg = "repro/internal/parallel"

// entryPoints are the engine functions that run caller closures on
// worker goroutines.
var entryPoints = map[string]bool{
	"For":       true,
	"ForChunks": true,
	"Map":       true,
	"MapReduce": true,
	"MinIndex":  true,
	"MaxFloat":  true,
}

// clockFuncs are the time functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// Analyzer is the detcallback check.
var Analyzer = &lintkit.Analyzer{
	Name: "detcallback",
	Doc: "closures passed to parallel.For/Map/MapReduce/MinIndex (and functions marked " +
		"//esharing:deterministic) must be transitively free of wall-clock reads, global " +
		"math/rand draws, and order-escaping map iterations",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	g := lintkit.NewGraph(pass)
	reach := g.Reach(func(n *lintkit.FuncNode) []lintkit.Fact {
		return impurities(pass, n)
	})
	// One report per impurity site: a helper shared by several callbacks
	// is one finding, not one per caller.
	type site struct {
		pos token.Pos
		msg string
	}
	seen := map[site]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		s := site{pos, fmt.Sprintf(format, args...)}
		if seen[s] {
			return
		}
		seen[s] = true
		pass.Reportf(pos, "%s", s.msg)
	}

	// Closures handed to the parallel engine.
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintkit.FuncOf(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != parallelPkg || !entryPoints[fn.Name()] {
				return true
			}
			for _, arg := range call.Args {
				t := pass.Info.TypeOf(arg)
				if t == nil {
					continue
				}
				if _, ok := t.Underlying().(*types.Signature); !ok {
					continue
				}
				for _, node := range g.NodesFor(arg) {
					for _, rf := range reach(node) {
						report(rf.Pos, "parallel.%s callback must be deterministic: %s%s",
							fn.Name(), rf.Message, lintkit.ViaString(rf.Via))
					}
				}
			}
			return true
		})
	}

	// Functions that declare the contract explicitly.
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !lintkit.HasDirective(fd.Doc, "esharing:deterministic") {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if node := g.NodeFor(fn); node != nil {
				for _, rf := range reach(node) {
					report(rf.Pos, "%s is marked //esharing:deterministic: %s%s",
						node.Describe(), rf.Message, lintkit.ViaString(rf.Via))
				}
			}
		}
	}
	return nil
}

// impurities collects a single node's local determinism violations:
// wall-clock reads, global rand draws, and order-escaping map ranges.
// Nested literals are excluded — they are their own nodes, reached
// through contains-edges.
func impurities(pass *lintkit.Pass, n *lintkit.FuncNode) []lintkit.Fact {
	if n.Body == nil {
		return nil
	}
	var facts []lintkit.Fact
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lintkit.FuncOf(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			if clockFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
				facts = append(facts, lintkit.Fact{
					Pos:     call.Pos(),
					Message: "reads the wall clock (time." + fn.Name() + ")",
				})
			}
		case "math/rand", "math/rand/v2":
			// Package-level functions draw from the shared global
			// source; methods on a *rand.Rand stream and the New*
			// constructors are deterministic under seeding discipline.
			if fn.Type().(*types.Signature).Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
				facts = append(facts, lintkit.Fact{
					Pos:     call.Pos(),
					Message: "draws from the shared global math/rand source (rand." + fn.Name() + ")",
				})
			}
		}
		return true
	})
	for _, rs := range lintkit.RangeStmtsOf(n) {
		for _, esc := range lintkit.MapRangeEscapes(pass.Info, rs, n.Body, nil) {
			facts = append(facts, lintkit.Fact{
				Pos:     esc.Pos,
				Message: "lets map iteration order escape (" + esc.What + ")",
			})
		}
	}
	return facts
}
