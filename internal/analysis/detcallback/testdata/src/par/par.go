// Package parallel stubs the deterministic fork-join engine's entry
// points alongside callers that exercise the detcallback analyzer. The
// directory is loaded under the production import path
// (repro/internal/parallel), so callee resolution matches the real
// engine: a closure handed to Map/For must be transitively pure.
package parallel

import (
	"math/rand"
	"sort"
	"time"
)

// Map mirrors the engine's signature; f runs on worker goroutines.
func Map(n, workers int, f func(i int) float64) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = f(i)
	}
	return out
}

// For mirrors the engine's parallel loop.
func For(n, workers int, f func(i int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}

// jitter hides the wall-clock read one call away from the callback.
func jitter() float64 {
	return float64(time.Now().Nanosecond()) // want `parallel.Map callback must be deterministic: reads the wall clock \(time\.Now\) via jitter`
}

func viaHelper(n int) []float64 {
	return Map(n, 4, func(i int) float64 {
		return jitter() + float64(i)
	})
}

// noisy draws from the global source, two helpers below the callback.
func noisy() float64 {
	return rand.Float64() // want `parallel.Map callback must be deterministic: draws from the shared global math/rand source \(rand\.Float64\) via indirect → noisy`
}

func indirect() float64 {
	return noisy()
}

func viaTwoHelpers(n int) []float64 {
	return Map(n, 2, func(i int) float64 {
		return indirect()
	})
}

// sampler reaches the global source through a bound method value.
type sampler struct {
	scale float64
}

func (s sampler) draw() float64 {
	return rand.ExpFloat64() * s.scale // want `parallel.Map callback must be deterministic: draws from the shared global math/rand source \(rand\.ExpFloat64\) via sampler\.draw`
}

func viaMethodValue(n int) []float64 {
	s := sampler{scale: 2}
	f := s.draw
	return Map(n, 2, func(i int) float64 {
		return f()
	})
}

// pickAny lets map iteration order escape; reached from a callback it
// breaks the bit-identical-at-any-worker-count guarantee.
func pickAny(m map[int]float64) float64 {
	for _, v := range m {
		return v // want `parallel.Map callback must be deterministic: lets map iteration order escape \(returns mid-iteration.*via pickAny`
	}
	return 0
}

func viaMapEscape(n int, m map[int]float64) []float64 {
	return Map(n, 2, func(i int) float64 {
		return pickAny(m)
	})
}

// decide opts into the engine contract explicitly.
//
//esharing:deterministic
func decide() int64 {
	return time.Now().UnixNano() // want `decide is marked //esharing:deterministic: reads the wall clock \(time\.Now\)`
}

// --- Deterministic callbacks: all quiet. ---

func pureSum(xs []float64) float64 {
	var t float64
	for _, v := range xs {
		t += v
	}
	return t
}

func viaPure(n int, xs []float64) []float64 {
	return Map(n, 2, func(i int) float64 {
		return pureSum(xs) + float64(i)
	})
}

// seeded uses a per-index stream: the New* constructors and *rand.Rand
// methods are deterministic under the seeding discipline.
func seeded(n int) []float64 {
	return Map(n, 2, func(i int) float64 {
		rng := rand.New(rand.NewSource(int64(i)))
		return rng.Float64()
	})
}

// sortedCount ranges over a map inside the callback, but through the
// collect-then-sort idiom, which does not let the order escape.
func sortedCount(m map[int]bool) int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return len(keys)
}

func viaSorted(n int, m map[int]bool) []float64 {
	return Map(n, 2, func(i int) float64 {
		return float64(sortedCount(m))
	})
}

func pureFor(n int, out []float64) {
	For(n, 2, func(i int) {
		out[i] = float64(i) * 0.5
	})
}
