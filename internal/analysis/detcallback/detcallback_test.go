package detcallback_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detcallback"
)

// TestParallelCallbacks loads the golden package under the engine's own
// import path, so the stub Map/For resolve as parallel entry points.
// The cases prove the transitive reach: wall-clock and global-rand
// draws are flagged through helper chains, method values, and map
// escapes, while seeded streams and collect-then-sort helpers pass.
func TestParallelCallbacks(t *testing.T) {
	analysistest.Run(t, "par", "repro/internal/parallel", detcallback.Analyzer)
}
