package chanlock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/chanlock"
)

// TestLockDiscipline loads the golden shard under the serving layer's
// import path: leaks, double releases, double acquires, branch
// disagreements, and hold-and-call regions are flagged, while the
// defer-release and select-acquire protocols pass.
func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "srv", "repro/internal/server", chanlock.Analyzer)
}
