// Package chanlock verifies the server's channel-as-lock discipline.
// The serving layer serialises placements with capacity-bounded
// channels of struct{} (shard.decision is a capacity-1 mutex,
// shard.queue an admission semaphore): `ch <- struct{}{}` acquires,
// `<-ch` releases. Unlike sync.Mutex there is no runtime self-check —
// a leaked acquisition deadlocks the shard forever and a double release
// corrupts the semaphore count — so this analyzer proves the pairing
// statically on every control-flow path:
//
//   - every acquisition must be released on every return path, either
//     by a deferred `func() { <-ch }()` or by an explicit receive
//     before each return;
//   - a release without a held acquisition, or an explicit release
//     while a deferred release is pending, is a double release;
//   - acquiring a lock already held is self-deadlock;
//   - branches (if/select/switch) must agree on the lock state where
//     they re-join, and loop bodies must preserve it;
//   - panic safety: any call made while a lock is held without a
//     deferred release is flagged — if the callee panics, the recovery
//     at the HTTP layer keeps the process alive but the lock is gone
//     and the shard is dead. Hold-and-call regions must use defer.
//
// Lock channels are discovered, not configured: any `chan struct{}`
// field or variable that production code sends `struct{}{}` into is
// treated as a lock, matched across functions by its field name.
package chanlock

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// scope limits the analyzer to the serving layer, the only place the
// channel-as-lock idiom is used.
var scope = []string{"repro/internal/server"}

// Analyzer is the chanlock check.
var Analyzer = &lintkit.Analyzer{
	Name: "chanlock",
	Doc: "channel-as-lock acquisitions (ch <- struct{}{}) must pair with releases (<-ch) on " +
		"every return and panic path; defer-release recognized; flags leaks, double " +
		"releases, and hold-and-call without defer",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if !lintkit.PathWithinAny(pass.Path, scope...) {
		return nil
	}
	names := lockNames(pass)
	if len(names) == 0 {
		return nil
	}
	c := &checker{pass: pass, lockNames: names}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		// Deferred release literals (defer func() { <-ch }()) are part of
		// their enclosing function's protocol, not independent functions.
		deferLits := map[*ast.FuncLit]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
					deferLits[lit] = true
				}
			}
			return true
		})
		// Every declared function and every other literal is analysed
		// from an empty lock state: a closure does not inherit its
		// creator's acquisitions — it runs later, on whatever goroutine
		// calls it.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.checkFunc(n.Body)
				}
			case *ast.FuncLit:
				if !deferLits[n] {
					c.checkFunc(n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// lockNames collects the terminal field/variable names of every
// `chan struct{}` that production code sends `struct{}{}` into.
func lockNames(pass *lintkit.Pass) map[string]bool {
	names := map[string]bool{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			if !isEmptyStructChan(pass.Info, send.Chan) {
				return true
			}
			if name, ok := terminalName(send.Chan); ok {
				names[name] = true
			}
			return true
		})
	}
	return names
}

// isEmptyStructChan reports whether e has type chan struct{}.
func isEmptyStructChan(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// terminalName extracts the final identifier of a channel expression
// ("sh.decision" → "decision"), which identifies the lock across
// functions regardless of the receiver variable's name.
func terminalName(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		return e.Sel.Name, true
	case *ast.IndexExpr:
		return terminalName(e.X)
	}
	return "", false
}

type checker struct {
	pass      *lintkit.Pass
	lockNames map[string]bool
}

// lockKey returns the rendered lock expression ("sh.decision") when e
// denotes a lock channel, "" otherwise.
func (c *checker) lockKey(e ast.Expr) string {
	if !isEmptyStructChan(c.pass.Info, e) {
		return ""
	}
	name, ok := terminalName(e)
	if !ok || !c.lockNames[name] {
		return ""
	}
	return types.ExprString(ast.Unparen(e))
}

// state is the lock state at one program point.
type state struct {
	held     map[string]token.Pos // lock key -> acquisition position
	deferred map[string]bool      // lock key -> a deferred release is registered
	flagged  map[string]bool      // hold-and-call already reported for this acquisition
}

func newState() *state {
	return &state{held: map[string]token.Pos{}, deferred: map[string]bool{}, flagged: map[string]bool{}}
}

func (st *state) clone() *state {
	n := newState()
	for k, v := range st.held {
		n.held[k] = v
	}
	for k := range st.deferred {
		n.deferred[k] = true
	}
	for k := range st.flagged {
		n.flagged[k] = true
	}
	return n
}

// sameHeld reports whether two states hold exactly the same locks.
func sameHeld(a, b *state) bool {
	if len(a.held) != len(b.held) {
		return false
	}
	for k := range a.held {
		if _, ok := b.held[k]; !ok {
			return false
		}
	}
	return true
}

// unprotected returns the held keys with no deferred release, in
// acquisition order.
func (st *state) unprotected() []string {
	var keys []string
	for k := range st.held {
		if !st.deferred[k] {
			keys = append(keys, k)
		}
	}
	// Deterministic order for diagnostics.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && st.held[keys[j]] < st.held[keys[j-1]]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// checkFunc analyses one function body from an empty lock state.
// Nested function literals that are not deferred releases are analysed
// independently with their own empty state (a literal does not inherit
// its creator's acquisitions — it runs later, on whatever goroutine
// calls it).
func (c *checker) checkFunc(body *ast.BlockStmt) {
	st := newState()
	terminated := c.checkBlock(body.List, st)
	if !terminated {
		for _, k := range st.unprotected() {
			c.pass.Reportf(st.held[k], "%s is still held when the function returns; release it or use defer", k)
		}
	}
}

// checkBlock runs the state machine over a statement list, reporting
// violations and returning whether control definitely leaves the
// enclosing function before the list's end.
func (c *checker) checkBlock(stmts []ast.Stmt, st *state) bool {
	for _, s := range stmts {
		if c.checkStmt(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) checkStmt(s ast.Stmt, st *state) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return c.checkBlock(s.List, st)

	case *ast.SendStmt:
		// Value and channel expressions evaluate before the send blocks.
		c.scanCalls(st, s.Chan, s.Value)
		if key := c.lockKey(s.Chan); key != "" {
			if pos, ok := st.held[key]; ok {
				c.pass.Reportf(s.Pos(), "%s acquired while already held (acquired at %s): self-deadlock",
					key, c.pass.Fset.Position(pos))
			}
			st.held[key] = s.Pos()
		}
		return false

	case *ast.ExprStmt:
		if un, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && un.Op == token.ARROW {
			if key := c.lockKey(un.X); key != "" {
				c.release(st, key, s.Pos())
				return false
			}
		}
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isPanicCall(c.pass.Info, call) {
			c.scanCalls(st, exprs(call.Args)...)
			for _, k := range st.unprotected() {
				c.pass.Reportf(s.Pos(), "panic while %s is held without a deferred release: the lock leaks", k)
			}
			return true
		}
		c.scanCalls(st, s.X)
		return false

	case *ast.AssignStmt:
		// v := <-lock and v, ok := <-lock are releases.
		if len(s.Rhs) == 1 {
			if un, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && un.Op == token.ARROW {
				if key := c.lockKey(un.X); key != "" {
					c.release(st, key, s.Pos())
					return false
				}
			}
		}
		c.scanCalls(st, exprs(s.Rhs, s.Lhs)...)
		return false

	case *ast.DeferStmt:
		// Arguments of the deferred call evaluate now.
		c.scanCalls(st, exprs(s.Call.Args)...)
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			for _, key := range c.releasesIn(lit.Body) {
				if _, ok := st.held[key]; !ok {
					c.pass.Reportf(s.Pos(), "deferred release of %s, which is not held here", key)
					continue
				}
				if st.deferred[key] {
					c.pass.Reportf(s.Pos(), "second deferred release of %s: double release", key)
					continue
				}
				st.deferred[key] = true
			}
		}
		return false

	case *ast.ReturnStmt:
		c.scanCalls(st, exprs(s.Results)...)
		for _, k := range st.unprotected() {
			c.pass.Reportf(s.Pos(), "return while %s is held (acquired at %s) without a release on this path",
				k, c.pass.Fset.Position(st.held[k]))
		}
		return true

	case *ast.BranchStmt:
		if s.Tok == token.FALLTHROUGH {
			return false
		}
		for _, k := range st.unprotected() {
			c.pass.Reportf(s.Pos(), "%s branches away while %s is held without a deferred release",
				s.Tok, k)
		}
		return true

	case *ast.IfStmt:
		if s.Init != nil {
			c.checkStmt(s.Init, st)
		}
		c.scanCalls(st, s.Cond)
		thenSt := st.clone()
		thenTerm := c.checkBlock(s.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.checkStmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			if !sameHeld(thenSt, elseSt) {
				c.pass.Reportf(s.Pos(), "lock state differs between branches: one path holds what the other released")
			}
			*st = *thenSt
		}
		return false

	case *ast.SelectStmt:
		return c.checkClauses(s.Pos(), s.Body.List, st, false)

	case *ast.SwitchStmt:
		if s.Init != nil {
			c.checkStmt(s.Init, st)
		}
		c.scanCalls(st, s.Tag)
		return c.checkClauses(s.Pos(), s.Body.List, st, !hasDefaultClause(s.Body.List))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.checkStmt(s.Init, st)
		}
		return c.checkClauses(s.Pos(), s.Body.List, st, !hasDefaultClause(s.Body.List))

	case *ast.ForStmt:
		if s.Init != nil {
			c.checkStmt(s.Init, st)
		}
		c.scanCalls(st, s.Cond)
		if s.Post != nil {
			c.checkStmt(s.Post, st.clone())
		}
		bodySt := st.clone()
		c.checkBlock(s.Body.List, bodySt)
		if !sameHeld(bodySt, st) {
			c.pass.Reportf(s.Pos(), "loop body changes the lock state: locks acquired in an iteration must be released in it")
		}
		return false

	case *ast.RangeStmt:
		c.scanCalls(st, s.X)
		bodySt := st.clone()
		c.checkBlock(s.Body.List, bodySt)
		if !sameHeld(bodySt, st) {
			c.pass.Reportf(s.Pos(), "loop body changes the lock state: locks acquired in an iteration must be released in it")
		}
		return false

	case *ast.LabeledStmt:
		return c.checkStmt(s.Stmt, st)

	case *ast.GoStmt:
		// The goroutine runs with its own (empty) lock state; its
		// argument expressions evaluate now.
		c.scanCalls(st, exprs(s.Call.Args)...)
		return false

	case *ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		c.scanCalls(st, s)
		return false

	default:
		c.scanCalls(st, s)
		return false
	}
}

// checkClauses analyses select/switch case clauses, each from a clone of
// the incoming state. fallPast adds the incoming state itself as a
// survivor (a switch without default may execute no clause). Surviving
// states must agree on the held set; the first survivor becomes the
// post-statement state.
func (c *checker) checkClauses(pos token.Pos, clauses []ast.Stmt, st *state, fallPast bool) bool {
	var survivors []*state
	for _, cl := range clauses {
		cst := st.clone()
		var term bool
		switch cl := cl.(type) {
		case *ast.CommClause:
			if cl.Comm != nil {
				c.checkStmt(cl.Comm, cst)
			}
			term = c.checkBlock(cl.Body, cst)
		case *ast.CaseClause:
			c.scanCalls(cst, exprs(cl.List)...)
			term = c.checkBlock(cl.Body, cst)
		default:
			continue
		}
		if !term {
			survivors = append(survivors, cst)
		}
	}
	if fallPast {
		survivors = append(survivors, st.clone())
	}
	if len(survivors) == 0 {
		return true
	}
	for _, sv := range survivors[1:] {
		if !sameHeld(survivors[0], sv) {
			c.pass.Reportf(pos, "lock state differs between branches: one path holds what the other released")
			break
		}
	}
	*st = *survivors[0]
	return false
}

// release applies a `<-lock` receive to the state.
func (c *checker) release(st *state, key string, pos token.Pos) {
	if _, ok := st.held[key]; !ok {
		c.pass.Reportf(pos, "%s released here but not held: double release or stray receive", key)
		return
	}
	if st.deferred[key] {
		c.pass.Reportf(pos, "%s released explicitly while a deferred release is pending: double release", key)
	}
	delete(st.held, key)
	delete(st.deferred, key)
	delete(st.flagged, key)
}

// releasesIn lists the lock keys received from anywhere in a deferred
// literal's body.
func (c *checker) releasesIn(body *ast.BlockStmt) []string {
	var keys []string
	ast.Inspect(body, func(n ast.Node) bool {
		if un, ok := n.(*ast.UnaryExpr); ok && un.Op == token.ARROW {
			if key := c.lockKey(un.X); key != "" {
				keys = append(keys, key)
			}
		}
		return true
	})
	return keys
}

// scanCalls applies the panic-safety rule: any function call evaluated
// while a lock is held without a deferred release is reported (once per
// acquisition). Conversions and builtins cannot panic-with-lock in a
// way a defer wouldn't also miss, so only real calls count; function
// literal bodies are skipped — they execute later, under checkFunc's
// independent analysis.
func (c *checker) scanCalls(st *state, nodes ...ast.Node) {
	risky := st.unprotected()
	if len(risky) == 0 {
		return
	}
	for _, n := range nodes {
		if n == nil {
			continue
		}
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if tv, ok := c.pass.Info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
				return true
			}
			for _, k := range risky {
				if st.flagged[k] {
					continue
				}
				st.flagged[k] = true
				c.pass.Reportf(call.Pos(),
					"call while %s is held without a deferred release: a panic in the callee leaks the lock; acquire with defer func() { <-%s }()",
					k, k)
			}
			return true
		})
	}
}

// hasDefaultClause reports whether a switch body contains a default
// case (a CaseClause with an empty expression list).
func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, cl := range clauses {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// isPanicCall reports whether call is the builtin panic.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if tv, ok := info.Types[call.Fun]; ok {
		return tv.IsBuiltin()
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// exprs flattens expression slices into a []ast.Node for scanCalls.
func exprs(lists ...[]ast.Expr) []ast.Node {
	var out []ast.Node
	for _, l := range lists {
		for _, e := range l {
			out = append(out, e)
		}
	}
	return out
}
