// Package srv stubs the serving layer's channel-as-lock discipline for
// the chanlock analyzer. It is loaded under repro/internal/server; the
// lock channels (decision, queue) are discovered from the sends below,
// exactly as in the production shard.
package srv

import "errors"

var errFail = errors.New("fail")

type shard struct {
	decision chan struct{}
	queue    chan struct{}
	count    int
}

func work() {}

// --- Correct protocols: all quiet. ---

// goodDefer is the production idiom: acquire, then defer the release so
// every return and panic path gives the lock back.
func (sh *shard) goodDefer() {
	sh.decision <- struct{}{}
	defer func() { <-sh.decision }()
	work()
	sh.count++
}

// goodExplicit pairs acquire and release explicitly; with no calls in
// the critical section there is no panic path to leak through.
func (sh *shard) goodExplicit() {
	sh.decision <- struct{}{}
	sh.count++
	<-sh.decision
}

// tryPlace mirrors placeLocked: a select acquire with a bail-out arm.
func (sh *shard) tryPlace(done chan bool) bool {
	select {
	case sh.decision <- struct{}{}:
	case <-done:
		return false
	}
	defer func() { <-sh.decision }()
	work()
	return true
}

// admit mirrors the queue admission gate: non-blocking semaphore grab.
func (sh *shard) admit() bool {
	select {
	case sh.queue <- struct{}{}:
	default:
		return false
	}
	defer func() { <-sh.queue }()
	work()
	return true
}

// sweep takes each shard's lock inside a helper, one full acquire/
// release pair per iteration.
func sweep(shards []*shard) int {
	total := 0
	for _, o := range shards {
		total += o.locked()
	}
	return total
}

func (sh *shard) locked() int {
	sh.decision <- struct{}{}
	defer func() { <-sh.decision }()
	return sh.count
}

// --- Violations. ---

func (sh *shard) leakOnError(fail bool) error {
	sh.decision <- struct{}{}
	if fail {
		return errFail // want `return while sh\.decision is held`
	}
	<-sh.decision
	return nil
}

func (sh *shard) leakAtEnd() {
	sh.decision <- struct{}{} // want `sh\.decision is still held when the function returns`
	sh.count++
}

func (sh *shard) doubleRelease() {
	sh.decision <- struct{}{}
	defer func() { <-sh.decision }()
	<-sh.decision // want `released explicitly while a deferred release is pending`
}

func (sh *shard) strayRelease() {
	<-sh.decision // want `released here but not held`
}

func (sh *shard) reacquire() {
	sh.decision <- struct{}{}
	defer func() { <-sh.decision }()
	sh.decision <- struct{}{} // want `acquired while already held`
}

func (sh *shard) holdAndCall() {
	sh.decision <- struct{}{}
	work() // want `call while sh\.decision is held without a deferred release`
	<-sh.decision
}

func (sh *shard) branchy(b bool) {
	sh.decision <- struct{}{}
	if b { // want `lock state differs between branches`
		<-sh.decision
	}
}

func (sh *shard) loopAcquire(n int) {
	for i := 0; i < n; i++ { // want `loop body changes the lock state`
		sh.decision <- struct{}{}
	}
}

func (sh *shard) panics() {
	sh.decision <- struct{}{}
	panic("boom") // want `panic while sh\.decision is held`
}
