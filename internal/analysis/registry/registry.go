// Package registry lists the analyzers that make up the esharing-lint
// suite, in the order they run and appear in documentation.
package registry

import (
	"repro/internal/analysis/chanlock"
	"repro/internal/analysis/detcallback"
	"repro/internal/analysis/floateq"
	"repro/internal/analysis/guardedby"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/mapiter"
	"repro/internal/analysis/nowalltime"
	"repro/internal/analysis/seededrand"
	"repro/internal/analysis/walerr"
)

// All returns the full esharing-lint analyzer suite.
func All() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		seededrand.Analyzer,
		nowalltime.Analyzer,
		guardedby.Analyzer,
		floateq.Analyzer,
		hotpathalloc.Analyzer,
		mapiter.Analyzer,
		detcallback.Analyzer,
		chanlock.Analyzer,
		walerr.Analyzer,
	}
}
