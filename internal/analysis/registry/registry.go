// Package registry lists the analyzers that make up the esharing-lint
// suite, in the order they run and appear in documentation.
package registry

import (
	"repro/internal/analysis/floateq"
	"repro/internal/analysis/guardedby"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/nowalltime"
	"repro/internal/analysis/seededrand"
)

// All returns the full esharing-lint analyzer suite.
func All() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		seededrand.Analyzer,
		nowalltime.Analyzer,
		guardedby.Analyzer,
		floateq.Analyzer,
		hotpathalloc.Analyzer,
	}
}
