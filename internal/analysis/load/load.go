// Package load parses and type-checks Go packages for the esharing-lint
// suite using only the standard library: go/parser for syntax and a
// go/importer "source" importer for dependency types. It backs the
// standalone lint driver and the analysistest harness; the vettool mode
// in cmd/esharing-lint type-checks against compiler export data
// instead, because `go vet` hands it pre-built dependency archives.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewInfo allocates the types.Info maps the analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// Files parses filenames and type-checks them as package path using
// imp. Type errors are returned joined after best-effort checking so a
// caller can decide whether they are fatal.
func Files(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err.Error()) },
	}
	pkg, _ := conf.Check(path, fset, files, info)
	out := &Package{Fset: fset, Path: path, Files: files, Types: pkg, Info: info}
	if len(typeErrs) > 0 {
		return out, fmt.Errorf("type-check %s:\n\t%s", path, strings.Join(typeErrs, "\n\t"))
	}
	return out, nil
}

// Dir loads the single package rooted at dir under the given import
// path, type-checking dependencies from source. Test files are
// excluded: the analyzers exempt them anyway, and golden testdata
// packages never carry them.
func Dir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		filenames = append(filenames, filepath.Join(dir, name))
	}
	sort.Strings(filenames)
	if len(filenames) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	return Files(fset, path, filenames, importer.ForCompiler(fset, "source", nil))
}
