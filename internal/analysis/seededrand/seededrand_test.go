package seededrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/seededrand"
)

func TestFlaggedOutsideStats(t *testing.T) {
	analysistest.Run(t, "flagged", "repro/internal/core", seededrand.Analyzer)
}

func TestStatsPackageExempt(t *testing.T) {
	analysistest.Run(t, "statspkg", "repro/internal/stats", seededrand.Analyzer)
}
