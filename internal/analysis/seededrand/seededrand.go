// Package seededrand forbids direct use of math/rand and math/rand/v2
// package-level randomness outside internal/stats. The placers are
// stochastic algorithms whose bit-identical reproducibility is the
// point of the reproduction, so every random stream must either come
// from stats.NewRNG / stats.NewRNGStream (explicit seed, documented
// stream separation) or be injected as a *rand.Rand so the caller owns
// the seed. Referencing rand types (*rand.Rand in signatures and
// fields) is fine; calling rand.New, rand.NewPCG, or any top-level
// convenience function (rand.N, rand.Float64, rand.Shuffle, ...) is
// not.
package seededrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// statsPath is the one package allowed to construct rand sources: it is
// where the seed discipline is implemented.
const statsPath = "repro/internal/stats"

// Analyzer is the seededrand check.
var Analyzer = &lintkit.Analyzer{
	Name: "seededrand",
	Doc: "forbid math/rand(/v2) package-level randomness outside internal/stats; " +
		"route all streams through stats.NewRNG/NewRNGStream or an injected *rand.Rand",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if lintkit.PathWithin(pass.Path, statsPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Only package-qualified selectors: rand.X with rand being
			// the math/rand or math/rand/v2 import, under any alias.
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Types (rand.Rand, rand.Source, rand.PCG in declarations)
			// carry no randomness; everything else — constructors,
			// top-level draws, the global Source — does.
			if _, isType := pass.Info.Uses[sel.Sel].(*types.TypeName); isType {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s bypasses the seed discipline: construct streams with stats.NewRNG/stats.NewRNGStream or accept an injected *rand.Rand",
				id.Name, sel.Sel.Name)
			return true
		})
	}
	return nil
}
