// Package statspkg is loaded under repro/internal/stats, the one
// package allowed to construct rand sources; nothing here is flagged.
package statspkg

import "math/rand/v2"

// NewRNG mirrors the real stats constructor.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}
