// Package flagged exercises seededrand: loaded under a deterministic
// production path, every package-level math/rand/v2 use must be
// reported; injected *rand.Rand streams and type references are fine.
package flagged

import "math/rand/v2"

// newHandRolled is the pattern the analyzer exists to kill: an ad-hoc
// PCG with a local magic constant instead of stats.NewRNG.
func newHandRolled(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xdeadbeef)) // want `rand\.New bypasses the seed discipline` `rand\.NewPCG bypasses the seed discipline`
}

// drawGlobal uses the process-global generator, which is seeded from
// runtime entropy and unreproducible.
func drawGlobal() float64 {
	return rand.Float64() // want `rand\.Float64 bypasses the seed discipline`
}

func rollGlobal(n int) int {
	return rand.IntN(n) // want `rand\.IntN bypasses the seed discipline`
}

// drawInjected is the approved shape: the caller owns the stream.
func drawInjected(rng *rand.Rand) float64 {
	return rng.Float64()
}

// shuffleWaived shows the escape hatch for a justified exception.
func shuffleWaived(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) //esharing:allow seededrand
}
