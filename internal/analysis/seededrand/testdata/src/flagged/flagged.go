// Package flagged exercises seededrand: loaded under a deterministic
// production path, every package-level math/rand/v2 use must be
// reported; injected *rand.Rand streams and type references are fine.
package flagged

import "math/rand/v2"

// newHandRolled is the pattern the analyzer exists to kill: an ad-hoc
// PCG with a local magic constant instead of stats.NewRNG.
func newHandRolled(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xdeadbeef)) // want `rand\.New bypasses the seed discipline` `rand\.NewPCG bypasses the seed discipline`
}

// drawGlobal uses the process-global generator, which is seeded from
// runtime entropy and unreproducible.
func drawGlobal() float64 {
	return rand.Float64() // want `rand\.Float64 bypasses the seed discipline`
}

func rollGlobal(n int) int {
	return rand.IntN(n) // want `rand\.IntN bypasses the seed discipline`
}

// drawInjected is the approved shape: the caller owns the stream.
func drawInjected(rng *rand.Rand) float64 {
	return rng.Float64()
}

// shuffleWaived shows the escape hatch for a justified exception.
func shuffleWaived(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) //esharing:allow seededrand
}

// parallelMap stands in for the fork–join engine's Map (the testdata
// module cannot import repro/internal/parallel): what matters is the
// worker-callback shape below.
func parallelMap(n int, f func(worker, i int) float64) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = f(0, i)
	}
	return out
}

// drawPerTask is the parallel anti-pattern: hand-rolling a generator
// inside a worker callback instead of stats.NewWorkerRNG(seed, stream,
// task). Even though the stream is keyed on the task index here, the
// raw constructor bypasses the substream spreading and must be flagged.
func drawPerTask(seed uint64, n int) []float64 {
	return parallelMap(n, func(w, i int) float64 {
		rng := rand.New(rand.NewPCG(seed, uint64(i))) // want `rand\.New bypasses the seed discipline` `rand\.NewPCG bypasses the seed discipline`
		return rng.Float64()
	})
}

// drawPerWorkerGlobal is the worse variant: the process-global generator
// consumed from concurrent callbacks is both unreproducible and
// schedule-dependent.
func drawPerWorkerGlobal(n int) []float64 {
	return parallelMap(n, func(w, i int) float64 {
		return rand.Float64() // want `rand\.Float64 bypasses the seed discipline`
	})
}
