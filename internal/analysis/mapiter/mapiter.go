// Package mapiter flags map iterations in the deterministic packages
// whose runtime-random order can escape into observable state: output
// written mid-loop, slices collected but never sorted, first-wins
// selections (return/break mid-iteration), last-wins assignments, and
// floating-point accumulations. The collect-then-sort idiom — append
// keys inside the loop, pass the slice to a standard-library sort after
// it — is recognized and stays quiet, as do keyed writes (m2[k] = v),
// integer counts, and boolean flags, all of which are order-free.
//
// The classification itself lives in lintkit.MapRangeEscapes; this
// analyzer supplies the package scope and the transitive output-writer
// query (a loop that feeds an intra-package helper which eventually
// calls fmt.Fprintf escapes just as surely as one calling it directly).
package mapiter

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// deterministicPkgs are the packages whose outputs must be a pure
// function of (seed, inputs) — DESIGN.md §§9–11.
var deterministicPkgs = []string{
	"repro/internal/core",
	"repro/internal/sim",
	"repro/internal/forecast",
	"repro/internal/stats",
	"repro/internal/experiments",
	"repro/internal/incentive",
	"repro/internal/parallel",
	"repro/internal/wal",
}

// Analyzer is the mapiter check.
var Analyzer = &lintkit.Analyzer{
	Name: "mapiter",
	Doc: "flag map iterations in deterministic packages whose order escapes into output, " +
		"unsorted slices, first-wins selections, or float accumulations; " +
		"the collect-then-sort idiom is recognized",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if !lintkit.PathWithinAny(pass.Path, deterministicPkgs...) {
		return nil
	}
	g := lintkit.NewGraph(pass)
	writesOutput := outputWriters(pass, g)
	outputWriter := func(fn *types.Func) bool {
		n := g.NodeFor(fn)
		return n != nil && writesOutput[n]
	}
	for _, node := range g.Nodes {
		for _, rs := range lintkit.RangeStmtsOf(node) {
			for _, esc := range lintkit.MapRangeEscapes(pass.Info, rs, node.Body, outputWriter) {
				pass.Reportf(esc.Pos, "map iteration order is runtime-random: %s", esc.What)
			}
		}
	}
	return nil
}

// outputWriters computes the nodes that transitively write formatted
// output (fmt print family or io-style Write methods), so the escape
// classifier can see through helpers like the experiments fprintf
// wrapper.
func outputWriters(pass *lintkit.Pass, g *lintkit.Graph) map[*lintkit.FuncNode]bool {
	reach := g.Reach(func(n *lintkit.FuncNode) []lintkit.Fact {
		var facts []lintkit.Fact
		if n.Body == nil {
			return nil
		}
		ast.Inspect(n.Body, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintkit.FuncOf(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			name := fn.Name()
			isFmtPrint := fn.Pkg().Path() == "fmt" &&
				(name == "Print" || name == "Printf" || name == "Println" ||
					name == "Fprint" || name == "Fprintf" || name == "Fprintln")
			isWriteMethod := fn.Type().(*types.Signature).Recv() != nil &&
				(name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune")
			if isFmtPrint || isWriteMethod {
				facts = append(facts, lintkit.Fact{Pos: call.Pos(), Message: "writes output"})
			}
			return true
		})
		return facts
	})
	set := map[*lintkit.FuncNode]bool{}
	for _, n := range g.Nodes {
		if len(reach(n)) > 0 {
			set[n] = true
		}
	}
	return set
}
