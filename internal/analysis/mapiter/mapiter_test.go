package mapiter_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/mapiter"
)

// TestDeterministicPackage loads the golden package under a
// deterministic import path: every order-escape shape is flagged and
// the collect-then-sort / keyed-write / counter idioms stay quiet.
func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, "det", "repro/internal/sim", mapiter.Analyzer)
}

// TestServerPackageExempt loads first-wins selections under the serving
// layer's path, which is outside the deterministic scope.
func TestServerPackageExempt(t *testing.T) {
	analysistest.Run(t, "srv", "repro/internal/server", mapiter.Analyzer)
}
