// Package det exercises the mapiter analyzer. It is loaded under a
// deterministic import path (repro/internal/sim), so every way a map
// iteration's order can escape is flagged, while the collect-then-sort
// idiom and the order-free patterns stay quiet.
package det

import (
	"fmt"
	"sort"
	"strings"
)

// firstKey is the canonical first-wins selection: whichever entry the
// runtime happens to serve first becomes the answer.
func firstKey(m map[int]float64) int {
	for k := range m {
		return k // want `returns mid-iteration`
	}
	return -1
}

func anyKey(m map[int]bool) int {
	k := -1
	for key := range m {
		k = key // want `assigns an iteration-derived value to k`
		break   // want `breaks mid-iteration`
	}
	return k
}

func sumFloats(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `accumulates floating point into total`
	}
	return total
}

func argmax(m map[int]float64) int {
	best := -1
	bestV := 0.0
	for k, v := range m {
		if v > bestV {
			bestV = v // want `assigns an iteration-derived value to bestV`
			best = k  // want `assigns an iteration-derived value to best`
		}
	}
	return best
}

func concat(m map[int]string) string {
	out := ""
	for _, v := range m {
		out += v // want `concatenates onto out`
	}
	return out
}

func unsortedKeys(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `never passes it to a standard-library sort`
	}
	return keys
}

// handSorted orders the collected keys, but with a hand-rolled
// insertion sort the analyzer does not recognize.
func handSorted(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `never passes it to a standard-library sort`
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// sortBefore sorts the slice, but before the loop — the append still
// lands in map order.
func sortBefore(m map[int]bool, keys []int) []int {
	sort.Ints(keys)
	for k := range m {
		keys = append(keys, k) // want `never passes it to a standard-library sort`
	}
	return keys
}

func dump(m map[int]float64) {
	for k, v := range m {
		fmt.Printf("%d=%v\n", k, v) // want `writes iteration-derived values to output`
	}
}

// emit is an intra-package output helper; feeding it from a map loop
// escapes just as surely as calling fmt directly.
func emit(s string) {
	fmt.Println(s)
}

func dumpVia(m map[int]string) {
	for _, v := range m {
		emit(v) // want `passes iteration-derived values to emit, which writes output`
	}
}

func joinKeys(m map[string]bool) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `writes iteration-derived values via WriteString`
	}
	return b.String()
}

func stream(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want `sends iteration-derived values on a channel`
	}
}

// closureSum accumulates through a per-iteration closure; the escape
// rules still apply inside the literal.
func closureSum(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		add := func() {
			total += v // want `accumulates floating point into total`
		}
		add()
	}
	return total
}

// --- Order-free patterns: all quiet. ---

// sortedKeys is the canonical collect-then-sort idiom.
func sortedKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// descKeys sorts through the sort.Sort/Reverse wrappers.
func descKeys(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(keys)))
	return keys
}

func countBikes(m map[int][]int64) int {
	total := 0
	for _, ids := range m {
		total += len(ids)
	}
	return total
}

func invert(m map[int]string) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func contains(m map[int]bool, want int) bool {
	found := false
	for k := range m {
		if k == want {
			found = true
		}
	}
	return found
}

func locals(m map[int]float64) int {
	n := 0
	for _, v := range m {
		scaled := v * 2
		if scaled > 1 {
			n++
		}
	}
	return n
}
