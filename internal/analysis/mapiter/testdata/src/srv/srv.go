// Package srv is loaded under repro/internal/server, which is outside
// the deterministic scope: the serving layer may pick arbitrary map
// entries (e.g. draining a set of ready shards), so nothing here is
// flagged.
package srv

func firstReady(ready map[int]bool) int {
	for i := range ready {
		return i
	}
	return -1
}

func drain(pending map[int]float64) float64 {
	var total float64
	for _, v := range pending {
		total += v
	}
	return total
}
