// Package walerr audits error flow on the durability path. The WAL's
// contract (DESIGN.md §10) is that a decision is durable — or the
// server knows it is not — before the response is released: an append
// or snapshot failure must either propagate to the caller or latch the
// degradation flags (walFailed / walFailures) that flip /healthz. An
// error dropped on this path silently turns "durable" into "maybe".
//
// The analyzer targets error-returning durability calls — the wal.Log
// methods (AppendDecision, AppendPickup, WriteSnapshot, Sync, Close),
// the server's shard wrappers (openWAL, closeWAL, writeWALSnapshot) and
// Server.Close, and inside internal/wal the raw file operations
// (Write, Sync, Truncate; Close is exempt as the error-path cleanup
// idiom) — and reports when a result is
//
//   - dropped: the call stands alone as a statement or is deferred,
//   - blanked: assigned to _,
//   - shadowed: the error variable is overwritten before any read, or
//   - ignored: the variable is never consulted afterwards.
//
// Append and snapshot calls additionally carry the latching contract:
// the enclosing function must hold the shard's decision lock (acquire
// it, or declare "caller holds decision") and must either propagate the
// error or reference the degradation flags after the call.
package walerr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/lintkit"
)

// scope is the durability path: the WAL itself, the serving layer that
// drives it, and the binary that closes it on shutdown.
var scope = []string{
	"repro/internal/wal",
	"repro/internal/server",
	"repro/cmd/esharing-server",
}

// walPkg is the log implementation's import path; serverPkg is the
// serving layer that wraps it.
const (
	walPkg    = "repro/internal/wal"
	serverPkg = "repro/internal/server"
)

// Analyzer is the walerr check.
var Analyzer = &lintkit.Analyzer{
	Name: "walerr",
	Doc: "error results of WAL Append/Sync/snapshot calls on the durability path must not be " +
		"dropped, blanked, or shadowed, and append/snapshot failures must propagate or latch " +
		"degradation (walFailed) under the decision lock",
	Run: run,
}

// logMethods are the wal.Log methods whose errors carry durability.
var logMethods = map[string]bool{
	"AppendDecision": true,
	"AppendPickup":   true,
	"WriteSnapshot":  true,
	"Sync":           true,
	"Close":          true,
}

// latchingMethods additionally require the decision lock and
// degradation latching (Sync/Close run on shutdown paths where the
// response-release contract does not apply).
var latchingMethods = map[string]bool{
	"AppendDecision": true,
	"AppendPickup":   true,
	"WriteSnapshot":  true,
}

// shardWrappers are the serving layer's durability wrappers, matched as
// methods on the shard/Server types of the package under analysis.
var shardWrappers = map[string]bool{
	"openWAL":          true,
	"closeWAL":         true,
	"writeWALSnapshot": true,
}

// fileMethods are the raw *os.File operations checked inside
// internal/wal itself.
var fileMethods = map[string]bool{"Write": true, "Sync": true, "Truncate": true}

func run(pass *lintkit.Pass) error {
	if !lintkit.PathWithinAny(pass.Path, scope...) {
		return nil
	}
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

type checker struct {
	pass *lintkit.Pass
}

// targetName classifies a call as a durability call, returning a
// display name ("wal.AppendDecision") or "".
func (c *checker) targetName(call *ast.CallExpr) string {
	fn := lintkit.FuncOf(c.pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if !returnsError(sig) {
		return ""
	}
	recvName := namedRecv(sig)
	switch {
	case logMethods[fn.Name()] && recvName == "Log" &&
		(fn.Pkg().Path() == walPkg || fn.Pkg().Path() == c.pass.Path):
		return "wal." + fn.Name()
	case (shardWrappers[fn.Name()] && recvName == "shard" || fn.Name() == "Close" && recvName == "Server") &&
		(fn.Pkg().Path() == serverPkg || fn.Pkg().Path() == c.pass.Path):
		return recvName + "." + fn.Name()
	case fileMethods[fn.Name()] && recvName == "File" && fn.Pkg().Path() == "os" &&
		lintkit.PathWithin(c.pass.Path, walPkg):
		return "File." + fn.Name()
	}
	return ""
}

// latching reports whether the named target carries the latch-or-
// propagate contract.
func latching(name string) bool {
	short := name[strings.IndexByte(name, '.')+1:]
	return strings.HasPrefix(name, "wal.") && latchingMethods[short] || short == "writeWALSnapshot"
}

// returnsError reports whether the signature's last result is error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	t, ok := res.At(res.Len() - 1).Type().(*types.Named)
	return ok && t.Obj().Pkg() == nil && t.Obj().Name() == "error"
}

// namedRecv returns the receiver's named-type name, "" if unresolvable.
func namedRecv(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// checkFunc audits every durability call inside one declared function
// (including its nested literals — error flow is positional within the
// whole declaration).
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := c.targetName(call)
		if name == "" {
			return true
		}
		c.checkCall(fd, call, name)
		return true
	})
}

// checkCall classifies how the call's error result is consumed.
func (c *checker) checkCall(fd *ast.FuncDecl, call *ast.CallExpr, name string) {
	path := pathTo(fd.Body, call)
	if path == nil {
		return
	}
	// Walk outward from the call to the statement that contains it.
	var parent ast.Node
	for i := len(path) - 2; i >= 0; i-- {
		if _, ok := path[i].(ast.Stmt); ok {
			parent = path[i]
			break
		}
		if _, ok := path[i].(ast.Expr); ok && path[i] != call {
			// The call is a subexpression (condition, argument, return
			// value): its result is consumed where it stands.
			parent = path[i]
			break
		}
	}
	switch p := parent.(type) {
	case *ast.ExprStmt:
		c.pass.Reportf(call.Pos(), "error from %s is dropped; a durability failure must propagate or latch degradation", name)
		return
	case *ast.DeferStmt:
		c.pass.Reportf(call.Pos(), "deferred %s discards its error; call it explicitly and consume the result", name)
		return
	case *ast.GoStmt:
		c.pass.Reportf(call.Pos(), "error from %s is discarded by go; durability calls must run synchronously on the request path", name)
		return
	case *ast.AssignStmt:
		errObj, blank := errAssigned(c.pass.Info, p, call)
		if blank {
			c.pass.Reportf(call.Pos(), "error from %s is assigned to _; a durability failure must propagate or latch degradation", name)
			return
		}
		if errObj != nil {
			c.checkErrFlow(fd, call, p, errObj, name)
		}
	case *ast.ReturnStmt:
		// Propagated directly.
	default:
		// Consumed as a subexpression (if l.Sync() != nil, fmt.Errorf
		// wrapping, …).
	}
	if latching(name) {
		c.checkLatch(fd, call, name)
	}
}

// errAssigned finds the object the call's error result lands in: the
// last assignee when the call is the sole right-hand side. blank is
// true when that position is _.
func errAssigned(info *types.Info, as *ast.AssignStmt, call *ast.CallExpr) (types.Object, bool) {
	if len(as.Rhs) != 1 || ast.Unparen(as.Rhs[0]) != ast.Node(call) || len(as.Lhs) == 0 {
		return nil, false
	}
	last := ast.Unparen(as.Lhs[len(as.Lhs)-1])
	id, ok := last.(*ast.Ident)
	if !ok {
		return nil, false
	}
	if id.Name == "_" {
		return nil, true
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	return obj, false
}

// checkErrFlow verifies the assigned error variable is read before
// being overwritten, anywhere later in the function. The ordering is
// positional — a sound approximation for the straight-line durability
// wrappers this analyzer audits.
func (c *checker) checkErrFlow(fd *ast.FuncDecl, call *ast.CallExpr, assign *ast.AssignStmt, obj types.Object, name string) {
	var firstUse, firstOverwrite token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Pos() <= assign.Pos() || n.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || c.objOf(id) != obj {
					continue
				}
				// x = f(x) reads before it writes.
				if usesObj(c.pass.Info, n.Rhs, obj) {
					continue
				}
				if firstOverwrite == token.NoPos || n.Pos() < firstOverwrite {
					firstOverwrite = n.Pos()
				}
				// The LHS identifier is not a read; skip the subtree.
				return false
			}
		case *ast.Ident:
			if n.Pos() <= assign.End() || c.objOf(n) != obj {
				return true
			}
			if !isWriteTarget(fd.Body, n) {
				if firstUse == token.NoPos || n.Pos() < firstUse {
					firstUse = n.Pos()
				}
			}
		}
		return true
	})
	switch {
	case firstUse == token.NoPos:
		c.pass.Reportf(call.Pos(), "error from %s is assigned but never consulted; a durability failure must propagate or latch degradation", name)
	case firstOverwrite != token.NoPos && firstOverwrite < firstUse:
		c.pass.Reportf(call.Pos(), "error from %s is overwritten before it is checked (shadowed at %s)",
			name, c.pass.Fset.Position(firstOverwrite))
	}
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if obj := c.pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return c.pass.Info.Defs[id]
}

// isWriteTarget reports whether id is the left-hand side of a plain
// assignment (a write, not a read).
func isWriteTarget(body *ast.BlockStmt, id *ast.Ident) bool {
	path := pathTo(body, id)
	for i := len(path) - 2; i >= 0; i-- {
		as, ok := path[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		for _, lhs := range as.Lhs {
			if ast.Unparen(lhs) == ast.Node(id) {
				return as.Tok == token.ASSIGN || as.Tok == token.DEFINE
			}
		}
		return false
	}
	return false
}

// checkLatch enforces the latch-or-propagate contract for append and
// snapshot calls: the enclosing function must operate under the
// decision lock, and the failure must reach a return statement or the
// degradation flags after the call.
func (c *checker) checkLatch(fd *ast.FuncDecl, call *ast.CallExpr, name string) {
	// Only the serving layer has the decision lock and the degradation
	// flags; inside internal/wal the methods are the implementation.
	if lintkit.PathWithin(c.pass.Path, walPkg) {
		return
	}
	if !underDecisionLock(c.pass, fd) {
		c.pass.Reportf(call.Pos(),
			"%s must run under the decision lock (acquire it or document \"caller holds decision\") so the failure latches before the response releases", name)
	}
	if !propagatesOrLatches(c.pass, fd, call) {
		c.pass.Reportf(call.Pos(),
			"failure of %s is neither returned nor latched into walFailed/walFailures after the call", name)
	}
}

// underDecisionLock reports whether fd acquires the decision channel
// itself or documents that its caller holds it.
func underDecisionLock(pass *lintkit.Pass, fd *ast.FuncDecl) bool {
	for _, name := range lintkit.CallerHolds(fd.Doc) {
		if name == "decision" {
			return true
		}
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if send, ok := n.(*ast.SendStmt); ok {
			if sel, ok := ast.Unparen(send.Chan).(*ast.SelectorExpr); ok && sel.Sel.Name == "decision" {
				found = true
			}
			if id, ok := ast.Unparen(send.Chan).(*ast.Ident); ok && id.Name == "decision" {
				found = true
			}
		}
		return !found
	})
	return found
}

// propagatesOrLatches reports whether, after the call, the function
// either returns the error (directly or via the assigned variable) or
// touches the degradation flags.
func propagatesOrLatches(pass *lintkit.Pass, fd *ast.FuncDecl, call *ast.CallExpr) bool {
	// Direct propagation: the call sits in a return statement.
	path := pathTo(fd.Body, call)
	for i := len(path) - 2; i >= 0; i-- {
		if _, ok := path[i].(*ast.ReturnStmt); ok {
			return true
		}
		if _, ok := path[i].(ast.Stmt); ok {
			break
		}
	}
	ok := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Pos() > call.Pos() && (n.Sel.Name == "walFailed" || n.Sel.Name == "walFailures") {
				ok = true
			}
		case *ast.ReturnStmt:
			if n.Pos() > call.Pos() {
				// Any later return whose results mention an error-typed
				// identifier counts as propagation.
				for _, r := range n.Results {
					if isErrorExpr(pass.Info, r) {
						ok = true
					}
				}
			}
		}
		return !ok
	})
	return ok
}

// isErrorExpr reports whether e has static type error.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// usesObj reports whether obj appears in any of the expressions.
func usesObj(info *types.Info, es []ast.Expr, obj types.Object) bool {
	for _, e := range es {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// pathTo returns the enclosing-node chain from root down to target,
// inclusive, or nil when target is not under root.
func pathTo(root ast.Node, target ast.Node) []ast.Node {
	var stack, path []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if path != nil {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == target {
			path = append([]ast.Node(nil), stack...)
			return false
		}
		return true
	})
	return path
}
