// Package srv stubs the serving layer's durability surface for the
// walerr analyzer. It is loaded under repro/internal/server, so the
// local Log type stands in for wal.Log and the shard fields carry the
// degradation-latching contract.
package srv

// Log stands in for the wal.Log; the analyzer matches its methods by
// receiver type name within the package under analysis.
type Log struct{}

func (l *Log) AppendDecision(v int) error { return nil }
func (l *Log) Sync() error                { return nil }
func (l *Log) Close() error               { return nil }
func (l *Log) WriteSnapshot() error       { return nil }

type shard struct {
	decision    chan struct{}
	wal         *Log
	walFailed   bool
	walFailures int64
}

// --- Correct flows: all quiet. ---

// logDecision mirrors the production pattern: the failure latches into
// the degradation flags before the response releases.
// The caller holds decision.
func (sh *shard) logDecision(v int) {
	err := sh.wal.AppendDecision(v)
	if err != nil {
		sh.walFailures++
		sh.walFailed = true
	}
}

// snapshotLocked acquires the decision lock itself and propagates.
func (sh *shard) snapshotLocked() error {
	sh.decision <- struct{}{}
	defer func() { <-sh.decision }()
	return sh.wal.WriteSnapshot()
}

// closeAll consumes the close error explicitly.
func (sh *shard) closeAll() error {
	if err := sh.wal.Close(); err != nil {
		return err
	}
	return nil
}

// --- Violations. ---

// dropped loses the append result entirely; caller holds decision.
func (sh *shard) dropped(v int) {
	sh.wal.AppendDecision(v) // want `error from wal\.AppendDecision is dropped`
}

// blanked discards it explicitly; caller holds decision.
func (sh *shard) blanked(v int) {
	_ = sh.wal.AppendDecision(v) // want `error from wal\.AppendDecision is assigned to _`
}

// shadowed overwrites the append error with the sync error before
// anyone reads it; caller holds decision.
func (sh *shard) shadowed(v int) {
	err := sh.wal.AppendDecision(v) // want `overwritten before it is checked`
	err = sh.wal.Sync()
	if err != nil {
		sh.walFailed = true
	}
}

// ignored assigns the append error into a variable that is never
// consulted again; caller holds decision.
func (sh *shard) ignored(v int) error {
	err := sh.wal.Sync()
	if err != nil {
		return err
	}
	err = sh.wal.AppendDecision(v) // want `assigned but never consulted`
	sh.walFailed = true
	return nil
}

// unlatched propagates, but runs the append outside the decision lock.
func (sh *shard) unlatched(v int) error {
	return sh.wal.AppendDecision(v) // want `must run under the decision lock`
}

// noLatch checks the error but neither returns it nor flips the
// degradation flags; caller holds decision.
func (sh *shard) noLatch(v int) {
	if err := sh.wal.AppendDecision(v); err != nil { // want `neither returned nor latched`
		println("append failed")
	}
}

// deferredClose hands the error to defer, where it evaporates.
func (sh *shard) deferredClose() {
	defer sh.wal.Close() // want `deferred wal\.Close discards its error`
}

// async pushes the append off the request path; caller holds decision.
func (sh *shard) async(v int) {
	go sh.wal.AppendDecision(v) // want `discarded by go`
}
