// Package wal stubs the log implementation for the walerr analyzer's
// raw-file rules: inside repro/internal/wal the *os.File Write/Sync/
// Truncate errors are durability-bearing (Close stays exempt as the
// error-path cleanup idiom), while the latching contract does not apply
// — these methods ARE the implementation.
package wal

import "os"

type Log struct {
	f *os.File
}

func (l *Log) Sync() error { return l.f.Sync() }

// writeFrame consumes every error: quiet.
func writeFrame(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	return f.Sync()
}

func sloppy(f *os.File, b []byte) {
	f.Write(b) // want `error from File\.Write is dropped`
	f.Sync()   // want `error from File\.Sync is dropped`
	f.Close()  // quiet: Close is the error-path cleanup idiom
}

func truncSloppy(f *os.File) {
	f.Truncate(0) // want `error from File\.Truncate is dropped`
}

func flush(l *Log) {
	l.Sync() // want `error from wal\.Sync is dropped`
}
