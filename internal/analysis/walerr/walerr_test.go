package walerr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/walerr"
)

// TestServingLayer covers the wal.Log method rules and the latching
// contract under the serving layer's import path.
func TestServingLayer(t *testing.T) {
	analysistest.Run(t, "srv", "repro/internal/server", walerr.Analyzer)
}

// TestWALInternals covers the raw *os.File rules inside the log
// implementation, where the latching contract does not apply.
func TestWALInternals(t *testing.T) {
	analysistest.Run(t, "walpkg", "repro/internal/wal", walerr.Analyzer)
}
