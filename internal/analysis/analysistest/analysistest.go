// Package analysistest runs a lintkit analyzer over a golden testdata
// package and checks its diagnostics against // want comments, in the
// style of golang.org/x/tools/go/analysis/analysistest:
//
//	rng := rand.New(rand.NewPCG(1, 2)) // want `bypasses the seed discipline`
//
// A want comment carries one or more double- or back-quoted regular
// expressions; every expectation on a line must be matched by a
// diagnostic on that line, and every diagnostic must be expected.
// Testdata packages live under testdata/src/<dir> and are loaded under
// a caller-chosen import path, so path-scoped analyzers can be
// exercised against the production package paths they guard.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/load"
)

// Run loads testdata/src/<dir> as import path pkgPath, applies the
// analyzer, and reports any mismatch between diagnostics and // want
// expectations as test errors.
func Run(t *testing.T, dir, pkgPath string, analyzer *lintkit.Analyzer) {
	t.Helper()
	pkg, err := load.Dir(filepath.Join("testdata", "src", dir), pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags, err := lintkit.Run(pkg.Fset, pkg.Files, pkg.Path, pkg.Types, pkg.Info, []*lintkit.Analyzer{analyzer})
	if err != nil {
		t.Fatalf("run %s: %v", analyzer.Name, err)
	}
	checkExpectations(t, pkg, diags)
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// checkExpectations cross-matches diagnostics against want comments.
func checkExpectations(t *testing.T, pkg *load.Package, diags []lintkit.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, err := parseWant(c.Text)
				if err != nil {
					t.Fatalf("%s: %v", pkg.Fset.Position(c.Pos()), err)
				}
				if len(patterns) == 0 {
					continue
				}
				key := lineKey(pkg.Fset.Position(c.Pos()))
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pkg.Fset.Position(c.Pos()), p, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, exp := range wants[lineKey(pos)] {
			if exp.re.MatchString(d.Message) {
				exp.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, exp.re)
			}
		}
	}
}

func lineKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}

// parseWant extracts the quoted patterns from a // want comment, or nil
// when the comment is not a want comment.
func parseWant(comment string) ([]string, error) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil, nil
	}
	var patterns []string
	rest = strings.TrimSpace(rest)
	for rest != "" {
		switch rest[0] {
		case '"':
			pattern, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return nil, fmt.Errorf("malformed want pattern %q", rest)
			}
			unquoted, _ := strconv.Unquote(pattern)
			patterns = append(patterns, unquoted)
			rest = strings.TrimSpace(rest[len(pattern):])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", rest)
			}
			patterns = append(patterns, rest[1:1+end])
			rest = strings.TrimSpace(rest[2+end:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted, got %q", rest)
		}
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("want comment carries no patterns")
	}
	return patterns, nil
}
