// Package hotpathalloc keeps the fmt slow path out of functions marked
//
//	//esharing:hotpath
//
// in their doc comment. The marked set is the placement decision path
// (the placers' Place methods run once per trip request, serialised
// behind the server's decision lock) and the /metrics scrape path
// (polled continuously by monitoring; PR 2 moved it to pre-rendered
// line prefixes + strconv.Append*). fmt.Sprintf/Errorf/Sprint/Sprintln
// reflect over their arguments and allocate on every call — even on
// "cold" error branches inside a hot function they are one refactor
// away from the fast path, so the marked functions use typed errors,
// pre-rendered strings and strconv appends instead. Function literals
// nested in a marked function inherit the budget.
package hotpathalloc

import (
	"go/ast"

	"repro/internal/analysis/lintkit"
)

// Directive marks a function as being on an allocation-budgeted hot
// path.
const Directive = "esharing:hotpath"

// bannedFmtFuncs are the fmt constructors that reflect and allocate.
// Fprintf into an existing buffer is deliberately not banned: the
// scrape path's top-level gauges use it once per family, not per
// sample.
var bannedFmtFuncs = map[string]bool{
	"Sprintf": true, "Errorf": true, "Sprint": true, "Sprintln": true,
}

// Analyzer is the hotpathalloc check.
var Analyzer = &lintkit.Analyzer{
	Name: "hotpathalloc",
	Doc: "forbid fmt.Sprintf/Errorf/Sprint/Sprintln in functions marked //esharing:hotpath " +
		"(the Place decision path and the /metrics scrape path)",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !lintkit.HasDirective(fn.Doc, Directive) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := lintkit.FuncOf(pass.Info, call)
				if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "fmt" ||
					!bannedFmtFuncs[callee.Name()] {
					return true
				}
				pass.Reportf(call.Pos(),
					"fmt.%s allocates on the //esharing:hotpath function %s; use typed errors, pre-rendered strings or strconv appends",
					callee.Name(), fn.Name.Name)
				return true
			})
		}
	}
	return nil
}
