// Package hot exercises hotpathalloc: fmt constructors inside
// //esharing:hotpath functions are flagged, including in nested
// closures; unmarked functions and allocation-free rendering are fine.
package hot

import (
	"errors"
	"fmt"
	"strconv"
)

var errNegative = errors.New("negative request")

// place is on the decision hot path.
//
//esharing:hotpath
func place(x int) (string, error) {
	if x < 0 {
		return "", fmt.Errorf("bad request %d", x) // want `fmt\.Errorf allocates on the //esharing:hotpath function place`
	}
	return fmt.Sprintf("station-%d", x), nil // want `fmt\.Sprintf allocates on the //esharing:hotpath function place`
}

// scrape renders counters with strconv appends; clean.
//
//esharing:hotpath
func scrape(buf []byte, v int64) []byte {
	buf = append(buf, "esharing_requests_total "...)
	return strconv.AppendInt(buf, v, 10)
}

// placeTyped is the approved error shape: a prebuilt typed error.
//
//esharing:hotpath
func placeTyped(x int) (int, error) {
	if x < 0 {
		return 0, errNegative
	}
	return x, nil
}

// observe inherits the budget into its deferred closure.
//
//esharing:hotpath
func observe(f func() int) (s string) {
	defer func() {
		s = fmt.Sprint(f()) // want `fmt\.Sprint allocates on the //esharing:hotpath function observe`
	}()
	return
}

// cold is unmarked: fmt is fine off the hot paths.
func cold(x int) error {
	return fmt.Errorf("cold path %d", x)
}
