package hotpathalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotpathalloc"
)

func TestHotPathBudget(t *testing.T) {
	analysistest.Run(t, "hot", "repro/internal/core", hotpathalloc.Analyzer)
}
