package sim

import (
	"testing"
	"time"
)

func TestRunMultiPeriodValidation(t *testing.T) {
	stations, fleet := chargingFixture(t, 11)
	if _, err := RunMultiPeriod(stations, fleet, DefaultChargingConfig(0.4), 0, 0); err == nil {
		t.Error("zero periods should error")
	}
	if _, err := RunMultiPeriod(stations, fleet, DefaultChargingConfig(0.4), 2, 1.5); err == nil {
		t.Error("drain > 1 should error")
	}
}

func TestRunMultiPeriodClearsStragglers(t *testing.T) {
	// Without between-period drain, successive rounds must eventually
	// charge every low bike — the paper's deferred-straggler claim.
	stations, fleet := chargingFixture(t, 12)
	initialLow := len(fleet.LowBikes())
	if initialLow == 0 {
		t.Fatal("fixture has no low bikes")
	}
	res, err := RunMultiPeriod(stations, fleet, DefaultChargingConfig(0.7), 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeriodsToClear == 0 {
		t.Errorf("low bikes never cleared over 6 periods (final low %d)",
			res.Periods[len(res.Periods)-1].FleetLowAfter)
	}
	// Low counts are monotone non-increasing without drain.
	prev := initialLow
	for _, p := range res.Periods {
		if p.FleetLowAfter > prev {
			t.Errorf("period %d: low rose %d -> %d without drain", p.Period, prev, p.FleetLowAfter)
		}
		prev = p.FleetLowAfter
	}
	if res.TotalCost <= 0 {
		t.Error("no cost accumulated")
	}
}

func TestRunMultiPeriodWithDrainKeepsWorking(t *testing.T) {
	stations, fleet := chargingFixture(t, 13)
	res, err := RunMultiPeriod(stations, fleet, DefaultChargingConfig(0.4), 4, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Periods) != 4 {
		t.Fatalf("periods=%d", len(res.Periods))
	}
	// Every period should have found work (drain keeps producing low
	// bikes).
	for _, p := range res.Periods[1:] {
		if p.Report.TotalLowBikes == 0 {
			t.Errorf("period %d had no low bikes despite drain", p.Period)
		}
	}
}

func TestRunMultiPeriodBudgetStarvation(t *testing.T) {
	// A tiny budget charges almost nothing per round; stragglers persist
	// across the horizon.
	stations, fleet := chargingFixture(t, 14)
	cfg := DefaultChargingConfig(0)
	cfg.WorkBudget = 13 * time.Minute // one stop at most
	res, err := RunMultiPeriod(stations, fleet, cfg, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeriodsToClear != 0 {
		t.Error("starved operator should not clear the backlog in 2 periods")
	}
}
